// Benchmarks regenerating the paper's tables and figures.
//
// Two families:
//
//   - Model benches (BenchmarkFigure4*, BenchmarkFigure6*, BenchmarkTable1)
//     drive the calibrated virtual-time models and report the paper's
//     numbers as custom metrics (µs-one-way, s-per-step). These regenerate
//     the published curves exactly and deterministically.
//   - Real benches (BenchmarkReal*, BenchmarkPollCost*, BenchmarkMPI*)
//     measure the actual library over real transports, demonstrating the
//     same effects on today's hardware: the idle-expensive-method polling
//     tax, skip_poll recovery, the multimethod-vs-single-method coupled-app
//     gap, and the MPI layering overhead.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package nexus_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"nexus"
	"nexus/internal/model"
)

// ---------------------------------------------------------------------------
// Figure 4: one-way ping-pong time vs message size (model).

func benchFigure4(b *testing.B, sizes []int) {
	p := model.DefaultSP2()
	var pts []model.PingPongPoint
	for i := 0; i < b.N; i++ {
		pts = model.Figure4(p, sizes, 200)
	}
	for _, pt := range pts {
		n := float64(pt.Size)
		b.ReportMetric(float64(pt.RawMPL.Nanoseconds())/1e3, "µs-raw@"+itoa(int(n)))
		b.ReportMetric(float64(pt.NexusMPL.Nanoseconds())/1e3, "µs-nexus@"+itoa(int(n)))
		b.ReportMetric(float64(pt.NexusMPLTCP.Nanoseconds())/1e3, "µs-nexus+tcp@"+itoa(int(n)))
	}
}

// BenchmarkFigure4Small regenerates Figure 4 (left): sizes 0–1000 B.
func BenchmarkFigure4Small(b *testing.B) { benchFigure4(b, []int{0, 500, 1000}) }

// BenchmarkFigure4Large regenerates Figure 4 (right): the wide size range.
func BenchmarkFigure4Large(b *testing.B) { benchFigure4(b, []int{16384, 1 << 20}) }

// ---------------------------------------------------------------------------
// Figure 6: dual ping-pong one-way times vs skip_poll (model).

func benchFigure6(b *testing.B, size int) {
	p := model.DefaultSP2()
	skips := []int{1, 20, 1000}
	var pts []model.DualPoint
	for i := 0; i < b.N; i++ {
		pts = model.Figure6(p, skips, size, 1000)
	}
	for _, pt := range pts {
		b.ReportMetric(float64(pt.MPLOneWay.Nanoseconds())/1e3, "µs-mpl@skip"+itoa(pt.Skip))
		b.ReportMetric(float64(pt.TCPOneWay.Nanoseconds())/1e3, "µs-tcp@skip"+itoa(pt.Skip))
	}
}

// BenchmarkFigure6Zero regenerates Figure 6 (left): 0-byte messages.
func BenchmarkFigure6Zero(b *testing.B) { benchFigure6(b, 0) }

// BenchmarkFigure6TenKB regenerates Figure 6 (right): 10 KB messages.
func BenchmarkFigure6TenKB(b *testing.B) { benchFigure6(b, 10*1024) }

// ---------------------------------------------------------------------------
// Table 1: coupled-model strategies (model).

// BenchmarkTable1 regenerates Table 1 and reports seconds-per-timestep for
// each strategy as custom metrics.
func BenchmarkTable1(b *testing.B) {
	cfg := model.DefaultCoupled()
	var rows []model.Table1Row
	for i := 0; i < b.N; i++ {
		rows = model.Table1(cfg)
	}
	for _, r := range rows {
		b.ReportMetric(r.SecondsPerStep, "s/step:"+compact(r.Experiment))
	}
}

func compact(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			c = '-'
		}
		if c == '(' || c == ')' {
			continue
		}
		out = append(out, c)
	}
	return string(out)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------------
// §3.3 poll-cost asymmetry on real transports: the per-pass cost of an
// inexpensive method vs an expensive one (the 15 µs probe vs 100 µs select
// of the paper).

// BenchmarkPollCostInproc measures one poll pass over an idle inproc module.
func BenchmarkPollCostInproc(b *testing.B) {
	ctx, err := nexus.NewContext(nexus.Options{Methods: []nexus.MethodConfig{{Name: "inproc"}}})
	if err != nil {
		b.Fatal(err)
	}
	defer ctx.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Poll()
	}
}

// BenchmarkPollCostTCP measures one poll pass over an idle TCP module with a
// live (idle) inbound connection — each pass is a genuine readiness system
// call.
func BenchmarkPollCostTCP(b *testing.B) {
	recv, err := nexus.NewContext(nexus.Options{Methods: []nexus.MethodConfig{{Name: "tcp"}}})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	send, err := nexus.NewContext(nexus.Options{Methods: []nexus.MethodConfig{{Name: "tcp"}}})
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	// Open a connection (one RSR) so the poll loop has an fd to scan.
	var got atomic.Int64
	ep := recv.NewEndpoint(nexus.WithHandler(func(*nexus.Endpoint, *nexus.Buffer) { got.Add(1) }))
	sp, err := nexus.TransferStartpoint(ep.NewStartpoint(), send)
	if err != nil {
		b.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == 0 && time.Now().Before(deadline) {
		recv.Poll()
	}
	if got.Load() == 0 {
		b.Fatal("setup RSR never arrived")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recv.Poll()
	}
}

// ---------------------------------------------------------------------------
// Real-transport analogue of Figure 4: a fast-method ping-pong with and
// without an idle expensive method in the polling loop.

func realPingPong(b *testing.B, methods []nexus.MethodConfig, size int) {
	mk := func() *nexus.Context {
		c, err := nexus.NewContext(nexus.Options{Methods: methods})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	a, c := mk(), mk()
	defer a.Close()
	defer c.Close()

	var aGot, cGot atomic.Int64
	epA := a.NewEndpoint(nexus.WithHandler(func(*nexus.Endpoint, *nexus.Buffer) { aGot.Add(1) }))
	epC := c.NewEndpoint(nexus.WithHandler(func(*nexus.Endpoint, *nexus.Buffer) { cGot.Add(1) }))
	spToC, err := nexus.TransferStartpoint(epC.NewStartpoint(), a)
	if err != nil {
		b.Fatal(err)
	}
	spToA, err := nexus.TransferStartpoint(epA.NewStartpoint(), c)
	if err != nil {
		b.Fatal(err)
	}
	if m, err := spToC.SelectMethod(); err != nil || m != "inproc" {
		b.Fatalf("selection: %v %v", m, err)
	}

	payload := nexus.NewBuffer(size)
	payload.PutRaw(make([]byte, size))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			for cGot.Load() < int64(i+1) {
				if c.Poll() == 0 {
					runtime.Gosched()
				}
			}
			if err := spToA.RSR("", payload); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := spToC.RSR("", payload); err != nil {
			b.Fatal(err)
		}
		for aGot.Load() < int64(i+1) {
			if a.Poll() == 0 {
				runtime.Gosched()
			}
		}
	}
	b.StopTimer()
	<-done
}

// BenchmarkRealPingPong is the single-method baseline (inproc only).
func BenchmarkRealPingPong(b *testing.B) {
	realPingPong(b, []nexus.MethodConfig{{Name: "inproc"}}, 64)
}

// BenchmarkRealPingPongIdleTCP adds an idle TCP module polled every pass:
// the real-transport version of Figure 4's multimethod overhead.
func BenchmarkRealPingPongIdleTCP(b *testing.B) {
	realPingPong(b, []nexus.MethodConfig{
		{Name: "inproc"},
		{Name: "tcp"},
	}, 64)
}

// BenchmarkRealPingPongSkipPoll sweeps skip_poll over the idle TCP module:
// the real-transport version of Figure 6's recovery curve.
func BenchmarkRealPingPongSkipPoll(b *testing.B) {
	for _, skip := range []int{1, 10, 100} {
		b.Run("skip"+itoa(skip), func(b *testing.B) {
			realPingPong(b, []nexus.MethodConfig{
				{Name: "inproc"},
				{Name: "tcp", SkipPoll: skip},
			}, 64)
		})
	}
}

// ---------------------------------------------------------------------------
// §4 layering overhead: the mini-MPI ping-pong vs a raw-core ping-pong (the
// paper reports ~6% for MPICH-on-Nexus vs MPICH-on-MPL).

// BenchmarkMPIOverhead measures a two-rank MPI ping-pong; compare with
// BenchmarkRealPingPong for the layering cost.
func BenchmarkMPIOverhead(b *testing.B) {
	machine, err := nexus.NewMachine(nexus.UniformMachine(2, "p", nexus.MethodConfig{Name: "inproc"}))
	if err != nil {
		b.Fatal(err)
	}
	defer machine.Close()
	world, err := nexus.NewWorld(machine)
	if err != nil {
		b.Fatal(err)
	}
	payload := nexus.NewBuffer(64)
	payload.PutRaw(make([]byte, 64))

	done := make(chan error, 1)
	go func() {
		c := world.Comm(1)
		for i := 0; i < b.N; i++ {
			m, err := c.Recv(0, 1)
			if err != nil {
				done <- err
				return
			}
			if err := c.Send(0, 2, m.Buf); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	c := world.Comm(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(1, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Real-transport analogue of Table 1: the coupled mini-app over multimethod
// vs wide-area-only machines.

func realCoupled(b *testing.B, methods ...nexus.MethodConfig) {
	cfg := nexus.ClimateConfig{
		AtmoRanks: 2, OceanRanks: 1,
		AtmoNX: 32, AtmoNY: 16,
		OceanNX: 16, OceanNY: 8,
		Steps: 4, CoupleEvery: 2,
		Diffusivity: 0.5, DT: 0.25,
	}
	for i := 0; i < b.N; i++ {
		machine, err := nexus.NewMachine(nexus.TwoPartitionMachine(
			cfg.AtmoRanks, "atmo", cfg.OceanRanks, "ocean", methods...))
		if err != nil {
			b.Fatal(err)
		}
		world, err := nexus.NewWorld(machine)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nexus.RunClimate(world, cfg); err != nil {
			b.Fatal(err)
		}
		machine.Close()
	}
}

// BenchmarkRealCoupledMultimethod runs the coupled app with mpl inside
// partitions and wan between them.
func BenchmarkRealCoupledMultimethod(b *testing.B) {
	fast := nexus.Params{"latency": "2us", "poll_cost": "1us", "bandwidth": "0"}
	wide := nexus.Params{"latency": "100us", "poll_cost": "20us", "bandwidth": "5e7"}
	realCoupled(b,
		nexus.MethodConfig{Name: "mpl", Params: fast},
		nexus.MethodConfig{Name: "wan", Params: wide},
	)
}

// BenchmarkRealCoupledWANOnly runs the same app with every message on the
// wide-area method — the paper's no-multimethod configuration.
func BenchmarkRealCoupledWANOnly(b *testing.B) {
	wide := nexus.Params{"latency": "100us", "poll_cost": "20us", "bandwidth": "5e7"}
	realCoupled(b, nexus.MethodConfig{Name: "wan", Params: wide})
}

// ---------------------------------------------------------------------------
// Ablation: startpoint weight — full descriptor tables vs lightweight
// encoding (§3.1's optimization for tightly coupled systems).

func BenchmarkStartpointWeight(b *testing.B) {
	ctx, err := nexus.NewContext(nexus.Options{Methods: []nexus.MethodConfig{
		{Name: "inproc"}, {Name: "tcp"}, {Name: "udp"},
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer ctx.Close()
	sp := ctx.NewEndpoint().NewStartpoint()

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			buf := nexus.NewBuffer(256)
			sp.Encode(buf)
			n = buf.Len()
		}
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("lite", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			buf := nexus.NewBuffer(256)
			sp.EncodeLite(buf)
			n = buf.Len()
		}
		b.ReportMetric(float64(n), "bytes")
	})
}

// ---------------------------------------------------------------------------
// Ablation: selection policy cost — ordered first-applicable vs poll-cost
// ranking.

func BenchmarkSelectionPolicy(b *testing.B) {
	mkPair := func(sel nexus.Selector) (*nexus.Context, *nexus.Startpoint) {
		recv, err := nexus.NewContext(nexus.Options{Methods: []nexus.MethodConfig{
			{Name: "inproc"}, {Name: "tcp"}, {Name: "udp"},
		}})
		if err != nil {
			b.Fatal(err)
		}
		send, err := nexus.NewContext(nexus.Options{
			Selector: sel,
			Methods: []nexus.MethodConfig{
				{Name: "inproc"}, {Name: "tcp"}, {Name: "udp"},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { recv.Close(); send.Close() })
		ep := recv.NewEndpoint(nexus.WithHandler(func(*nexus.Endpoint, *nexus.Buffer) {}))
		sp, err := nexus.TransferStartpoint(ep.NewStartpoint(), send)
		if err != nil {
			b.Fatal(err)
		}
		return send, sp
	}
	b.Run("first-applicable", func(b *testing.B) {
		_, sp := mkPair(nexus.FirstApplicable)
		for i := 0; i < b.N; i++ {
			sp.Close() // force reselection
			if _, err := sp.SelectMethod(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cheapest-poll", func(b *testing.B) {
		_, sp := mkPair(nexus.CheapestPoll)
		for i := 0; i < b.N; i++ {
			sp.Close()
			if _, err := sp.SelectMethod(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
