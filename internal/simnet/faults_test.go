package simnet

import (
	"errors"
	"testing"
	"time"

	"nexus/internal/transport"
)

// faultPair builds a sender and receiver on a fresh fabric and returns the
// dialed connection plus the receiver module and its sink.
func faultPair(t *testing.T, name string) (*Fabric, transport.Conn, *Module, *collect) {
	t.Helper()
	f := NewFabric(name)
	sink := &collect{}
	recv, d := initOn(t, f, fastCfg("mpl", ScopeGlobal), 1, "p", "a", sink)
	send, _ := initOn(t, f, fastCfg("mpl", ScopeGlobal), 2, "p", "a", &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	return f, c, recv, sink
}

func TestFaultsDropRate(t *testing.T) {
	f, c, recv, sink := faultPair(t, "faults-drop")
	f.Faults().DropRate(2, 1, 1.0)
	for i := 0; i < 10; i++ {
		if err := c.Send([]byte("x")); err != nil {
			t.Fatalf("dropped send must still report success, got %v", err)
		}
	}
	if n, _ := recv.Poll(); n != 0 {
		t.Fatalf("delivered %d frames through a 100%% drop link", n)
	}
	if got := f.Faults().Dropped(2, 1); got != 10 {
		t.Fatalf("Dropped = %d, want 10", got)
	}
	// Clearing the rate restores delivery.
	f.Faults().DropRate(2, 1, 0)
	if err := c.Send([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if n, _ := recv.Poll(); n != 1 || sink.count() != 1 {
		t.Fatalf("frame not delivered after drop rate cleared (n=%d)", n)
	}
}

func TestFaultsFailNextSends(t *testing.T) {
	f, c, recv, _ := faultPair(t, "faults-failnext")
	f.Faults().FailNextSends(2, 1, 2)
	for i := 0; i < 2; i++ {
		if err := c.Send([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("send %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := c.Send([]byte("x")); err != nil {
		t.Fatalf("one-shot errors must clear after n sends: %v", err)
	}
	if n, _ := recv.Poll(); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
}

func TestFaultsCutAndRestore(t *testing.T) {
	f, c, recv, _ := faultPair(t, "faults-cut")
	f.Faults().CutLink(2, 1)
	if err := c.Send([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	f.Faults().RestoreLink(2, 1)
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if n, _ := recv.Poll(); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
}

func TestFaultsPartitionHeal(t *testing.T) {
	f, c, recv, _ := faultPair(t, "faults-part")
	f.Faults().Partition([]transport.ContextID{1}, []transport.ContextID{2})
	if err := c.Send([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	f.Faults().Heal()
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if n, _ := recv.Poll(); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	// Contexts outside every group are unconfined.
	f.Faults().Partition([]transport.ContextID{1})
	if err := c.Send([]byte("x")); err != nil {
		t.Fatalf("unlisted sender must pass: %v", err)
	}
}

func TestFaultsDelay(t *testing.T) {
	f, c, recv, _ := faultPair(t, "faults-delay")
	f.Faults().Delay(2, 1, 40*time.Millisecond)
	start := time.Now()
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if n, _ := recv.Poll(); n != 0 {
		t.Fatal("delayed frame visible immediately")
	}
	for {
		if n, _ := recv.Poll(); n == 1 {
			break
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("delayed frame never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= 40ms", elapsed)
	}
}

func TestFaultsReset(t *testing.T) {
	f, c, recv, _ := faultPair(t, "faults-reset")
	fs := f.Faults()
	fs.CutLink(2, 1)
	fs.DropRate(2, 1, 1.0)
	fs.Partition([]transport.ContextID{1}, []transport.ContextID{2})
	fs.Reset()
	if err := c.Send([]byte("x")); err != nil {
		t.Fatalf("send after Reset: %v", err)
	}
	if n, _ := recv.Poll(); n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
}
