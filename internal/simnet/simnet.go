// Package simnet implements simulated network fabrics as communication
// modules.
//
// The paper's experiments rely on transports this machine does not have —
// IBM's MPL over the SP2 switch, AAL5/ATM, Myrinet. simnet substitutes
// parameterised in-process fabrics that preserve the properties the paper's
// results depend on:
//
//   - applicability scope: an "mpl" frame can only travel between contexts in
//     the same partition, exactly like MPL within an SP2 partition;
//   - a latency + bandwidth delay model: a frame becomes visible to the
//     receiver's Poll only after wire latency plus size/bandwidth, with
//     per-connection serialization;
//   - asymmetric poll costs: each fabric charges a configurable busy-wait per
//     Poll, reproducing the cheap-probe vs expensive-select asymmetry.
//
// Four methods are registered by default, all tunable through parameters:
//
//	mpl  — partition-scoped, fast, cheap polls (the SP2 switch analogue)
//	myri — partition-scoped, faster still (the Myrinet analogue)
//	atm  — globally routable, moderate latency (the AAL5/ATM analogue)
//	wan  — globally routable, high latency, expensive polls (the
//	       inter-partition TCP analogue from the paper's case study)
package simnet

import (
	"container/heap"
	"fmt"
	"strconv"
	"sync"
	"time"

	"nexus/internal/bufpool"
	"nexus/internal/transport"
)

// Scope restricts which context pairs a method can connect.
type Scope int

const (
	// ScopeGlobal methods connect any two contexts on the fabric.
	ScopeGlobal Scope = iota
	// ScopeProcess methods connect contexts in the same OS process.
	ScopeProcess
	// ScopePartition methods connect contexts in the same partition (and
	// the same process, since the fabric is in-memory).
	ScopePartition
)

func (s Scope) String() string {
	switch s {
	case ScopeGlobal:
		return "global"
	case ScopeProcess:
		return "process"
	case ScopePartition:
		return "partition"
	default:
		return fmt.Sprintf("scope(%d)", int(s))
	}
}

// Config parameterises a simulated fabric method.
type Config struct {
	// Method is the descriptor method name ("mpl", "atm", ...).
	Method string
	// Scope restricts connectivity.
	Scope Scope
	// Latency is the one-way wire latency.
	Latency time.Duration
	// BytesPerSec is the link bandwidth; 0 means infinite.
	BytesPerSec float64
	// PollCost is the busy-wait charged to every Poll.
	PollCost time.Duration
	// TimeScale divides all modelled delays (latency and transmission
	// time, not PollCost): 10 runs the fabric 10x faster than modelled,
	// letting long experiments finish quickly while preserving ratios.
	TimeScale float64
	// PollBatch bounds frames delivered per Poll (default 32).
	PollBatch int
	// MaxMessage caps the frame size Send accepts (0 = unlimited). Real
	// mid-90s fabrics had MTUs; setting one makes the simulated method
	// size-limited exactly like udp/rudp, which is how fragmentation and
	// size-aware selection are exercised deterministically in tests.
	MaxMessage int
}

func (c Config) withParams(p transport.Params) Config {
	c.Latency = p.Duration("latency", c.Latency)
	c.BytesPerSec = p.Float("bandwidth", c.BytesPerSec)
	c.PollCost = p.Duration("poll_cost", c.PollCost)
	c.TimeScale = p.Float("time_scale", c.TimeScale)
	c.PollBatch = p.Int("poll_batch", c.PollBatch)
	c.MaxMessage = p.Int("max_message", c.MaxMessage)
	return c
}

// Defaults for the registered methods. Latencies and bandwidths follow the
// paper's SP2 measurements where it states them (MPL ≈ 36 MB/s; TCP over the
// switch ≈ 8 MB/s with ≈ 2 ms small-message latency); the rest are plausible
// mid-90s values. All are overridable via parameters.
var (
	MPLDefaults  = Config{Method: "mpl", Scope: ScopePartition, Latency: 40 * time.Microsecond, BytesPerSec: 36e6, PollCost: 15 * time.Microsecond, TimeScale: 1, PollBatch: 32}
	MyriDefaults = Config{Method: "myri", Scope: ScopePartition, Latency: 20 * time.Microsecond, BytesPerSec: 60e6, PollCost: 10 * time.Microsecond, TimeScale: 1, PollBatch: 32}
	ATMDefaults  = Config{Method: "atm", Scope: ScopeGlobal, Latency: 500 * time.Microsecond, BytesPerSec: 16e6, PollCost: 60 * time.Microsecond, TimeScale: 1, PollBatch: 32}
	WANDefaults  = Config{Method: "wan", Scope: ScopeGlobal, Latency: 2 * time.Millisecond, BytesPerSec: 8e6, PollCost: 100 * time.Microsecond, TimeScale: 1, PollBatch: 32}
)

func init() {
	for _, def := range []Config{MPLDefaults, MyriDefaults, ATMDefaults, WANDefaults} {
		def := def
		transport.Register(def.Method, func(p transport.Params) transport.Module {
			fab := GetOrCreateFabric(p.Str("fabric", "default") + "/" + def.Method)
			return New(fab, def.withParams(p))
		})
	}
}

// Fabric is the shared medium for one simulated method: the set of mailboxes
// of all participating contexts.
type Fabric struct {
	name   string
	faults *Faults
	mu     sync.RWMutex
	boxes  map[transport.ContextID]*mailbox
}

// NewFabric returns an isolated fabric.
func NewFabric(name string) *Fabric {
	return &Fabric{name: name, faults: newFaults(), boxes: make(map[transport.ContextID]*mailbox)}
}

// Name reports the fabric's name.
func (f *Fabric) Name() string { return f.name }

var (
	fabricsMu sync.Mutex
	fabrics   = make(map[string]*Fabric)
)

// GetOrCreateFabric returns the process-wide fabric with the given name.
func GetOrCreateFabric(name string) *Fabric {
	fabricsMu.Lock()
	defer fabricsMu.Unlock()
	f, ok := fabrics[name]
	if !ok {
		f = NewFabric(name)
		fabrics[name] = f
	}
	return f
}

type timedFrame struct {
	at    time.Time
	seq   uint64
	frame []byte
}

type frameHeap []timedFrame

func (h frameHeap) Len() int { return len(h) }
func (h frameHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h frameHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x interface{}) { *h = append(*h, x.(timedFrame)) }
func (h *frameHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type mailbox struct {
	mu  sync.Mutex
	h   frameHeap
	seq uint64
}

func (mb *mailbox) push(at time.Time, frame []byte) {
	mb.mu.Lock()
	mb.seq++
	heap.Push(&mb.h, timedFrame{at: at, seq: mb.seq, frame: frame})
	mb.mu.Unlock()
}

// ripe pops up to max frames whose arrival time has passed.
func (mb *mailbox) ripe(now time.Time, max int) [][]byte {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var out [][]byte
	for len(mb.h) > 0 && len(out) < max && !mb.h[0].at.After(now) {
		out = append(out, heap.Pop(&mb.h).(timedFrame).frame)
	}
	return out
}

func (f *Fabric) register(ctx transport.ContextID) (*mailbox, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.boxes[ctx]; dup {
		return nil, fmt.Errorf("simnet: context %d already on fabric %q", ctx, f.name)
	}
	mb := &mailbox{}
	f.boxes[ctx] = mb
	return mb, nil
}

func (f *Fabric) unregister(ctx transport.ContextID) {
	f.mu.Lock()
	delete(f.boxes, ctx)
	f.mu.Unlock()
}

func (f *Fabric) lookup(ctx transport.ContextID) (*mailbox, bool) {
	f.mu.RLock()
	mb, ok := f.boxes[ctx]
	f.mu.RUnlock()
	return mb, ok
}

// Module is one context's attachment to a simulated fabric.
type Module struct {
	fabric *Fabric
	cfg    Config

	mu     sync.Mutex
	env    transport.Env
	box    *mailbox
	inited bool
	closed bool
}

// New returns an uninitialized module for the fabric with the given config.
func New(f *Fabric, cfg Config) *Module {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.PollBatch <= 0 {
		cfg.PollBatch = 32
	}
	return &Module{fabric: f, cfg: cfg}
}

// Name implements transport.Module.
func (m *Module) Name() string { return m.cfg.Method }

// Config reports the module's effective configuration.
func (m *Module) Config() Config { return m.cfg }

// Init attaches the context to the fabric. The descriptor carries the
// fabric, process, and partition identities that Applicable checks.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inited {
		return nil, fmt.Errorf("simnet(%s): double Init for context %d", m.cfg.Method, env.Context)
	}
	box, err := m.fabric.register(env.Context)
	if err != nil {
		return nil, err
	}
	m.env = env
	m.box = box
	m.inited = true
	attrs := map[string]string{
		"fabric":    m.fabric.name,
		"process":   env.Process,
		"partition": env.Partition,
		// addr names the physical mailbox frames are sent to. It is
		// normally the context itself, but forwarding setups rewrite it
		// to a forwarder's mailbox while Context keeps naming the final
		// destination.
		"addr": strconv.FormatUint(uint64(env.Context), 10),
		// scope lets a third party (mesh route computation) apply the same
		// applicability rule Applicable enforces locally, for descriptor
		// pairs it does not own either end of.
		"scope": m.cfg.Scope.String(),
	}
	if m.cfg.MaxMessage > 0 {
		attrs[transport.AttrMaxMessage] = strconv.Itoa(m.cfg.MaxMessage)
	}
	if cost := m.cfg.Latency + m.cfg.PollCost; cost > 0 {
		// Advertise the modelled per-message cost so cost-aware routing can
		// weight edges between remote contexts it has never sent over.
		attrs[transport.AttrCost] = strconv.FormatInt(cost.Nanoseconds(), 10)
	}
	return &transport.Descriptor{
		Method:  m.cfg.Method,
		Context: env.Context,
		Attrs:   attrs,
	}, nil
}

// MaxMessage implements transport.SizeLimiter (0 = unlimited).
func (m *Module) MaxMessage() int { return m.cfg.MaxMessage }

// Applicable applies the method's scope rule: same fabric and process
// always; same partition additionally for partition-scoped methods.
func (m *Module) Applicable(remote transport.Descriptor) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.inited || remote.Method != m.cfg.Method || remote.Attr("fabric") != m.fabric.name {
		return false
	}
	switch m.cfg.Scope {
	case ScopePartition:
		return remote.Attr("process") == m.env.Process && remote.Attr("partition") == m.env.Partition
	case ScopeProcess:
		return remote.Attr("process") == m.env.Process
	default:
		return true
	}
}

// Dial opens a connection whose sends are stamped with modelled arrival
// times.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	m.mu.Lock()
	inited, closed := m.inited, m.closed
	src := m.env.Context
	m.mu.Unlock()
	if !inited {
		return nil, transport.ErrNotInitialized
	}
	if closed {
		return nil, transport.ErrClosed
	}
	if !m.Applicable(remote) {
		return nil, transport.ErrNotApplicable
	}
	dest := remote.Context
	if a := remote.Attr("addr"); a != "" {
		n, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("simnet(%s): bad addr %q: %w", m.cfg.Method, a, err)
		}
		dest = transport.ContextID(n)
	}
	return &conn{fabric: m.fabric, cfg: m.cfg, src: src, dest: dest}, nil
}

// Poll charges the configured poll cost, then delivers every ripe frame up
// to the batch limit.
func (m *Module) Poll() (int, error) {
	m.mu.Lock()
	if !m.inited {
		m.mu.Unlock()
		return 0, transport.ErrNotInitialized
	}
	if m.closed {
		m.mu.Unlock()
		return 0, transport.ErrClosed
	}
	box, sink := m.box, m.env.Sink
	cost, batch := m.cfg.PollCost, m.cfg.PollBatch
	m.mu.Unlock()

	if cost > 0 {
		busyWait(cost)
	}
	frames := box.ripe(time.Now(), batch)
	for _, f := range frames {
		sink.Deliver(f)
		bufpool.Put(f) // Deliver borrows; the frame storage is ours again
	}
	return len(frames), nil
}

// PollCostHint implements transport.CostHinter.
func (m *Module) PollCostHint() time.Duration { return m.cfg.PollCost }

// Close detaches from the fabric; undelivered frames are dropped.
func (m *Module) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.inited {
		m.fabric.unregister(m.env.Context)
	}
	return nil
}

func busyWait(d time.Duration) {
	if d >= time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

type conn struct {
	fabric *Fabric
	cfg    Config
	src    transport.ContextID
	dest   transport.ContextID

	mu       sync.Mutex
	linkFree time.Time // when the modelled link finishes its previous frame
}

// Send stamps the frame with its modelled arrival time: transmission starts
// when the link is free, lasts size/bandwidth, and arrival adds wire latency.
// Configured faults are consulted first: an injected error aborts the send, a
// probabilistic drop silently discards the frame (Send still succeeds), and
// injected delay is added to the arrival time unscaled.
func (c *conn) Send(frame []byte) error {
	if c.cfg.MaxMessage > 0 && len(frame) > c.cfg.MaxMessage {
		return fmt.Errorf("simnet(%s): frame of %d bytes exceeds MTU %d: %w",
			c.cfg.Method, len(frame), c.cfg.MaxMessage, transport.ErrTooLarge)
	}
	var extra time.Duration
	if fs := c.fabric.faults; fs != nil && fs.active.Load() {
		d, drop, err := fs.apply(c.src, c.dest)
		if err != nil {
			return fmt.Errorf("simnet(%s): %d->%d: %w", c.cfg.Method, c.src, c.dest, err)
		}
		if drop {
			return nil
		}
		extra = d
	}
	box, ok := c.fabric.lookup(c.dest)
	if !ok {
		return fmt.Errorf("simnet(%s): context %d not on fabric %q: %w",
			c.cfg.Method, c.dest, c.fabric.name, transport.ErrClosed)
	}
	now := time.Now()
	var tx time.Duration
	if c.cfg.BytesPerSec > 0 {
		tx = time.Duration(float64(len(frame)) / c.cfg.BytesPerSec * float64(time.Second))
	}
	scale := c.cfg.TimeScale
	c.mu.Lock()
	start := now
	if c.linkFree.After(start) {
		start = c.linkFree
	}
	txScaled := time.Duration(float64(tx) / scale)
	c.linkFree = start.Add(txScaled)
	arrival := c.linkFree.Add(time.Duration(float64(c.cfg.Latency)/scale) + extra)
	c.mu.Unlock()
	// Send borrows frame, but the mailbox holds it until its modelled arrival,
	// so copy into pooled storage; Poll recycles it after delivery.
	cp := bufpool.Get(len(frame))
	copy(cp, frame)
	box.push(arrival, cp)
	return nil
}

func (c *conn) Method() string { return c.cfg.Method }
func (c *conn) Close() error   { return nil }
