package simnet

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/transport"
)

// Fault injection for deterministic failure testing. Each Fabric owns a
// Faults controller; tests script per-link drop rates, one-shot send errors,
// extra delivery delay, severed links, and whole-fabric partitions, then heal
// them and watch the stack recover. The controller costs one atomic load per
// Send while no fault has ever been configured.

// Errors returned by injected faults. All are distinguishable from real
// transport errors so tests can assert on the injection path.
var (
	// ErrInjected is returned by one-shot send failures (FailNextSends).
	ErrInjected = errors.New("simnet: injected send error")
	// ErrPartitioned is returned when src and dest are in different
	// partition groups.
	ErrPartitioned = errors.New("simnet: fabric partitioned")
	// ErrLinkDown is returned while a link is cut (CutLink).
	ErrLinkDown = errors.New("simnet: link down")
)

type linkKey struct {
	from, to transport.ContextID
}

type linkFault struct {
	dropRate float64       // probability a frame is silently dropped
	delay    time.Duration // extra delivery delay, not time-scaled
	failNext int           // next n sends return ErrInjected
	cut      bool          // link severed: every send returns ErrLinkDown
	dropped  uint64        // frames silently dropped so far
}

// Faults is a fabric's fault-injection controller. All methods are safe for
// concurrent use with live traffic.
type Faults struct {
	active atomic.Bool // true once any fault has been configured

	mu     sync.Mutex
	rng    *rand.Rand
	links  map[linkKey]*linkFault
	groups map[transport.ContextID]int // partition group; absent = unconfined
}

func newFaults() *Faults {
	return &Faults{
		rng:    rand.New(rand.NewSource(1)),
		links:  make(map[linkKey]*linkFault),
		groups: make(map[transport.ContextID]int),
	}
}

// Faults returns the fabric's fault-injection controller.
func (f *Fabric) Faults() *Faults { return f.faults }

func (fs *Faults) linkLocked(from, to transport.ContextID) *linkFault {
	k := linkKey{from, to}
	lf := fs.links[k]
	if lf == nil {
		lf = &linkFault{}
		fs.links[k] = lf
	}
	return lf
}

// Seed reseeds the drop-rate RNG so probabilistic runs are reproducible.
func (fs *Faults) Seed(seed int64) {
	fs.mu.Lock()
	fs.rng = rand.New(rand.NewSource(seed))
	fs.mu.Unlock()
}

// DropRate makes the directed link from→to silently drop each frame with the
// given probability in [0, 1]. Dropped frames vanish: Send still reports
// success, modelling loss below the error-detection horizon.
func (fs *Faults) DropRate(from, to transport.ContextID, rate float64) {
	fs.mu.Lock()
	fs.linkLocked(from, to).dropRate = rate
	fs.mu.Unlock()
	fs.active.Store(true)
}

// Delay adds extra delivery delay on the directed link from→to, on top of the
// fabric's modelled latency and unaffected by TimeScale.
func (fs *Faults) Delay(from, to transport.ContextID, d time.Duration) {
	fs.mu.Lock()
	fs.linkLocked(from, to).delay = d
	fs.mu.Unlock()
	fs.active.Store(true)
}

// FailNextSends makes the next n sends on the directed link from→to return
// ErrInjected, then resumes normal delivery — a transient fault the failover
// layer should absorb with a redial and resend.
func (fs *Faults) FailNextSends(from, to transport.ContextID, n int) {
	fs.mu.Lock()
	fs.linkLocked(from, to).failNext = n
	fs.mu.Unlock()
	fs.active.Store(true)
}

// CutLink severs the directed link from→to: every send returns ErrLinkDown
// until RestoreLink.
func (fs *Faults) CutLink(from, to transport.ContextID) {
	fs.mu.Lock()
	fs.linkLocked(from, to).cut = true
	fs.mu.Unlock()
	fs.active.Store(true)
}

// RestoreLink repairs a link severed by CutLink.
func (fs *Faults) RestoreLink(from, to transport.ContextID) {
	fs.mu.Lock()
	fs.linkLocked(from, to).cut = false
	fs.mu.Unlock()
}

// Partition splits the fabric into groups: sends between contexts in
// different groups return ErrPartitioned. Contexts not listed in any group
// remain unconfined and can reach everyone. Calling Partition replaces any
// previous partitioning.
func (fs *Faults) Partition(groups ...[]transport.ContextID) {
	fs.mu.Lock()
	fs.groups = make(map[transport.ContextID]int)
	for g, members := range groups {
		for _, ctx := range members {
			fs.groups[ctx] = g
		}
	}
	fs.mu.Unlock()
	fs.active.Store(true)
}

// Heal removes any partitioning; cut links and drop rates are unaffected.
func (fs *Faults) Heal() {
	fs.mu.Lock()
	fs.groups = make(map[transport.ContextID]int)
	fs.mu.Unlock()
}

// Dropped reports how many frames the directed link from→to has silently
// dropped via DropRate.
func (fs *Faults) Dropped(from, to transport.ContextID) uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if lf := fs.links[linkKey{from, to}]; lf != nil {
		return lf.dropped
	}
	return 0
}

// Reset clears every configured fault and returns the controller to its
// zero-cost idle state.
func (fs *Faults) Reset() {
	fs.mu.Lock()
	fs.links = make(map[linkKey]*linkFault)
	fs.groups = make(map[transport.ContextID]int)
	fs.mu.Unlock()
	fs.active.Store(false)
}

// apply evaluates the configured faults for one send. It returns the extra
// delivery delay, whether the frame is silently dropped, and an injected
// error (checked in order: partition, cut link, one-shot failure).
func (fs *Faults) apply(from, to transport.ContextID) (extra time.Duration, drop bool, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if gf, okf := fs.groups[from]; okf {
		if gt, okt := fs.groups[to]; okt && gf != gt {
			return 0, false, ErrPartitioned
		}
	}
	lf := fs.links[linkKey{from, to}]
	if lf == nil {
		return 0, false, nil
	}
	if lf.cut {
		return 0, false, ErrLinkDown
	}
	if lf.failNext > 0 {
		lf.failNext--
		return 0, false, ErrInjected
	}
	if lf.dropRate > 0 && fs.rng.Float64() < lf.dropRate {
		lf.dropped++
		return 0, true, nil
	}
	return lf.delay, false, nil
}
