package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nexus/internal/transport"
)

type collect struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collect) Deliver(f []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), f...)) // Deliver borrows f
	c.mu.Unlock()
}

func (c *collect) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func fastCfg(method string, scope Scope) Config {
	return Config{Method: method, Scope: scope, TimeScale: 1, PollBatch: 32}
}

func initOn(t *testing.T, f *Fabric, cfg Config, ctx transport.ContextID, proc, part string, sink transport.Sink) (*Module, transport.Descriptor) {
	t.Helper()
	m := New(f, cfg)
	d, err := m.Init(transport.Env{Context: ctx, Process: proc, Partition: part, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, *d
}

func TestZeroDelayDelivery(t *testing.T) {
	f := NewFabric("z")
	sink := &collect{}
	recv, d := initOn(t, f, fastCfg("mpl", ScopePartition), 1, "p", "part0", sink)
	send, _ := initOn(t, f, fastCfg("mpl", ScopePartition), 2, "p", "part0", &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if n, err := recv.Poll(); n != 1 || err != nil {
		t.Fatalf("Poll = %d, %v", n, err)
	}
	if sink.count() != 1 {
		t.Fatal("frame not delivered")
	}
}

func TestLatencyDelaysVisibility(t *testing.T) {
	f := NewFabric("lat")
	cfg := fastCfg("mpl", ScopeGlobal)
	cfg.Latency = 30 * time.Millisecond
	sink := &collect{}
	recv, d := initOn(t, f, cfg, 1, "p", "a", sink)
	send, _ := initOn(t, f, cfg, 2, "p", "b", &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	// Immediately after send, nothing is ripe.
	if n, _ := recv.Poll(); n != 0 {
		t.Fatalf("frame visible before latency elapsed (n=%d)", n)
	}
	for sink.count() == 0 && time.Since(start) < 2*time.Second {
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("frame arrived after %v, want >= ~30ms", el)
	}
	if sink.count() != 1 {
		t.Fatal("frame never arrived")
	}
}

func TestBandwidthSerializesFrames(t *testing.T) {
	f := NewFabric("bw")
	cfg := fastCfg("mpl", ScopeGlobal)
	cfg.BytesPerSec = 1e6 // 1 MB/s: a 20 KB frame takes 20 ms
	sink := &collect{}
	recv, d := initOn(t, f, cfg, 1, "p", "a", sink)
	send, _ := initOn(t, f, cfg, 2, "p", "a", &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := c.Send(make([]byte, 20_000)); err != nil {
			t.Fatal(err)
		}
	}
	for sink.count() < 3 && time.Since(start) < 5*time.Second {
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	el := time.Since(start)
	if sink.count() != 3 {
		t.Fatal("frames missing")
	}
	// Three serialized 20 ms transmissions: at least ~60 ms.
	if el < 50*time.Millisecond {
		t.Errorf("3x20KB at 1MB/s arrived in %v; serialization not modelled", el)
	}
}

func TestTimeScaleShrinksDelay(t *testing.T) {
	f := NewFabric("ts")
	cfg := fastCfg("mpl", ScopeGlobal)
	cfg.Latency = 100 * time.Millisecond
	cfg.TimeScale = 100 // effective 1 ms
	sink := &collect{}
	recv, d := initOn(t, f, cfg, 1, "p", "a", sink)
	send, _ := initOn(t, f, cfg, 2, "p", "a", &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Send([]byte("q")); err != nil {
		t.Fatal(err)
	}
	for sink.count() == 0 && time.Since(start) < time.Second {
		recv.Poll()
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Errorf("scaled 1ms delivery took %v", el)
	}
}

func TestPartitionScope(t *testing.T) {
	f := NewFabric("scope")
	cfg := fastCfg("mpl", ScopePartition)
	a, da := initOn(t, f, cfg, 1, "p", "part0", &collect{})
	_, db := initOn(t, f, cfg, 2, "p", "part0", &collect{})
	_, dc := initOn(t, f, cfg, 3, "p", "part1", &collect{})

	if !a.Applicable(db) {
		t.Error("same partition not applicable")
	}
	if a.Applicable(dc) {
		t.Error("cross-partition mpl applicable")
	}
	if _, err := a.Dial(dc); !errors.Is(err, transport.ErrNotApplicable) {
		t.Errorf("Dial cross-partition err = %v", err)
	}
	_ = da
}

func TestGlobalScopeCrossesPartitions(t *testing.T) {
	f := NewFabric("glob")
	cfg := fastCfg("wan", ScopeGlobal)
	a, _ := initOn(t, f, cfg, 1, "p", "part0", &collect{})
	_, dc := initOn(t, f, cfg, 3, "q", "part1", &collect{})
	if !a.Applicable(dc) {
		t.Error("global method blocked across partitions/processes")
	}
}

func TestProcessScope(t *testing.T) {
	f := NewFabric("proc")
	cfg := fastCfg("shm", ScopeProcess)
	a, _ := initOn(t, f, cfg, 1, "p", "x", &collect{})
	_, db := initOn(t, f, cfg, 2, "p", "y", &collect{})
	_, dc := initOn(t, f, cfg, 3, "q", "x", &collect{})
	if !a.Applicable(db) {
		t.Error("same process, different partition should be applicable")
	}
	if a.Applicable(dc) {
		t.Error("different process applicable")
	}
}

func TestOrderingPreservedPerLink(t *testing.T) {
	f := NewFabric("order")
	cfg := fastCfg("mpl", ScopeGlobal)
	cfg.BytesPerSec = 50e6
	sink := &collect{}
	recv, d := initOn(t, f, cfg, 1, "p", "a", sink)
	send, _ := initOn(t, f, cfg, 2, "p", "a", &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.count() < n && time.Now().Before(deadline) {
		recv.Poll()
	}
	if sink.count() != n {
		t.Fatalf("got %d frames", sink.count())
	}
	for i, fr := range sink.frames {
		if fr[0] != byte(i) {
			t.Fatalf("frame %d out of order: %d", i, fr[0])
		}
	}
}

func TestRegisteredMethods(t *testing.T) {
	for _, name := range []string{"mpl", "myri", "atm", "wan"} {
		if !transport.Default.Has(name) {
			t.Errorf("method %q not registered", name)
		}
	}
	// Parameters override defaults through the registry factory.
	m, err := transport.Default.New("mpl", transport.Params{
		"fabric": "custom", "latency": "1ms", "poll_cost": "5us", "bandwidth": "1000",
	})
	if err != nil {
		t.Fatal(err)
	}
	sm := m.(*Module)
	if sm.Config().Latency != time.Millisecond || sm.Config().PollCost != 5*time.Microsecond || sm.Config().BytesPerSec != 1000 {
		t.Errorf("params not applied: %+v", sm.Config())
	}
}

func TestDoubleInitAndLifecycle(t *testing.T) {
	f := NewFabric("life")
	m := New(f, fastCfg("mpl", ScopeGlobal))
	env := transport.Env{Context: 1, Process: "p", Sink: &collect{}}
	if _, err := m.Init(env); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(env); err == nil {
		t.Error("double Init succeeded")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Poll(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Poll after Close: %v", err)
	}
	m2 := New(f, fastCfg("mpl", ScopeGlobal))
	if _, err := m2.Init(env); err != nil {
		t.Errorf("re-register after Close: %v", err)
	}
}

func TestSendToDetachedContext(t *testing.T) {
	f := NewFabric("detach")
	cfg := fastCfg("mpl", ScopeGlobal)
	a, _ := initOn(t, f, cfg, 1, "p", "x", &collect{})
	b, db := initOn(t, f, cfg, 2, "p", "x", &collect{})
	c, err := a.Dial(db)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if err := c.Send([]byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Send to detached context err = %v", err)
	}
}
