// Package climate implements a miniature coupled climate model — the
// analogue of the Millenia coupled model in the paper's case study: a large
// atmosphere component and a smaller ocean component, each a parallel
// finite-difference model with frequent internal halo exchange, coupled by an
// infrequent exchange of surface fields (SST and fluxes) every few
// atmosphere steps.
//
// The communication structure is the point: internal halo exchanges are
// frequent and ride whatever fast method the partition offers; inter-model
// exchanges are rare and ride the expensive wide-area method. The numerical
// content (explicit diffusion with synthetic per-cell physics load) exists to
// give the communication realistic shape and to provide determinism
// invariants for tests — identical results regardless of communication
// method.
package climate

import (
	"fmt"
	"math"

	"nexus/internal/mpi"
)

// subModel is one component model: a 2D field decomposed by rows across the
// ranks of a communicator, stepped by explicit diffusion.
type subModel struct {
	comm *mpi.Comm
	nx   int // global columns
	ny   int // global rows
	r0   int // first owned row
	rows int // owned row count

	// field has rows+2 rows: ghost row 0, owned rows 1..rows, ghost rows+1.
	field [][]float64
	next  [][]float64

	diffusivity float64
	dt          float64
	load        int
}

// rowsFor computes the block row decomposition: row range owned by rank r of
// size ranks over ny rows.
func rowsFor(ny, ranks, r int) (r0, count int) {
	base := ny / ranks
	extra := ny % ranks
	if r < extra {
		count = base + 1
		r0 = r * count
	} else {
		count = base
		r0 = extra*(base+1) + (r-extra)*base
	}
	return
}

func newSubModel(comm *mpi.Comm, nx, ny int, diffusivity, dt float64, load int, init func(x, y int) float64) (*subModel, error) {
	if ny < comm.Size() {
		return nil, fmt.Errorf("climate: %d rows cannot be split over %d ranks", ny, comm.Size())
	}
	m := &subModel{comm: comm, nx: nx, ny: ny, diffusivity: diffusivity, dt: dt, load: load}
	m.r0, m.rows = rowsFor(ny, comm.Size(), comm.Rank())
	m.field = make([][]float64, m.rows+2)
	m.next = make([][]float64, m.rows+2)
	for i := range m.field {
		m.field[i] = make([]float64, nx)
		m.next[i] = make([]float64, nx)
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < nx; j++ {
			m.field[i+1][j] = init(j, m.r0+i)
		}
	}
	return m, nil
}

// Halo-exchange tags (per step, alternating parity keeps steps separated).
const (
	tagHaloUp   = 11
	tagHaloDown = 12
)

// exchangeHalos fills the ghost rows from the neighbouring ranks; at the
// physical top and bottom the ghost mirrors the edge row (zero-flux
// boundary, which conserves the field total under diffusion).
func (m *subModel) exchangeHalos() error {
	rank, size := m.comm.Rank(), m.comm.Size()
	up, down := rank-1, rank+1

	// Send own top row up / bottom row down; receive ghosts in return. The
	// asynchronous sends cannot deadlock, so a simple send-then-receive per
	// direction suffices.
	if up >= 0 {
		if err := m.comm.Send(up, tagHaloUp, wrapFloats(m.field[1])); err != nil {
			return err
		}
	}
	if down < size {
		if err := m.comm.Send(down, tagHaloDown, wrapFloats(m.field[m.rows])); err != nil {
			return err
		}
	}
	if down < size {
		msg, err := m.comm.Recv(down, tagHaloUp)
		if err != nil {
			return err
		}
		if err := rowFromBuf(msg, m.field[m.rows+1], m.nx); err != nil {
			return err
		}
	} else {
		copy(m.field[m.rows+1], m.field[m.rows]) // mirror bottom
	}
	if up >= 0 {
		msg, err := m.comm.Recv(up, tagHaloDown)
		if err != nil {
			return err
		}
		if err := rowFromBuf(msg, m.field[0], m.nx); err != nil {
			return err
		}
	} else {
		copy(m.field[0], m.field[1]) // mirror top
	}
	return nil
}

// step advances the model one time step: halo exchange, then an explicit
// diffusion update with periodic boundaries in x, plus the synthetic physics
// load.
func (m *subModel) step() error {
	if err := m.exchangeHalos(); err != nil {
		return err
	}
	k := m.diffusivity * m.dt
	for i := 1; i <= m.rows; i++ {
		cur, nxt := m.field[i], m.next[i]
		above, below := m.field[i-1], m.field[i+1]
		for j := 0; j < m.nx; j++ {
			left := cur[(j-1+m.nx)%m.nx]
			right := cur[(j+1)%m.nx]
			lap := left + right + above[j] + below[j] - 4*cur[j]
			v := cur[j] + k*lap
			// Synthetic per-cell physics load, calibrated by cfg.Load.
			for w := 0; w < m.load; w++ {
				v += math.Sin(v) * 1e-12
			}
			nxt[j] = v
		}
	}
	m.field, m.next = m.next, m.field
	return nil
}

// localSum returns the sum of the owned cells.
func (m *subModel) localSum() float64 {
	s := 0.0
	for i := 1; i <= m.rows; i++ {
		for _, v := range m.field[i] {
			s += v
		}
	}
	return s
}

// checksum reduces the global field sum onto rank 0 of the component.
func (m *subModel) checksum() (float64, error) {
	res, err := m.comm.Reduce(0, []float64{m.localSum()}, mpi.Sum)
	if err != nil {
		return 0, err
	}
	if m.comm.Rank() == 0 {
		return res[0], nil
	}
	return 0, nil
}

// surfaceProfile returns the column means of the component's edge region (the
// bottom rows for the atmosphere, top rows for the ocean), reduced onto rank
// 0 — the field the components exchange when coupling.
func (m *subModel) surfaceProfile(fromBottom bool) ([]float64, error) {
	local := make([]float64, m.nx)
	var edgeRow int // global index of the edge row
	if fromBottom {
		edgeRow = m.ny - 1
	}
	if edgeRow >= m.r0 && edgeRow < m.r0+m.rows {
		i := edgeRow - m.r0 + 1
		copy(local, m.field[i])
	}
	res, err := m.comm.Reduce(0, local, mpi.Sum)
	if err != nil {
		return nil, err
	}
	return res, nil // non-nil only on rank 0
}

// applyForcing adds a resampled forcing profile to the component's edge row.
// Only the rank owning the edge row changes its field; the profile must be
// present on every rank (broadcast by the caller).
func (m *subModel) applyForcing(profile []float64, toBottom bool, gain float64) {
	var edgeRow int
	if toBottom {
		edgeRow = m.ny - 1
	}
	if edgeRow < m.r0 || edgeRow >= m.r0+m.rows {
		return
	}
	i := edgeRow - m.r0 + 1
	for j := 0; j < m.nx; j++ {
		src := j * len(profile) / m.nx // nearest-neighbour resample
		m.field[i][j] += gain * profile[src]
	}
}
