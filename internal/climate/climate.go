package climate

import (
	"fmt"
	"sync"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/mpi"
)

// Config parameterises a coupled run. The defaults mirror the paper's
// experiment shape: a larger atmosphere component, a smaller ocean component,
// coupling every second atmosphere step.
type Config struct {
	// AtmoRanks and OceanRanks split the world: ranks [0,AtmoRanks) run the
	// atmosphere, [AtmoRanks, AtmoRanks+OceanRanks) the ocean. Their sum
	// must equal the world size.
	AtmoRanks  int
	OceanRanks int
	// Grid sizes per component.
	AtmoNX, AtmoNY   int
	OceanNX, OceanNY int
	// Steps is the number of atmosphere time steps.
	Steps int
	// CoupleEvery exchanges surface fields every k atmosphere steps (the
	// paper's models couple every 2). 0 disables coupling.
	CoupleEvery int
	// Diffusivity and DT parameterise the explicit update (stability needs
	// Diffusivity*DT <= 0.25).
	Diffusivity float64
	DT          float64
	// Load adds synthetic per-cell physics work, calibrating the
	// compute-to-communication ratio.
	Load int
	// Gain scales the coupling forcing.
	Gain float64
}

// Defaults fills unset fields with a small, fast configuration.
func (c Config) withDefaults() Config {
	if c.AtmoRanks == 0 {
		c.AtmoRanks = 2
	}
	if c.OceanRanks == 0 {
		c.OceanRanks = 1
	}
	if c.AtmoNX == 0 {
		c.AtmoNX = 32
	}
	if c.AtmoNY == 0 {
		c.AtmoNY = 24
	}
	if c.OceanNX == 0 {
		c.OceanNX = 16
	}
	if c.OceanNY == 0 {
		c.OceanNY = 12
	}
	if c.Steps == 0 {
		c.Steps = 8
	}
	if c.Diffusivity == 0 {
		c.Diffusivity = 0.5
	}
	if c.DT == 0 {
		c.DT = 0.25
	}
	if c.Gain == 0 {
		c.Gain = 1e-3
	}
	return c
}

// Component colors for the split.
const (
	colorAtmo  = 0
	colorOcean = 1
)

// World-communicator tags for the root-to-root coupling exchange.
const (
	tagFluxes = 101 // atmosphere -> ocean
	tagSST    = 102 // ocean -> atmosphere
)

// Stats summarises a coupled run.
type Stats struct {
	// Steps is the number of atmosphere steps executed.
	Steps int
	// Exchanges is the number of coupling exchanges performed.
	Exchanges int
	// AtmoChecksum and OceanChecksum are the global field sums at the end —
	// bitwise deterministic for a given Config, independent of the
	// communication methods used.
	AtmoChecksum  float64
	OceanChecksum float64
	// Elapsed is the wall-clock duration of the parallel section.
	Elapsed time.Duration
}

// rankResult carries each rank's contribution back to the driver.
type rankResult struct {
	color    int
	checksum float64 // valid on component roots only
	isRoot   bool
}

// Run executes the coupled model over every rank of the world and returns
// the merged statistics. It drives all ranks on goroutines, which is how
// single-process machines execute SPMD programs in this repository.
func Run(w *mpi.World, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.AtmoRanks+cfg.OceanRanks != w.Size() {
		return Stats{}, fmt.Errorf("climate: %d+%d ranks != world size %d",
			cfg.AtmoRanks, cfg.OceanRanks, w.Size())
	}
	start := time.Now()
	results := make([]rankResult, w.Size())
	errs := make([]error, w.Size())
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = runRank(w.Comm(r), cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return Stats{}, fmt.Errorf("climate: rank %d: %w", r, err)
		}
	}
	st := Stats{Steps: cfg.Steps, Elapsed: time.Since(start)}
	if cfg.CoupleEvery > 0 {
		st.Exchanges = cfg.Steps / cfg.CoupleEvery
	}
	for _, res := range results {
		if !res.isRoot {
			continue
		}
		if res.color == colorAtmo {
			st.AtmoChecksum = res.checksum
		} else {
			st.OceanChecksum = res.checksum
		}
	}
	return st, nil
}

// runRank is the SPMD body for one rank.
func runRank(world *mpi.Comm, cfg Config) (rankResult, error) {
	color := colorAtmo
	if world.Rank() >= cfg.AtmoRanks {
		color = colorOcean
	}
	comp, err := world.Split(color, world.Rank())
	if err != nil {
		return rankResult{}, err
	}

	var m *subModel
	if color == colorAtmo {
		m, err = newSubModel(comp, cfg.AtmoNX, cfg.AtmoNY, cfg.Diffusivity, cfg.DT, cfg.Load,
			func(x, y int) float64 { return float64((x+1)*(y+2)%17) / 17.0 })
	} else {
		m, err = newSubModel(comp, cfg.OceanNX, cfg.OceanNY, cfg.Diffusivity, cfg.DT, cfg.Load,
			func(x, y int) float64 { return float64((x+3)*(y+1)%13) / 13.0 })
	}
	if err != nil {
		return rankResult{}, err
	}

	// The coupling roots are world rank 0 (atmosphere) and world rank
	// AtmoRanks (ocean).
	atmoRoot, oceanRoot := 0, cfg.AtmoRanks
	isCompRoot := comp.Rank() == 0

	oceanStride := 1
	if color == colorOcean && cfg.CoupleEvery > 0 {
		oceanStride = cfg.CoupleEvery // the ocean steps once per coupling interval
	}

	for step := 1; step <= cfg.Steps; step++ {
		if color == colorAtmo || step%oceanStride == 0 {
			if err := m.step(); err != nil {
				return rankResult{}, err
			}
		}
		if cfg.CoupleEvery > 0 && step%cfg.CoupleEvery == 0 {
			if err := couple(world, comp, m, color, atmoRoot, oceanRoot, isCompRoot, cfg); err != nil {
				return rankResult{}, err
			}
		}
	}

	sum, err := m.checksum()
	if err != nil {
		return rankResult{}, err
	}
	return rankResult{color: color, checksum: sum, isRoot: isCompRoot}, nil
}

// couple performs one inter-model exchange: the atmosphere's surface flux
// profile travels to the ocean and the ocean's SST profile to the
// atmosphere, root to root over the world communicator (the inter-partition
// path), then broadcast within each component.
func couple(world, comp *mpi.Comm, m *subModel, color, atmoRoot, oceanRoot int, isCompRoot bool, cfg Config) error {
	// Each component reduces its surface profile onto its root.
	profile, err := m.surfaceProfile(color == colorAtmo)
	if err != nil {
		return err
	}
	var inbound []float64
	if isCompRoot {
		sendTag, recvTag := tagFluxes, tagSST
		peer := oceanRoot
		if color == colorOcean {
			sendTag, recvTag = tagSST, tagFluxes
			peer = atmoRoot
		}
		b := buffer.New(8*len(profile) + 8)
		b.PutFloat64s(profile)
		msg, err := world.Sendrecv(peer, sendTag, b, peer, recvTag)
		if err != nil {
			return err
		}
		inbound = msg.Buf.Float64s()
		if err := msg.Buf.Err(); err != nil {
			return err
		}
	}
	// Broadcast the received profile within the component and apply it.
	var bb *buffer.Buffer
	if isCompRoot {
		bb = buffer.New(8*len(inbound) + 8)
		bb.PutFloat64s(inbound)
	}
	got, err := comp.Bcast(0, bb)
	if err != nil {
		return err
	}
	forcing := got.Float64s()
	if err := got.Err(); err != nil {
		return err
	}
	m.applyForcing(forcing, color == colorAtmo, cfg.Gain)
	return nil
}

// wrapFloats packs a float64 vector into a fresh buffer.
func wrapFloats(v []float64) *buffer.Buffer {
	b := buffer.New(8*len(v) + 8)
	b.PutFloat64s(v)
	return b
}

// rowFromBuf unpacks a halo row into dst, validating its length.
func rowFromBuf(msg *mpi.Message, dst []float64, nx int) error {
	v := msg.Buf.Float64s()
	if err := msg.Buf.Err(); err != nil {
		return err
	}
	if len(v) != nx {
		return fmt.Errorf("climate: halo row length %d, want %d", len(v), nx)
	}
	copy(dst, v)
	return nil
}
