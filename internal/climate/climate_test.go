package climate

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/cluster"
	"nexus/internal/core"
	"nexus/internal/mpi"
	"nexus/internal/transport"
)

func fastParams() transport.Params {
	return transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}
}

func worldOn(t testing.TB, cfg cluster.Config) *mpi.World {
	t.Helper()
	m, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	w, err := mpi.New(m)
	if err != nil {
		t.Fatal(err)
	}
	w.SetTimeout(20 * time.Second)
	return w
}

func smallConfig() Config {
	return Config{
		AtmoRanks: 3, OceanRanks: 2,
		AtmoNX: 24, AtmoNY: 18,
		OceanNX: 12, OceanNY: 10,
		Steps: 6, CoupleEvery: 2,
		Diffusivity: 0.5, DT: 0.25,
	}
}

func TestRowsForPartition(t *testing.T) {
	f := func(nyRaw, ranksRaw uint8) bool {
		ny := int(nyRaw)%200 + 1
		ranks := int(ranksRaw)%16 + 1
		if ny < ranks {
			return true
		}
		covered := 0
		prevEnd := 0
		for r := 0; r < ranks; r++ {
			r0, count := rowsFor(ny, ranks, r)
			if r0 != prevEnd || count < 1 {
				return false
			}
			prevEnd = r0 + count
			covered += count
		}
		return covered == ny && prevEnd == ny
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRunCompletes(t *testing.T) {
	cfg := smallConfig()
	w := worldOn(t, cluster.Uniform(cfg.AtmoRanks+cfg.OceanRanks, "p", core.MethodConfig{Name: "inproc"}))
	st, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != cfg.Steps || st.Exchanges != cfg.Steps/cfg.CoupleEvery {
		t.Errorf("Stats = %+v", st)
	}
	if st.AtmoChecksum == 0 || st.OceanChecksum == 0 {
		t.Errorf("zero checksums: %+v", st)
	}
}

// TestDeterministicAcrossMethods is the central integration invariant: the
// coupled model produces bitwise-identical results whether it runs over a
// single shared-memory machine or over the paper's two-partition layout
// (mpl inside components, wan between them).
func TestDeterministicAcrossMethods(t *testing.T) {
	cfg := smallConfig()
	n := cfg.AtmoRanks + cfg.OceanRanks

	w1 := worldOn(t, cluster.Uniform(n, "p", core.MethodConfig{Name: "inproc"}))
	st1, err := Run(w1, cfg)
	if err != nil {
		t.Fatal(err)
	}

	w2 := worldOn(t, cluster.TwoPartition(cfg.AtmoRanks, "atmo", cfg.OceanRanks, "ocean",
		core.MethodConfig{Name: "mpl", Params: fastParams()},
		core.MethodConfig{Name: "wan", Params: fastParams()},
	))
	st2, err := Run(w2, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if st1.AtmoChecksum != st2.AtmoChecksum {
		t.Errorf("atmo checksum differs across methods: %v vs %v", st1.AtmoChecksum, st2.AtmoChecksum)
	}
	if st1.OceanChecksum != st2.OceanChecksum {
		t.Errorf("ocean checksum differs across methods: %v vs %v", st1.OceanChecksum, st2.OceanChecksum)
	}
}

// TestConservationWithoutCoupling checks the diffusion invariant: with
// coupling disabled, the zero-flux boundaries conserve each field's total.
func TestConservationWithoutCoupling(t *testing.T) {
	cfg := smallConfig()
	cfg.CoupleEvery = 0
	cfg.Steps = 10
	n := cfg.AtmoRanks + cfg.OceanRanks
	w := worldOn(t, cluster.Uniform(n, "p", core.MethodConfig{Name: "inproc"}))

	// Initial sums, computed directly from the init functions.
	atmoInit, oceanInit := 0.0, 0.0
	for y := 0; y < cfg.AtmoNY; y++ {
		for x := 0; x < cfg.AtmoNX; x++ {
			atmoInit += float64((x+1)*(y+2)%17) / 17.0
		}
	}
	for y := 0; y < cfg.OceanNY; y++ {
		for x := 0; x < cfg.OceanNX; x++ {
			oceanInit += float64((x+3)*(y+1)%13) / 13.0
		}
	}

	st, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(st.AtmoChecksum-atmoInit) / atmoInit; rel > 1e-9 {
		t.Errorf("atmo total drifted: %v -> %v (rel %e)", atmoInit, st.AtmoChecksum, rel)
	}
	if rel := math.Abs(st.OceanChecksum-oceanInit) / oceanInit; rel > 1e-9 {
		t.Errorf("ocean total drifted: %v -> %v (rel %e)", oceanInit, st.OceanChecksum, rel)
	}
	if st.Exchanges != 0 {
		t.Errorf("Exchanges = %d with coupling disabled", st.Exchanges)
	}
}

// TestCouplingAffectsFields ensures the exchanged profiles actually feed
// back into the models (so a broken coupling path would be caught).
func TestCouplingAffectsFields(t *testing.T) {
	base := smallConfig()
	n := base.AtmoRanks + base.OceanRanks

	run := func(coupleEvery int) Stats {
		cfg := base
		cfg.CoupleEvery = coupleEvery
		cfg.Gain = 0.05
		w := worldOn(t, cluster.Uniform(n, "p", core.MethodConfig{Name: "inproc"}))
		st, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	with := run(2)
	without := run(0)
	if with.AtmoChecksum == without.AtmoChecksum {
		t.Error("coupling has no effect on the atmosphere field")
	}
	if with.OceanChecksum == without.OceanChecksum {
		t.Error("coupling has no effect on the ocean field")
	}
}

func TestRunDeterministicRepeat(t *testing.T) {
	cfg := smallConfig()
	cfg.Load = 2
	n := cfg.AtmoRanks + cfg.OceanRanks
	var first Stats
	for i := 0; i < 2; i++ {
		w := worldOn(t, cluster.Uniform(n, "p", core.MethodConfig{Name: "inproc"}))
		st, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st
			continue
		}
		if st.AtmoChecksum != first.AtmoChecksum || st.OceanChecksum != first.OceanChecksum {
			t.Errorf("run %d differs: %+v vs %+v", i, st, first)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w := worldOn(t, cluster.Uniform(3, "p", core.MethodConfig{Name: "inproc"}))
	cfg := smallConfig() // needs 5 ranks
	if _, err := Run(w, cfg); err == nil {
		t.Error("rank mismatch accepted")
	}
	// More ranks than rows.
	cfg2 := Config{AtmoRanks: 2, OceanRanks: 1, AtmoNX: 8, AtmoNY: 1, OceanNX: 8, OceanNY: 8, Steps: 1, CoupleEvery: 0}
	if _, err := Run(w, cfg2); err == nil {
		t.Error("1 row over 2 ranks accepted")
	}
}

func TestSingleRankComponents(t *testing.T) {
	cfg := Config{
		AtmoRanks: 1, OceanRanks: 1,
		AtmoNX: 8, AtmoNY: 6, OceanNX: 8, OceanNY: 6,
		Steps: 4, CoupleEvery: 2, Diffusivity: 0.5, DT: 0.25,
	}
	w := worldOn(t, cluster.Uniform(2, "p", core.MethodConfig{Name: "inproc"}))
	st, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Exchanges != 2 {
		t.Errorf("Exchanges = %d", st.Exchanges)
	}
}
