package frag

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReassemble drives a small-budget reassembler with a script of
// interleaved, reordered, duplicated, truncated, and hostile fragment
// sequences and checks the safety invariants the dispatch path relies on:
// Add never panics, and a completed payload is exactly the original bytes —
// corruption is never delivered, no matter what arrives in what order. (The
// script may replay a full fragment set after a completion, which starts a
// legitimate fresh message under the reused id; real senders never reuse
// ids, so at-most-once delivery is the sender's counter's job, not checked
// here.)
func FuzzReassemble(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{3, 2, 1, 0, 0, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 128, 200, 255})
	f.Add(bytes.Repeat([]byte{7, 11, 13}, 20))
	f.Fuzz(func(t *testing.T, script []byte) {
		r := New(Config{
			MaxMessage:    1 << 12,
			PerPeerBudget: 1 << 13,
			TTL:           time.Hour,
			MaxFragments:  16,
			MaxPartials:   4,
		})
		// Two canonical messages whose fragments the script replays in any
		// order; completions must reproduce these exact bytes.
		msgs := [2][]byte{
			bytes.Repeat([]byte{0xA5}, 700),
			[]byte("the quick brown fox jumps over the lazy dog"),
		}
		const perMsg = 8
		chunks := [2][][]byte{splitInto(msgs[0], perMsg), splitInto(msgs[1], perMsg)}
		now := time.Unix(0, 0)
		for _, op := range script {
			now = now.Add(time.Duration(op%5) * time.Second)
			switch which := op % 8; {
			case which < 2:
				// Canonical fragment of message `which`, index from the op.
				m := int(which)
				idx := uint32(op/8) % perMsg
				payload, res, _ := r.Add(1, uint64(m), idx, perMsg, chunks[m][idx], now)
				if res == Complete && !bytes.Equal(payload, msgs[m]) {
					t.Fatalf("message %d completed corrupted: %d bytes vs %d",
						m, len(payload), len(msgs[m]))
				}
			case which < 4:
				// Truncated/garbage chunk on its own message id: must never
				// interfere with the canonical messages.
				r.Add(1, 100+uint64(op), uint32(op)%4, 4, []byte{op}, now)
			case which < 6:
				// Hostile metadata: contradictory totals, out-of-range index,
				// oversized chunk against the tiny budgets.
				r.Add(2, 7, uint32(op), uint32(op%3), bytes.Repeat([]byte{op}, int(op)+1), now)
			default:
				r.Expire(now)
			}
		}
		if r.Partials() < 0 || r.BufferedBytes() < 0 {
			t.Fatalf("negative accounting: partials=%d bytes=%d", r.Partials(), r.BufferedBytes())
		}
	})
}
