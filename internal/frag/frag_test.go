package frag

import (
	"bytes"
	"testing"
	"time"
)

var t0 = time.Unix(1000, 0)

// splitInto cuts payload into n roughly equal chunks.
func splitInto(payload []byte, n int) [][]byte {
	chunks := make([][]byte, n)
	size := (len(payload) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * size
		hi := min(lo+size, len(payload))
		chunks[i] = payload[lo:hi]
	}
	return chunks
}

func TestReassembleInOrder(t *testing.T) {
	r := New(Config{})
	payload := bytes.Repeat([]byte("abcdefg"), 100)
	chunks := splitInto(payload, 4)
	for i := 0; i < 3; i++ {
		got, res, _ := r.Add(1, 42, uint32(i), 4, chunks[i], t0)
		if res != Stored || got != nil {
			t.Fatalf("fragment %d: res=%v payload=%v, want Stored", i, res, got != nil)
		}
	}
	got, res, _ := r.Add(1, 42, 3, 4, chunks[3], t0)
	if res != Complete {
		t.Fatalf("last fragment: res=%v, want Complete", res)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled payload differs: %d bytes vs %d", len(got), len(payload))
	}
	if r.Partials() != 0 || r.BufferedBytes() != 0 {
		t.Errorf("state not released after completion: partials=%d bytes=%d", r.Partials(), r.BufferedBytes())
	}
}

func TestReassembleOutOfOrderAndDuplicates(t *testing.T) {
	r := New(Config{})
	payload := []byte("0123456789abcdef")
	chunks := splitInto(payload, 4)
	order := []uint32{2, 0, 3}
	for _, i := range order {
		if _, res, _ := r.Add(9, 7, i, 4, chunks[i], t0); res != Stored {
			t.Fatalf("fragment %d: res=%v, want Stored", i, res)
		}
	}
	if _, res, _ := r.Add(9, 7, 2, 4, chunks[2], t0); res != Duplicate {
		t.Fatalf("repeated fragment: res=%v, want Duplicate", res)
	}
	got, res, _ := r.Add(9, 7, 1, 4, chunks[1], t0)
	if res != Complete || !bytes.Equal(got, payload) {
		t.Fatalf("out-of-order completion failed: res=%v got=%q", res, got)
	}
}

func TestInvalidFragments(t *testing.T) {
	r := New(Config{MaxFragments: 8})
	cases := []struct {
		name         string
		index, total uint32
		chunk        []byte
	}{
		{"zero total", 0, 0, []byte("x")},
		{"index out of range", 5, 5, []byte("x")},
		{"too many fragments", 0, 9, []byte("x")},
		{"empty chunk", 0, 2, nil},
	}
	for _, c := range cases {
		if _, res, _ := r.Add(1, 1, c.index, c.total, c.chunk, t0); res != Invalid {
			t.Errorf("%s: res=%v, want Invalid", c.name, res)
		}
	}
	// A total disagreeing with earlier fragments of the same message.
	if _, res, _ := r.Add(1, 2, 0, 3, []byte("x"), t0); res != Stored {
		t.Fatalf("setup fragment: res=%v", res)
	}
	if _, res, _ := r.Add(1, 2, 1, 4, []byte("y"), t0); res != Invalid {
		t.Errorf("total mismatch: res=%v, want Invalid", res)
	}
	if r.Partials() != 1 {
		t.Errorf("mismatch dropped existing partial: partials=%d, want 1", r.Partials())
	}
}

func TestPerMessageSizeCap(t *testing.T) {
	r := New(Config{MaxMessage: 10})
	if _, res, _ := r.Add(1, 1, 0, 2, bytes.Repeat([]byte{1}, 8), t0); res != Stored {
		t.Fatalf("first chunk: res=%v", res)
	}
	if _, res, _ := r.Add(1, 1, 1, 2, bytes.Repeat([]byte{2}, 8), t0); res != TooLarge {
		t.Fatalf("overflowing chunk: res=%v, want TooLarge", res)
	}
	if r.Partials() != 0 {
		t.Errorf("oversized message not dropped whole: partials=%d", r.Partials())
	}
}

func TestPerPeerBudget(t *testing.T) {
	r := New(Config{MaxMessage: 100, PerPeerBudget: 150})
	if _, res, _ := r.Add(1, 1, 0, 2, bytes.Repeat([]byte{1}, 90), t0); res != Stored {
		t.Fatalf("msg 1: res=%v", res)
	}
	// A second partial from the same peer pushes past the budget...
	if _, res, _ := r.Add(1, 2, 0, 2, bytes.Repeat([]byte{2}, 90), t0); res != OverBudget {
		t.Fatalf("msg 2 over budget: res=%v, want OverBudget", res)
	}
	// ...but another peer has its own budget.
	if _, res, _ := r.Add(2, 3, 0, 2, bytes.Repeat([]byte{3}, 90), t0); res != Stored {
		t.Fatalf("other peer: res=%v, want Stored", res)
	}
}

func TestMaxPartialsEvictsOldest(t *testing.T) {
	r := New(Config{MaxPartials: 2})
	r.Add(1, 1, 0, 2, []byte("old"), t0)
	r.Add(1, 2, 0, 2, []byte("mid"), t0.Add(time.Second))
	_, res, evicted := r.Add(1, 3, 0, 2, []byte("new"), t0.Add(2*time.Second))
	if res != Stored || evicted != 1 {
		t.Fatalf("third partial: res=%v evicted=%d, want Stored/1", res, evicted)
	}
	// Message 1 (the oldest) is gone: completing it now restarts it instead.
	if _, res, _ := r.Add(1, 1, 1, 2, []byte("tail"), t0.Add(2*time.Second)); res != Stored {
		t.Errorf("evicted message's fragment: res=%v, want Stored (fresh partial)", res)
	}
}

func TestExpire(t *testing.T) {
	r := New(Config{TTL: time.Second})
	r.Add(1, 1, 0, 2, []byte("a"), t0)
	r.Add(2, 2, 0, 2, []byte("b"), t0.Add(500*time.Millisecond))
	if n := r.Expire(t0.Add(900 * time.Millisecond)); n != 0 {
		t.Fatalf("early expire dropped %d", n)
	}
	if n := r.Expire(t0.Add(1100 * time.Millisecond)); n != 1 {
		t.Fatalf("first expire dropped %d, want 1", n)
	}
	if n := r.Expire(t0.Add(2 * time.Second)); n != 1 {
		t.Fatalf("second expire dropped %d, want 1", n)
	}
	if r.Partials() != 0 {
		t.Errorf("partials=%d after full expiry", r.Partials())
	}
	// Expired state is gone for good: the sender must start over.
	if _, res, _ := r.Add(1, 1, 1, 2, []byte("late"), t0.Add(3*time.Second)); res != Stored {
		t.Errorf("fragment after expiry: res=%v, want Stored (fresh partial)", res)
	}
}

func TestChunkIsCopied(t *testing.T) {
	r := New(Config{})
	chunk := []byte("mutated-after-add")
	r.Add(1, 1, 0, 2, chunk, t0)
	for i := range chunk {
		chunk[i] = 0
	}
	got, res, _ := r.Add(1, 1, 1, 2, []byte("!"), t0)
	if res != Complete {
		t.Fatalf("res=%v", res)
	}
	if !bytes.Equal(got[:17], []byte("mutated-after-add")) {
		t.Errorf("reassembler aliased the caller's chunk: %q", got)
	}
}
