// Package frag reassembles fragmented bulk messages.
//
// A payload too large for the selected communication method travels as a
// sequence of wire fragments (wire.FlagFrag): every fragment carries the
// message id shared by the whole logical message plus its index and the
// fragment count. The Reassembler collects fragments per (source context,
// message id), tolerating out-of-order arrival and suppressing duplicates,
// and returns the concatenated payload once every index is present.
//
// Buffering unacknowledged partial messages is a memory liability on a
// receiver that cannot trust its peers, so the reassembler enforces three
// budgets: a per-message size cap (MaxMessage), a per-source-context byte
// budget across all of that peer's partial messages (PerPeerBudget), and a
// cap on concurrently open partial messages per peer (MaxPartials, with
// oldest-first eviction so a sender's retry is never wedged behind its own
// abandoned attempt). Partial messages whose sender went quiet are garbage
// collected after a TTL; the polling loop drives expiry, and the fast path
// for "nothing buffered / nothing due" is two atomic loads.
package frag

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/bufpool"
)

// Defaults for Config fields left zero.
const (
	// DefaultMaxMessage caps one reassembled message at 16 MiB.
	DefaultMaxMessage = 16 << 20
	// DefaultTTL is how long a partial message may wait for its missing
	// fragments before being dropped.
	DefaultTTL = 10 * time.Second
	// DefaultMaxFragments caps the fragment count of one message. It bounds
	// the index-table allocation a single fragment can force; senders check
	// the same constant so a conforming sender never exceeds it.
	DefaultMaxFragments = 4096
	// DefaultMaxPartials caps concurrently open partial messages per peer.
	DefaultMaxPartials = 64
)

// Config tunes a Reassembler. Zero fields select the defaults above;
// PerPeerBudget defaults to twice MaxMessage.
type Config struct {
	// MaxMessage is the largest reassembled payload accepted, in bytes.
	MaxMessage int
	// PerPeerBudget caps the bytes buffered across all partial messages from
	// one source context.
	PerPeerBudget int
	// TTL is how long a partial message waits for missing fragments,
	// measured from its first fragment.
	TTL time.Duration
	// MaxFragments caps one message's fragment count.
	MaxFragments int
	// MaxPartials caps concurrently open partial messages per peer; opening
	// one more evicts the peer's oldest.
	MaxPartials int
}

func (c Config) withDefaults() Config {
	if c.MaxMessage <= 0 {
		c.MaxMessage = DefaultMaxMessage
	}
	if c.PerPeerBudget <= 0 {
		c.PerPeerBudget = 2 * c.MaxMessage
	}
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.MaxFragments <= 0 {
		c.MaxFragments = DefaultMaxFragments
	}
	if c.MaxPartials <= 0 {
		c.MaxPartials = DefaultMaxPartials
	}
	return c
}

// AddResult classifies what Add did with a fragment.
type AddResult int

const (
	// Stored: the fragment was buffered; the message is still incomplete.
	Stored AddResult = iota
	// Complete: the fragment completed its message; Add returned the payload.
	Complete
	// Duplicate: a fragment with this index was already buffered; dropped.
	Duplicate
	// Invalid: the fragment is self-contradictory (zero or oversized total,
	// index out of range, empty chunk, or a total disagreeing with earlier
	// fragments of the same message); the fragment is dropped, any existing
	// partial state is kept.
	Invalid
	// OverBudget: accepting the fragment would exceed the per-peer byte
	// budget; the whole partial message was dropped.
	OverBudget
	// TooLarge: the accumulated message would exceed MaxMessage; the whole
	// partial message was dropped.
	TooLarge
)

func (r AddResult) String() string {
	switch r {
	case Stored:
		return "stored"
	case Complete:
		return "complete"
	case Duplicate:
		return "duplicate"
	case Invalid:
		return "invalid"
	case OverBudget:
		return "overbudget"
	case TooLarge:
		return "toolarge"
	}
	return "unknown"
}

// key identifies one logical message: ids are only unique per sender.
type key struct {
	src uint64
	msg uint64
}

// message is one partial message's buffered state.
type message struct {
	chunks   [][]byte // index → chunk (pooled storage), nil = missing
	got      int
	bytes    int
	deadline time.Time
}

// Reassembler collects fragments into whole payloads.
type Reassembler struct {
	cfg Config

	mu        sync.Mutex
	msgs      map[key]*message
	peerBytes map[uint64]int
	peerMsgs  map[uint64]int

	// partials mirrors len(msgs) and earliest the soonest deadline (unix
	// nanoseconds, MaxInt64 when idle) so Expire's nothing-to-do fast path —
	// the common case, run on every poll pass — takes no lock.
	partials atomic.Int64
	earliest atomic.Int64
}

// New returns a reassembler with the given budgets.
func New(cfg Config) *Reassembler {
	r := &Reassembler{
		cfg:       cfg.withDefaults(),
		msgs:      make(map[key]*message),
		peerBytes: make(map[uint64]int),
		peerMsgs:  make(map[uint64]int),
	}
	r.earliest.Store(math.MaxInt64)
	return r
}

// Config reports the effective (default-filled) configuration.
func (r *Reassembler) Config() Config { return r.cfg }

// Add buffers one fragment of message msgID from source context src. chunk
// is borrowed: Add copies what it keeps. On Complete the returned payload is
// pooled storage owned by the caller (hand it back with bufpool.Put when
// done). evicted counts partial messages dropped to make room under the
// per-peer partials cap — they are gone for good, exactly as if they had
// expired.
func (r *Reassembler) Add(src, msgID uint64, index, total uint32, chunk []byte, now time.Time) (payload []byte, res AddResult, evicted int) {
	if total == 0 || index >= total || int(total) > r.cfg.MaxFragments || len(chunk) == 0 {
		return nil, Invalid, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key{src: src, msg: msgID}
	m := r.msgs[k]
	if m == nil {
		for r.peerMsgs[src] >= r.cfg.MaxPartials {
			r.evictOldestLocked(src)
			evicted++
		}
		m = &message{
			chunks:   make([][]byte, total),
			deadline: now.Add(r.cfg.TTL),
		}
		r.msgs[k] = m
		r.peerMsgs[src]++
		r.partials.Add(1)
		if dl := m.deadline.UnixNano(); dl < r.earliest.Load() {
			r.earliest.Store(dl)
		}
	} else if len(m.chunks) != int(total) {
		return nil, Invalid, evicted
	}
	if m.chunks[index] != nil {
		return nil, Duplicate, evicted
	}
	if m.bytes+len(chunk) > r.cfg.MaxMessage {
		r.dropLocked(k, m)
		return nil, TooLarge, evicted
	}
	if r.peerBytes[src]+len(chunk) > r.cfg.PerPeerBudget {
		r.dropLocked(k, m)
		return nil, OverBudget, evicted
	}
	cp := bufpool.Get(len(chunk))
	copy(cp, chunk)
	m.chunks[index] = cp
	m.got++
	m.bytes += len(chunk)
	r.peerBytes[src] += len(chunk)
	if m.got < int(total) {
		return nil, Stored, evicted
	}
	out := bufpool.Get(m.bytes)
	n := 0
	for _, c := range m.chunks {
		n += copy(out[n:], c)
	}
	r.dropLocked(k, m)
	return out, Complete, evicted
}

// dropLocked releases one partial message's storage and accounting.
func (r *Reassembler) dropLocked(k key, m *message) {
	for i, c := range m.chunks {
		if c != nil {
			bufpool.Put(c)
			m.chunks[i] = nil
		}
	}
	r.peerBytes[k.src] -= m.bytes
	if r.peerBytes[k.src] <= 0 {
		delete(r.peerBytes, k.src)
	}
	if r.peerMsgs[k.src]--; r.peerMsgs[k.src] <= 0 {
		delete(r.peerMsgs, k.src)
	}
	delete(r.msgs, k)
	r.partials.Add(-1)
}

// evictOldestLocked drops the peer's partial message with the soonest
// deadline (i.e. the oldest, since TTL is constant).
func (r *Reassembler) evictOldestLocked(src uint64) {
	var (
		oldestK key
		oldestM *message
	)
	for k, m := range r.msgs {
		if k.src != src {
			continue
		}
		if oldestM == nil || m.deadline.Before(oldestM.deadline) {
			oldestK, oldestM = k, m
		}
	}
	if oldestM != nil {
		r.dropLocked(oldestK, oldestM)
	}
}

// Expire drops every partial message whose deadline has passed and returns
// how many were dropped. With nothing buffered, or nothing due yet, it is
// two atomic loads and no lock — cheap enough for every poll pass.
func (r *Reassembler) Expire(now time.Time) int {
	if r.partials.Load() == 0 {
		return 0
	}
	if now.UnixNano() < r.earliest.Load() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	dropped := 0
	next := int64(math.MaxInt64)
	for k, m := range r.msgs {
		if !m.deadline.After(now) {
			r.dropLocked(k, m)
			dropped++
		} else if dl := m.deadline.UnixNano(); dl < next {
			next = dl
		}
	}
	r.earliest.Store(next)
	return dropped
}

// Partials reports the number of partial messages currently buffered.
func (r *Reassembler) Partials() int { return int(r.partials.Load()) }

// BufferedBytes reports the total payload bytes currently buffered.
func (r *Reassembler) BufferedBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.peerBytes {
		n += b
	}
	return n
}
