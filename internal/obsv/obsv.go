// Package obsv is the observability layer behind the core's enquiry
// functions: lock-free latency histograms, cross-context RSR trace events,
// and the typed snapshot served by Context.Observe and /debug/nexusz.
//
// The paper's tuning story rests on measured per-method costs — the 15 µs
// MPL probe vs 100+ µs TCP select numbers that justify skip_poll — and on
// enquiry functions programmers use to evaluate automatic selection. This
// package supplies the measurement half: every instrumented operation
// records a duration into a fixed-bucket log₂(ns) histogram keyed by
// (method, stage), and, when tracing is enabled, appends an event carrying a
// 16-byte trace ID that travels inside the wire header, so one RSR can be
// followed from the sending context's send call through the receiving
// context's poll, queue, and handler stages.
//
// Everything here is built to cost nothing when disabled: the core gates all
// record calls behind one atomic mode load, histograms are plain atomic
// arrays (no locks, no allocation), and the event ring is bounded.
package obsv

import (
	"encoding/hex"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies an instrumented operation of the RSR lifecycle.
type Stage uint8

// The instrumented stages. Send, Dial, Poll, QueueWait, and Handler are the
// five per-(method, stage) latency histograms; Relay is recorded by
// forwarding contexts for frames relayed toward other contexts.
const (
	// StageSend is one Conn.Send call on the sending context.
	StageSend Stage = iota
	// StageDial is one Module.Dial call (connection establishment).
	StageDial
	// StagePoll is one Module.Poll call on the receiving context. In trace
	// events the poll stage instead carries detection latency: the time from
	// the start of the poll pass to the frame's delivery.
	StagePoll
	// StageQueueWait is the time a frame spent queued in a dispatch lane
	// between enqueue and pickup (threaded contexts only).
	StageQueueWait
	// StageHandler is the handler's execution time.
	StageHandler
	// StageRelay is a forwarder's re-send of a frame addressed elsewhere.
	StageRelay
	// StageRPCCall is one RPC round trip as observed by the caller: from
	// the request send to the completion of its future.
	StageRPCCall
	// StageRPCServe is a registered RPC handler's execution time on the
	// serving context.
	StageRPCServe

	// NumStages is the number of instrumented stages.
	NumStages = int(StageRPCServe) + 1
)

var stageNames = [NumStages]string{"send", "dial", "poll", "queue", "handler", "relay", "rpc_call", "rpc_serve"}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// NumBuckets is the histogram resolution: bucket i counts durations d with
// 2^(i-1) ns < d ≤ 2^i ns (bucket 0 counts d ≤ 1 ns). 40 buckets reach
// 2^39 ns ≈ 9.2 minutes; anything longer clamps into the last bucket.
const NumBuckets = 40

// Histogram is a lock-free fixed-bucket log₂(ns) latency histogram. The zero
// value is ready to use. Record costs two atomic adds and one atomic
// increment; there is no locking and no allocation on any path.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	b := bits.Len64(ns) // 1ns -> 1, 2ns -> 2, ... 2^k ns -> k+1
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNS.Add(uint64(d))
	h.buckets[bucketFor(d)].Add(1)
}

// Count reports the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean reports the mean observation, or 0 with no observations. It reads the
// count and sum with two atomic loads — cheap enough for selection policies
// to call on every selection pass.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Snapshot captures the histogram's current state. Buckets are read without
// a global lock, so a snapshot taken during concurrent recording may be off
// by in-flight observations; post-mortem and monitoring use does not care.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sumNS.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Buckets [NumBuckets]uint64
}

// Mean reports the snapshot's mean observation (0 with no observations).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile reports the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket containing it — a conservative estimate with log₂ resolution.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	seen := uint64(0)
	for i, b := range s.Buckets {
		seen += b
		if seen > rank {
			if i == 0 {
				return time.Nanosecond
			}
			return time.Duration(uint64(1) << uint(i)) // bucket upper bound
		}
	}
	return time.Duration(uint64(1) << (NumBuckets - 1))
}

// P50, P95, and P99 are the quantiles the snapshot surfaces report.
func (s HistogramSnapshot) P50() time.Duration { return s.Quantile(0.50) }
func (s HistogramSnapshot) P95() time.Duration { return s.Quantile(0.95) }
func (s HistogramSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// StageSet holds one method's histograms, one per stage. The zero value is
// ready to use; the core allocates one per enabled method.
type StageSet struct {
	stages [NumStages]Histogram
}

// Stage returns the histogram for one stage.
func (ss *StageSet) Stage(s Stage) *Histogram { return &ss.stages[s] }

// TraceID is the 16-byte identifier carried in the optional wire-header
// extension: bytes 0–7 are the trace half (constant across every context an
// RSR touches), bytes 8–15 the span half (fresh per RSR send). Receivers and
// relays propagate the full 16 bytes verbatim, which is what lets one dump
// line up events from both sides of a link.
type TraceID [16]byte

// IsZero reports whether the id is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as trace-span hex.
func (t TraceID) String() string {
	return hex.EncodeToString(t[:8]) + "-" + hex.EncodeToString(t[8:])
}

// IDGen generates trace IDs: a splitmix64 walk from a caller-supplied seed.
// Generation is one atomic add plus a few multiplies — cheap enough to run
// per RSR with tracing on, and good enough to make collisions across
// contexts (seeded with distinct context ids and start times) negligible.
type IDGen struct {
	state atomic.Uint64
	seed  uint64
}

// NewIDGen returns a generator whose ids are derived from seed.
func NewIDGen(seed uint64) *IDGen {
	g := &IDGen{seed: splitmix64(seed ^ 0x9e3779b97f4a7c15)}
	g.state.Store(seed)
	return g
}

// Next returns a fresh trace ID (both halves newly generated).
func (g *IDGen) Next() TraceID {
	var t TraceID
	n := g.state.Add(1)
	hi := splitmix64(n ^ g.seed)
	lo := splitmix64(hi ^ n)
	for i := 0; i < 8; i++ {
		t[i] = byte(hi >> (8 * i))
		t[8+i] = byte(lo >> (8 * i))
	}
	if t.IsZero() { // the zero id means "no trace"; never hand it out
		t[0] = 1
	}
	return t
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Event is one trace record in a context's ring buffer.
type Event struct {
	// Time is the wall-clock time the event was recorded.
	Time time.Time
	// Trace is the RSR's trace ID (zero for untraced operations that were
	// recorded while tracing was on, e.g. a dial outside any send).
	Trace TraceID
	// Stage identifies the operation.
	Stage Stage
	// Method is the communication method involved.
	Method string
	// Context is the recording context.
	Context uint64
	// Peer is the other context: the destination on send/dial/relay events,
	// the source on receive-side events (0 when unknown).
	Peer uint64
	// Endpoint is the destination endpoint (receive-side events).
	Endpoint uint64
	// Handler names the invoked handler (receive-side events).
	Handler string
	// Dur is the operation's duration. On StagePoll events it is the
	// detection latency: time from the start of the poll pass that found the
	// frame to its delivery.
	Dur time.Duration
}

func (e Event) String() string {
	return fmt.Sprintf("%s ctx=%d peer=%d %s/%s dur=%s trace=%s",
		e.Time.Format("15:04:05.000000"), e.Context, e.Peer, e.Method, e.Stage, e.Dur, e.Trace)
}

// Ring is a bounded event buffer: appends past capacity overwrite the oldest
// events, so the ring always holds the most recent window — a post-mortem
// flight recorder, not a complete log. Appends and dumps are guarded by one
// mutex; tracing-on overhead is one uncontended lock per event, and the
// disabled path never reaches the ring at all.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever appended
}

// NewRing returns a ring holding at most capacity events (minimum 16).
func NewRing(capacity int) *Ring {
	if capacity < 16 {
		capacity = 16
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records one event, overwriting the oldest once full.
func (r *Ring) Append(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = e
	}
	r.total++
	r.mu.Unlock()
}

// Dump returns the buffered events, oldest first.
func (r *Ring) Dump() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		head := int(r.total % uint64(cap(r.buf)))
		out = append(out, r.buf[head:]...)
		out = append(out, r.buf[:head]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Len reports the number of buffered events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Cap reports the ring's capacity.
func (r *Ring) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.buf)
}

// Total reports the number of events ever appended (buffered + overwritten).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Latency is one (method, stage) histogram in a Snapshot.
type Latency struct {
	Method string        `json:"method"`
	Stage  string        `json:"stage"`
	Count  uint64        `json:"count"`
	Mean   time.Duration `json:"mean_ns"`
	P50    time.Duration `json:"p50_ns"`
	P95    time.Duration `json:"p95_ns"`
	P99    time.Duration `json:"p99_ns"`
}

// Snapshot is the typed observability snapshot returned by Context.Observe
// and served by the /debug/nexusz handler.
type Snapshot struct {
	// Context is the observed context's id; Process its hosting process.
	Context uint64 `json:"context"`
	Process string `json:"process"`
	// StatsEnabled and TraceEnabled report the observability mode.
	StatsEnabled bool `json:"stats_enabled"`
	TraceEnabled bool `json:"trace_enabled"`
	// Counters is the context's enquiry counter set.
	Counters map[string]uint64 `json:"counters"`
	// Latencies holds every (method, stage) histogram with at least one
	// observation, sorted by method then stage.
	Latencies []Latency `json:"latencies"`
	// TraceBuffered, TraceCapacity, and TraceTotal describe the event ring.
	TraceBuffered int    `json:"trace_buffered"`
	TraceCapacity int    `json:"trace_capacity"`
	TraceTotal    uint64 `json:"trace_total"`
	// Cluster holds the membership view supplied by an attached gossip
	// agent (empty when the context runs no cluster layer).
	Cluster []ClusterMember `json:"cluster,omitempty"`
}

// ClusterMember is one row of a context's gossip membership view: what the
// local registry believes about one origin, plus the mesh route (if any)
// installed to reach it.
type ClusterMember struct {
	// Context is the member's context id.
	Context uint64 `json:"context"`
	// Partition is the member's partition tag.
	Partition string `json:"partition,omitempty"`
	// Seq is the member's registry version.
	Seq uint64 `json:"seq"`
	// Tombstone marks a departed member.
	Tombstone bool `json:"tombstone,omitempty"`
	// Forwarder marks a member advertising relay willingness.
	Forwarder bool `json:"forwarder,omitempty"`
	// Methods lists the member's advertised methods (comma-joined).
	Methods string `json:"methods,omitempty"`
	// Via is the next-hop relay id for a mesh-routed member (0 = direct).
	Via uint64 `json:"via,omitempty"`
}
