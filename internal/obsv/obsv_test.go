package obsv

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1024, 11},
		{time.Hour, NumBuckets - 1}, // clamps
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramRecordAndMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("zero histogram not empty")
	}
	h.Record(100)
	h.Record(300)
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 200 {
		t.Errorf("Mean = %d, want 200", h.Mean())
	}
	h.Record(-50) // clamps to 0
	if h.Count() != 3 {
		t.Errorf("Count after negative = %d", h.Count())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 observations around 1µs, 10 around 1ms: p50 lands in the µs bucket,
	// p99 in the ms bucket.
	for i := 0; i < 90; i++ {
		h.Record(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	p50, p99 := s.P50(), s.P99()
	if p50 < time.Microsecond || p50 > 2*time.Microsecond {
		t.Errorf("P50 = %s, want ~1-2µs", p50)
	}
	if p99 < time.Millisecond || p99 > 2*time.Millisecond {
		t.Errorf("P99 = %s, want ~1-2ms", p99)
	}
	if s.Quantile(1.0) < p99 {
		t.Errorf("Quantile(1.0) = %s below P99 %s", s.Quantile(1.0), p99)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty quantile = %s", empty.Quantile(0.5))
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d", h.Count(), workers*per)
	}
	s := h.Snapshot()
	var inBuckets uint64
	for _, b := range s.Buckets {
		inBuckets += b
	}
	if inBuckets != workers*per {
		t.Errorf("bucket sum = %d, want %d", inBuckets, workers*per)
	}
}

func TestTraceIDGen(t *testing.T) {
	g := NewIDGen(42)
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if id.IsZero() {
			t.Fatal("generator produced the zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate id after %d draws: %s", i, id)
		}
		seen[id] = true
	}
	// Distinct seeds must not walk the same sequence.
	g2 := NewIDGen(43)
	if g2.Next() == NewIDGen(42).Next() {
		t.Error("distinct seeds produced identical first ids")
	}
	id := g.Next()
	str := id.String()
	if len(str) != 33 || str[16] != '-' {
		t.Errorf("String format: %q", str)
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRing(16)
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	for i := 0; i < 40; i++ {
		r.Append(Event{Endpoint: uint64(i)})
	}
	if r.Len() != 16 || r.Total() != 40 {
		t.Fatalf("Len = %d, Total = %d", r.Len(), r.Total())
	}
	events := r.Dump()
	if len(events) != 16 {
		t.Fatalf("Dump len = %d", len(events))
	}
	for i, e := range events {
		if want := uint64(24 + i); e.Endpoint != want {
			t.Errorf("Dump[%d].Endpoint = %d, want %d (oldest-first window)", i, e.Endpoint, want)
		}
	}
	// Partially filled ring dumps in insertion order.
	r2 := NewRing(64)
	r2.Append(Event{Endpoint: 7})
	r2.Append(Event{Endpoint: 8})
	d := r2.Dump()
	if len(d) != 2 || d[0].Endpoint != 7 || d[1].Endpoint != 8 {
		t.Errorf("partial Dump = %v", d)
	}
	// Minimum capacity is enforced.
	if NewRing(0).Cap() < 16 {
		t.Error("NewRing(0) below minimum capacity")
	}
}

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageSend: "send", StageDial: "dial", StagePoll: "poll",
		StageQueueWait: "queue", StageHandler: "handler", StageRelay: "relay",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
	if Stage(99).String() != "stage(99)" {
		t.Errorf("out-of-range stage: %q", Stage(99).String())
	}
}

func TestHTTPHandler(t *testing.T) {
	src := func() []Snapshot {
		return []Snapshot{{
			Context: 3, Process: "p1", StatsEnabled: true, TraceEnabled: true,
			Counters: map[string]uint64{"rsr.sent": 12, "bytes.sent": 480},
			Latencies: []Latency{{
				Method: "tcp", Stage: "send", Count: 12,
				Mean: 900, P50: 1024, P95: 2048, P99: 2048,
			}},
			TraceBuffered: 4, TraceCapacity: 64, TraceTotal: 4,
		}}
	}
	h := Handler(src)

	// Text rendering.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/nexusz", nil))
	body := rec.Body.String()
	for _, want := range []string{"context 3", "tcp", "send", "rsr.sent", "stats=true"} {
		if !strings.Contains(body, want) {
			t.Errorf("text output missing %q:\n%s", want, body)
		}
	}

	// JSON rendering via query parameter.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/nexusz?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snaps []Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snaps); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(snaps) != 1 || snaps[0].Context != 3 || snaps[0].Counters["rsr.sent"] != 12 {
		t.Errorf("JSON round-trip = %+v", snaps)
	}

	// JSON via Accept header.
	req := httptest.NewRequest("GET", "/debug/nexusz", nil)
	req.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept-negotiated Content-Type = %q", ct)
	}
}
