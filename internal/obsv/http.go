package obsv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Handler returns the opt-in /debug/nexusz HTTP handler. src is called on
// every request and returns one Snapshot per context to render; the handler
// serves a human-readable text page by default and JSON when the request
// asks for it (?format=json, or an Accept header naming application/json).
//
// The handler is deliberately not registered anywhere by default: exposing
// internals over HTTP is the operator's decision, e.g.
//
//	mux.Handle("/debug/nexusz", obsv.Handler(func() []Snapshot {...}))
func Handler(src func() []Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snaps := src()
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snaps)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for i := range snaps {
			writeText(w, &snaps[i])
		}
	})
}

func writeText(w http.ResponseWriter, s *Snapshot) {
	fmt.Fprintf(w, "context %d (process %s)\n", s.Context, s.Process)
	fmt.Fprintf(w, "  observability: stats=%v trace=%v (events %d buffered / %d total, cap %d)\n",
		s.StatsEnabled, s.TraceEnabled, s.TraceBuffered, s.TraceTotal, s.TraceCapacity)
	if len(s.Latencies) > 0 {
		fmt.Fprintf(w, "  %-10s %-8s %10s %12s %12s %12s %12s\n",
			"method", "stage", "count", "mean", "p50", "p95", "p99")
		for _, l := range s.Latencies {
			fmt.Fprintf(w, "  %-10s %-8s %10d %12s %12s %12s %12s\n",
				l.Method, l.Stage, l.Count, l.Mean, l.P50, l.P95, l.P99)
		}
	}
	if len(s.Cluster) > 0 {
		fmt.Fprintf(w, "  cluster membership (%d records):\n", len(s.Cluster))
		fmt.Fprintf(w, "  %-10s %-12s %6s %-6s %-24s %s\n",
			"context", "partition", "seq", "state", "methods", "route")
		for _, m := range s.Cluster {
			state := "live"
			if m.Tombstone {
				state = "dead"
			} else if m.Forwarder {
				state = "relay"
			}
			route := "direct"
			if m.Via != 0 {
				route = fmt.Sprintf("via %d", m.Via)
			}
			fmt.Fprintf(w, "  %-10d %-12s %6d %-6s %-24s %s\n",
				m.Context, m.Partition, m.Seq, state, m.Methods, route)
		}
	}
	// Counters render sorted: the copy is taken from the snapshot map here,
	// outside any lock the producing context holds.
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "  counter %-36s %d\n", k, s.Counters[k])
	}
	fmt.Fprintln(w)
}
