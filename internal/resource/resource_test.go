package resource

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"nexus/internal/core"
	"nexus/internal/transport"
)

func TestParseSpecBasic(t *testing.T) {
	got, err := ParseSpec("mpl,tcp:skip_poll=20:sndbuf=262144,udp:loss=0.01:blocking=true")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.MethodConfig{
		{Name: "mpl", Params: transport.Params{}},
		{Name: "tcp", SkipPoll: 20, Params: transport.Params{"sndbuf": "262144"}},
		{Name: "udp", Blocking: true, Params: transport.Params{"loss": "0.01"}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseSpec:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseSpecWhitespaceAndEmpty(t *testing.T) {
	got, err := ParseSpec(" mpl , tcp : skip_poll = 3 ,, ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "mpl" || got[1].Name != "tcp" || got[1].SkipPoll != 3 {
		t.Errorf("got %+v", got)
	}
	if got, err := ParseSpec(""); err != nil || len(got) != 0 {
		t.Errorf("empty spec: %v, %v", got, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		":x=1",                 // empty name
		"tcp:novalue",          // malformed kv
		"tcp:skip_poll=zero",   // bad skip_poll
		"tcp:skip_poll=0",      // skip_poll < 1
		"tcp:blocking=perhaps", // bad bool
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) succeeded", s)
		}
	}
}

func TestFormatSpecRoundTrip(t *testing.T) {
	specs := []string{
		"mpl,tcp:skip_poll=20:sndbuf=262144",
		"udp:blocking=true:loss=0.5",
		"local",
	}
	for _, s := range specs {
		parsed, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		reparsed, err := ParseSpec(FormatSpec(parsed))
		if err != nil {
			t.Fatalf("reparse of %q: %v", FormatSpec(parsed), err)
		}
		if !reflect.DeepEqual(parsed, reparsed) {
			t.Errorf("round trip of %q:\n got %+v\nwant %+v", s, reparsed, parsed)
		}
	}
}

func TestPropertyFormatParseRoundTrip(t *testing.T) {
	names := []string{"mpl", "tcp", "udp", "atm", "inproc"}
	f := func(idx []uint8, skips []uint8) bool {
		var methods []core.MethodConfig
		seen := map[string]bool{}
		for i, ix := range idx {
			name := names[int(ix)%len(names)]
			if seen[name] {
				continue
			}
			seen[name] = true
			mc := core.MethodConfig{Name: name, Params: transport.Params{}}
			if i < len(skips) && skips[i] > 0 {
				mc.SkipPoll = int(skips[i])
			}
			methods = append(methods, mc)
		}
		out, err := ParseSpec(FormatSpec(methods))
		if err != nil {
			return false
		}
		// SkipPoll 1 is a fixpoint wrinkle: FormatSpec omits it, ParseSpec
		// leaves zero. Normalize both sides to compare.
		norm := func(in []core.MethodConfig) []core.MethodConfig {
			o := make([]core.MethodConfig, len(in))
			for i, mc := range in {
				if mc.SkipPoll <= 1 {
					mc.SkipPoll = 0
				}
				o[i] = mc
			}
			return o
		}
		return reflect.DeepEqual(norm(methods), norm(out))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

const sampleDB = `
# cluster-wide defaults
* = inproc,tcp

# the SP2 partition gets the fast fabric first and throttles tcp polls
partition:sp2 = mpl,tcp:skip_poll=100

# context 7 is the forwarder: poll tcp every pass, big buffers
context:7 = tcp:sndbuf=1048576
`

func TestDatabaseResolution(t *testing.T) {
	db, err := ParseString(sampleDB)
	if err != nil {
		t.Fatal(err)
	}

	// Unknown partition: global only.
	got := db.MethodsFor(1, "elsewhere")
	if len(got) != 2 || got[0].Name != "inproc" || got[1].Name != "tcp" {
		t.Errorf("global resolution: %+v", got)
	}

	// sp2 partition: mpl appended, tcp overridden in place (keeps position).
	got = db.MethodsFor(2, "sp2")
	if len(got) != 3 {
		t.Fatalf("sp2 resolution: %+v", got)
	}
	if got[0].Name != "inproc" || got[1].Name != "tcp" || got[2].Name != "mpl" {
		t.Errorf("sp2 order: %s,%s,%s", got[0].Name, got[1].Name, got[2].Name)
	}
	if got[1].SkipPoll != 100 {
		t.Errorf("sp2 tcp skip_poll = %d", got[1].SkipPoll)
	}

	// context 7 in sp2: tcp overridden again by the most specific entry.
	got = db.MethodsFor(7, "sp2")
	tcp := got[1]
	if tcp.Name != "tcp" || tcp.SkipPoll != 0 || tcp.Params["sndbuf"] != "1048576" {
		t.Errorf("context 7 tcp = %+v", tcp)
	}
}

func TestDatabaseParseErrors(t *testing.T) {
	bad := []string{
		"no-equals-here",
		"bogus:sel = tcp",
		"context:xyz = tcp",
		"* = tcp:skip_poll=bad",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded", s)
		}
	}
}

func TestDatabaseProgrammaticSetters(t *testing.T) {
	db := NewDatabase()
	db.SetGlobal([]core.MethodConfig{{Name: "tcp"}})
	db.SetPartition("a", []core.MethodConfig{{Name: "mpl"}})
	db.SetContext(3, []core.MethodConfig{{Name: "udp"}})
	got := db.MethodsFor(3, "a")
	if len(got) != 3 || got[0].Name != "tcp" || got[1].Name != "mpl" || got[2].Name != "udp" {
		t.Errorf("resolution: %+v", got)
	}
}

func TestOverlayDoesNotMutateBaseParams(t *testing.T) {
	db := NewDatabase()
	db.SetGlobal([]core.MethodConfig{{Name: "tcp", Params: transport.Params{"a": "1"}}})
	db.SetContext(1, []core.MethodConfig{{Name: "tcp", Params: transport.Params{"a": "2"}}})
	r1 := db.MethodsFor(1, "")
	r1[0].Params["a"] = "mutated"
	r2 := db.MethodsFor(1, "")
	if r2[0].Params["a"] != "2" {
		t.Errorf("database state mutated through resolution result: %v", r2[0].Params)
	}
	r3 := db.MethodsFor(9, "")
	if r3[0].Params["a"] != "1" {
		t.Errorf("global entry mutated: %v", r3[0].Params)
	}
}

func TestDatabaseIgnoresCommentsAndBlank(t *testing.T) {
	db, err := ParseString("\n   \n# only comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := db.MethodsFor(1, "x"); len(got) != 0 {
		t.Errorf("empty db resolved %+v", got)
	}
	if !strings.Contains(sampleDB, "#") {
		t.Skip("sanity")
	}
}
