// Package resource implements the resource database that tells a context
// which communication methods to enable, in what order, and with what
// parameters.
//
// The paper lists four sources for this information — the library's built-in
// defaults, a resource database, command-line arguments, and program calls.
// This package provides the textual format shared by the middle two and the
// merge rules among all four.
//
// A method spec is a comma-separated list of entries; each entry is a method
// name optionally followed by colon-separated key=value parameters:
//
//	mpl:skip_poll=1,tcp:skip_poll=20:sndbuf=262144,udp:loss=0.01
//
// The reserved parameter keys are interpreted by the core rather than the
// module: "skip_poll" (polling frequency divisor) and "blocking" (use
// blocking detection). Everything else is passed to the module.
//
// A database maps context selectors to specs:
//
//	# comment
//	*           = inproc,tcp
//	partition:a = mpl,tcp:skip_poll=100
//	context:7   = tcp:sndbuf=1048576
//
// Later, more specific matches override earlier ones method-by-method;
// specificity order is * < partition < context.
package resource

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nexus/internal/core"
	"nexus/internal/transport"
)

// ParseSpec parses a method spec string into core method configurations.
func ParseSpec(spec string) ([]core.MethodConfig, error) {
	var out []core.MethodConfig
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		mc, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		out = append(out, mc)
	}
	return out, nil
}

func parseEntry(entry string) (core.MethodConfig, error) {
	parts := strings.Split(entry, ":")
	name := strings.TrimSpace(parts[0])
	if name == "" {
		return core.MethodConfig{}, fmt.Errorf("resource: empty method name in %q", entry)
	}
	mc := core.MethodConfig{Name: name, Params: transport.Params{}}
	for _, kv := range parts[1:] {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return core.MethodConfig{}, fmt.Errorf("resource: malformed parameter %q in %q (want key=value)", kv, entry)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "skip_poll":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return core.MethodConfig{}, fmt.Errorf("resource: bad skip_poll %q in %q", v, entry)
			}
			mc.SkipPoll = n
		case "blocking":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return core.MethodConfig{}, fmt.Errorf("resource: bad blocking %q in %q", v, entry)
			}
			mc.Blocking = b
		default:
			mc.Params[k] = v
		}
	}
	return mc, nil
}

// FormatSpec renders method configurations back to the spec syntax.
func FormatSpec(methods []core.MethodConfig) string {
	var sb strings.Builder
	for i, mc := range methods {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(mc.Name)
		if mc.SkipPoll > 1 {
			fmt.Fprintf(&sb, ":skip_poll=%d", mc.SkipPoll)
		}
		if mc.Blocking {
			sb.WriteString(":blocking=true")
		}
		keys := make([]string, 0, len(mc.Params))
		for k := range mc.Params {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, ":%s=%s", k, mc.Params[k])
		}
	}
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Database holds method specs keyed by context selectors.
type Database struct {
	global     []core.MethodConfig
	partitions map[string][]core.MethodConfig
	contexts   map[transport.ContextID][]core.MethodConfig
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		partitions: make(map[string][]core.MethodConfig),
		contexts:   make(map[transport.ContextID][]core.MethodConfig),
	}
}

// Parse reads a database in the textual format described in the package
// comment.
func Parse(r io.Reader) (*Database, error) {
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sel, spec, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("resource: line %d: missing '=' in %q", lineNo, line)
		}
		sel = strings.TrimSpace(sel)
		methods, err := ParseSpec(strings.TrimSpace(spec))
		if err != nil {
			return nil, fmt.Errorf("resource: line %d: %w", lineNo, err)
		}
		switch {
		case sel == "*":
			db.global = methods
		case strings.HasPrefix(sel, "partition:"):
			db.partitions[strings.TrimPrefix(sel, "partition:")] = methods
		case strings.HasPrefix(sel, "context:"):
			id, err := strconv.ParseUint(strings.TrimPrefix(sel, "context:"), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("resource: line %d: bad context id in %q", lineNo, sel)
			}
			db.contexts[transport.ContextID(id)] = methods
		default:
			return nil, fmt.Errorf("resource: line %d: unknown selector %q", lineNo, sel)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

// ParseString parses a database from a string.
func ParseString(s string) (*Database, error) { return Parse(strings.NewReader(s)) }

// SetGlobal sets the database's '*' entry.
func (db *Database) SetGlobal(methods []core.MethodConfig) { db.global = methods }

// SetPartition sets a partition entry.
func (db *Database) SetPartition(name string, methods []core.MethodConfig) {
	db.partitions[name] = methods
}

// SetContext sets a per-context entry.
func (db *Database) SetContext(id transport.ContextID, methods []core.MethodConfig) {
	db.contexts[id] = methods
}

// MethodsFor resolves the method list for a context: the global entry,
// overlaid method-by-method with the partition entry, overlaid with the
// per-context entry. A method introduced at a more specific level is
// appended; one re-specified overrides in place (keeping its position, so
// table preference order is stable under overrides).
func (db *Database) MethodsFor(id transport.ContextID, partition string) []core.MethodConfig {
	out := cloneConfigs(db.global)
	out = overlay(out, db.partitions[partition])
	out = overlay(out, db.contexts[id])
	return out
}

func cloneConfigs(in []core.MethodConfig) []core.MethodConfig {
	out := make([]core.MethodConfig, len(in))
	for i, mc := range in {
		out[i] = mc
		if mc.Params != nil {
			out[i].Params = mc.Params.Clone()
		}
	}
	return out
}

func overlay(base, over []core.MethodConfig) []core.MethodConfig {
	for _, mc := range cloneConfigs(over) {
		replaced := false
		for i := range base {
			if base[i].Name == mc.Name {
				base[i] = mc
				replaced = true
				break
			}
		}
		if !replaced {
			base = append(base, mc)
		}
	}
	return base
}
