package bufpool

import (
	"testing"
)

func TestGetLengthAndClassCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 4096, 4097, 1 << 20} {
		p := Get(n)
		if len(p) != n {
			t.Fatalf("Get(%d): len = %d", n, len(p))
		}
		if cap(p) < n {
			t.Fatalf("Get(%d): cap = %d", n, cap(p))
		}
		// Capacity is the full size class: a power of two ≥ the minimum.
		if c := cap(p); c&(c-1) != 0 || c < 1<<minShift {
			t.Fatalf("Get(%d): cap %d is not a size class", n, c)
		}
		Put(p)
	}
}

func TestGetOversizeBypassesPool(t *testing.T) {
	n := (1 << maxShift) + 1
	p := Get(n)
	if len(p) != n {
		t.Fatalf("len = %d, want %d", len(p), n)
	}
	Put(p) // must not panic; oversize slices are dropped
}

func TestRoundTripReuse(t *testing.T) {
	// A Put slice should come back from the pool for a same-class Get.
	// sync.Pool gives no hard guarantee, but with no GC in between and a
	// single goroutine this holds in practice; retry a few times to be safe.
	reused := false
	for attempt := 0; attempt < 10 && !reused; attempt++ {
		p := Get(100)
		p[0] = 0xA5
		addr := &p[0]
		Put(p)
		q := Get(80)
		reused = &q[0] == addr
		Put(q)
	}
	if !reused {
		t.Skip("pool never returned the recycled slice (GC interference?)")
	}
}

func TestPutForeignSliceJoinsCoveredClass(t *testing.T) {
	// A 96-byte-cap slice covers only the 64-byte class; after Put, a
	// 64-byte Get may receive it, but a 128-byte Get must never see cap<128.
	Put(make([]byte, 96))
	for i := 0; i < 100; i++ {
		q := Get(128)
		if cap(q) < 128 {
			t.Fatalf("Get(128) returned cap %d", cap(q))
		}
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, nClasses - 1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetPutAllocFree(t *testing.T) {
	// Warm the class, then confirm the steady-state round trip does not
	// allocate — the property the RSR fast path depends on.
	Put(Get(256))
	avg := testing.AllocsPerRun(100, func() {
		p := Get(256)
		Put(p)
	})
	if avg > 0 {
		t.Errorf("Get/Put allocates %.1f times per round trip, want 0", avg)
	}
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Put(Get(4096))
	}
}
