// Package bufpool provides the size-classed byte-slice pool behind the RSR
// fast path.
//
// Every hop of a remote service request used to allocate: the sender encoded
// each frame into a fresh slice, queueing transports copied into fresh
// slices, and the TCP module materialized every inbound frame with a fresh
// make. This pool gives all of those sites recycled storage so the
// steady-state send/receive path performs no per-message allocation at all.
//
// The pool stores raw array pointers rather than slice headers: a slice (or
// *[]byte) placed into a sync.Pool forces a fresh heap allocation for the
// header on every Put, which would put an allocation right back on the path
// the pool exists to clear. unsafe.Pointer is pointer-shaped, so boxing it in
// the pool's interface value is allocation-free, and the slice header is
// rebuilt on Get with unsafe.Slice. Every pooled array is at least as large
// as its size class, so reconstruction never over-extends an allocation.
//
// Ownership rules (see DESIGN.md "Fast-path allocation budget"):
//
//   - Get returns a slice of exactly the requested length whose contents are
//     arbitrary; the caller owns it until it calls Put.
//   - Put recycles a slice. The caller must not touch the slice afterwards.
//     Putting a slice that did not come from Get is allowed (it joins the
//     largest class its capacity covers); never Putting a slice is also
//     allowed — the garbage collector reclaims it as usual.
//   - A slice must be Put at most once. Double-Put hands the same storage to
//     two future Get callers.
package bufpool

import (
	"math/bits"
	"sync"
	"unsafe"
)

// Size classes are powers of two from 1<<minShift to 1<<maxShift bytes.
// Requests above the largest class are served by plain make and dropped on
// Put: frames that large are dominated by the copy/syscall anyway, and
// keeping multi-megabyte slabs alive in a pool is a memory-footprint hazard.
const (
	minShift = 6  // 64 B
	maxShift = 20 // 1 MiB
	nClasses = maxShift - minShift + 1
)

var classes [nClasses]sync.Pool

// classFor returns the index of the smallest class able to hold n bytes
// (n must be ≤ the largest class).
func classFor(n int) int {
	if n <= 1<<minShift {
		return 0
	}
	return bits.Len(uint(n-1)) - minShift
}

// Get returns a slice of length n backed by pooled storage (capacity is the
// full size class, at least n). The contents are arbitrary.
func Get(n int) []byte {
	if n > 1<<maxShift {
		return make([]byte, n)
	}
	c := classFor(n)
	size := 1 << (minShift + c)
	p, _ := classes[c].Get().(unsafe.Pointer)
	if p == nil {
		return make([]byte, n, size)
	}
	return unsafe.Slice((*byte)(p), size)[:n]
}

// Put recycles a slice obtained from Get (or any slice the caller owns
// outright). Slices with less capacity than the smallest class are dropped,
// as are slices above the largest class.
func Put(p []byte) {
	n := cap(p)
	if n < 1<<minShift || n > 1<<maxShift {
		return
	}
	// File the slice under the largest class its capacity fully covers, so a
	// future Get never receives less capacity than its class promises.
	c := bits.Len(uint(n)) - 1 - minShift
	classes[c].Put(unsafe.Pointer(&p[:n][0]))
}
