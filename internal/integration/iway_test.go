// Package integration holds cross-module scenario tests: whole-system
// configurations in the style of the I-WAY experiment the paper's
// implementation supported — multiple partitions with different fabrics,
// forwarding, multicast, MPI programs, and security, all in one machine.
package integration

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/cluster"
	"nexus/internal/core"
	"nexus/internal/mpi"
	"nexus/internal/resource"
	"nexus/internal/transport"
)

func fast(extra transport.Params) transport.Params {
	p := transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}
	for k, v := range extra {
		p[k] = v
	}
	return p
}

// iwayMachine builds a heterogeneous three-site machine:
//
//	ranks 0-3: "sp2" partition — mpl + wan (rank 0 doubles as forwarder)
//	ranks 4-5: "viz" partition — myri + wan
//	rank  6:   "remote" site   — wan only
func iwayMachine(t *testing.T) *cluster.Machine {
	t.Helper()
	sp2 := []core.MethodConfig{
		{Name: "mpl", Params: fast(nil)},
		{Name: "wan", Params: fast(nil)},
	}
	viz := []core.MethodConfig{
		{Name: "myri", Params: fast(nil)},
		{Name: "wan", Params: fast(nil)},
	}
	remote := []core.MethodConfig{
		{Name: "wan", Params: fast(nil)},
	}
	cfg := cluster.Config{Nodes: []cluster.NodeSpec{
		{Partition: "sp2", Methods: sp2},
		{Partition: "sp2", Methods: sp2},
		{Partition: "sp2", Methods: sp2},
		{Partition: "sp2", Methods: sp2},
		{Partition: "viz", Methods: viz},
		{Partition: "viz", Methods: viz},
		{Partition: "remote", Methods: remote},
	}}
	m, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// TestHeterogeneousSelection checks that automatic selection picks the right
// method for every pair of sites.
func TestHeterogeneousSelection(t *testing.T) {
	m := iwayMachine(t)
	cases := []struct {
		from, to int
		want     string
	}{
		{0, 1, "mpl"},  // within sp2
		{4, 5, "myri"}, // within viz
		{0, 4, "wan"},  // sp2 -> viz
		{0, 6, "wan"},  // sp2 -> remote
		{6, 4, "wan"},  // remote -> viz
	}
	for _, c := range cases {
		ep := m.Context(c.to).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) {}))
		sp, err := core.TransferStartpoint(ep.NewStartpoint(), m.Context(c.from))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.SelectMethod(); err != nil {
			t.Fatalf("%d->%d: %v", c.from, c.to, err)
		}
		if got := sp.Method(); got != c.want {
			t.Errorf("%d->%d selected %q, want %q", c.from, c.to, got, c.want)
		}
		sp.Close()
		ep.Close()
	}
}

// TestMPIOverHeterogeneousMachine runs a collective-heavy MPI program over
// all three sites at once.
func TestMPIOverHeterogeneousMachine(t *testing.T) {
	m := iwayMachine(t)
	w, err := mpi.New(m)
	if err != nil {
		t.Fatal(err)
	}
	w.SetTimeout(20 * time.Second)

	errs := make([]error, m.Size())
	done := make(chan int, m.Size())
	for r := 0; r < m.Size(); r++ {
		go func(r int) {
			defer func() { done <- r }()
			c := w.Comm(r)
			sum, err := c.Allreduce([]float64{float64(r + 1)}, mpi.Sum)
			if err != nil {
				errs[r] = err
				return
			}
			want := float64(m.Size() * (m.Size() + 1) / 2)
			if sum[0] != want {
				errs[r] = fmt.Errorf("Allreduce = %v, want %v", sum[0], want)
				return
			}
			if err := c.Barrier(); err != nil {
				errs[r] = err
				return
			}
			// Ring exchange crossing every site boundary.
			right := (r + 1) % c.Size()
			left := (r - 1 + c.Size()) % c.Size()
			b := buffer.New(8)
			b.PutInt(r)
			msg, err := c.Sendrecv(right, 9, b, left, 9)
			if err != nil {
				errs[r] = err
				return
			}
			if got := msg.Buf.Int(); got != left {
				errs[r] = fmt.Errorf("ring got %d, want %d", got, left)
			}
		}(r)
	}
	for i := 0; i < m.Size(); i++ {
		<-done
	}
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
	// Traffic really crossed both fabrics and the wide area.
	mplFrames := m.Context(0).Stats().Get("frames.mpl")
	wanFrames := m.Context(6).Stats().Get("frames.wan")
	if mplFrames == 0 || wanFrames == 0 {
		t.Errorf("method usage: mpl=%d (ctx0) wan=%d (ctx6)", mplFrames, wanFrames)
	}
}

// TestForwardingIntoSP2 makes rank 0 the wan forwarder for the sp2
// partition: ranks 1-3 disable their own wan receive path entirely and are
// still reachable from the remote site.
func TestForwardingIntoSP2(t *testing.T) {
	sp2Fwd := []core.MethodConfig{
		{Name: "mpl", Params: fast(nil)},
		{Name: "wan", Params: fast(nil)},
	}
	sp2Member := []core.MethodConfig{
		{Name: "mpl", Params: fast(nil)},
	}
	remote := []core.MethodConfig{{Name: "wan", Params: fast(nil)}}
	m, err := cluster.New(cluster.Config{Nodes: []cluster.NodeSpec{
		{Partition: "sp2", Methods: sp2Fwd},
		{Partition: "sp2", Methods: sp2Member},
		{Partition: "sp2", Methods: sp2Member},
		{Partition: "remote", Methods: remote},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.ConfigureForwarding(0, "wan"); err != nil {
		t.Fatal(err)
	}

	var got [3]atomic.Int64
	for member := 1; member <= 2; member++ {
		member := member
		ep := m.Context(member).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) {
			got[member].Add(1)
		}))
		sp, err := core.TransferStartpoint(ep.NewStartpoint(), m.Context(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.RSR("", nil); err != nil {
			t.Fatal(err)
		}
		if mth := sp.Method(); mth != "wan" {
			t.Errorf("remote->member %d method = %q", member, mth)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for (got[1].Load() == 0 || got[2].Load() == 0) && time.Now().Before(deadline) {
		m.Context(0).Poll()
		m.Context(1).Poll()
		m.Context(2).Poll()
	}
	if got[1].Load() != 1 || got[2].Load() != 1 {
		t.Fatalf("forwarded deliveries: member1=%d member2=%d", got[1].Load(), got[2].Load())
	}
	if relayed := m.Context(0).Stats().Get("forward.relayed"); relayed != 2 {
		t.Errorf("forward.relayed = %d, want 2", relayed)
	}
	// Members never polled wan (they do not even have the module).
	for member := 1; member <= 2; member++ {
		if polls := m.Context(member).Stats().Get("poll.wan"); polls != 0 {
			t.Errorf("member %d polled wan %d times", member, polls)
		}
	}
}

// TestVisualizationMulticast streams simulation output from an sp2 rank to
// both viz ranks and the remote site with one multicast startpoint — the
// I-WAY "remote visualization" pattern.
func TestVisualizationMulticast(t *testing.T) {
	m := iwayMachine(t)
	var counts [7]atomic.Int64
	var merged *core.Startpoint
	for _, viewer := range []int{4, 5, 6} {
		viewer := viewer
		ep := m.Context(viewer).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) {
			counts[viewer].Add(1)
		}))
		sp, err := core.TransferStartpoint(ep.NewStartpoint(), m.Context(1))
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			merged = sp
		} else {
			merged.Merge(sp)
		}
	}
	const framesN = 25
	for i := 0; i < framesN; i++ {
		b := buffer.New(64)
		b.PutInt(i)
		b.PutFloat64s([]float64{1, 2, 3})
		if err := merged.RSR("", b); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, viewer := range []int{4, 5, 6} {
			m.Context(viewer).Poll()
			if counts[viewer].Load() < framesN {
				all = false
			}
		}
		if all {
			break
		}
	}
	for _, viewer := range []int{4, 5, 6} {
		if got := counts[viewer].Load(); got != framesN {
			t.Errorf("viewer %d received %d/%d frames", viewer, got, framesN)
		}
	}
}

// TestDatabaseDrivenIWAY builds the whole heterogeneous machine from a
// textual resource database, the deployment path of §3.1.
func TestDatabaseDrivenIWAY(t *testing.T) {
	db, err := resource.ParseString(`
* = wan:latency=0:poll_cost=0:bandwidth=0
partition:sp2 = mpl:latency=0:poll_cost=0:bandwidth=0,wan:skip_poll=50:latency=0:poll_cost=0:bandwidth=0
partition:viz = myri:latency=0:poll_cost=0:bandwidth=0
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cluster.New(cluster.Config{
		Database: db,
		Nodes: []cluster.NodeSpec{
			{Partition: "sp2"}, {Partition: "sp2"},
			{Partition: "viz"}, {Partition: "viz"},
			{Partition: "elsewhere"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if got := m.Context(0).SkipPoll("wan"); got != 50 {
		t.Errorf("sp2 wan skip_poll = %d, want 50 (from database)", got)
	}
	// sp2 <-> viz still communicate (wan from the global entry).
	var hit atomic.Int64
	ep := m.Context(2).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) { hit.Add(1) }))
	sp, err := core.TransferStartpoint(ep.NewStartpoint(), m.Context(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if mth := sp.Method(); mth != "wan" {
		t.Errorf("sp2->viz method = %q", mth)
	}
	if !m.Context(2).PollUntil(func() bool { return hit.Load() == 1 }, 5*time.Second) {
		t.Fatal("cross-site RSR lost")
	}
}

// TestAdaptiveTunerOnIdleWideArea runs the adaptive skip_poll tuner on an
// sp2 node whose wan link is idle, then verifies traffic snaps it back.
func TestAdaptiveTunerOnIdleWideArea(t *testing.T) {
	sp2 := []core.MethodConfig{
		{Name: "mpl", Params: fast(transport.Params{"poll_cost": "10us"})},
		{Name: "wan", Params: fast(transport.Params{"poll_cost": "100us"})},
	}
	m, err := cluster.New(cluster.Config{Nodes: []cluster.NodeSpec{
		{Partition: "sp2", Methods: sp2},
		{Partition: "remote", Methods: []core.MethodConfig{{Name: "wan", Params: fast(transport.Params{"poll_cost": "100us"})}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	node := m.Context(0)
	stop := node.StartAdaptiveSkipPoll(core.AdaptiveConfig{Interval: time.Millisecond, MaxSkip: 128})
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for node.SkipPoll("wan") != 128 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := node.SkipPoll("wan"); got != 128 {
		t.Fatalf("idle wan not throttled: skip = %d", got)
	}

	// Wide-area traffic arrives; the tuner must restore eager polling.
	var hits atomic.Int64
	ep := node.NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) { hits.Add(1) }))
	sp, err := core.TransferStartpoint(ep.NewStartpoint(), m.Context(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for node.SkipPoll("wan") == 128 && time.Now().Before(deadline) {
		node.Poll()
	}
	if got := node.SkipPoll("wan"); got >= 128 {
		t.Errorf("wan skip after traffic = %d, want reduced", got)
	}
	if hits.Load() == 0 {
		t.Error("wan RSR never delivered")
	}
}
