package rudp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nexus/internal/transport"
)

type collect struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collect) Deliver(f []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), f...)) // Deliver borrows f
	c.mu.Unlock()
}

func (c *collect) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *collect) frame(i int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames[i]
}

func initModule(t *testing.T, p transport.Params, ctx transport.ContextID, sink transport.Sink) (*Module, transport.Descriptor) {
	t.Helper()
	m := New(p)
	d, err := m.Init(transport.Env{Context: ctx, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, *d
}

// drain polls recv until want frames have arrived or the deadline passes.
func drain(t *testing.T, recv *Module, sink *collect, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for sink.count() < want && time.Now().Before(deadline) {
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if got := sink.count(); got < want {
		t.Fatalf("received %d/%d frames", got, want)
	}
}

func TestInOrderDelivery(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The window is finite, so the sender must run concurrently with the
	// receiver's polling (a sender that outruns an unpolled receiver by a
	// full window blocks — that is the protocol's flow control).
	const n = 100
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := c.Send([]byte{byte(i), byte(i >> 8)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	drain(t, recv, sink, n, 10*time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f := sink.frame(i)
		if int(f[0])|int(f[1])<<8 != i {
			t.Fatalf("frame %d out of order: %v", i, f)
		}
	}
}

func TestReliabilityUnderDataLoss(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	// 30% of first transmissions vanish; retransmission must recover all.
	send, _ := initModule(t, transport.Params{"loss": "0.3", "rto": "5ms"}, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 120
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := c.Send([]byte{byte(i)}); err != nil {
				done <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		done <- nil
	}()
	drain(t, recv, sink, n, 20*time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Exactly once, in order, no duplicates.
	if sink.count() != n {
		t.Fatalf("received %d frames, want exactly %d", sink.count(), n)
	}
	for i := 0; i < n; i++ {
		if sink.frame(i)[0] != byte(i) {
			t.Fatalf("frame %d corrupted/reordered", i)
		}
	}
}

func TestReliabilityUnderAckLoss(t *testing.T) {
	sink := &collect{}
	// Receiver drops 40% of its ACKs: sender retransmits; receiver must
	// deduplicate.
	recv, d := initModule(t, transport.Params{"ack_loss": "0.4"}, 1, sink)
	send, _ := initModule(t, transport.Params{"rto": "5ms"}, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 60
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := c.Send([]byte{byte(i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	drain(t, recv, sink, n, 20*time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Keep polling a little longer: retransmitted duplicates must not be
	// delivered twice.
	for i := 0; i < 50; i++ {
		recv.Poll()
		time.Sleep(time.Millisecond)
	}
	if sink.count() != n {
		t.Fatalf("received %d frames, want exactly %d (duplicates delivered?)", sink.count(), n)
	}
}

func TestWindowBlocksAndDrains(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, transport.Params{"window": "4", "rto": "5ms"}, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 40
	sent := make(chan struct{})
	go func() {
		defer close(sent)
		for i := 0; i < n; i++ {
			if err := c.Send([]byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// The sender cannot finish unless the receiver polls (window of 4):
	// this both exercises blocking and proves ACK-driven window advance.
	drain(t, recv, sink, n, 20*time.Second)
	select {
	case <-sent:
	case <-time.After(5 * time.Second):
		t.Fatal("sender still blocked after all frames delivered")
	}
}

func TestSendTimeoutPoisonsConn(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, transport.Params{"rto": "2ms", "retries": "3", "window": "2"}, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Kill the receiver: nothing will ever be acknowledged.
	recv.Close()

	if err := c.Send([]byte("x")); err != nil {
		t.Fatalf("first send should queue: %v", err)
	}
	// Eventually sends fail: either the retransmitter gives up
	// (ErrSendTimeout) or the kernel reports the dead peer first (ICMP port
	// unreachable surfaces as a connection-refused write error on a
	// connected UDP socket). Both are terminal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := c.Send([]byte("y"))
		if errors.Is(err, ErrSendTimeout) || isRefused(err) {
			return
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("connection never reported failure")
		}
	}
}

func isRefused(err error) bool {
	return err != nil && strings.Contains(err.Error(), "connection refused")
}

func TestOversizeRejected(t *testing.T) {
	_, d := initModule(t, nil, 1, &collect{})
	send, _ := initModule(t, nil, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize Send = %v", err)
	}
}

func TestTwoConnsIndependentStreams(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})
	c1, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Interleave two independent streams; each must deliver fully.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := c1.Send([]byte{1, byte(i)}); err != nil {
				done <- err
				return
			}
			if err := c2.Send([]byte{2, byte(i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	drain(t, recv, sink, 40, 10*time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var ones, twos int
	for i := 0; i < sink.count(); i++ {
		switch sink.frame(i)[0] {
		case 1:
			ones++
		case 2:
			twos++
		}
	}
	if ones != 20 || twos != 20 {
		t.Errorf("streams delivered %d/%d, want 20/20", ones, twos)
	}
}

func TestLifecycleErrors(t *testing.T) {
	m := New(nil)
	if _, err := m.Poll(); !errors.Is(err, transport.ErrNotInitialized) {
		t.Errorf("Poll before Init: %v", err)
	}
	if _, err := m.Init(transport.Env{Context: 1, Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(transport.Env{Context: 1, Sink: &collect{}}); err == nil {
		t.Error("double Init succeeded")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if _, err := m.Poll(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Poll after Close: %v", err)
	}
}

func TestRegisteredInDefaultRegistry(t *testing.T) {
	if !transport.Default.Has(Name) {
		t.Fatal("rudp module not registered")
	}
}

func TestApplicable(t *testing.T) {
	m := New(nil)
	if !m.Applicable(transport.Descriptor{Method: Name, Attrs: map[string]string{"addr": "127.0.0.1:1"}}) {
		t.Error("valid descriptor not applicable")
	}
	if m.Applicable(transport.Descriptor{Method: "udp", Attrs: map[string]string{"addr": "x"}}) {
		t.Error("udp descriptor applicable to rudp")
	}
}
