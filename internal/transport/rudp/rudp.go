// Package rudp implements a reliable datagram communication module: a
// go-back-N sliding-window protocol over UDP.
//
// The paper's §2 lists "reliable multicast" and RTP-style protocols among
// the specialized methods collaborative applications select, and §6 names
// streaming protocols as methods "currently being investigated" for the
// framework. rudp is that kind of module: it keeps UDP's datagram framing
// and address model but adds ordering, deduplication, and retransmission, so
// an application can pick, per link, between "udp" (fast, lossy) and "rudp"
// (reliable, windowed) with no code changes.
//
// Protocol: every frame travels as one DATA datagram carrying a connection
// id and a sequence number; the receiver delivers in order, drops
// out-of-order datagrams (go-back-N), and returns cumulative ACKs. The
// sender holds unacknowledged frames in a bounded window, blocking when the
// window fills, and retransmits on a fixed timeout.
package rudp

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"nexus/internal/transport"
	"nexus/internal/transport/rawpoll"
)

// Name is the method name used in descriptors and resource strings.
const Name = "rudp"

// MaxPayload bounds a frame to one datagram.
const MaxPayload = 60 << 10

// Datagram types.
const (
	typeData = byte(1)
	typeAck  = byte(2)
)

// headerLen is type(1) + connID(8) + seq(4).
const headerLen = 13

// recvSlots is the Poll batch width: datagrams drained per recvmmsg call.
const recvSlots = 16

// sendSlots is the per-connection batch width: frames per sendmmsg call.
const sendSlots = 16

// maxPollDatagrams bounds one fallback Poll pass (see udp: a flooding peer
// must not pin the polling loop inside one module). Reactor-attached modules
// drain to empty instead, as edge-triggered readiness requires.
const maxPollDatagrams = 1024

// Errors returned by the rudp module.
var (
	// ErrTooLarge reports a frame exceeding the datagram limit. It wraps
	// transport.ErrTooLarge, the typed oversize error shared by every
	// size-limited module.
	ErrTooLarge = fmt.Errorf("rudp: frame exceeds datagram size: %w", transport.ErrTooLarge)
	// ErrSendTimeout reports a frame that stayed unacknowledged through
	// every retransmission attempt.
	ErrSendTimeout = errors.New("rudp: no acknowledgement from peer")
)

func init() {
	transport.Register(Name, func(p transport.Params) transport.Module { return New(p) })
}

// Module is a reliable-datagram method instance.
type Module struct {
	listen  string
	window  int
	rto     time.Duration
	retries int
	loss    float64
	ackLoss float64
	seed    int64
	rcvbuf  int
	sndbuf  int

	mu      sync.Mutex
	env     transport.Env
	pc      *net.UDPConn
	br      *rawpoll.BatchReader
	fd      int
	rdy     transport.Readiness // non-nil while reactor-attached
	streams map[streamKey]*recvStream
	inited  bool
	closed  bool

	rng *mrand.Rand
}

type streamKey struct {
	addr   string
	connID uint64
}

// recvStream is the receiver-side state of one inbound connection.
type recvStream struct {
	expect uint32 // next in-order sequence number
}

// New returns an uninitialized rudp module. Recognized parameters:
//
//	listen   — listen address (default "127.0.0.1:0")
//	window   — sliding-window size in frames (default 32)
//	rto      — retransmission timeout (default 20ms)
//	retries  — attempts per frame before ErrSendTimeout (default 50)
//	loss     — outbound DATA loss probability, for failure injection
//	ack_loss — outbound ACK loss probability, for failure injection
//	seed     — RNG seed for deterministic loss (default 1)
//	rcvbuf   — requested socket receive buffer in bytes (default 4 MiB;
//	           0 keeps the OS default). Bulk messages arrive as bursts of
//	           near-datagram-size fragments; a large buffer turns what
//	           would be drop-and-retransmit churn into a single pass.
//	sndbuf   — requested socket send buffer in bytes, applied to outbound
//	           connections (default 4 MiB; 0 keeps the OS default). A
//	           sendmmsg window flush wants the same headroom on the way
//	           out that rcvbuf gives the way in.
func New(p transport.Params) *Module {
	if p == nil {
		p = transport.Params{}
	}
	return &Module{
		listen:  p.Str("listen", "127.0.0.1:0"),
		window:  p.Int("window", 32),
		rto:     p.Duration("rto", 20*time.Millisecond),
		retries: p.Int("retries", 50),
		loss:    p.Float("loss", 0),
		ackLoss: p.Float("ack_loss", 0),
		seed:    int64(p.Int("seed", 1)),
		rcvbuf:  p.Int("rcvbuf", 4<<20),
		sndbuf:  p.Int("sndbuf", 4<<20),
		streams: make(map[streamKey]*recvStream),
	}
}

// Name implements transport.Module.
func (m *Module) Name() string { return Name }

// Init binds the datagram socket.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inited {
		return nil, fmt.Errorf("rudp: double Init for context %d", env.Context)
	}
	addr, err := net.ResolveUDPAddr("udp", m.listen)
	if err != nil {
		return nil, fmt.Errorf("rudp: resolve %s: %w", m.listen, err)
	}
	pc, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("rudp: listen: %w", err)
	}
	if m.rcvbuf > 0 {
		_ = pc.SetReadBuffer(m.rcvbuf) // best effort; kernel caps apply
	}
	br, err := rawpoll.NewBatchReader(pc, recvSlots, 64<<10)
	if err != nil {
		pc.Close()
		return nil, fmt.Errorf("rudp: batch reader: %w", err)
	}
	m.env = env
	m.pc = pc
	m.br = br
	m.fd = udpFd(pc)
	m.inited = true
	m.rng = mrand.New(mrand.NewSource(m.seed))
	return &transport.Descriptor{
		Method:  Name,
		Context: env.Context,
		Attrs: map[string]string{
			"addr":                   pc.LocalAddr().String(),
			transport.AttrMaxMessage: strconv.Itoa(MaxPayload),
		},
	}, nil
}

// MaxMessage implements transport.SizeLimiter: one frame per DATA datagram.
func (m *Module) MaxMessage() int { return MaxPayload }

// Applicable reports whether remote advertises an rudp address.
func (m *Module) Applicable(remote transport.Descriptor) bool {
	return remote.Method == Name && remote.Attr("addr") != ""
}

// Dial opens a reliable windowed connection to the remote context.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	m.mu.Lock()
	inited, closed := m.inited, m.closed
	m.mu.Unlock()
	if !inited {
		return nil, transport.ErrNotInitialized
	}
	if closed {
		return nil, transport.ErrClosed
	}
	if !m.Applicable(remote) {
		return nil, transport.ErrNotApplicable
	}
	raddr, err := net.ResolveUDPAddr("udp", remote.Attr("addr"))
	if err != nil {
		return nil, fmt.Errorf("rudp: resolve %s: %w", remote.Attr("addr"), err)
	}
	sock, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("rudp: dial %s: %w", raddr, err)
	}
	if m.sndbuf > 0 {
		_ = sock.SetWriteBuffer(m.sndbuf) // best effort; kernel caps apply
	}
	var idBuf [8]byte
	if _, err := rand.Read(idBuf[:]); err != nil {
		sock.Close()
		return nil, fmt.Errorf("rudp: conn id: %w", err)
	}
	bw, err := rawpoll.NewBatchWriter(sock, sendSlots)
	if err != nil {
		sock.Close()
		return nil, fmt.Errorf("rudp: batch writer: %w", err)
	}
	c := &conn{
		m:      m,
		sock:   sock,
		bw:     bw,
		connID: binary.BigEndian.Uint64(idBuf[:]),
		window: m.window,
		rto:    m.rto,
		tries:  m.retries,
		quit:   make(chan struct{}),
	}
	if m.loss > 0 {
		c.loss = m.loss
		c.rng = mrand.New(mrand.NewSource(m.seed))
	}
	c.cond = sync.NewCond(&c.mu)
	go c.ackReader()
	go c.retransmitter()
	return c, nil
}

// Poll drains the socket in recvmmsg batches: DATA datagrams are delivered
// in order, straight from their receive slots (the sink borrows each frame
// for the call); duplicates and gaps are dropped, and one cumulative ACK per
// stream is flushed at the end of the pass. The fallback path bounds one
// pass at maxPollDatagrams; reactor-attached modules drain until the socket
// reports empty, as edge-triggered readiness requires.
func (m *Module) Poll() (int, error) {
	m.mu.Lock()
	if !m.inited {
		m.mu.Unlock()
		return 0, transport.ErrNotInitialized
	}
	if m.closed {
		m.mu.Unlock()
		return 0, transport.ErrClosed
	}
	br, attached := m.br, m.rdy != nil
	m.mu.Unlock()

	pendingAcks := make(map[streamKey]ackDue)
	delivered, seen := 0, 0
	for {
		n, err := br.Recv()
		for i := 0; i < n; i++ {
			pkt := br.Frame(i)
			from := br.Addr(i)
			if len(pkt) < headerLen || pkt[0] != typeData || from == nil {
				continue // not a data frame for the receiver side
			}
			connID := binary.BigEndian.Uint64(pkt[1:])
			seq := binary.BigEndian.Uint32(pkt[9:])
			key := streamKey{addr: from.String(), connID: connID}
			m.mu.Lock()
			st := m.streams[key]
			if st == nil {
				st = &recvStream{}
				m.streams[key] = st
			}
			inOrder := seq == st.expect
			if inOrder {
				st.expect++
			}
			ackUpTo := st.expect
			m.mu.Unlock()

			if inOrder {
				m.env.Sink.Deliver(pkt[headerLen:])
				delivered++
			}
			// Delayed cumulative ACK: one per stream per poll pass,
			// covering everything below ackUpTo.
			pendingAcks[key] = ackDue{to: from, connID: connID, ackUpTo: ackUpTo}
		}
		seen += n
		if err != nil {
			m.flushAcks(pendingAcks)
			if errors.Is(err, rawpoll.ErrWouldBlock) {
				return delivered, nil
			}
			if m.isClosed() {
				return delivered, transport.ErrClosed
			}
			return delivered, err
		}
		if !attached && seen >= maxPollDatagrams {
			break // bounded pass; the rest waits for the next
		}
	}
	m.flushAcks(pendingAcks)
	return delivered, nil
}

// udpFd returns the fd behind a *net.UDPConn (or -1).
func udpFd(pc *net.UDPConn) int {
	fd := -1
	rc, err := pc.SyscallConn()
	if err != nil {
		return -1
	}
	_ = rc.Control(func(f uintptr) { fd = int(f) })
	return fd
}

// AttachReactor implements transport.Reactive: the listen socket joins the
// reactor's watch set, and Poll calls switch to drain-to-empty semantics.
// Outbound connections are unaffected: their ACKs arrive on their own
// connected sockets, consumed by a blocked reader goroutine.
func (m *Module) AttachReactor(r transport.Readiness) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.inited {
		return transport.ErrNotInitialized
	}
	if m.closed {
		return transport.ErrClosed
	}
	if m.fd < 0 {
		return transport.ErrNotReactive
	}
	if err := r.Add(m.fd); err != nil {
		return err
	}
	m.rdy = r
	return nil
}

// DetachReactor implements transport.Reactive.
func (m *Module) DetachReactor() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rdy != nil {
		m.rdy.Remove(m.fd)
		m.rdy = nil
	}
}

// ackDue is a delayed cumulative acknowledgement awaiting flush.
type ackDue struct {
	to      *net.UDPAddr
	connID  uint64
	ackUpTo uint32
}

func (m *Module) flushAcks(acks map[streamKey]ackDue) {
	for _, a := range acks {
		m.sendAck(a.to, a.connID, a.ackUpTo)
	}
}

func (m *Module) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

func (m *Module) sendAck(to *net.UDPAddr, connID uint64, ackUpTo uint32) {
	m.mu.Lock()
	drop := m.ackLoss > 0 && m.rng.Float64() < m.ackLoss
	m.mu.Unlock()
	if drop {
		return
	}
	var pkt [headerLen]byte
	pkt[0] = typeAck
	binary.BigEndian.PutUint64(pkt[1:], connID)
	binary.BigEndian.PutUint32(pkt[9:], ackUpTo)
	_, _ = m.pc.WriteToUDP(pkt[:], to)
}

// PollCostHint implements transport.CostHinter.
func (m *Module) PollCostHint() time.Duration { return 60 * time.Microsecond }

// Close releases the socket. Open connections fail on their next send.
func (m *Module) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.rdy != nil {
		m.rdy.Remove(m.fd) // before close: the OS may reuse the fd number
		m.rdy = nil
	}
	if m.pc != nil {
		return m.pc.Close()
	}
	return nil
}

// conn is the sender side of one reliable stream.
type conn struct {
	m      *Module
	sock   *net.UDPConn
	bw     *rawpoll.BatchWriter
	connID uint64
	window int
	rto    time.Duration
	tries  int
	loss   float64
	rng    *mrand.Rand

	mu      sync.Mutex
	cond    *sync.Cond
	nextSeq uint32
	base    uint32            // lowest unacknowledged sequence number
	pending map[uint32][]byte // unacked DATA packets (with header)
	dead    error
	quit    chan struct{}
	closed  bool
}

// Send transmits one frame reliably: it blocks while the window is full and
// returns only after the frame has been handed to the wire (acknowledgement
// is asynchronous; a frame that exhausts its retries poisons the connection
// and the error surfaces on the next Send).
func (c *conn) Send(frame []byte) error {
	if len(frame) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(frame))
	}
	pkt := make([]byte, headerLen+len(frame))
	pkt[0] = typeData
	binary.BigEndian.PutUint64(pkt[1:], c.connID)
	copy(pkt[headerLen:], frame)

	c.mu.Lock()
	for c.dead == nil && !c.closed && c.nextSeq-c.base >= uint32(c.window) {
		c.cond.Wait()
	}
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return err
	}
	if c.closed {
		c.mu.Unlock()
		return transport.ErrClosed
	}
	seq := c.nextSeq
	c.nextSeq++
	binary.BigEndian.PutUint32(pkt[9:], seq)
	if c.pending == nil {
		c.pending = make(map[uint32][]byte)
	}
	c.pending[seq] = pkt
	drop := c.rng != nil && c.rng.Float64() < c.loss
	c.mu.Unlock()

	if !drop {
		if _, err := c.sock.Write(pkt); err != nil {
			return fmt.Errorf("rudp: send: %w", err)
		}
	}
	return nil
}

// SendBatch implements transport.BatchSender: frames are sequenced into the
// window in chunks of whatever space is available (blocking, like Send, when
// the window is full) and each chunk is flushed with one sendmmsg(2) instead
// of one sendto(2) per frame. Loss injection still decides per frame —
// dropped frames stay in the retransmission window, exactly as a frame lost
// on the wire would.
func (c *conn) SendBatch(frames [][]byte) (int, error) {
	for i, f := range frames {
		if len(f) > MaxPayload {
			return i, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(f))
		}
	}
	sent := 0
	for sent < len(frames) {
		c.mu.Lock()
		for c.dead == nil && !c.closed && c.nextSeq-c.base >= uint32(c.window) {
			c.cond.Wait()
		}
		if c.dead != nil {
			err := c.dead
			c.mu.Unlock()
			return sent, err
		}
		if c.closed {
			c.mu.Unlock()
			return sent, transport.ErrClosed
		}
		avail := c.window - int(c.nextSeq-c.base)
		k := len(frames) - sent
		if k > avail {
			k = avail
		}
		if c.pending == nil {
			c.pending = make(map[uint32][]byte)
		}
		wire := make([][]byte, 0, k)
		for i := 0; i < k; i++ {
			f := frames[sent+i]
			pkt := make([]byte, headerLen+len(f))
			pkt[0] = typeData
			binary.BigEndian.PutUint64(pkt[1:], c.connID)
			binary.BigEndian.PutUint32(pkt[9:], c.nextSeq)
			copy(pkt[headerLen:], f)
			c.pending[c.nextSeq] = pkt
			c.nextSeq++
			if c.rng == nil || c.rng.Float64() >= c.loss {
				wire = append(wire, pkt)
			}
		}
		c.mu.Unlock()
		if len(wire) > 0 {
			if _, err := c.bw.Send(wire); err != nil {
				// The chunk is already sequenced into the window; a hard
				// socket error surfaces now rather than via retransmission.
				return sent, fmt.Errorf("rudp: batch send: %w", err)
			}
		}
		sent += k
	}
	return len(frames), nil
}

// ackReader consumes cumulative ACKs on the connected socket.
func (c *conn) ackReader() {
	buf := make([]byte, 64)
	for {
		n, err := c.sock.Read(buf)
		if err != nil {
			return // socket closed
		}
		if n < headerLen || buf[0] != typeAck {
			continue
		}
		if binary.BigEndian.Uint64(buf[1:]) != c.connID {
			continue
		}
		ackUpTo := binary.BigEndian.Uint32(buf[9:])
		c.mu.Lock()
		for seq := c.base; seq < ackUpTo; seq++ {
			delete(c.pending, seq)
		}
		if ackUpTo > c.base {
			c.base = ackUpTo
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// retransmitter resends the window base (go-back-N: everything from the
// first gap) every RTO until acknowledged or out of retries.
func (c *conn) retransmitter() {
	ticker := time.NewTicker(c.rto)
	defer ticker.Stop()
	attempts := 0
	lastBase := uint32(0)
	for {
		select {
		case <-c.quit:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if len(c.pending) == 0 {
			attempts = 0
			c.mu.Unlock()
			continue
		}
		if c.base != lastBase {
			lastBase = c.base
			attempts = 0
		}
		attempts++
		if attempts > c.tries {
			c.dead = fmt.Errorf("%w (seq %d after %d attempts)", ErrSendTimeout, c.base, attempts-1)
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		// Resend every unacked packet from the base onward, in order.
		var resend [][]byte
		for seq := c.base; seq < c.nextSeq; seq++ {
			if pkt, ok := c.pending[seq]; ok {
				resend = append(resend, pkt)
			}
		}
		c.mu.Unlock()
		for _, pkt := range resend {
			if _, err := c.sock.Write(pkt); err != nil {
				c.mu.Lock()
				if c.dead == nil && !c.closed {
					c.dead = fmt.Errorf("rudp: retransmit: %w", err)
					c.cond.Broadcast()
				}
				c.mu.Unlock()
				return
			}
		}
	}
}

func (c *conn) Method() string { return Name }

// Close stops the connection's goroutines and releases its socket. Frames
// still unacknowledged are abandoned.
func (c *conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.quit)
	return c.sock.Close()
}
