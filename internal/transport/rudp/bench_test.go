package rudp

import (
	"runtime"
	"testing"

	"nexus/internal/transport"
	"nexus/internal/transport/udp"
)

// benchReliableThroughput measures frames/sec through the reliable window
// for a given frame size.
func benchReliableThroughput(b *testing.B, size int) {
	sink := &collect{}
	recv := New(transport.Params{"window": "256"})
	d, err := recv.Init(transport.Env{Context: 1, Sink: sink})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	send := New(transport.Params{"window": "256"})
	if _, err := send.Init(transport.Env{Context: 2, Sink: &collect{}}); err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	c, err := send.Dial(*d)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	frame := make([]byte, size)
	done := make(chan error, 1)
	b.SetBytes(int64(size))
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			if err := c.Send(frame); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for sink.count() < b.N {
		n, err := recv.Poll()
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			runtime.Gosched() // single-core: let the sender run
		}
	}
	b.StopTimer()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func BenchmarkReliableThroughput1K(b *testing.B) { benchReliableThroughput(b, 1024) }
func BenchmarkReliableThroughput8K(b *testing.B) { benchReliableThroughput(b, 8192) }

// BenchmarkUnreliableBaseline is the plain-UDP comparison point: what the
// reliability layer costs.
func BenchmarkUnreliableBaseline1K(b *testing.B) {
	sink := &collect{}
	recv := udp.New(nil)
	d, err := recv.Init(transport.Env{Context: 1, Sink: sink})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	send := udp.New(nil)
	if _, err := send.Init(transport.Env{Context: 2, Sink: &collect{}}); err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	c, err := send.Dial(*d)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	frame := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(frame); err != nil {
			b.Fatal(err)
		}
		// Loopback UDP rarely drops, but drain leniently: poll until this
		// frame (or nothing more) arrives so the socket buffer never fills.
		recv.Poll()
	}
	for {
		n, err := recv.Poll()
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
}
