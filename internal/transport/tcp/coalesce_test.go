package tcp

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"nexus/internal/transport"
)

// TestCoalescedWritesPreserveFrames hammers one outbound connection from many
// goroutines so that the coalescing paths all trigger — the vectored
// fast path, the pending queue, and multi-frame batch drains — and checks
// that every frame arrives intact and that each sender's frames arrive in
// the order it sent them.
func TestCoalescedWritesPreserveFrames(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})

	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const senders = 8
	const perSender = 200
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Vary sizes so batches mix small and large frames.
			buf := make([]byte, 16+g*97)
			for seq := 0; seq < perSender; seq++ {
				binary.BigEndian.PutUint32(buf, uint32(g))
				binary.BigEndian.PutUint32(buf[4:], uint32(seq))
				for i := 8; i < len(buf); i++ {
					buf[i] = byte(g)
				}
				if err := c.Send(buf); err != nil {
					t.Errorf("sender %d seq %d: %v", g, seq, err)
					return
				}
			}
		}(g)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.Now().Add(30 * time.Second)
	for len(sink.snapshot()) < senders*perSender {
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d frames before deadline", len(sink.snapshot()), senders*perSender)
		}
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	<-done

	lastSeq := map[uint32]int{}
	counts := map[uint32]int{}
	for _, f := range sink.snapshot() {
		if len(f) < 8 {
			t.Fatalf("runt frame: %d bytes", len(f))
		}
		g := binary.BigEndian.Uint32(f)
		seq := int(binary.BigEndian.Uint32(f[4:]))
		if want := 16 + int(g)*97; len(f) != want {
			t.Fatalf("sender %d frame is %d bytes, want %d", g, len(f), want)
		}
		for i := 8; i < len(f); i++ {
			if f[i] != byte(g) {
				t.Fatalf("sender %d seq %d: corrupt byte %#x at %d", g, seq, f[i], i)
			}
		}
		if last, ok := lastSeq[g]; ok && seq <= last {
			t.Fatalf("sender %d: seq %d arrived after %d", g, seq, last)
		}
		lastSeq[g] = seq
		counts[g]++
	}
	for g := uint32(0); g < senders; g++ {
		if counts[g] != perSender {
			t.Errorf("sender %d: %d frames arrived, want %d", g, counts[g], perSender)
		}
	}
}

// TestCoalescedWriteErrorSticky checks that a dead connection reports errors
// to senders on both the fast and queued paths, and keeps reporting them.
func TestCoalescedWriteErrorSticky(t *testing.T) {
	sink := &collect{}
	_, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})

	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	var firstErr error
	deadline := time.Now().Add(5 * time.Second)
	for firstErr == nil {
		if time.Now().After(deadline) {
			t.Fatal("send on closed connection never errored")
		}
		firstErr = c.Send([]byte("after-close"))
	}
	// Once an error surfaces it is sticky: every subsequent send fails fast.
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Send([]byte(fmt.Sprintf("frame-%d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("send %d after error returned nil", i)
		}
	}
}

var _ transport.Conn = (*outConn)(nil)
