package tcp

import (
	"net"
	"testing"
	"time"

	"nexus/internal/wire"
)

// pendingFrame builds an encoded wire frame of the given class whose payload
// is n bytes of tag, so the receive side can identify frames by first byte.
func pendingFrame(cls wire.Class, tag byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = tag
	}
	return (&wire.Frame{Type: wire.TypeRSR, Flags: wire.ClassFlags(cls),
		DestContext: 1, DestEndpoint: 2, SrcContext: 3, Handler: "h", Payload: p}).Encode()
}

// TestPendingDataCapAndControlPriority drives one outConn over a synchronous
// net.Pipe — writes block until the far side reads, so queue states are
// deterministic — and checks the two outConn overload behaviors at once:
// a data sender that would overflow maxPending blocks before queueing, while
// a control-class frame both ignores the cap and drains ahead of the data
// backlog.
func TestPendingDataCapAndControlPriority(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	defer client.Close()
	oc := newOutConn(client, 64)

	frameA := pendingFrame(wire.ClassNormal, 'A', 20) // fast-path writer, blocks in the pipe
	frameB := pendingFrame(wire.ClassNormal, 'B', 20) // queues: 4+54 = 58 <= 64
	frameC := pendingFrame(wire.ClassNormal, 'C', 20) // would overflow: blocks pre-queue
	frameD := pendingFrame(wire.ClassControl, 'D', 20)

	results := make(map[byte]chan error)
	sendAsync := func(tag byte, frame []byte) {
		ch := make(chan error, 1)
		results[tag] = ch
		go func() { ch <- oc.Send(frame) }()
	}

	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// A claims the socket and blocks mid-write (nothing reads the pipe yet).
	sendAsync('A', frameA)
	waitFor("A to claim the writer", func() bool {
		oc.mu.Lock()
		defer oc.mu.Unlock()
		return oc.writing
	})

	// B fits under the cap and queues behind the writer.
	sendAsync('B', frameB)
	waitFor("B to queue", func() bool {
		oc.mu.Lock()
		defer oc.mu.Unlock()
		return len(oc.pendingData) == 4+len(frameB)
	})

	// C would push pendingData past the cap: it must block WITHOUT queueing.
	sendAsync('C', frameC)
	time.Sleep(20 * time.Millisecond)
	oc.mu.Lock()
	if got := len(oc.pendingData); got != 4+len(frameB) {
		oc.mu.Unlock()
		t.Fatalf("pendingData grew to %d bytes; capped sender queued anyway", got)
	}
	oc.mu.Unlock()

	// D is control class: the cap does not apply, it queues immediately.
	sendAsync('D', frameD)
	waitFor("D to queue as control", func() bool {
		oc.mu.Lock()
		defer oc.mu.Unlock()
		return len(oc.pendingCtl) == 4+len(frameD)
	})
	if got := oc.pendingBytes(); got != uint64(4+len(frameB)+4+len(frameD)) {
		t.Fatalf("pendingBytes = %d, want %d", got, 4+len(frameB)+4+len(frameD))
	}

	// Drain the pipe and record arrival order.
	var order []byte
	sr := wire.NewStreamReader(server)
	for len(order) < 4 {
		frame, err := sr.Next()
		if err != nil {
			t.Fatalf("reading frame %d: %v", len(order), err)
		}
		f, err := wire.Decode(frame)
		if err != nil {
			t.Fatalf("decoding frame %d: %v", len(order), err)
		}
		order = append(order, f.Payload[0])
	}
	for tag, ch := range results {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("sender %c: %v", tag, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("sender %c never returned", tag)
		}
	}
	// A was already on the socket; D (control) jumps the queued data; B was
	// queued before C was even admitted.
	want := []byte{'A', 'D', 'B', 'C'}
	if string(order) != string(want) {
		t.Fatalf("arrival order %q, want %q", order, want)
	}
}

// TestTransportStatsReportsPending checks the module-level StatsReporter
// surface: the key exists and sums outbound queues.
func TestTransportStatsReportsPending(t *testing.T) {
	recv, d := initModule(t, nil, 1, &collect{})
	send, _ := initModule(t, nil, 2, &collect{})
	_ = recv
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(pendingFrame(wire.ClassNormal, 'x', 8)); err != nil {
		t.Fatal(err)
	}
	stats := send.TransportStats()
	if _, ok := stats["tcp.pending.bytes"]; !ok {
		t.Fatalf("TransportStats missing tcp.pending.bytes: %v", stats)
	}
}
