// Package tcp implements the TCP/IP communication module.
//
// TCP is the paper's "expensive but universal" method: it reaches any
// context with IP connectivity, but detecting inbound traffic requires a
// select-like readiness scan whose cost dwarfs that of specialized methods.
// This module reproduces both detection strategies discussed in the paper:
//
//   - poll mode (default): Poll performs a non-blocking readiness check on
//     every inbound connection (a read with an immediate deadline — the Go
//     equivalent of select). The per-poll cost grows with connection count
//     and is orders of magnitude more expensive than an inproc poll, which is
//     exactly the asymmetry that motivates skip_poll.
//   - blocking mode: a goroutine per connection blocks in read and delivers
//     frames directly to the sink (the paper's AIX 4.1 blocking-thread
//     refinement); Poll then has nothing to do.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"nexus/internal/bufpool"
	"nexus/internal/transport"
	"nexus/internal/transport/rawpoll"
	"nexus/internal/wire"
)

// Name is the method name used in descriptors and resource strings.
const Name = "tcp"

func init() {
	transport.Register(Name, func(p transport.Params) transport.Module { return New(p) })
}

// Module is a TCP communication method instance.
type Module struct {
	params     transport.Params
	listen     string
	nodelay    bool
	sndbuf     int
	rcvbuf     int
	maxPending int
	blocking   bool

	mu       sync.Mutex
	env      transport.Env
	ln       net.Listener
	inbound  []*inConn
	outbound map[*outConn]struct{}
	rdy      transport.Readiness // non-nil while reactor-attached
	inited   bool
	closed   bool
	acceptWG sync.WaitGroup
	readWG   sync.WaitGroup
}

// New returns an uninitialized TCP module. Recognized parameters:
//
//	listen     — listen address (default "127.0.0.1:0")
//	nodelay    — set TCP_NODELAY on connections (default true)
//	sndbuf     — socket send buffer size in bytes (0 = OS default)
//	rcvbuf     — socket receive buffer size in bytes (0 = OS default)
//	maxpending — per-connection cap on data frames queued behind an
//	             in-flight write, in bytes (default 8 MiB; -1 = unbounded).
//	             Control-class frames are never bounded.
//	mode       — "poll" (default) or "block"
func New(p transport.Params) *Module {
	if p == nil {
		p = transport.Params{}
	}
	return &Module{
		params:     p,
		listen:     p.Str("listen", "127.0.0.1:0"),
		nodelay:    p.Bool("nodelay", true),
		sndbuf:     p.Int("sndbuf", 0),
		rcvbuf:     p.Int("rcvbuf", 0),
		maxPending: p.Int("maxpending", 8<<20),
		blocking:   p.Str("mode", "poll") == "block",
	}
}

// Name implements transport.Module.
func (m *Module) Name() string { return Name }

// Init starts the listener and the accept loop.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inited {
		return nil, fmt.Errorf("tcp: double Init for context %d", env.Context)
	}
	ln, err := net.Listen("tcp", m.listen)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen: %w", err)
	}
	m.env = env
	m.ln = ln
	m.inited = true
	m.acceptWG.Add(1)
	go m.acceptLoop(ln)
	return &transport.Descriptor{
		Method:  Name,
		Context: env.Context,
		Attrs:   map[string]string{"addr": ln.Addr().String()},
	}, nil
}

func (m *Module) acceptLoop(ln net.Listener) {
	defer m.acceptWG.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.tune(c)
		ic := &inConn{c: c}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			c.Close()
			return
		}
		m.inbound = append(m.inbound, ic)
		if m.rdy != nil {
			// EPOLL_CTL_ADD reports an already-readable fd once even in
			// edge-triggered mode, so data that raced the registration is
			// not lost.
			ic.watch(m.rdy)
		}
		blocking, sink := m.blocking, m.env.Sink
		m.mu.Unlock()
		if blocking {
			m.readWG.Add(1)
			go m.blockingReader(ic, sink)
		}
	}
}

func (m *Module) tune(c net.Conn) {
	tc, ok := c.(*net.TCPConn)
	if !ok {
		return
	}
	_ = tc.SetNoDelay(m.nodelay)
	if m.sndbuf > 0 {
		_ = tc.SetWriteBuffer(m.sndbuf)
	}
	if m.rcvbuf > 0 {
		_ = tc.SetReadBuffer(m.rcvbuf)
	}
}

func (m *Module) blockingReader(ic *inConn, sink transport.Sink) {
	defer m.readWG.Done()
	sr := wire.NewStreamReader(ic.c)
	for {
		frame, err := sr.Next()
		if err != nil {
			ic.markDead()
			return
		}
		sink.Deliver(frame)
		bufpool.Put(frame) // Deliver borrows; the frame is ours to recycle
	}
}

// Applicable reports whether remote advertises a TCP address. TCP is the
// universal fallback: any advertised address is assumed routable.
func (m *Module) Applicable(remote transport.Descriptor) bool {
	return remote.Method == Name && remote.Attr("addr") != ""
}

// Dial opens a TCP connection to the remote context.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	m.mu.Lock()
	inited, closed := m.inited, m.closed
	m.mu.Unlock()
	if !inited {
		return nil, transport.ErrNotInitialized
	}
	if closed {
		return nil, transport.ErrClosed
	}
	if !m.Applicable(remote) {
		return nil, transport.ErrNotApplicable
	}
	c, err := net.DialTimeout("tcp", remote.Attr("addr"), 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %s: %w", remote.Attr("addr"), err)
	}
	m.tune(c)
	oc := newOutConn(c, m.maxPending)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		c.Close()
		return nil, transport.ErrClosed
	}
	if m.outbound == nil {
		m.outbound = make(map[*outConn]struct{})
	}
	m.outbound[oc] = struct{}{}
	m.mu.Unlock()
	oc.unregister = func() {
		m.mu.Lock()
		delete(m.outbound, oc)
		m.mu.Unlock()
	}
	return oc, nil
}

// Poll performs one readiness scan over all inbound connections, delivering
// any complete frames. Each connection is drained until its socket reports
// "would block" (required once reactor-attached: consumed edges are not
// re-announced) — with a per-pass read bound on the fallback path so one
// fire-hosing peer cannot monopolize the polling loop. A connection that
// consumed bytes without completing a frame — a large frame still streaming
// in — counts as one unit of activity, so activity-driven pollers keep
// probing instead of treating the pass as idle. In blocking mode Poll
// returns immediately.
func (m *Module) Poll() (int, error) {
	m.mu.Lock()
	if !m.inited {
		m.mu.Unlock()
		return 0, transport.ErrNotInitialized
	}
	if m.closed {
		m.mu.Unlock()
		return 0, transport.ErrClosed
	}
	if m.blocking {
		m.mu.Unlock()
		return 0, nil
	}
	conns := make([]*inConn, len(m.inbound))
	copy(conns, m.inbound)
	sink := m.env.Sink
	drainAll := m.rdy != nil
	m.mu.Unlock()

	total := 0
	anyDead := false
	for _, ic := range conns {
		n, progressed := ic.poll(sink, drainAll)
		if n == 0 && progressed {
			n = 1 // mid-frame: bytes consumed, remainder en route
		}
		total += n
		if ic.dead() {
			anyDead = true
		}
	}
	if anyDead {
		m.reap()
	}
	return total, nil
}

func (m *Module) reap() {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.inbound[:0]
	for _, ic := range m.inbound {
		if ic.dead() {
			if m.rdy != nil {
				ic.unwatch(m.rdy) // before close: the OS may reuse the fd
			}
			ic.c.Close()
			continue
		}
		kept = append(kept, ic)
	}
	m.inbound = kept
}

// AttachReactor implements transport.Reactive: every inbound connection's fd
// joins the reactor's watch set (the accept loop keeps the set current), and
// Poll switches to drain-to-empty semantics. The listener itself needs no
// registration — accepts happen on a dedicated blocked goroutine. Blocking
// mode reports ErrNotReactive: detection already costs no polling there.
func (m *Module) AttachReactor(r transport.Readiness) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.inited {
		return transport.ErrNotInitialized
	}
	if m.closed {
		return transport.ErrClosed
	}
	if m.blocking {
		return transport.ErrNotReactive
	}
	for _, ic := range m.inbound {
		ic.watch(r)
	}
	m.rdy = r
	return nil
}

// DetachReactor implements transport.Reactive.
func (m *Module) DetachReactor() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rdy == nil {
		return
	}
	for _, ic := range m.inbound {
		ic.unwatch(m.rdy)
	}
	m.rdy = nil
}

// MaxMessage implements transport.SizeLimiter: a stream carries any legal
// wire frame, so the only bound is the wire format's own.
func (m *Module) MaxMessage() int { return wire.MaxFrameLen }

// TransportStats implements transport.StatsReporter: the bytes currently
// queued behind in-flight writes across all outbound connections — the
// send-side backlog a slow peer is costing this context right now.
func (m *Module) TransportStats() map[string]uint64 {
	m.mu.Lock()
	out := make([]*outConn, 0, len(m.outbound))
	for oc := range m.outbound {
		out = append(out, oc)
	}
	m.mu.Unlock()
	var pend uint64
	for _, oc := range out {
		pend += oc.pendingBytes()
	}
	return map[string]uint64{"tcp.pending.bytes": pend}
}

// PollCostHint implements transport.CostHinter: a readiness scan costs on the
// order of a system call per connection, far above an in-memory queue check.
func (m *Module) PollCostHint() time.Duration { return 100 * time.Microsecond }

// StartBlocking implements transport.Blocker: switches inbound detection to
// per-connection blocked reader goroutines. Connections accepted so far get
// readers; subsequent accepts start theirs automatically.
func (m *Module) StartBlocking() error {
	m.mu.Lock()
	if !m.inited {
		m.mu.Unlock()
		return transport.ErrNotInitialized
	}
	if m.blocking {
		m.mu.Unlock()
		return nil
	}
	m.blocking = true
	conns := make([]*inConn, len(m.inbound))
	copy(conns, m.inbound)
	sink := m.env.Sink
	m.mu.Unlock()
	for _, ic := range conns {
		m.readWG.Add(1)
		go m.blockingReader(ic, sink)
	}
	return nil
}

// StopBlocking implements transport.Blocker. Readers exit when their
// connections close; new inbound connections go back to poll mode.
func (m *Module) StopBlocking() {
	m.mu.Lock()
	m.blocking = false
	m.mu.Unlock()
}

// Close shuts the listener and all inbound connections down.
func (m *Module) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	ln := m.ln
	conns := m.inbound
	m.inbound = nil
	out := make([]*outConn, 0, len(m.outbound))
	for oc := range m.outbound {
		out = append(out, oc)
	}
	m.outbound = nil
	rdy := m.rdy
	m.rdy = nil
	m.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, ic := range conns {
		if rdy != nil {
			ic.unwatch(rdy) // before close: the OS may reuse the fd number
		}
		ic.c.Close()
	}
	for _, oc := range out {
		oc.tearDown()
	}
	m.acceptWG.Wait()
	m.readWG.Wait()
	return nil
}

// inConn is an inbound connection with incremental frame-reassembly state for
// poll mode.
type inConn struct {
	c net.Conn

	mu      sync.Mutex
	rd      *rawpoll.Reader
	buf     []byte // accumulated unparsed bytes
	scratch []byte
	fd      int
	watched bool
	isDead  bool
}

func (ic *inConn) markDead() {
	ic.mu.Lock()
	ic.isDead = true
	ic.mu.Unlock()
}

func (ic *inConn) dead() bool {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.isDead
}

// watch registers the connection's fd with the reactor (best effort: a
// connection whose fd cannot be extracted simply stays poll-only).
func (ic *inConn) watch(r transport.Readiness) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if ic.watched || ic.isDead {
		return
	}
	sc, ok := ic.c.(syscall.Conn)
	if !ok {
		return
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return
	}
	fd := -1
	_ = rc.Control(func(f uintptr) { fd = int(f) })
	if fd < 0 || r.Add(fd) != nil {
		return
	}
	ic.fd = fd
	ic.watched = true
}

// unwatch removes the connection's fd from the reactor. Must precede closing
// the socket.
func (ic *inConn) unwatch(r transport.Readiness) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if ic.watched {
		r.Remove(ic.fd)
		ic.watched = false
	}
}

// maxPollReads bounds one fallback poll pass per connection (reads × 64 KiB
// scratch). Reactor-attached connections ignore the bound and drain until
// "would block", as edge-triggered readiness requires.
const maxPollReads = 16

// poll drains the connection — reading and extracting frames until the
// socket reports empty or, on the fallback path, the per-pass bound is
// reached — and delivers every complete frame reassembled so far.
func (ic *inConn) poll(sink transport.Sink, drainAll bool) (int, bool) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if ic.isDead {
		return 0, false
	}
	if ic.scratch == nil {
		ic.scratch = make([]byte, 64<<10)
	}
	if ic.rd == nil {
		sc, ok := ic.c.(syscall.Conn)
		if !ok {
			ic.isDead = true
			return 0, false
		}
		rd, err := rawpoll.NewReader(sc)
		if err != nil {
			ic.isDead = true
			return 0, false
		}
		ic.rd = rd
	}
	delivered := 0
	progressed := false
	for reads := 0; drainAll || reads < maxPollReads; reads++ {
		n, err := ic.rd.Read(ic.scratch)
		if n > 0 {
			progressed = true
			ic.buf = append(ic.buf, ic.scratch[:n]...)
			delivered += ic.extract(sink)
			if ic.isDead { // extract poisons the conn on a malformed frame
				break
			}
		}
		if err != nil {
			if !errors.Is(err, rawpoll.ErrWouldBlock) {
				ic.isDead = true
			}
			break
		}
	}
	return delivered, progressed
}

func (ic *inConn) extract(sink transport.Sink) int {
	delivered := 0
	consumed := 0
	for {
		if len(ic.buf)-consumed < 4 {
			break
		}
		b := ic.buf[consumed:]
		size := int(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
		if size > wire.MaxFrameLen {
			// The old clamp (MaxPayload plus hand-picked slack) undercounted
			// the header and killed connections carrying legal frames with
			// maximal handler names; MaxFrameLen accounts for every header
			// version and extension.
			ic.isDead = true
			break
		}
		if len(b) < 4+size {
			break
		}
		frame := bufpool.Get(size)
		copy(frame, b[4:4+size])
		consumed += 4 + size
		sink.Deliver(frame)
		bufpool.Put(frame)
		delivered++
	}
	if consumed > 0 {
		// Compact the consumed prefix out rather than re-slicing forward: the
		// buffer keeps its capacity, so steady-state reassembly stops
		// allocating once the buffer has grown to the connection's frame size.
		n := copy(ic.buf, ic.buf[consumed:])
		ic.buf = ic.buf[:n]
	}
	return delivered
}

// outConn is an outbound connection. Concurrent Sends interleave at frame
// granularity, but instead of serializing whole write syscalls behind a
// mutex, senders coalesce: the first sender becomes the writer and issues a
// single vectored write (length prefix + frame, one writev instead of the
// two write calls wire.WriteFrame used to make); senders that arrive while
// a write is in flight append their length-prefixed frames to a pending
// queue, and the writer drains that queue — one syscall per batch — before
// retiring. Queue order is append order under oc.mu, so per-connection
// frame ordering is preserved within each class.
//
// The queue is split by traffic class. Control-class frames (read straight
// off the encoded flags byte, wire.FrameClass) go to pendingCtl, which is
// never bounded and drains before any data batch — a credit grant or health
// probe is on the socket ahead of however much bulk backlog a stalled peer
// has built up. Everything else goes to pendingData, which is capped at
// maxPending bytes: a sender that would overflow it blocks until the writer
// flushes, so a slow peer surfaces as sender backpressure instead of
// unbounded process memory.
type outConn struct {
	c          net.Conn
	maxPending int // pendingData byte cap; <=0 = unbounded

	// unregister removes this conn from the module's outbound set so a later
	// Dial builds a fresh connection instead of finding a poisoned one; set
	// by Dial, nil for directly constructed conns. teardown runs the socket
	// close + unregister exactly once — on the first write error or on Close.
	unregister func()
	teardown   sync.Once
	closeErr   error

	mu          sync.Mutex
	flushed     sync.Cond // broadcast after every drain pass and on error
	writing     bool      // a sender goroutine currently owns the socket
	pendingCtl  []byte    // length-prefixed control frames queued behind the writer
	pendingData []byte    // length-prefixed data frames queued behind the writer
	queuedCtl   uint64    // cumulative bytes ever appended to pendingCtl
	queuedData  uint64    // cumulative bytes ever appended to pendingData
	doneCtl     uint64    // cumulative pendingCtl bytes flushed
	doneData    uint64    // cumulative pendingData bytes flushed
	err         error     // sticky first write error
	hdr         [4]byte   // writer-owned length prefix for the vectored path
	iov         net.Buffers
}

func newOutConn(c net.Conn, maxPending int) *outConn {
	oc := &outConn{c: c, maxPending: maxPending}
	oc.flushed.L = &oc.mu
	return oc
}

func (oc *outConn) Send(frame []byte) error {
	if len(frame) > wire.MaxFrameLen {
		// A caller error, not a socket error: the connection stays usable.
		return fmt.Errorf("tcp: frame of %d bytes exceeds wire.MaxFrameLen: %w",
			len(frame), transport.ErrTooLarge)
	}
	ctl := wire.FrameClass(frame) == wire.ClassControl
	oc.mu.Lock()
	for {
		if oc.err != nil {
			err := oc.err
			oc.mu.Unlock()
			oc.tearDown()
			return err
		}
		if !oc.writing {
			// Fast path: no write in flight. Claim the socket and write this
			// frame with a single vectored syscall, borrowing the caller's
			// slice (no copy). hdr/iov are owned by the writer, so mutating
			// them after unlocking is safe.
			oc.writing = true
			binary.BigEndian.PutUint32(oc.hdr[:], uint32(len(frame)))
			oc.iov = append(oc.iov[:0], oc.hdr[:], frame)
			oc.mu.Unlock()
			_, werr := oc.iov.WriteTo(oc.c)
			oc.iov = oc.iov[:0] // drop the borrowed frame reference
			oc.mu.Lock()
			if werr != nil && oc.err == nil {
				oc.err = werr
			}
			oc.drainLocked() // flush whatever queued up while we wrote
			failed := oc.err != nil
			oc.mu.Unlock()
			if failed {
				oc.tearDown()
			}
			return werr
		}
		if ctl || oc.maxPending <= 0 || len(oc.pendingData) == 0 ||
			len(oc.pendingData)+4+len(frame) <= oc.maxPending {
			break
		}
		// Data queue at capacity: wait for the writer to flush a batch. The
		// empty-queue admission above lets a single frame larger than the
		// whole cap through once the queue drains, guaranteeing progress.
		oc.flushed.Wait()
	}
	// Slow path: a write is in flight. Queue the frame (copying — the
	// caller reclaims its slice when Send returns) into its class queue and
	// wait until the writer has flushed it.
	q, queued, done := &oc.pendingData, &oc.queuedData, &oc.doneData
	if ctl {
		q, queued, done = &oc.pendingCtl, &oc.queuedCtl, &oc.doneCtl
	}
	if *q == nil {
		*q = bufpool.Get(4 + len(frame))[:0]
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	*q = append(*q, hdr[:]...)
	*q = append(*q, frame...)
	*queued += uint64(4 + len(frame))
	myEnd := *queued
	for oc.err == nil && *done < myEnd {
		oc.flushed.Wait()
	}
	err := oc.err
	if *done >= myEnd {
		// Our bytes reached the socket before any failure; later senders'
		// errors are not ours to report.
		err = nil
	}
	failed := oc.err != nil
	oc.mu.Unlock()
	if failed {
		oc.tearDown()
	}
	return err
}

// pendingBytes reports the bytes currently queued behind the writer, both
// classes (for the module's TransportStats).
func (oc *outConn) pendingBytes() uint64 {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return uint64(len(oc.pendingCtl) + len(oc.pendingData))
}

// tearDown closes the socket and unregisters the conn from its module, once.
// It runs on the first observed write error — so the poisoned socket is
// released immediately and a later Dial to the same peer starts fresh — and
// on Close.
func (oc *outConn) tearDown() error {
	oc.teardown.Do(func() {
		oc.closeErr = oc.c.Close()
		if oc.unregister != nil {
			oc.unregister()
		}
	})
	return oc.closeErr
}

// drainLocked writes queued frames until both class queues are empty, then
// retires the writer. Each iteration takes the control batch if there is
// one, the data batch otherwise: control frames queued during a data write
// are on the socket before the next data batch, no matter how deep the data
// backlog runs. Called with oc.mu held by the current writer; the lock is
// dropped around each syscall so senders can keep queueing into the next
// batch.
func (oc *outConn) drainLocked() {
	for oc.err == nil && (len(oc.pendingCtl) > 0 || len(oc.pendingData) > 0) {
		batch, done := oc.pendingCtl, &oc.doneCtl
		if len(batch) > 0 {
			oc.pendingCtl = nil
		} else {
			batch, done = oc.pendingData, &oc.doneData
			oc.pendingData = nil
		}
		oc.mu.Unlock()
		_, werr := oc.c.Write(batch)
		oc.mu.Lock()
		if werr != nil && oc.err == nil {
			oc.err = werr
		} else if werr == nil {
			// done only advances on success: a waiter whose bytes were in a
			// failed batch must see the error, not a false success.
			*done += uint64(len(batch))
		}
		bufpool.Put(batch)
		oc.flushed.Broadcast()
	}
	if oc.err != nil {
		// Abandon both queues: waiters whose bytes never reached the socket
		// see their done counter stop short of their offset and report oc.err.
		if len(oc.pendingCtl) > 0 {
			bufpool.Put(oc.pendingCtl)
			oc.pendingCtl = nil
		}
		if len(oc.pendingData) > 0 {
			bufpool.Put(oc.pendingData)
			oc.pendingData = nil
		}
	}
	oc.writing = false
	oc.flushed.Broadcast()
}

func (oc *outConn) Method() string { return Name }
func (oc *outConn) Close() error   { return oc.tearDown() }
