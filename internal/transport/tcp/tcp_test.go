package tcp

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"nexus/internal/transport"
)

type collect struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collect) Deliver(f []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), f...)) // Deliver borrows f
	c.mu.Unlock()
}

func (c *collect) snapshot() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.frames))
	copy(out, c.frames)
	return out
}

func initModule(t *testing.T, p transport.Params, ctx transport.ContextID, sink transport.Sink) (*Module, transport.Descriptor) {
	t.Helper()
	m := New(p)
	d, err := m.Init(transport.Env{Context: ctx, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, *d
}

// pollUntil polls m until the predicate holds or the deadline passes.
func pollUntil(t *testing.T, m *Module, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

func TestSendPollRoundTrip(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})

	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{7}, 100_000)}
	for _, f := range want {
		if err := c.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	pollUntil(t, recv, func() bool { return len(sink.snapshot()) == len(want) })
	got := sink.snapshot()
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("frame %d: got %d bytes, want %d", i, len(got[i]), len(want[i]))
		}
	}
}

func TestBlockingMode(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, transport.Params{"mode": "block"}, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})

	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("via-blocked-thread")); err != nil {
		t.Fatal(err)
	}
	// In blocking mode the frame arrives with no Poll at all.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(sink.snapshot()) == 0 {
		time.Sleep(time.Millisecond)
	}
	got := sink.snapshot()
	if len(got) != 1 || string(got[0]) != "via-blocked-thread" {
		t.Fatalf("blocking delivery got %q", got)
	}
	// Poll is a no-op but must not error.
	if n, err := recv.Poll(); n != 0 || err != nil {
		t.Errorf("Poll in blocking mode = %d, %v", n, err)
	}
}

func TestStartBlockingUpgradesExistingConns(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})

	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, recv, func() bool { return len(sink.snapshot()) == 1 })

	if err := recv.StartBlocking(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(sink.snapshot()) < 2 {
		time.Sleep(time.Millisecond)
	}
	got := sink.snapshot()
	if len(got) != 2 || string(got[1]) != "two" {
		t.Fatalf("after StartBlocking got %q", got)
	}
	recv.StopBlocking()
}

func TestPartialFrameReassembly(t *testing.T) {
	// Send a frame byte-by-byte over a raw socket to force the poll-mode
	// reassembly path through many partial reads.
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := []byte("fragmented")
	done := make(chan error, 1)
	go func() {
		// The outConn serializes whole frames; emulate fragmentation by
		// sending two frames back to back with tiny pauses while the
		// receiver polls continuously.
		for i := 0; i < 3; i++ {
			if err := c.Send(payload); err != nil {
				done <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		done <- nil
	}()
	pollUntil(t, recv, func() bool { return len(sink.snapshot()) == 3 })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i, f := range sink.snapshot() {
		if !bytes.Equal(f, payload) {
			t.Errorf("frame %d corrupted: %q", i, f)
		}
	}
}

func TestApplicable(t *testing.T) {
	m := New(nil)
	if m.Applicable(transport.Descriptor{Method: Name}) {
		t.Error("descriptor without addr applicable")
	}
	if !m.Applicable(transport.Descriptor{Method: Name, Attrs: map[string]string{"addr": "127.0.0.1:1"}}) {
		t.Error("descriptor with addr not applicable")
	}
	if m.Applicable(transport.Descriptor{Method: "udp", Attrs: map[string]string{"addr": "x"}}) {
		t.Error("wrong method applicable")
	}
}

func TestLifecycleErrors(t *testing.T) {
	m := New(nil)
	if _, err := m.Poll(); !errors.Is(err, transport.ErrNotInitialized) {
		t.Errorf("Poll before Init: %v", err)
	}
	if _, err := m.Dial(transport.Descriptor{Method: Name, Attrs: map[string]string{"addr": "127.0.0.1:1"}}); !errors.Is(err, transport.ErrNotInitialized) {
		t.Errorf("Dial before Init: %v", err)
	}
	if _, err := m.Init(transport.Env{Context: 1, Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(transport.Env{Context: 1, Sink: &collect{}}); err == nil {
		t.Error("double Init succeeded")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if _, err := m.Poll(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Poll after Close: %v", err)
	}
}

func TestPeerDisconnectReaped(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	pollUntil(t, recv, func() bool { return len(sink.snapshot()) == 1 })
	// After the close is observed, further polls must not error and the dead
	// connection must be reaped (no growth in work per poll).
	for i := 0; i < 10; i++ {
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	recv.mu.Lock()
	n := len(recv.inbound)
	recv.mu.Unlock()
	if n != 0 {
		t.Errorf("%d inbound conns still tracked after peer close", n)
	}
}

func TestPollCostHint(t *testing.T) {
	var m transport.Module = New(nil)
	h, ok := m.(transport.CostHinter)
	if !ok {
		t.Fatal("tcp module should hint poll cost")
	}
	if h.PollCostHint() <= 0 {
		t.Error("non-positive poll cost hint")
	}
}

func TestRegisteredInDefaultRegistry(t *testing.T) {
	if !transport.Default.Has(Name) {
		t.Fatal("tcp module not registered")
	}
}

func BenchmarkPollIdle(b *testing.B) {
	// The cost of polling an idle TCP module with one connection: this is
	// the per-pass tax that motivates skip_poll.
	sink := &collect{}
	recv := New(nil)
	d, err := recv.Init(transport.Env{Context: 1, Sink: sink})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	send := New(nil)
	if _, err := send.Init(transport.Env{Context: 2, Sink: &collect{}}); err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	c, err := send.Dial(*d)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// Let the accept loop register the connection.
	time.Sleep(10 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recv.Poll(); err != nil {
			b.Fatal(err)
		}
	}
}
