package transport

import (
	"testing"

	"nexus/internal/buffer"
)

// FuzzDecodeTable checks that DecodeTable never panics or over-allocates on
// hostile input — tables arrive from untrusted peers — and that anything it
// accepts survives a re-encode/re-decode round trip.
func FuzzDecodeTable(f *testing.F) {
	good := NewTable(
		Descriptor{Method: "tcp", Context: 7, Attrs: map[string]string{"addr": "127.0.0.1:9000"}},
		Descriptor{Method: "mpl", Context: 7, Attrs: map[string]string{"partition": "p0", "fabric": "default"}},
	)
	gb := buffer.New(64)
	good.Encode(gb)
	f.Add(gb.Encode())
	f.Add([]byte{})
	f.Add([]byte{1})             // format byte only, no count
	f.Add([]byte{1, 0xFF, 0xFF}) // 65535 entries, no bytes behind them
	f.Add([]byte{1, 0, 2, 0, 0, 0, 1, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := buffer.FromBytes(data)
		if err != nil {
			return
		}
		tbl, err := DecodeTable(b)
		if err != nil {
			return
		}
		// A hostile count must never produce a table larger than the input
		// could possibly encode.
		if tbl.Len()*minEntryBytes > len(data) {
			t.Fatalf("decoded %d entries from %d input bytes", tbl.Len(), len(data))
		}
		// Accepted tables round-trip. (Attr maps re-encode in sorted key
		// order, so compare decoded forms, not raw bytes.)
		rb := buffer.New(len(data))
		tbl.Encode(rb)
		re, err := buffer.FromBytes(rb.Encode())
		if err != nil {
			t.Fatalf("re-encoded table not wrappable: %v", err)
		}
		tbl2, err := DecodeTable(re)
		if err != nil {
			t.Fatalf("re-encoded table not decodable: %v", err)
		}
		if !tbl.Equal(tbl2) {
			t.Fatalf("table round-trip mismatch: %v vs %v", tbl, tbl2)
		}
	})
}
