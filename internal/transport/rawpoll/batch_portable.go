//go:build !linux

package rawpoll

import (
	"errors"
	"net"
	"syscall"
)

// Portable fallback for the batched datagram API: the same surface as
// batch_linux.go, implemented as one recvfrom/write(2) per datagram. Modules
// written against BatchReader/BatchWriter build and run on every platform;
// only the per-syscall amortization is Linux-specific.

// ErrGSOUnsupported reports SendGSO on a platform without UDP segmentation
// offload. Unreachable through correct use: ProbeGSO reports false here.
var ErrGSOUnsupported = errors.New("rawpoll: UDP GSO not supported on this platform")

// BatchReader drains multiple datagrams per Recv call. On this platform each
// datagram costs one recvfrom(2); the call-level API still lets modules
// amortize their own per-pass overhead.
type BatchReader struct {
	rd    *Reader
	bufs  [][]byte
	lens  []int
	addrs []*net.UDPAddr
	count int
}

// NewBatchReader prepares batched non-blocking receives on c with the given
// number of slots, each able to hold one datagram of up to bufSize bytes.
func NewBatchReader(c syscall.Conn, slots, bufSize int) (*BatchReader, error) {
	rd, err := NewReader(c)
	if err != nil {
		return nil, err
	}
	b := &BatchReader{
		rd:    rd,
		bufs:  make([][]byte, slots),
		lens:  make([]int, slots),
		addrs: make([]*net.UDPAddr, slots),
	}
	for i := range b.bufs {
		b.bufs[i] = make([]byte, bufSize)
	}
	return b, nil
}

// Slots reports the batch capacity.
func (b *BatchReader) Slots() int { return len(b.bufs) }

// Recv fills up to Slots() datagrams with non-blocking reads. It returns the
// number received, or (0, ErrWouldBlock) when the socket has nothing queued.
func (b *BatchReader) Recv() (int, error) {
	n := 0
	for n < len(b.bufs) {
		m, from, err := b.rd.ReadFrom(b.bufs[n])
		if err != nil {
			if errors.Is(err, ErrWouldBlock) {
				break
			}
			if n > 0 {
				break // surface the error on the next call
			}
			return 0, err
		}
		b.lens[n] = m
		b.addrs[n] = from
		n++
	}
	b.count = n
	if n == 0 {
		return 0, ErrWouldBlock
	}
	return n, nil
}

// Frame returns slot i's datagram payload from the last Recv. The slice is
// borrowed: it aliases the slot buffer and is overwritten by the next Recv.
func (b *BatchReader) Frame(i int) []byte { return b.bufs[i][:b.lens[i]] }

// Addr returns slot i's source address from the last Recv.
func (b *BatchReader) Addr(i int) *net.UDPAddr { return b.addrs[i] }

// BatchWriter flushes trains of outbound frames on a connected datagram
// socket. On this platform each frame costs one write(2).
type BatchWriter struct {
	rc syscall.RawConn
}

// NewBatchWriter prepares batched sends on c. slots is accepted for API
// compatibility; this platform sends one frame per syscall regardless.
func NewBatchWriter(c syscall.Conn, slots int) (*BatchWriter, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &BatchWriter{rc: rc}, nil
}

// Send transmits frames in order on the connected socket, parking on the
// runtime poller when the send buffer is full. It returns the number of
// frames handed to the kernel.
func (w *BatchWriter) Send(frames [][]byte) (int, error) {
	sent := 0
	var serr error
	err := w.rc.Write(func(fd uintptr) bool {
		for sent < len(frames) {
			_, e := syscall.Write(int(fd), frames[sent])
			switch {
			case e == syscall.EINTR:
				continue
			case e == syscall.EAGAIN || e == syscall.EWOULDBLOCK:
				return false // park until writable, then resume here
			case e != nil:
				serr = e
				return true
			default:
				sent++
			}
		}
		return true
	})
	if err != nil {
		return sent, err
	}
	return sent, serr
}

// ProbeGSO reports false: no UDP segmentation offload on this platform.
func ProbeGSO(c syscall.Conn) bool { return false }

// SendGSO is unreachable on this platform (ProbeGSO reports false).
func (w *BatchWriter) SendGSO(data []byte, seg int) error { return ErrGSOUnsupported }
