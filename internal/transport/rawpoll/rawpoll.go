// Package rawpoll provides non-blocking socket reads for poll-driven
// transport modules.
//
// Go's deadline-based reads return ErrDeadlineExceeded without attempting the
// read once the deadline has expired, so they cannot express "give me
// whatever is buffered right now". This package performs one genuine
// non-blocking read(2) on the connection's file descriptor — the faithful
// analogue of the zero-timeout select(2) the paper's TCP module uses to
// detect pending communication, with the same per-call system-call cost.
package rawpoll

import (
	"errors"
	"io"
	"net"
	"syscall"
)

// ErrWouldBlock reports that no data was available at the time of the read.
var ErrWouldBlock = errors.New("rawpoll: no data available")

// Reader performs non-blocking reads on one socket. It caches the RawConn so
// repeated polls do not reallocate.
type Reader struct {
	rc syscall.RawConn
}

// NewReader prepares non-blocking reads on c (any *net.TCPConn,
// *net.UDPConn, or other syscall.Conn).
func NewReader(c syscall.Conn) (*Reader, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &Reader{rc: rc}, nil
}

// Read performs one non-blocking read into buf. It returns the number of
// bytes read; (0, ErrWouldBlock) when the socket has no data; (0, io.EOF) at
// end of stream.
func (r *Reader) Read(buf []byte) (int, error) {
	var n int
	var rerr error
	err := r.rc.Read(func(fd uintptr) bool {
		for {
			m, e := syscall.Read(int(fd), buf)
			switch {
			case e == syscall.EINTR:
				continue
			case e == syscall.EAGAIN || e == syscall.EWOULDBLOCK:
				n, rerr = 0, ErrWouldBlock
			case e != nil:
				n, rerr = 0, e
			case m == 0:
				n, rerr = 0, io.EOF
			default:
				n, rerr = m, nil
			}
			return true // never park; this is a poll
		}
	})
	if err != nil {
		return 0, err
	}
	return n, rerr
}

// ReadFrom performs one non-blocking recvfrom(2) into buf, returning the
// datagram's source address. It returns (0, nil, ErrWouldBlock) when no
// datagram is queued. Only meaningful for datagram sockets.
func (r *Reader) ReadFrom(buf []byte) (int, *net.UDPAddr, error) {
	var n int
	var from *net.UDPAddr
	var rerr error
	err := r.rc.Read(func(fd uintptr) bool {
		for {
			m, sa, e := syscall.Recvfrom(int(fd), buf, 0)
			switch {
			case e == syscall.EINTR:
				continue
			case e == syscall.EAGAIN || e == syscall.EWOULDBLOCK:
				n, rerr = 0, ErrWouldBlock
			case e != nil:
				n, rerr = 0, e
			default:
				n, from, rerr = m, sockaddrToUDP(sa), nil
			}
			return true // never park; this is a poll
		}
	})
	if err != nil {
		return 0, nil, err
	}
	return n, from, rerr
}

func sockaddrToUDP(sa syscall.Sockaddr) *net.UDPAddr {
	switch a := sa.(type) {
	case *syscall.SockaddrInet4:
		return &net.UDPAddr{IP: append([]byte(nil), a.Addr[:]...), Port: a.Port}
	case *syscall.SockaddrInet6:
		return &net.UDPAddr{IP: append([]byte(nil), a.Addr[:]...), Port: a.Port}
	default:
		return nil
	}
}
