//go:build linux

package rawpoll

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// This file implements syscall batching for datagram sockets: recvmmsg(2)
// drains a burst of queued datagrams in one kernel crossing, sendmmsg(2)
// flushes a train of outbound frames in one, and UDP generic segmentation
// offload (UDP_SEGMENT) collapses an equal-sized train into a single
// sendmsg(2) that the kernel (or the NIC) splits on the way out. The
// portable fallback in batch_portable.go presents the same API over
// one-datagram-per-syscall reads and writes.

// mmsghdr mirrors struct mmsghdr. Go pads the struct to the alignment of
// Msghdr exactly as the C compiler does, so the kernel's array stride
// matches on every Linux architecture.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
}

// zeroByte gives zero-length iovecs a valid base pointer.
var zeroByte byte

// sysSendmmsg is the sendmmsg(2) syscall number. The syscall package's
// frozen tables predate sendmmsg (Linux 3.0) on the older ports, so the
// number is resolved per architecture here; 0 means unknown, and Send falls
// back to one write(2) per frame on such a port.
var sysSendmmsg = func() uintptr {
	switch runtime.GOARCH {
	case "amd64":
		return 307
	case "386":
		return 345
	case "arm":
		return 374
	case "arm64", "riscv64", "loong64":
		return 269 // asm-generic table
	case "ppc64", "ppc64le":
		return 349
	case "s390x":
		return 358
	case "mips", "mipsle":
		return 4343 // O32: 4000 + 343
	case "mips64", "mips64le":
		return 5302 // N64: 5000 + 302
	}
	return 0
}()

// BatchReader drains multiple datagrams per syscall via recvmmsg(2). It owns
// a fixed set of receive slots — persistent buffers plus the iovec/msghdr
// scaffolding recvmmsg fills — so steady-state receives perform no
// allocation: callers borrow Frame(i) until the next Recv call.
type BatchReader struct {
	rc    syscall.RawConn
	bufs  [][]byte
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
	count int
}

// NewBatchReader prepares batched non-blocking receives on c with the given
// number of slots, each able to hold one datagram of up to bufSize bytes.
func NewBatchReader(c syscall.Conn, slots, bufSize int) (*BatchReader, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	b := &BatchReader{
		rc:    rc,
		bufs:  make([][]byte, slots),
		hdrs:  make([]mmsghdr, slots),
		iovs:  make([]syscall.Iovec, slots),
		names: make([]syscall.RawSockaddrInet6, slots),
	}
	for i := 0; i < slots; i++ {
		b.bufs[i] = make([]byte, bufSize)
		b.iovs[i].Base = &b.bufs[i][0]
		b.iovs[i].SetLen(bufSize)
		b.hdrs[i].Hdr.Iov = &b.iovs[i]
		b.hdrs[i].Hdr.Iovlen = 1
		b.hdrs[i].Hdr.Name = (*byte)(unsafe.Pointer(&b.names[i]))
		b.hdrs[i].Hdr.Namelen = syscall.SizeofSockaddrInet6
	}
	return b, nil
}

// Slots reports the batch capacity.
func (b *BatchReader) Slots() int { return len(b.bufs) }

// Recv performs one non-blocking recvmmsg, filling up to Slots() datagrams.
// It returns the number received, or (0, ErrWouldBlock) when the socket has
// nothing queued. The filled slots are valid until the next Recv.
func (b *BatchReader) Recv() (int, error) {
	var n int
	var rerr error
	err := b.rc.Read(func(fd uintptr) bool {
		for {
			// The kernel overwrites Namelen with each datagram's actual
			// source-address length; reset before reuse.
			for i := range b.hdrs {
				b.hdrs[i].Hdr.Namelen = syscall.SizeofSockaddrInet6
			}
			r1, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&b.hdrs[0])), uintptr(len(b.hdrs)),
				syscall.MSG_DONTWAIT, 0, 0)
			switch {
			case e == syscall.EINTR:
				continue
			case e == syscall.EAGAIN || e == syscall.EWOULDBLOCK:
				n, rerr = 0, ErrWouldBlock
			case e != 0:
				n, rerr = 0, e
			default:
				n, rerr = int(r1), nil
			}
			return true // never park; this is a poll
		}
	})
	if err != nil {
		return 0, err
	}
	b.count = n
	return n, rerr
}

// Frame returns slot i's datagram payload from the last Recv. The slice is
// borrowed: it aliases the slot buffer and is overwritten by the next Recv.
func (b *BatchReader) Frame(i int) []byte { return b.bufs[i][:b.hdrs[i].Len] }

// Addr returns slot i's source address from the last Recv (nil for address
// families the datagram modules do not use).
func (b *BatchReader) Addr(i int) *net.UDPAddr {
	sa := &b.names[i]
	switch sa.Family {
	case syscall.AF_INET:
		a := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&a.Port))
		return &net.UDPAddr{IP: append([]byte(nil), a.Addr[:]...), Port: int(p[0])<<8 | int(p[1])}
	case syscall.AF_INET6:
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return &net.UDPAddr{IP: append([]byte(nil), sa.Addr[:]...), Port: int(p[0])<<8 | int(p[1])}
	default:
		return nil
	}
}

// BatchWriter flushes trains of outbound frames on a connected datagram
// socket: one sendmmsg(2) per batch, or — for equal-sized trains on kernels
// with UDP generic segmentation offload — one sendmsg(2) for the whole
// train. Not safe for concurrent use; callers serialize (the datagram
// modules hold their connection mutex across Send).
type BatchWriter struct {
	rc   syscall.RawConn
	hdrs []mmsghdr
	iovs []syscall.Iovec
	oob  []byte
}

// NewBatchWriter prepares batched sends on c with the given per-call slot
// capacity (larger trains loop).
func NewBatchWriter(c syscall.Conn, slots int) (*BatchWriter, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &BatchWriter{
		rc:   rc,
		hdrs: make([]mmsghdr, slots),
		iovs: make([]syscall.Iovec, slots),
	}, nil
}

// Send transmits frames in order on the connected socket, one sendmmsg per
// slot-capacity chunk, parking on the runtime poller when the socket's send
// buffer is full. It returns the number of frames handed to the kernel; on
// error, frames beyond that were not attempted.
func (w *BatchWriter) Send(frames [][]byte) (int, error) {
	sent := 0
	var serr error
	err := w.rc.Write(func(fd uintptr) bool {
		for sent < len(frames) {
			if sysSendmmsg == 0 {
				// Port without a known sendmmsg number: one write per frame.
				_, e := syscall.Write(int(fd), frames[sent])
				switch {
				case e == syscall.EINTR:
					continue
				case e == syscall.EAGAIN || e == syscall.EWOULDBLOCK:
					return false // park until writable, then resume here
				case e != nil:
					serr = e
					return true
				default:
					sent++
				}
				continue
			}
			k := len(frames) - sent
			if k > len(w.hdrs) {
				k = len(w.hdrs)
			}
			for i := 0; i < k; i++ {
				f := frames[sent+i]
				if len(f) > 0 {
					w.iovs[i].Base = &f[0]
				} else {
					w.iovs[i].Base = &zeroByte
				}
				w.iovs[i].SetLen(len(f))
				w.hdrs[i].Hdr.Name = nil
				w.hdrs[i].Hdr.Namelen = 0
				w.hdrs[i].Hdr.Iov = &w.iovs[i]
				w.hdrs[i].Hdr.Iovlen = 1
				w.hdrs[i].Len = 0
			}
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&w.hdrs[0])), uintptr(k),
				syscall.MSG_DONTWAIT|syscall.MSG_NOSIGNAL, 0, 0)
			switch {
			case e == syscall.EINTR:
				continue
			case e == syscall.EAGAIN || e == syscall.EWOULDBLOCK:
				return false // park until writable, then resume here
			case e != 0:
				serr = e
				return true
			default:
				sent += int(r1)
			}
		}
		return true
	})
	// Drop the borrowed frame references so the pool can recycle them
	// without this scaffolding keeping the arrays alive.
	for i := range w.iovs {
		w.iovs[i].Base = nil
	}
	if err != nil {
		return sent, err
	}
	return sent, serr
}

// Linux UDP_SEGMENT plumbing (not in the syscall package).
const (
	solUDP     = 17  // SOL_UDP
	udpSegment = 103 // UDP_SEGMENT
)

// ProbeGSO reports whether the socket accepts the UDP_SEGMENT option, i.e.
// whether SendGSO will work on this kernel. The probe sets segmentation to 0
// (disabled), which leaves the socket's behavior unchanged.
func ProbeGSO(c syscall.Conn) bool {
	rc, err := c.SyscallConn()
	if err != nil {
		return false
	}
	ok := false
	_ = rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
	})
	return ok
}

// SendGSO transmits data as ceil(len(data)/seg) on-the-wire datagrams of seg
// bytes each (the last may be shorter) in a single sendmsg(2) carrying a
// UDP_SEGMENT control message — the kernel or NIC performs the split. The
// caller guarantees ProbeGSO returned true for this socket.
func (w *BatchWriter) SendGSO(data []byte, seg int) error {
	if w.oob == nil {
		w.oob = make([]byte, syscall.CmsgSpace(2))
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&w.oob[0]))
		h.Level = solUDP
		h.Type = udpSegment
		h.SetLen(syscall.CmsgLen(2))
	}
	*(*uint16)(unsafe.Pointer(&w.oob[syscall.CmsgLen(0)])) = uint16(seg)
	var serr error
	err := w.rc.Write(func(fd uintptr) bool {
		for {
			_, e := syscall.SendmsgN(int(fd), data, w.oob, nil,
				syscall.MSG_DONTWAIT|syscall.MSG_NOSIGNAL)
			switch {
			case e == syscall.EINTR:
				continue
			case e == syscall.EAGAIN || e == syscall.EWOULDBLOCK:
				return false // park until writable
			default:
				serr = e
				return true
			}
		}
	})
	if err != nil {
		return err
	}
	return serr
}
