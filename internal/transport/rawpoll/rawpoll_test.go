package rawpoll

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func tcpPair(t *testing.T) (client, server *net.TCPConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		done <- c
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c.(*net.TCPConn), s.(*net.TCPConn)
}

func TestReadAvailableData(t *testing.T) {
	client, server := tcpPair(t)
	rd, err := NewReader(server)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, err := rd.Read(buf)
		if n > 0 {
			if string(buf[:n]) != "ping" {
				t.Fatalf("read %q", buf[:n])
			}
			return
		}
		if !errors.Is(err, ErrWouldBlock) {
			t.Fatalf("unexpected error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("data never became readable")
		}
	}
}

func TestReadEmptyWouldBlock(t *testing.T) {
	_, server := tcpPair(t)
	rd, err := NewReader(server)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := rd.Read(make([]byte, 16)); n != 0 || !errors.Is(err, ErrWouldBlock) {
		t.Errorf("Read on empty socket = %d, %v", n, err)
	}
}

func TestReadEOF(t *testing.T) {
	client, server := tcpPair(t)
	rd, err := NewReader(server)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	buf := make([]byte, 16)
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, err := rd.Read(buf)
		if err == io.EOF {
			return
		}
		if n == 0 && !errors.Is(err, ErrWouldBlock) {
			t.Fatalf("unexpected: n=%d err=%v", n, err)
		}
		if time.Now().After(deadline) {
			t.Fatal("EOF never observed")
		}
	}
}

func udpPair(t *testing.T) (sender *net.UDPConn, receiver *net.UDPConn) {
	t.Helper()
	r, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := net.DialUDP("udp", nil, r.LocalAddr().(*net.UDPAddr))
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); r.Close() })
	return s, r
}

func TestReadFromDatagram(t *testing.T) {
	sender, receiver := udpPair(t)
	rd, err := NewReader(receiver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Write([]byte("dgram")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, from, err := rd.ReadFrom(buf)
		if n > 0 {
			if string(buf[:n]) != "dgram" {
				t.Fatalf("payload %q", buf[:n])
			}
			if from == nil {
				t.Fatal("no source address")
			}
			want := sender.LocalAddr().(*net.UDPAddr)
			if from.Port != want.Port {
				t.Fatalf("source %v, want port %d", from, want.Port)
			}
			return
		}
		if !errors.Is(err, ErrWouldBlock) {
			t.Fatalf("unexpected error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("datagram never became readable")
		}
	}
}

func TestReadFromEmptyWouldBlock(t *testing.T) {
	_, receiver := udpPair(t)
	rd, err := NewReader(receiver)
	if err != nil {
		t.Fatal(err)
	}
	if n, from, err := rd.ReadFrom(make([]byte, 16)); n != 0 || from != nil || !errors.Is(err, ErrWouldBlock) {
		t.Errorf("ReadFrom on empty socket = %d, %v, %v", n, from, err)
	}
}

func TestReadFromPreservesBoundaries(t *testing.T) {
	sender, receiver := udpPair(t)
	rd, err := NewReader(receiver)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sender.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 64)
	got := 0
	deadline := time.Now().Add(2 * time.Second)
	for got < 3 && time.Now().Before(deadline) {
		n, _, err := rd.ReadFrom(buf)
		if errors.Is(err, ErrWouldBlock) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 || buf[0] != byte(got) {
			t.Fatalf("datagram %d: n=%d payload=%v", got, n, buf[:n])
		}
		got++
	}
	if got != 3 {
		t.Fatalf("read %d/3 datagrams", got)
	}
}

func BenchmarkReadWouldBlock(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			select {}
		}
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	rd, err := NewReader(c.(*net.TCPConn))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Read(buf); !errors.Is(err, ErrWouldBlock) {
			b.Fatal(err)
		}
	}
}
