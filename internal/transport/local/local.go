// Package local implements the intracontext communication module.
//
// A startpoint whose endpoint lives in the same context communicates by
// direct delivery: Dial returns a connection that hands frames straight to
// the context's sink, with no copying, queueing, or polling. This is the
// method every freshly created startpoint begins with in the paper ("a
// communication object referencing the 'local' communication method").
package local

import (
	"sync/atomic"

	"nexus/internal/transport"
)

// Name is the method name used in descriptors and resource strings.
const Name = "local"

func init() {
	transport.Register(Name, func(p transport.Params) transport.Module { return New() })
}

// Module is the intracontext communication method.
type Module struct {
	env    transport.Env
	inited atomic.Bool
	closed atomic.Bool
}

// New returns an uninitialized local module.
func New() *Module { return &Module{} }

// Name implements transport.Module.
func (m *Module) Name() string { return Name }

// Init records the environment and advertises reachability. The descriptor
// has no attributes: applicability is decided purely by context identity.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) {
	m.env = env
	m.inited.Store(true)
	return &transport.Descriptor{Method: Name, Context: env.Context}, nil
}

// Applicable reports whether remote names this very context.
func (m *Module) Applicable(remote transport.Descriptor) bool {
	return m.inited.Load() && remote.Method == Name && remote.Context == m.env.Context
}

// Dial returns a direct-delivery connection.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	if !m.inited.Load() {
		return nil, transport.ErrNotInitialized
	}
	if m.closed.Load() {
		return nil, transport.ErrClosed
	}
	if !m.Applicable(remote) {
		return nil, transport.ErrNotApplicable
	}
	return &conn{sink: m.env.Sink, closed: &m.closed}, nil
}

// Poll implements transport.Module. Local delivery is synchronous, so there
// is never pending inbound communication to detect.
func (m *Module) Poll() (int, error) { return 0, nil }

// Close implements transport.Module.
func (m *Module) Close() error {
	m.closed.Store(true)
	return nil
}

type conn struct {
	sink   transport.Sink
	closed *atomic.Bool
}

func (c *conn) Send(frame []byte) error {
	if c.closed.Load() {
		return transport.ErrClosed
	}
	c.sink.Deliver(frame)
	return nil
}

func (c *conn) Method() string { return Name }
func (c *conn) Close() error   { return nil }
