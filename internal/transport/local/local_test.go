package local

import (
	"errors"
	"testing"

	"nexus/internal/transport"
)

type collect struct{ frames [][]byte }

func (c *collect) Deliver(f []byte) { c.frames = append(c.frames, append([]byte(nil), f...)) }

func TestLocalDelivery(t *testing.T) {
	sink := &collect{}
	m := New()
	d, err := m.Init(transport.Env{Context: 5, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Method != Name || d.Context != 5 {
		t.Fatalf("descriptor = %v", d)
	}
	c, err := m.Dial(*d)
	if err != nil {
		t.Fatal(err)
	}
	if c.Method() != Name {
		t.Errorf("Method = %q", c.Method())
	}
	if err := c.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if len(sink.frames) != 1 || string(sink.frames[0]) != "hi" {
		t.Errorf("delivered %v", sink.frames)
	}
	if n, err := m.Poll(); n != 0 || err != nil {
		t.Errorf("Poll = %d, %v", n, err)
	}
}

func TestLocalApplicability(t *testing.T) {
	m := New()
	d, _ := m.Init(transport.Env{Context: 5, Sink: &collect{}})
	if !m.Applicable(*d) {
		t.Error("own descriptor not applicable")
	}
	other := *d
	other.Context = 6
	if m.Applicable(other) {
		t.Error("other context applicable")
	}
	wrong := *d
	wrong.Method = "tcp"
	if m.Applicable(wrong) {
		t.Error("other method applicable")
	}
	if _, err := m.Dial(other); !errors.Is(err, transport.ErrNotApplicable) {
		t.Errorf("Dial(other) err = %v", err)
	}
}

func TestLocalUninitialized(t *testing.T) {
	m := New()
	if m.Applicable(transport.Descriptor{Method: Name}) {
		t.Error("uninitialized module applicable")
	}
	if _, err := m.Dial(transport.Descriptor{Method: Name}); !errors.Is(err, transport.ErrNotInitialized) {
		t.Errorf("Dial err = %v", err)
	}
}

func TestLocalClose(t *testing.T) {
	sink := &collect{}
	m := New()
	d, _ := m.Init(transport.Env{Context: 1, Sink: sink})
	c, err := m.Dial(*d)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Send after Close err = %v", err)
	}
	if _, err := m.Dial(*d); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Dial after Close err = %v", err)
	}
}

func TestRegisteredInDefaultRegistry(t *testing.T) {
	if !transport.Default.Has(Name) {
		t.Fatal("local module not registered")
	}
	m, err := transport.Default.New(Name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != Name {
		t.Errorf("Name = %q", m.Name())
	}
}
