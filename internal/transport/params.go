package transport

import (
	"fmt"
	"strconv"
	"time"
)

// Params carries module configuration values, such as socket buffer sizes for
// a TCP method or a loss rate for an unreliable method. The paper requires
// that programmers be able to "manage low-level behavior by specifying values
// for important parameters"; Params is the vehicle, populated from the
// resource database, command-line flags, or program calls.
type Params map[string]string

// Get returns the raw value and whether it is present.
func (p Params) Get(key string) (string, bool) {
	v, ok := p[key]
	return v, ok
}

// Str returns the value for key, or def if absent.
func (p Params) Str(key, def string) string {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Int returns the integer value for key, or def if absent or malformed.
func (p Params) Int(key string, def int) int {
	if v, ok := p[key]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// Float returns the float value for key, or def if absent or malformed.
func (p Params) Float(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

// Bool returns the boolean value for key, or def if absent or malformed.
func (p Params) Bool(key string, def bool) bool {
	if v, ok := p[key]; ok {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
	}
	return def
}

// Duration returns the duration value for key, or def if absent or malformed.
func (p Params) Duration(key string, def time.Duration) time.Duration {
	if v, ok := p[key]; ok {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return def
}

// Clone returns a copy of the parameter set.
func (p Params) Clone() Params {
	c := make(Params, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Merge returns a copy of p overlaid with the entries of o.
func (p Params) Merge(o Params) Params {
	c := p.Clone()
	for k, v := range o {
		c[k] = v
	}
	return c
}

func (p Params) String() string { return fmt.Sprintf("%v", map[string]string(p)) }
