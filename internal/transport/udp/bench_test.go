package udp

import (
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/transport"
)

// countSink counts delivered frames without copying them.
type countSink struct{ n atomic.Int64 }

func (s *countSink) Deliver(f []byte) { s.n.Add(1) }

// BenchmarkDatagramBurst measures pushing bursts of datagrams through the
// module: "single" pays one sendto(2) per frame, "batch" hands the whole
// train to SendBatch (sendmmsg, or a single GSO sendmsg for the equal-sized
// frames used here). A background drainer keeps the receive socket from
// overflowing; the measured loop is the send side. One op is one burst.
func BenchmarkDatagramBurst(b *testing.B) {
	const (
		burst     = 64
		frameSize = 1200
	)
	for _, mode := range []string{"single", "batch"} {
		b.Run(mode, func(b *testing.B) {
			sink := &countSink{}
			params := transport.Params{"rcvbuf": "8388608", "sndbuf": "8388608"}
			recv := New(params)
			d, err := recv.Init(transport.Env{Context: 1, Sink: sink})
			if err != nil {
				b.Fatal(err)
			}
			defer recv.Close()
			send := New(params)
			if _, err := send.Init(transport.Env{Context: 2, Sink: &countSink{}}); err != nil {
				b.Fatal(err)
			}
			defer send.Close()
			c, err := send.Dial(*d)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			stop := make(chan struct{})
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if n, _ := recv.Poll(); n == 0 {
						time.Sleep(50 * time.Microsecond)
					}
				}
			}()

			frames := make([][]byte, burst)
			for i := range frames {
				frames[i] = make([]byte, frameSize)
			}
			bs := c.(transport.BatchSender)
			b.SetBytes(burst * frameSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "batch" {
					if _, err := bs.SendBatch(frames); err != nil {
						b.Fatal(err)
					}
				} else {
					for _, f := range frames {
						if err := c.Send(f); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.StopTimer()
			// Give the drainer a moment to absorb the tail of the last burst
			// before tearing it down (calibration runs are a single burst).
			deadline := time.Now().Add(2 * time.Second)
			for sink.n.Load() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			close(stop)
			<-drained
			if sink.n.Load() == 0 {
				b.Fatal("receiver saw no datagrams")
			}
			b.ReportMetric(float64(sink.n.Load())/float64(b.N*burst), "delivered/sent")
		})
	}
}
