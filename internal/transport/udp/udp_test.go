package udp

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"nexus/internal/transport"
)

type collect struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collect) Deliver(f []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), f...)) // Deliver borrows f
	c.mu.Unlock()
}

func (c *collect) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func initModule(t *testing.T, p transport.Params, ctx transport.ContextID, sink transport.Sink) (*Module, transport.Descriptor) {
	t.Helper()
	m := New(p)
	d, err := m.Init(transport.Env{Context: ctx, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, *d
}

func TestSendPollRoundTrip(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, nil, 2, &collect{})

	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := [][]byte{[]byte("dgram-1"), []byte("dgram-2"), bytes.Repeat([]byte{9}, 8000)}
	for _, f := range want {
		if err := c.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && sink.count() < len(want) {
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if sink.count() != len(want) {
		t.Fatalf("received %d datagrams, want %d", sink.count(), len(want))
	}
	for i, f := range sink.frames {
		if !bytes.Equal(f, want[i]) {
			t.Errorf("datagram %d mismatch (%d vs %d bytes)", i, len(f), len(want[i]))
		}
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	recv, d := initModule(t, nil, 1, &collect{})
	_ = recv
	send, _ := initModule(t, nil, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(make([]byte, MaxDatagram+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversize Send err = %v, want ErrTooLarge", err)
	}
}

func TestLossInjection(t *testing.T) {
	sink := &collect{}
	recv, d := initModule(t, nil, 1, sink)
	send, _ := initModule(t, transport.Params{"loss": "0.5", "seed": "7"}, 2, &collect{})
	c, err := send.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Allow arrival, then drain.
	time.Sleep(50 * time.Millisecond)
	for {
		got, err := recv.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			break
		}
	}
	got := sink.count()
	if got == 0 || got == n {
		t.Errorf("with 50%% loss received %d/%d datagrams; want strictly between", got, n)
	}
	// Deterministic: a second identical sender drops the same pattern.
	send2, _ := initModule(t, transport.Params{"loss": "0.5", "seed": "7"}, 3, &collect{})
	c2, err := send2.Dial(d)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	sink.mu.Lock()
	sink.frames = nil
	sink.mu.Unlock()
	for i := 0; i < n; i++ {
		if err := c2.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	for {
		k, err := recv.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			break
		}
	}
	if got2 := sink.count(); got2 != got {
		t.Errorf("same seed dropped differently: %d vs %d", got2, got)
	}
}

func TestApplicable(t *testing.T) {
	m := New(nil)
	if !m.Applicable(transport.Descriptor{Method: Name, Attrs: map[string]string{"addr": "127.0.0.1:1"}}) {
		t.Error("valid descriptor not applicable")
	}
	if m.Applicable(transport.Descriptor{Method: "tcp", Attrs: map[string]string{"addr": "x"}}) {
		t.Error("wrong method applicable")
	}
	if m.Applicable(transport.Descriptor{Method: Name}) {
		t.Error("missing addr applicable")
	}
}

func TestLifecycleErrors(t *testing.T) {
	m := New(nil)
	if _, err := m.Poll(); !errors.Is(err, transport.ErrNotInitialized) {
		t.Errorf("Poll before Init: %v", err)
	}
	if _, err := m.Init(transport.Env{Context: 1, Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(transport.Env{Context: 1, Sink: &collect{}}); err == nil {
		t.Error("double Init succeeded")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Poll(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Poll after Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestRegisteredInDefaultRegistry(t *testing.T) {
	if !transport.Default.Has(Name) {
		t.Fatal("udp module not registered")
	}
}
