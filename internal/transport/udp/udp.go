// Package udp implements the unreliable datagram communication module.
//
// The paper lists UDP among the specialized protocols that collaborative and
// streaming applications select for data that tolerates loss (shared-state
// updates, video frames) in exchange for lower latency and no head-of-line
// blocking. Each frame travels as one datagram; frames larger than a
// datagram are rejected rather than fragmented, and delivery is not
// guaranteed. An optional loss parameter injects deterministic artificial
// drop for failure-injection tests.
package udp

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"nexus/internal/transport"
	"nexus/internal/transport/rawpoll"
)

// Name is the method name used in descriptors and resource strings.
const Name = "udp"

// MaxDatagram is the largest frame the module will send (a safe UDP payload
// bound below the 64 KiB datagram limit).
const MaxDatagram = 60 << 10

// ErrTooLarge reports a frame that does not fit in a single datagram. It
// wraps transport.ErrTooLarge, the typed oversize error shared by every
// size-limited module.
var ErrTooLarge = fmt.Errorf("udp: frame exceeds datagram size: %w", transport.ErrTooLarge)

func init() {
	transport.Register(Name, func(p transport.Params) transport.Module { return New(p) })
}

// DefaultRecvBuffer is the socket receive buffer requested at Init. The
// fragmentation layer above delivers a bulk message as a burst of
// near-datagram-size frames; the OS default buffer (a couple hundred KiB on
// Linux) holds only a handful of those, so a poller that is even briefly
// behind loses most of the burst. Sized to absorb one maximally fragmented
// 16 MiB-default message window in practice: kernels cap the request at
// net.core.rmem_max, and the setting is best-effort.
const DefaultRecvBuffer = 4 << 20

// Module is a UDP communication method instance.
type Module struct {
	listen string
	loss   float64
	seed   int64
	rcvbuf int

	mu     sync.Mutex
	env    transport.Env
	pc     *net.UDPConn
	rd     *rawpoll.Reader
	inited bool
	closed bool

	scratch []byte
}

// New returns an uninitialized UDP module. Recognized parameters:
//
//	listen — listen address (default "127.0.0.1:0")
//	loss   — probability in [0,1] of silently dropping an outbound frame
//	seed   — RNG seed for deterministic loss injection (default 1)
//	rcvbuf — requested socket receive buffer in bytes (default 4 MiB;
//	         0 keeps the OS default)
func New(p transport.Params) *Module {
	if p == nil {
		p = transport.Params{}
	}
	return &Module{
		listen: p.Str("listen", "127.0.0.1:0"),
		loss:   p.Float("loss", 0),
		seed:   int64(p.Int("seed", 1)),
		rcvbuf: p.Int("rcvbuf", DefaultRecvBuffer),
	}
}

// Name implements transport.Module.
func (m *Module) Name() string { return Name }

// Init binds the datagram socket.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inited {
		return nil, fmt.Errorf("udp: double Init for context %d", env.Context)
	}
	addr, err := net.ResolveUDPAddr("udp", m.listen)
	if err != nil {
		return nil, fmt.Errorf("udp: resolve %s: %w", m.listen, err)
	}
	pc, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen: %w", err)
	}
	if m.rcvbuf > 0 {
		_ = pc.SetReadBuffer(m.rcvbuf) // best effort; kernel caps apply
	}
	rd, err := rawpoll.NewReader(pc)
	if err != nil {
		pc.Close()
		return nil, fmt.Errorf("udp: raw reader: %w", err)
	}
	m.env = env
	m.pc = pc
	m.rd = rd
	m.inited = true
	m.scratch = make([]byte, 64<<10)
	return &transport.Descriptor{
		Method:  Name,
		Context: env.Context,
		Attrs: map[string]string{
			"addr":                   pc.LocalAddr().String(),
			transport.AttrMaxMessage: strconv.Itoa(MaxDatagram),
		},
	}, nil
}

// MaxMessage implements transport.SizeLimiter: one frame per datagram.
func (m *Module) MaxMessage() int { return MaxDatagram }

// Applicable reports whether remote advertises a UDP address.
func (m *Module) Applicable(remote transport.Descriptor) bool {
	return remote.Method == Name && remote.Attr("addr") != ""
}

// Dial opens an unreliable connection to the remote context.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	m.mu.Lock()
	inited, closed := m.inited, m.closed
	m.mu.Unlock()
	if !inited {
		return nil, transport.ErrNotInitialized
	}
	if closed {
		return nil, transport.ErrClosed
	}
	if !m.Applicable(remote) {
		return nil, transport.ErrNotApplicable
	}
	addr, err := net.ResolveUDPAddr("udp", remote.Attr("addr"))
	if err != nil {
		return nil, fmt.Errorf("udp: resolve %s: %w", remote.Attr("addr"), err)
	}
	c, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, fmt.Errorf("udp: dial %s: %w", addr, err)
	}
	oc := &conn{c: c}
	if m.loss > 0 {
		oc.loss = m.loss
		oc.rng = rand.New(rand.NewSource(m.seed))
	}
	return oc, nil
}

// Poll drains every datagram currently queued on the socket.
func (m *Module) Poll() (int, error) {
	m.mu.Lock()
	if !m.inited {
		m.mu.Unlock()
		return 0, transport.ErrNotInitialized
	}
	if m.closed {
		m.mu.Unlock()
		return 0, transport.ErrClosed
	}
	rd, sink, scratch := m.rd, m.env.Sink, m.scratch
	m.mu.Unlock()

	delivered := 0
	for {
		n, err := rd.Read(scratch)
		if n > 0 {
			frame := make([]byte, n)
			copy(frame, scratch[:n])
			sink.Deliver(frame)
			delivered++
			continue
		}
		if errors.Is(err, rawpoll.ErrWouldBlock) || err == nil {
			return delivered, nil
		}
		if m.isClosed() {
			return delivered, transport.ErrClosed
		}
		return delivered, err
	}
}

func (m *Module) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// PollCostHint implements transport.CostHinter.
func (m *Module) PollCostHint() time.Duration { return 50 * time.Microsecond }

// Close releases the socket.
func (m *Module) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.pc != nil {
		return m.pc.Close()
	}
	return nil
}

type conn struct {
	mu   sync.Mutex
	c    *net.UDPConn
	loss float64
	rng  *rand.Rand
}

func (c *conn) Send(frame []byte) error {
	if len(frame) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(frame))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng != nil && c.rng.Float64() < c.loss {
		return nil // dropped: unreliable delivery is part of the contract
	}
	_, err := c.c.Write(frame)
	return err
}

func (c *conn) Method() string { return Name }
func (c *conn) Close() error   { return c.c.Close() }
