// Package udp implements the unreliable datagram communication module.
//
// The paper lists UDP among the specialized protocols that collaborative and
// streaming applications select for data that tolerates loss (shared-state
// updates, video frames) in exchange for lower latency and no head-of-line
// blocking. Each frame travels as one datagram; frames larger than a
// datagram are rejected rather than fragmented, and delivery is not
// guaranteed. An optional loss parameter injects deterministic artificial
// drop for failure-injection tests.
//
// Detection and transmission are syscall-batched: Poll drains a burst of
// queued datagrams per recvmmsg(2) into persistent receive slots (no copy,
// no allocation on the steady-state receive path), connections flush frame
// trains with sendmmsg(2) via the BatchSender capability — collapsing an
// equal-sized train into a single UDP-GSO sendmsg(2) where the kernel
// supports it — and the module implements transport.Reactive, so a
// readiness reactor can take its socket out of the polling rotation
// entirely until the kernel reports data.
package udp

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"nexus/internal/transport"
	"nexus/internal/transport/rawpoll"
)

// Name is the method name used in descriptors and resource strings.
const Name = "udp"

// MaxDatagram is the largest frame the module will send (a safe UDP payload
// bound below the 64 KiB datagram limit).
const MaxDatagram = 60 << 10

// ErrTooLarge reports a frame that does not fit in a single datagram. It
// wraps transport.ErrTooLarge, the typed oversize error shared by every
// size-limited module.
var ErrTooLarge = fmt.Errorf("udp: frame exceeds datagram size: %w", transport.ErrTooLarge)

func init() {
	transport.Register(Name, func(p transport.Params) transport.Module { return New(p) })
}

// DefaultRecvBuffer is the socket receive buffer requested at Init. The
// fragmentation layer above delivers a bulk message as a burst of
// near-datagram-size frames; the OS default buffer (a couple hundred KiB on
// Linux) holds only a handful of those, so a poller that is even briefly
// behind loses most of the burst. Sized to absorb one maximally fragmented
// 16 MiB-default message window in practice: kernels cap the request at
// net.core.rmem_max, and the setting is best-effort.
const DefaultRecvBuffer = 4 << 20

// DefaultSendBuffer is the socket send buffer requested for outbound
// connections. sendmmsg hands the kernel a whole fragment train in one call;
// the ~208 KiB Linux default absorbs only three 60 KiB datagrams before the
// sender parks on writability mid-batch, so the batch path wants the same
// headroom the receive path already requests.
const DefaultSendBuffer = 4 << 20

// recvSlots is the Poll batch width: datagrams drained per recvmmsg call.
const recvSlots = 16

// sendSlots is the per-connection batch width: frames per sendmmsg call.
const sendSlots = 16

// maxPollDatagrams bounds one fallback Poll pass. A pass drains full batches
// until the socket is empty or the bound is reached, so a flooding peer
// cannot pin the polling loop inside one module's Poll while other methods
// starve. Reactor-attached modules ignore the bound: edge-triggered
// readiness requires draining to "would block" (transport.Reactive).
const maxPollDatagrams = 1024

// Module is a UDP communication method instance.
type Module struct {
	listen string
	loss   float64
	seed   int64
	rcvbuf int
	sndbuf int

	mu     sync.Mutex
	env    transport.Env
	pc     *net.UDPConn
	br     *rawpoll.BatchReader
	fd     int
	rd     transport.Readiness // non-nil while reactor-attached
	inited bool
	closed bool
}

// New returns an uninitialized UDP module. Recognized parameters:
//
//	listen — listen address (default "127.0.0.1:0")
//	loss   — probability in [0,1] of silently dropping an outbound frame
//	seed   — RNG seed for deterministic loss injection (default 1)
//	rcvbuf — requested socket receive buffer in bytes (default 4 MiB;
//	         0 keeps the OS default)
//	sndbuf — requested socket send buffer in bytes, applied to outbound
//	         connections (default 4 MiB; 0 keeps the OS default)
func New(p transport.Params) *Module {
	if p == nil {
		p = transport.Params{}
	}
	return &Module{
		listen: p.Str("listen", "127.0.0.1:0"),
		loss:   p.Float("loss", 0),
		seed:   int64(p.Int("seed", 1)),
		rcvbuf: p.Int("rcvbuf", DefaultRecvBuffer),
		sndbuf: p.Int("sndbuf", DefaultSendBuffer),
	}
}

// Name implements transport.Module.
func (m *Module) Name() string { return Name }

// udpFd returns the fd behind a *net.UDPConn (or -1).
func udpFd(pc *net.UDPConn) int {
	fd := -1
	rc, err := pc.SyscallConn()
	if err != nil {
		return -1
	}
	_ = rc.Control(func(f uintptr) { fd = int(f) })
	return fd
}

// Init binds the datagram socket.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inited {
		return nil, fmt.Errorf("udp: double Init for context %d", env.Context)
	}
	addr, err := net.ResolveUDPAddr("udp", m.listen)
	if err != nil {
		return nil, fmt.Errorf("udp: resolve %s: %w", m.listen, err)
	}
	pc, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen: %w", err)
	}
	if m.rcvbuf > 0 {
		_ = pc.SetReadBuffer(m.rcvbuf) // best effort; kernel caps apply
	}
	br, err := rawpoll.NewBatchReader(pc, recvSlots, 64<<10)
	if err != nil {
		pc.Close()
		return nil, fmt.Errorf("udp: batch reader: %w", err)
	}
	m.env = env
	m.pc = pc
	m.br = br
	m.fd = udpFd(pc)
	m.inited = true
	return &transport.Descriptor{
		Method:  Name,
		Context: env.Context,
		Attrs: map[string]string{
			"addr":                   pc.LocalAddr().String(),
			transport.AttrMaxMessage: strconv.Itoa(MaxDatagram),
		},
	}, nil
}

// MaxMessage implements transport.SizeLimiter: one frame per datagram.
func (m *Module) MaxMessage() int { return MaxDatagram }

// Applicable reports whether remote advertises a UDP address.
func (m *Module) Applicable(remote transport.Descriptor) bool {
	return remote.Method == Name && remote.Attr("addr") != ""
}

// Dial opens an unreliable connection to the remote context.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	m.mu.Lock()
	inited, closed := m.inited, m.closed
	m.mu.Unlock()
	if !inited {
		return nil, transport.ErrNotInitialized
	}
	if closed {
		return nil, transport.ErrClosed
	}
	if !m.Applicable(remote) {
		return nil, transport.ErrNotApplicable
	}
	addr, err := net.ResolveUDPAddr("udp", remote.Attr("addr"))
	if err != nil {
		return nil, fmt.Errorf("udp: resolve %s: %w", remote.Attr("addr"), err)
	}
	c, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, fmt.Errorf("udp: dial %s: %w", addr, err)
	}
	if m.sndbuf > 0 {
		_ = c.SetWriteBuffer(m.sndbuf) // best effort; kernel caps apply
	}
	bw, err := rawpoll.NewBatchWriter(c, sendSlots)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("udp: batch writer: %w", err)
	}
	oc := &conn{c: c, bw: bw, gso: rawpoll.ProbeGSO(c)}
	if m.loss > 0 {
		oc.loss = m.loss
		oc.rng = rand.New(rand.NewSource(m.seed))
	}
	return oc, nil
}

// AttachReactor implements transport.Reactive: the listen socket joins the
// reactor's watch set, and Poll calls switch to drain-to-empty semantics.
func (m *Module) AttachReactor(r transport.Readiness) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.inited {
		return transport.ErrNotInitialized
	}
	if m.closed {
		return transport.ErrClosed
	}
	if m.fd < 0 {
		return transport.ErrNotReactive
	}
	if err := r.Add(m.fd); err != nil {
		return err
	}
	m.rd = r
	return nil
}

// DetachReactor implements transport.Reactive.
func (m *Module) DetachReactor() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rd != nil {
		m.rd.Remove(m.fd)
		m.rd = nil
	}
}

// Poll drains queued datagrams in recvmmsg batches, delivering each frame
// straight from its receive slot (the sink borrows it for the call). The
// fallback path bounds one pass at maxPollDatagrams; reactor-attached
// modules drain until the socket reports empty, as edge-triggered readiness
// requires.
func (m *Module) Poll() (int, error) {
	m.mu.Lock()
	if !m.inited {
		m.mu.Unlock()
		return 0, transport.ErrNotInitialized
	}
	if m.closed {
		m.mu.Unlock()
		return 0, transport.ErrClosed
	}
	br, sink, attached := m.br, m.env.Sink, m.rd != nil
	m.mu.Unlock()

	delivered := 0
	for {
		n, err := br.Recv()
		for i := 0; i < n; i++ {
			sink.Deliver(br.Frame(i))
		}
		delivered += n
		if err != nil {
			if errors.Is(err, rawpoll.ErrWouldBlock) {
				return delivered, nil
			}
			if m.isClosed() {
				return delivered, transport.ErrClosed
			}
			return delivered, err
		}
		if !attached && delivered >= maxPollDatagrams {
			return delivered, nil // bounded pass; the rest waits for the next
		}
	}
}

func (m *Module) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// PollCostHint implements transport.CostHinter.
func (m *Module) PollCostHint() time.Duration { return 50 * time.Microsecond }

// Close releases the socket.
func (m *Module) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.rd != nil {
		m.rd.Remove(m.fd) // before close: the OS may reuse the fd number
		m.rd = nil
	}
	if m.pc != nil {
		return m.pc.Close()
	}
	return nil
}

type conn struct {
	mu   sync.Mutex
	c    *net.UDPConn
	bw   *rawpoll.BatchWriter
	gso  bool
	gbuf []byte // GSO coalescing buffer, allocated on first use
	kept [][]byte
	loss float64
	rng  *rand.Rand
}

func (c *conn) Send(frame []byte) error {
	if len(frame) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(frame))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng != nil && c.rng.Float64() < c.loss {
		return nil // dropped: unreliable delivery is part of the contract
	}
	_, err := c.c.Write(frame)
	return err
}

// maxGSOBytes caps one GSO super-datagram: the kernel bounds the whole
// buffer to an IP datagram's 64 KiB payload space.
const maxGSOBytes = 63 << 10

// maxGSOSegments is the kernel's UDP_MAX_SEGMENTS.
const maxGSOSegments = 64

// SendBatch implements transport.BatchSender: the train goes out in one
// sendmmsg(2) per sendSlots frames — or, when every frame but the last has
// the same size and the kernel supports UDP generic segmentation offload, in
// a single sendmsg(2) that the kernel splits on the way out.
func (c *conn) SendBatch(frames [][]byte) (int, error) {
	for i, f := range frames {
		if len(f) > MaxDatagram {
			return i, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(f))
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng != nil {
		// Loss injection decides per frame; survivors still go out batched.
		c.kept = c.kept[:0]
		for _, f := range frames {
			if c.rng.Float64() >= c.loss {
				c.kept = append(c.kept, f)
			}
		}
		if _, err := c.bw.Send(c.kept); err != nil {
			return 0, fmt.Errorf("udp: batch send: %w", err)
		}
		return len(frames), nil
	}
	if seg := gsoSegment(frames); c.gso && seg > 0 {
		if c.gbuf == nil {
			c.gbuf = make([]byte, 0, maxGSOBytes)
		}
		buf := c.gbuf[:0]
		for _, f := range frames {
			buf = append(buf, f...)
		}
		if err := c.bw.SendGSO(buf, seg); err != nil {
			// EIO/EINVAL here can mean a GSO-incapable path (e.g. a device
			// change after probe); disable and fall through to sendmmsg.
			c.gso = false
		} else {
			return len(frames), nil
		}
	}
	n, err := c.bw.Send(frames)
	if err != nil {
		return n, fmt.Errorf("udp: batch send: %w", err)
	}
	return n, nil
}

// gsoSegment reports the segment size to use for a GSO send of frames, or 0
// when the train does not qualify (fewer than two frames, unequal sizes
// before the last, last longer than the rest, or total beyond the GSO cap).
func gsoSegment(frames [][]byte) int {
	if len(frames) < 2 || len(frames) > maxGSOSegments {
		return 0
	}
	seg := len(frames[0])
	if seg == 0 {
		return 0
	}
	total := 0
	for i, f := range frames {
		if i < len(frames)-1 && len(f) != seg {
			return 0
		}
		if i == len(frames)-1 && len(f) > seg {
			return 0
		}
		total += len(f)
	}
	if total > maxGSOBytes {
		return 0
	}
	return seg
}

func (c *conn) Method() string { return Name }
func (c *conn) Close() error   { return c.c.Close() }
