//go:build linux

// Module-level benchmarks for the shared-memory transport. These measure the
// raw ring path (Dial/Send/Poll) without the core's wire framing, so they
// bound what the facade can achieve. cmd/nexus-bench re-runs equivalent
// bodies to produce BENCH_8.json, and CI's bench-smoke step pins the
// ping-pong number.
package shm

import (
	"fmt"
	"sync/atomic"
	"testing"

	"nexus/internal/transport"
)

// countSink counts deliveries without retaining frames, so b.N iterations do
// not accumulate memory the way the test helpers' copying sink would.
type countSink struct {
	n     atomic.Int64
	bytes atomic.Int64
}

func (s *countSink) Deliver(f []byte) {
	s.n.Add(1)
	s.bytes.Add(int64(len(f)))
}

// benchPair wires two modules under b's temp dir and dials one conn in each
// direction (the reverse dial reuses ring 1 of the same segment).
func benchPair(b *testing.B, params transport.Params) (a, c *Module, aSink, cSink *countSink, toC, toA transport.Conn) {
	b.Helper()
	mk := func(ctx transport.ContextID, sink transport.Sink) (*Module, *transport.Descriptor) {
		p := transport.Params{"dir": b.TempDir()}
		for k, v := range params {
			p[k] = v
		}
		m := New(p)
		desc, err := m.Init(transport.Env{Context: ctx, Sink: sink})
		if err != nil {
			b.Fatalf("Init: %v", err)
		}
		b.Cleanup(func() { m.Close() })
		return m, desc
	}
	aSink, cSink = &countSink{}, &countSink{}
	a, aDesc := mk(1, aSink)
	c, cDesc := mk(2, cSink)
	toC, err := a.Dial(*cDesc)
	if err != nil {
		b.Fatalf("Dial a→c: %v", err)
	}
	b.Cleanup(func() { toC.Close() })
	toA, err = c.Dial(*aDesc)
	if err != nil {
		b.Fatalf("Dial c→a: %v", err)
	}
	b.Cleanup(func() { toA.Close() })
	return a, c, aSink, cSink, toC, toA
}

// BenchmarkShmPingPong is a full round trip: a frame through one ring, the
// reply through the paired reverse ring, both sides polled from this thread.
// ns/op is the round-trip time; halve for the one-way figure.
func BenchmarkShmPingPong(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			a, c, aSink, cSink, toC, toA := benchPair(b, nil)
			payload := pattern(0x42, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := toC.Send(payload); err != nil {
					b.Fatal(err)
				}
				for cSink.n.Load() < int64(i+1) {
					c.Poll()
				}
				if err := toA.Send(payload); err != nil {
					b.Fatal(err)
				}
				for aSink.n.Load() < int64(i+1) {
					a.Poll()
				}
			}
		})
	}
}

// BenchmarkShmBulkBandwidth streams large frames one way, draining the
// receiver from the same thread every half-ring so the producer never
// blocks; MB/s comes from b.SetBytes. (A concurrent-goroutine drain would
// measure the scheduler on single-CPU machines, not the rings.) This is the
// number EXPERIMENTS.md compares against tcp's loopback bulk bandwidth.
func BenchmarkShmBulkBandwidth(b *testing.B) {
	const size = 256 << 10
	// 8 frames ≈ half the default 4 MiB ring: the drain always finds room
	// freed before the producer can fill up.
	const burst = 8
	_, c, _, cSink, toC, _ := benchPair(b, nil)
	payload := pattern(0x17, size)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := toC.Send(payload); err != nil {
			b.Fatal(err)
		}
		if (i+1)%burst == 0 {
			for cSink.n.Load() < int64(i+1) {
				c.Poll()
			}
		}
	}
	for cSink.n.Load() < int64(b.N) {
		c.Poll()
	}
}

// BenchmarkShmBatchSend measures the amortized cost of SendBatch (one
// doorbell for the whole batch), draining after each train.
func BenchmarkShmBatchSend(b *testing.B) {
	const frames, size = 32, 1024
	_, c, _, cSink, toC, _ := benchPair(b, nil)
	bs := toC.(transport.BatchSender)
	batch := make([][]byte, frames)
	for i := range batch {
		batch[i] = pattern(byte(i), size)
	}
	b.SetBytes(frames * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := bs.SendBatch(batch); n != frames || err != nil {
			b.Fatalf("SendBatch = %d, %v", n, err)
		}
		for cSink.n.Load() < int64(i+1)*frames {
			c.Poll()
		}
	}
}
