package shm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Segment layout. A segment file is one 4 KiB header page followed by the
// two ring data regions:
//
//	off 0    magic   uint32  "NXS1"
//	off 4    version uint32
//	off 8    ring size (bytes per direction) uint64
//	off 16   creator context id uint64
//	off 64.. ring 0 control words (dialer → acceptor), one per cache line:
//	         head@64 tail@128 armed@192 closed@256
//	off 320.. ring 1 control words (acceptor → dialer):
//	         head@320 tail@384 armed@448 closed@512
//	off 4096            ring 0 data
//	off 4096+ringSize   ring 1 data
const (
	segMagic   = 0x3153584e // "NXS1" little-endian
	segVersion = 1
	hdrSize    = 4096

	offMagic    = 0
	offVersion  = 4
	offRingSize = 8
	offCreator  = 16
	ring0Ctl    = 64
	ring1Ctl    = 320
	ctlStride   = 64
)

// ringLimits bound what initSegment/openSegment accept from a shared header.
const (
	minRingSize = 64 << 10
	maxRingSize = 1 << 30
)

// ringSizeFor clamps and rounds a requested per-direction ring capacity to
// the nearest power of two within [minRingSize, maxRingSize].
func ringSizeFor(n int) int {
	if n < minRingSize {
		n = minRingSize
	}
	if n > maxRingSize {
		n = maxRingSize
	}
	p := minRingSize
	for p < n {
		p <<= 1
	}
	return p
}

// segSizeFor is the byte length of a segment file for a ring size.
func segSizeFor(ringSize int) int { return hdrSize + 2*ringSize }

// ringsOf builds the two ring views over a mapping whose header has already
// been validated (or freshly written).
func ringsOf(mem []byte, ringSize uint64) [2]ring {
	var rs [2]ring
	for i := 0; i < 2; i++ {
		ctl := ring0Ctl
		if i == 1 {
			ctl = ring1Ctl
		}
		rs[i] = ring{
			ringHdr: ringHdr{
				head:   word(mem, ctl),
				tail:   word(mem, ctl+ctlStride),
				armed:  word(mem, ctl+2*ctlStride),
				closed: word(mem, ctl+3*ctlStride),
			},
			data: mem[hdrSize+uint64(i)*ringSize : hdrSize+uint64(i+1)*ringSize],
			size: ringSize,
			mask: ringSize - 1,
		}
	}
	return rs
}

// initSegment writes a fresh header into a zeroed mapping.
func initSegment(mem []byte, ringSize uint64, creator uint64) {
	binary.LittleEndian.PutUint32(mem[offMagic:], segMagic)
	binary.LittleEndian.PutUint32(mem[offVersion:], segVersion)
	binary.LittleEndian.PutUint64(mem[offRingSize:], ringSize)
	binary.LittleEndian.PutUint64(mem[offCreator:], creator)
}

// validateSegment checks a mapped header against the mapping's actual size
// and returns the ring size. Everything read from shared memory is hostile
// until proven consistent: magic, version, and the size equation must all
// hold before any ring view is built over the bytes.
func validateSegment(mem []byte) (uint64, error) {
	if len(mem) < hdrSize {
		return 0, fmt.Errorf("shm: segment too small: %d bytes", len(mem))
	}
	if m := binary.LittleEndian.Uint32(mem[offMagic:]); m != segMagic {
		return 0, fmt.Errorf("shm: bad segment magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(mem[offVersion:]); v != segVersion {
		return 0, fmt.Errorf("shm: unsupported segment version %d", v)
	}
	rs := binary.LittleEndian.Uint64(mem[offRingSize:])
	if rs < minRingSize || rs > maxRingSize || rs&(rs-1) != 0 {
		return 0, fmt.Errorf("shm: implausible ring size %d", rs)
	}
	if uint64(len(mem)) != hdrSize+2*rs {
		return 0, fmt.Errorf("shm: mapping is %d bytes, header claims %d", len(mem), hdrSize+2*rs)
	}
	return rs, nil
}

// Attach lines travel over the control FIFO: "A <file> <ctx> <quoted ctl>\n"
// announces a freshly created segment file (a bare name inside the
// receiver's own directory), the dialing context's id, and the dialer's own
// control FIFO path (for reverse doorbells). Lines are shorter than
// PIPE_BUF, so concurrent dialers never interleave. Any other line — in
// particular the single '\n' a doorbell writes — is ignored.

// attachMsg is one parsed attach announcement.
type attachMsg struct {
	file string
	ctx  uint64
	ctl  string
}

// formatAttach renders an attach line.
func formatAttach(file string, ctx uint64, ctl string) string {
	return fmt.Sprintf("A %s %d %s\n", file, ctx, strconv.Quote(ctl))
}

// parseAttach parses one FIFO line (without the trailing newline). It
// returns ok=false for doorbells, blanks, and anything malformed: the FIFO
// is writable by any same-host process, so garbage must parse to "ignore",
// never to a panic or a path outside the segment directory.
func parseAttach(line string) (attachMsg, bool) {
	if !strings.HasPrefix(line, "A ") {
		return attachMsg{}, false
	}
	parts := strings.SplitN(line[2:], " ", 3)
	if len(parts) != 3 {
		return attachMsg{}, false
	}
	file := parts[0]
	if file == "" || file == "." || file == ".." ||
		strings.ContainsAny(file, "/\\") {
		return attachMsg{}, false // must stay inside our directory
	}
	ctx, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return attachMsg{}, false
	}
	ctl, err := strconv.Unquote(parts[2])
	if err != nil {
		return attachMsg{}, false
	}
	return attachMsg{file: file, ctx: ctx, ctl: ctl}, true
}
