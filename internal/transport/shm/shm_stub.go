//go:build !linux

package shm

import "nexus/internal/transport"

// Supported reports whether this build has a real shared-memory transport.
// The mmap/FIFO machinery is Linux-only for now; on other platforms the
// module exists but never advertises a descriptor and never matches one, so
// selection falls through to the next method on the ladder and the facade's
// blank import stays portable.
func Supported() bool { return false }

// Module is the inert non-Linux placeholder.
type Module struct{}

// New returns the stub module; parameters are ignored.
func New(p transport.Params) *Module { return &Module{} }

// Name implements transport.Module.
func (m *Module) Name() string { return Name }

// Init reports "cannot receive by this method" (nil descriptor, nil error),
// which is the Module contract's way of opting a context out of a method.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) { return nil, nil }

// Applicable never matches: no platform support, no locality to exploit.
func (m *Module) Applicable(remote transport.Descriptor) bool { return false }

// Dial always refuses.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	return nil, transport.ErrNotApplicable
}

// Poll has nothing to check.
func (m *Module) Poll() (int, error) { return 0, nil }

// Close has nothing to release.
func (m *Module) Close() error { return nil }
