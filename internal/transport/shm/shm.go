// Package shm implements the same-host shared-memory communication module:
// contexts on one machine — same process or not — exchange frames through
// mmap'd file segments holding a pair of lock-free single-producer /
// single-consumer byte rings, one per direction.
//
// It is the rung of the multimethod ladder between inproc (same process) and
// tcp (any host): the paper's selection rule picks the fastest mechanism each
// link supports, and within a node that mechanism is shared memory. A frame
// travels as one memcpy into the ring plus one zero-copy delivery out of it;
// no system call touches the steady-state data path.
//
// # Rendezvous
//
// Each module instance owns a segment directory (on tmpfs — /dev/shm — when
// available) containing a control FIFO. The descriptor advertises the
// directory, the FIFO path, and the host identity; Applicable accepts only
// descriptors from the same host whose FIFO still exists, which is what makes
// selection locality-aware without any core changes. Dial creates a segment
// file in the remote's directory, maps it, and announces it with one attach
// line written to the FIFO; the receiver maps the segment on its next poll
// (or readiness edge) and unlinks the backing file immediately, so a crashed
// peer can never leak a visible segment that was successfully attached.
//
// # Wakeup: bounded spin, then park
//
// The receive hot path is polling — the core's reactive hot windows spin the
// module while traffic flows, and every poll is a few loads per ring. After
// spinPolls consecutive empty polls the module arms a per-ring doorbell flag
// in the shared header and parks: from then on a producer that publishes a
// frame and observes the armed flag clears it and writes one byte to the
// consumer's FIFO. The FIFO's read end is the fd the module registers with
// the readiness reactor (transport.Reactive), so a parked context costs zero
// CPU until the kernel reports the doorbell. The arm/publish race is resolved
// by sequentially consistent atomics: the consumer re-checks the rings after
// arming, the producer checks the flag after publishing — one of the two must
// observe the other.
//
// # Crash safety
//
// Segment files live only between create and attach; attached segments are
// anonymous (unlinked) shared pages that die with their last mapping. A
// module Init sweeps sibling segment directories whose control FIFO has no
// reader (ENXIO on a non-blocking write-open) and whose mtime is old — the
// signature of a crashed owner — so stale directories are bounded by one
// sweep interval. Ring metadata read from a shared header is validated
// against the mapping's actual size before use, and a corrupt record length
// poisons only that segment, never the module.
package shm

import "nexus/internal/transport"

// Name is the method name used in descriptors and resource strings.
const Name = "shm"

func init() {
	transport.Register(Name, func(p transport.Params) transport.Module { return New(p) })
}

// DefaultRingSize is the per-direction ring capacity. Two rings plus one
// header page make a segment just over 8 MiB — tmpfs pages that are only
// touched (and only become resident) as frames actually wrap through them.
const DefaultRingSize = 4 << 20

// recordAlign is the ring record granularity: lengths and offsets are
// 4-byte aligned so a record header is always a single aligned load.
const recordAlign = 4

// maxMessageFor bounds one frame for a given ring size: a frame plus its
// wrap padding must always fit in an empty ring (worst case pad < record
// size, so record ≤ ring/2 guarantees progress), minus the record header.
func maxMessageFor(ringSize int) int { return ringSize/2 - 8 }

// Descriptor attribute names.
const (
	// attrHost is the machine identity; Applicable requires an exact match.
	attrHost = "host"
	// attrDir is the receiver's segment directory.
	attrDir = "dir"
	// attrCtl is the receiver's control FIFO (attach messages + doorbells).
	attrCtl = "ctl"
)
