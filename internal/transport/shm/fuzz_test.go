package shm

import (
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzRingDrain treats the entire segment as hostile: the fuzzer controls
// the ring control words and every data byte — exactly the power a buggy or
// malicious same-host peer has over the shared mapping. Drain must
// terminate, never panic or index out of bounds, and never deliver a frame
// longer than the message limit.
func FuzzRingDrain(f *testing.F) {
	const ringSize = 4096
	seed := func(head, tail uint64, data []byte) []byte {
		mem := make([]byte, segSizeFor(ringSize))
		initSegment(mem, ringSize, 1)
		binary.LittleEndian.PutUint64(mem[ring0Ctl:], head)
		binary.LittleEndian.PutUint64(mem[ring0Ctl+ctlStride:], tail)
		copy(mem[hdrSize:], data)
		return mem
	}
	// A legitimate record, a wrap marker mid-stream, and pathological
	// cursor values.
	f.Add(seed(8, 0, []byte{4, 0, 0, 0, 'a', 'b', 'c', 'd'}))
	f.Add(seed(12, 4, []byte{0xFF, 0xFF, 0xFF, 0xFF, 2, 0, 0, 0, 'x', 'y', 0, 0}))
	f.Add(seed(^uint64(0), 0, nil))
	f.Add(seed(1, 3, []byte{1}))
	f.Add(seed(ringSize+8, 0, nil))

	f.Fuzz(func(t *testing.T, mem []byte) {
		if len(mem) != segSizeFor(ringSize) {
			t.Skip()
		}
		rings := ringsOf(mem, ringSize)
		maxMsg := maxMessageFor(ringSize)
		for i := range rings {
			sink := &boundedSink{t: t, maxMsg: maxMsg}
			// Bounded and unbounded drains must both be safe; errors
			// (corruption) are an expected outcome, panics are not.
			_, _ = rings[i].drain(sink, maxMsg, 16)
			_, _ = rings[i].drain(sink, maxMsg, 0)
		}
		// The producer must survive hostile cursors too.
		_, _ = rings[0].tryPush([]byte("probe"))
	})
}

type boundedSink struct {
	t      *testing.T
	maxMsg int
}

func (s *boundedSink) Deliver(frame []byte) {
	if len(frame) > s.maxMsg {
		s.t.Fatalf("drain delivered %d bytes past the %d limit", len(frame), s.maxMsg)
	}
}

// FuzzParseAttach feeds arbitrary control-FIFO lines to the attach parser.
// Anything may be written to the FIFO by any same-host process; accepted
// messages must never name a file outside the segment directory.
func FuzzParseAttach(f *testing.F) {
	f.Add("A seg-1 7 \"/dev/shm/nexus-shm-abc/ctl.fifo\"")
	f.Add("")
	f.Add("A ../../etc/passwd 1 \"x\"")
	f.Add("A seg 18446744073709551615 \"\"")
	f.Add("A seg 1 \"\\x00\"")
	f.Add(strings.Repeat("A", 5000))
	f.Fuzz(func(t *testing.T, line string) {
		msg, ok := parseAttach(line)
		if !ok {
			return
		}
		if msg.file == "" || strings.ContainsAny(msg.file, "/\\") ||
			msg.file == "." || msg.file == ".." {
			t.Fatalf("parser accepted escaping file name %q", msg.file)
		}
		// Round-trip stability: re-rendering must parse to the same message.
		again, ok := parseAttach(strings.TrimSuffix(formatAttach(msg.file, msg.ctx, msg.ctl), "\n"))
		if !ok || again != msg {
			t.Fatalf("attach message not stable: %+v vs %+v", msg, again)
		}
	})
}
