// White-box tests for the SPSC ring and segment header machinery. These are
// portable: the ring operates on plain byte slices, so the lock-free
// wrap/publish/drain logic and the hostile-header validation are exercised on
// every platform, not just the one with mmap.
package shm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// testRingSize is deliberately tiny so every test crosses the wrap boundary
// many times.
const testRingSize = 4096

func newTestRings(t testing.TB, ringSize uint64) [2]ring {
	if t != nil {
		t.Helper()
	}
	mem := make([]byte, segSizeFor(int(ringSize)))
	initSegment(mem, ringSize, 42)
	return ringsOf(mem, ringSize)
}

// sinkFrames collects drained frames (copying, since drain lends ring memory).
type sinkFrames struct{ frames [][]byte }

func (s *sinkFrames) Deliver(f []byte) {
	s.frames = append(s.frames, append([]byte(nil), f...))
}

func TestRingRoundTripAcrossWraps(t *testing.T) {
	rs := newTestRings(t, testRingSize)
	r := &rs[0]
	maxMsg := maxMessageFor(testRingSize)
	sink := &sinkFrames{}
	var sent [][]byte
	// Mixed sizes, some pushed in bursts, so head lands at every alignment
	// class and wraps dozens of times through a 4 KiB ring.
	sizes := []int{1, 3, 100, 1000, 997, 4, 0, 2040, 64, 511}
	for round := 0; round < 50; round++ {
		burst := 1 + round%3
		for b := 0; b < burst; b++ {
			size := sizes[(round+b)%len(sizes)]
			frame := pattern(byte(round+b), size)
			ok, err := r.tryPush(frame)
			if err != nil {
				t.Fatalf("round %d: tryPush: %v", round, err)
			}
			if !ok {
				t.Fatalf("round %d: ring full with only %d in flight", round, burst)
			}
			sent = append(sent, frame)
		}
		if _, err := r.drain(sink, maxMsg, 0); err != nil {
			t.Fatalf("round %d: drain: %v", round, err)
		}
	}
	if len(sink.frames) != len(sent) {
		t.Fatalf("drained %d frames, sent %d", len(sink.frames), len(sent))
	}
	for i := range sent {
		if !bytes.Equal(sink.frames[i], sent[i]) {
			t.Fatalf("frame %d corrupted: got %d bytes, want %d", i, len(sink.frames[i]), len(sent[i]))
		}
	}
}

// TestRingMaxFrameAlwaysFits is the liveness guarantee behind maxMessageFor:
// an empty ring accepts a maximum-size frame no matter where head points,
// including positions that force a wrap marker plus full padding.
func TestRingMaxFrameAlwaysFits(t *testing.T) {
	maxMsg := maxMessageFor(testRingSize)
	big := pattern(0xAB, maxMsg)
	sink := &sinkFrames{}
	for offset := 0; offset < 64; offset += 4 {
		rs := newTestRings(t, testRingSize)
		r := &rs[0]
		if offset > 0 {
			// Displace head to an arbitrary aligned position.
			if ok, _ := r.tryPush(make([]byte, offset-4+1)); !ok {
				t.Fatal("displacement push failed")
			}
			if _, err := r.drain(sink, maxMsg, 0); err != nil {
				t.Fatal(err)
			}
		}
		ok, err := r.tryPush(big)
		if err != nil || !ok {
			t.Fatalf("offset %d: max frame rejected (ok=%v err=%v)", offset, ok, err)
		}
		sink.frames = nil
		if _, err := r.drain(sink, maxMsg, 0); err != nil {
			t.Fatalf("offset %d: drain: %v", offset, err)
		}
		if len(sink.frames) != 1 || !bytes.Equal(sink.frames[0], big) {
			t.Fatalf("offset %d: max frame corrupted in transit", offset)
		}
	}
}

func TestRingFullThenReclaim(t *testing.T) {
	rs := newTestRings(t, testRingSize)
	r := &rs[0]
	maxMsg := maxMessageFor(testRingSize)
	frame := pattern(0x77, 500)
	pushed := 0
	for {
		ok, err := r.tryPush(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		pushed++
	}
	if pushed == 0 || pushed > testRingSize/500 {
		t.Fatalf("implausible capacity: %d frames of 500 bytes in a %d ring", pushed, testRingSize)
	}
	sink := &sinkFrames{}
	n, err := r.drain(sink, maxMsg, 0)
	if err != nil || n != pushed {
		t.Fatalf("drain = %d, %v; want %d", n, err, pushed)
	}
	if ok, _ := r.tryPush(frame); !ok {
		t.Fatal("ring did not reclaim space after drain")
	}
}

// TestRingDrainBound checks the fallback-mode pass bound: a drain with max=n
// delivers exactly n and leaves the rest intact.
func TestRingDrainBound(t *testing.T) {
	rs := newTestRings(t, testRingSize)
	r := &rs[0]
	maxMsg := maxMessageFor(testRingSize)
	for i := 0; i < 6; i++ {
		if ok, _ := r.tryPush(pattern(byte(i), 100)); !ok {
			t.Fatal("push failed")
		}
	}
	sink := &sinkFrames{}
	if n, err := r.drain(sink, maxMsg, 4); n != 4 || err != nil {
		t.Fatalf("bounded drain = %d, %v; want 4, nil", n, err)
	}
	if n, err := r.drain(sink, maxMsg, 0); n != 2 || err != nil {
		t.Fatalf("second drain = %d, %v; want 2, nil", n, err)
	}
	for i, f := range sink.frames {
		if !bytes.Equal(f, pattern(byte(i), 100)) {
			t.Fatalf("frame %d reordered across bounded drains", i)
		}
	}
}

// TestRingCorruptionDetected scribbles over a published record length and
// over the control words; drain must fail with errRingCorrupt, never panic
// or read out of bounds.
func TestRingCorruptionDetected(t *testing.T) {
	cases := []struct {
		name string
		mut  func(r *ring)
	}{
		{"length beyond published", func(r *ring) {
			binary.LittleEndian.PutUint32(r.data[r.tail.Load()&r.mask:], 3000)
		}},
		{"length beyond maxMsg", func(r *ring) {
			binary.LittleEndian.PutUint32(r.data[r.tail.Load()&r.mask:], uint32(maxMessageFor(testRingSize)+1))
		}},
		{"wrap marker past head", func(r *ring) {
			binary.LittleEndian.PutUint32(r.data[r.tail.Load()&r.mask:], wrapMarker)
		}},
		{"head ran backwards", func(r *ring) { r.head.Store(r.tail.Load() - 4) }},
		{"head unaligned", func(r *ring) { r.head.Store(r.head.Load() + 1) }},
		{"tail unaligned", func(r *ring) { r.tail.Store(r.tail.Load() + 2) }},
		{"head absurdly far", func(r *ring) { r.head.Store(r.tail.Load() + testRingSize + 4) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := newTestRings(t, testRingSize)
			r := &rs[0]
			if ok, _ := r.tryPush(pattern(1, 200)); !ok {
				t.Fatal("push failed")
			}
			tc.mut(r)
			if _, err := r.drain(&sinkFrames{}, maxMessageFor(testRingSize), 0); !errors.Is(err, errRingCorrupt) {
				t.Fatalf("drain err = %v, want errRingCorrupt", err)
			}
		})
	}
}

// TestRingProducerDetectsCorruptTail covers the producer side: a consumer
// cursor that ran past head must surface as corruption, not wrap free-space
// arithmetic around.
func TestRingProducerDetectsCorruptTail(t *testing.T) {
	rs := newTestRings(t, testRingSize)
	r := &rs[0]
	r.tail.Store(r.head.Load() + 8) // consumer "ahead" of producer: impossible
	if _, err := r.tryPush([]byte("x")); !errors.Is(err, errRingCorrupt) {
		t.Fatalf("tryPush err = %v, want errRingCorrupt", err)
	}
}

func TestValidateSegment(t *testing.T) {
	good := func() []byte {
		mem := make([]byte, segSizeFor(minRingSize))
		initSegment(mem, minRingSize, 7)
		return mem
	}
	t.Run("fresh header validates", func(t *testing.T) {
		rs, err := validateSegment(good())
		if err != nil || rs != minRingSize {
			t.Fatalf("validateSegment = %d, %v", rs, err)
		}
	})
	cases := []struct {
		name string
		mut  func(mem []byte) []byte
	}{
		{"bad magic", func(m []byte) []byte { m[0] ^= 0xFF; return m }},
		{"future version", func(m []byte) []byte {
			binary.LittleEndian.PutUint32(m[offVersion:], 99)
			return m
		}},
		{"ring size not power of two", func(m []byte) []byte {
			binary.LittleEndian.PutUint64(m[offRingSize:], minRingSize+8)
			return m
		}},
		{"ring size below floor", func(m []byte) []byte {
			binary.LittleEndian.PutUint64(m[offRingSize:], 4096)
			return m
		}},
		{"ring size above ceiling", func(m []byte) []byte {
			binary.LittleEndian.PutUint64(m[offRingSize:], 1<<40)
			return m
		}},
		{"size equation violated", func(m []byte) []byte { return m[:len(m)-4096] }},
		{"truncated below header", func(m []byte) []byte { return m[:100] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := validateSegment(tc.mut(good())); err == nil {
				t.Fatal("corrupt header validated")
			}
		})
	}
}

func TestRingSizeFor(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, minRingSize},
		{-5, minRingSize},
		{minRingSize, minRingSize},
		{minRingSize + 1, minRingSize * 2},
		{DefaultRingSize, DefaultRingSize},
		{DefaultRingSize - 1, DefaultRingSize},
		{maxRingSize + 1, maxRingSize},
	}
	for _, tc := range cases {
		if got := ringSizeFor(tc.in); got != tc.want {
			t.Errorf("ringSizeFor(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestParseAttach(t *testing.T) {
	line := formatAttach("seg-123", 9, "/tmp/nexus-shm-x/ctl.fifo")
	msg, ok := parseAttach(line[:len(line)-1])
	if !ok || msg.file != "seg-123" || msg.ctx != 9 || msg.ctl != "/tmp/nexus-shm-x/ctl.fifo" {
		t.Fatalf("round trip failed: %+v ok=%v", msg, ok)
	}
	bad := []string{
		"",                      // doorbell
		"A",                     // truncated
		"A  1 \"x\"",            // empty file
		"A ../evil 1 \"x\"",     // path escape
		"A a/b 1 \"x\"",         // path separator
		"A x\\y 1 \"x\"",        // windows separator
		"A seg nope \"x\"",      // non-numeric context
		"A seg 1 x",             // unquoted ctl
		"A seg 1",               // missing ctl
		"B seg 1 \"x\"",         // unknown verb
		"A . 1 \"x\"",           // dot
		"A .. 1 \"x\"",          // dotdot
		"A seg 1 \"unterminated", // bad quoting
	}
	for _, l := range bad {
		if _, ok := parseAttach(l); ok {
			t.Errorf("parseAttach(%q) accepted, want rejected", l)
		}
	}
}

// pattern builds a deterministic payload whose first byte identifies it.
func pattern(tag byte, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i) ^ tag
	}
	if size > 0 {
		b[0] = tag
	}
	return b
}

// discardSink drops frames; used by the fuzzers too.
type discardSink struct{ n int }

func (d *discardSink) Deliver(f []byte) { d.n++ }
