package shm

import (
	"encoding/binary"
	"errors"
	"sync/atomic"
	"unsafe"

	"nexus/internal/transport"
)

// The ring is a lock-free single-producer / single-consumer byte queue over a
// shared memory region. head and tail are monotonically increasing uint64
// counters (they never wrap in practice: 2^64 bytes at memory speed is
// centuries); the byte position of a counter is counter % size, with size a
// power of two. The producer owns head, the consumer owns tail; both are
// read with sequentially consistent atomics so the doorbell arm/publish race
// resolves (see the package comment).
//
// A record is [len uint32][payload, padded to 4 bytes]. When a record does
// not fit contiguously before the end of the region the producer writes the
// wrap marker ^uint32(0) and skips to offset 0; all lengths and offsets stay
// 4-aligned, so the marker itself always fits. maxMessageFor keeps one
// record ≤ half the ring, so an empty ring always accepts a maximum frame
// even in the worst wrap case — the producer cannot deadlock against itself.

// wrapMarker in a length slot means "rest of the region is padding".
const wrapMarker = ^uint32(0)

// errRingCorrupt reports shared-memory contents that violate the ring
// invariants — a crashed or hostile peer. The segment is poisoned; the
// module survives.
var errRingCorrupt = errors.New("shm: ring corrupt")

// ringHdr is the set of control words for one direction, each on its own
// cache line in the segment header.
type ringHdr struct {
	head   *atomic.Uint64 // producer cursor (bytes ever published)
	tail   *atomic.Uint64 // consumer cursor (bytes ever consumed)
	armed  *atomic.Uint64 // 1 = consumer parked, wants a doorbell
	closed *atomic.Uint64 // 1 = direction shut down (either side may set)
}

// ring is one direction of a segment: control words plus the data region.
type ring struct {
	ringHdr
	data []byte
	size uint64
	mask uint64 // size-1 (size is a power of two)
}

func align4(n int) int { return (n + recordAlign - 1) &^ (recordAlign - 1) }

// word interprets 8 bytes of the mapping at off as an atomic counter. The
// mapping is page-aligned and off is 8-aligned, so the cast is legal.
func word(mem []byte, off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&mem[off]))
}

// tryPush publishes one frame, returning false when the ring lacks space.
// Single producer only; callers serialize.
func (r *ring) tryPush(frame []byte) (bool, error) {
	need := uint64(recordAlign + align4(len(frame)))
	h := r.head.Load()
	t := r.tail.Load()
	used := h - t
	if used > r.size || h&3 != 0 {
		return false, errRingCorrupt // consumer cursor ran past us
	}
	pos := h & r.mask
	rem := r.size - pos
	total := need
	if rem < need {
		total += rem // wrap marker consumes the remainder
	}
	if r.size-used < total {
		return false, nil
	}
	if rem < need {
		binary.LittleEndian.PutUint32(r.data[pos:], wrapMarker)
		h += rem
		pos = 0
	}
	binary.LittleEndian.PutUint32(r.data[pos:], uint32(len(frame)))
	copy(r.data[pos+recordAlign:], frame)
	r.head.Store(h + need) // publish: everything above happens-before this
	return true, nil
}

// drain delivers every published record to sink, advancing tail per record
// so the producer reclaims space as we go. Frames are delivered zero-copy
// straight out of the shared region — the sink borrows them for the call,
// exactly the transport.Sink contract. max bounds one pass (0 = unbounded,
// the drain-to-empty mode edge-triggered readiness requires).
//
// Every length read from shared memory is validated before use: a peer that
// scribbles on the segment can corrupt its own link, never this process.
func (r *ring) drain(sink transport.Sink, maxMsg int, max int) (int, error) {
	delivered := 0
	t := r.tail.Load()
	for {
		h := r.head.Load()
		if h == t {
			return delivered, nil
		}
		if h-t > r.size || t&3 != 0 || h&3 != 0 {
			return delivered, errRingCorrupt
		}
		for t != h {
			pos := t & r.mask
			rem := r.size - pos
			l := binary.LittleEndian.Uint32(r.data[pos:])
			if l == wrapMarker {
				if rem > h-t {
					// A marker that would carry tail past head: hostile.
					// Skipping it would underflow h-t and spin for 2^64
					// bytes — corruption, not padding.
					return delivered, errRingCorrupt
				}
				t += rem
				r.tail.Store(t)
				continue
			}
			need := uint64(recordAlign + align4(int(l)))
			if int(l) > maxMsg || need > rem || need > h-t {
				return delivered, errRingCorrupt
			}
			sink.Deliver(r.data[pos+recordAlign : pos+recordAlign+uint64(l)])
			t += need
			r.tail.Store(t)
			delivered++
			if max > 0 && delivered >= max {
				return delivered, nil
			}
		}
	}
}

// empty reports whether the ring has no published records.
func (r *ring) empty() bool { return r.head.Load() == r.tail.Load() }
