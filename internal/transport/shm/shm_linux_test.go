//go:build linux

package shm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"nexus/internal/transport"
)

func newPair(t *testing.T, recvParams, sendParams transport.Params) (*Module, *Module, transport.Descriptor, *sinkFrames) {
	t.Helper()
	if recvParams == nil {
		recvParams = transport.Params{}
	}
	if sendParams == nil {
		sendParams = transport.Params{}
	}
	if recvParams["dir"] == "" {
		recvParams["dir"] = t.TempDir()
	}
	if sendParams["dir"] == "" {
		sendParams["dir"] = t.TempDir()
	}
	sink := &sinkFrames{}
	recv := New(recvParams)
	desc, err := recv.Init(transport.Env{Context: 1, Sink: sink})
	if err != nil {
		t.Fatalf("recv Init: %v", err)
	}
	t.Cleanup(func() { recv.Close() })
	send := New(sendParams)
	if _, err := send.Init(transport.Env{Context: 2, Sink: &sinkFrames{}}); err != nil {
		t.Fatalf("send Init: %v", err)
	}
	t.Cleanup(func() { send.Close() })
	return recv, send, *desc, sink
}

func pollUntil(t *testing.T, m *Module, sink *sinkFrames, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.frames) < want {
		if _, err := m.Poll(); err != nil {
			t.Fatalf("Poll: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d frames after deadline", len(sink.frames), want)
		}
	}
}

func TestModuleRoundTrip(t *testing.T) {
	recv, send, desc, sink := newPair(t, nil, nil)
	c, err := send.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sent [][]byte
	for i, size := range []int{1, 100, 4 << 10, 1 << 20} {
		f := pattern(byte(i+1), size)
		if err := c.Send(f); err != nil {
			t.Fatalf("Send(%d): %v", size, err)
		}
		sent = append(sent, f)
	}
	pollUntil(t, recv, sink, len(sent))
	for i := range sent {
		if !bytes.Equal(sink.frames[i], sent[i]) {
			t.Fatalf("frame %d corrupted or reordered", i)
		}
	}
	if got := recv.TransportStats()["shm.segments"]; got != 1 {
		t.Fatalf("receiver segments = %d, want 1", got)
	}
}

func TestBatchSendSingleDoorbell(t *testing.T) {
	recv, send, desc, sink := newPair(t, nil, nil)
	c, err := send.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bs, ok := c.(transport.BatchSender)
	if !ok {
		t.Fatal("shm conn does not implement BatchSender")
	}
	var frames [][]byte
	for i := 0; i < 32; i++ {
		frames = append(frames, pattern(byte(i), 700))
	}
	if n, err := bs.SendBatch(frames); n != len(frames) || err != nil {
		t.Fatalf("SendBatch = %d, %v", n, err)
	}
	pollUntil(t, recv, sink, len(frames))
	for i := range frames {
		if !bytes.Equal(sink.frames[i], frames[i]) {
			t.Fatalf("batched frame %d corrupted or reordered", i)
		}
	}
}

// TestReverseRingReuse: when B has accepted a segment from A, a dial B→A
// claims the reverse ring of that same segment — no second mapping, no
// rendezvous — and frames flow back through it.
func TestReverseRingReuse(t *testing.T) {
	aSink := &sinkFrames{}
	a := New(transport.Params{"dir": t.TempDir()})
	aDesc, err := a.Init(transport.Env{Context: 1, Sink: aSink})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bSink := &sinkFrames{}
	b := New(transport.Params{"dir": t.TempDir()})
	bDesc, err := b.Init(transport.Env{Context: 2, Sink: bSink})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ab, err := a.Dial(*bDesc)
	if err != nil {
		t.Fatal(err)
	}
	defer ab.Close()
	if err := ab.Send(pattern(1, 64)); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, b, bSink, 1) // B attaches A's segment

	ba, err := b.Dial(*aDesc)
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()
	bc, ok := ba.(*conn)
	if !ok || !bc.rev {
		t.Fatalf("B→A dial did not claim the reverse ring (rev=%v)", ok && bc.rev)
	}
	if err := ba.Send(pattern(2, 64)); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, a, aSink, 1) // A consumes its dialed segment's reverse ring
	if !bytes.Equal(aSink.frames[0], pattern(2, 64)) {
		t.Fatal("reverse frame corrupted")
	}
	if got := b.TransportStats()["shm.segments"]; got != 1 {
		t.Fatalf("B segments = %d, want 1 (reverse reuse must not map a second segment)", got)
	}
}

// TestDoorbellArmAndWake exercises the spin-then-park protocol end to end:
// after `spin` empty polls the consumer arms the in-ring flag; the next
// producer publish clears it and makes the reactor fd readable.
func TestDoorbellArmAndWake(t *testing.T) {
	recv, send, desc, sink := newPair(t, transport.Params{"spin": "4"}, nil)
	c, err := send.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(pattern(1, 32)); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, recv, sink, 1)

	var seg *segment
	recv.mu.Lock()
	if len(recv.segs) == 1 {
		seg = recv.segs[0]
	}
	rfd := recv.rfd
	recv.mu.Unlock()
	if seg == nil {
		t.Fatal("receiver has no segment")
	}
	for i := 0; i < 8; i++ { // empty passes beyond spin=4
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if seg.ring[0].armed.Load() != 1 {
		t.Fatal("doorbell not armed after spin empty polls")
	}
	if readable(rfd) {
		t.Fatal("fifo readable before any doorbell")
	}
	if err := c.Send(pattern(2, 32)); err != nil {
		t.Fatal(err)
	}
	if seg.ring[0].armed.Load() != 0 {
		t.Fatal("producer did not consume the armed flag")
	}
	if !waitReadable(rfd, time.Second) {
		t.Fatal("doorbell byte did not make the reactor fd readable")
	}
	pollUntil(t, recv, sink, 2)
	if !bytes.Equal(sink.frames[1], pattern(2, 32)) {
		t.Fatal("post-park frame corrupted")
	}
}

func readable(fd int) bool {
	var fds syscall.FdSet
	fds.Bits[fd/64] = 1 << (uint(fd) % 64)
	tv := syscall.Timeval{}
	n, err := syscall.Select(fd+1, &fds, nil, nil, &tv)
	return err == nil && n > 0
}

func waitReadable(fd int, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for !readable(fd) {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// TestReactorAttach: the module registers exactly its FIFO read fd and
// removes it on detach and close.
func TestReactorAttach(t *testing.T) {
	recv, _, _, _ := newPair(t, nil, nil)
	fr := &fakeReadiness{}
	var m transport.Module = recv
	rm, ok := m.(transport.Reactive)
	if !ok {
		t.Fatal("shm module does not implement transport.Reactive")
	}
	if err := rm.AttachReactor(fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.added) != 1 || fr.added[0] != recv.rfd {
		t.Fatalf("registered fds %v, want [%d]", fr.added, recv.rfd)
	}
	rm.DetachReactor()
	if len(fr.removed) != 1 || fr.removed[0] != recv.rfd {
		t.Fatalf("removed fds %v, want [%d]", fr.removed, recv.rfd)
	}
}

type fakeReadiness struct{ added, removed []int }

func (f *fakeReadiness) Add(fd int) error { f.added = append(f.added, fd); return nil }
func (f *fakeReadiness) Remove(fd int)    { f.removed = append(f.removed, fd) }

func TestApplicableLocality(t *testing.T) {
	_, send, desc, _ := newPair(t, nil, nil)
	if !send.Applicable(desc) {
		t.Fatal("same-host descriptor not applicable")
	}
	other := desc.Clone()
	other.Attrs[attrHost] = desc.Attrs[attrHost] + "-elsewhere"
	if send.Applicable(other) {
		t.Fatal("foreign-host descriptor applicable: locality rule broken")
	}
	noCtl := desc.Clone()
	delete(noCtl.Attrs, attrCtl)
	if send.Applicable(noCtl) {
		t.Fatal("descriptor without a control FIFO applicable")
	}
	wrongMethod := desc.Clone()
	wrongMethod.Method = "tcp"
	if send.Applicable(wrongMethod) {
		t.Fatal("foreign method applicable")
	}
}

// TestApplicableDeadPeer: once the receiver is gone (dir removed), its
// descriptor stops matching, so selection falls over to another method
// instead of dialing a ghost.
func TestApplicableDeadPeer(t *testing.T) {
	recv, send, desc, _ := newPair(t, nil, nil)
	if !send.Applicable(desc) {
		t.Fatal("live descriptor not applicable")
	}
	recv.Close()
	if send.Applicable(desc) {
		t.Fatal("descriptor of a closed receiver still applicable")
	}
	if _, err := send.Dial(desc); !errors.Is(err, transport.ErrNotApplicable) {
		t.Fatalf("Dial(dead peer) = %v, want ErrNotApplicable", err)
	}
}

func TestOversizeRejected(t *testing.T) {
	_, send, desc, _ := newPair(t, nil, nil)
	c, err := send.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	limit := send.MaxMessage()
	if err := c.Send(make([]byte, limit+1)); !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("Send(limit+1) = %v, want ErrTooLarge", err)
	}
	if err := c.Send(pattern(1, 64)); err != nil {
		t.Fatalf("conn unusable after oversize rejection: %v", err)
	}
}

// TestSendTimeoutOnStuckConsumer: a peer that attached but stopped draining
// must not wedge the sender forever — a full ring times out.
func TestSendTimeoutOnStuckConsumer(t *testing.T) {
	recv, send, desc, sink := newPair(t,
		transport.Params{"ring": "65536"},
		transport.Params{"ring": "65536", "send_timeout": "100ms"})
	c, err := send.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(pattern(1, 64)); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, recv, sink, 1) // attach happens, then the consumer goes silent
	frame := pattern(2, 30000)
	start := time.Now()
	var sendErr error
	for i := 0; i < 10; i++ {
		if sendErr = c.Send(frame); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("sends into a 64 KiB ring with a stuck consumer all succeeded")
	}
	if errors.Is(sendErr, transport.ErrClosed) || errors.Is(sendErr, transport.ErrTooLarge) {
		t.Fatalf("wrong error class: %v", sendErr)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v, configured 100ms", elapsed)
	}
}

// TestPeerModuleCloseFailsSends: the receiver closing its module marks the
// shared rings closed, so the sender's next Send fails fast with ErrClosed
// (feeding the core's failover) instead of timing out.
func TestPeerModuleCloseFailsSends(t *testing.T) {
	recv, send, desc, sink := newPair(t, nil, nil)
	c, err := send.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(pattern(1, 64)); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, recv, sink, 1)
	recv.Close()
	if err := c.Send(pattern(2, 64)); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send after peer close = %v, want ErrClosed", err)
	}
}

// TestAcceptorReapsClosedSegment: when the dialer closes its connection the
// acceptor drains, unmaps, and forgets the segment.
func TestAcceptorReapsClosedSegment(t *testing.T) {
	recv, send, desc, sink := newPair(t, nil, nil)
	c, err := send.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(pattern(1, 64)); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, recv, sink, 1)
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for recv.TransportStats()["shm.segments"] != 0 {
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("segment not reaped: %d live", recv.TransportStats()["shm.segments"])
		}
	}
}

// TestFIFOGarbageIgnored: anything same-host processes scribble on the
// control FIFO — partial lines, binary noise, traversal attempts — must be
// discarded without disturbing real attaches.
func TestFIFOGarbageIgnored(t *testing.T) {
	recv, send, desc, sink := newPair(t, nil, nil)
	w, err := os.OpenFile(desc.Attr(attrCtl), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	garbage := []string{
		"A ../../etc/passwd 1 \"x\"\n",
		"A no-such-file 1 \"x\"\n",
		"\x00\x01\x02\n",
		"half a line with no newline yet",
	}
	for _, g := range garbage {
		if _, err := w.WriteString(g); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := recv.Poll(); err != nil {
		t.Fatalf("Poll over garbage: %v", err)
	}
	w.WriteString("\n") // terminate the partial line
	c, err := send.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(pattern(7, 128)); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, recv, sink, 1)
	if recv.TransportStats()["shm.attach.rejected"] == 0 {
		t.Fatal("hostile attach lines were not counted as rejected")
	}
}

// TestStaleSweep: Init removes orphaned sibling segment directories (dead
// FIFO, old mtime) and leaves live ones alone.
func TestStaleSweep(t *testing.T) {
	base := t.TempDir()

	// A live module whose directory merely looks old.
	live := New(transport.Params{"dir": base})
	if _, err := live.Init(transport.Env{Context: 1, Sink: &sinkFrames{}}); err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	old := time.Now().Add(-time.Hour)
	os.Chtimes(live.dir, old, old)

	// A crashed owner: directory and FIFO exist, nobody holds the read end.
	stale := filepath.Join(base, "nexus-shm-stale1")
	if err := os.Mkdir(stale, 0o700); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Mkfifo(filepath.Join(stale, "ctl.fifo"), 0o600); err != nil {
		t.Fatal(err)
	}
	os.Chtimes(stale, old, old)

	// A fresh directory without a reader: too young to sweep.
	young := filepath.Join(base, "nexus-shm-young")
	if err := os.Mkdir(young, 0o700); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Mkfifo(filepath.Join(young, "ctl.fifo"), 0o600); err != nil {
		t.Fatal(err)
	}

	m := New(transport.Params{"dir": base})
	if _, err := m.Init(transport.Env{Context: 2, Sink: &sinkFrames{}}); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale directory survived the sweep")
	}
	if _, err := os.Stat(live.dir); err != nil {
		t.Fatal("live (old but owned) directory was swept")
	}
	if _, err := os.Stat(young); err != nil {
		t.Fatal("young ownerless directory was swept early")
	}
	if m.TransportStats()["shm.stale.swept"] != 1 {
		t.Fatalf("swept = %d, want 1", m.TransportStats()["shm.stale.swept"])
	}
}

// TestCrossProcessRoundTrip re-executes the test binary as a child process
// that dials this process's descriptor and streams frames through the
// mapped segment — shared memory between two real address spaces, the
// paper's intra-node case.
func TestCrossProcessRoundTrip(t *testing.T) {
	sink := &sinkFrames{}
	recv := New(transport.Params{"dir": t.TempDir()})
	desc, err := recv.Init(transport.Env{Context: 1, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	dj, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperShmChildSend$", "-test.v")
	cmd.Env = append(os.Environ(), "NEXUS_SHM_CHILD_DESC="+string(dj))
	out, err := cmd.CombinedOutput()
	if err != nil || !strings.Contains(string(out), "PASS") {
		t.Fatalf("child sender failed: %v\n%s", err, out)
	}
	const want = 64
	pollUntil(t, recv, sink, want)
	for i := 0; i < want; i++ {
		if !bytes.Equal(sink.frames[i], pattern(byte(i+1), 1000)) {
			t.Fatalf("cross-process frame %d corrupted or reordered", i)
		}
	}
}

// TestHelperShmChildSend is the child half of TestCrossProcessRoundTrip; it
// only runs when re-executed with the descriptor in the environment.
func TestHelperShmChildSend(t *testing.T) {
	dj := os.Getenv("NEXUS_SHM_CHILD_DESC")
	if dj == "" {
		t.Skip("helper for TestCrossProcessRoundTrip")
	}
	var desc transport.Descriptor
	if err := json.Unmarshal([]byte(dj), &desc); err != nil {
		t.Fatal(err)
	}
	m := New(nil)
	if _, err := m.Init(transport.Env{Context: 99, Sink: &sinkFrames{}}); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c, err := m.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := c.Send(pattern(byte(i+1), 1000)); err != nil {
			t.Fatalf("child Send %d: %v", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndHints(t *testing.T) {
	recv, send, desc, sink := newPair(t, nil, nil)
	var m transport.Module = recv
	if _, ok := m.(transport.StatsReporter); !ok {
		t.Fatal("shm module does not implement StatsReporter")
	}
	if _, ok := m.(transport.CostHinter); !ok {
		t.Fatal("shm module does not implement CostHinter")
	}
	if _, ok := m.(transport.SizeLimiter); !ok {
		t.Fatal("shm module does not implement SizeLimiter")
	}
	if adv := desc.MaxMessage(); adv != send.MaxMessage() {
		t.Fatalf("descriptor advertises %d, module enforces %d", adv, send.MaxMessage())
	}
	c, err := send.Dial(desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Send(pattern(byte(i), 256)); err != nil {
			t.Fatal(err)
		}
	}
	pollUntil(t, recv, sink, 5)
	st := recv.TransportStats()
	if st["shm.frames.in"] < 5 {
		t.Fatalf("frames.in = %d, want >= 5", st["shm.frames.in"])
	}
	if st["shm.attaches"] != 1 {
		t.Fatalf("attaches = %d, want 1", st["shm.attaches"])
	}
	_ = fmt.Sprint(st)
}
