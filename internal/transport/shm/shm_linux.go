//go:build linux

package shm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"nexus/internal/transport"
)

// Supported reports whether this build has a real shared-memory transport.
func Supported() bool { return true }

// ErrTooLarge reports a frame exceeding the segment's ring capacity bound.
// It wraps transport.ErrTooLarge like every size-limited module's error.
var ErrTooLarge = fmt.Errorf("shm: frame exceeds ring message limit: %w", transport.ErrTooLarge)

// Tunables (see New for the parameter names).
const (
	// DefaultSpinPolls is how many consecutive empty Poll passes the module
	// tolerates before arming the doorbells and parking. It is far below the
	// core's reactive hot window, so by the time a reactor suspends the
	// module's fd watch the rings are already armed.
	DefaultSpinPolls = 64
	// DefaultSendTimeout bounds how long a Send waits on a full ring whose
	// consumer is alive but not draining.
	DefaultSendTimeout = 5 * time.Second
	// DefaultStaleAfter is how old an orphaned sibling segment directory
	// must be before the Init sweep removes it.
	DefaultStaleAfter = 10 * time.Minute
	// carryLimit bounds the partial-line buffer for the control FIFO; a
	// writer streaming garbage without newlines is cut off here.
	carryLimit = 64 << 10
	// maxPollFrames bounds one fallback Poll pass per segment, like the
	// datagram modules: a flooding peer cannot pin the polling loop.
	// Reactor-attached modules drain to empty as edge-triggering requires.
	maxPollFrames = 1024
)

// segment is one mapped ring pair shared with exactly one peer context.
// rings[0] carries dialer→acceptor, rings[1] acceptor→dialer; cons is the
// index the local side consumes (0 when we accepted, 1 when we dialed).
type segment struct {
	mu   sync.RWMutex // RLock: push/drain; Lock: unmap
	mem  []byte       // nil once unmapped
	ring [2]ring

	cons    int
	maxMsg  int
	peerCtx transport.ContextID
	peerCtl string // peer's control FIFO (doorbell target)

	doorMu sync.Mutex
	doorFd int // write end of peerCtl; -1 until opened, -2 after failure/close

	prodMu  [2]sync.Mutex // serializes producers per direction
	revRefs atomic.Int32  // accepted segments: live reverse conns
	dead    atomic.Bool   // scheduled for unmap + removal from the poll set
}

// Module is a shared-memory communication method instance.
type Module struct {
	ringSize   int
	spin       int
	sendTO     time.Duration
	baseDir    string
	staleAfter time.Duration

	mu      sync.Mutex
	env     transport.Env
	host    string
	dir     string
	ctlPath string
	rfd     int // FIFO read end (O_RDONLY|O_NONBLOCK)
	wfd     int // dummy write end: keeps the FIFO from reporting EOF
	rd      transport.Readiness
	segs    []*segment
	byPeer  map[transport.ContextID]*segment // accepted segments, newest wins
	carry   []byte
	rbuf    []byte
	empties int
	inited  bool
	closed  bool

	attaches atomic.Uint64
	framesIn atomic.Uint64
	corrupt  atomic.Uint64
	rejects  atomic.Uint64
	swept    atomic.Uint64
}

// New returns an uninitialized shared-memory module. Recognized parameters:
//
//	ring         — per-direction ring bytes, rounded to a power of two
//	               (default 4 MiB; the message limit is ring/2-8)
//	spin         — empty Poll passes before arming doorbells (default 64)
//	send_timeout — bound on a Send blocked by a full ring (default 5s)
//	dir          — base directory for the segment directory
//	               (default /dev/shm when present, else the OS temp dir)
//	stale_after  — age before the Init sweep removes orphaned sibling
//	               segment directories (default 10m)
func New(p transport.Params) *Module {
	if p == nil {
		p = transport.Params{}
	}
	return &Module{
		ringSize:   ringSizeFor(p.Int("ring", DefaultRingSize)),
		spin:       p.Int("spin", DefaultSpinPolls),
		sendTO:     p.Duration("send_timeout", DefaultSendTimeout),
		baseDir:    p.Str("dir", ""),
		staleAfter: p.Duration("stale_after", DefaultStaleAfter),
		rfd:        -1,
		wfd:        -1,
	}
}

// Name implements transport.Module.
func (m *Module) Name() string { return Name }

// MaxMessage implements transport.SizeLimiter: the bound a frame must meet
// to fit this module's own rings (dialed segments are created at that size).
func (m *Module) MaxMessage() int { return maxMessageFor(m.ringSize) }

// PollCostHint implements transport.CostHinter: a poll pass is a FIFO read
// plus a few loads per segment — far below a socket syscall, above inproc's
// pure memory exchange.
func (m *Module) PollCostHint() time.Duration { return time.Microsecond }

func (m *Module) base() string {
	if m.baseDir != "" {
		return m.baseDir
	}
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

// Init creates the segment directory and control FIFO and sweeps crashed
// siblings.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inited {
		return nil, fmt.Errorf("shm: double Init for context %d", env.Context)
	}
	base := m.base()
	dir, err := os.MkdirTemp(base, "nexus-shm-")
	if err != nil {
		return nil, fmt.Errorf("shm: segment dir: %w", err)
	}
	ctl := filepath.Join(dir, "ctl.fifo")
	if err := syscall.Mkfifo(ctl, 0o600); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("shm: mkfifo: %w", err)
	}
	rfd, err := syscall.Open(ctl, syscall.O_RDONLY|syscall.O_NONBLOCK|syscall.O_CLOEXEC, 0)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("shm: open fifo: %w", err)
	}
	// A FIFO with no writer reports EOF to readers; holding our own dummy
	// write end keeps the read side permanently at "would block" instead.
	wfd, err := syscall.Open(ctl, syscall.O_WRONLY|syscall.O_NONBLOCK|syscall.O_CLOEXEC, 0)
	if err != nil {
		syscall.Close(rfd)
		os.RemoveAll(dir)
		return nil, fmt.Errorf("shm: open fifo writer: %w", err)
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "localhost"
	}
	m.env = env
	m.host = host
	m.dir = dir
	m.ctlPath = ctl
	m.rfd = rfd
	m.wfd = wfd
	m.byPeer = make(map[transport.ContextID]*segment)
	m.rbuf = make([]byte, 4096)
	m.inited = true
	m.sweepStale(base)
	return &transport.Descriptor{
		Method:  Name,
		Context: env.Context,
		Attrs: map[string]string{
			attrHost:                 host,
			attrDir:                  dir,
			attrCtl:                  ctl,
			transport.AttrMaxMessage: strconv.Itoa(m.MaxMessage()),
		},
	}, nil
}

// sweepStale removes sibling segment directories whose control FIFO has no
// reader (ENXIO on a non-blocking write open — the owner is gone) and whose
// mtime is old. Best effort; called with m.mu held, after m.dir is set.
func (m *Module) sweepStale(base string) {
	entries, err := os.ReadDir(base)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() || len(e.Name()) < 10 || e.Name()[:10] != "nexus-shm-" {
			continue
		}
		dir := filepath.Join(base, e.Name())
		if dir == m.dir {
			continue
		}
		info, err := e.Info()
		if err != nil || time.Since(info.ModTime()) < m.staleAfter {
			continue
		}
		ctl := filepath.Join(dir, "ctl.fifo")
		fd, err := syscall.Open(ctl, syscall.O_WRONLY|syscall.O_NONBLOCK|syscall.O_CLOEXEC, 0)
		if err == nil {
			syscall.Close(fd) // a live reader: not stale
			continue
		}
		if errors.Is(err, syscall.ENXIO) || os.IsNotExist(err) {
			if os.RemoveAll(dir) == nil {
				m.swept.Add(1)
			}
		}
	}
}

// Applicable implements the locality rule: only descriptors from the same
// host whose control FIFO still exists match, so every selection policy —
// table order, cheapest-poll, observed-cost, size-aware — naturally prefers
// shared memory within a node and never considers it across nodes.
func (m *Module) Applicable(remote transport.Descriptor) bool {
	m.mu.Lock()
	host, inited := m.host, m.inited
	m.mu.Unlock()
	if !inited || remote.Method != Name {
		return false
	}
	if remote.Attr(attrHost) == "" || remote.Attr(attrHost) != host {
		return false
	}
	ctl := remote.Attr(attrCtl)
	if ctl == "" {
		return false
	}
	st, err := os.Stat(ctl)
	return err == nil && st.Mode()&os.ModeNamedPipe != 0
}

// Dial opens a communication object to a same-host peer: either by claiming
// the reverse ring of a segment that peer already attached to us (no new
// mapping, no rendezvous), or by creating a fresh segment file in the peer's
// directory and announcing it on the peer's control FIFO.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	m.mu.Lock()
	if !m.inited {
		m.mu.Unlock()
		return nil, transport.ErrNotInitialized
	}
	if m.closed {
		m.mu.Unlock()
		return nil, transport.ErrClosed
	}
	m.mu.Unlock()
	if !m.Applicable(remote) {
		return nil, transport.ErrNotApplicable
	}
	if c := m.claimReverse(remote.Context); c != nil {
		return c, nil
	}
	return m.dialFresh(remote)
}

// claimReverse returns a connection over the acceptor→dialer ring of an
// already-accepted segment from peer, when that ring is still usable and at
// least as large as our own advertised message limit.
func (m *Module) claimReverse(peer transport.ContextID) *conn {
	m.mu.Lock()
	seg := m.byPeer[peer]
	m.mu.Unlock()
	if seg == nil || seg.dead.Load() || seg.maxMsg < m.MaxMessage() {
		return nil
	}
	if seg.ring[0].closed.Load() != 0 || seg.ring[1].closed.Load() != 0 {
		return nil
	}
	seg.revRefs.Add(1)
	if seg.dead.Load() { // lost the race with the reaper
		if seg.revRefs.Add(-1) == 0 {
			seg.ring[1].closed.Store(1)
		}
		return nil
	}
	return &conn{m: m, seg: seg, prod: 1, rev: true}
}

// dialFresh creates, maps, and announces a new segment in the peer's
// directory. The peer unlinks the file when it attaches; if the
// announcement fails we unlink it ourselves.
func (m *Module) dialFresh(remote transport.Descriptor) (transport.Conn, error) {
	rdir := remote.Attr(attrDir)
	rctl := remote.Attr(attrCtl)
	if rdir == "" {
		return nil, transport.ErrNotApplicable
	}
	f, err := os.CreateTemp(rdir, "seg-*")
	if err != nil {
		return nil, fmt.Errorf("shm: create segment: %w", err)
	}
	size := segSizeFor(m.ringSize)
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("shm: size segment: %w", err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	name := f.Name()
	f.Close() // the mapping keeps the pages; the fd is no longer needed
	if err != nil {
		os.Remove(name)
		return nil, fmt.Errorf("shm: mmap segment: %w", err)
	}
	initSegment(mem, uint64(m.ringSize), uint64(m.env.Context))
	seg := &segment{
		mem:     mem,
		ring:    ringsOf(mem, uint64(m.ringSize)),
		cons:    1,
		maxMsg:  maxMessageFor(m.ringSize),
		peerCtx: remote.Context,
		peerCtl: rctl,
		doorFd:  -1,
	}
	// Announce on the peer's FIFO. ENXIO means no reader — the peer died
	// between Applicable and here.
	wfd, err := syscall.Open(rctl, syscall.O_WRONLY|syscall.O_NONBLOCK|syscall.O_CLOEXEC, 0)
	if err != nil {
		syscall.Munmap(mem)
		os.Remove(name)
		return nil, fmt.Errorf("shm: peer fifo: %w", err)
	}
	line := formatAttach(filepath.Base(name), uint64(m.env.Context), m.ctlPath)
	if err := writeFIFO(wfd, []byte(line), time.Now().Add(time.Second)); err != nil {
		syscall.Close(wfd)
		syscall.Munmap(mem)
		os.Remove(name)
		return nil, fmt.Errorf("shm: announce segment: %w", err)
	}
	seg.doorMu.Lock()
	seg.doorFd = wfd // reuse the announcement fd for doorbells
	seg.doorMu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		syscall.Close(wfd)
		syscall.Munmap(mem)
		return nil, transport.ErrClosed
	}
	m.segs = append(m.segs, seg)
	m.mu.Unlock()
	return &conn{m: m, seg: seg, prod: 0}, nil
}

// writeFIFO writes b (shorter than PIPE_BUF, hence atomically) to a
// non-blocking FIFO, retrying EAGAIN until deadline.
func writeFIFO(fd int, b []byte, deadline time.Time) error {
	for len(b) > 0 {
		n, err := syscall.Write(fd, b)
		switch {
		case err == nil:
			b = b[n:]
		case errors.Is(err, syscall.EINTR):
		case errors.Is(err, syscall.EAGAIN):
			if time.Now().After(deadline) {
				return fmt.Errorf("shm: fifo full: %w", err)
			}
			time.Sleep(time.Millisecond)
		default:
			return err
		}
	}
	return nil
}

// AttachReactor implements transport.Reactive: the control FIFO's read end
// is the module's readiness fd. A parked consumer arms the in-ring doorbell
// flags; a producer that observes one writes a byte here, the kernel
// reports the fd readable, and the reactor wakes the context.
func (m *Module) AttachReactor(r transport.Readiness) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.inited {
		return transport.ErrNotInitialized
	}
	if m.closed {
		return transport.ErrClosed
	}
	if err := r.Add(m.rfd); err != nil {
		return err
	}
	m.rd = r
	return nil
}

// DetachReactor implements transport.Reactive.
func (m *Module) DetachReactor() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rd != nil {
		m.rd.Remove(m.rfd)
		m.rd = nil
	}
}

// Poll drains the control FIFO (attach announcements, doorbell bytes) and
// every segment's inbound ring, delivering frames zero-copy out of shared
// memory. After spin consecutive empty passes it arms the doorbells and
// re-drains once more — the sequentially consistent arm/publish handshake
// that makes parking lossless.
func (m *Module) Poll() (int, error) {
	m.mu.Lock()
	if !m.inited {
		m.mu.Unlock()
		return 0, transport.ErrNotInitialized
	}
	if m.closed {
		m.mu.Unlock()
		return 0, transport.ErrClosed
	}
	progress := m.drainFIFOLocked()
	segs := make([]*segment, len(m.segs))
	copy(segs, m.segs)
	sink := m.env.Sink
	attached := m.rd != nil
	m.mu.Unlock()

	bound := maxPollFrames
	if attached {
		bound = 0 // edge-triggered: drain to empty
	}
	for _, seg := range segs {
		progress += m.pollSeg(seg, sink, bound)
	}
	if attached {
		// The edge contract: consumed edges are never re-announced, so this
		// pass must not return while a producer could publish without
		// generating one. Arm every ring, then re-drain; a frame that raced
		// the arming is either picked up here or its producer observed the
		// armed flag and rang the doorbell (sequential consistency
		// guarantees one of the two). Repeat until a post-arm drain comes
		// up empty — from then on any publish produces an edge.
		for {
			for _, seg := range segs {
				seg.arm()
			}
			n := 0
			for _, seg := range segs {
				n += m.pollSeg(seg, sink, bound)
			}
			if n == 0 {
				break
			}
			progress += n
		}
	} else if progress > 0 {
		m.mu.Lock()
		m.empties = 0
		m.mu.Unlock()
	} else {
		m.mu.Lock()
		m.empties++
		arm := m.empties == m.spin
		m.mu.Unlock()
		if arm {
			// Fallback parking: after spin consecutive empty passes, arm
			// the doorbells so producers wake us through the FIFO, and
			// close the arm/publish race with one more drain.
			for _, seg := range segs {
				seg.arm()
			}
			for _, seg := range segs {
				progress += m.pollSeg(seg, sink, bound)
			}
		}
	}
	reap := false
	for _, seg := range segs {
		if seg.dead.Load() {
			reap = true
			break
		}
	}
	if reap {
		m.reap()
	}
	m.framesIn.Add(uint64(progress))
	return progress, nil
}

// drainFIFOLocked empties the control FIFO and attaches any announced
// segments. Doorbell bytes ('\n') and malformed lines are discarded.
// Called with m.mu held; returns the number of attaches (poll progress).
func (m *Module) drainFIFOLocked() int {
	for {
		n, err := syscall.Read(m.rfd, m.rbuf)
		if n > 0 {
			m.carry = append(m.carry, m.rbuf[:n]...)
		}
		if errors.Is(err, syscall.EINTR) {
			continue
		}
		if err != nil || n == 0 {
			break
		}
	}
	if len(m.carry) > carryLimit {
		m.carry = m.carry[:0] // a writer streaming garbage without newlines
	}
	attached := 0
	for {
		i := bytes.IndexByte(m.carry, '\n')
		if i < 0 {
			break
		}
		line := string(m.carry[:i])
		m.carry = append(m.carry[:0], m.carry[i+1:]...)
		msg, ok := parseAttach(line)
		if !ok {
			continue
		}
		if m.attachLocked(msg) {
			attached++
		}
	}
	return attached
}

// attachLocked maps an announced segment file, validates it, and unlinks it
// immediately — from here on the pages live exactly as long as the mappings.
func (m *Module) attachLocked(msg attachMsg) bool {
	path := filepath.Join(m.dir, msg.file)
	fd, err := syscall.Open(path, syscall.O_RDWR|syscall.O_NOFOLLOW|syscall.O_CLOEXEC, 0)
	if err != nil {
		m.rejects.Add(1)
		return false
	}
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil ||
		st.Mode&syscall.S_IFMT != syscall.S_IFREG ||
		st.Size < hdrSize || st.Size > hdrSize+2*maxRingSize {
		syscall.Close(fd)
		os.Remove(path)
		m.rejects.Add(1)
		return false
	}
	mem, err := syscall.Mmap(fd, 0, int(st.Size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	syscall.Close(fd)
	os.Remove(path)
	if err != nil {
		m.rejects.Add(1)
		return false
	}
	rs, err := validateSegment(mem)
	if err != nil {
		syscall.Munmap(mem)
		m.rejects.Add(1)
		return false
	}
	seg := &segment{
		mem:     mem,
		ring:    ringsOf(mem, rs),
		cons:    0,
		maxMsg:  maxMessageFor(int(rs)),
		peerCtx: transport.ContextID(msg.ctx),
		peerCtl: msg.ctl,
		doorFd:  -1,
	}
	m.segs = append(m.segs, seg)
	m.byPeer[seg.peerCtx] = seg
	m.attaches.Add(1)
	return true
}

// pollSeg drains one segment's inbound ring, disarms its doorbell when
// traffic flows, poisons it on corruption, and schedules it for reaping
// when the peer is gone and the ring is drained.
func (m *Module) pollSeg(seg *segment, sink transport.Sink, bound int) int {
	seg.mu.RLock()
	if seg.mem == nil {
		seg.mu.RUnlock()
		return 0
	}
	r := &seg.ring[seg.cons]
	n, err := r.drain(sink, seg.maxMsg, bound)
	if n > 0 && r.armed.Load() == 1 {
		r.armed.Store(0)
	}
	finished := r.closed.Load() != 0 && r.empty()
	seg.mu.RUnlock()
	if err != nil {
		m.corrupt.Add(1)
		seg.poison()
		return n
	}
	if finished && seg.cons == 0 && seg.revRefs.Load() == 0 {
		seg.dead.Store(true)
	}
	return n
}

// arm sets the doorbell flag on the ring this side consumes.
func (s *segment) arm() {
	s.mu.RLock()
	if s.mem != nil {
		s.ring[s.cons].armed.Store(1)
	}
	s.mu.RUnlock()
}

// poison marks a segment whose shared contents violated the ring
// invariants: both directions close, the mapping is reaped. Only this link
// dies; the module and its other segments are untouched.
func (s *segment) poison() {
	s.mu.RLock()
	if s.mem != nil {
		s.ring[0].closed.Store(1)
		s.ring[1].closed.Store(1)
	}
	s.mu.RUnlock()
	s.dead.Store(true)
}

// reap unmaps dead segments and drops them from the poll set.
func (m *Module) reap() {
	m.mu.Lock()
	kept := m.segs[:0]
	var dead []*segment
	for _, seg := range m.segs {
		if seg.dead.Load() {
			dead = append(dead, seg)
			if m.byPeer[seg.peerCtx] == seg {
				delete(m.byPeer, seg.peerCtx)
			}
		} else {
			kept = append(kept, seg)
		}
	}
	m.segs = kept
	m.mu.Unlock()
	for _, seg := range dead {
		seg.unmap()
	}
}

func (s *segment) unmap() {
	s.mu.Lock()
	if s.mem != nil {
		syscall.Munmap(s.mem)
		s.mem = nil
	}
	s.mu.Unlock()
	s.doorMu.Lock()
	if s.doorFd >= 0 {
		syscall.Close(s.doorFd)
	}
	s.doorFd = -2
	s.doorMu.Unlock()
}

// doorbell wakes the consumer of ring i if it armed the flag: one byte on
// its control FIFO makes the fd the reactor watches readable. The CAS means
// exactly one producer pays the syscall per park; EAGAIN (pipe full) is
// ignored — a full pipe is already readable.
func (s *segment) doorbell(i int) {
	r := &s.ring[i]
	if r.armed.Load() != 1 || !r.armed.CompareAndSwap(1, 0) {
		return
	}
	s.doorMu.Lock()
	fd := s.doorFd
	if fd == -1 {
		f, err := syscall.Open(s.peerCtl, syscall.O_WRONLY|syscall.O_NONBLOCK|syscall.O_CLOEXEC, 0)
		if err != nil {
			s.doorFd = -2
			s.doorMu.Unlock()
			return
		}
		s.doorFd = f
		fd = f
	}
	if fd >= 0 {
		_, _ = syscall.Write(fd, []byte{'\n'})
	}
	s.doorMu.Unlock()
}

// push publishes one frame on ring i, waiting (bounded) for space. The
// caller holds prodMu[i]. ring reserves the doorbell to the caller so a
// batch rings once.
func (s *segment) push(i int, frame []byte, timeout time.Duration, ring bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.mem == nil {
		return transport.ErrClosed
	}
	r := &s.ring[i]
	var deadline time.Time
	spins := 0
	for {
		if r.closed.Load() != 0 {
			return transport.ErrClosed
		}
		ok, err := r.tryPush(frame)
		if err != nil {
			s.dead.Store(true)
			return err
		}
		if ok {
			break
		}
		// Ring full: the consumer is behind. Spin briefly, then sleep, then
		// give up — a peer that stopped draining must not wedge the sender.
		spins++
		switch {
		case spins < 256:
			runtime.Gosched()
		default:
			if deadline.IsZero() {
				deadline = time.Now().Add(timeout)
			} else if time.Now().After(deadline) {
				return fmt.Errorf("shm: ring full for %v to ctx %d: peer not draining", timeout, s.peerCtx)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	if ring {
		s.doorbell(i)
	}
	return nil
}

// conn is a communication object over one direction of a segment.
type conn struct {
	m      *Module
	seg    *segment
	prod   int // ring index this conn produces
	rev    bool
	closed atomic.Bool
}

// Send implements transport.Conn: one memcpy into the shared ring, one
// doorbell at most.
func (c *conn) Send(frame []byte) error {
	if len(frame) > c.seg.maxMsg {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(frame))
	}
	if c.closed.Load() {
		return transport.ErrClosed
	}
	c.seg.prodMu[c.prod].Lock()
	defer c.seg.prodMu[c.prod].Unlock()
	return c.seg.push(c.prod, frame, c.m.sendTO, true)
}

// SendBatch implements transport.BatchSender: the whole train goes in under
// one producer lock with a single doorbell at the end.
func (c *conn) SendBatch(frames [][]byte) (int, error) {
	for i, f := range frames {
		if len(f) > c.seg.maxMsg {
			return i, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(f))
		}
	}
	if c.closed.Load() {
		return 0, transport.ErrClosed
	}
	c.seg.prodMu[c.prod].Lock()
	defer c.seg.prodMu[c.prod].Unlock()
	for i, f := range frames {
		if err := c.seg.push(c.prod, f, c.m.sendTO, false); err != nil {
			if i > 0 {
				c.seg.doorbell(c.prod)
			}
			return i, err
		}
	}
	if len(frames) > 0 {
		c.seg.doorbell(c.prod)
	}
	return len(frames), nil
}

func (c *conn) Method() string { return Name }

// Close shuts this conn's direction down. A dialer closing its fresh
// segment closes both directions (it is ring 0's producer and ring 1's
// consumer) and wakes the peer so it can drain and reap; the last reverse
// conn on an accepted segment closes only the reverse direction.
func (c *conn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	seg := c.seg
	if c.rev {
		if seg.revRefs.Add(-1) == 0 {
			seg.mu.RLock()
			if seg.mem != nil {
				seg.ring[1].closed.Store(1)
				if seg.ring[0].closed.Load() != 0 && seg.ring[0].empty() {
					seg.dead.Store(true)
				}
			}
			seg.mu.RUnlock()
			seg.doorbell(1)
		}
		return nil
	}
	seg.mu.RLock()
	if seg.mem != nil {
		seg.ring[0].closed.Store(1)
		seg.ring[1].closed.Store(1)
	}
	seg.mu.RUnlock()
	seg.doorbell(0)
	seg.dead.Store(true)
	c.m.reap()
	return nil
}

// TransportStats implements transport.StatsReporter.
func (m *Module) TransportStats() map[string]uint64 {
	m.mu.Lock()
	segs := uint64(len(m.segs))
	m.mu.Unlock()
	return map[string]uint64{
		"shm.segments":        segs,
		"shm.attaches":        m.attaches.Load(),
		"shm.frames.in":       m.framesIn.Load(),
		"shm.attach.rejected": m.rejects.Load(),
		"shm.ring.corrupt":    m.corrupt.Load(),
		"shm.stale.swept":     m.swept.Load(),
	}
}

// Close shuts the module down: every segment closes both directions, peers
// are woken to reap their side, mappings are released, and the segment
// directory — FIFO included — is removed.
func (m *Module) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	if m.rd != nil {
		m.rd.Remove(m.rfd) // before close: the OS reuses fd numbers
		m.rd = nil
	}
	segs := m.segs
	m.segs = nil
	m.byPeer = nil
	rfd, wfd, dir := m.rfd, m.wfd, m.dir
	m.rfd, m.wfd = -1, -1
	m.mu.Unlock()

	for _, seg := range segs {
		seg.mu.RLock()
		if seg.mem != nil {
			seg.ring[0].closed.Store(1)
			seg.ring[1].closed.Store(1)
		}
		seg.mu.RUnlock()
		seg.doorbell(1 - seg.cons) // wake the peer's consumer side
		seg.dead.Store(true)
		seg.unmap()
	}
	if rfd >= 0 {
		syscall.Close(rfd)
	}
	if wfd >= 0 {
		syscall.Close(wfd)
	}
	if dir != "" {
		os.RemoveAll(dir)
	}
	return nil
}
