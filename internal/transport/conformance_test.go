// Cross-transport conformance suite: every communication module — in-process,
// local, stream, datagram, reliable-datagram, encrypted, and simulated — is
// driven through the same behavioural checklist, so "implements
// transport.Module" means the same thing everywhere: frames round-trip intact
// up to the advertised size limit, oversized frames are refused with an error
// matching transport.ErrTooLarge without poisoning the connection, concurrent
// Send and Close do not race, and a closed connection can be replaced by
// redialing the same descriptor. The suite runs under -race in CI.
package transport_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"nexus/internal/simnet"
	"nexus/internal/transport"
	"nexus/internal/transport/inproc"
	"nexus/internal/transport/local"
	"nexus/internal/transport/rudp"
	"nexus/internal/transport/secure"
	"nexus/internal/transport/shm"
	"nexus/internal/transport/tcp"
	"nexus/internal/transport/udp"
)

// collector is a Sink that copies delivered frames (Deliver borrows them).
type collector struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collector) Deliver(f []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), f...))
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// has reports whether some delivered frame equals want.
func (c *collector) has(want []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.frames {
		if bytes.Equal(f, want) {
			return true
		}
	}
	return false
}

func (c *collector) reset() {
	c.mu.Lock()
	c.frames = nil
	c.mu.Unlock()
}

// pair is one transport's conformance fixture: a sending module, the
// descriptor it dials to reach the receiving side, and the receiver's sink.
type pair struct {
	send transport.Module
	desc transport.Descriptor
	sink *collector
	// poll lists the modules the background poller drives (delivery, ACKs).
	poll []transport.Module
	// reliable means every accepted Send is eventually delivered, exactly
	// once and in order. Datagram transports without a reliability layer
	// clear it, and the suite retries their sends.
	reliable bool
}

// startPoller drives the pair's modules from one background goroutine for the
// duration of the test, so blocking-window transports (rudp) never wedge a
// sender waiting for ACKs only a Poll can produce.
func (p *pair) startPoller(t *testing.T) {
	t.Helper()
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			default:
			}
			idle := true
			for _, m := range p.poll {
				if n, err := m.Poll(); err == nil && n > 0 {
					idle = false
				}
			}
			if idle {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	t.Cleanup(func() { close(done); <-exited })
}

func initFixture(t *testing.T, m transport.Module, env transport.Env) transport.Descriptor {
	t.Helper()
	d, err := m.Init(env)
	if err != nil {
		t.Fatalf("%s Init: %v", m.Name(), err)
	}
	t.Cleanup(func() { m.Close() })
	if d == nil {
		t.Fatalf("%s Init returned nil descriptor", m.Name())
	}
	return *d
}

const secureTestKey = "000102030405060708090a0b0c0d0e0f" // 16-byte AES key, both ends

// fixtures builds one conformance pair per transport. Each call builds
// fresh modules on isolated media (unique inproc exchange, fresh simnet
// fabric, OS-assigned ports), so tests cannot observe each other.
var fixtures = []struct {
	name string
	make func(t *testing.T) *pair
}{
	{"inproc", func(t *testing.T) *pair {
		ex := inproc.NewExchange("conformance-" + t.Name())
		sink := &collector{}
		recv := inproc.New(ex, nil)
		desc := initFixture(t, recv, transport.Env{Context: 1, Process: "p", Sink: sink})
		send := inproc.New(ex, nil)
		initFixture(t, send, transport.Env{Context: 2, Process: "p", Sink: &collector{}})
		return &pair{send: send, desc: desc, sink: sink, poll: []transport.Module{recv}, reliable: true}
	}},
	{"local", func(t *testing.T) *pair {
		sink := &collector{}
		m := local.New()
		desc := initFixture(t, m, transport.Env{Context: 1, Sink: sink})
		return &pair{send: m, desc: desc, sink: sink, reliable: true}
	}},
	{"tcp", func(t *testing.T) *pair {
		sink := &collector{}
		recv := tcp.New(nil)
		desc := initFixture(t, recv, transport.Env{Context: 1, Sink: sink})
		send := tcp.New(nil)
		initFixture(t, send, transport.Env{Context: 2, Sink: &collector{}})
		return &pair{send: send, desc: desc, sink: sink, poll: []transport.Module{recv}, reliable: true}
	}},
	{"udp", func(t *testing.T) *pair {
		sink := &collector{}
		recv := udp.New(nil)
		desc := initFixture(t, recv, transport.Env{Context: 1, Sink: sink})
		send := udp.New(nil)
		initFixture(t, send, transport.Env{Context: 2, Sink: &collector{}})
		return &pair{send: send, desc: desc, sink: sink, poll: []transport.Module{recv}, reliable: false}
	}},
	{"rudp", func(t *testing.T) *pair {
		sink := &collector{}
		recv := rudp.New(nil)
		desc := initFixture(t, recv, transport.Env{Context: 1, Sink: sink})
		send := rudp.New(nil)
		initFixture(t, send, transport.Env{Context: 2, Sink: &collector{}})
		return &pair{send: send, desc: desc, sink: sink, poll: []transport.Module{recv, send}, reliable: true}
	}},
	{"secure", func(t *testing.T) *pair {
		params := transport.Params{"key": secureTestKey, "inner": "tcp"}
		sink := &collector{}
		recv, err := secure.New(transport.Default, params)
		if err != nil {
			t.Fatal(err)
		}
		desc := initFixture(t, recv, transport.Env{Context: 1, Sink: sink})
		send, err := secure.New(transport.Default, params)
		if err != nil {
			t.Fatal(err)
		}
		initFixture(t, send, transport.Env{Context: 2, Sink: &collector{}})
		return &pair{send: send, desc: desc, sink: sink, poll: []transport.Module{recv}, reliable: true}
	}},
	{"shm", func(t *testing.T) *pair {
		if !shm.Supported() {
			t.Skip("shm transport requires linux mmap/FIFO support")
		}
		sink := &collector{}
		recv := shm.New(transport.Params{"dir": t.TempDir()})
		desc := initFixture(t, recv, transport.Env{Context: 1, Sink: sink})
		send := shm.New(transport.Params{"dir": t.TempDir()})
		initFixture(t, send, transport.Env{Context: 2, Sink: &collector{}})
		// Both modules poll: the receiver drains accepted segments, the
		// sender drains the reverse rings of segments it dialed.
		return &pair{send: send, desc: desc, sink: sink, poll: []transport.Module{recv, send}, reliable: true}
	}},
	{"simnet", func(t *testing.T) *pair {
		fab := simnet.NewFabric("conformance-" + t.Name())
		cfg := simnet.Config{Method: "sim", Scope: simnet.ScopeGlobal, MaxMessage: 32 << 10}
		sink := &collector{}
		recv := simnet.New(fab, cfg)
		desc := initFixture(t, recv, transport.Env{Context: 1, Sink: sink})
		send := simnet.New(fab, cfg)
		initFixture(t, send, transport.Env{Context: 2, Sink: &collector{}})
		return &pair{send: send, desc: desc, sink: sink, poll: []transport.Module{recv}, reliable: true}
	}},
}

// limit reports the pair's frame-size limit (0 = unlimited) via the
// SizeLimiter capability, exactly as the core discovers it.
func (p *pair) limit() int {
	if sl, ok := p.send.(transport.SizeLimiter); ok {
		return sl.MaxMessage()
	}
	return 0
}

// deliver sends frame and waits until the sink holds it, retrying the send on
// unreliable transports.
func (p *pair) deliver(t *testing.T, c transport.Conn, frame []byte) {
	t.Helper()
	if err := c.Send(frame); err != nil {
		t.Fatalf("Send(%d bytes): %v", len(frame), err)
	}
	deadline := time.Now().Add(15 * time.Second)
	resend := time.Now().Add(250 * time.Millisecond)
	for !p.sink.has(frame) {
		if time.Now().After(deadline) {
			t.Fatalf("frame of %d bytes not delivered within deadline", len(frame))
		}
		if !p.reliable && time.Now().After(resend) {
			if err := c.Send(frame); err != nil {
				t.Fatalf("re-Send(%d bytes): %v", len(frame), err)
			}
			resend = time.Now().Add(250 * time.Millisecond)
		}
		time.Sleep(time.Millisecond)
	}
}

// pattern builds a deterministic payload of the given size whose first bytes
// identify it, so distinct test frames never compare equal.
func pattern(tag byte, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i) ^ tag
	}
	if size > 0 {
		b[0] = tag
	}
	return b
}

func TestConformanceRoundTrip(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			p.startPoller(t)
			c, err := p.send.Dial(p.desc)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i, size := range []int{1, 100, 4 << 10, 24 << 10} {
				p.deliver(t, c, pattern(byte(i+1), size))
			}
			if p.reliable {
				// Reliable transports also guarantee order: the frames must
				// have arrived exactly as sent.
				p.sink.mu.Lock()
				defer p.sink.mu.Unlock()
				if len(p.sink.frames) != 4 {
					t.Fatalf("delivered %d frames, want 4", len(p.sink.frames))
				}
				for i, size := range []int{1, 100, 4 << 10, 24 << 10} {
					if !bytes.Equal(p.sink.frames[i], pattern(byte(i+1), size)) {
						t.Errorf("frame %d out of order or corrupted", i)
					}
				}
			}
		})
	}
}

// TestConformanceMaxSize sends the largest frame the method accepts (capped
// at 1 MiB for effectively unlimited methods) and requires intact delivery.
func TestConformanceMaxSize(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			p.startPoller(t)
			c, err := p.send.Dial(p.desc)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			size := 1 << 20
			if l := p.limit(); l > 0 && l < size {
				size = l
			}
			p.deliver(t, c, pattern(0x5A, size))
		})
	}
}

// TestConformanceOversizeRejected checks the shared size-limit contract on
// every size-limited method: one byte over the limit is refused with an error
// matching transport.ErrTooLarge, and the refusal is a caller error, not a
// connection failure — the very next in-range frame still goes through.
func TestConformanceOversizeRejected(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			l := p.limit()
			if l <= 0 {
				t.Skipf("%s advertises no frame-size limit", fx.name)
			}
			p.startPoller(t)
			c, err := p.send.Dial(p.desc)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Send(make([]byte, l+1)); !errors.Is(err, transport.ErrTooLarge) {
				t.Fatalf("Send(limit+1) err = %v, want errors.Is(..., transport.ErrTooLarge)", err)
			}
			p.deliver(t, c, pattern(0x3C, 64))
		})
	}
}

// TestConformanceConcurrentSendClose races senders against Close on the same
// connection. Any error outcome is acceptable; data races and panics (caught
// by -race and the runtime) are not.
func TestConformanceConcurrentSendClose(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			p.startPoller(t)
			c, err := p.send.Dial(p.desc)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(tag byte) {
					defer wg.Done()
					frame := pattern(tag, 512)
					for i := 0; i < 50; i++ {
						if err := c.Send(frame); err != nil {
							return // closed under us: expected
						}
					}
				}(byte(g))
			}
			time.Sleep(time.Millisecond)
			if err := c.Close(); err != nil {
				t.Errorf("Close during sends: %v", err)
			}
			wg.Wait()
		})
	}
}

// TestConformanceRedialAfterClose closes a connection and dials the same
// descriptor again: the replacement must work, which is what startpoint
// failover and connection-cache invalidation rely on.
func TestConformanceRedialAfterClose(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			p.startPoller(t)
			c1, err := p.send.Dial(p.desc)
			if err != nil {
				t.Fatal(err)
			}
			p.deliver(t, c1, pattern(0x11, 128))
			if err := c1.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			p.sink.reset()
			c2, err := p.send.Dial(p.desc)
			if err != nil {
				t.Fatalf("redial after close: %v", err)
			}
			defer c2.Close()
			p.deliver(t, c2, pattern(0x22, 128))
		})
	}
}

// TestConformanceLimitAdvertised cross-checks the two faces of a size limit:
// a descriptor that advertises a max_message attribute must belong to a
// module that enforces exactly that limit via SizeLimiter, since remote
// senders size their fragments from the descriptor alone. (Modules limited
// only by the wire-level frame cap — tcp, secure — advertise nothing.)
func TestConformanceLimitAdvertised(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			adv := p.desc.MaxMessage()
			if adv <= 0 {
				t.Skipf("%s advertises no max_message attribute", fx.name)
			}
			if l := p.limit(); l != adv {
				t.Errorf("descriptor advertises %d but SizeLimiter enforces %s",
					adv, fmt.Sprint(l))
			}
		})
	}
}
