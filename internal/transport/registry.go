package transport

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a fresh, uninitialized module instance. Each context
// gets its own instances, so factories must not share mutable state between
// the modules they create (shared fabrics, like the in-process exchange, are
// fine — they are the medium, not the module).
type Factory func(params Params) Module

// Registry maps method names to module factories. It plays the role of the
// paper's "default set of modules defined when the Nexus library is built"
// plus dynamic loading: methods can be registered at init time or at runtime
// before contexts are created.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory under the given method name, replacing any previous
// registration for that name.
func (r *Registry) Register(name string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[name] = f
}

// Unregister removes the named factory, reporting whether it was present.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.factories[name]
	delete(r.factories, name)
	return ok
}

// New instantiates a module for the named method.
func (r *Registry) New(name string, params Params) (Module, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: no module registered for method %q", name)
	}
	return f(params), nil
}

// Has reports whether a factory is registered for the named method.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.factories[name]
	return ok
}

// Names lists the registered method names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Default is the process-wide registry that standard modules register
// themselves with from their init functions.
var Default = NewRegistry()

// Register adds a factory to the default registry.
func Register(name string, f Factory) { Default.Register(name, f) }
