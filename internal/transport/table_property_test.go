package transport

import (
	"testing"
	"testing/quick"

	"nexus/internal/buffer"
)

func newEncodeBuffer() *buffer.Buffer { return buffer.New(128) }

func decodeBuffer(b *buffer.Buffer) (*buffer.Buffer, error) {
	return buffer.FromBytes(b.Encode())
}

// TestPropertyTableOperations drives random sequences of user table edits
// (Add, Remove, Promote, Reorder) and checks the invariants selection relies
// on: no entry duplication beyond what was added, Promote preserves the
// entry set, Remove removes exactly the named method, and the encoding
// round-trips after every operation.
func TestPropertyTableOperations(t *testing.T) {
	methods := []string{"mpl", "tcp", "udp", "atm", "myri"}
	f := func(ops []uint8, args []uint8) bool {
		tab := NewTable(
			Descriptor{Method: "mpl", Context: 1},
			Descriptor{Method: "tcp", Context: 1, Attrs: map[string]string{"addr": "a"}},
		)
		count := func(m string) int {
			n := 0
			for _, e := range tab.Entries {
				if e.Method == m {
					n++
				}
			}
			return n
		}
		for i, op := range ops {
			arg := "mpl"
			if i < len(args) {
				arg = methods[int(args[i])%len(methods)]
			}
			before := tab.Len()
			beforeCount := count(arg)
			switch op % 4 {
			case 0:
				tab.Add(Descriptor{Method: arg, Context: 1})
				if tab.Len() != before+1 || count(arg) != beforeCount+1 {
					return false
				}
			case 1:
				removed := tab.Remove(arg)
				if removed != (beforeCount > 0) {
					return false
				}
				if count(arg) != 0 || tab.Len() != before-beforeCount {
					return false
				}
			case 2:
				promoted := tab.Promote(arg)
				if promoted != (beforeCount > 0) {
					return false
				}
				if tab.Len() != before || count(arg) != beforeCount {
					return false
				}
				if promoted && tab.Entries[0].Method != arg {
					return false
				}
			case 3:
				tab.Reorder(arg)
				if tab.Len() != before || count(arg) != beforeCount {
					return false
				}
				if beforeCount > 0 && tab.Entries[0].Method != arg {
					return false
				}
			}
			// The table must stay encodable and round-trip exactly.
			b := newEncodeBuffer()
			tab.Encode(b)
			dec, err := decodeBuffer(b)
			if err != nil {
				return false
			}
			got, err := DecodeTable(dec)
			if err != nil || !tab.Equal(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
