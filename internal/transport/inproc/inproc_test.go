package inproc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"nexus/internal/transport"
)

type collect struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collect) Deliver(f []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), f...)) // Deliver borrows f
	c.mu.Unlock()
}

func (c *collect) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func pair(t *testing.T, ex *Exchange) (a, b *Module, da, db transport.Descriptor, sa, sb *collect) {
	t.Helper()
	sa, sb = &collect{}, &collect{}
	a = New(ex, nil)
	b = New(ex, nil)
	pda, err := a.Init(transport.Env{Context: 1, Process: "p", Sink: sa})
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := b.Init(transport.Env{Context: 2, Process: "p", Sink: sb})
	if err != nil {
		t.Fatal(err)
	}
	return a, b, *pda, *pdb, sa, sb
}

func TestSendPollRoundTrip(t *testing.T) {
	ex := NewExchange("t1")
	a, b, _, db, _, sb := pair(t, ex)
	defer a.Close()
	defer b.Close()

	c, err := a.Dial(db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing arrives until the receiver polls.
	if sb.count() != 0 {
		t.Fatalf("frames delivered before Poll: %d", sb.count())
	}
	n, err := b.Poll()
	if err != nil || n != 5 {
		t.Fatalf("Poll = %d, %v; want 5", n, err)
	}
	if sb.count() != 5 {
		t.Fatalf("delivered %d frames, want 5", sb.count())
	}
	if sb.frames[0][0] != 0 || sb.frames[4][0] != 4 {
		t.Error("frames out of order")
	}
	// Second poll finds nothing.
	if n, _ := b.Poll(); n != 0 {
		t.Errorf("second Poll = %d", n)
	}
}

func TestPollBatchLimit(t *testing.T) {
	ex := NewExchange("t2")
	sink := &collect{}
	recv := New(ex, transport.Params{"poll_batch": "3"})
	d, err := recv.Init(transport.Env{Context: 9, Process: "p", Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	send := New(ex, nil)
	if _, err := send.Init(transport.Env{Context: 10, Process: "p", Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	c, err := send.Dial(*d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for want, left := 3, 7; left > 0; left -= want {
		if left < want {
			want = left
		}
		if n, _ := recv.Poll(); n != want {
			t.Fatalf("Poll = %d, want %d", n, want)
		}
	}
}

func TestApplicability(t *testing.T) {
	ex := NewExchange("t3")
	a, _, _, db, _, _ := pair(t, ex)

	if !a.Applicable(db) {
		t.Error("same exchange+process not applicable")
	}
	otherProc := db.Clone()
	otherProc.Attrs["process"] = "q"
	if a.Applicable(otherProc) {
		t.Error("different process applicable")
	}
	otherEx := db.Clone()
	otherEx.Attrs["exchange"] = "elsewhere"
	if a.Applicable(otherEx) {
		t.Error("different exchange applicable")
	}
	wrongMethod := db.Clone()
	wrongMethod.Method = "tcp"
	if a.Applicable(wrongMethod) {
		t.Error("different method applicable")
	}
	if _, err := a.Dial(otherEx); !errors.Is(err, transport.ErrNotApplicable) {
		t.Errorf("Dial err = %v", err)
	}
}

func TestDoubleInitRejected(t *testing.T) {
	ex := NewExchange("t4")
	m := New(ex, nil)
	env := transport.Env{Context: 1, Process: "p", Sink: &collect{}}
	if _, err := m.Init(env); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(env); err == nil {
		t.Error("second Init succeeded")
	}
	// A second module for the same context on the same exchange must fail.
	m2 := New(ex, nil)
	if _, err := m2.Init(env); err == nil {
		t.Error("duplicate context registration succeeded")
	}
}

func TestSendToClosedContext(t *testing.T) {
	ex := NewExchange("t5")
	a, b, _, db, _, _ := pair(t, ex)
	c, err := a.Dial(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Send to closed context err = %v", err)
	}
	// Closing twice is fine.
	if err := b.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	// The context id can be reused after Close.
	b2 := New(ex, nil)
	if _, err := b2.Init(transport.Env{Context: 2, Process: "p", Sink: &collect{}}); err != nil {
		t.Errorf("re-Init after Close: %v", err)
	}
}

func TestUninitializedOps(t *testing.T) {
	m := New(NewExchange("t6"), nil)
	if _, err := m.Poll(); !errors.Is(err, transport.ErrNotInitialized) {
		t.Errorf("Poll err = %v", err)
	}
	if _, err := m.Dial(transport.Descriptor{Method: Name}); !errors.Is(err, transport.ErrNotInitialized) {
		t.Errorf("Dial err = %v", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	ex := NewExchange("t7")
	a, b, _, db, _, sb := pair(t, ex)
	_ = a
	const senders, per = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Each sender gets its own module/context like a real machine.
			m := New(ex, nil)
			if _, err := m.Init(transport.Env{Context: transport.ContextID(100 + id), Process: "p", Sink: &collect{}}); err != nil {
				t.Error(err)
				return
			}
			defer m.Close()
			c, err := m.Dial(db)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if err := c.Send([]byte{byte(id)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	total := 0
	for {
		n, err := b.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total != senders*per {
		t.Errorf("received %d frames, want %d", total, senders*per)
	}
	if sb.count() != senders*per {
		t.Errorf("sink saw %d frames, want %d", sb.count(), senders*per)
	}
}

func TestPollCostHint(t *testing.T) {
	m := New(NewExchange("t8"), transport.Params{"poll_cost": "50us"})
	var _ transport.CostHinter = m
	if got := m.PollCostHint(); got != 50*time.Microsecond {
		t.Errorf("PollCostHint = %v", got)
	}
}

func TestPollCostSlowsPoll(t *testing.T) {
	ex := NewExchange("t9")
	m := New(ex, transport.Params{"poll_cost": "200us"})
	if _, err := m.Init(transport.Env{Context: 1, Process: "p", Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const polls = 20
	for i := 0; i < polls; i++ {
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < polls*150*time.Microsecond {
		t.Errorf("%d polls with 200us cost took only %v", polls, el)
	}
}

func TestGetOrCreateExchange(t *testing.T) {
	name := fmt.Sprintf("unique-%d", time.Now().UnixNano())
	a := GetOrCreateExchange(name)
	b := GetOrCreateExchange(name)
	if a != b {
		t.Error("GetOrCreateExchange returned different exchanges for one name")
	}
	if a.Name() != name {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestRegisteredInDefaultRegistry(t *testing.T) {
	if !transport.Default.Has(Name) {
		t.Fatal("inproc module not registered")
	}
}

func BenchmarkSendPoll(b *testing.B) {
	ex := NewExchange("bench")
	sink := &collect{}
	recv := New(ex, transport.Params{"poll_batch": "1024"})
	d, err := recv.Init(transport.Env{Context: 1, Process: "p", Sink: sink})
	if err != nil {
		b.Fatal(err)
	}
	send := New(ex, nil)
	if _, err := send.Init(transport.Env{Context: 2, Process: "p", Sink: &collect{}}); err != nil {
		b.Fatal(err)
	}
	c, err := send.Dial(*d)
	if err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Send(frame); err != nil {
			b.Fatal(err)
		}
		if _, err := recv.Poll(); err != nil {
			b.Fatal(err)
		}
		sink.frames = sink.frames[:0]
	}
}
