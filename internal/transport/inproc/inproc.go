// Package inproc implements a shared-memory communication module for
// contexts that live in the same operating-system process.
//
// It is the analogue of the original Nexus shared-memory module: contexts in
// one process exchange frames through an Exchange — a registry of per-context
// mailboxes — with a single enqueue as the only transfer cost. Polling an
// inproc module is cheap (a mutex acquire and a queue check), which makes it
// the "inexpensive, frequently used" method in multimethod polling
// experiments, playing the role MPL plays in the paper.
package inproc

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"nexus/internal/bufpool"
	"nexus/internal/transport"
)

// Name is the method name used in descriptors and resource strings.
const Name = "inproc"

func init() {
	transport.Register(Name, func(p transport.Params) transport.Module {
		return New(GetOrCreateExchange(p.Str("exchange", "default")), p)
	})
}

// Exchange is an in-process message fabric: the set of mailboxes for the
// contexts of one virtual machine. Distinct exchanges are invisible to each
// other, which lets tests build isolated machines.
type Exchange struct {
	name  string
	mu    sync.RWMutex
	boxes map[transport.ContextID]*mailbox
}

// NewExchange returns an isolated exchange with the given name.
func NewExchange(name string) *Exchange {
	return &Exchange{name: name, boxes: make(map[transport.ContextID]*mailbox)}
}

// Name reports the exchange's name.
func (e *Exchange) Name() string { return e.name }

var (
	exchangesMu sync.Mutex
	exchanges   = make(map[string]*Exchange)
)

// GetOrCreateExchange returns the process-wide exchange with the given name,
// creating it on first use. The default registry factory resolves the
// "exchange" parameter through this table.
func GetOrCreateExchange(name string) *Exchange {
	exchangesMu.Lock()
	defer exchangesMu.Unlock()
	e, ok := exchanges[name]
	if !ok {
		e = NewExchange(name)
		exchanges[name] = e
	}
	return e
}

type mailbox struct {
	mu    sync.Mutex
	queue [][]byte
	head  int
}

func (mb *mailbox) push(frame []byte) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, frame)
	mb.mu.Unlock()
}

// pop moves up to max frames into dst (reusing its capacity) and returns the
// filled slice. An empty result means the mailbox was empty.
func (mb *mailbox) pop(dst [][]byte, max int) [][]byte {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := len(mb.queue) - mb.head
	if n == 0 {
		return dst[:0]
	}
	if n > max {
		n = max
	}
	dst = append(dst[:0], mb.queue[mb.head:mb.head+n]...)
	for i := mb.head; i < mb.head+n; i++ {
		mb.queue[i] = nil // don't pin frame storage from the queue
	}
	mb.head += n
	if mb.head == len(mb.queue) {
		mb.queue = mb.queue[:0]
		mb.head = 0
	}
	return dst
}

func (e *Exchange) register(ctx transport.ContextID) (*mailbox, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.boxes[ctx]; dup {
		return nil, fmt.Errorf("inproc: context %d already registered on exchange %q", ctx, e.name)
	}
	mb := &mailbox{}
	e.boxes[ctx] = mb
	return mb, nil
}

func (e *Exchange) unregister(ctx transport.ContextID) {
	e.mu.Lock()
	delete(e.boxes, ctx)
	e.mu.Unlock()
}

func (e *Exchange) lookup(ctx transport.ContextID) (*mailbox, bool) {
	e.mu.RLock()
	mb, ok := e.boxes[ctx]
	e.mu.RUnlock()
	return mb, ok
}

// Module is a shared-memory communication method bound to one exchange.
type Module struct {
	exchange  *Exchange
	env       transport.Env
	box       *mailbox
	pollBatch int
	pollCost  time.Duration
	scratch   [][]byte // pop destination, reused across Polls (Poll is not self-concurrent)
	mu        sync.Mutex
	closed    bool
	inited    bool
}

// New returns an uninitialized module on the given exchange. Recognized
// parameters:
//
//	poll_batch — max frames delivered per Poll (default 32)
//	poll_cost  — artificial per-poll busy-wait, for polling experiments
func New(e *Exchange, p transport.Params) *Module {
	return &Module{
		exchange:  e,
		pollBatch: p.Int("poll_batch", 32),
		pollCost:  p.Duration("poll_cost", 0),
	}
}

// Name implements transport.Module.
func (m *Module) Name() string { return Name }

// Init registers this context's mailbox on the exchange. The descriptor
// carries the exchange and process identities used by Applicable.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inited {
		return nil, fmt.Errorf("inproc: double Init for context %d", env.Context)
	}
	box, err := m.exchange.register(env.Context)
	if err != nil {
		return nil, err
	}
	m.env = env
	m.box = box
	m.inited = true
	return &transport.Descriptor{
		Method:  Name,
		Context: env.Context,
		Attrs: map[string]string{
			"exchange": m.exchange.name,
			"process":  env.Process,
			// addr names the physical mailbox; forwarding setups may
			// rewrite it while Context keeps naming the final destination.
			"addr": strconv.FormatUint(uint64(env.Context), 10),
		},
	}, nil
}

// Applicable reports whether remote is reachable: same method, same exchange,
// same OS process.
func (m *Module) Applicable(remote transport.Descriptor) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inited &&
		remote.Method == Name &&
		remote.Attr("exchange") == m.exchange.name &&
		remote.Attr("process") == m.env.Process
}

// Dial opens a connection that enqueues frames on the remote mailbox.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	m.mu.Lock()
	inited, closed := m.inited, m.closed
	m.mu.Unlock()
	if !inited {
		return nil, transport.ErrNotInitialized
	}
	if closed {
		return nil, transport.ErrClosed
	}
	if !m.Applicable(remote) {
		return nil, transport.ErrNotApplicable
	}
	dest := remote.Context
	if a := remote.Attr("addr"); a != "" {
		n, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("inproc: bad addr %q: %w", a, err)
		}
		dest = transport.ContextID(n)
	}
	return &conn{exchange: m.exchange, dest: dest}, nil
}

// Poll drains up to poll_batch pending frames to the sink.
func (m *Module) Poll() (int, error) {
	m.mu.Lock()
	if !m.inited {
		m.mu.Unlock()
		return 0, transport.ErrNotInitialized
	}
	if m.closed {
		m.mu.Unlock()
		return 0, transport.ErrClosed
	}
	box, sink, batch, cost := m.box, m.env.Sink, m.pollBatch, m.pollCost
	m.mu.Unlock()

	if cost > 0 {
		busyWait(cost)
	}
	m.scratch = box.pop(m.scratch, batch)
	for i, f := range m.scratch {
		sink.Deliver(f)
		bufpool.Put(f) // Deliver borrows; the frame storage is ours again
		m.scratch[i] = nil
	}
	return len(m.scratch), nil
}

// PollCostHint implements transport.CostHinter when a synthetic poll cost is
// configured.
func (m *Module) PollCostHint() time.Duration { return m.pollCost }

// Close unregisters the mailbox. Pending undelivered frames are dropped.
func (m *Module) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.inited {
		m.exchange.unregister(m.env.Context)
	}
	return nil
}

// busyWait spins for approximately d. time.Sleep granularity (tens of
// microseconds or worse) is too coarse for modelling per-poll costs of a few
// microseconds, so short waits spin on the monotonic clock.
func busyWait(d time.Duration) {
	if d >= time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

type conn struct {
	exchange *Exchange
	dest     transport.ContextID
}

func (c *conn) Send(frame []byte) error {
	box, ok := c.exchange.lookup(c.dest)
	if !ok {
		return fmt.Errorf("inproc: context %d not registered on exchange %q: %w",
			c.dest, c.exchange.name, transport.ErrClosed)
	}
	// Send borrows frame, but the mailbox queues it past this call's return,
	// so copy into pooled storage; Poll recycles it after delivery.
	cp := bufpool.Get(len(frame))
	copy(cp, frame)
	box.push(cp)
	return nil
}

func (c *conn) Method() string { return Name }
func (c *conn) Close() error   { return nil }
