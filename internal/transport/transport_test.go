package transport

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/buffer"
)

func td(method string, ctx ContextID, attrs map[string]string) Descriptor {
	return Descriptor{Method: method, Context: ctx, Attrs: attrs}
}

func TestDescriptorCloneIndependent(t *testing.T) {
	d := td("tcp", 3, map[string]string{"addr": "127.0.0.1:0"})
	c := d.Clone()
	c.Attrs["addr"] = "changed"
	if d.Attrs["addr"] != "127.0.0.1:0" {
		t.Error("Clone shares attrs map")
	}
	if !d.Equal(d.Clone()) {
		t.Error("descriptor not equal to its clone")
	}
}

func TestDescriptorEqual(t *testing.T) {
	a := td("tcp", 1, map[string]string{"x": "1"})
	cases := []struct {
		b    Descriptor
		want bool
	}{
		{td("tcp", 1, map[string]string{"x": "1"}), true},
		{td("udp", 1, map[string]string{"x": "1"}), false},
		{td("tcp", 2, map[string]string{"x": "1"}), false},
		{td("tcp", 1, map[string]string{"x": "2"}), false},
		{td("tcp", 1, map[string]string{"x": "1", "y": "2"}), false},
		{td("tcp", 1, nil), false},
	}
	for i, c := range cases {
		if got := a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.want)
		}
	}
}

func TestTableFindPromoteRemove(t *testing.T) {
	tab := NewTable(
		td("mpl", 1, map[string]string{"partition": "p0"}),
		td("tcp", 1, map[string]string{"addr": "a"}),
		td("udp", 1, nil),
	)
	if got := tab.Methods(); !reflect.DeepEqual(got, []string{"mpl", "tcp", "udp"}) {
		t.Fatalf("Methods = %v", got)
	}
	if _, ok := tab.Find("tcp"); !ok {
		t.Error("Find(tcp) failed")
	}
	if _, ok := tab.Find("atm"); ok {
		t.Error("Find(atm) should fail")
	}
	if !tab.Promote("udp") {
		t.Error("Promote(udp) = false")
	}
	if got := tab.Methods(); !reflect.DeepEqual(got, []string{"udp", "mpl", "tcp"}) {
		t.Errorf("after Promote: %v", got)
	}
	if tab.Promote("nope") {
		t.Error("Promote of missing method = true")
	}
	if !tab.Remove("mpl") {
		t.Error("Remove(mpl) = false")
	}
	if got := tab.Methods(); !reflect.DeepEqual(got, []string{"udp", "tcp"}) {
		t.Errorf("after Remove: %v", got)
	}
	if tab.Remove("mpl") {
		t.Error("second Remove(mpl) = true")
	}
}

func TestTableReorder(t *testing.T) {
	tab := NewTable(td("a", 1, nil), td("b", 1, nil), td("c", 1, nil), td("d", 1, nil))
	tab.Reorder("c", "a")
	if got := tab.Methods(); !reflect.DeepEqual(got, []string{"c", "a", "b", "d"}) {
		t.Errorf("Reorder = %v, want [c a b d]", got)
	}
	tab.Reorder("zzz") // unknown name: no effect
	if got := tab.Methods(); !reflect.DeepEqual(got, []string{"c", "a", "b", "d"}) {
		t.Errorf("Reorder(zzz) changed order: %v", got)
	}
}

func TestTableEncodeDecodeRoundTrip(t *testing.T) {
	tab := NewTable(
		td("mpl", 7, map[string]string{"partition": "p1", "node": "3"}),
		td("tcp", 7, map[string]string{"addr": "127.0.0.1:9999"}),
		td("local", 7, nil),
	)
	b := buffer.New(128)
	tab.Encode(b)
	d, err := buffer.FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(d)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Equal(got) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, tab)
	}
}

func TestDecodeTableTruncated(t *testing.T) {
	tab := NewTable(td("tcp", 1, map[string]string{"addr": "x"}))
	b := buffer.New(64)
	tab.Encode(b)
	enc := b.Encode()
	for cut := 1; cut < len(enc)-1; cut++ {
		d, err := buffer.FromBytes(enc[:cut])
		if err != nil {
			continue // cut the format tag itself
		}
		if _, err := DecodeTable(d); err == nil && cut < len(enc)-1 {
			// Some prefixes decode to an empty/partial table legitimately
			// only when the count field says zero; with one entry any
			// truncation must error.
			t.Errorf("DecodeTable of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

// Property: encode→decode is the identity for arbitrary attribute maps.
func TestPropertyTableRoundTrip(t *testing.T) {
	f := func(method string, ctx uint64, attrs map[string]string) bool {
		tab := NewTable(td(method, ContextID(ctx), attrs))
		b := buffer.New(64)
		tab.Encode(b)
		d, err := buffer.FromBytes(b.Encode())
		if err != nil {
			return false
		}
		got, err := DecodeTable(d)
		if err != nil {
			return false
		}
		return tab.Equal(got)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestParams(t *testing.T) {
	p := Params{
		"n":    "42",
		"f":    "2.5",
		"b":    "true",
		"d":    "150ms",
		"s":    "hello",
		"badn": "xyz",
	}
	if got := p.Int("n", 0); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := p.Int("badn", 7); got != 7 {
		t.Errorf("Int(malformed) = %d, want default", got)
	}
	if got := p.Int("missing", 9); got != 9 {
		t.Errorf("Int(missing) = %d, want default", got)
	}
	if got := p.Float("f", 0); got != 2.5 {
		t.Errorf("Float = %v", got)
	}
	if got := p.Bool("b", false); !got {
		t.Error("Bool = false")
	}
	if got := p.Duration("d", 0); got != 150*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
	if got := p.Str("s", ""); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if _, ok := p.Get("missing"); ok {
		t.Error("Get(missing) ok = true")
	}
}

func TestParamsCloneMerge(t *testing.T) {
	p := Params{"a": "1"}
	c := p.Clone()
	c["a"] = "2"
	if p["a"] != "1" {
		t.Error("Clone shares storage")
	}
	m := p.Merge(Params{"b": "3", "a": "9"})
	if m["a"] != "9" || m["b"] != "3" || p["a"] != "1" {
		t.Errorf("Merge = %v (p = %v)", m, p)
	}
}

type fakeModule struct{ name string }

func (m *fakeModule) Name() string                  { return m.name }
func (m *fakeModule) Init(Env) (*Descriptor, error) { return nil, nil }
func (m *fakeModule) Applicable(Descriptor) bool    { return false }
func (m *fakeModule) Dial(Descriptor) (Conn, error) { return nil, ErrNotApplicable }
func (m *fakeModule) Poll() (int, error)            { return 0, nil }
func (m *fakeModule) Close() error                  { return nil }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Has("x") {
		t.Error("empty registry Has(x)")
	}
	r.Register("x", func(Params) Module { return &fakeModule{name: "x"} })
	r.Register("a", func(Params) Module { return &fakeModule{name: "a"} })
	if !r.Has("x") {
		t.Error("Has(x) = false after Register")
	}
	m, err := r.New("x", nil)
	if err != nil || m.Name() != "x" {
		t.Errorf("New(x) = %v, %v", m, err)
	}
	if _, err := r.New("missing", nil); err == nil {
		t.Error("New(missing) succeeded")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "x"}) {
		t.Errorf("Names = %v", got)
	}
	if !r.Unregister("a") {
		t.Error("Unregister(a) = false")
	}
	if r.Unregister("a") {
		t.Error("second Unregister(a) = true")
	}
}

func TestSinkFunc(t *testing.T) {
	var got []byte
	s := SinkFunc(func(f []byte) { got = f })
	s.Deliver([]byte{1, 2})
	if len(got) != 2 {
		t.Errorf("SinkFunc did not deliver: %v", got)
	}
}
