package transport

import (
	"fmt"
	"sort"
	"strings"

	"nexus/internal/buffer"
)

// Table is an ordered communication descriptor table. The order encodes
// selection preference: automatic selection scans the table in order and uses
// the first applicable method, so placing the fastest method first yields the
// paper's "fastest first" policy. Users influence selection by reordering,
// adding, or deleting entries.
type Table struct {
	Entries []Descriptor
}

// NewTable returns a table over the given descriptors, in order.
func NewTable(entries ...Descriptor) *Table {
	return &Table{Entries: entries}
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{Entries: make([]Descriptor, len(t.Entries))}
	for i, e := range t.Entries {
		c.Entries[i] = e.Clone()
	}
	return c
}

// Len reports the number of descriptors.
func (t *Table) Len() int { return len(t.Entries) }

// Find returns the first descriptor for the named method and whether one
// exists.
func (t *Table) Find(method string) (Descriptor, bool) {
	for _, e := range t.Entries {
		if e.Method == method {
			return e, true
		}
	}
	return Descriptor{}, false
}

// Add appends a descriptor to the end of the table (lowest preference).
func (t *Table) Add(d Descriptor) { t.Entries = append(t.Entries, d) }

// Remove deletes every descriptor for the named method, reporting whether any
// was removed.
func (t *Table) Remove(method string) bool {
	kept := t.Entries[:0]
	removed := false
	for _, e := range t.Entries {
		if e.Method == method {
			removed = true
			continue
		}
		kept = append(kept, e)
	}
	t.Entries = kept
	return removed
}

// Promote moves the first descriptor for the named method to the front of the
// table (highest preference), reporting whether the method was present.
func (t *Table) Promote(method string) bool {
	for i, e := range t.Entries {
		if e.Method == method {
			copy(t.Entries[1:i+1], t.Entries[:i])
			t.Entries[0] = e
			return true
		}
	}
	return false
}

// Reorder rearranges the table so that methods appear in the given order;
// methods not named keep their relative order after the named ones. Unknown
// names are ignored.
func (t *Table) Reorder(methods ...string) {
	rank := make(map[string]int, len(methods))
	for i, m := range methods {
		rank[m] = i
	}
	sort.SliceStable(t.Entries, func(i, j int) bool {
		ri, iok := rank[t.Entries[i].Method]
		rj, jok := rank[t.Entries[j].Method]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		default:
			return false
		}
	})
}

// Methods lists the method names in table order.
func (t *Table) Methods() []string {
	out := make([]string, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.Method
	}
	return out
}

func (t *Table) String() string {
	return "[" + strings.Join(t.Methods(), ",") + "]"
}

// Encode packs the table into the buffer. The encoding is the mobile
// representation that travels with a startpoint: for wide-area links the few
// tens of bytes are insignificant, and tightly coupled configurations can
// omit the table entirely (see core's lightweight startpoints).
func (t *Table) Encode(b *buffer.Buffer) {
	b.PutUint16(uint16(len(t.Entries)))
	for _, e := range t.Entries {
		b.PutString(e.Method)
		b.PutUint64(uint64(e.Context))
		b.PutUint16(uint16(len(e.Attrs)))
		// Deterministic attribute order keeps encodings comparable.
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.PutString(k)
			b.PutString(e.Attrs[k])
		}
	}
}

// Minimum encoded sizes, used to validate hostile length fields before any
// allocation sized by them: an entry is at least a 4-byte string length
// prefix + an 8-byte context + a 2-byte attribute count; an attribute is at
// least two 4-byte string length prefixes.
const (
	minEntryBytes = 4 + 8 + 2
	minAttrBytes  = 4 + 4
)

// DecodeTable unpacks a table encoded with Encode. Length fields are checked
// against the bytes actually remaining in the buffer, so a hostile or
// truncated encoding fails cleanly instead of panicking or over-allocating.
func DecodeTable(b *buffer.Buffer) (*Table, error) {
	n := int(b.Uint16())
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("transport: decoding table: %w", err)
	}
	if n*minEntryBytes > b.Remaining() {
		return nil, fmt.Errorf("transport: decoding table: %d entries cannot fit in %d bytes", n, b.Remaining())
	}
	t := &Table{Entries: make([]Descriptor, 0, n)}
	for i := 0; i < n; i++ {
		d := Descriptor{
			Method:  b.String(),
			Context: ContextID(b.Uint64()),
		}
		na := int(b.Uint16())
		if err := b.Err(); err != nil {
			return nil, fmt.Errorf("transport: decoding table entry %d: %w", i, err)
		}
		if na*minAttrBytes > b.Remaining() {
			return nil, fmt.Errorf("transport: decoding table entry %d: %d attrs cannot fit in %d bytes", i, na, b.Remaining())
		}
		if na > 0 {
			d.Attrs = make(map[string]string, na)
			for j := 0; j < na; j++ {
				k := b.String()
				v := b.String()
				d.Attrs[k] = v
			}
		}
		if err := b.Err(); err != nil {
			return nil, fmt.Errorf("transport: decoding table entry %d attrs: %w", i, err)
		}
		t.Entries = append(t.Entries, d)
	}
	return t, nil
}

// Equal reports whether two tables hold identical descriptors in the same
// order.
func (t *Table) Equal(o *Table) bool {
	if len(t.Entries) != len(o.Entries) {
		return false
	}
	for i := range t.Entries {
		if !t.Entries[i].Equal(o.Entries[i]) {
			return false
		}
	}
	return true
}
