package secure

import (
	"testing"

	"nexus/internal/transport"
)

func benchModule(b *testing.B) *Module {
	b.Helper()
	m, err := New(transport.Default, transport.Params{"key": testKey, "inner": "udp"})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkSeal measures the per-frame encryption cost the secure method
// adds on the send path.
func BenchmarkSeal(b *testing.B) {
	m := benchModule(b)
	frame := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.seal(frame)
	}
}

// BenchmarkSealOpen measures the full encrypt+authenticate+decrypt cycle.
func BenchmarkSealOpen(b *testing.B) {
	m := benchModule(b)
	frame := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sealed := m.seal(frame)
		if _, err := m.open(sealed); err != nil {
			b.Fatal(err)
		}
	}
}
