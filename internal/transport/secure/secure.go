// Package secure implements a security-enhanced communication module: an
// AES-GCM encryption layer wrapped around any other registered method.
//
// The paper's §2 lists security as a method-selection axis: "control
// information might be encrypted outside a site, but not within". Because
// the wrapper is itself an ordinary module, a context can enable both "tcp"
// and "secure" (over tcp) and associate the encrypted method with exactly
// the links that leave the site — per-link security selection with no
// application changes, and a working demonstration of composing protocol
// layers inside the module framework (the x-kernel/Horus-style composition
// discussed in §5).
package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"nexus/internal/transport"
)

// Name is the method name used in descriptors and resource strings.
const Name = "secure"

// Errors returned by the secure module.
var (
	// ErrNoKey reports a missing or malformed key parameter.
	ErrNoKey = errors.New("secure: parameter \"key\" must be 16, 24, or 32 hex-encoded bytes")
	// ErrDecrypt reports an inbound frame that failed authentication.
	ErrDecrypt = errors.New("secure: frame failed authenticated decryption")
)

func init() {
	transport.Register(Name, func(p transport.Params) transport.Module {
		m, err := New(transport.Default, p)
		if err != nil {
			return &brokenModule{err: err}
		}
		return m
	})
}

// brokenModule surfaces a construction error at Init time, since factories
// cannot fail.
type brokenModule struct{ err error }

func (b *brokenModule) Name() string                                      { return Name }
func (b *brokenModule) Init(transport.Env) (*transport.Descriptor, error) { return nil, b.err }
func (b *brokenModule) Applicable(transport.Descriptor) bool              { return false }
func (b *brokenModule) Dial(transport.Descriptor) (transport.Conn, error) {
	return nil, b.err
}
func (b *brokenModule) Poll() (int, error) { return 0, b.err }
func (b *brokenModule) Close() error       { return nil }

// Module wraps an inner communication method with authenticated encryption.
type Module struct {
	inner     transport.Module
	innerName string
	aead      cipher.AEAD
	noncePfx  [4]byte
	seq       atomic.Uint64
	dropped   atomic.Uint64
}

// New builds a secure module. Recognized parameters:
//
//	key   — hex-encoded 16/24/32-byte AES key, shared by both ends (required)
//	inner — the wrapped method (default "tcp"); its own parameters are
//	        passed through from the same parameter set
func New(reg *transport.Registry, p transport.Params) (*Module, error) {
	keyHex, ok := p.Get("key")
	if !ok {
		return nil, ErrNoKey
	}
	key, err := hex.DecodeString(keyHex)
	if err != nil || (len(key) != 16 && len(key) != 24 && len(key) != 32) {
		return nil, ErrNoKey
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	innerName := p.Str("inner", "tcp")
	inner, err := reg.New(innerName, p)
	if err != nil {
		return nil, fmt.Errorf("secure: inner method: %w", err)
	}
	m := &Module{inner: inner, innerName: innerName, aead: aead}
	if _, err := rand.Read(m.noncePfx[:]); err != nil {
		return nil, fmt.Errorf("secure: nonce: %w", err)
	}
	return m, nil
}

// Name implements transport.Module.
func (m *Module) Name() string { return Name }

// Dropped reports how many inbound frames failed authentication (enquiry).
func (m *Module) Dropped() uint64 { return m.dropped.Load() }

// Init initializes the inner method with a decrypting sink and rewrites its
// descriptor to advertise the secure method.
func (m *Module) Init(env transport.Env) (*transport.Descriptor, error) {
	outer := env.Sink
	env.Sink = transport.SinkFunc(func(frame []byte) {
		plain, err := m.open(frame)
		if err != nil {
			m.dropped.Add(1)
			return
		}
		outer.Deliver(plain)
	})
	d, err := m.inner.Init(env)
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, nil
	}
	sd := d.Clone()
	sd.Method = Name
	if sd.Attrs == nil {
		sd.Attrs = map[string]string{}
	}
	sd.Attrs["inner"] = m.innerName
	// A size-limited inner method advertises its limit; the encryption
	// envelope eats part of it, so re-advertise the effective bound.
	if sd.Attrs[transport.AttrMaxMessage] != "" {
		sd.Attrs[transport.AttrMaxMessage] = strconv.Itoa(m.MaxMessage())
	}
	return &sd, nil
}

// unwrap converts a secure descriptor back to the inner method's form.
func (m *Module) unwrap(remote transport.Descriptor) (transport.Descriptor, bool) {
	if remote.Method != Name || remote.Attr("inner") != m.innerName {
		return transport.Descriptor{}, false
	}
	d := remote.Clone()
	d.Method = m.innerName
	delete(d.Attrs, "inner")
	return d, true
}

// Applicable defers to the inner method on the unwrapped descriptor.
func (m *Module) Applicable(remote transport.Descriptor) bool {
	d, ok := m.unwrap(remote)
	return ok && m.inner.Applicable(d)
}

// Dial opens an encrypting connection over the inner method.
func (m *Module) Dial(remote transport.Descriptor) (transport.Conn, error) {
	d, ok := m.unwrap(remote)
	if !ok {
		return nil, transport.ErrNotApplicable
	}
	c, err := m.inner.Dial(d)
	if err != nil {
		return nil, err
	}
	return &conn{m: m, inner: c}, nil
}

// sealOverhead is the bytes seal adds to a frame: 12-byte nonce + GCM tag.
func (m *Module) sealOverhead() int { return 12 + m.aead.Overhead() }

// MaxMessage implements transport.SizeLimiter: whatever the inner method
// accepts, minus the encryption envelope (0 — unlimited — if the inner
// method has no limit).
func (m *Module) MaxMessage() int {
	if sl, ok := m.inner.(transport.SizeLimiter); ok {
		if n := sl.MaxMessage(); n > m.sealOverhead() {
			return n - m.sealOverhead()
		}
	}
	return 0
}

// Poll polls the inner method; decryption happens in the sink.
func (m *Module) Poll() (int, error) { return m.inner.Poll() }

// AttachReactor implements transport.Reactive by delegation: the inner
// method's sockets carry the ciphertext, so its readiness is this module's
// readiness. An inner method without pollable fds (e.g. the simulated
// fabric) reports ErrNotReactive and the module stays poll-based.
func (m *Module) AttachReactor(r transport.Readiness) error {
	if ir, ok := m.inner.(transport.Reactive); ok {
		return ir.AttachReactor(r)
	}
	return transport.ErrNotReactive
}

// DetachReactor implements transport.Reactive by delegation.
func (m *Module) DetachReactor() {
	if ir, ok := m.inner.(transport.Reactive); ok {
		ir.DetachReactor()
	}
}

// Close closes the inner method.
func (m *Module) Close() error { return m.inner.Close() }

// seal encrypts and authenticates a frame: 12-byte nonce || ciphertext.
func (m *Module) seal(plain []byte) []byte {
	var nonce [12]byte
	copy(nonce[:4], m.noncePfx[:])
	binary.BigEndian.PutUint64(nonce[4:], m.seq.Add(1))
	out := make([]byte, 12, 12+len(plain)+m.aead.Overhead())
	copy(out, nonce[:])
	return m.aead.Seal(out, nonce[:], plain, nil)
}

// open reverses seal.
func (m *Module) open(frame []byte) ([]byte, error) {
	if len(frame) < 12+m.aead.Overhead() {
		return nil, ErrDecrypt
	}
	plain, err := m.aead.Open(nil, frame[:12], frame[12:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plain, nil
}

type conn struct {
	m     *Module
	inner transport.Conn
}

func (c *conn) Send(frame []byte) error {
	// Reject before encrypting: sealing a frame the inner method will refuse
	// anyway would burn an AES pass over the whole oversized payload.
	if limit := c.m.MaxMessage(); limit > 0 && len(frame) > limit {
		return fmt.Errorf("secure: frame of %d bytes exceeds inner %s limit: %w",
			len(frame), c.m.innerName, transport.ErrTooLarge)
	}
	return c.inner.Send(c.m.seal(frame))
}
func (c *conn) Method() string          { return Name }
func (c *conn) Close() error            { return c.inner.Close() }
