package secure

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"nexus/internal/transport"
	_ "nexus/internal/transport/tcp"
	_ "nexus/internal/transport/udp"
)

const testKey = "000102030405060708090a0b0c0d0e0f" // 16 bytes, hex

type collect struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collect) Deliver(f []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), f...)) // Deliver borrows f
	c.mu.Unlock()
}

func (c *collect) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func newSecure(t *testing.T, params transport.Params) *Module {
	t.Helper()
	if params == nil {
		params = transport.Params{}
	}
	if _, ok := params["key"]; !ok {
		params["key"] = testKey
	}
	m, err := New(transport.Default, params)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEncryptedRoundTrip(t *testing.T) {
	sink := &collect{}
	recv := newSecure(t, nil)
	d, err := recv.Init(transport.Env{Context: 1, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if d.Method != Name || d.Attr("inner") != "tcp" {
		t.Fatalf("descriptor = %v", d)
	}

	send := newSecure(t, nil)
	if _, err := send.Init(transport.Env{Context: 2, Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	c, err := send.Dial(*d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := []byte("secret payload over the wide area")
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.count() == 0 && time.Now().Before(deadline) {
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if sink.count() != 1 || !bytes.Equal(sink.frames[0], want) {
		t.Fatalf("got %q", sink.frames)
	}
}

func TestCiphertextOnWire(t *testing.T) {
	// Dial the secure endpoint with a PLAIN tcp module: the bytes that
	// arrive must not contain the plaintext (and must fail authentication,
	// never reaching the application sink).
	sink := &collect{}
	recv := newSecure(t, nil)
	d, err := recv.Init(transport.Env{Context: 1, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	plainTCP, err := transport.Default.New("tcp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plainTCP.Init(transport.Env{Context: 3, Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	defer plainTCP.Close()
	inner := d.Clone()
	inner.Method = "tcp"
	delete(inner.Attrs, "inner")
	c, err := plainTCP.Dial(inner)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("injected plaintext")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for recv.Dropped() == 0 && time.Now().Before(deadline) {
		if _, err := recv.Poll(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if recv.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1 (forged frame rejected)", recv.Dropped())
	}
	if sink.count() != 0 {
		t.Errorf("forged frame reached the application: %q", sink.frames)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	sink := &collect{}
	recv := newSecure(t, nil)
	d, err := recv.Init(transport.Env{Context: 1, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	send := newSecure(t, transport.Params{"key": "ffffffffffffffffffffffffffffffff"})
	if _, err := send.Init(transport.Env{Context: 2, Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	c, err := send.Dial(*d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("mismatched")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for recv.Dropped() == 0 && time.Now().Before(deadline) {
		recv.Poll()
		time.Sleep(time.Millisecond)
	}
	if recv.Dropped() != 1 || sink.count() != 0 {
		t.Errorf("wrong-key frame: dropped=%d delivered=%d", recv.Dropped(), sink.count())
	}
}

func TestApplicability(t *testing.T) {
	m := newSecure(t, nil)
	if _, err := m.Init(transport.Env{Context: 1, Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	good := transport.Descriptor{Method: Name, Context: 2, Attrs: map[string]string{"inner": "tcp", "addr": "127.0.0.1:1"}}
	if !m.Applicable(good) {
		t.Error("valid secure descriptor not applicable")
	}
	wrongInner := good.Clone()
	wrongInner.Attrs["inner"] = "udp"
	if m.Applicable(wrongInner) {
		t.Error("descriptor with different inner method applicable")
	}
	plain := good.Clone()
	plain.Method = "tcp"
	if m.Applicable(plain) {
		t.Error("plain descriptor applicable to secure module")
	}
	if _, err := m.Dial(plain); !errors.Is(err, transport.ErrNotApplicable) {
		t.Errorf("Dial(plain) = %v", err)
	}
}

func TestBadKeyParameters(t *testing.T) {
	for _, params := range []transport.Params{
		{},                        // missing
		{"key": "xyz"},            // not hex
		{"key": "00ff"},           // wrong length
		{"key": testKey + "0011"}, // 18 bytes
	} {
		if _, err := New(transport.Default, params); !errors.Is(err, ErrNoKey) {
			t.Errorf("params %v: err = %v, want ErrNoKey", params, err)
		}
	}
	// Factory path surfaces the error at Init.
	m, err := transport.Default.New(Name, transport.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Init(transport.Env{Context: 1, Sink: &collect{}}); !errors.Is(err, ErrNoKey) {
		t.Errorf("broken module Init = %v", err)
	}
}

func TestInnerUDP(t *testing.T) {
	sink := &collect{}
	recv := newSecure(t, transport.Params{"inner": "udp"})
	d, err := recv.Init(transport.Env{Context: 1, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if d.Attr("inner") != "udp" {
		t.Fatalf("descriptor = %v", d)
	}
	send := newSecure(t, transport.Params{"inner": "udp"})
	if _, err := send.Init(transport.Env{Context: 2, Sink: &collect{}}); err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	c, err := send.Dial(*d)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("encrypted datagram")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.count() == 0 && time.Now().Before(deadline) {
		recv.Poll()
		time.Sleep(time.Millisecond)
	}
	if sink.count() != 1 || string(sink.frames[0]) != "encrypted datagram" {
		t.Fatalf("got %q", sink.frames)
	}
}

func TestRegisteredInDefaultRegistry(t *testing.T) {
	if !transport.Default.Has(Name) {
		t.Fatal("secure module not registered")
	}
}
