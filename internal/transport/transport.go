// Package transport defines the communication-module interface of the
// multimethod communication architecture.
//
// A communication method (TCP, UDP, intra-process shared memory, a simulated
// MPL fabric, ...) is implemented by a Module. Each context instantiates its
// own module instances; a module advertises how the context can be reached by
// that method with a Descriptor, and descriptors are grouped into an ordered
// Table that travels with every startpoint. The Table is the paper's
// "communication descriptor table": a concise, easily communicated
// representation of information about communication methods, whose order
// encodes selection preference ("fastest first").
//
// In the original Nexus the module interface was a C function table; in Go it
// is simply an interface, with optional capabilities (blocking detection,
// poll-cost hints) discovered by interface assertion.
package transport

import (
	"errors"
	"fmt"
	"strconv"
	"time"
)

// ContextID uniquely identifies a context (an address space / virtual
// processor) within a computation.
type ContextID uint64

// Descriptor describes how a specific context can be reached via a specific
// communication method. Attrs are method-specific: a TCP descriptor carries a
// listen address, an MPL descriptor a partition name and node number, and so
// on. Descriptors are value types and are safe to copy.
type Descriptor struct {
	// Method is the module name, e.g. "tcp".
	Method string
	// Context is the context the descriptor reaches.
	Context ContextID
	// Attrs holds method-specific reachability attributes.
	Attrs map[string]string
}

// Attr returns the named attribute, or "" if absent.
func (d Descriptor) Attr(key string) string { return d.Attrs[key] }

// AttrMaxMessage is the descriptor attribute advertising the largest frame
// the method accepts on this link, in bytes. Size-aware selection reads it to
// steer bulk sends toward methods that can carry them natively.
const AttrMaxMessage = "max_message"

// AttrRelay marks a mesh-installed relay route: the value is the decimal
// context id of the next-hop relay. Senders binding such a descriptor stamp
// the wire relay extension (hop budget + loop suppression), and forwarders
// skip route entries pointing back at the hop a frame just arrived from.
const AttrRelay = "relay"

// AttrCost advertises a rough per-message cost for the link in nanoseconds
// (latency plus detection), the static fallback cost-aware mesh routing uses
// for remote-to-remote edges it cannot observe directly.
const AttrCost = "cost_ns"

// Cost reports the descriptor's advertised cost estimate in nanoseconds
// (0 when absent or malformed).
func (d Descriptor) Cost() int64 {
	a := d.Attrs[AttrCost]
	if a == "" {
		return 0
	}
	n, err := strconv.ParseInt(a, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// MaxMessage reports the descriptor's advertised frame-size limit in bytes
// (0 when absent or malformed, meaning "no advertised limit").
func (d Descriptor) MaxMessage() int {
	a := d.Attrs[AttrMaxMessage]
	if a == "" {
		return 0
	}
	n, err := strconv.Atoi(a)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Clone returns a deep copy of the descriptor.
func (d Descriptor) Clone() Descriptor {
	c := Descriptor{Method: d.Method, Context: d.Context}
	if d.Attrs != nil {
		c.Attrs = make(map[string]string, len(d.Attrs))
		for k, v := range d.Attrs {
			c.Attrs[k] = v
		}
	}
	return c
}

// Equal reports whether two descriptors are identical.
func (d Descriptor) Equal(o Descriptor) bool {
	if d.Method != o.Method || d.Context != o.Context || len(d.Attrs) != len(o.Attrs) {
		return false
	}
	for k, v := range d.Attrs {
		if o.Attrs[k] != v {
			return false
		}
	}
	return true
}

func (d Descriptor) String() string {
	return fmt.Sprintf("%s->ctx%d%v", d.Method, d.Context, d.Attrs)
}

// Sink receives inbound frames delivered by a module. Frames are opaque to
// the transport layer; the core's wire format lives above it.
type Sink interface {
	// Deliver hands one inbound frame to the context. The implementation
	// borrows the slice for the duration of the call and must not retain it
	// afterwards: the delivering module may recycle the frame's storage
	// (bufpool) the moment Deliver returns. Deliver must be safe for
	// concurrent use: a blocking-mode module calls it from its own
	// goroutine.
	Deliver(frame []byte)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(frame []byte)

// Deliver calls f(frame).
func (f SinkFunc) Deliver(frame []byte) { f(frame) }

// Env is the environment a module is initialized with: the identity of its
// context, topology attributes used by applicability rules, configuration
// parameters, and the sink inbound frames are delivered to.
type Env struct {
	// Context is the hosting context's id.
	Context ContextID
	// Process identifies the OS process instance; modules whose methods only
	// work within one process (inproc, local) compare it.
	Process string
	// Partition names the partition the context belongs to; partition-scoped
	// methods (the simulated MPL fabric) compare it.
	Partition string
	// Params holds module configuration (socket buffer sizes, loss rates...).
	Params Params
	// Sink receives inbound frames.
	Sink Sink
}

// Conn is an active connection — the paper's "communication object". A Conn
// is created by selecting a method and dialing its descriptor; it is shared
// among all startpoints in a context that reference the same remote context
// with the same method.
type Conn interface {
	// Send transmits one frame. Send must be safe for concurrent use.
	//
	// Send borrows the frame: the caller may reuse or recycle the slice as
	// soon as Send returns, so an implementation that queues frames
	// (in-process mailboxes, modelled links, retransmission windows) must
	// copy. This is what lets a multicast sender encode one frame and
	// re-address it in place per target, and return its scratch to the
	// pool unconditionally.
	Send(frame []byte) error
	// Method reports the module name that produced this connection.
	Method() string
	// Close releases the connection.
	Close() error
}

// Module implements a communication method. A Module instance belongs to a
// single context and is not shared.
type Module interface {
	// Name reports the method name used in descriptors and resource strings.
	Name() string
	// Init binds the module to its context. The returned descriptor
	// advertises how other contexts reach this context by this method; a nil
	// descriptor (with nil error) means the context cannot receive by this
	// method, but may still dial out.
	Init(env Env) (*Descriptor, error)
	// Applicable reports whether this module can be used to send to remote.
	// It is the method-specific half of the paper's selection rule: a method
	// is applicable if supported by both contexts and if module criteria
	// (same partition, same process, ...) hold.
	Applicable(remote Descriptor) bool
	// Dial opens a communication object to the remote context.
	Dial(remote Descriptor) (Conn, error)
	// Poll checks once for pending inbound communication, delivering any
	// complete frames to the environment's sink. It returns the number of
	// frames delivered; a module may additionally count inbound progress
	// that completed no frame (a stream mid-way through a large frame) as
	// one unit, so activity-driven pollers keep probing rather than treat
	// the pass as idle. Poll is called from the context's polling loop and
	// need not be safe for concurrent use with itself.
	Poll() (int, error)
	// Close shuts the module down and releases its resources.
	Close() error
}

// Blocker is an optional capability: a module that can detect inbound
// communication with a blocked thread instead of polling (the paper's AIX 4.1
// refinement). StartBlocking launches the module's own detection goroutine;
// after it returns, the polling loop may skip this module entirely.
type Blocker interface {
	StartBlocking() error
	StopBlocking()
}

// Readiness is the registration surface a readiness reactor offers a
// Reactive module: the module adds the file descriptors whose readability
// implies pending inbound work, and removes them as sockets come and go. A
// registered fd MUST be removed before it is closed — descriptor numbers are
// reused by the OS, and a stale registration would attribute a new socket's
// readiness to the old owner.
type Readiness interface {
	Add(fd int) error
	Remove(fd int)
}

// Reactive is an optional capability: a module whose inbound sockets can be
// watched by an OS readiness facility (epoll) instead of being probed on
// every poll pass. AttachReactor switches the module to readiness-driven
// detection: the module registers its current inbound fds with r and keeps
// the set current as connections are accepted and torn down. Registration is
// edge-triggered, which imposes one contract on the module's Poll: once
// attached, every Poll call must drain all pending inbound data — its final
// read must observe "would block" — because consumed edges are not
// re-announced. Poll remains callable at any time (spurious calls find
// nothing and return), so a module works identically whether or not the
// caller honors readiness.
//
// AttachReactor returns ErrNotReactive (or any error) when the module cannot
// export pollable fds in its current configuration — for example a wrapper
// whose inner method is memory-backed — and the caller keeps the module on
// the portable polling path. DetachReactor removes every registered fd and
// returns the module to pure polling.
type Reactive interface {
	AttachReactor(r Readiness) error
	DetachReactor()
}

// BatchSender is an optional Conn capability: SendBatch transmits a sequence
// of frames in order, amortizing per-call overhead — one sendmmsg(2) system
// call per batch on Linux datagram sockets, against one sendto(2) per frame
// through Send. It returns the number of frames handed to the wire; when err
// is non-nil, frames[n] is the one that failed and frames beyond it were not
// attempted. Like Send, every frame is borrowed: the caller may reuse or
// recycle the slices as soon as SendBatch returns.
type BatchSender interface {
	SendBatch(frames [][]byte) (int, error)
}

// CostHinter is an optional capability: a module that advertises its
// approximate poll cost so the context can derive skip_poll defaults
// automatically (the paper's "adaptive adjustment" future work).
type CostHinter interface {
	PollCostHint() time.Duration
}

// SizeLimiter is an optional capability: a module whose connections bound the
// frame size Conn.Send accepts. MaxMessage reports that bound in bytes; 0
// means unlimited (beyond the wire format's own cap). The core uses it to
// decide when a bulk payload must be fragmented, and size-aware selection
// uses it to prefer methods that can carry a payload natively. A Conn
// rejecting an oversized frame returns an error matching ErrTooLarge.
type SizeLimiter interface {
	MaxMessage() int
}

// StatsReporter is an optional capability: a module that exposes internal
// levels and totals (queue depths, buffered bytes) for the context's enquiry
// snapshot. Keys should be prefixed with the method name ("tcp.pending.bytes")
// so they merge into the context's counter namespace without collisions.
// TransportStats must be safe for concurrent use.
type StatsReporter interface {
	TransportStats() map[string]uint64
}

// Errors shared by module implementations.
var (
	// ErrNotApplicable reports a Dial on a descriptor the module cannot reach.
	ErrNotApplicable = errors.New("transport: descriptor not applicable to this module")
	// ErrClosed reports use of a closed module or connection.
	ErrClosed = errors.New("transport: closed")
	// ErrNotInitialized reports use of a module before Init.
	ErrNotInitialized = errors.New("transport: module not initialized")
	// ErrTooLarge reports a frame exceeding the method's message-size limit.
	// Method-specific too-large errors wrap it, so callers test any module's
	// rejection with errors.Is(err, transport.ErrTooLarge).
	ErrTooLarge = errors.New("transport: frame exceeds method message-size limit")
	// ErrNotReactive reports AttachReactor on a module that cannot use
	// readiness-driven detection in its current configuration; the caller
	// keeps the module poll-based.
	ErrNotReactive = errors.New("transport: module cannot use readiness detection")
)
