package transport

import (
	"testing"
	"time"
)

// TestParamsAccessors pins the fall-back contract every module relies on
// when parsing its configuration: absent and malformed values yield the
// caller's default — never a zero value, never a panic. A typo in a resource
// database entry must degrade to defaults, not take the module down.
func TestParamsAccessors(t *testing.T) {
	p := Params{
		"str":       "hello",
		"int":       "42",
		"negint":    "-7",
		"badint":    "4 2",
		"hugeint":   "999999999999999999999999999999",
		"float":     "2.5",
		"floatexp":  "5e7",
		"badfloat":  "fast",
		"bool":      "true",
		"boolnum":   "0",
		"badbool":   "yes!",
		"dur":       "150ms",
		"durmixed":  "1h2m3s",
		"baddur":    "150",
		"badunit":   "10 lightyears",
		"empty":     "",
		"shm.ring":  "4194304",
		"shm.spin":  "sixty-four",
		"shm.sleep": "-5ms",
	}

	if v, ok := p.Get("str"); v != "hello" || !ok {
		t.Errorf("Get(str) = %q, %v", v, ok)
	}
	if v, ok := p.Get("absent"); v != "" || ok {
		t.Errorf("Get(absent) = %q, %v — want zero, false", v, ok)
	}
	if v, ok := p.Get("empty"); v != "" || !ok {
		t.Errorf("Get(empty) = %q, %v — empty value is still present", v, ok)
	}

	if v := p.Str("str", "d"); v != "hello" {
		t.Errorf("Str(str) = %q", v)
	}
	if v := p.Str("absent", "d"); v != "d" {
		t.Errorf("Str(absent) = %q, want default", v)
	}
	if v := p.Str("empty", "d"); v != "" {
		t.Errorf("Str(empty) = %q — present-but-empty wins over the default", v)
	}

	intCases := []struct {
		key  string
		want int
	}{
		{"int", 42}, {"negint", -7},
		{"badint", 99}, {"hugeint", 99}, {"empty", 99}, {"absent", 99},
		{"float", 99}, // "2.5" is not an int
		{"shm.spin", 99},
	}
	for _, tc := range intCases {
		if v := p.Int(tc.key, 99); v != tc.want {
			t.Errorf("Int(%s) = %d, want %d", tc.key, v, tc.want)
		}
	}

	floatCases := []struct {
		key  string
		want float64
	}{
		{"float", 2.5}, {"floatexp", 5e7}, {"int", 42},
		{"badfloat", 1.5}, {"empty", 1.5}, {"absent", 1.5},
	}
	for _, tc := range floatCases {
		if v := p.Float(tc.key, 1.5); v != tc.want {
			t.Errorf("Float(%s) = %g, want %g", tc.key, v, tc.want)
		}
	}

	boolCases := []struct {
		key       string
		def, want bool
	}{
		{"bool", false, true}, {"boolnum", true, false},
		{"badbool", true, true}, {"badbool", false, false},
		{"empty", true, true}, {"absent", false, false},
	}
	for _, tc := range boolCases {
		if v := p.Bool(tc.key, tc.def); v != tc.want {
			t.Errorf("Bool(%s, %v) = %v, want %v", tc.key, tc.def, v, tc.want)
		}
	}

	durCases := []struct {
		key  string
		want time.Duration
	}{
		{"dur", 150 * time.Millisecond},
		{"durmixed", time.Hour + 2*time.Minute + 3*time.Second},
		{"shm.sleep", -5 * time.Millisecond}, // negative parses; range checks are the caller's
		{"baddur", time.Second},              // bare number has no unit
		{"badunit", time.Second}, {"empty", time.Second}, {"absent", time.Second},
	}
	for _, tc := range durCases {
		if v := p.Duration(tc.key, time.Second); v != tc.want {
			t.Errorf("Duration(%s) = %v, want %v", tc.key, v, tc.want)
		}
	}
}

// TestParamsNilReceiver: every accessor must work on a nil map — modules are
// routinely constructed with no parameters at all.
func TestParamsNilReceiver(t *testing.T) {
	var p Params
	if _, ok := p.Get("k"); ok {
		t.Error("Get on nil Params reported a value")
	}
	if v := p.Str("k", "d"); v != "d" {
		t.Errorf("Str on nil = %q", v)
	}
	if v := p.Int("k", 3); v != 3 {
		t.Errorf("Int on nil = %d", v)
	}
	if v := p.Float("k", 0.5); v != 0.5 {
		t.Errorf("Float on nil = %g", v)
	}
	if v := p.Bool("k", true); !v {
		t.Error("Bool on nil lost the default")
	}
	if v := p.Duration("k", time.Minute); v != time.Minute {
		t.Errorf("Duration on nil = %v", v)
	}
	if c := p.Clone(); c == nil || len(c) != 0 {
		t.Errorf("Clone of nil = %v, want empty non-nil", c)
	}
}
