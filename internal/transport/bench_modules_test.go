// Module-level ping-pong across the two same-host transports: raw
// Send/Poll round trips with no core framing, the apples-to-apples
// comparison behind the shm-vs-loopback-tcp latency claim in EXPERIMENTS.md.
package transport_test

import (
	"sync/atomic"
	"testing"

	"nexus/internal/transport"
	"nexus/internal/transport/shm"
	"nexus/internal/transport/tcp"
)

// atomicCounterSink counts deliveries without copying or retaining frames.
type atomicCounterSink struct{ n atomic.Int64 }

func (s *atomicCounterSink) Deliver([]byte) { s.n.Add(1) }

// BenchmarkModulePingPong bounces one 64-byte frame module→module and back:
// Send into A→B, poll B until it lands, Send into B→A, poll A. ns/op is the
// full round trip at the transport layer.
func BenchmarkModulePingPong(b *testing.B) {
	cases := []struct {
		name string
		mk   func(b *testing.B) transport.Module
	}{
		{"tcp", func(b *testing.B) transport.Module { return tcp.New(transport.Params{}) }},
		{"shm", func(b *testing.B) transport.Module {
			if !shm.Supported() {
				b.Skip("shm transport requires linux")
			}
			return shm.New(transport.Params{"dir": b.TempDir()})
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			aSink, cSink := &atomicCounterSink{}, &atomicCounterSink{}
			a, c := tc.mk(b), tc.mk(b)
			aDesc, err := a.Init(transport.Env{Context: 1, Sink: aSink})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			cDesc, err := c.Init(transport.Env{Context: 2, Sink: cSink})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			toC, err := a.Dial(*cDesc)
			if err != nil {
				b.Fatal(err)
			}
			defer toC.Close()
			toA, err := c.Dial(*aDesc)
			if err != nil {
				b.Fatal(err)
			}
			defer toA.Close()

			payload := make([]byte, 64)
			b.SetBytes(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := toC.Send(payload); err != nil {
					b.Fatal(err)
				}
				for cSink.n.Load() < int64(i+1) {
					c.Poll()
					a.Poll() // stream transports may need the sender polled to flush
				}
				if err := toA.Send(payload); err != nil {
					b.Fatal(err)
				}
				for aSink.n.Load() < int64(i+1) {
					a.Poll()
					c.Poll()
				}
			}
		})
	}
}
