// Burst conformance: every transport must survive a 1000-frame burst fired
// as fast as Send accepts it — the pattern the bulk-data fragmenter and the
// batched send path produce. Reliable methods must deliver every frame in
// order; unreliable ones may shed load but the connection must remain usable
// afterwards. Each method runs twice: in portable fallback mode (plain
// polling) and, where the platform and the module support it, attached to a
// reactor with the poller gated on readiness edges — exercising the
// edge-triggered drain-until-would-block contract under load.
package transport_test

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/reactor"
	"nexus/internal/transport"
)

// burstReadiness adapts a reactor to transport.Readiness for the suite: any
// fd's edge sets one shared flag the test poller consumes.
type burstReadiness struct {
	r     *reactor.Reactor
	ready *atomic.Bool
}

func (br *burstReadiness) Add(fd int) error {
	return br.r.Add(fd, func() { br.ready.Store(true) })
}

func (br *burstReadiness) Remove(fd int) { br.r.Remove(fd) }

// startEdgePoller drives the pair's modules only when the readiness flag is
// set, the way the core's poll pass consumes the reactor bitmap. The flag is
// cleared before polling (edges arriving during a drain are kept), and every
// attached module drains to would-block inside one Poll call.
func startEdgePoller(t *testing.T, p *pair, ready *atomic.Bool) {
	t.Helper()
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			default:
			}
			if !ready.Swap(false) {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			for _, m := range p.poll {
				_, _ = m.Poll()
			}
		}
	}()
	t.Cleanup(func() { close(done); <-exited })
}

// attachBurstReactor attaches every reactive module the pair polls to a fresh
// reactor and returns the shared readiness flag, or false if no module has
// the capability (the method is inherently poll-based).
func attachBurstReactor(t *testing.T, p *pair) (*atomic.Bool, bool) {
	t.Helper()
	ready := &atomic.Bool{}
	r, err := reactor.New()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	attached := false
	for _, m := range p.poll {
		rm, ok := m.(transport.Reactive)
		if !ok {
			continue
		}
		if err := rm.AttachReactor(&burstReadiness{r: r, ready: ready}); err != nil {
			t.Fatalf("%s AttachReactor: %v", m.Name(), err)
		}
		attached = true
	}
	// Registration may have missed data already queued; seed one edge.
	ready.Store(true)
	return ready, attached
}

const (
	burstFrames    = 1000
	burstFrameSize = 256
)

// burstPattern builds frame i of the burst: index-stamped so order and
// identity are checkable on the receive side.
func burstPattern(i int) []byte {
	b := make([]byte, burstFrameSize)
	for j := range b {
		b[j] = byte(j) ^ byte(i)
	}
	b[0] = byte(i)
	b[1] = byte(i >> 8)
	return b
}

func TestConformanceBurst(t *testing.T) {
	for _, fx := range fixtures {
		for _, mode := range []string{"fallback", "reactor"} {
			t.Run(fmt.Sprintf("%s/%s", fx.name, mode), func(t *testing.T) {
				p := fx.make(t)
				if mode == "reactor" {
					if !reactor.Supported() {
						t.Skip("no reactor on this platform")
					}
					ready, ok := attachBurstReactor(t, p)
					if !ok {
						t.Skip("method has no reactive module")
					}
					startEdgePoller(t, p, ready)
				} else {
					p.startPoller(t)
				}

				c, err := p.send.Dial(p.desc)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				for i := 0; i < burstFrames; i++ {
					if err := c.Send(burstPattern(i)); err != nil {
						t.Fatalf("Send(frame %d): %v", i, err)
					}
				}

				if p.reliable {
					// Every frame, in order.
					deadline := time.Now().Add(30 * time.Second)
					for p.sink.count() < burstFrames {
						if time.Now().After(deadline) {
							t.Fatalf("delivered %d of %d frames", p.sink.count(), burstFrames)
						}
						time.Sleep(time.Millisecond)
					}
					p.sink.mu.Lock()
					for i, f := range p.sink.frames[:burstFrames] {
						if !bytes.Equal(f, burstPattern(i)) {
							p.sink.mu.Unlock()
							t.Fatalf("frame %d corrupted or out of order", i)
						}
					}
					p.sink.mu.Unlock()
				} else {
					// Load shedding is legal; silence is not. Wait for the
					// backlog to drain, then require the burst left survivors.
					last, stable := -1, 0
					for stable < 20 {
						n := p.sink.count()
						if n == last {
							stable++
						} else {
							last, stable = n, 0
						}
						time.Sleep(5 * time.Millisecond)
					}
					if last == 0 {
						t.Fatal("burst delivered nothing")
					}
					t.Logf("unreliable burst: %d of %d frames survived", last, burstFrames)
				}

				// The connection must still work after the burst.
				p.sink.reset()
				p.deliver(t, c, pattern(0xBB, 128))
			})
		}
	}
}
