package cluster

import (
	"testing"
)

// Pinned convergence bounds (gossip rounds) for the scale suite. These are
// deliberately loose multiples of observed behaviour — the suite exists to
// catch convergence regressions (a protocol change that turns O(log N) rounds
// into O(N)), not to race the constant factor.
const (
	scaleJoinBound      = 60
	scaleChurnBound     = 60
	scalePartitionBound = 80
)

func runScalePhases(t *testing.T, spec ScaleSpec) []ScalePhase {
	t.Helper()
	phases, err := RunScale(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range phases {
		t.Logf("phase %-14s rounds=%-3d converged=%-5v members=%-4d elapsed=%s",
			p.Name, p.Rounds, p.Converged, p.Members, p.Elapsed)
		if !p.Converged {
			t.Errorf("phase %s did not converge in %d rounds", p.Name, p.Rounds)
		}
	}
	return phases
}

func checkBounds(t *testing.T, phases []ScalePhase) {
	t.Helper()
	bounds := map[string]int{
		"join":           scaleJoinBound,
		"churn":          scaleChurnBound,
		"partition-heal": scalePartitionBound,
	}
	for _, p := range phases {
		if max, ok := bounds[p.Name]; ok && p.Converged && p.Rounds > max {
			t.Errorf("phase %s took %d rounds, pinned bound is %d", p.Name, p.Rounds, max)
		}
	}
}

// TestClusterScaleSmall keeps a quick always-on datapoint (also under -race
// in ordinary CI runs): 100 contexts with full churn and partition phases.
func TestClusterScaleSmall(t *testing.T) {
	phases := runScalePhases(t, ScaleSpec{N: 100, Churn: true})
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	checkBounds(t, phases)
}

// TestClusterScaleConvergence is the headline run: 1000+ contexts through
// join, churn (graceful leaves, crashes, late joins), and an even/odd
// network partition with heal — each phase must reconverge within its
// pinned round bound.
func TestClusterScaleConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-context scale run skipped in -short mode")
	}
	n := 1000
	if raceEnabled {
		// The race detector multiplies the run's cost several-fold; a smaller
		// cluster keeps the race-clean -count=2 CI pass affordable while the
		// regular build still proves the 1000-context bound.
		n = 300
	}
	phases := runScalePhases(t, ScaleSpec{N: n, Churn: true})
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	checkBounds(t, phases)
	// The churn phase must have actually shrunk and regrown the membership:
	// 2% leaves + 2% crashes + 2% fresh joins ⇒ N - N/50 live members.
	if want := n - n/50; phases[1].Members != want {
		t.Errorf("post-churn members = %d, want %d", phases[1].Members, want)
	}
}
