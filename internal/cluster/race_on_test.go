//go:build race

package cluster

// raceEnabled reports that this binary was built with the race detector,
// which multiplies the scale suite's per-operation cost; the headline run
// shrinks its context count accordingly (see scale_test.go).
const raceEnabled = true
