package cluster

import (
	"errors"
	"testing"

	"nexus/internal/buffer"
	"nexus/internal/core"
	"nexus/internal/names"
)

// dynMachine boots a dynamic (gossip-membership) machine and settles it.
func dynMachine(t *testing.T, cfg Config, maxRounds int) *Machine {
	t.Helper()
	if cfg.Dynamic == nil {
		cfg.Dynamic = &NodeConfig{Fanout: 8}
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if rounds, ok := m.Settle(maxRounds); !ok {
		t.Fatalf("machine did not converge in %d rounds", rounds)
	}
	return m
}

func TestDynamicMachineBootstrap(t *testing.T) {
	// No wire(): every table must arrive by gossip through the single seed.
	m := dynMachine(t, Config{Nodes: []NodeSpec{
		{Partition: "p", Methods: []core.MethodConfig{fastMPL()}},
		{Partition: "p", Methods: []core.MethodConfig{fastMPL()}},
		{Partition: "p", Methods: []core.MethodConfig{fastMPL()}},
		{Partition: "p", Methods: []core.MethodConfig{fastMPL()}},
	}}, 40)

	// Every node holds 4 live records.
	for r := 0; r < m.Size(); r++ {
		if got := len(m.Node(r).Registry().Live()); got != 4 {
			t.Fatalf("rank %d sees %d live members, want 4", r, got)
		}
	}
	// A lightweight startpoint resolves on every node without any manual
	// RegisterPeerTable: gossip installed the peer tables.
	delivered := 0
	ep := m.Context(0).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) { delivered++ }))
	for r := 1; r < m.Size(); r++ {
		b := buffer.New(64)
		ep.NewStartpoint().EncodeLite(b)
		dec, err := buffer.FromBytes(b.Encode())
		if err != nil {
			t.Fatal(err)
		}
		sp, err := m.Context(r).DecodeStartpoint(dec)
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.RSR("", nil); err != nil {
			t.Fatalf("rank %d lite RSR: %v", r, err)
		}
	}
	for w := 0; w < 10 && delivered < m.Size()-1; w++ {
		m.Context(0).Poll()
	}
	if delivered != m.Size()-1 {
		t.Fatalf("delivered %d lite RSRs, want %d", delivered, m.Size()-1)
	}
	// Observability: the membership view is wired into snapshots.
	snap := m.Context(0).Observe()
	if len(snap.Cluster) != 4 {
		t.Fatalf("snapshot cluster view has %d rows, want 4", len(snap.Cluster))
	}
}

func TestRuntimeMethodChangePropagates(t *testing.T) {
	// Nodes advertise mpl+inproc; the receiver then withdraws mpl at runtime.
	// Peers must re-select to inproc on their next send — no restarts.
	mc := []core.MethodConfig{fastMPL(), inprocCfg()}
	m := dynMachine(t, Config{Nodes: []NodeSpec{
		{Partition: "p", Methods: mc},
		{Partition: "p", Methods: mc},
	}}, 40)

	hits := 0
	ep := m.Context(0).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) { hits++ }))
	b := buffer.New(64)
	ep.NewStartpoint().EncodeLite(b)
	dec, err := buffer.FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.Context(1).DecodeStartpoint(dec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if got := sp.MethodFor(m.Context(0).ID()); got != "mpl" {
		t.Fatalf("initial method = %q, want mpl", got)
	}

	// Withdraw mpl from rank 0's advertised table (runtime remove).
	table := m.Context(0).AdvertisedTable()
	kept := table.Entries[:0]
	for _, e := range table.Entries {
		if e.Method != "mpl" {
			kept = append(kept, e)
		}
	}
	table.Entries = kept
	m.Context(0).SetAdvertisedTable(table)
	if rounds, ok := m.Settle(40); !ok {
		t.Fatalf("did not reconverge after method withdrawal (%d rounds)", rounds)
	}

	// The next send from the same live startpoint re-selects inproc.
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if got := sp.MethodFor(m.Context(0).ID()); got != "inproc" {
		t.Fatalf("method after withdrawal = %q, want inproc", got)
	}
	for w := 0; w < 10 && hits < 2; w++ {
		m.Context(0).Poll()
	}
	if hits != 2 {
		t.Fatalf("delivered %d RSRs, want 2", hits)
	}
}

func TestNoStaleSendsAfterLeave(t *testing.T) {
	m := dynMachine(t, Config{Nodes: []NodeSpec{
		{Partition: "p", Methods: []core.MethodConfig{fastMPL()}},
		{Partition: "p", Methods: []core.MethodConfig{fastMPL()}},
		{Partition: "p", Methods: []core.MethodConfig{fastMPL()}},
	}}, 40)

	// A live lightweight link from rank 2 to rank 1.
	ep := m.Context(1).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) {}))
	b := buffer.New(64)
	ep.NewStartpoint().EncodeLite(b)
	dec, err := buffer.FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.Context(2).DecodeStartpoint(dec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}

	// Rank 1 leaves gracefully; the tombstone spreads and auto-registration
	// removes its peer table everywhere.
	m.Node(1).Leave()
	if rounds, ok := m.Settle(40); !ok {
		t.Fatalf("did not reconverge after leave (%d rounds)", rounds)
	}
	if rec, okRec := m.Node(2).Registry().Get(m.Context(1).ID()); !okRec || !rec.Tombstone {
		t.Fatalf("rank 2 registry record for departed peer: %+v ok=%v", rec, okRec)
	}

	// Zero stale-descriptor sends: the cached link must fail fast with
	// ErrNoTable, not transmit to the departed context.
	sent := m.Context(2).Stats().Get("rsr.sent")
	if err := sp.RSR("", nil); !errors.Is(err, core.ErrNoTable) {
		t.Fatalf("send after leave: err=%v, want ErrNoTable", err)
	}
	if got := m.Context(2).Stats().Get("rsr.sent"); got != sent {
		t.Fatalf("rsr.sent moved %d -> %d after leave", sent, got)
	}
}

func TestRejoinAfterTombstone(t *testing.T) {
	m := dynMachine(t, Config{Nodes: []NodeSpec{
		{Partition: "p", Methods: []core.MethodConfig{fastMPL()}},
		{Partition: "p", Methods: []core.MethodConfig{fastMPL()}},
	}}, 40)
	n1 := m.Node(1)

	// Rank 0 wrongly declares rank 1 dead (third-party tombstone).
	rec, _ := m.Node(0).Registry().Get(m.Context(1).ID())
	m.Node(0).Registry().Merge(tombstoneOf(rec))
	if rounds, ok := m.Settle(40); !ok {
		t.Fatalf("no reconvergence after tombstone (%d rounds)", rounds)
	}
	// Rank 1 must have readopted its record above the tombstone and be live
	// everywhere again.
	got, _ := m.Node(0).Registry().Get(m.Context(1).ID())
	if got.Tombstone {
		t.Fatalf("rank 1 still tombstoned at rank 0: %+v", got)
	}
	if got.Seq <= rec.Seq {
		t.Fatalf("rejoined seq %d not above tombstone base %d", got.Seq, rec.Seq)
	}
	if n1.Closed() {
		t.Fatal("live node believes it left")
	}
}

func tombstoneOf(rec names.Record) names.Record {
	rec.Seq++
	rec.Tombstone = true
	rec.Table = nil
	return rec
}
