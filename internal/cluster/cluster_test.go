package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/core"
	"nexus/internal/resource"
	"nexus/internal/transport"
)

func fastMPL() core.MethodConfig {
	return core.MethodConfig{Name: "mpl", Params: transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}}
}

func fastWAN() core.MethodConfig {
	return core.MethodConfig{Name: "wan", Params: transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}}
}

func inprocCfg() core.MethodConfig { return core.MethodConfig{Name: "inproc"} }

func newMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestUniformMachineAllPairs(t *testing.T) {
	m := newMachine(t, Uniform(4, "p0", inprocCfg()))
	if m.Size() != 4 {
		t.Fatalf("Size = %d", m.Size())
	}
	var hits atomic.Int64
	// Every rank gets an endpoint; every other rank sends to it.
	eps := make([]*core.Endpoint, m.Size())
	for i := range eps {
		eps[i] = m.Context(i).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) { hits.Add(1) }))
	}
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			if i == j {
				continue
			}
			sp, err := core.TransferStartpoint(eps[j].NewStartpoint(), m.Context(i))
			if err != nil {
				t.Fatal(err)
			}
			if err := sp.RSR("", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := int64(m.Size() * (m.Size() - 1))
	deadline := time.Now().Add(5 * time.Second)
	for hits.Load() < want && time.Now().Before(deadline) {
		for i := 0; i < m.Size(); i++ {
			m.Context(i).Poll()
		}
	}
	if hits.Load() != want {
		t.Errorf("delivered %d, want %d", hits.Load(), want)
	}
}

func TestTwoPartitionScoping(t *testing.T) {
	m := newMachine(t, TwoPartition(2, "atmo", 2, "ocean", fastMPL(), fastWAN()))
	if got := m.Ranks("atmo"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Ranks(atmo) = %v", got)
	}
	if got := m.Ranks("ocean"); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Ranks(ocean) = %v", got)
	}

	ep := m.Context(1).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) {}))
	// Same partition: mpl selected (first in table).
	spIntra, err := core.TransferStartpoint(ep.NewStartpoint(), m.Context(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spIntra.SelectMethod(); err != nil {
		t.Fatal(err)
	}
	if got := spIntra.Method(); got != "mpl" {
		t.Errorf("intra-partition method = %q", got)
	}
	// Cross partition: wan is the only applicable method.
	spInter, err := core.TransferStartpoint(ep.NewStartpoint(), m.Context(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spInter.SelectMethod(); err != nil {
		t.Fatal(err)
	}
	if got := spInter.Method(); got != "wan" {
		t.Errorf("inter-partition method = %q", got)
	}
}

func TestMachineIsolationByTag(t *testing.T) {
	m1 := newMachine(t, Uniform(1, "p", inprocCfg()))
	m2 := newMachine(t, Uniform(1, "p", inprocCfg()))
	ep := m1.Context(0).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) {}))
	sp, err := core.TransferStartpoint(ep.NewStartpoint(), m2.Context(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.SelectMethod(); err == nil {
		t.Error("cross-machine selection succeeded; fabrics not isolated")
	}
}

func TestLightweightStartpointsWorkAfterWiring(t *testing.T) {
	m := newMachine(t, Uniform(2, "p0", inprocCfg()))
	var hits atomic.Int64
	ep := m.Context(0).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) { hits.Add(1) }))
	b := buffer.New(64)
	ep.NewStartpoint().EncodeLite(b)
	dec, err := buffer.FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.Context(1).DecodeStartpoint(dec)
	if err != nil {
		t.Fatal(err)
	}
	// Peer tables were exchanged at boot, so the lite startpoint resolves.
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if !m.Context(0).PollUntil(func() bool { return hits.Load() == 1 }, 5*time.Second) {
		t.Fatal("lite RSR not delivered")
	}
}

// TestForwardingConfiguration exercises the same relay topology over both
// route origins: "static" wires the forwarder by hand (ConfigureForwarding,
// the pre-mesh API), "mesh" boots a dynamic machine and lets gossip discover
// the route. Either way an external sender must reach an mpl-only member
// through the partition's wan forwarder, and the member must never poll wan.
func TestForwardingConfiguration(t *testing.T) {
	t.Run("static", func(t *testing.T) { testForwardingConfiguration(t, false) })
	t.Run("mesh", func(t *testing.T) { testForwardingConfiguration(t, true) })
}

func testForwardingConfiguration(t *testing.T, mesh bool) {
	// Partition "sp2": ranks 0 (forwarder), 1, 2. Outside: rank 3.
	cfg := Config{Nodes: []NodeSpec{
		{Partition: "sp2", Methods: []core.MethodConfig{fastMPL(), fastWAN()}, Forwarder: mesh},
		{Partition: "sp2", Methods: []core.MethodConfig{fastMPL()}},
		{Partition: "sp2", Methods: []core.MethodConfig{fastMPL()}},
		{Partition: "outside", Methods: []core.MethodConfig{fastWAN()}},
	}}
	if mesh {
		cfg.Dynamic = &NodeConfig{Mesh: true, Fanout: 8}
	}
	m := newMachine(t, cfg)
	if mesh {
		if rounds, ok := m.Settle(60); !ok {
			t.Fatalf("dynamic machine did not converge in %d rounds", rounds)
		}
		// Gossip + Dijkstra discovered the relay: the outside sender routes
		// to the member through the forwarder, no ConfigureForwarding call.
		if via := m.Node(3).RouteVia(m.Context(1).ID()); via != m.Context(0).ID() {
			t.Fatalf("mesh route via %d, want forwarder %d", via, m.Context(0).ID())
		}
	} else {
		if err := m.ConfigureForwarding(0, "wan"); err != nil {
			t.Fatal(err)
		}
	}

	var got atomic.Value
	ep := m.Context(1).NewEndpoint(core.WithHandler(func(ep *core.Endpoint, b *buffer.Buffer) {
		got.Store(b.String())
	}))
	var sp *core.Startpoint
	var err error
	if mesh {
		// Mesh routes live in peer tables, so the sender needs a lightweight
		// startpoint (a full transfer carries the member's own table, which
		// holds no method an outside context can use).
		enc := buffer.New(64)
		ep.NewStartpoint().EncodeLite(enc)
		var dec *buffer.Buffer
		if dec, err = buffer.FromBytes(enc.Encode()); err == nil {
			sp, err = m.Context(3).DecodeStartpoint(dec)
		}
	} else {
		sp, err = core.TransferStartpoint(ep.NewStartpoint(), m.Context(3))
	}
	if err != nil {
		t.Fatal(err)
	}
	b := buffer.New(32)
	b.PutString("inward")
	if err := sp.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if mth := sp.Method(); mth != "wan" {
		t.Errorf("external method = %q", mth)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == nil && time.Now().Before(deadline) {
		m.Context(0).Poll()
		m.Context(1).Poll()
	}
	if got.Load() != "inward" {
		t.Fatalf("member received %v", got.Load())
	}
	relayed := m.Context(0).Stats().Get("forward.relayed")
	if mesh {
		// Gossip frames to unreachable peers relay through the forwarder too,
		// so the exact count varies; the payload frame is in there.
		if relayed < 1 {
			t.Errorf("forward.relayed = %d, want >= 1", relayed)
		}
	} else if relayed != 1 {
		t.Errorf("forward.relayed = %d", relayed)
	}
	// Member 1 (no wan module) never polled wan.
	if m.Context(1).Stats().Get("poll.wan") != 0 {
		t.Errorf("member polled wan %d times", m.Context(1).Stats().Get("poll.wan"))
	}
}

func TestForwardingErrors(t *testing.T) {
	m := newMachine(t, Uniform(2, "p0", fastMPL()))
	if err := m.ConfigureForwarding(5, "wan"); err == nil {
		t.Error("bad rank accepted")
	}
	if err := m.ConfigureForwarding(0, "wan"); err == nil {
		t.Error("forwarder without the method accepted")
	}
}

func TestDatabaseDrivenMachine(t *testing.T) {
	db, err := resource.ParseString(`
* = inproc
partition:fast = mpl:latency=0:poll_cost=0:bandwidth=0,inproc
`)
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t, Config{
		Database: db,
		Nodes: []NodeSpec{
			{Partition: "fast"},
			{Partition: "fast"},
			{Partition: "slow"},
		},
	})
	// fast nodes have mpl; slow does not.
	infosFast := m.Context(0).Methods()
	names := make(map[string]bool)
	for _, mi := range infosFast {
		names[mi.Name] = true
	}
	if !names["mpl"] || !names["inproc"] {
		t.Errorf("fast node methods = %v", names)
	}
	infosSlow := m.Context(2).Methods()
	for _, mi := range infosSlow {
		if mi.Name == "mpl" {
			t.Error("slow node has mpl")
		}
	}
}

func TestRunCollectsErrors(t *testing.T) {
	m := newMachine(t, Uniform(3, "p", inprocCfg()))
	var calls atomic.Int64
	err := m.Run(func(rank int, ctx *core.Context) error {
		calls.Add(1)
		return nil
	})
	if err != nil || calls.Load() != 3 {
		t.Errorf("Run: err=%v calls=%d", err, calls.Load())
	}
}

func TestMachinePollersDeliver(t *testing.T) {
	m := newMachine(t, Uniform(2, "p", inprocCfg()))
	stop := m.StartPollers(0)
	defer stop()
	var hits atomic.Int64
	ep := m.Context(0).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) { hits.Add(1) }))
	sp, err := core.TransferStartpoint(ep.NewStartpoint(), m.Context(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for hits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if hits.Load() != 1 {
		t.Fatal("poller did not deliver")
	}
}
