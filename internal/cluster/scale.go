package cluster

import (
	"fmt"
	"time"

	"nexus/internal/core"
	"nexus/internal/simnet"
	"nexus/internal/transport"
)

// This file is the cluster-scale harness: build N gossiping contexts on a
// zero-latency simnet fabric, drive deterministic gossip rounds, and measure
// convergence through join, churn (leaves, crashes, late joins), and a
// network partition with heal. It lives outside _test.go because the bench
// tool (cmd/nexus-bench) reports the same convergence curve the tests bound.

// Converged reports whether every live (non-departed) agent holds the same
// registry contents, by fingerprint + length — O(nodes), not O(nodes²×records),
// which is what makes polling it every round affordable at N=1000.
func Converged(nodes []*Node) bool {
	var fp uint64
	ln := -1
	for _, n := range nodes {
		if n == nil || n.Closed() {
			continue
		}
		f, l := n.reg.Fingerprint(), n.reg.Len()
		if ln == -1 {
			fp, ln = f, l
			continue
		}
		if f != fp || l != ln {
			return false
		}
	}
	return true
}

// drainWaves bounds how many poll sweeps one gossip round may take: a digest
// triggers a delta triggers a push, each ripe immediately on a zero-latency
// fabric, so three waves usually empty the mailboxes.
const drainWaves = 10

// drain polls every context until a full sweep delivers nothing (or the wave
// budget runs out). Closed contexts must not be in the slice.
func drain(contexts []*core.Context) {
	for w := 0; w < drainWaves; w++ {
		total := 0
		for _, c := range contexts {
			if c != nil {
				total += c.Poll()
			}
		}
		if total == 0 {
			return
		}
	}
}

// Settle alternates gossip Steps and message drains until every live agent's
// registry agrees, then runs one extra round so the final records are folded
// into each context's peer tables. Returns rounds taken and whether
// convergence was reached within maxRounds.
func Settle(nodes []*Node, contexts []*core.Context, maxRounds int) (rounds int, ok bool) {
	for r := 1; r <= maxRounds; r++ {
		for _, n := range nodes {
			if n != nil && !n.Closed() {
				n.Step()
			}
		}
		drain(contexts)
		if Converged(nodes) {
			for _, n := range nodes {
				if n != nil && !n.Closed() {
					n.Step()
				}
			}
			drain(contexts)
			return r, true
		}
	}
	return maxRounds, false
}

// ScaleSpec parameterises one scale run.
type ScaleSpec struct {
	// N is the number of contexts to boot and join.
	N int
	// MaxRounds bounds each convergence phase.
	MaxRounds int
	// Node is the per-agent config. Fanout etc. default as usual;
	// DisableAutoRegister is forced on for N > 200 runs, where a million
	// peer-table installs would measure the allocator, not the protocol.
	Node NodeConfig
	// Churn additionally runs the churn + partition phases.
	Churn bool
}

// ScalePhase is one measured convergence phase of a scale run.
type ScalePhase struct {
	Name      string
	Rounds    int
	Converged bool
	Elapsed   time.Duration
	Members   int // live members agreed on at phase end
}

// scaleMethods builds the single-method (mpl, zero-latency, zero-poll-cost)
// configuration every scale context uses. One partition, one shared fabric:
// the experiment measures the protocol, not the modelled network.
func scaleMethods(tag string) []core.MethodConfig {
	return []core.MethodConfig{{
		Name: "mpl",
		Params: transport.Params{
			"fabric":    tag,
			"latency":   "0s",
			"poll_cost": "0s",
			"bandwidth": "0",
		},
	}}
}

// newScaleContext boots one context + agent on the shared scale fabric.
func newScaleContext(tag string, nc NodeConfig, seq int) (*core.Context, *Node, error) {
	ctx, err := core.NewContext(core.Options{
		Partition: "scale",
		Methods:   scaleMethods(tag),
	})
	if err != nil {
		return nil, nil, err
	}
	if nc.Seed == 0 {
		nc.Seed = int64(seq) + 1
	}
	return ctx, Attach(ctx, nc), nil
}

var scaleSeq int64

// RunScale executes one scale experiment: boot N contexts, join them all
// through a single seed, converge; then (with Churn) leave some, crash some,
// join fresh ones, converge; then partition the fabric in half, let the
// failure detector settle, heal, and converge again. Phases are returned in
// order with their round counts and wall times.
func RunScale(spec ScaleSpec) ([]ScalePhase, error) {
	if spec.N < 2 {
		return nil, fmt.Errorf("cluster: scale run needs N >= 2")
	}
	if spec.MaxRounds <= 0 {
		spec.MaxRounds = 200
	}
	nc := spec.Node
	if spec.N > 200 {
		nc.DisableAutoRegister = true
	}
	scaleSeq++
	tag := fmt.Sprintf("scale-%d-%d", spec.N, scaleSeq)

	ctxs := make([]*core.Context, 0, spec.N)
	nodes := make([]*Node, 0, spec.N)
	defer func() {
		for _, c := range ctxs {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := 0; i < spec.N; i++ {
		ctx, n, err := newScaleContext(tag, nc, i)
		if err != nil {
			return nil, err
		}
		ctxs = append(ctxs, ctx)
		nodes = append(nodes, n)
	}
	seedTable, seedEP := nodes[0].Bootstrap()
	for i := 1; i < spec.N; i++ {
		if err := nodes[i].Join(seedTable, seedEP); err != nil {
			return nil, fmt.Errorf("cluster: scale join %d: %w", i, err)
		}
	}

	var phases []ScalePhase
	runPhase := func(name string) {
		start := time.Now()
		rounds, ok := Settle(nodes, ctxs, spec.MaxRounds)
		phases = append(phases, ScalePhase{
			Name:      name,
			Rounds:    rounds,
			Converged: ok,
			Elapsed:   time.Since(start),
			Members:   liveCount(nodes),
		})
	}
	runPhase("join")
	if !spec.Churn {
		return phases, nil
	}

	// Churn: ~2% graceful leaves, ~2% crashes, ~2% fresh joins (at least one
	// of each). Crashed contexts are closed without a tombstone — the
	// failure detector must notice them.
	k := spec.N / 50
	if k < 1 {
		k = 1
	}
	for i := 1; i <= k; i++ { // leaves: ranks 1..k
		nodes[i].Leave()
	}
	drain(ctxs)
	for i := k + 1; i <= 2*k; i++ { // crashes: ranks k+1..2k
		ctxs[i].Close()
		ctxs[i] = nil
		nodes[i] = nil
	}
	for i := 0; i < k; i++ { // fresh joins
		ctx, n, err := newScaleContext(tag, nc, spec.N+i)
		if err != nil {
			return phases, err
		}
		ctxs = append(ctxs, ctx)
		nodes = append(nodes, n)
		if err := n.Join(seedTable, seedEP); err != nil {
			return phases, fmt.Errorf("cluster: churn join: %w", err)
		}
	}
	runPhase("churn")

	// Partition the live contexts in half, run rounds so each side settles
	// (tombstoning the other), heal, and let resurrection probes reconcile.
	faults := simnet.GetOrCreateFabric(tag + "/mpl").Faults()
	var a, b []transport.ContextID
	for i, c := range ctxs {
		if c == nil {
			continue
		}
		if i%2 == 0 {
			a = append(a, c.ID())
		} else {
			b = append(b, c.ID())
		}
	}
	faults.Partition(a, b)
	for r := 0; r < 3*deadAfterFactor; r++ {
		for _, n := range nodes {
			if n != nil && !n.Closed() {
				n.Step()
			}
		}
		drain(ctxs)
	}
	faults.Heal()
	runPhase("partition-heal")
	faults.Reset()
	return phases, nil
}

// liveCount is the number of agents still participating.
func liveCount(nodes []*Node) int {
	c := 0
	for _, n := range nodes {
		if n != nil && !n.Closed() {
			c++
		}
	}
	return c
}
