package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/core"
	"nexus/internal/names"
	"nexus/internal/obsv"
	"nexus/internal/transport"
)

// This file implements dynamic membership: a gossip agent (Node) attached to
// a context that maintains a versioned peer/descriptor registry
// (names.Registry) by anti-entropy over ordinary Control-class RSRs. The
// protocol is push-pull in three messages:
//
//	cluster.digest — a bounded, rotating-window summary of the sender's
//	                 registry, plus the sender's own record (so one digest
//	                 is also a join announcement);
//	cluster.delta  — the records the responder holds that the digest lacks,
//	                 plus a want-list of origins where the digest was ahead;
//	cluster.push   — the records answering a want-list.
//
// Convergence needs no clocks and no ordering: names.Registry.Merge is a
// deterministic join, so reordered, duplicated, and stale deliveries all
// land on the same table. Applied records feed the live context through
// RefreshPeerTable/RemovePeerTable, whose health-generation bump makes every
// startpoint re-run method selection — a runtime method add/remove at one
// context therefore changes what every peer selects, with no restarts and no
// out-of-band table shipping. Forwarder reachability travels in the same
// records, and mesh.go turns it into multi-hop routes.

// Gossip protocol handler names (Control class, like flow-control grants).
const (
	handlerDigest = "cluster.digest"
	handlerDelta  = "cluster.delta"
	handlerPush   = "cluster.push"
)

// NodeConfig tunes a gossip agent. The zero value is usable: fanout 2,
// bounded digests and deltas, auto-registration on.
type NodeConfig struct {
	// Forwarder advertises this context as a relay (and enables forwarding),
	// so mesh routes may pass through it.
	Forwarder bool
	// Mesh enables multi-hop route computation over advertised forwarders.
	Mesh bool
	// Fanout is how many peers each Step contacts (default 2).
	Fanout int
	// Interval is Run's period between Steps (default 50ms).
	Interval time.Duration
	// MaxDigest bounds digest entries per message (default 512).
	MaxDigest int
	// MaxDelta bounds records per delta/push message (default 64).
	MaxDelta int
	// DisableAutoRegister stops the agent from pushing applied records into
	// the context's peer tables. Scale harnesses that only measure registry
	// convergence set it to skip a million table installs.
	DisableAutoRegister bool
	// SuspectAfter is how many consecutive failed sends to a peer mark it
	// suspect (routed around); three times that declares it dead and
	// publishes a third-party tombstone. Default 1 (suspect on first error).
	SuspectAfter int
	// Seed fixes peer-sampling randomness; 0 derives it from the context id.
	Seed int64
}

func (cfg NodeConfig) withDefaults(id transport.ContextID) NodeConfig {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.MaxDigest <= 0 {
		cfg.MaxDigest = 512
	}
	if cfg.MaxDelta <= 0 {
		cfg.MaxDelta = 64
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(id)*0x9e3779b9 + 1
	}
	return cfg
}

// deadAfterFactor: a peer is declared dead (tombstoned) after
// SuspectAfter*deadAfterFactor consecutive send failures.
const deadAfterFactor = 3

// spCacheCap bounds the gossip agent's cached reply startpoints.
const spCacheCap = 64

// Node is a context's gossip agent: one per clustered context.
type Node struct {
	ctx *core.Context
	cfg NodeConfig
	reg *names.Registry
	ep  *core.Endpoint

	mu         sync.Mutex
	rng        *rand.Rand
	self       names.Record
	selfEnc    []byte // last advertised-table encoding published under self.Seq
	appliedGen uint64 // registry generation applyRegistry last ran at
	applied    map[transport.ContextID]appliedState
	digestPos  int // rotating digest window cursor
	probeTick  int
	failures   map[transport.ContextID]int
	suspects   map[transport.ContextID]bool
	routed     map[transport.ContextID]routeState // mesh.go
	// lastTables keeps each peer's most recent live table even after a
	// tombstone (which carries none), so resurrection probes can still
	// address the peer.
	lastTables  map[transport.ContextID]*transport.Table
	sps         map[spKey]*core.Startpoint
	spOrder     []spKey
	routesDirty bool
	closed      bool
	stopRun     chan struct{}
}

// appliedState remembers what version of a peer's record has been pushed into
// the context's peer tables, so an unchanged record costs nothing to re-apply.
type appliedState struct {
	seq       uint64
	hash      uint64
	tombstone bool
}

type spKey struct {
	ctx transport.ContextID
	ep  uint64
}

// Attach builds a gossip agent on the context and registers its handlers.
// The agent is passive until Join/Step/Run are called; the context's polling
// drives message receipt. Forwarder agents enable frame forwarding
// immediately, since mesh routes elsewhere may select them as hops.
func Attach(ctx *core.Context, cfg NodeConfig) *Node {
	cfg = cfg.withDefaults(ctx.ID())
	n := &Node{
		ctx:        ctx,
		cfg:        cfg,
		reg:        names.NewRegistry(),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		applied:    make(map[transport.ContextID]appliedState),
		failures:   make(map[transport.ContextID]int),
		suspects:   make(map[transport.ContextID]bool),
		routed:     make(map[transport.ContextID]routeState),
		lastTables: make(map[transport.ContextID]*transport.Table),
		sps:        make(map[spKey]*core.Startpoint),
	}
	ctx.RegisterHandler(handlerDigest, n.onDigest)
	ctx.RegisterHandler(handlerDelta, n.onDelta)
	ctx.RegisterHandler(handlerPush, n.onPush)
	n.ep = ctx.NewEndpoint()
	if cfg.Forwarder {
		ctx.EnableForwarding()
	}
	n.self = names.Record{
		Origin:    ctx.ID(),
		Seq:       1,
		Forwarder: cfg.Forwarder,
		Partition: ctx.Partition(),
		GossipEP:  n.ep.ID(),
		Table:     ctx.AdvertisedTable(),
	}
	n.selfEnc = encodeTable(n.self.Table)
	n.reg.Merge(n.self)
	ctx.SetClusterState(n)
	ctx.SetClusterView(n.members)
	return n
}

// NodeOf returns the gossip agent attached to the context, or nil.
func NodeOf(ctx *core.Context) *Node {
	n, _ := ctx.ClusterState().(*Node)
	return n
}

// Context returns the agent's context.
func (n *Node) Context() *core.Context { return n.ctx }

// Registry exposes the agent's membership registry (shared, concurrent-safe).
func (n *Node) Registry() *names.Registry { return n.reg }

// Bootstrap returns the address a joining peer needs: this context's
// advertised descriptor table and the gossip endpoint id. It is the only
// thing that must travel out of band — every other table arrives by gossip.
func (n *Node) Bootstrap() (*transport.Table, uint64) {
	return n.ctx.AdvertisedTable(), n.ep.ID()
}

// Join announces this context to a seed peer: one digest message carrying our
// own record and a summary of everything we already hold. The seed's delta
// reply starts anti-entropy; subsequent Steps complete the bootstrap with no
// further out-of-band input.
func (n *Node) Join(seedTable *transport.Table, seedEP uint64) error {
	if seedTable == nil || seedTable.Len() == 0 {
		return fmt.Errorf("cluster: join needs a seed descriptor table")
	}
	seed := seedTable.Entries[0].Context
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("cluster: node %d has left", n.ctx.ID())
	}
	sp := n.startpointLocked(seed, seedEP, seedTable)
	digest, next := n.reg.Digest(n.digestPos, n.cfg.MaxDigest)
	n.digestPos = next
	self := n.self
	n.mu.Unlock()
	err := n.sendDigest(sp, self, digest)
	n.noteSend(seed, err)
	if err != nil {
		return fmt.Errorf("cluster: join via context %d: %w", seed, err)
	}
	n.ctx.Stats().Counter("cluster.join").Inc()
	return nil
}

// Leave publishes a tombstone for this context under a fresh version and
// pushes it directly to up to 2×fanout live peers (best effort — anti-entropy
// spreads it regardless). The agent stops gossiping afterwards.
func (n *Node) Leave() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.self = names.Record{
		Origin:    n.self.Origin,
		Seq:       n.self.Seq + 1,
		Tombstone: true,
		Partition: n.self.Partition,
		GossipEP:  n.self.GossipEP,
	}
	tomb := n.self
	n.reg.Merge(tomb)
	peers := n.livePeersLocked()
	n.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if max := 2 * n.cfg.Fanout; len(peers) > max {
		peers = peers[:max]
	}
	targets := make([]*core.Startpoint, 0, len(peers))
	for _, p := range peers {
		targets = append(targets, n.startpointLocked(p.Origin, p.GossipEP, p.Table))
	}
	n.mu.Unlock()
	for _, sp := range targets {
		b := buffer.New(128)
		b.PutUint64(uint64(tomb.Origin))
		b.PutUint64(tomb.GossipEP)
		names.EncodeRecords(b, []names.Record{tomb})
		_ = sp.RSR(handlerPush, b)
	}
	n.ctx.Stats().Counter("cluster.leave").Inc()
}

// Closed reports whether the agent has left the cluster.
func (n *Node) Closed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// Step runs one gossip round: refresh the self record if the advertised
// table changed, fold registry changes into the context's peer tables and
// mesh routes, then send bounded digests to fanout random live peers.
// Safe to call from any goroutine; typically driven by Run or a test loop.
func (n *Node) Step() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.refreshSelfLocked()
	n.applyRegistryLocked()
	type dst struct {
		sp     *core.Startpoint
		origin transport.ContextID
		probe  bool
	}
	peers := n.livePeersLocked()
	n.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > n.cfg.Fanout {
		peers = peers[:n.cfg.Fanout]
	}
	digest, next := n.reg.Digest(n.digestPos, n.cfg.MaxDigest)
	n.digestPos = next
	self := n.self
	targets := make([]dst, 0, len(peers)+1)
	for _, p := range peers {
		targets = append(targets, dst{sp: n.startpointLocked(p.Origin, p.GossipEP, p.Table), origin: p.Origin})
	}
	// Resurrection probe: every few rounds, one digest goes to a random
	// tombstoned peer. A peer that was wrongly declared dead (it was only
	// partitioned away) thereby learns of its own tombstone, readopts its
	// record at a higher version, and the halves reconcile — without this,
	// two healed partitions each believe the other departed and never
	// exchange another message. A genuinely dead peer just costs one failed
	// send. The probe bypasses noteSend: a tombstoned peer has no liveness
	// left to damage.
	n.probeTick++
	if n.probeTick%probeEvery == 0 {
		var tombs []names.Record
		for _, rec := range n.reg.Snapshot() {
			if rec.Tombstone && rec.Origin != n.self.Origin && rec.GossipEP != 0 {
				tombs = append(tombs, rec)
			}
		}
		if len(tombs) > 0 {
			p := tombs[n.rng.Intn(len(tombs))]
			if t := n.lastTables[p.Origin]; t != nil {
				targets = append(targets, dst{sp: n.startpointLocked(p.Origin, p.GossipEP, t), origin: p.Origin, probe: true})
				n.ctx.Stats().Counter("cluster.probe.tx").Inc()
			}
		}
	}
	n.mu.Unlock()
	for _, t := range targets {
		err := n.sendDigest(t.sp, self, digest)
		if t.probe {
			if err != nil {
				n.invalidateStartpoint(t.origin)
			}
		} else {
			n.noteSend(t.origin, err)
		}
	}
	// Send outcomes are fresh failure-detector evidence (suspects set or
	// cleared); fold them into mesh routes now rather than a round later —
	// this is what lets a route heal in the same round its relay's death
	// (or resurrection) was observed.
	n.mu.Lock()
	if n.cfg.Mesh && n.routesDirty && !n.closed {
		n.routesDirty = false
		n.recomputeRoutesLocked()
	}
	n.mu.Unlock()
	n.ctx.Stats().Counter("cluster.rounds").Inc()
}

// probeEvery is how often (in Steps) a node probes one tombstoned peer.
const probeEvery = 4

// Run drives Step on the configured interval from a background goroutine
// until the returned stop function is called (or Leave).
func (n *Node) Run() (stop func()) {
	n.mu.Lock()
	if n.stopRun != nil || n.closed {
		n.mu.Unlock()
		return func() {}
	}
	ch := make(chan struct{})
	n.stopRun = ch
	n.mu.Unlock()
	go func() {
		tick := time.NewTicker(n.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-ch:
				return
			case <-tick.C:
				n.Step()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(ch)
			n.mu.Lock()
			n.stopRun = nil
			n.mu.Unlock()
		})
	}
}

// refreshSelfLocked republishes the self record when the context's advertised
// table changed (a method enabled, disabled, or re-parameterised at runtime)
// and recovers from observing our own tombstone or a higher version of
// ourselves (a rejoin after a crash verdict): the record is readopted at one
// past the highest sequence seen, so the live record wins everywhere.
func (n *Node) refreshSelfLocked() {
	if cur, ok := n.reg.Get(n.self.Origin); ok && (cur.Tombstone || cur.Seq > n.self.Seq) {
		n.self.Seq = cur.Seq + 1
		n.self.Tombstone = false
		n.self.Table = n.ctx.AdvertisedTable()
		n.selfEnc = encodeTable(n.self.Table)
		n.reg.Merge(n.self)
		n.ctx.Stats().Counter("cluster.self.rejoin").Inc()
		return
	}
	t := n.ctx.AdvertisedTable()
	enc := encodeTable(t)
	if string(enc) == string(n.selfEnc) {
		return
	}
	n.self.Seq++
	n.self.Table = t
	n.selfEnc = enc
	n.reg.Merge(n.self)
	n.ctx.Stats().Counter("cluster.self.refresh").Inc()
}

// applyRegistryLocked folds registry changes into the live context: applied
// live records refresh the peer's descriptor table (bumping the health
// generation, so in-flight startpoints re-select), tombstones remove it (so
// subsequent sends fail fast with ErrNoTable instead of using a stale
// descriptor), and any change marks mesh routes for recomputation.
func (n *Node) applyRegistryLocked() {
	gen := n.reg.Gen()
	if gen != n.appliedGen {
		n.appliedGen = gen
		for _, rec := range n.reg.Snapshot() {
			if rec.Origin == n.self.Origin {
				continue
			}
			prev, seen := n.applied[rec.Origin]
			if rec.Tombstone {
				if seen && prev.tombstone {
					continue
				}
				n.applied[rec.Origin] = appliedState{seq: rec.Seq, tombstone: true}
				if !n.cfg.DisableAutoRegister {
					n.ctx.RemovePeerTable(rec.Origin)
				}
				n.dropPeerLocked(rec.Origin)
				n.routesDirty = true
				n.ctx.Stats().Counter("cluster.applied.tombstone").Inc()
				continue
			}
			h := rec.Hash()
			if seen && !prev.tombstone && prev.seq == rec.Seq && prev.hash == h {
				continue
			}
			n.applied[rec.Origin] = appliedState{seq: rec.Seq, hash: h}
			if rec.Table != nil {
				n.lastTables[rec.Origin] = rec.Table
			}
			delete(n.failures, rec.Origin)
			delete(n.suspects, rec.Origin)
			// Cached gossip startpoints to this peer rebind on next use, so a
			// bootstrap-era binding cannot outlive the table it was built from.
			n.closeSPsLocked(rec.Origin)
			if !n.cfg.DisableAutoRegister && rec.Table != nil {
				n.ctx.RefreshPeerTable(rec.Table)
			}
			n.routesDirty = true
			n.ctx.Stats().Counter("cluster.applied.record").Inc()
		}
	}
	if n.cfg.Mesh && n.routesDirty {
		n.routesDirty = false
		n.recomputeRoutesLocked()
	}
}

// dropPeerLocked forgets per-peer send state for a departed origin.
func (n *Node) dropPeerLocked(origin transport.ContextID) {
	delete(n.failures, origin)
	delete(n.suspects, origin)
	n.closeSPsLocked(origin)
}

// closeSPsLocked evicts cached startpoints addressing the given origin.
func (n *Node) closeSPsLocked(origin transport.ContextID) {
	for k, sp := range n.sps {
		if k.ctx == origin {
			sp.Close()
			delete(n.sps, k)
		}
	}
}

// livePeersLocked lists live records other than self.
func (n *Node) livePeersLocked() []names.Record {
	live := n.reg.Live()
	out := live[:0]
	for _, rec := range live {
		if rec.Origin != n.self.Origin {
			out = append(out, rec)
		}
	}
	return out
}

// startpointLocked returns a cached Control-class startpoint for a peer's
// gossip endpoint. When the context has a registered peer table for the
// target the startpoint resolves through it lazily — so it follows gossip
// refreshes and mesh route installs automatically — otherwise the record's
// own table is bound directly (the bootstrap case).
func (n *Node) startpointLocked(ctx transport.ContextID, ep uint64, table *transport.Table) *core.Startpoint {
	key := spKey{ctx: ctx, ep: ep}
	if sp, ok := n.sps[key]; ok {
		return sp
	}
	var bind *transport.Table
	if n.ctx.PeerTable(ctx) == nil {
		bind = table
	}
	sp := n.ctx.NewStartpointTo(ctx, ep, bind)
	sp.SetClass(core.ClassControl)
	if len(n.spOrder) >= spCacheCap {
		oldest := n.spOrder[0]
		n.spOrder = n.spOrder[1:]
		if old, ok := n.sps[oldest]; ok {
			old.Close()
			delete(n.sps, oldest)
		}
	}
	n.sps[key] = sp
	n.spOrder = append(n.spOrder, key)
	return sp
}

// invalidateStartpoint drops a cached startpoint after a send failure, so the
// next message rebinds from current tables.
func (n *Node) invalidateStartpoint(ctx transport.ContextID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k, sp := range n.sps {
		if k.ctx == ctx {
			sp.Close()
			delete(n.sps, k)
		}
	}
}

// noteSend is the failure detector: consecutive send failures first mark the
// peer suspect (mesh routes avoid it), then declare it dead with a
// third-party tombstone at one past its last version — the no-clock analogue
// of a crash notice. Any success clears the slate.
func (n *Node) noteSend(origin transport.ContextID, err error) {
	if err == nil {
		n.mu.Lock()
		if n.failures[origin] != 0 || n.suspects[origin] {
			delete(n.failures, origin)
			delete(n.suspects, origin)
			n.routesDirty = true
		}
		n.mu.Unlock()
		return
	}
	n.invalidateStartpoint(origin)
	n.mu.Lock()
	n.failures[origin]++
	f := n.failures[origin]
	if f >= n.cfg.SuspectAfter && !n.suspects[origin] {
		n.suspects[origin] = true
		n.routesDirty = true
		n.ctx.Stats().Counter("cluster.peer.suspect").Inc()
	}
	dead := f >= n.cfg.SuspectAfter*deadAfterFactor
	var tomb names.Record
	if dead {
		if rec, ok := n.reg.Get(origin); ok && !rec.Tombstone {
			tomb = names.Record{
				Origin:    origin,
				Seq:       rec.Seq + 1,
				Tombstone: true,
				Partition: rec.Partition,
				GossipEP:  rec.GossipEP,
			}
		} else {
			dead = false
		}
	}
	n.mu.Unlock()
	if dead {
		n.reg.Merge(tomb)
		n.ctx.Stats().Counter("cluster.peer.dead").Inc()
	}
}

// sendDigest ships one digest message: [from][fromEP][self record][digest].
func (n *Node) sendDigest(sp *core.Startpoint, self names.Record, d names.Digest) error {
	b := buffer.New(256 + 24*len(d.Entries))
	b.PutUint64(uint64(self.Origin))
	b.PutUint64(self.GossipEP)
	names.EncodeRecords(b, []names.Record{self})
	d.Encode(b)
	err := sp.RSR(handlerDigest, b)
	if err == nil {
		n.ctx.Stats().Counter("cluster.digest.tx").Inc()
	}
	return err
}

// replyTo builds a startpoint back to a message's sender. The sender's own
// record rode in the message, so its table is always available even before
// the registry has it.
func (n *Node) replyTo(from transport.ContextID, fromEP uint64, senderTable *transport.Table) *core.Startpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.startpointLocked(from, fromEP, senderTable)
}

// onDigest answers a digest with the delta the sender lacks and a want-list
// push request for what we lack (rolled into the same delta message).
func (n *Node) onDigest(_ *core.Endpoint, b *buffer.Buffer) {
	from := transport.ContextID(b.Uint64())
	fromEP := b.Uint64()
	recs, err := names.DecodeRecords(b)
	if err != nil || b.Err() != nil {
		n.ctx.Stats().Counter("cluster.decode.errors").Inc()
		return
	}
	digest, err := names.DecodeDigest(b)
	if err != nil {
		n.ctx.Stats().Counter("cluster.decode.errors").Inc()
		return
	}
	n.ctx.Stats().Counter("cluster.digest.rx").Inc()
	var senderTable *transport.Table
	for _, r := range recs {
		if r.Origin == from {
			senderTable = r.Table
		}
	}
	n.reg.MergeAll(recs)
	delta, wants := n.reg.DeltaFor(digest, n.cfg.MaxDelta)
	// Never ship the sender its own record back: it is the authority on it
	// (and during a leave push race, echoing it would be pure noise).
	trimmed := delta[:0]
	for _, r := range delta {
		if r.Origin != from {
			trimmed = append(trimmed, r)
		}
	}
	delta = trimmed
	if len(delta) == 0 && len(wants) == 0 {
		return
	}
	sp := n.replyTo(from, fromEP, senderTable)
	n.mu.Lock()
	self := n.self
	n.mu.Unlock()
	out := buffer.New(256)
	out.PutUint64(uint64(self.Origin))
	out.PutUint64(self.GossipEP)
	names.EncodeRecords(out, delta)
	out.PutUint32(uint32(len(wants)))
	for _, w := range wants {
		out.PutUint64(uint64(w))
	}
	err = sp.RSR(handlerDelta, out)
	n.noteSend(from, err)
	if err == nil {
		n.ctx.Stats().Counter("cluster.delta.tx").Inc()
	}
}

// onDelta merges the responder's records and answers its want-list with a
// push of the records it asked for.
func (n *Node) onDelta(_ *core.Endpoint, b *buffer.Buffer) {
	from := transport.ContextID(b.Uint64())
	fromEP := b.Uint64()
	recs, err := names.DecodeRecords(b)
	if err != nil || b.Err() != nil {
		n.ctx.Stats().Counter("cluster.decode.errors").Inc()
		return
	}
	nw := int(b.Uint32())
	if b.Err() != nil || nw < 0 || nw*8 > b.Remaining() {
		n.ctx.Stats().Counter("cluster.decode.errors").Inc()
		return
	}
	wants := make([]transport.ContextID, 0, nw)
	for i := 0; i < nw; i++ {
		wants = append(wants, transport.ContextID(b.Uint64()))
	}
	if b.Err() != nil {
		n.ctx.Stats().Counter("cluster.decode.errors").Inc()
		return
	}
	n.ctx.Stats().Counter("cluster.delta.rx").Inc()
	if applied := n.reg.MergeAll(recs); applied > 0 {
		n.ctx.Stats().Counter("cluster.merged").Add(uint64(applied))
	}
	if len(wants) == 0 {
		return
	}
	answer := n.reg.RecordsFor(wants, n.cfg.MaxDelta)
	if len(answer) == 0 {
		return
	}
	sp := n.replyTo(from, fromEP, nil)
	n.mu.Lock()
	self := n.self
	n.mu.Unlock()
	out := buffer.New(256)
	out.PutUint64(uint64(self.Origin))
	out.PutUint64(self.GossipEP)
	names.EncodeRecords(out, answer)
	err = sp.RSR(handlerPush, out)
	n.noteSend(from, err)
	if err == nil {
		n.ctx.Stats().Counter("cluster.push.tx").Inc()
	}
}

// onPush merges an unsolicited record batch (want-list answers, leave
// notices, join relays).
func (n *Node) onPush(_ *core.Endpoint, b *buffer.Buffer) {
	_ = b.Uint64() // from
	_ = b.Uint64() // fromEP
	recs, err := names.DecodeRecords(b)
	if err != nil || b.Err() != nil {
		n.ctx.Stats().Counter("cluster.decode.errors").Inc()
		return
	}
	n.ctx.Stats().Counter("cluster.push.rx").Inc()
	if applied := n.reg.MergeAll(recs); applied > 0 {
		n.ctx.Stats().Counter("cluster.merged").Add(uint64(applied))
	}
}

// members builds the observability membership view: one row per registry
// record, with the mesh next hop for destinations currently routed.
func (n *Node) members() []obsv.ClusterMember {
	snap := n.reg.Snapshot()
	n.mu.Lock()
	routed := make(map[transport.ContextID]transport.ContextID, len(n.routed))
	for d, rs := range n.routed {
		routed[d] = rs.via
	}
	n.mu.Unlock()
	out := make([]obsv.ClusterMember, 0, len(snap))
	for _, rec := range snap {
		m := obsv.ClusterMember{
			Context:   uint64(rec.Origin),
			Partition: rec.Partition,
			Seq:       rec.Seq,
			Tombstone: rec.Tombstone,
			Forwarder: rec.Forwarder,
			Via:       uint64(routed[rec.Origin]),
		}
		if rec.Table != nil {
			ms := make([]string, 0, rec.Table.Len())
			seen := map[string]bool{}
			for _, e := range rec.Table.Entries {
				if !seen[e.Method] {
					seen[e.Method] = true
					ms = append(ms, e.Method)
				}
			}
			sort.Strings(ms)
			m.Methods = strings.Join(ms, ",")
		}
		out = append(out, m)
	}
	return out
}

// encodeTable returns a table's deterministic encoding ("" for nil), the
// change probe refreshSelf compares across Steps.
func encodeTable(t *transport.Table) []byte {
	if t == nil {
		return nil
	}
	b := buffer.New(128)
	t.Encode(b)
	return b.Bytes()
}
