// Package cluster bootstraps an in-process "machine": a set of contexts with
// partitions, shared fabrics, exchanged descriptor tables, and optional
// forwarding — the analogue of starting a Nexus computation across SP2
// partitions.
//
// A machine is the substrate the higher layers (the mini-MPI, the coupled
// climate model, the benchmarks) run on. All contexts live in one OS process;
// partition-scoped methods (mpl, myri) connect only contexts that share a
// partition, while globally routable methods (tcp, wan, inproc) cross
// partition boundaries, recreating the paper's two-partition experimental
// configuration on a laptop.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/core"
	"nexus/internal/resource"
	"nexus/internal/transport"
	// Standard modules register themselves with transport.Default.
	_ "nexus/internal/simnet"
	_ "nexus/internal/transport/inproc"
	_ "nexus/internal/transport/local"
	_ "nexus/internal/transport/rudp"
	_ "nexus/internal/transport/secure"
	_ "nexus/internal/transport/tcp"
	_ "nexus/internal/transport/udp"
)

// fabricMethods are the method names whose modules take a shared-medium name
// parameter; the machine tag is injected so distinct machines are isolated.
var fabricMethods = map[string]string{
	"inproc": "exchange",
	"mpl":    "fabric",
	"myri":   "fabric",
	"atm":    "fabric",
	"wan":    "fabric",
}

// NodeSpec describes one context of the machine.
type NodeSpec struct {
	// Partition names the node's partition.
	Partition string
	// Methods lists the node's communication methods in preference order
	// (overrides the machine Database if both are set).
	Methods []core.MethodConfig
	// Forwarder marks this node a relay in dynamic machines: its gossip
	// record advertises reachability for mesh routing. Ignored for static
	// machines (use ConfigureForwarding there).
	Forwarder bool
}

// Config describes a machine.
type Config struct {
	// Tag isolates this machine's shared fabrics from other machines in the
	// process. Empty generates a unique tag.
	Tag string
	// Nodes lists the machine's contexts.
	Nodes []NodeSpec
	// Database optionally resolves per-node method lists (used for nodes
	// with nil Methods).
	Database *resource.Database
	// Threaded runs RSR handlers in their own goroutines on all nodes.
	Threaded bool
	// Selector overrides the method selection policy on all nodes.
	Selector core.Selector
	// Dynamic switches the machine to gossip-based membership: instead of
	// statically wiring every peer table at boot, each context gets a gossip
	// agent (with this config; Forwarder comes from its NodeSpec) and every
	// node joins through node 0. Tables then spread by anti-entropy —
	// Machine.Settle drives the rounds in tests.
	Dynamic *NodeConfig
	// RelayTTL overrides the hop budget stamped on mesh-routed frames on
	// every node (default core.DefaultRelayTTL).
	RelayTTL int
}

var machineSeq atomic.Uint64

// Machine is a running set of contexts with exchanged descriptor tables.
type Machine struct {
	tag      string
	contexts []*core.Context
	nodes    []*Node // gossip agents (dynamic machines only)
}

// New boots a machine: creates every context, then exchanges descriptor
// tables so all nodes can build lightweight startpoints and route forwarded
// traffic.
func New(cfg Config) (*Machine, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: machine needs at least one node")
	}
	tag := cfg.Tag
	if tag == "" {
		tag = fmt.Sprintf("machine-%d", machineSeq.Add(1))
	}
	m := &Machine{tag: tag}
	for rank, node := range cfg.Nodes {
		methods := node.Methods
		if methods == nil && cfg.Database != nil {
			methods = cfg.Database.MethodsFor(0, node.Partition)
		}
		methods = injectTag(methods, tag)
		ctx, err := core.NewContext(core.Options{
			Partition: node.Partition,
			Methods:   methods,
			Threaded:  cfg.Threaded,
			Selector:  cfg.Selector,
			Cluster:   core.ClusterConfig{RelayTTL: cfg.RelayTTL},
		})
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("cluster: creating node %d: %w", rank, err)
		}
		m.contexts = append(m.contexts, ctx)
	}
	if cfg.Dynamic != nil {
		for rank, ctx := range m.contexts {
			nc := *cfg.Dynamic
			nc.Forwarder = cfg.Nodes[rank].Forwarder
			if nc.Seed == 0 {
				nc.Seed = int64(rank) + 1
			}
			m.nodes = append(m.nodes, Attach(ctx, nc))
		}
		// Each node joins through the first earlier member it can reach
		// directly (rank 0 for uniform machines; the nearest same-partition
		// member in heterogeneous ones). Anti-entropy merges the views.
		for rank, n := range m.nodes {
			if rank == 0 {
				continue
			}
			var err error
			joined := false
			for s := 0; s < rank && !joined; s++ {
				seedTable, seedEP := m.nodes[s].Bootstrap()
				if err = n.Join(seedTable, seedEP); err == nil {
					joined = true
				}
			}
			if !joined {
				m.Close()
				return nil, fmt.Errorf("cluster: node %d joining: %w", rank, err)
			}
		}
		return m, nil
	}
	m.wire()
	return m, nil
}

// injectTag scopes fabric/exchange parameters to the machine.
func injectTag(methods []core.MethodConfig, tag string) []core.MethodConfig {
	out := make([]core.MethodConfig, len(methods))
	for i, mc := range methods {
		out[i] = mc
		if key, ok := fabricMethods[mc.Name]; ok {
			p := mc.Params
			if p == nil {
				p = transport.Params{}
			} else {
				p = p.Clone()
			}
			if _, set := p[key]; !set {
				p[key] = tag
			}
			out[i].Params = p
		}
	}
	return out
}

// wire registers every node's descriptor table with every other node.
func (m *Machine) wire() {
	for _, c := range m.contexts {
		t := c.AdvertisedTable()
		for _, other := range m.contexts {
			if other != c {
				other.RegisterPeerTable(t)
			}
		}
	}
}

// Tag reports the machine's fabric tag.
func (m *Machine) Tag() string { return m.tag }

// Size reports the number of nodes.
func (m *Machine) Size() int { return len(m.contexts) }

// Context returns the context at the given rank.
func (m *Machine) Context(rank int) *core.Context { return m.contexts[rank] }

// Node returns the gossip agent at the given rank (nil on static machines).
func (m *Machine) Node(rank int) *Node {
	if m.nodes == nil {
		return nil
	}
	return m.nodes[rank]
}

// Settle drives gossip to convergence on a dynamic machine: each round Steps
// every live agent and polls every context until deliveries quiesce, up to
// maxRounds. It returns the number of rounds taken and whether every live
// agent's registry fingerprint agreed (length included) when it stopped.
// Static machines are vacuously settled.
func (m *Machine) Settle(maxRounds int) (rounds int, ok bool) {
	if m.nodes == nil {
		return 0, true
	}
	return Settle(m.nodes, m.contexts, maxRounds)
}

// Ranks lists the ranks whose contexts are in the named partition.
func (m *Machine) Ranks(partition string) []int {
	var out []int
	for i, c := range m.contexts {
		if c.Partition() == partition {
			out = append(out, i)
		}
	}
	return out
}

// ConfigureForwarding designates the node at forwarderRank as the forwarding
// processor for the given method within its partition: every other node in
// that partition advertises the forwarder's address for that method, so
// external senders reach the forwarder, which relays inward over the
// partition's fast method. Nodes in other partitions (and the forwarder's
// own peer-table view) are updated accordingly.
func (m *Machine) ConfigureForwarding(forwarderRank int, method string) error {
	if forwarderRank < 0 || forwarderRank >= len(m.contexts) {
		return fmt.Errorf("cluster: bad forwarder rank %d", forwarderRank)
	}
	fwd := m.contexts[forwarderRank]
	fwdDesc, ok := fwd.AdvertisedTable().Find(method)
	if !ok {
		return fmt.Errorf("cluster: forwarder (rank %d) does not support method %q", forwarderRank, method)
	}
	fwd.EnableForwarding()
	partition := fwd.Partition()
	for rank, c := range m.contexts {
		if rank == forwarderRank || c.Partition() != partition {
			continue
		}
		table := c.AdvertisedTable()
		if !core.RewriteForForwarder(table, method, fwdDesc) {
			entry := fwdDesc.Clone()
			entry.Context = c.ID()
			table.Add(entry)
		}
		c.SetAdvertisedTable(table)
		// Propagate the rewritten table to everyone except the forwarder,
		// which must keep the member's direct (fast-method) route.
		for otherRank, other := range m.contexts {
			if otherRank == forwarderRank || other == c {
				continue
			}
			other.RegisterPeerTable(table)
		}
	}
	return nil
}

// StartPollers launches a background poller on every node, returning a stop
// function.
func (m *Machine) StartPollers(idle time.Duration) (stop func()) {
	stops := make([]func(), len(m.contexts))
	for i, c := range m.contexts {
		stops[i] = c.StartPoller(idle)
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// Run invokes f concurrently for every rank and waits for all to return,
// collecting the first error.
func (m *Machine) Run(f func(rank int, ctx *core.Context) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(m.contexts))
	for rank, ctx := range m.contexts {
		wg.Add(1)
		go func(rank int, ctx *core.Context) {
			defer wg.Done()
			errs[rank] = f(rank, ctx)
		}(rank, ctx)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: rank %d: %w", rank, err)
		}
	}
	return nil
}

// Close shuts every context down.
func (m *Machine) Close() {
	for _, c := range m.contexts {
		if c != nil {
			c.Close()
		}
	}
}

// Uniform returns a Config with n identical nodes in one partition.
func Uniform(n int, partition string, methods ...core.MethodConfig) Config {
	nodes := make([]NodeSpec, n)
	for i := range nodes {
		nodes[i] = NodeSpec{Partition: partition, Methods: cloneMethodConfigs(methods)}
	}
	return Config{Nodes: nodes}
}

// TwoPartition returns a Config mirroring the paper's case-study layout:
// nA nodes in partition pA and nB nodes in partition pB, all with the same
// method list.
func TwoPartition(nA int, pA string, nB int, pB string, methods ...core.MethodConfig) Config {
	nodes := make([]NodeSpec, 0, nA+nB)
	for i := 0; i < nA; i++ {
		nodes = append(nodes, NodeSpec{Partition: pA, Methods: cloneMethodConfigs(methods)})
	}
	for i := 0; i < nB; i++ {
		nodes = append(nodes, NodeSpec{Partition: pB, Methods: cloneMethodConfigs(methods)})
	}
	return Config{Nodes: nodes}
}

func cloneMethodConfigs(in []core.MethodConfig) []core.MethodConfig {
	out := make([]core.MethodConfig, len(in))
	for i, mc := range in {
		out[i] = mc
		if mc.Params != nil {
			out[i].Params = mc.Params.Clone()
		}
	}
	return out
}
