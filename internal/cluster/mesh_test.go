package cluster

import (
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/core"
)

// meshTopology ranks for the two-relay-hop tests: a sender in partition pA
// that speaks only mpl, two interchangeable forwarders in pA bridging to wan,
// one forwarder in pB bridging wan back to pB's mpl, and a receiver in pB
// that speaks only mpl. Sender and receiver share no applicable method: every
// frame between them must cross two relays (three transport hops).
const (
	rankSender = 0
	rankRelayA = 1
	rankRelayB = 2
	rankBridge = 3
	rankDest   = 4
)

func meshConfig() Config {
	relay := []core.MethodConfig{fastMPL(), fastWAN()}
	return Config{
		Nodes: []NodeSpec{
			{Partition: "pA", Methods: []core.MethodConfig{fastMPL()}},
			{Partition: "pA", Methods: relay, Forwarder: true},
			{Partition: "pA", Methods: relay, Forwarder: true},
			{Partition: "pB", Methods: []core.MethodConfig{fastMPL(), fastWAN()}, Forwarder: true},
			{Partition: "pB", Methods: []core.MethodConfig{fastMPL()}},
		},
		Dynamic: &NodeConfig{Mesh: true, Fanout: 8},
	}
}

// liteStartpoint builds a lightweight startpoint at `from` addressing a fresh
// endpoint on `to` whose handler records payloads into got. Lightweight
// startpoints resolve through peer tables, so they follow mesh routes.
func liteStartpoint(t *testing.T, to, from *core.Context, got *[]string) *core.Startpoint {
	t.Helper()
	ep := to.NewEndpoint(core.WithHandler(func(_ *core.Endpoint, b *buffer.Buffer) {
		*got = append(*got, b.String())
	}))
	b := buffer.New(64)
	ep.NewStartpoint().EncodeLite(b)
	dec, err := buffer.FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := from.DecodeStartpoint(dec)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// pollAll sweeps every non-nil context until pred holds (frames traverse one
// hop per sweep) or the deadline passes.
func pollAll(ctxs []*core.Context, pred func() bool, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for !pred() {
		if time.Now().After(deadline) {
			return false
		}
		for _, c := range ctxs {
			if c != nil {
				c.Poll()
			}
		}
	}
	return true
}

func TestMeshTwoHopRoundTrip(t *testing.T) {
	m := dynMachine(t, meshConfig(), 60)
	ctxs := make([]*core.Context, m.Size())
	for i := range ctxs {
		ctxs[i] = m.Context(i)
	}
	sender, dest := m.Context(rankSender), m.Context(rankDest)

	// The computed route from sender to dest must go through one of the pA
	// relays — there is no direct method and no single-relay path.
	via := m.Node(rankSender).RouteVia(dest.ID())
	if via != m.Context(rankRelayA).ID() && via != m.Context(rankRelayB).ID() {
		t.Fatalf("sender routes to dest via %d, want relay %d or %d",
			via, m.Context(rankRelayA).ID(), m.Context(rankRelayB).ID())
	}
	if hop2 := m.Node(rankRelayA).RouteVia(dest.ID()); hop2 != m.Context(rankBridge).ID() {
		t.Fatalf("relay routes to dest via %d, want bridge %d", hop2, m.Context(rankBridge).ID())
	}

	// Request across the mesh…
	var inbox []string
	req := liteStartpoint(t, dest, sender, &inbox)
	b := buffer.New(32)
	b.PutString("ping")
	if err := req.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if !pollAll(ctxs, func() bool { return len(inbox) == 1 }, 5*time.Second) {
		t.Fatalf("request not delivered; inbox=%v", inbox)
	}
	if inbox[0] != "ping" {
		t.Fatalf("payload = %q", inbox[0])
	}
	// …and a reply back the other way (routes are symmetric by construction).
	var replies []string
	rep := liteStartpoint(t, sender, dest, &replies)
	rb := buffer.New(32)
	rb.PutString("pong")
	if err := rep.RSR("", rb); err != nil {
		t.Fatal(err)
	}
	if !pollAll(ctxs, func() bool { return len(replies) == 1 }, 5*time.Second) {
		t.Fatalf("reply not delivered; replies=%v", replies)
	}

	// Both directions crossed two relays: the bridge relayed both frames, and
	// the pA side relayed both (possibly split between the two relays).
	if got := m.Context(rankBridge).Stats().Get("forward.relayed"); got < 2 {
		t.Errorf("bridge forward.relayed = %d, want >= 2", got)
	}
	pa := m.Context(rankRelayA).Stats().Get("forward.relayed") +
		m.Context(rankRelayB).Stats().Get("forward.relayed")
	if pa < 2 {
		t.Errorf("pA relays forward.relayed = %d, want >= 2", pa)
	}
	// The hop budget never ran out and no frame looped.
	for r := 0; r < m.Size(); r++ {
		if n := m.Context(r).Stats().Get("forward.ttl_exhausted"); n != 0 {
			t.Errorf("rank %d forward.ttl_exhausted = %d", r, n)
		}
		if n := m.Context(r).Stats().Get("forward.loop_dropped"); n != 0 {
			t.Errorf("rank %d forward.loop_dropped = %d", r, n)
		}
	}
}

func TestMeshRouteHealsAfterRelayDeath(t *testing.T) {
	m := dynMachine(t, meshConfig(), 60)
	sender, dest := m.Context(rankSender), m.Context(rankDest)

	victimRank := rankRelayA
	if m.Node(rankSender).RouteVia(dest.ID()) == m.Context(rankRelayB).ID() {
		victimRank = rankRelayB
	}
	survivorRank := rankRelayA + rankRelayB - victimRank
	victimID := m.Context(victimRank).ID()

	// A live lightweight link over the doomed route.
	var inbox []string
	sp := liteStartpoint(t, dest, sender, &inbox)
	ctxs := make([]*core.Context, 0, m.Size())
	for i := 0; i < m.Size(); i++ {
		if i != victimRank {
			ctxs = append(ctxs, m.Context(i))
		}
	}
	b := buffer.New(32)
	b.PutString("before")
	if err := sp.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if !pollAll(append(ctxs, m.Context(victimRank)), func() bool { return len(inbox) == 1 }, 5*time.Second) {
		t.Fatal("pre-kill request not delivered")
	}

	// Kill the relay (crash — no tombstone of its own). The survivors' gossip
	// sends to it fail, the failure detector marks it suspect, and route
	// recomputation swings the path to the surviving relay.
	m.Context(victimRank).Close()
	nodes := make([]*Node, 0, m.Size()-1)
	for i := 0; i < m.Size(); i++ {
		if i != victimRank {
			nodes = append(nodes, m.Node(i))
		}
	}
	if rounds, ok := Settle(nodes, ctxs, 80); !ok {
		t.Fatalf("survivors did not reconverge after relay death (%d rounds)", rounds)
	}
	if via := m.Node(rankSender).RouteVia(dest.ID()); via != m.Context(survivorRank).ID() {
		t.Fatalf("healed route via %d, want survivor %d (victim %d)", via, m.Context(survivorRank).ID(), victimID)
	}

	// The same startpoint delivers again over the healed route.
	b2 := buffer.New(32)
	b2.PutString("after")
	if err := sp.RSR("", b2); err != nil {
		t.Fatal(err)
	}
	if !pollAll(ctxs, func() bool { return len(inbox) == 2 }, 5*time.Second) {
		t.Fatalf("post-heal request not delivered; inbox=%v", inbox)
	}
	if inbox[1] != "after" {
		t.Fatalf("post-heal payload = %q", inbox[1])
	}
	if got := m.Context(survivorRank).Stats().Get("forward.relayed"); got < 1 {
		t.Errorf("survivor forward.relayed = %d, want >= 1", got)
	}
}

// TestMeshNoPathFailsFast: with every forwarder gone there is no path between
// the partitions; the sender's route is removed and sends fail immediately
// with ErrNoTable instead of spraying a dead relay.
func TestMeshRouteRemovedWhenNoPath(t *testing.T) {
	m := dynMachine(t, meshConfig(), 60)
	sender, dest := m.Context(rankSender), m.Context(rankDest)
	if via := m.Node(rankSender).RouteVia(dest.ID()); via == 0 {
		t.Fatal("no initial mesh route")
	}

	// All three forwarders leave gracefully.
	for _, r := range []int{rankRelayA, rankRelayB, rankBridge} {
		m.Node(r).Leave()
	}
	nodes := []*Node{m.Node(rankSender), m.Node(rankDest)}
	ctxs := make([]*core.Context, m.Size())
	for i := range ctxs {
		ctxs[i] = m.Context(i)
	}
	if rounds, ok := Settle(nodes, ctxs, 80); !ok {
		t.Fatalf("no reconvergence after forwarders left (%d rounds)", rounds)
	}
	if via := m.Node(rankSender).RouteVia(dest.ID()); via != 0 {
		t.Fatalf("route still installed via %d after all forwarders left", via)
	}
	if sender.PeerTable(dest.ID()) != nil {
		t.Fatal("sender still holds a peer table for the unreachable dest")
	}
	var inbox []string
	sp := liteStartpoint(t, dest, sender, &inbox)
	if err := sp.RSR("", buffer.New(8)); err == nil {
		t.Fatal("send with no path succeeded")
	}
}

// TestRelayExtTTL: a frame whose hop budget is too small for the path is
// dropped at the relay with the ttl_exhausted counter, not delivered and not
// looped.
func TestRelayExtTTLExhaustion(t *testing.T) {
	cfg := meshConfig()
	cfg.RelayTTL = 2 // one hop short of what the two-relay path needs
	m := dynMachine(t, cfg, 60)
	ctxs := make([]*core.Context, m.Size())
	for i := range ctxs {
		ctxs[i] = m.Context(i)
	}

	var inbox []string
	sp := liteStartpoint(t, m.Context(rankDest), m.Context(rankSender), &inbox)
	if err := sp.RSR("", buffer.New(8)); err != nil {
		t.Fatal(err)
	}
	exhausted := func() uint64 {
		var n uint64
		for _, c := range ctxs {
			n += c.Stats().Get("forward.ttl_exhausted")
		}
		return n
	}
	if !pollAll(ctxs, func() bool { return exhausted() >= 1 }, 5*time.Second) {
		t.Fatal("no ttl exhaustion observed")
	}
	if len(inbox) != 0 {
		t.Fatalf("frame delivered despite exhausted hop budget: %v", inbox)
	}
}
