package cluster

import (
	"container/heap"
	"math"

	"nexus/internal/core"
	"nexus/internal/names"
	"nexus/internal/transport"
)

// This file generalises the single-forwarder relay of forward.go into a
// cost-aware multi-hop mesh. Every gossip record carries the origin's
// descriptor table; forwarders advertise willingness to relay. From that
// shared state each node independently computes, per unreachable
// destination, the cheapest path through forwarders — edges exist where the
// two tables share an applicable method (same method, same fabric, and the
// method's advertised scope rule holds), weighted by the advertised
// per-message cost refined with locally observed send/poll costs for the
// first hop. The chosen route installs as a rewritten peer table
// (core.NewRelayRoute): entries name the final destination but dial the
// next hop, so the existing forwarding recursion carries frames hop by hop,
// with the wire relay extension spending hop budget and suppressing loops.
//
// Healing is the composition of two existing mechanisms: the failure
// detector (gossip.go) marks a dead relay suspect and then tombstones it,
// and any registry or suspicion change recomputes routes — so the next send
// re-selects against a table pointing at the surviving relay, exactly the
// way a tripped circuit re-selects among direct descriptors.

// routeState remembers one installed mesh route: the next hop and the hop
// record's version it was computed from, to skip no-op re-installs.
type routeState struct {
	via    transport.ContextID
	viaSeq uint64
}

// descApplicable reports whether a context holding descriptor `from` can
// dial descriptor `to`, using only advertised attributes — the third-party
// mirror of Module.Applicable, for endpoints the computing node owns
// neither of. Methods must match; fabrics (when advertised) must match; and
// the target's advertised scope rule is applied.
func descApplicable(from, to transport.Descriptor) bool {
	if from.Method != to.Method {
		return false
	}
	if from.Method == "local" {
		// local delivers only within one context; registry tables always
		// describe distinct contexts, so it never forms a mesh edge.
		return false
	}
	if from.Attr(transport.AttrRelay) != "" || to.Attr(transport.AttrRelay) != "" {
		return false // route entries are virtual, not physical links
	}
	// Shared-medium attributes must agree (simnet methods advertise fabric,
	// inproc advertises exchange; both empty for point-to-point transports).
	if from.Attr("fabric") != to.Attr("fabric") || from.Attr("exchange") != to.Attr("exchange") {
		return false
	}
	switch to.Attr("scope") {
	case "partition":
		return from.Attr("process") == to.Attr("process") &&
			from.Attr("partition") == to.Attr("partition")
	case "process":
		return from.Attr("process") == to.Attr("process")
	default:
		// No advertised scope: methods that name a hosting process (inproc)
		// require it to match; anything else is taken as globally routable.
		if p := to.Attr("process"); p != "" || from.Attr("process") != "" {
			return from.Attr("process") == p
		}
		return true
	}
}

// edgeBetween reports whether a context advertising table a can reach one
// advertising table b, with the cheapest advertised cost among applicable
// method pairs and the tightest message-size limit of the chosen pair.
// Cost floors at 1 so hop count still matters when nothing is advertised.
func edgeBetween(a, b *transport.Table) (cost int64, maxMsg int, ok bool) {
	if a == nil || b == nil {
		return 0, 0, false
	}
	cost = math.MaxInt64
	for _, da := range a.Entries {
		for _, db := range b.Entries {
			if !descApplicable(da, db) {
				continue
			}
			c := db.Cost()
			if c <= 0 {
				c = 1
			}
			if c < cost {
				cost = c
				maxMsg = db.MaxMessage()
				if am := da.MaxMessage(); am > 0 && (maxMsg == 0 || am < maxMsg) {
					maxMsg = am
				}
				ok = true
			}
		}
	}
	if !ok {
		return 0, 0, false
	}
	return cost, maxMsg, true
}

// meshNode is one vertex of the route graph.
type meshNode struct {
	rec   names.Record
	table *transport.Table
}

// pqItem / pq: a minimal priority queue for Dijkstra.
type pqItem struct {
	idx  int
	dist int64
}
type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// recomputeRoutesLocked rebuilds this node's mesh routes from the current
// registry: for every live destination not directly reachable, the cheapest
// forwarder path is installed as a relay route; destinations that became
// directly reachable get their direct table restored; destinations with no
// path lose their route (senders then fail fast rather than spray a dead
// relay). Suspect peers are excluded as intermediate hops, which is what
// heals a route whose relay died before the tombstone lands. Caller holds
// n.mu.
func (n *Node) recomputeRoutesLocked() {
	self := meshNode{rec: n.self, table: n.ctx.AdvertisedTable()}
	live := n.reg.Live()
	nodes := make([]meshNode, 0, len(live)+1)
	index := make(map[transport.ContextID]int, len(live)+1)
	nodes = append(nodes, self)
	index[n.self.Origin] = 0
	for _, rec := range live {
		if rec.Origin == n.self.Origin {
			continue
		}
		index[rec.Origin] = len(nodes)
		nodes = append(nodes, meshNode{rec: rec, table: rec.Table})
	}

	// Dijkstra from self. Intermediate hops must be forwarders and not
	// suspect; destinations may be anything live.
	const inf = int64(math.MaxInt64)
	dist := make([]int64, len(nodes))
	prev := make([]int, len(nodes))
	bottleneck := make([]int, len(nodes)) // tightest maxMsg along the path (0 = unlimited)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[0] = 0
	q := &pq{{idx: 0, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.idx
		if it.dist > dist[u] {
			continue
		}
		un := nodes[u]
		// Only self and healthy forwarders extend paths.
		if u != 0 && (!un.rec.Forwarder || n.suspects[un.rec.Origin]) {
			continue
		}
		for v := range nodes {
			if v == u || v == 0 {
				continue
			}
			cost, mm, ok := edgeBetween(un.table, nodes[v].table)
			if !ok {
				continue
			}
			nd := dist[u] + cost
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				bn := bottleneck[u]
				if mm > 0 && (bn == 0 || mm < bn) {
					bn = mm
				}
				bottleneck[v] = bn
				heap.Push(q, pqItem{idx: v, dist: nd})
			}
		}
	}

	for v := 1; v < len(nodes); v++ {
		dest := nodes[v].rec.Origin
		if _, _, direct := edgeBetween(self.table, nodes[v].table); direct {
			// Reachable in one hop: any installed route yields to the direct
			// table (re-registered so the health generation moves and
			// startpoints drop the routed binding).
			if _, had := n.routed[dest]; had {
				delete(n.routed, dest)
				if !n.cfg.DisableAutoRegister && nodes[v].table != nil {
					n.ctx.RefreshPeerTable(nodes[v].table)
				}
				n.ctx.Stats().Counter("cluster.routes.removed").Inc()
			}
			continue
		}
		if dist[v] == inf || prev[v] <= 0 {
			// No path (directly unreachable and no forwarder chain). Drop any
			// stale route so senders fail fast instead of spraying a dead hop.
			if _, had := n.routed[dest]; had {
				delete(n.routed, dest)
				if !n.cfg.DisableAutoRegister {
					n.ctx.RemovePeerTable(dest)
				}
				n.ctx.Stats().Counter("cluster.routes.removed").Inc()
			}
			continue
		}
		// Walk back to the first hop after self.
		hop := v
		for prev[hop] != 0 {
			hop = prev[hop]
		}
		via := nodes[hop].rec
		cur, had := n.routed[dest]
		if had && cur.via == via.Origin && cur.viaSeq == via.Seq {
			continue
		}
		if n.cfg.DisableAutoRegister {
			n.routed[dest] = routeState{via: via.Origin, viaSeq: via.Seq}
			continue
		}
		route := core.NewRelayRoute(dest, via.Origin, via.Table, bottleneck[v])
		if route.Len() == 0 {
			continue
		}
		n.ctx.RefreshPeerTable(route)
		n.routed[dest] = routeState{via: via.Origin, viaSeq: via.Seq}
		n.ctx.Stats().Counter("cluster.routes.installed").Inc()
	}
}

// RouteVia reports the installed mesh next hop for a destination (0 when the
// destination is directly reachable or unknown).
func (n *Node) RouteVia(dest transport.ContextID) transport.ContextID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.routed[dest].via
}

// SuspectPeer marks a peer suspect by hand — the hook for callers that
// observe a failure through their own traffic (an application send whose
// circuit tripped) rather than through gossip. Routes recompute on the next
// Step.
func (n *Node) SuspectPeer(peer transport.ContextID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.suspects[peer] {
		n.suspects[peer] = true
		n.routesDirty = true
		n.ctx.Stats().Counter("cluster.peer.suspect").Inc()
	}
}
