// Package names implements a small name service for communication links:
// startpoints registered under string names, resolvable from any context
// that can reach the server.
//
// The paper closes with "further work is also required on the
// representation, discovery, and use of configuration data". This package is
// that mechanism in its simplest useful form, and a demonstration of the
// architecture eating its own dog food: the service's protocol is nothing
// but RSRs, the names map to encoded startpoints (which carry their own
// descriptor tables), and a resolved startpoint works immediately in the
// resolving context because method selection re-runs there. Registering a
// name therefore publishes not just *where* an endpoint is but *every way to
// reach it*, and resolution composes with manual method control like any
// other received startpoint.
package names

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/core"
)

// Handler names used by the service protocol.
const (
	handlerRegister = "names.register"
	handlerResolve  = "names.resolve"
	handlerList     = "names.list"
	handlerReply    = "names.reply"
)

// Reply status codes.
const (
	statusOK       = 0
	statusNotFound = 1
	statusExists   = 2
)

// Errors returned by client operations.
var (
	// ErrNotFound reports resolution of an unregistered name.
	ErrNotFound = errors.New("names: name not found")
	// ErrExists reports registration of an already-taken name.
	ErrExists = errors.New("names: name already registered")
	// ErrTimeout reports a request the server did not answer in time. It
	// wraps the stack-wide deadline sentinel, so errors.Is matches it
	// against core.ErrDeadline and context.DeadlineExceeded too.
	ErrTimeout = fmt.Errorf("names: request timed out: %w", core.ErrDeadline)
)

// Server is a name service hosted in a context.
type Server struct {
	ctx *core.Context
	ep  *core.Endpoint

	mu      sync.Mutex
	entries map[string][]byte // name -> encoded startpoint
}

// NewServer installs a name service in the context and returns it. The
// server answers requests whenever the hosting context polls.
func NewServer(ctx *core.Context) *Server {
	s := &Server{ctx: ctx, entries: make(map[string][]byte)}
	ctx.RegisterHandler(handlerRegister, s.onRegister)
	ctx.RegisterHandler(handlerResolve, s.onResolve)
	ctx.RegisterHandler(handlerList, s.onList)
	s.ep = ctx.NewEndpoint()
	return s
}

// Startpoint returns a startpoint for the service, to hand to clients.
func (s *Server) Startpoint() *core.Startpoint { return s.ep.NewStartpoint() }

// Len reports the number of registered names.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// onRegister: [name string][seq][encoded reply sp][encoded target sp]
func (s *Server) onRegister(ep *core.Endpoint, b *buffer.Buffer) {
	name := b.String()
	reply, seq, err := s.decodeReply(b)
	if err != nil {
		return
	}
	target := b.BytesValue()
	if b.Err() != nil || name == "" {
		s.respond(reply, seq, statusNotFound, nil)
		return
	}
	s.mu.Lock()
	_, dup := s.entries[name]
	if !dup {
		s.entries[name] = target
	}
	s.mu.Unlock()
	if dup {
		s.respond(reply, seq, statusExists, nil)
		return
	}
	s.respond(reply, seq, statusOK, nil)
}

// onResolve: [name string][seq][encoded reply sp]
func (s *Server) onResolve(ep *core.Endpoint, b *buffer.Buffer) {
	name := b.String()
	reply, seq, err := s.decodeReply(b)
	if err != nil {
		return
	}
	s.mu.Lock()
	enc, ok := s.entries[name]
	s.mu.Unlock()
	if !ok {
		s.respond(reply, seq, statusNotFound, nil)
		return
	}
	s.respond(reply, seq, statusOK, func(out *buffer.Buffer) {
		out.PutBytes(enc)
	})
}

// onList: [seq][encoded reply sp]
func (s *Server) onList(ep *core.Endpoint, b *buffer.Buffer) {
	reply, seq, err := s.decodeReply(b)
	if err != nil {
		return
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.entries))
	for n := range s.entries {
		names = append(names, n)
	}
	s.mu.Unlock()
	s.respond(reply, seq, statusOK, func(out *buffer.Buffer) {
		out.PutUint32(uint32(len(names)))
		for _, n := range names {
			out.PutString(n)
		}
	})
}

// decodeReply unpacks the request's sequence number and reply startpoint.
func (s *Server) decodeReply(b *buffer.Buffer) (*core.Startpoint, uint32, error) {
	seq := b.Uint32()
	sp, err := s.ctx.DecodeStartpoint(b)
	if err != nil {
		return nil, 0, err
	}
	return sp, seq, nil
}

func (s *Server) respond(reply *core.Startpoint, seq uint32, status byte, fill func(*buffer.Buffer)) {
	out := buffer.New(64)
	out.PutUint32(seq)
	out.PutByte(status)
	if fill != nil {
		fill(out)
	}
	_ = reply.RSR(handlerReply, out)
	reply.Close()
}

// Client talks to a name server from another context.
type Client struct {
	ctx     *core.Context
	server  *core.Startpoint
	ep      *core.Endpoint
	timeout time.Duration

	mu      sync.Mutex
	nextSeq uint32
	replies map[uint32]*buffer.Buffer
}

// NewClient builds a client in ctx for the server reachable via the given
// startpoint (typically obtained out of band or from a parent context).
func NewClient(ctx *core.Context, server *core.Startpoint) *Client {
	c := &Client{
		ctx:     ctx,
		server:  server,
		timeout: 10 * time.Second,
		replies: make(map[uint32]*buffer.Buffer),
	}
	ctx.RegisterHandler(handlerReply, func(ep *core.Endpoint, b *buffer.Buffer) {
		seq := b.Uint32()
		if b.Err() != nil {
			return
		}
		c.mu.Lock()
		// The handler's buffer borrows the delivered frame, whose storage is
		// recycled after the handler returns; the parked reply must own its
		// bytes or a later send scribbles over it.
		c.replies[seq] = b.Clone()
		c.mu.Unlock()
	})
	c.ep = ctx.NewEndpoint()
	return c
}

// SetTimeout adjusts the per-request timeout.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Register publishes a startpoint under the given name.
func (c *Client) Register(name string, sp *core.Startpoint) error {
	enc := buffer.New(256)
	sp.Encode(enc)
	encoded := enc.Encode() // keep the format tag: the resolver re-decodes it
	reply, err := c.request(handlerRegister, func(b *buffer.Buffer) {
		b.PutString(name)
	}, func(b *buffer.Buffer) {
		b.PutBytes(encoded)
	})
	if err != nil {
		return err
	}
	switch status := reply.Byte(); status {
	case statusOK:
		return nil
	case statusExists:
		return fmt.Errorf("%w: %q", ErrExists, name)
	default:
		return fmt.Errorf("names: register %q failed (status %d)", name, status)
	}
}

// Resolve returns a startpoint for the named link, usable immediately in the
// client's context.
func (c *Client) Resolve(name string) (*core.Startpoint, error) {
	reply, err := c.request(handlerResolve, func(b *buffer.Buffer) {
		b.PutString(name)
	}, nil)
	if err != nil {
		return nil, err
	}
	if status := reply.Byte(); status != statusOK {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	enc := reply.BytesValue()
	if err := reply.Err(); err != nil {
		return nil, fmt.Errorf("names: corrupt resolve reply: %w", err)
	}
	dec, err := buffer.FromBytes(enc)
	if err != nil {
		return nil, fmt.Errorf("names: corrupt entry: %w", err)
	}
	return c.ctx.DecodeStartpoint(dec)
}

// List returns all registered names.
func (c *Client) List() ([]string, error) {
	reply, err := c.request(handlerList, nil, nil)
	if err != nil {
		return nil, err
	}
	if status := reply.Byte(); status != statusOK {
		return nil, fmt.Errorf("names: list failed (status %d)", status)
	}
	n := int(reply.Uint32())
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, reply.String())
	}
	if err := reply.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// request sends one RSR [pre][seq][reply sp][post] and polls for the reply.
func (c *Client) request(handler string, pre, post func(*buffer.Buffer)) (*buffer.Buffer, error) {
	c.mu.Lock()
	c.nextSeq++
	seq := c.nextSeq
	c.mu.Unlock()

	b := buffer.New(512)
	if pre != nil {
		pre(b)
	}
	b.PutUint32(seq)
	c.ep.NewStartpoint().Encode(b)
	if post != nil {
		post(b)
	}
	if err := c.server.RSR(handler, b); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.timeout)
	for {
		c.mu.Lock()
		reply, ok := c.replies[seq]
		if ok {
			delete(c.replies, seq)
		}
		c.mu.Unlock()
		if ok {
			return reply, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w (%s)", ErrTimeout, handler)
		}
		c.ctx.Poll()
	}
}
