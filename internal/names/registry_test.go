package names

import (
	"bytes"
	"math"
	"testing"

	"nexus/internal/buffer"
	"nexus/internal/transport"
)

func tbl(method string, ctx uint64, attrs map[string]string) *transport.Table {
	return transport.NewTable(transport.Descriptor{
		Method: method, Context: transport.ContextID(ctx), Attrs: attrs,
	})
}

func TestRegistryMergeVersions(t *testing.T) {
	r := NewRegistry()
	if !r.Merge(Record{Origin: 1, Seq: 1, Table: tbl("mpl", 1, nil)}) {
		t.Fatal("first record not applied")
	}
	g := r.Gen()
	if r.Merge(Record{Origin: 1, Seq: 1, Table: tbl("mpl", 1, nil)}) {
		t.Error("duplicate record applied")
	}
	if r.Gen() != g {
		t.Error("generation moved on a no-op merge")
	}
	if r.Merge(Record{Origin: 1, Seq: 0, Table: tbl("wan", 1, nil)}) {
		t.Error("stale record applied")
	}
	if !r.Merge(Record{Origin: 1, Seq: 2, Table: tbl("wan", 1, nil)}) {
		t.Error("newer record not applied")
	}
	if rec, _ := r.Get(1); rec.Seq != 2 || rec.Table.Entries[0].Method != "wan" {
		t.Errorf("registry holds %+v after newer merge", rec)
	}
	// The overtaken version stays dead.
	if r.Merge(Record{Origin: 1, Seq: 1, Table: tbl("atm", 1, nil)}) {
		t.Error("resurrected stale record")
	}
}

// TestRegistryTombstoneEdgeCases covers the leave/crash protocol: a
// tombstone beats a live record at the same version, loses to a higher one,
// and a re-registering context must adopt a sequence above its tombstone.
func TestRegistryTombstoneEdgeCases(t *testing.T) {
	r := NewRegistry()
	r.Merge(Record{Origin: 5, Seq: 3, Table: tbl("mpl", 5, nil)})

	// Tombstone at the same seq wins (leave raced with a refresh).
	if !r.Merge(Record{Origin: 5, Seq: 3, Tombstone: true}) {
		t.Fatal("same-seq tombstone not applied")
	}
	// And the live record at that seq cannot come back.
	if r.Merge(Record{Origin: 5, Seq: 3, Table: tbl("mpl", 5, nil)}) {
		t.Error("live record overwrote same-seq tombstone")
	}
	if len(r.Live()) != 0 {
		t.Errorf("Live() = %v after tombstone", r.Live())
	}

	// Re-register after tombstone: only a higher seq revives the origin.
	if r.Merge(Record{Origin: 5, Seq: 2, Table: tbl("mpl", 5, nil)}) {
		t.Error("stale re-register applied over tombstone")
	}
	if !r.Merge(Record{Origin: 5, Seq: 4, Table: tbl("mpl", 5, nil)}) {
		t.Fatal("re-register after tombstone not applied")
	}
	if rec, _ := r.Get(5); rec.Tombstone || rec.Seq != 4 {
		t.Errorf("revived record = %+v", rec)
	}
	if len(r.Live()) != 1 {
		t.Errorf("Live() = %v after revive", r.Live())
	}
}

// TestRegistryConcurrentJoinTie pins the clock-free tie-break: two contexts
// concurrently publishing the same origin at the same sequence converge to
// the same winner on every registry, in either merge order.
func TestRegistryConcurrentJoinTie(t *testing.T) {
	a := Record{Origin: 9, Seq: 1, Table: tbl("mpl", 9, map[string]string{"addr": "1"})}
	b := Record{Origin: 9, Seq: 1, Table: tbl("mpl", 9, map[string]string{"addr": "2"})}

	r1 := NewRegistry()
	r1.Merge(a)
	r1.Merge(b)
	r2 := NewRegistry()
	r2.Merge(b)
	r2.Merge(a)
	if !r1.Equal(r2) {
		t.Fatalf("tie resolved differently: %+v vs %+v", r1.Snapshot(), r2.Snapshot())
	}
	// Exactly one of the two merges of the loser is a no-op; the winner is
	// stable under re-merge of either.
	win, _ := r1.Get(9)
	if r1.Merge(a) || r1.Merge(b) {
		t.Error("tie winner not stable under re-merge")
	}
	if got, _ := r1.Get(9); !bytes.Equal(got.canonical(), win.canonical()) {
		t.Error("winner changed after re-merge")
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Origin: 1, Seq: 7, Forwarder: true, Partition: "p0", GossipEP: 3,
			Table: tbl("mpl", 1, map[string]string{"addr": "9", "fabric": "f"})},
		{Origin: 2, Seq: 1, Tombstone: true, Partition: "p1"},
	}
	b := buffer.New(256)
	EncodeRecords(b, recs)
	got, err := DecodeRecords(b)
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d records", len(got))
	}
	for i := range recs {
		if !bytes.Equal(got[i].canonical(), recs[i].canonical()) {
			t.Errorf("record %d did not round-trip: %+v vs %+v", i, got[i], recs[i])
		}
	}

	// Truncated and hostile-count encodings fail cleanly.
	enc := buffer.New(256)
	EncodeRecords(enc, recs)
	raw := enc.Bytes()
	for cut := 1; cut < len(raw); cut += 7 {
		short := buffer.New(0)
		short.PutRaw(raw[:cut])
		if _, err := DecodeRecords(short); err == nil && cut < len(raw)-1 {
			// Some prefixes happen to parse as fewer records; the decoder
			// just must not panic or over-allocate.
			continue
		}
	}
	hostile := buffer.New(8)
	hostile.PutUint32(math.MaxUint32)
	if _, err := DecodeRecords(hostile); err == nil {
		t.Error("hostile record count accepted")
	}
}

func TestDigestWindowRotation(t *testing.T) {
	r := NewRegistry()
	for i := uint64(1); i <= 10; i++ {
		r.Merge(Record{Origin: transport.ContextID(i), Seq: 1, Table: tbl("mpl", i, nil)})
	}
	// Unbounded digest: full keyspace window, exhaustive entries.
	d, next := r.Digest(0, 0)
	if len(d.Entries) != 10 || d.Lo != 0 || d.Hi != math.MaxUint64 || next != 0 {
		t.Fatalf("full digest = %+v next=%d", d, next)
	}
	// Bounded digest sweeps the table over successive rounds.
	seen := map[transport.ContextID]bool{}
	idx := 0
	for round := 0; round < 4; round++ {
		d, idx = r.Digest(idx, 4)
		if len(d.Entries) != 4 {
			t.Fatalf("bounded digest has %d entries", len(d.Entries))
		}
		for _, e := range d.Entries {
			if !d.covers(e.Origin) {
				t.Errorf("window [%d,%d] does not cover own entry %d", d.Lo, d.Hi, e.Origin)
			}
			seen[e.Origin] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("4 rounds of limit-4 digests covered %d of 10 origins", len(seen))
	}

	// Digest encoding round-trips.
	b := buffer.New(128)
	d.Encode(b)
	got, err := DecodeDigest(b)
	if err != nil || got.Lo != d.Lo || got.Hi != d.Hi || len(got.Entries) != len(d.Entries) {
		t.Fatalf("digest round-trip: %+v err=%v", got, err)
	}
}

func TestDeltaForPushPull(t *testing.T) {
	newer := NewRegistry()
	older := NewRegistry()
	for i := uint64(1); i <= 5; i++ {
		rec := Record{Origin: transport.ContextID(i), Seq: 2, Table: tbl("mpl", i, nil)}
		newer.Merge(rec)
		if i != 3 { // older lacks origin 3 entirely
			older.Merge(Record{Origin: transport.ContextID(i), Seq: 1, Table: tbl("mpl", i, nil)})
		}
	}
	older.Merge(Record{Origin: 9, Seq: 5, Table: tbl("wan", 9, nil)}) // only older has 9

	d, _ := older.Digest(0, 0)
	delta, wants := newer.DeltaFor(d, 0)
	if len(delta) != 5 {
		t.Errorf("delta = %d records, want 5 (all newer + missing)", len(delta))
	}
	if len(wants) != 1 || wants[0] != 9 {
		t.Errorf("wants = %v, want [9]", wants)
	}
	// Applying the delta plus the answered want-list converges the pair.
	older.MergeAll(delta)
	newer.MergeAll(older.RecordsFor(wants, 0))
	if !older.Equal(newer) {
		t.Fatalf("pair did not converge:\n%+v\n%+v", older.Snapshot(), newer.Snapshot())
	}

	// The delta cap truncates lowest-origins-first, never errors.
	empty := NewRegistry()
	ed, _ := empty.Digest(0, 0)
	capped, _ := newer.DeltaFor(ed, 2)
	if len(capped) != 2 || capped[0].Origin != 1 || capped[1].Origin != 2 {
		t.Errorf("capped delta = %+v", capped)
	}
}

// FuzzGossipMerge is the convergence property under adversarial delivery:
// however a batch of records is reordered, duplicated, or interleaved with
// stale versions, every registry that saw the whole batch holds the same
// table.
func FuzzGossipMerge(f *testing.F) {
	f.Add([]byte{1, 0, 1, 2, 1, 0, 1, 1, 3}, uint8(3))
	f.Add([]byte{5, 5, 5, 5, 0, 0, 0, 0, 9, 9, 1, 2, 3, 4}, uint8(7))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, rot uint8) {
		// Derive a record batch from the fuzz bytes: 3 bytes each pick an
		// origin, a sequence, and a kind (tombstone / table variant).
		var recs []Record
		for i := 0; i+2 < len(data) && len(recs) < 64; i += 3 {
			origin := transport.ContextID(data[i]%8 + 1)
			seq := uint64(data[i+1] % 8)
			kind := data[i+2] % 4
			rec := Record{Origin: origin, Seq: seq, Partition: "p"}
			switch kind {
			case 0:
				rec.Tombstone = true
			default:
				rec.Forwarder = kind == 2
				rec.Table = tbl("mpl", uint64(origin), map[string]string{
					"addr": string(rune('a' + kind)),
				})
			}
			recs = append(recs, rec)
		}

		forward := NewRegistry()
		forward.MergeAll(recs)

		// Reversed order.
		reversed := NewRegistry()
		for i := len(recs) - 1; i >= 0; i-- {
			reversed.Merge(recs[i])
		}

		// Rotated, with every record delivered twice.
		rotated := NewRegistry()
		if n := len(recs); n > 0 {
			r := int(rot) % n
			for i := 0; i < n; i++ {
				rotated.Merge(recs[(i+r)%n])
				rotated.Merge(recs[(i+r)%n])
			}
		}

		if !forward.Equal(reversed) {
			t.Fatalf("forward and reversed delivery diverged:\n%+v\n%+v",
				forward.Snapshot(), reversed.Snapshot())
		}
		if !forward.Equal(rotated) {
			t.Fatalf("forward and rotated+duplicated delivery diverged:\n%+v\n%+v",
				forward.Snapshot(), rotated.Snapshot())
		}

		// Records survive the wire encoding with merge semantics intact.
		b := buffer.New(1024)
		EncodeRecords(b, recs)
		decoded, err := DecodeRecords(b)
		if err != nil {
			t.Fatalf("round-tripping fuzz records: %v", err)
		}
		wired := NewRegistry()
		wired.MergeAll(decoded)
		if !forward.Equal(wired) {
			t.Fatalf("wire round-trip diverged:\n%+v\n%+v", forward.Snapshot(), wired.Snapshot())
		}
	})
}
