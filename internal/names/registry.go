package names

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"nexus/internal/buffer"
	"nexus/internal/transport"
)

// This file grows the name service into a versioned peer/descriptor registry:
// the data structure under cluster-wide anti-entropy gossip. Each live
// context owns exactly one Record, versioned by a per-origin monotonic
// sequence number — no clocks anywhere — and deleted by publishing a
// tombstone under a higher sequence. Two registries that have seen the same
// set of records hold identical tables regardless of the order, duplication,
// or staleness of the deliveries, because Merge is a join on a total order:
// higher sequence wins, a tombstone beats a live record at the same
// sequence, and ties between same-kind records are broken by comparing
// their canonical encodings. That last rule is what makes "two contexts
// concurrently claim the same origin at the same version" converge instead
// of flapping.

// Record is one origin's registry entry: the descriptor table it advertises,
// or a tombstone marking it departed. Tables held by a registry are shared,
// not copied — callers must treat them as immutable.
type Record struct {
	// Origin is the context the record describes; only that context (or a
	// peer declaring it crashed) publishes new versions of it.
	Origin transport.ContextID
	// Seq is the origin's monotonic version counter. It orders the origin's
	// records without any clock: a joining context that finds an older
	// record (or its own tombstone) adopts that sequence plus one.
	Seq uint64
	// Tombstone marks the origin as departed; the table is absent.
	Tombstone bool
	// Forwarder advertises willingness to relay frames for third parties;
	// mesh route computation only routes through forwarders.
	Forwarder bool
	// Partition is the origin's partition tag, for display and diagnostics.
	Partition string
	// GossipEP is the endpoint id of the origin's gossip agent, so any peer
	// that learns the record can address anti-entropy traffic to it.
	GossipEP uint64
	// Table is the origin's advertised descriptor table (nil on tombstones).
	Table *transport.Table
}

// encode packs the record canonically: fixed field order, and the table's
// own deterministic attribute ordering. Equal records encode identically, so
// the encoding doubles as the tie-break comparand and the digest hash input.
func (r Record) encode(b *buffer.Buffer) {
	b.PutUint64(uint64(r.Origin))
	b.PutUint64(r.Seq)
	var flags byte
	if r.Tombstone {
		flags |= 1
	}
	if r.Forwarder {
		flags |= 2
	}
	if r.Table != nil {
		flags |= 4
	}
	b.PutByte(flags)
	b.PutString(r.Partition)
	b.PutUint64(r.GossipEP)
	if r.Table != nil {
		r.Table.Encode(b)
	}
}

// decodeRecord unpacks a record encoded with encode.
func decodeRecord(b *buffer.Buffer) (Record, error) {
	r := Record{
		Origin: transport.ContextID(b.Uint64()),
		Seq:    b.Uint64(),
	}
	flags := b.Byte()
	r.Tombstone = flags&1 != 0
	r.Forwarder = flags&2 != 0
	r.Partition = b.String()
	r.GossipEP = b.Uint64()
	if err := b.Err(); err != nil {
		return r, fmt.Errorf("names: decoding record: %w", err)
	}
	if flags&4 != 0 {
		t, err := transport.DecodeTable(b)
		if err != nil {
			return r, fmt.Errorf("names: decoding record table: %w", err)
		}
		r.Table = t
	}
	return r, nil
}

// canonical returns the record's canonical encoding.
func (r Record) canonical() []byte {
	b := buffer.New(128)
	r.encode(b)
	return b.Bytes()
}

// hash64 is an FNV-1a digest of the record's canonical encoding, carried in
// digest entries so peers can detect same-sequence content divergence.
func (r Record) hash64() uint64 {
	h := fnv.New64a()
	h.Write(r.canonical())
	return h.Sum64()
}

// Hash exposes the record's content hash, letting agents detect that an
// applied record changed without holding its previous encoding.
func (r Record) Hash() uint64 { return r.hash64() }

// DigestEntry summarizes one record for an anti-entropy exchange: enough for
// the receiver to decide newer/older/divergent without shipping the table.
type DigestEntry struct {
	Origin transport.ContextID
	Seq    uint64
	Hash   uint64
}

// Digest is one bounded anti-entropy summary: the sender's digest entries
// for every record it holds with origin inside the [Lo, Hi] window. The
// window is circular over the 64-bit origin keyspace (Lo > Hi wraps), and
// rotates across rounds so a bounded digest still covers the whole table
// eventually. A window covering the full keyspace means the entry list is
// exhaustive.
type Digest struct {
	Lo, Hi  transport.ContextID
	Entries []DigestEntry
}

// covers reports whether origin falls inside the digest's circular window.
func (d Digest) covers(o transport.ContextID) bool {
	if d.Lo <= d.Hi {
		return o >= d.Lo && o <= d.Hi
	}
	return o >= d.Lo || o <= d.Hi
}

// maxDigestEntries bounds hostile digest lengths.
const maxDigestEntries = 1 << 16

// Encode packs the digest.
func (d Digest) Encode(b *buffer.Buffer) {
	b.PutUint64(uint64(d.Lo))
	b.PutUint64(uint64(d.Hi))
	b.PutUint32(uint32(len(d.Entries)))
	for _, e := range d.Entries {
		b.PutUint64(uint64(e.Origin))
		b.PutUint64(e.Seq)
		b.PutUint64(e.Hash)
	}
}

// DecodeDigest unpacks a digest, validating the count against the bytes
// actually present.
func DecodeDigest(b *buffer.Buffer) (Digest, error) {
	d := Digest{
		Lo: transport.ContextID(b.Uint64()),
		Hi: transport.ContextID(b.Uint64()),
	}
	n := int(b.Uint32())
	if err := b.Err(); err != nil {
		return d, fmt.Errorf("names: decoding digest: %w", err)
	}
	if n > maxDigestEntries || n*24 > b.Remaining() {
		return d, fmt.Errorf("names: digest count %d cannot fit in %d bytes", n, b.Remaining())
	}
	d.Entries = make([]DigestEntry, 0, n)
	for i := 0; i < n; i++ {
		d.Entries = append(d.Entries, DigestEntry{
			Origin: transport.ContextID(b.Uint64()),
			Seq:    b.Uint64(),
			Hash:   b.Uint64(),
		})
	}
	if err := b.Err(); err != nil {
		return d, fmt.Errorf("names: decoding digest entries: %w", err)
	}
	return d, nil
}

// EncodeRecords packs a record batch.
func EncodeRecords(b *buffer.Buffer, recs []Record) {
	b.PutUint32(uint32(len(recs)))
	for _, r := range recs {
		r.encode(b)
	}
}

// maxRecordBatch bounds hostile record-batch lengths.
const maxRecordBatch = 1 << 16

// DecodeRecords unpacks a record batch encoded with EncodeRecords.
func DecodeRecords(b *buffer.Buffer) ([]Record, error) {
	n := int(b.Uint32())
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("names: decoding records: %w", err)
	}
	// A record is at least 8+8+1+4+8 bytes.
	if n > maxRecordBatch || n*29 > b.Remaining() {
		return nil, fmt.Errorf("names: record count %d cannot fit in %d bytes", n, b.Remaining())
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r, err := decodeRecord(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// stored is a registry entry with its canonical encoding and content hash
// cached at merge time, so digest rounds and tie-breaks never re-encode: at
// thousand-context scale a bounded digest touches hundreds of records per
// round, and recomputing FNV over a re-encoded table each time would dominate
// the round's cost.
type stored struct {
	rec  Record
	enc  []byte
	hash uint64
}

// fpMix folds one record's identity into the registry fingerprint. XOR of
// per-record mixes makes the fingerprint order-independent and incrementally
// maintainable under replacement.
func fpMix(origin transport.ContextID, seq, hash uint64) uint64 {
	return hash ^ (uint64(origin) * 0x9e3779b97f4a7c15) ^ (seq * 0xbf58476d1ce4e5b9)
}

// Registry is the versioned membership/descriptor table a gossip agent
// maintains: one Record per origin, merged under the deterministic order
// described above. All methods are safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	recs map[transport.ContextID]stored
	gen  uint64 // bumped on every applied change; cheap "did anything move" probe
	fp   uint64 // order-independent content fingerprint (Fingerprint)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{recs: make(map[transport.ContextID]stored)}
}

// Merge folds one record in and reports whether it changed the table. The
// outcome is independent of delivery order, duplication, and interleaving
// with stale versions: higher Seq wins; at equal Seq a tombstone beats a
// live record; and two same-kind records at the same Seq are ordered by
// their canonical encodings, so every registry picks the same winner.
func (r *Registry) Merge(rec Record) bool {
	enc := rec.canonical()
	h := fnv.New64a()
	h.Write(enc)
	hash := h.Sum64()
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.recs[rec.Origin]
	if ok {
		switch {
		case rec.Seq < cur.rec.Seq:
			return false
		case rec.Seq == cur.rec.Seq:
			if rec.Tombstone != cur.rec.Tombstone {
				if !rec.Tombstone {
					return false
				}
			} else if bytes.Compare(enc, cur.enc) <= 0 {
				return false
			}
		}
		r.fp ^= fpMix(rec.Origin, cur.rec.Seq, cur.hash)
	}
	r.recs[rec.Origin] = stored{rec: rec, enc: enc, hash: hash}
	r.fp ^= fpMix(rec.Origin, rec.Seq, hash)
	r.gen++
	return true
}

// MergeAll folds a batch in and reports how many records were applied.
func (r *Registry) MergeAll(recs []Record) int {
	applied := 0
	for _, rec := range recs {
		if r.Merge(rec) {
			applied++
		}
	}
	return applied
}

// Get returns the record for an origin.
func (r *Registry) Get(origin transport.ContextID) (Record, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.recs[origin]
	return s.rec, ok
}

// Fingerprint returns an order-independent digest of the registry's full
// contents, maintained incrementally by Merge. Two registries with equal
// fingerprints and equal lengths hold the same records with overwhelming
// probability — the O(1) convergence probe the thousand-context scale
// harness polls every round, where pairwise Equal would be quadratic in
// cluster size.
func (r *Registry) Fingerprint() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fp
}

// Gen reports the registry's change generation: it moves exactly when a
// Merge applies, so pollers can skip recomputation when nothing changed.
func (r *Registry) Gen() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Len reports the number of records held, tombstones included.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.recs)
}

// Live returns every non-tombstone record, sorted by origin.
func (r *Registry) Live() []Record {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Record, 0, len(r.recs))
	for _, s := range r.recs {
		if !s.rec.Tombstone {
			out = append(out, s.rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Snapshot returns every record, tombstones included, sorted by origin.
func (r *Registry) Snapshot() []Record {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Record, 0, len(r.recs))
	for _, s := range r.recs {
		out = append(out, s.rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Equal reports whether two registries hold identical records — the
// convergence predicate the gossip tests and FuzzGossipMerge assert.
func (r *Registry) Equal(o *Registry) bool {
	a, b := r.Snapshot(), o.Snapshot()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].canonical(), b[i].canonical()) {
			return false
		}
	}
	return true
}

// sortedOrigins returns every origin in ascending order. Callers hold no lock.
func (r *Registry) sortedOrigins() []transport.ContextID {
	r.mu.RLock()
	out := make([]transport.ContextID, 0, len(r.recs))
	for o := range r.recs {
		out = append(out, o)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Digest summarizes up to limit records starting at the given rotation index
// into the registry's sorted origin list, and returns the index where the
// next round should start. When the whole table fits, the window spans the
// full keyspace so the receiver knows the entry list is exhaustive;
// otherwise the window tightly brackets the included origins (circularly)
// and successive rounds sweep the table. This is what keeps gossip rounds
// bounded at thousand-context scale: a round's digest never exceeds limit
// entries no matter how large the cluster grows.
func (r *Registry) Digest(start, limit int) (Digest, int) {
	origins := r.sortedOrigins()
	n := len(origins)
	if n == 0 {
		return Digest{Lo: 0, Hi: math.MaxUint64}, 0
	}
	if limit <= 0 || limit >= n {
		d := Digest{Lo: 0, Hi: math.MaxUint64, Entries: make([]DigestEntry, 0, n)}
		r.mu.RLock()
		for _, o := range origins {
			s := r.recs[o]
			d.Entries = append(d.Entries, DigestEntry{Origin: o, Seq: s.rec.Seq, Hash: s.hash})
		}
		r.mu.RUnlock()
		return d, 0
	}
	start %= n
	d := Digest{Entries: make([]DigestEntry, 0, limit)}
	r.mu.RLock()
	for i := 0; i < limit; i++ {
		o := origins[(start+i)%n]
		s := r.recs[o]
		d.Entries = append(d.Entries, DigestEntry{Origin: o, Seq: s.rec.Seq, Hash: s.hash})
	}
	r.mu.RUnlock()
	d.Lo = d.Entries[0].Origin
	d.Hi = d.Entries[len(d.Entries)-1].Origin
	return d, (start + limit) % n
}

// DeltaFor computes the responder half of a push-pull round: the records we
// hold inside the digest's window that the digest lacks, holds at a lower
// sequence, or holds divergently at the same sequence (capped at maxDelta,
// lowest origins first), plus the origins where the digest is ahead of us —
// the want-list the requester answers with a push.
func (r *Registry) DeltaFor(d Digest, maxDelta int) (delta []Record, wants []transport.ContextID) {
	known := make(map[transport.ContextID]DigestEntry, len(d.Entries))
	for _, e := range d.Entries {
		known[e.Origin] = e
	}
	r.mu.RLock()
	for o, s := range r.recs {
		if !d.covers(o) {
			continue
		}
		e, ok := known[o]
		switch {
		case !ok, e.Seq < s.rec.Seq:
			delta = append(delta, s.rec)
		case e.Seq == s.rec.Seq && e.Hash != s.hash:
			// Same version, different content: ship ours and ask for theirs;
			// Merge's tie-break settles both sides on the same winner.
			delta = append(delta, s.rec)
			wants = append(wants, o)
		}
	}
	for _, e := range d.Entries {
		s, ok := r.recs[e.Origin]
		if !ok || s.rec.Seq < e.Seq {
			wants = append(wants, e.Origin)
		}
	}
	r.mu.RUnlock()
	sort.Slice(delta, func(i, j int) bool { return delta[i].Origin < delta[j].Origin })
	if maxDelta > 0 && len(delta) > maxDelta {
		delta = delta[:maxDelta]
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i] < wants[j] })
	return delta, wants
}

// RecordsFor returns the records held for the requested origins (capped at
// max), answering a want-list.
func (r *Registry) RecordsFor(origins []transport.ContextID, max int) []Record {
	out := make([]Record, 0, len(origins))
	r.mu.RLock()
	for _, o := range origins {
		if s, ok := r.recs[o]; ok {
			out = append(out, s.rec)
			if max > 0 && len(out) == max {
				break
			}
		}
	}
	r.mu.RUnlock()
	return out
}
