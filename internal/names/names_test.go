package names_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/cluster"
	"nexus/internal/core"
	"nexus/internal/names"
	"nexus/internal/transport"
)

// testWorld builds a machine with a name server on rank 0 and clients on
// every other rank, with a background poller on the server so requests are
// answered without explicit polling.
func testWorld(t *testing.T, n int) (*cluster.Machine, *names.Server, []*names.Client) {
	t.Helper()
	m, err := cluster.New(cluster.Uniform(n, "p", core.MethodConfig{Name: "inproc"}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	srv := names.NewServer(m.Context(0))
	stop := m.Context(0).StartPoller(0)
	t.Cleanup(stop)

	clients := make([]*names.Client, 0, n-1)
	for r := 1; r < n; r++ {
		sp, err := core.TransferStartpoint(srv.Startpoint(), m.Context(r))
		if err != nil {
			t.Fatal(err)
		}
		c := names.NewClient(m.Context(r), sp)
		c.SetTimeout(5 * time.Second)
		clients = append(clients, c)
	}
	return m, srv, clients
}

func TestRegisterResolveAcrossContexts(t *testing.T) {
	m, srv, clients := testWorld(t, 3)
	publisher, consumer := clients[0], clients[1]

	// Rank 1 publishes a service endpoint under a name.
	var got atomic.Value
	ep := m.Context(1).NewEndpoint(core.WithHandler(func(ep *core.Endpoint, b *buffer.Buffer) {
		got.Store(b.String())
	}))
	if err := publisher.Register("services/render", ep.NewStartpoint()); err != nil {
		t.Fatal(err)
	}
	if srv.Len() != 1 {
		t.Errorf("server entries = %d", srv.Len())
	}

	// Rank 2 resolves the name and uses the startpoint directly.
	sp, err := consumer.Resolve("services/render")
	if err != nil {
		t.Fatal(err)
	}
	b := buffer.New(32)
	b.PutString("render frame 7")
	if err := sp.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if !m.Context(1).PollUntil(func() bool { return got.Load() != nil }, 5*time.Second) {
		t.Fatal("resolved startpoint did not deliver")
	}
	if got.Load() != "render frame 7" {
		t.Errorf("payload = %v", got.Load())
	}
}

func TestResolveUnknownName(t *testing.T) {
	_, _, clients := testWorld(t, 2)
	if _, err := clients[0].Resolve("no/such/name"); !errors.Is(err, names.ErrNotFound) {
		t.Errorf("Resolve = %v, want names.ErrNotFound", err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	m, _, clients := testWorld(t, 2)
	ep := m.Context(1).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) {}))
	if err := clients[0].Register("dup", ep.NewStartpoint()); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].Register("dup", ep.NewStartpoint()); !errors.Is(err, names.ErrExists) {
		t.Errorf("second Register = %v, want names.ErrExists", err)
	}
}

func TestList(t *testing.T) {
	m, _, clients := testWorld(t, 2)
	c := clients[0]
	names, err := c.List()
	if err != nil || len(names) != 0 {
		t.Fatalf("empty List = %v, %v", names, err)
	}
	ep := m.Context(1).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) {}))
	for _, n := range []string{"b", "a", "c"} {
		if err := c.Register(n, ep.NewStartpoint()); err != nil {
			t.Fatal(err)
		}
	}
	names, err = c.List()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("List = %v", names)
	}
}

func TestRequestTimeout(t *testing.T) {
	// A server that never polls never answers.
	m, err := cluster.New(cluster.Uniform(2, "p", core.MethodConfig{Name: "inproc"}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := names.NewServer(m.Context(0))
	sp, err := core.TransferStartpoint(srv.Startpoint(), m.Context(1))
	if err != nil {
		t.Fatal(err)
	}
	c := names.NewClient(m.Context(1), sp)
	c.SetTimeout(100 * time.Millisecond)
	if _, err := c.Resolve("x"); !errors.Is(err, names.ErrTimeout) {
		t.Errorf("Resolve against silent server = %v, want names.ErrTimeout", err)
	}
}

// TestResolvedStartpointCrossesPartitions registers a link from inside a
// partition and resolves it from another site: the resolved startpoint's
// descriptor table must drive selection onto the wide-area method, proving
// the name service publishes full reachability, not just an address.
func TestResolvedStartpointCrossesPartitions(t *testing.T) {
	fast := transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}
	m, err := cluster.New(cluster.TwoPartition(2, "sp2", 1, "remote",
		core.MethodConfig{Name: "mpl", Params: fast},
		core.MethodConfig{Name: "wan", Params: fast},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := names.NewServer(m.Context(0))
	stop := m.Context(0).StartPoller(0)
	defer stop()

	// Rank 1 (sp2) publishes through a same-partition client.
	spToSrv1, err := core.TransferStartpoint(srv.Startpoint(), m.Context(1))
	if err != nil {
		t.Fatal(err)
	}
	pub := names.NewClient(m.Context(1), spToSrv1)
	pub.SetTimeout(5 * time.Second)
	var hits atomic.Int64
	ep := m.Context(1).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) { hits.Add(1) }))
	if err := pub.Register("sim/output", ep.NewStartpoint()); err != nil {
		t.Fatal(err)
	}

	// Rank 2 (remote) resolves and calls: wan is its only route.
	spToSrv2, err := core.TransferStartpoint(srv.Startpoint(), m.Context(2))
	if err != nil {
		t.Fatal(err)
	}
	remote := names.NewClient(m.Context(2), spToSrv2)
	remote.SetTimeout(5 * time.Second)
	sp, err := remote.Resolve("sim/output")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if mth := sp.Method(); mth != "wan" {
		t.Errorf("resolved startpoint selected %q, want wan", mth)
	}
	if !m.Context(1).PollUntil(func() bool { return hits.Load() == 1 }, 5*time.Second) {
		t.Fatal("cross-partition call via resolved name lost")
	}
}

func TestConcurrentClients(t *testing.T) {
	m, srv, clients := testWorld(t, 5)
	ep := m.Context(1).NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) {}))

	done := make(chan error, len(clients))
	for i, c := range clients {
		go func(i int, c *names.Client) {
			name := string(rune('a' + i))
			if err := c.Register(name, ep.NewStartpoint()); err != nil {
				done <- err
				return
			}
			if _, err := c.Resolve(name); err != nil {
				done <- err
				return
			}
			done <- nil
		}(i, c)
	}
	for range clients {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if srv.Len() != len(clients) {
		t.Errorf("entries = %d, want %d", srv.Len(), len(clients))
	}
}

// TestNameTableSemantics drives the registration/lookup state machine
// through a table of operation sequences: lookup misses, duplicate
// registration, and the re-registration that becomes legal once the name's
// state allows it (a second Register of the *same* name always reports
// names.ErrExists — names are immutable once published).
func TestNameTableSemantics(t *testing.T) {
	type op struct {
		kind    string // "register", "resolve", "list"
		name    string
		wantErr error
	}
	cases := []struct {
		name string
		ops  []op
	}{
		{"lookup-miss-empty", []op{
			{kind: "resolve", name: "nothing", wantErr: names.ErrNotFound},
		}},
		{"lookup-miss-other-name", []op{
			{kind: "register", name: "a"},
			{kind: "resolve", name: "b", wantErr: names.ErrNotFound},
			{kind: "resolve", name: "a"},
		}},
		{"re-registration-rejected", []op{
			{kind: "register", name: "dup"},
			{kind: "register", name: "dup", wantErr: names.ErrExists},
			{kind: "resolve", name: "dup"},
		}},
		{"re-registration-distinct-names", []op{
			{kind: "register", name: "svc/1"},
			{kind: "register", name: "svc/2"},
			{kind: "resolve", name: "svc/1"},
			{kind: "resolve", name: "svc/2"},
			{kind: "list", name: ""},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, _, clients := testWorld(t, 2)
			cl := clients[0]
			ep := m.Context(1).NewEndpoint()
			for i, o := range tc.ops {
				var err error
				switch o.kind {
				case "register":
					err = cl.Register(o.name, ep.NewStartpoint())
				case "resolve":
					_, err = cl.Resolve(o.name)
				case "list":
					_, err = cl.List()
				}
				if o.wantErr == nil && err != nil {
					t.Fatalf("op %d (%s %q): %v", i, o.kind, o.name, err)
				}
				if o.wantErr != nil && !errors.Is(err, o.wantErr) {
					t.Fatalf("op %d (%s %q) = %v, want %v", i, o.kind, o.name, err, o.wantErr)
				}
			}
		})
	}
}

// TestConcurrentRegisterResolve hammers one server from several goroutines
// mixing registers, resolves (hits and misses), and lists; run under -race
// it pins the server map's and client sequence counter's synchronization.
func TestConcurrentRegisterResolve(t *testing.T) {
	m, srv, clients := testWorld(t, 3)
	cl0, cl1 := clients[0], clients[1]
	ep := m.Context(1).NewEndpoint()

	const perWorker = 20
	var wg sync.WaitGroup
	errs := make(chan error, 6*perWorker)
	worker := func(cl *names.Client, id int) {
		defer wg.Done()
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("w%d/%d", id, i)
			if err := cl.Register(name, ep.NewStartpoint()); err != nil {
				errs <- fmt.Errorf("register %s: %w", name, err)
				return
			}
			if _, err := cl.Resolve(name); err != nil {
				errs <- fmt.Errorf("resolve %s: %w", name, err)
				return
			}
			if _, err := cl.Resolve("never/registered"); !errors.Is(err, names.ErrNotFound) {
				errs <- fmt.Errorf("miss resolve returned %v", err)
				return
			}
		}
	}
	lister := func(cl *names.Client) {
		defer wg.Done()
		for i := 0; i < perWorker; i++ {
			if _, err := cl.List(); err != nil {
				errs <- fmt.Errorf("list: %w", err)
				return
			}
		}
	}
	wg.Add(4)
	go worker(cl0, 0)
	go worker(cl1, 1)
	go lister(cl0)
	go lister(cl1)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := srv.Len(); n != 2*perWorker {
		t.Errorf("server holds %d names, want %d", n, 2*perWorker)
	}
}

// TestTimeoutUnifiedWithDeadline pins the stack-wide timeout vocabulary: a
// names timeout matches names.ErrTimeout, core.ErrDeadline, and the standard
// library's context.DeadlineExceeded under errors.Is.
func TestTimeoutUnifiedWithDeadline(t *testing.T) {
	m, err := cluster.New(cluster.Uniform(2, "p", core.MethodConfig{Name: "inproc"}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := names.NewServer(m.Context(0)) // never polls, never answers
	sp, err := core.TransferStartpoint(srv.Startpoint(), m.Context(1))
	if err != nil {
		t.Fatal(err)
	}
	c := names.NewClient(m.Context(1), sp)
	c.SetTimeout(50 * time.Millisecond)
	_, rerr := c.Resolve("x")
	for _, want := range []error{names.ErrTimeout, core.ErrDeadline, context.DeadlineExceeded} {
		if !errors.Is(rerr, want) {
			t.Errorf("errors.Is(%v, %v) = false", rerr, want)
		}
	}
}
