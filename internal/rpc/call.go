package rpc

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/core"
	"nexus/internal/obsv"
	"nexus/internal/wire"
)

// awaitSlice chunks a Future's wait so the deadline is checked even when no
// frames arrive: each PollUntil pass drives the owning context's poller for
// at most this long before the caller re-examines the clock.
const awaitSlice = 20 * time.Millisecond

// CallOptions tunes one call.
type CallOptions struct {
	// Timeout bounds the call relative to now. 0 applies the layer's
	// DefaultTimeout; negative disables the deadline entirely.
	Timeout time.Duration
	// Deadline bounds the call absolutely and takes precedence over Timeout
	// when nonzero.
	Deadline time.Time
}

// pendingCall is the caller-side record of one outstanding call. doneFlag
// and eventSeq are the poll predicates (lock-free); everything under "r.mu"
// is guarded by the owning runtime's mutex.
type pendingCall struct {
	r        *RPC
	id       uint64
	sp       *core.Startpoint
	method   string
	trace    obsv.TraceID
	t0       time.Time // set only when stats are enabled
	deadline time.Time
	stream   bool
	bulk     bool // argument parked in r.pulls awaiting the callee's pull

	doneFlag atomic.Bool
	eventSeq atomic.Uint64 // bumped on every completion or stream event

	// Guarded by r.mu.
	done      bool
	result    *buffer.Buffer
	resultBuf buffer.Buffer // inline storage for the unary reply
	err       error
	chunks map[uint64]*buffer.Buffer // received, not yet consumed, by index; lazily made
	next   uint64                    // next chunk index Recv returns
	total  uint64                    // chunk count, valid once ended
	ended  bool
}

// Future is the rendezvous for one unary call. The pending record lives
// inline, so a call costs one allocation on the caller side.
type Future struct{ pc pendingCall }

// Stream is the rendezvous for one streaming call: an ordered sequence of
// chunks terminated by io.EOF or an error.
type Stream struct{ pc pendingCall }

// Call starts a unary request on one of the runtime's startpoints and
// returns immediately with a Future. req may be nil for an argument-less
// call; the buffer is encoded before Call returns and may be reused after.
func (r *RPC) Call(sp *core.Startpoint, method string, req *buffer.Buffer, opts CallOptions) (*Future, error) {
	f := &Future{}
	if err := r.startCall(&f.pc, sp, method, req, opts, false); err != nil {
		return nil, err
	}
	return f, nil
}

// CallStream starts a streaming request: the server replies with an ordered
// chunk sequence consumed through Stream.Recv. A server that answers with a
// plain Reply is surfaced as a one-chunk stream.
func (r *RPC) CallStream(sp *core.Startpoint, method string, req *buffer.Buffer, opts CallOptions) (*Stream, error) {
	s := &Stream{}
	if err := r.startCall(&s.pc, sp, method, req, opts, true); err != nil {
		return nil, err
	}
	return s, nil
}

// Call starts a unary request through the RPC runtime attached to the
// startpoint's owning context.
func Call(sp *core.Startpoint, method string, req *buffer.Buffer, opts CallOptions) (*Future, error) {
	r := For(sp.Owner())
	if r == nil {
		return nil, ErrNotEnabled
	}
	return r.Call(sp, method, req, opts)
}

// CallStream starts a streaming request through the RPC runtime attached to
// the startpoint's owning context.
func CallStream(sp *core.Startpoint, method string, req *buffer.Buffer, opts CallOptions) (*Stream, error) {
	r := For(sp.Owner())
	if r == nil {
		return nil, ErrNotEnabled
	}
	return r.CallStream(sp, method, req, opts)
}

// startCall allocates the call id, registers the pending record, and sends
// the request (or its bulk handle). The pending record is registered before
// the send: same-process transports deliver synchronously, so the reply can
// arrive before RSRWithRPC returns.
func (r *RPC) startCall(pc *pendingCall, sp *core.Startpoint, method string, req *buffer.Buffer,
	opts CallOptions, stream bool) error {
	if sp.Owner() != r.ctx {
		return fmt.Errorf("rpc: startpoint belongs to context %d, not this runtime's", sp.Owner().ID())
	}
	var now time.Time
	var deadline time.Time
	switch {
	case !opts.Deadline.IsZero():
		deadline = opts.Deadline
	case opts.Timeout > 0:
		now = time.Now()
		deadline = now.Add(opts.Timeout)
	case opts.Timeout < 0:
		// no deadline
	case r.cfg.DefaultTimeout > 0:
		now = time.Now()
		deadline = now.Add(r.cfg.DefaultTimeout)
	}
	if !now.IsZero() {
		coarseClock.Store(now.UnixNano())
	}
	reqLen := 1 // a nil request travels as a lone format tag
	if req != nil {
		reqLen = req.EncodedLen()
	}
	bulk := req != nil && r.cfg.BulkThreshold > 0 && reqLen >= r.cfg.BulkThreshold
	id := r.nextCall.Add(1)
	var trace obsv.TraceID
	if r.ctx.TracingEnabled() {
		trace = r.ctx.NewTraceID()
	}
	// pc arrives zero-valued (inline in a freshly allocated Future or
	// Stream), so only the non-zero fields need writing.
	pc.r, pc.id, pc.sp, pc.method = r, id, sp, method
	pc.trace = trace
	pc.deadline = deadline
	pc.stream, pc.bulk = stream, bulk
	if r.ctx.StatsEnabled() {
		if now.IsZero() {
			now = time.Now()
		}
		pc.t0 = now
	}
	env, _ := r.envPool.Get().(*buffer.Buffer)
	if env == nil {
		env = buffer.New(len(r.replyEnc) + reqLen + 16)
	} else {
		env.Reset()
	}
	env.PutBytes(r.replyEnc)
	kind := byte(wire.RPCRequest)
	if bulk {
		kind = wire.RPCRequestHandle
		env.PutUint64(uint64(reqLen))
	} else {
		env.PutEncoded(req)
	}
	var aux uint64
	if !deadline.IsZero() {
		aux = uint64(deadline.UnixNano())
	}
	r.mu.Lock()
	r.pending[id] = pc
	if bulk {
		r.pulls[id] = &pullEntry{data: req.Encode(), sp: sp, method: method, trace: trace}
	}
	r.mu.Unlock()
	r.cCalls.Inc()
	if stream {
		r.cStreams.Inc()
	}
	err := sp.RSRWithRPC(method, env, core.RPCSend{
		Ext:   wire.RPCExt{Call: id, Kind: kind, Aux: aux},
		Class: sp.Class(), Trace: trace,
	})
	// The send encoded the envelope into its frame (or failed); either way
	// the buffer is ours again.
	r.envPool.Put(env)
	if err != nil {
		r.mu.Lock()
		delete(r.pending, id)
		if bulk {
			delete(r.pulls, id)
		}
		r.mu.Unlock()
		return err
	}
	return nil
}

// complete finishes a call exactly once; the loser of a completion race (a
// duplicate reply, a deadline racing the real reply) is told so by the
// return value and must not act on the call further.
func (r *RPC) complete(pc *pendingCall, res *buffer.Buffer, err error) bool {
	r.mu.Lock()
	if pc.done {
		r.mu.Unlock()
		return false
	}
	pc.done = true
	pc.result = res
	pc.err = err
	delete(r.pending, pc.id)
	if pc.bulk {
		delete(r.pulls, pc.id)
	}
	r.mu.Unlock()
	pc.doneFlag.Store(true)
	pc.eventSeq.Add(1)
	if r.ctx.StatsEnabled() && !pc.t0.IsZero() {
		d := time.Since(pc.t0)
		r.latFor(pc.method).Stage(obsv.StageRPCCall).Record(d)
		r.ctx.RecordEvent(obsv.Event{
			Trace: pc.trace, Stage: obsv.StageRPCCall, Handler: pc.method, Dur: d,
		})
	}
	return true
}

// expire fails a call at its deadline and tells the callee to stop working.
func (r *RPC) expire(pc *pendingCall) {
	if r.complete(pc, nil, fmt.Errorf("rpc: call %d (%s) deadline exceeded: %w",
		pc.id, pc.method, core.ErrDeadline)) {
		r.cDeadline.Inc()
		r.sendCancel(pc)
	}
}

// sendCancel emits a best-effort RPCCancel for an abandoned call: delivery
// failures are ignored (the callee's own deadline clock backstops it).
func (r *RPC) sendCancel(pc *pendingCall) {
	r.cCancelSent.Inc()
	_ = pc.sp.RSRWithRPC(pc.method, nil, core.RPCSend{
		Ext:   wire.RPCExt{Call: pc.id, Kind: wire.RPCCancel},
		Class: core.ClassControl, Trace: pc.trace,
	})
}

// await drives the owning context's poller until pred holds or the call's
// deadline passes (at which point the call is expired and pred holds by way
// of the completion). seq-style predicates must observe their own updates
// through eventSeq/doneFlag, which every intake path bumps.
func (pc *pendingCall) await(pred func() bool) {
	r := pc.r
	// Fast path: a bounded clock-free poll spin. Same-host replies land
	// within a few poll passes, and skipping the deadline arithmetic (two
	// clock reads per slice) keeps the rendezvous within the raw round
	// trip's budget.
	for i := 0; i < 128; i++ {
		if pred() {
			return
		}
		if r.ctx.Poll() == 0 {
			runtime.Gosched()
		}
	}
	for !pred() {
		wait := awaitSlice
		if !pc.deadline.IsZero() {
			left := time.Until(pc.deadline)
			if left <= 0 {
				r.expire(pc)
				return
			}
			if left < wait {
				wait = left
			}
		}
		r.ctx.PollUntil(pred, wait)
	}
}

// Await blocks until the call completes — reply, remote error, cancel, or
// deadline — and returns its result. The returned buffer is owned by the
// caller. Await may be called repeatedly; every call returns the same
// outcome.
func (f *Future) Await() (*buffer.Buffer, error) {
	pc := &f.pc
	pc.await(pc.doneFlag.Load)
	pc.r.mu.Lock()
	res, err := pc.result, pc.err
	pc.r.mu.Unlock()
	return res, err
}

// Done reports whether the call has completed (Await will not block).
func (f *Future) Done() bool { return f.pc.doneFlag.Load() }

// Cancel abandons the call: the Future fails with ErrCanceled and the callee
// is told to stop. A call that already completed is unaffected.
func (f *Future) Cancel() {
	pc := &f.pc
	if pc.r.complete(pc, nil, fmt.Errorf("rpc: call %d (%s): %w", pc.id, pc.method, ErrCanceled)) {
		pc.r.sendCancel(pc)
	}
}

// Recv returns the next chunk in order, io.EOF after the final chunk of a
// cleanly ended stream, or the call's error. Chunks are re-ordered by their
// wire index, so out-of-order arrival (bulk lanes racing the control-class
// End frame) is invisible here.
func (s *Stream) Recv() (*buffer.Buffer, error) {
	pc := &s.pc
	r := pc.r
	for {
		r.mu.Lock()
		if ch, ok := pc.chunks[pc.next]; ok {
			delete(pc.chunks, pc.next)
			pc.next++
			r.mu.Unlock()
			return ch, nil
		}
		if pc.done {
			err := pc.err
			r.mu.Unlock()
			if err == nil {
				err = io.EOF
			}
			return nil, err
		}
		if pc.ended && pc.next >= pc.total {
			r.mu.Unlock()
			// The stream is drained: complete the call so the deadline stops
			// ticking and late duplicates are counted as such.
			r.complete(pc, nil, nil)
			continue
		}
		seq := pc.eventSeq.Load()
		r.mu.Unlock()
		pc.await(func() bool { return pc.eventSeq.Load() != seq })
	}
}

// Done reports whether the stream's call has completed.
func (s *Stream) Done() bool { return s.pc.doneFlag.Load() }

// Cancel abandons the stream; a pending or future Recv returns ErrCanceled.
func (s *Stream) Cancel() {
	pc := &s.pc
	if pc.r.complete(pc, nil, fmt.Errorf("rpc: call %d (%s): %w", pc.id, pc.method, ErrCanceled)) {
		pc.r.sendCancel(pc)
	}
}

// clonePayload copies a borrowed frame payload into an owned decode buffer.
func clonePayload(p []byte) (*buffer.Buffer, error) {
	return buffer.FromBytes(append([]byte(nil), p...))
}

// handleReply routes every reply-direction frame — responses, remote errors,
// stream chunks, stream ends — to its pending call. Frames for unknown call
// ids are duplicates (the call completed: deadline, cancel, or an earlier
// copy of this reply after a failover retry) or orphans, and are counted but
// otherwise dropped: this is the duplicate-reply suppression that makes
// retried requests safe.
func (r *RPC) handleReply(in *core.RPCInbound) {
	if in.RPC.Kind == wire.RPCResponse {
		// The unary response fast path: one lock acquisition covers the
		// pending lookup and the completion, and the reply lands in the
		// pending record's inline result buffer.
		r.mu.Lock()
		pc := r.pending[in.RPC.Call]
		if pc == nil || pc.done || (pc.stream && pc.ended) {
			r.mu.Unlock()
			r.cDupReplies.Inc()
			return
		}
		if pc.stream {
			// A unary Reply answering CallStream: surface it as a one-chunk
			// stream rather than a protocol error, so servers need not know
			// how they were called.
			res, cerr := clonePayload(in.Payload)
			if cerr != nil {
				r.mu.Unlock()
				r.cBadFrames.Inc()
				return
			}
			pc.chunks = map[uint64]*buffer.Buffer{0: res}
			pc.ended = true
			pc.total = 1
			r.mu.Unlock()
			r.cReplies.Inc()
			pc.eventSeq.Add(1)
			return
		}
		if cerr := pc.resultBuf.SetEncoded(in.Payload); cerr != nil {
			r.mu.Unlock()
			r.cBadFrames.Inc()
			return
		}
		pc.done = true
		pc.result = &pc.resultBuf
		delete(r.pending, pc.id)
		if pc.bulk {
			delete(r.pulls, pc.id)
		}
		r.mu.Unlock()
		pc.doneFlag.Store(true)
		pc.eventSeq.Add(1)
		r.cReplies.Inc()
		if r.ctx.StatsEnabled() && !pc.t0.IsZero() {
			d := time.Since(pc.t0)
			r.latFor(pc.method).Stage(obsv.StageRPCCall).Record(d)
			r.ctx.RecordEvent(obsv.Event{
				Trace: pc.trace, Stage: obsv.StageRPCCall, Handler: pc.method, Dur: d,
			})
		}
		return
	}
	r.mu.Lock()
	pc := r.pending[in.RPC.Call]
	r.mu.Unlock()
	if pc == nil {
		switch in.RPC.Kind {
		case wire.RPCError:
			r.cDupReplies.Inc()
		default:
			r.cOrphans.Inc()
		}
		return
	}
	switch in.RPC.Kind {
	case wire.RPCError:
		msgb, err := clonePayload(in.Payload)
		if err != nil {
			r.cBadFrames.Inc()
			return
		}
		rerr := &RemoteError{Method: pc.method, Msg: msgb.String()}
		if r.complete(pc, nil, rerr) {
			r.cErrors.Inc()
		} else {
			r.cDupReplies.Inc()
		}
	case wire.RPCStreamChunk:
		if !pc.stream {
			r.complete(pc, nil, fmt.Errorf("rpc: call %d (%s): stream chunk answering a unary call",
				pc.id, pc.method))
			return
		}
		ch, err := clonePayload(in.Payload)
		if err != nil {
			r.cBadFrames.Inc()
			return
		}
		r.mu.Lock()
		if pc.done {
			r.mu.Unlock()
			r.cDupReplies.Inc()
			return
		}
		if _, dup := pc.chunks[in.RPC.Aux]; dup || in.RPC.Aux < pc.next {
			// Already held or already consumed: a failover-retried chunk.
			r.mu.Unlock()
			r.cDupReplies.Inc()
			return
		}
		if pc.chunks == nil {
			pc.chunks = make(map[uint64]*buffer.Buffer)
		}
		pc.chunks[in.RPC.Aux] = ch
		r.mu.Unlock()
		pc.eventSeq.Add(1)
	case wire.RPCStreamEnd:
		if !pc.stream {
			r.complete(pc, nil, fmt.Errorf("rpc: call %d (%s): stream end answering a unary call",
				pc.id, pc.method))
			return
		}
		r.mu.Lock()
		if pc.done || pc.ended {
			r.mu.Unlock()
			r.cDupReplies.Inc()
			return
		}
		pc.ended = true
		pc.total = in.RPC.Aux
		r.mu.Unlock()
		pc.eventSeq.Add(1)
	}
}
