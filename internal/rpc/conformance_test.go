package rpc

// RPC conformance over every communication module: the same request/reply,
// remote-error, streaming, and deadline fixture runs across in-process,
// local (self-call), stream, datagram, reliable-datagram, encrypted,
// simulated, and shared-memory transports, so the layer's semantics do not
// depend on which method selection picked. Runs under -race and -count=2 in
// CI (fixtures isolate their media per invocation).

import (
	"errors"
	"io"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/core"
	"nexus/internal/transport"
	"nexus/internal/transport/shm"
)

const secureTestKey = "000102030405060708090a0b0c0d0e0f" // 16-byte AES key, both ends

// rpcFixture is one transport's caller/server pair.
type rpcFixture struct {
	callerC *core.Context
	caller  *RPC
	server  *RPC
	sp      *core.Startpoint
	// reliable means frames are never dropped; the suite retries calls on
	// datagram transports without a reliability layer.
	reliable bool
}

var rpcFixtures = []struct {
	name string
	make func(t *testing.T, cfg core.RPCConfig) *rpcFixture
}{
	{"inproc", func(t *testing.T, cfg core.RPCConfig) *rpcFixture {
		tag := freshTag("rpcconf-inproc")
		serverC, server := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "inproc"})
		callerC, caller := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "inproc"})
		sp := transferStartpoint(t, serverC.NewEndpoint().NewStartpoint(), callerC)
		t.Cleanup(serverC.StartPoller(100 * time.Microsecond))
		return &rpcFixture{callerC: callerC, caller: caller, server: server, sp: sp, reliable: true}
	}},
	{"local", func(t *testing.T, cfg core.RPCConfig) *rpcFixture {
		// Self-call: one context is both caller and server; delivery is
		// synchronous inside RSRWithRPC.
		c, r := newCtx(t, freshTag("rpcconf-local"), "", cfg, core.MethodConfig{Name: "local"})
		sp := c.NewEndpoint().NewStartpoint()
		return &rpcFixture{callerC: c, caller: r, server: r, sp: sp, reliable: true}
	}},
	{"tcp", func(t *testing.T, cfg core.RPCConfig) *rpcFixture {
		tag := freshTag("rpcconf-tcp")
		serverC, server := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "tcp"})
		callerC, caller := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "tcp"})
		sp := transferStartpoint(t, serverC.NewEndpoint().NewStartpoint(), callerC)
		t.Cleanup(serverC.StartPoller(100 * time.Microsecond))
		return &rpcFixture{callerC: callerC, caller: caller, server: server, sp: sp, reliable: true}
	}},
	{"udp", func(t *testing.T, cfg core.RPCConfig) *rpcFixture {
		tag := freshTag("rpcconf-udp")
		serverC, server := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "udp"})
		callerC, caller := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "udp"})
		sp := transferStartpoint(t, serverC.NewEndpoint().NewStartpoint(), callerC)
		t.Cleanup(serverC.StartPoller(100 * time.Microsecond))
		return &rpcFixture{callerC: callerC, caller: caller, server: server, sp: sp, reliable: false}
	}},
	{"rudp", func(t *testing.T, cfg core.RPCConfig) *rpcFixture {
		tag := freshTag("rpcconf-rudp")
		serverC, server := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "rudp"})
		callerC, caller := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "rudp"})
		sp := transferStartpoint(t, serverC.NewEndpoint().NewStartpoint(), callerC)
		t.Cleanup(serverC.StartPoller(100 * time.Microsecond))
		// The caller's rudp module needs polling for ACKs/retransmits even
		// when no Await is in flight (e.g. after a deferred server reply).
		t.Cleanup(callerC.StartPoller(100 * time.Microsecond))
		return &rpcFixture{callerC: callerC, caller: caller, server: server, sp: sp, reliable: true}
	}},
	{"secure", func(t *testing.T, cfg core.RPCConfig) *rpcFixture {
		tag := freshTag("rpcconf-secure")
		mc := func() core.MethodConfig {
			return core.MethodConfig{Name: "secure",
				Params: transport.Params{"key": secureTestKey, "inner": "tcp"}}
		}
		serverC, server := newCtx(t, tag, "", cfg, mc())
		callerC, caller := newCtx(t, tag, "", cfg, mc())
		sp := transferStartpoint(t, serverC.NewEndpoint().NewStartpoint(), callerC)
		t.Cleanup(serverC.StartPoller(100 * time.Microsecond))
		return &rpcFixture{callerC: callerC, caller: caller, server: server, sp: sp, reliable: true}
	}},
	{"simnet", func(t *testing.T, cfg core.RPCConfig) *rpcFixture {
		tag := freshTag("rpcconf-sim")
		mc := func() core.MethodConfig {
			return core.MethodConfig{Name: "mpl",
				Params: transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}}
		}
		serverC, server := newCtx(t, tag, "rpcconf", cfg, mc())
		callerC, caller := newCtx(t, tag, "rpcconf", cfg, mc())
		sp := transferStartpoint(t, serverC.NewEndpoint().NewStartpoint(), callerC)
		t.Cleanup(serverC.StartPoller(100 * time.Microsecond))
		return &rpcFixture{callerC: callerC, caller: caller, server: server, sp: sp, reliable: true}
	}},
	{"shm", func(t *testing.T, cfg core.RPCConfig) *rpcFixture {
		if !shm.Supported() {
			t.Skip("shm transport requires linux mmap/FIFO support")
		}
		tag := freshTag("rpcconf-shm")
		mc := func() core.MethodConfig {
			return core.MethodConfig{Name: "shm", Params: transport.Params{"dir": t.TempDir()}}
		}
		serverC, server := newCtx(t, tag, "", cfg, mc())
		callerC, caller := newCtx(t, tag, "", cfg, mc())
		sp := transferStartpoint(t, serverC.NewEndpoint().NewStartpoint(), callerC)
		t.Cleanup(serverC.StartPoller(100 * time.Microsecond))
		t.Cleanup(callerC.StartPoller(100 * time.Microsecond))
		return &rpcFixture{callerC: callerC, caller: caller, server: server, sp: sp, reliable: true}
	}},
}

// callRetry runs one unary call, retrying on deadline expiry for unreliable
// transports (a dropped request or reply surfaces as a timeout).
func (fx *rpcFixture) callRetry(t *testing.T, method string, mkReq func() *buffer.Buffer) (*buffer.Buffer, error) {
	t.Helper()
	attempts, timeout := 1, 20*time.Second
	if !fx.reliable {
		attempts, timeout = 10, 2*time.Second
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		f, err := fx.caller.Call(fx.sp, method, mkReq(), CallOptions{Timeout: timeout})
		if err != nil {
			return nil, err
		}
		res, err := f.Await()
		if err == nil || !errors.Is(err, ErrDeadline) {
			return res, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// streamRetry collects a whole stream, retrying on deadline expiry.
func (fx *rpcFixture) streamRetry(t *testing.T, method string, want int) []int {
	t.Helper()
	attempts, timeout := 1, 20*time.Second
	if !fx.reliable {
		attempts, timeout = 10, 2*time.Second
	}
	for i := 0; i < attempts; i++ {
		s, err := fx.caller.CallStream(fx.sp, method, nil, CallOptions{Timeout: timeout})
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		for {
			ch, err := s.Recv()
			if err == io.EOF {
				return got
			}
			if err != nil {
				if errors.Is(err, ErrDeadline) && !fx.reliable {
					got = nil
					break // dropped chunk or end frame: retry the call
				}
				t.Fatalf("Recv: %v", err)
			}
			got = append(got, ch.Int())
		}
	}
	t.Fatalf("stream %q never completed within retry budget", method)
	return nil
}

func TestRPCConformance(t *testing.T) {
	for _, fc := range rpcFixtures {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			fx := fc.make(t, core.RPCConfig{})
			fx.server.Register("echo", echoHandler)
			fx.server.Register("fail", func(req *Request, r *Responder) {
				_ = r.Error(errors.New("nope"))
			})
			fx.server.Register("count", func(req *Request, r *Responder) {
				n := req.Payload.Int()
				for i := 0; i < n; i++ {
					b := buffer.New(8)
					b.PutInt(i)
					_ = r.Send(b)
				}
				_ = r.End()
			})
			fx.server.Register("black-hole", func(req *Request, r *Responder) {
				// Never replies; the caller's deadline is the only way out.
			})

			t.Run("roundtrip", func(t *testing.T) {
				res, err := fx.callRetry(t, "echo", func() *buffer.Buffer { return strBuf("ping") })
				if err != nil {
					t.Fatal(err)
				}
				if got := res.String(); got != "ping!" {
					t.Fatalf("reply = %q, want %q", got, "ping!")
				}
			})
			t.Run("remote-error", func(t *testing.T) {
				_, err := fx.callRetry(t, "fail", func() *buffer.Buffer { return nil })
				var re *RemoteError
				if !errors.As(err, &re) || re.Msg != "nope" {
					t.Fatalf("error = %v, want RemoteError(nope)", err)
				}
			})
			t.Run("streaming", func(t *testing.T) {
				const n = 5
				fx.server.Register("count", func(req *Request, r *Responder) {
					for i := 0; i < n; i++ {
						b := buffer.New(8)
						b.PutInt(i)
						_ = r.Send(b)
					}
					_ = r.End()
				})
				got := fx.streamRetry(t, "count", n)
				if len(got) != n {
					t.Fatalf("received %d chunks, want %d (%v)", len(got), n, got)
				}
				for i, v := range got {
					if v != i {
						t.Fatalf("chunk %d carried %d", i, v)
					}
				}
			})
			t.Run("deadline", func(t *testing.T) {
				f, err := fx.caller.Call(fx.sp, "black-hole", nil,
					CallOptions{Timeout: 300 * time.Millisecond})
				if err != nil {
					t.Fatal(err)
				}
				_, err = f.Await()
				if !errors.Is(err, ErrDeadline) {
					t.Fatalf("error = %v, want ErrDeadline", err)
				}
			})
		})
	}
}

// TestBulkPullFragmentedRUDP pushes a bulk argument bigger than rudp's
// datagram limit through the handle/pull path: the RPCPullData frame must
// fragment on the caller's side and reassemble on the server's, and the call
// still completes with the full argument.
func TestBulkPullFragmentedRUDP(t *testing.T) {
	tag := freshTag("rpc-bulk-rudp")
	cfg := core.RPCConfig{BulkThreshold: 1 << 10}
	serverC, server := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "rudp"})
	callerC, caller := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "rudp"})
	sp := transferStartpoint(t, serverC.NewEndpoint().NewStartpoint(), callerC)
	t.Cleanup(serverC.StartPoller(100 * time.Microsecond))
	t.Cleanup(callerC.StartPoller(100 * time.Microsecond))

	server.Register("sum", func(req *Request, r *Responder) {
		data := req.Payload.BytesValue()
		var sum uint64
		for _, b := range data {
			sum += uint64(b)
		}
		out := buffer.New(16)
		out.PutUint64(sum)
		out.PutInt(len(data))
		_ = r.Reply(out)
	})
	payload := make([]byte, 256<<10) // far above any datagram limit
	var want uint64
	for i := range payload {
		payload[i] = byte(i * 7)
		want += uint64(payload[i])
	}
	req := buffer.New(len(payload) + 8)
	req.PutBytes(payload)
	f, err := caller.Call(sp, "sum", req, CallOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Await()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Uint64(); got != want {
		t.Fatalf("checksum = %d, want %d", got, want)
	}
	if got := res.Int(); got != len(payload) {
		t.Fatalf("server saw %d bytes, want %d", got, len(payload))
	}
	if n := callerC.Stats().Get("rpc.pull_data"); n != 1 {
		t.Fatalf("rpc.pull_data = %d, want 1", n)
	}
	if n := callerC.Stats().Get("frag.messages.sent"); n == 0 {
		t.Fatal("pull data frame was not fragmented over rudp")
	}
	if n := serverC.Stats().Get("frag.assembled"); n == 0 {
		t.Fatal("server never reassembled a fragmented message")
	}
}
