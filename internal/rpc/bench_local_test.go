package rpc

import (
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/core"
)

// BenchmarkLocalCallOverhead isolates the RPC layer's pure CPU cost: the
// synchronous local transport delivers in the caller's stack frame, so the
// delta against BenchmarkLocalRawRSR below is correlation, future, and
// responder machinery alone — no polling or cross-goroutine scheduling.
// EXPERIMENTS.md tracks the pair alongside the end-to-end inproc pin.
func BenchmarkLocalCallOverhead(b *testing.B) {
	c, err := core.NewContext(core.Options{Methods: []core.MethodConfig{{Name: "local"}}})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	r := Enable(c, core.RPCConfig{})
	r.Register("echo", func(req *Request, rp *Responder) {
		_ = rp.Reply(req.Payload)
	})
	sp := c.NewEndpoint().NewStartpoint()
	payload := buffer.New(64)
	payload.PutRaw(make([]byte, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := r.Call(sp, "echo", payload, CallOptions{Timeout: 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Await(); err != nil {
			b.Fatal(err)
		}
	}
}

// Raw local RSR round trip for comparison: two sends, synchronous delivery.
func BenchmarkLocalRawRSR(b *testing.B) {
	c, err := core.NewContext(core.Options{Methods: []core.MethodConfig{{Name: "local"}}})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	n := 0
	sp := c.NewEndpoint(core.WithHandler(func(*core.Endpoint, *buffer.Buffer) { n++ })).NewStartpoint()
	payload := buffer.New(64)
	payload.PutRaw(make([]byte, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sp.RSR("", payload); err != nil {
			b.Fatal(err)
		}
		if err := sp.RSR("", payload); err != nil {
			b.Fatal(err)
		}
	}
}
