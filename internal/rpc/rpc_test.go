package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/core"
	_ "nexus/internal/simnet"
	"nexus/internal/transport"
	_ "nexus/internal/transport/inproc"
	_ "nexus/internal/transport/local"
	_ "nexus/internal/transport/rudp"
	_ "nexus/internal/transport/secure"
	_ "nexus/internal/transport/tcp"
	_ "nexus/internal/transport/udp"
	"nexus/internal/wire"
)

// tagSeq isolates test media (inproc exchanges, simnet fabrics) per fixture,
// so -count=2 and parallel subtests never share a wire.
var tagSeq atomic.Uint64

func freshTag(base string) string {
	return fmt.Sprintf("%s-%d", base, tagSeq.Add(1))
}

// newCtx builds a context (with the RPC layer attached) on isolated media.
func newCtx(t testing.TB, tag, partition string, cfg core.RPCConfig, methods ...core.MethodConfig) (*core.Context, *RPC) {
	t.Helper()
	for i := range methods {
		if methods[i].Params == nil {
			methods[i].Params = transport.Params{}
		}
		switch methods[i].Name {
		case "inproc":
			methods[i].Params["exchange"] = tag
		case "mpl", "wan":
			methods[i].Params["fabric"] = tag
		}
	}
	c, err := core.NewContext(core.Options{Partition: partition, Methods: methods})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, Enable(c, cfg)
}

// transferStartpoint carries an encoded startpoint into another context, the
// way request envelopes carry reply startpoints.
func transferStartpoint(t testing.TB, sp *core.Startpoint, dst *core.Context) *core.Startpoint {
	t.Helper()
	b := buffer.New(512)
	sp.Encode(b)
	dec, err := buffer.FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.DecodeStartpoint(dec)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// inprocPair builds a caller/server pair joined by an isolated inproc
// exchange, with a background poller on the server side.
func inprocPair(t testing.TB, base string, cfg core.RPCConfig) (callerC *core.Context, caller *RPC, server *RPC, sp *core.Startpoint) {
	t.Helper()
	tag := freshTag(base)
	serverC, server := newCtx(t, tag, "", cfg, core.MethodConfig{Name: "inproc"})
	callerC, caller = newCtx(t, tag, "", cfg, core.MethodConfig{Name: "inproc"})
	ep := serverC.NewEndpoint()
	sp = transferStartpoint(t, ep.NewStartpoint(), callerC)
	t.Cleanup(serverC.StartPoller(0))
	return callerC, caller, server, sp
}

func strBuf(s string) *buffer.Buffer {
	b := buffer.New(len(s) + 8)
	b.PutString(s)
	return b
}

func echoHandler(req *Request, r *Responder) {
	s := req.Payload.String()
	_ = r.Reply(strBuf(s + "!"))
}

func TestCallReply(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-basic", core.RPCConfig{})
	server.Register("echo", echoHandler)
	f, err := caller.Call(sp, "echo", strBuf("hello"), CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Await()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != "hello!" {
		t.Fatalf("reply = %q, want %q", got, "hello!")
	}
	if !f.Done() {
		t.Fatal("Done() false after Await")
	}
	// Await is idempotent.
	res2, err := f.Await()
	if err != nil || res2.Len() != res.Len() {
		t.Fatalf("second Await = (%v, %v)", res2, err)
	}
}

func TestNilRequestAndNilReply(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-nil", core.RPCConfig{})
	server.Register("ping", func(req *Request, r *Responder) {
		if req.Payload.Len() != 0 {
			_ = r.Error(errors.New("expected empty request"))
			return
		}
		_ = r.Reply(nil)
	})
	f, err := caller.Call(sp, "ping", nil, CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Await()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("nil reply decoded to %d bytes", res.Len())
	}
}

func TestRemoteError(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-err", core.RPCConfig{})
	server.Register("fail", func(req *Request, r *Responder) {
		_ = r.Error(errors.New("boom"))
	})
	f, err := caller.Call(sp, "fail", nil, CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Await()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Await error = %v, want RemoteError", err)
	}
	if re.Msg != "boom" || re.Method != "fail" {
		t.Fatalf("RemoteError = %+v", re)
	}
}

func TestUnknownHandler(t *testing.T) {
	_, caller, _, sp := inprocPair(t, "rpc-unknown", core.RPCConfig{})
	f, err := caller.Call(sp, "nope", nil, CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Await()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Await error = %v, want RemoteError", err)
	}
}

func TestDeadlineExpiresAndCancelsServerWork(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-deadline", core.RPCConfig{})
	var serverSawCancel atomic.Bool
	server.Register("slow", func(req *Request, r *Responder) {
		// Defer the reply: hold the responder, watch the call context from a
		// goroutine, and never actually answer.
		ctx := req.Context()
		go func() {
			<-ctx.Done()
			serverSawCancel.Store(true)
		}()
	})
	f, err := caller.Call(sp, "slow", nil, CallOptions{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err = f.Await()
	if err == nil {
		t.Fatal("Await succeeded, want deadline error")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("error %v does not match ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not match context.DeadlineExceeded", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("deadline took %v to fire", d)
	}
	// The server's call context fires at the wire-propagated deadline.
	deadline := time.Now().Add(10 * time.Second)
	for !serverSawCancel.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server-side call context never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFutureCancelStopsServerWork(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-cancel", core.RPCConfig{})
	var serverSawCancel atomic.Bool
	started := make(chan struct{}, 1)
	server.Register("slow", func(req *Request, r *Responder) {
		ctx := req.Context()
		started <- struct{}{}
		go func() {
			<-ctx.Done()
			serverSawCancel.Store(true)
		}()
	})
	f, err := caller.Call(sp, "slow", nil, CallOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	f.Cancel()
	_, err = f.Await()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Await after Cancel = %v, want ErrCanceled", err)
	}
	// The wire cancel reaches the server and fires the handler's context
	// well before its 30s deadline.
	deadline := time.Now().Add(10 * time.Second)
	for !serverSawCancel.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server never observed the cancel")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestResponderCompletesOnce(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-once", core.RPCConfig{})
	errs := make(chan error, 2)
	server.Register("twice", func(req *Request, r *Responder) {
		errs <- r.Reply(strBuf("first"))
		errs <- r.Reply(strBuf("second"))
	})
	f, err := caller.Call(sp, "twice", nil, CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Await()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != "first" {
		t.Fatalf("reply = %q", got)
	}
	if e := <-errs; e != nil {
		t.Fatalf("first Reply: %v", e)
	}
	if e := <-errs; !errors.Is(e, ErrAlreadyReplied) {
		t.Fatalf("second Reply = %v, want ErrAlreadyReplied", e)
	}
}

// TestDuplicateReplySuppression injects the same response frame twice, the
// way a failover-retried request produces two replies under one call id: the
// Future must complete once and the copy must be counted as a duplicate.
func TestDuplicateReplySuppression(t *testing.T) {
	callerC, caller, server, sp := inprocPair(t, "rpc-dup", core.RPCConfig{})
	server.Register("echo", echoHandler)
	f, err := caller.Call(sp, "echo", strBuf("x"), CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Await()
	if err != nil || res.String() != "x!" {
		t.Fatalf("Await = (%v, %v)", res, err)
	}
	// Re-deliver the response intake for the (now completed) call id.
	rb := strBuf("x!")
	caller.intake(core.RPCInbound{
		RPC:     wire.RPCExt{Call: f.pc.id, Kind: wire.RPCResponse},
		Payload: rb.Encode(),
	})
	if n := callerC.Stats().Get("rpc.replies.duplicate"); n != 1 {
		t.Fatalf("rpc.replies.duplicate = %d, want 1", n)
	}
	// The future's outcome is untouched: same result buffer, same nil error.
	res2, err := f.Await()
	if err != nil || res2 != res {
		t.Fatalf("Await after duplicate = (%p, %v), want (%p, nil)", res2, err, res)
	}
}

// TestRetriedRequestSingleCallback emulates the failover-retry shape end to
// end: the same request frame (same call id) reaches the server twice, the
// server serves it twice, and the caller's Future must still complete
// exactly once, counting the second reply as a duplicate.
func TestRetriedRequestSingleCallback(t *testing.T) {
	callerC, caller, server, sp := inprocPair(t, "rpc-retry", core.RPCConfig{})
	var served atomic.Int64
	server.Register("echo", func(req *Request, r *Responder) {
		served.Add(1)
		_ = r.Reply(strBuf(req.Payload.String() + "!"))
	})
	f, err := caller.Call(sp, "echo", strBuf("req"), CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the request envelope a retry would carry — same call id, same
	// reply startpoint — and inject it at the server as a second delivery.
	env := buffer.New(len(caller.replyEnc) + 32)
	env.PutBytes(caller.replyEnc)
	env.PutBytes(strBuf("req").Encode())
	server.intake(core.RPCInbound{
		SrcContext: uint64(callerC.ID()),
		Handler:    "echo",
		RPC:        wire.RPCExt{Call: f.pc.id, Kind: wire.RPCRequest},
		Payload:    env.Encode(),
	})
	res, err := f.Await()
	if err != nil || res.String() != "req!" {
		t.Fatalf("Await = (%v, %v)", res, err)
	}
	// Both serves happened; only one reply completed the future.
	deadline := time.Now().Add(10 * time.Second)
	for callerC.Stats().Get("rpc.replies.duplicate") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("duplicate reply never counted (served=%d)", served.Load())
		}
		callerC.PollUntil(func() bool { return false }, time.Millisecond)
	}
	if served.Load() != 2 {
		t.Fatalf("server served %d times, want 2", served.Load())
	}
	if n := callerC.Stats().Get("rpc.replies"); n != 1 {
		t.Fatalf("rpc.replies = %d, want 1", n)
	}
}

func TestStreamingOrder(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-stream", core.RPCConfig{})
	const n = 10
	server.Register("count", func(req *Request, r *Responder) {
		for i := 0; i < n; i++ {
			b := buffer.New(8)
			b.PutInt(i)
			if err := r.Send(b); err != nil {
				t.Errorf("Send(%d): %v", i, err)
			}
		}
		if err := r.End(); err != nil {
			t.Errorf("End: %v", err)
		}
	})
	s, err := caller.CallStream(sp, "count", nil, CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ch, err := s.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if got := ch.Int(); got != i {
			t.Fatalf("chunk %d carried %d", i, got)
		}
	}
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("post-stream Recv = %v, want io.EOF", err)
	}
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("repeated Recv = %v, want io.EOF", err)
	}
}

func TestStreamEmpty(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-stream-empty", core.RPCConfig{})
	server.Register("none", func(req *Request, r *Responder) { _ = r.End() })
	s, err := caller.CallStream(sp, "none", nil, CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("Recv on empty stream = %v, want io.EOF", err)
	}
}

func TestStreamErrorMidway(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-stream-err", core.RPCConfig{})
	server.Register("flaky", func(req *Request, r *Responder) {
		_ = r.Send(strBuf("a"))
		_ = r.Send(strBuf("b"))
		_ = r.Error(errors.New("midway"))
	})
	s, err := caller.CallStream(sp, "flaky", nil, CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		_, err := s.Recv()
		if err == nil {
			got++
			continue
		}
		var re *RemoteError
		if !errors.As(err, &re) || re.Msg != "midway" {
			t.Fatalf("stream error = %v, want RemoteError(midway)", err)
		}
		break
	}
	// The error may beat unconsumed chunks (it completes the call), so got
	// can be 0..2 — but never more than the server sent.
	if got > 2 {
		t.Fatalf("received %d chunks, server sent 2", got)
	}
}

func TestStreamUnaryReplyBridges(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-stream-unary", core.RPCConfig{})
	server.Register("echo", echoHandler)
	s, err := caller.CallStream(sp, "echo", strBuf("one"), CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.String(); got != "one!" {
		t.Fatalf("bridged chunk = %q", got)
	}
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("second Recv = %v, want io.EOF", err)
	}
}

func TestBulkHandlePull(t *testing.T) {
	callerC, caller, server, sp := inprocPair(t, "rpc-bulk",
		core.RPCConfig{BulkThreshold: 1 << 10})
	server.Register("size", func(req *Request, r *Responder) {
		data := req.Payload.BytesValue()
		b := buffer.New(8)
		b.PutInt(len(data))
		_ = r.Reply(b)
	})
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	req := buffer.New(len(payload) + 8)
	req.PutBytes(payload)
	f, err := caller.Call(sp, "size", req, CallOptions{Timeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Await()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int(); got != len(payload) {
		t.Fatalf("server saw %d bytes, want %d", got, len(payload))
	}
	if n := callerC.Stats().Get("rpc.pull_data"); n != 1 {
		t.Fatalf("rpc.pull_data = %d, want 1 (bulk path not taken)", n)
	}
}

// TestBulkPullSingleTransfer: a duplicated RequestHandle (failover retry)
// must not trigger a second payload transfer — the parked entry is consumed
// by the first pull.
func TestBulkPullSingleTransfer(t *testing.T) {
	callerC, caller, server, sp := inprocPair(t, "rpc-bulk-once",
		core.RPCConfig{BulkThreshold: 1 << 10})
	server.Register("size", func(req *Request, r *Responder) {
		b := buffer.New(8)
		b.PutInt(req.Payload.Len())
		_ = r.Reply(b)
	})
	req := buffer.New(4 << 10)
	req.PutBytes(make([]byte, 4<<10))
	f, err := caller.Call(sp, "size", req, CallOptions{Timeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Await(); err != nil {
		t.Fatal(err)
	}
	// A second pull for the same call finds nothing parked.
	caller.intake(core.RPCInbound{
		SrcContext: uint64(callerC.ID()),
		RPC:        wire.RPCExt{Call: f.pc.id, Kind: wire.RPCPull},
		Payload:    buffer.New(0).Encode(),
	})
	if n := callerC.Stats().Get("rpc.pull_data"); n != 1 {
		t.Fatalf("rpc.pull_data = %d, want exactly 1", n)
	}
	if n := callerC.Stats().Get("rpc.orphan_frames"); n != 1 {
		t.Fatalf("rpc.orphan_frames = %d, want 1", n)
	}
}

func TestCallNotEnabled(t *testing.T) {
	tag := freshTag("rpc-disabled")
	c, err := core.NewContext(core.Options{
		Methods: []core.MethodConfig{{Name: "inproc", Params: transport.Params{"exchange": tag}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	sp := c.NewEndpoint().NewStartpoint()
	if _, err := Call(sp, "x", nil, CallOptions{}); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("Call on bare context = %v, want ErrNotEnabled", err)
	}
	if err := Register(c, "x", func(*Request, *Responder) {}); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("Register on bare context = %v, want ErrNotEnabled", err)
	}
}

func TestTimeoutNegativeMeansNone(t *testing.T) {
	_, caller, server, sp := inprocPair(t, "rpc-notimeout",
		core.RPCConfig{DefaultTimeout: -1})
	server.Register("echo", echoHandler)
	f, err := caller.Call(sp, "echo", strBuf("a"), CallOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f.pc.deadline != (time.Time{}) {
		t.Fatalf("negative DefaultTimeout still set deadline %v", f.pc.deadline)
	}
	if _, err := f.Await(); err != nil {
		t.Fatal(err)
	}
}

func TestRPCLatenciesPublished(t *testing.T) {
	callerC, caller, server, sp := inprocPair(t, "rpc-lat", core.RPCConfig{})
	callerC.EnableStats()
	server.Register("echo", echoHandler)
	f, err := caller.Call(sp, "echo", strBuf("a"), CallOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Await(); err != nil {
		t.Fatal(err)
	}
	snap := callerC.Observe()
	found := false
	for _, l := range snap.Latencies {
		if l.Method == "rpc:echo" && l.Stage == "rpc_call" && l.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rpc:echo/rpc_call latency in snapshot: %+v", snap.Latencies)
	}
}
