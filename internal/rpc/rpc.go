// Package rpc layers request/response and streaming semantics over the
// one-sided RSR primitive, in the style of Mercury-class RPC systems for
// extreme-scale services: a call is an RSR carrying the wire RPC extension
// (call id, kind, deadline), the reply travels back through a per-context
// response endpoint whose startpoint rides inside the request envelope, and
// the caller rendezvouses with the reply through a Future. Large arguments
// use a bulk-handle pull model — past a threshold the caller sends a compact
// handle and the callee pulls the payload over the fragmentation path — and
// servers may stream ordered chunk sequences instead of a single reply.
//
// The layer inherits the substrate's guarantees wholesale: requests are
// encoded once, so failover retries resend byte-identical frames and a
// retried call keeps its call id (the caller suppresses the duplicate
// reply); oversize frames fragment per link; deadlines travel on the wire as
// absolute unix nanoseconds and cancel server-side work through a standard
// context.Context.
package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/core"
	"nexus/internal/metrics"
	"nexus/internal/obsv"
	"nexus/internal/wire"
)

// Defaults for the zero RPCConfig fields.
const (
	// DefaultBulkThreshold is the encoded request size past which arguments
	// travel by bulk-handle pull.
	DefaultBulkThreshold = 256 << 10
	// DefaultTimeout bounds calls made with no explicit deadline.
	DefaultTimeout = 30 * time.Second
)

var (
	// ErrNotEnabled reports an RPC operation on a context without the layer
	// attached (Options.RPC.Enabled, or rpc.Enable).
	ErrNotEnabled = errors.New("rpc: layer not enabled on this context")
	// ErrCanceled reports a call abandoned by Future.Cancel / Stream.Cancel.
	ErrCanceled = errors.New("rpc: call canceled")
	// ErrAlreadyReplied reports a second completion on one Responder.
	ErrAlreadyReplied = errors.New("rpc: responder already completed")
)

// ErrDeadline is the unified timeout sentinel: errors from expired calls
// wrap it, and it matches context.DeadlineExceeded under errors.Is.
var ErrDeadline = core.ErrDeadline

// RemoteError is a handler failure reported by the serving context: the
// callee ran (or refused) the request and sent an RPCError reply.
type RemoteError struct {
	// Method is the RPC method the call named.
	Method string
	// Msg is the error text from the serving side.
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %q failed: %s", e.Method, e.Msg)
}

// Handler serves one inbound call. It may reply synchronously before
// returning or retain the Responder and complete the call later; either
// way each call must be completed exactly once (Reply, Error, or
// Send.../End).
type Handler func(req *Request, r *Responder)

// Request is one inbound call as seen by a Handler.
type Request struct {
	// Method is the RPC method name the caller invoked.
	Method string
	// Src is the calling context's id.
	Src uint64
	// CallID is the call's correlation id (unique per calling context).
	CallID uint64
	// Payload is the caller's argument buffer. It borrows the delivery
	// frame: it is valid only until the handler returns, and a handler that
	// defers its reply must copy what it needs (buffer.Clone).
	Payload *buffer.Buffer

	r        *RPC
	key      callKey
	deadline time.Time

	mu       sync.Mutex
	finished bool
	ctx      context.Context
	cancel   context.CancelFunc
}

// canceledCtx is the Context() result for a call that already completed.
var canceledCtx = func() context.Context {
	c, cancel := context.WithCancel(context.Background())
	cancel()
	return c
}()

// Context returns the call's context: done at the caller's wire-propagated
// deadline, or when the caller cancels the call. Handlers doing nontrivial
// work should watch it and abandon the call when it fires.
//
// The context (its deadline timer and the cancel-routing registration) is
// materialized on first use, so handlers that reply synchronously without
// looking at it pay nothing. A wire cancel arriving before the first
// Context() call is a no-op — there is no deferred work to stop yet.
func (q *Request) Context() context.Context {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finished {
		return canceledCtx
	}
	if q.ctx == nil {
		if q.deadline.IsZero() {
			q.ctx, q.cancel = context.WithCancel(context.Background())
		} else {
			q.ctx, q.cancel = context.WithDeadline(context.Background(), q.deadline)
		}
		sc := &serverCall{cancel: q.cancel}
		r, key := q.r, q.key
		r.mu.Lock()
		r.active[key] = sc
		r.mu.Unlock()
		// Drop the routing entry whenever the call context ends — deadline,
		// wire cancel, or the responder completing the call.
		context.AfterFunc(q.ctx, func() {
			r.mu.Lock()
			if r.active[key] == sc {
				delete(r.active, key)
			}
			r.mu.Unlock()
		})
	}
	return q.ctx
}

// finish releases the call's context resources (if any were materialized)
// once the responder completes the call.
func (q *Request) finish() {
	q.mu.Lock()
	q.finished = true
	cancel := q.cancel
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// callKey names one call globally: call ids are per calling context.
type callKey struct {
	src  uint64
	call uint64
}

// replyRoute is a cached decoded reply startpoint for one calling context.
type replyRoute struct {
	enc []byte // the encoded bytes the route was built from
	sp  *core.Startpoint
}

// serverCall is one in-flight inbound call, tracked so a wire cancel (or the
// deadline) can stop its handler's work.
type serverCall struct {
	cancel context.CancelFunc
}

// pullWait is a bulk-handle call waiting for its pulled argument.
type pullWait struct {
	method   string
	route    *replyRoute
	deadline time.Time
	trace    obsv.TraceID
	class    core.Class
}

// pullEntry is a caller-side bulk argument parked until the callee pulls it.
type pullEntry struct {
	data   []byte // the encoded argument buffer
	sp     *core.Startpoint
	method string
	trace  obsv.TraceID
}

// RPC is the request/response runtime attached to one context.
type RPC struct {
	ctx *core.Context
	cfg core.RPCConfig

	// ep is the auto-registered response endpoint; replyEnc is its encoded
	// startpoint, embedded in every request envelope so the callee can route
	// replies back without any prior arrangement.
	ep       *core.Endpoint
	replyEnc []byte

	nextCall atomic.Uint64

	// envPool recycles request envelope buffers: RSRWithRPC encodes the
	// payload into the frame before returning, so an envelope is free for
	// reuse as soon as the send call completes.
	envPool sync.Pool

	mu       sync.Mutex
	pending  map[uint64]*pendingCall
	pulls    map[uint64]*pullEntry
	handlers map[string]Handler
	// methodNames interns registered method names so the request path can
	// use a stable string instead of cloning the borrowed frame's handler
	// bytes on every call.
	methodNames map[string]string
	routes      map[uint64]*replyRoute
	active      map[callKey]*serverCall
	waiting     map[callKey]*pullWait
	lats        map[string]*obsv.StageSet

	cCalls      *metrics.Counter // rpc.calls
	cStreams    *metrics.Counter // rpc.calls.stream
	cReplies    *metrics.Counter // rpc.replies
	cDupReplies *metrics.Counter // rpc.replies.duplicate
	cErrors     *metrics.Counter // rpc.errors.remote
	cDeadline   *metrics.Counter // rpc.deadline
	cCancelSent *metrics.Counter // rpc.cancels.sent
	cCancelRecv *metrics.Counter // rpc.cancels.recv
	cServed     *metrics.Counter // rpc.served
	cUnknown    *metrics.Counter // rpc.unknown_handler
	cExpired    *metrics.Counter // rpc.expired
	cPulls      *metrics.Counter // rpc.pulls
	cPullData   *metrics.Counter // rpc.pull_data
	cChunks     *metrics.Counter // rpc.stream.chunks
	cOrphans    *metrics.Counter // rpc.orphan_frames
	cBadFrames  *metrics.Counter // rpc.bad_frames
}

// Enable attaches the RPC runtime to a context: it registers the response
// endpoint, installs the core intake hook for wire.FlagRPC frames, and
// publishes itself through the context's RPC state slot. Calling Enable on a
// context that already has the layer returns the existing runtime.
func Enable(c *core.Context, cfg core.RPCConfig) *RPC {
	if r := For(c); r != nil {
		return r
	}
	if cfg.BulkThreshold == 0 {
		cfg.BulkThreshold = DefaultBulkThreshold
	}
	switch {
	case cfg.DefaultTimeout == 0:
		cfg.DefaultTimeout = DefaultTimeout
	case cfg.DefaultTimeout < 0:
		cfg.DefaultTimeout = 0 // no implicit deadline
	}
	r := &RPC{
		ctx:         c,
		cfg:         cfg,
		pending:     make(map[uint64]*pendingCall),
		pulls:       make(map[uint64]*pullEntry),
		handlers:    make(map[string]Handler),
		methodNames: make(map[string]string),
		routes:      make(map[uint64]*replyRoute),
		active:      make(map[callKey]*serverCall),
		waiting:     make(map[callKey]*pullWait),
		lats:        make(map[string]*obsv.StageSet),
	}
	r.ep = c.NewEndpoint()
	spb := buffer.New(256)
	r.ep.NewStartpoint().Encode(spb)
	r.replyEnc = spb.Encode()
	st := c.Stats()
	r.cCalls = st.Counter("rpc.calls")
	r.cStreams = st.Counter("rpc.calls.stream")
	r.cReplies = st.Counter("rpc.replies")
	r.cDupReplies = st.Counter("rpc.replies.duplicate")
	r.cErrors = st.Counter("rpc.errors.remote")
	r.cDeadline = st.Counter("rpc.deadline")
	r.cCancelSent = st.Counter("rpc.cancels.sent")
	r.cCancelRecv = st.Counter("rpc.cancels.recv")
	r.cServed = st.Counter("rpc.served")
	r.cUnknown = st.Counter("rpc.unknown_handler")
	r.cExpired = st.Counter("rpc.expired")
	r.cPulls = st.Counter("rpc.pulls")
	r.cPullData = st.Counter("rpc.pull_data")
	r.cChunks = st.Counter("rpc.stream.chunks")
	r.cOrphans = st.Counter("rpc.orphan_frames")
	r.cBadFrames = st.Counter("rpc.bad_frames")
	c.SetRPCIntake(r.intake)
	c.SetRPCState(r)
	return r
}

// For returns the RPC runtime attached to a context, or nil.
func For(c *core.Context) *RPC {
	r, _ := c.RPCState().(*RPC)
	return r
}

// Register installs (or replaces) the handler serving one RPC method name.
func (r *RPC) Register(method string, h Handler) {
	r.mu.Lock()
	r.handlers[method] = h
	r.methodNames[method] = method
	r.mu.Unlock()
}

// Register installs a handler on a context's attached RPC runtime.
func Register(c *core.Context, method string, h Handler) error {
	r := For(c)
	if r == nil {
		return ErrNotEnabled
	}
	r.Register(method, h)
	return nil
}

// intake consumes every delivered frame carrying the wire RPC extension. It
// runs on the delivery goroutine under handler constraints: the payload is
// borrowed, so anything retained is copied here.
func (r *RPC) intake(in core.RPCInbound) {
	switch in.RPC.Kind {
	case wire.RPCRequest, wire.RPCRequestHandle:
		r.handleRequest(&in)
	case wire.RPCResponse, wire.RPCError, wire.RPCStreamChunk, wire.RPCStreamEnd:
		r.handleReply(&in)
	case wire.RPCCancel:
		r.handleCancel(&in)
	case wire.RPCPull:
		r.handlePull(&in)
	case wire.RPCPullData:
		r.handlePullData(&in)
	default:
		r.cBadFrames.Inc()
	}
}

// routeFor resolves (and caches) the reply startpoint for one calling
// context. The cache revalidates against the envelope bytes, so a caller
// that rebuilds its response endpoint gets a fresh route on its next call.
func (r *RPC) routeFor(src uint64, spBytes []byte) (*replyRoute, error) {
	r.mu.Lock()
	rt := r.routes[src]
	r.mu.Unlock()
	if rt != nil && bytes.Equal(rt.enc, spBytes) {
		return rt, nil
	}
	dec, err := buffer.FromBytes(spBytes)
	if err != nil {
		return nil, err
	}
	sp, err := r.ctx.DecodeStartpoint(dec)
	if err != nil {
		return nil, err
	}
	// Replies ride the supervised send path: if the method that carried the
	// request dies, the reply fails over to the next applicable one.
	sp.SetFailover(true)
	nrt := &replyRoute{enc: append([]byte(nil), spBytes...), sp: sp}
	r.mu.Lock()
	r.routes[src] = nrt
	r.mu.Unlock()
	return nrt, nil
}

// handleRequest serves an inbound RPCRequest, or registers an
// RPCRequestHandle and pulls its bulk argument.
func (r *RPC) handleRequest(in *core.RPCInbound) {
	env, err := buffer.Decode(in.Payload)
	if err != nil {
		r.cBadFrames.Inc()
		return
	}
	// The envelope views borrow the delivered frame; routeFor copies the
	// startpoint bytes if (and only if) it has to build a fresh route, and
	// the request bytes are consumed synchronously by serve below.
	spBytes := env.BytesView()
	if env.Err() != nil {
		r.cBadFrames.Inc()
		return
	}
	r.mu.Lock()
	route := r.routes[in.SrcContext]
	method, interned := r.methodNames[in.Handler]
	h := r.handlers[in.Handler]
	r.mu.Unlock()
	if route == nil || !bytes.Equal(route.enc, spBytes) {
		if route, err = r.routeFor(in.SrcContext, spBytes); err != nil {
			r.cBadFrames.Inc()
			return
		}
	}
	if !interned {
		method = strings.Clone(in.Handler)
	}
	key := callKey{src: in.SrcContext, call: in.RPC.Call}
	var deadline time.Time
	if in.RPC.Aux != 0 {
		deadline = time.Unix(0, int64(in.RPC.Aux))
	}
	if in.RPC.Kind == wire.RPCRequestHandle {
		// Bulk-handle pull: park the call and ask the caller for the real
		// argument; handlePullData resumes it.
		r.mu.Lock()
		r.purgeWaitingLocked(time.Now())
		r.waiting[key] = &pullWait{method: method, route: route,
			deadline: deadline, trace: in.Trace, class: in.Class}
		r.mu.Unlock()
		r.cPulls.Inc()
		if err := route.sp.RSRWithRPC(method, nil, core.RPCSend{
			Ext:   wire.RPCExt{Call: key.call, Kind: wire.RPCPull},
			Class: core.ClassControl, Trace: in.Trace,
		}); err != nil {
			r.mu.Lock()
			delete(r.waiting, key)
			r.mu.Unlock()
		}
		return
	}
	reqBytes := env.BytesView()
	if env.Err() != nil {
		r.cBadFrames.Inc()
		return
	}
	r.serve(key, method, h, route, reqBytes, deadline, in.Trace)
}

// purgeWaitingLocked drops parked bulk-handle calls whose deadline passed:
// their callers have given up and will never answer the pull. Caller holds
// r.mu.
func (r *RPC) purgeWaitingLocked(now time.Time) {
	for k, w := range r.waiting {
		if !w.deadline.IsZero() && now.After(w.deadline) {
			delete(r.waiting, k)
		}
	}
}

// coarseClock caches the wall clock (unix nanoseconds), advanced whenever
// the layer takes a real reading. It makes the expired-on-arrival triage in
// serve nearly free in the common case: a real clock read (which refreshes
// the cache) happens only when the cached time suggests the deadline may
// already have passed. The cache only lags real time, so the triage can
// admit a request that has in fact expired — that is fine, because the
// authoritative deadline enforcement is the handler's Request.Context(),
// and an abandoned caller just drops the late reply as a duplicate.
var coarseClock atomic.Int64

// expiredOnArrival reports whether deadline has passed, reading the real
// clock only when the cached one cannot rule it out.
func expiredOnArrival(deadline time.Time) bool {
	dn := deadline.UnixNano()
	if dn > coarseClock.Load() {
		return false
	}
	now := time.Now()
	coarseClock.Store(now.UnixNano())
	return !now.Before(deadline)
}

// inboundCall packs one call's server-side state — request, responder, and
// the decoded argument buffer — into a single allocation.
type inboundCall struct {
	q   Request
	rp  Responder
	arg buffer.Buffer
}

// serve runs one call through its resolved handler (looked up by the caller
// under the same lock acquisition that resolved the route). The request
// bytes borrow the delivery frame, so the handler runs synchronously here.
func (r *RPC) serve(key callKey, method string, h Handler, route *replyRoute,
	reqBytes []byte, deadline time.Time, trace obsv.TraceID) {
	if h == nil {
		r.cUnknown.Inc()
		rp := r.newResponder(key, route, method, trace, nil)
		_ = rp.Error(fmt.Errorf("rpc: no handler registered for %q", method))
		return
	}
	if !deadline.IsZero() && expiredOnArrival(deadline) {
		// The caller's deadline has already passed: it has abandoned the
		// call, so running the handler (or replying) is pure waste.
		r.cExpired.Inc()
		return
	}
	// One allocation covers all of the call's server-side state.
	ic := &inboundCall{
		q: Request{
			Method: method, Src: key.src, CallID: key.call,
			r: r, key: key, deadline: deadline,
		},
		rp: Responder{r: r, key: key, route: route, method: method, trace: trace},
	}
	var err error
	if ic.arg, err = buffer.Decode(reqBytes); err != nil {
		r.cBadFrames.Inc()
		return
	}
	q, rp := &ic.q, &ic.rp
	q.Payload = &ic.arg
	rp.req = q
	r.cServed.Inc()
	if !r.ctx.StatsEnabled() {
		h(q, rp)
		return
	}
	t0 := time.Now()
	h(q, rp)
	d := time.Since(t0)
	r.latFor(method).Stage(obsv.StageRPCServe).Record(d)
	r.ctx.RecordEvent(obsv.Event{
		Trace: trace, Stage: obsv.StageRPCServe,
		Peer: key.src, Handler: method, Dur: d,
	})
}

// handleCancel stops an in-flight inbound call's work: the handler's context
// fires and any parked bulk-handle state is dropped.
func (r *RPC) handleCancel(in *core.RPCInbound) {
	key := callKey{src: in.SrcContext, call: in.RPC.Call}
	r.mu.Lock()
	sc := r.active[key]
	delete(r.waiting, key)
	r.mu.Unlock()
	r.cCancelRecv.Inc()
	if sc != nil {
		sc.cancel()
	}
}

// handlePull answers a callee's pull for a parked bulk argument: the stored
// encoding is sent back as an RPCPullData frame, fragmenting on the way if
// it exceeds the link's frame limit. The entry is consumed, so a duplicated
// pull (failover retry) cannot trigger a second transfer.
func (r *RPC) handlePull(in *core.RPCInbound) {
	r.mu.Lock()
	pe := r.pulls[in.RPC.Call]
	delete(r.pulls, in.RPC.Call)
	r.mu.Unlock()
	if pe == nil {
		r.cOrphans.Inc()
		return
	}
	pb, err := buffer.FromBytes(pe.data)
	if err != nil {
		return
	}
	r.cPullData.Inc()
	if serr := pe.sp.RSRWithRPC(pe.method, pb, core.RPCSend{
		Ext:   wire.RPCExt{Call: in.RPC.Call, Kind: wire.RPCPullData},
		Class: core.ClassBulk, Trace: pe.trace,
	}); serr != nil {
		r.mu.Lock()
		pc := r.pending[in.RPC.Call]
		r.mu.Unlock()
		if pc != nil {
			r.complete(pc, nil, fmt.Errorf("rpc: call %d (%s): bulk pull transfer failed: %w",
				in.RPC.Call, pe.method, serr))
		}
	}
}

// handlePullData resumes a parked bulk-handle call with its pulled argument.
func (r *RPC) handlePullData(in *core.RPCInbound) {
	key := callKey{src: in.SrcContext, call: in.RPC.Call}
	r.mu.Lock()
	w := r.waiting[key]
	delete(r.waiting, key)
	var h Handler
	if w != nil {
		h = r.handlers[w.method]
	}
	r.mu.Unlock()
	if w == nil {
		r.cOrphans.Inc()
		return
	}
	r.serve(key, w.method, h, w.route, in.Payload, w.deadline, w.trace)
}

// latFor returns (lazily creating and publishing) the latency stage set for
// one RPC method, visible in the context's Observe snapshot as "rpc:<name>".
func (r *RPC) latFor(method string) *obsv.StageSet {
	r.mu.Lock()
	ss := r.lats[method]
	fresh := ss == nil
	if fresh {
		ss = &obsv.StageSet{}
		r.lats[method] = ss
	}
	r.mu.Unlock()
	if fresh {
		r.ctx.RegisterLatencies("rpc:"+method, ss)
	}
	return ss
}

// Responder completes one inbound call: exactly one of Reply, Error, or a
// Send.../End sequence. It may outlive the handler invocation for deferred
// replies. Methods are safe for concurrent use.
type Responder struct {
	r      *RPC
	key    callKey
	route  *replyRoute
	method string
	trace  obsv.TraceID
	req    *Request // nil for synthetic responders (unknown handler)

	mu        sync.Mutex
	streaming bool
	done      bool
	next      uint64
}

func (r *RPC) newResponder(key callKey, route *replyRoute, method string,
	trace obsv.TraceID, req *Request) *Responder {
	return &Responder{r: r, key: key, route: route, method: method, trace: trace, req: req}
}

// finishCall releases the request's lazily-materialized context resources
// once the responder completes the call.
func (rp *Responder) finishCall() {
	if rp.req != nil {
		rp.req.finish()
	}
}

// send emits one reply-direction frame over the cached reply route.
func (rp *Responder) send(b *buffer.Buffer, kind byte, aux uint64, cls core.Class) error {
	return rp.route.sp.RSRWithRPC(rp.method, b, core.RPCSend{
		Ext:   wire.RPCExt{Call: rp.key.call, Kind: kind, Aux: aux},
		Class: cls, Trace: rp.trace,
	})
}

// Reply completes the call successfully with a result buffer (nil for an
// empty result). Replies are control-class: they bypass credit windows and
// are never shed, so a request/reply rendezvous cannot deadlock on flow
// control.
func (rp *Responder) Reply(b *buffer.Buffer) error {
	rp.mu.Lock()
	if rp.done || rp.streaming {
		rp.mu.Unlock()
		return ErrAlreadyReplied
	}
	rp.done = true
	rp.mu.Unlock()
	defer rp.finishCall()
	return rp.send(b, wire.RPCResponse, 0, core.ClassControl)
}

// Error completes the call with a failure the caller sees as a RemoteError.
func (rp *Responder) Error(err error) error {
	rp.mu.Lock()
	if rp.done {
		rp.mu.Unlock()
		return ErrAlreadyReplied
	}
	rp.done = true
	rp.mu.Unlock()
	defer rp.finishCall()
	msg := "unknown error"
	if err != nil {
		msg = err.Error()
	}
	b := buffer.New(len(msg) + 8)
	b.PutString(msg)
	return rp.send(b, wire.RPCError, 0, core.ClassControl)
}

// Send emits one chunk of a streaming reply. Chunks carry their sequence
// index on the wire and travel as ClassBulk, so overload policies may shed
// them before anything else; the stream's End frame is control-class and
// always arrives, letting the caller detect the gap by index.
func (rp *Responder) Send(chunk *buffer.Buffer) error {
	rp.mu.Lock()
	if rp.done {
		rp.mu.Unlock()
		return ErrAlreadyReplied
	}
	rp.streaming = true
	idx := rp.next
	rp.next++
	rp.mu.Unlock()
	rp.r.cChunks.Inc()
	return rp.send(chunk, wire.RPCStreamChunk, idx, core.ClassBulk)
}

// End terminates a streaming reply, carrying the chunk count. A stream with
// zero Sends is a legal empty stream.
func (rp *Responder) End() error {
	rp.mu.Lock()
	if rp.done {
		rp.mu.Unlock()
		return ErrAlreadyReplied
	}
	rp.done = true
	n := rp.next
	rp.mu.Unlock()
	defer rp.finishCall()
	return rp.send(nil, wire.RPCStreamEnd, n, core.ClassControl)
}
