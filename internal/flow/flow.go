// Package flow implements credit-based per-link flow control: the accounting
// behind the wire.FlagCredit extension.
//
// A receiver advertises a byte/frame window per (peer, method) link; the
// sender debits that window on every send and stops (or sheds, per class
// policy) when it is exhausted. The protocol is expressed entirely in
// CUMULATIVE totals, which makes it robust to everything a datagram method
// can do to control traffic:
//
//   - A grant carries the total bytes/frames the receiver has ever granted on
//     the link. The sender's available credit is granted − sent, and refills
//     merge by max — so lost, duplicated, or reordered grants can only delay
//     credit, never corrupt it.
//   - A probe carries the sender's cumulative sent totals. The receiver
//     reconciles by max-merging them into its consumed totals: frames the
//     sender debited but the network dropped would otherwise leak credit
//     forever; the probe heals the leak and triggers a fresh grant.
//
// Both sides bootstrap a new link at one full window (sender assumes it,
// receiver accounts for it), so the first messages flow without a handshake.
// The packages exposes two halves: Bank is the sender side (credits consumed
// toward each peer), Grantor the receiver side (credits granted to each peer).
package flow

import (
	"sync"
	"time"
)

// Window is a per-link credit allowance. Both dimensions bound the link:
// bytes cap buffered memory, frames cap queue slots.
type Window struct {
	Bytes  uint64
	Frames uint64
}

// Key identifies one flow-controlled link: the remote context and the
// method-layer name the traffic arrives under.
type Key struct {
	Peer   uint64
	Method string
}

// Bank is the sender-side credit ledger: one entry per (peer, method) link
// this context sends on.
type Bank struct {
	win   Window
	mu    sync.Mutex
	links map[Key]*bankEntry
}

type bankEntry struct {
	grantedBytes, grantedFrames uint64 // cumulative totals granted by the receiver
	sentBytes, sentFrames       uint64 // cumulative totals debited locally
	lastProbe                   time.Time
}

// NewBank returns a sender-side ledger that assumes every new link starts
// with one full window of credit.
func NewBank(win Window) *Bank {
	return &Bank{win: win, links: make(map[Key]*bankEntry)}
}

func (b *Bank) entry(peer uint64, method string) *bankEntry {
	k := Key{Peer: peer, Method: method}
	e := b.links[k]
	if e == nil {
		e = &bankEntry{grantedBytes: b.win.Bytes, grantedFrames: b.win.Frames}
		b.links[k] = e
	}
	return e
}

// TryAcquire debits bytes/frames against the link's remaining credit. It
// admits while ANY credit remains: a message larger than the remainder
// overdraws by at most one message, which guarantees progress for messages
// bigger than the window — the receiver's memory bound becomes window plus
// one maximal message, still finite.
func (b *Bank) TryAcquire(peer uint64, method string, bytes, frames uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer, method)
	if e.sentBytes >= e.grantedBytes || e.sentFrames >= e.grantedFrames {
		return false
	}
	e.sentBytes += bytes
	e.sentFrames += frames
	return true
}

// Refill merges a grant (cumulative totals) into the link. Max-merge makes
// duplicate and reordered grants harmless.
func (b *Bank) Refill(peer uint64, method string, grantedBytes, grantedFrames uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer, method)
	if grantedBytes > e.grantedBytes {
		e.grantedBytes = grantedBytes
	}
	if grantedFrames > e.grantedFrames {
		e.grantedFrames = grantedFrames
	}
}

// Sent reports the link's cumulative debited totals — the payload of a credit
// probe.
func (b *Bank) Sent(peer uint64, method string) (bytes, frames uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer, method)
	return e.sentBytes, e.sentFrames
}

// Available reports the link's remaining credit (for tests and diagnostics).
func (b *Bank) Available(peer uint64, method string) (bytes, frames uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer, method)
	if e.grantedBytes > e.sentBytes {
		bytes = e.grantedBytes - e.sentBytes
	}
	if e.grantedFrames > e.sentFrames {
		frames = e.grantedFrames - e.sentFrames
	}
	return bytes, frames
}

// ShouldProbe rate-limits credit probes on a starved link: it returns true at
// most once per interval per link (and consumes the slot).
func (b *Bank) ShouldProbe(peer uint64, method string, now time.Time, interval time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(peer, method)
	if now.Sub(e.lastProbe) < interval {
		return false
	}
	e.lastProbe = now
	return true
}

// Grantor is the receiver-side credit ledger: one entry per (peer, method)
// link this context receives on.
type Grantor struct {
	win   Window
	mu    sync.Mutex
	links map[Key]*grantEntry
}

type grantEntry struct {
	consumedBytes, consumedFrames uint64 // cumulative totals delivered here
	grantedBytes, grantedFrames   uint64 // cumulative totals last advertised
}

// NewGrantor returns a receiver-side ledger matching NewBank's bootstrap:
// each new link is accounted as already granted one full window.
func NewGrantor(win Window) *Grantor {
	return &Grantor{win: win, links: make(map[Key]*grantEntry)}
}

func (g *Grantor) entry(peer uint64, method string) *grantEntry {
	k := Key{Peer: peer, Method: method}
	e := g.links[k]
	if e == nil {
		e = &grantEntry{grantedBytes: g.win.Bytes, grantedFrames: g.win.Frames}
		g.links[k] = e
	}
	return e
}

// dueLocked reports whether a refreshed grant (consumed + window) would
// advance the advertised total by at least half a window in either dimension.
// Granting at half-window granularity keeps grant traffic to a few frames per
// window while the sender never quite runs dry under a steady consumer.
func (g *Grantor) dueLocked(e *grantEntry) bool {
	return e.consumedBytes+g.win.Bytes >= e.grantedBytes+(g.win.Bytes+1)/2 ||
		e.consumedFrames+g.win.Frames >= e.grantedFrames+(g.win.Frames+1)/2
}

// Consume records delivered traffic on the link and reports whether a grant
// refresh is due.
func (g *Grantor) Consume(peer uint64, method string, bytes, frames uint64) (grantDue bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.entry(peer, method)
	e.consumedBytes += bytes
	e.consumedFrames += frames
	return g.dueLocked(e)
}

// Grant advances the link's advertised totals to consumed + window and
// returns them — the payload of a grant frame.
func (g *Grantor) Grant(peer uint64, method string) (bytes, frames uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.entry(peer, method)
	e.grantedBytes = e.consumedBytes + g.win.Bytes
	e.grantedFrames = e.consumedFrames + g.win.Frames
	return e.grantedBytes, e.grantedFrames
}

// GrantIfDue combines the due check and the grant under one lock, for
// piggybacking a grant on an outbound frame only when it is worth carrying.
func (g *Grantor) GrantIfDue(peer uint64, method string) (bytes, frames uint64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.entry(peer, method)
	if !g.dueLocked(e) {
		return 0, 0, false
	}
	e.grantedBytes = e.consumedBytes + g.win.Bytes
	e.grantedFrames = e.consumedFrames + g.win.Frames
	return e.grantedBytes, e.grantedFrames, true
}

// Sync reconciles the link with a sender probe carrying cumulative sent
// totals. Frames the sender debited but the network lost would leak credit
// forever; adopting max(consumed, sent) heals the leak. The caller follows
// Sync with a Grant so the starved sender learns its restored window.
func (g *Grantor) Sync(peer uint64, method string, sentBytes, sentFrames uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.entry(peer, method)
	if sentBytes > e.consumedBytes {
		e.consumedBytes = sentBytes
	}
	if sentFrames > e.consumedFrames {
		e.consumedFrames = sentFrames
	}
}
