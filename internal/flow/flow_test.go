package flow

import (
	"sync"
	"testing"
	"time"
)

func TestBankInitialWindowAndExhaustion(t *testing.T) {
	b := NewBank(Window{Bytes: 100, Frames: 4})
	for i := 0; i < 4; i++ {
		if !b.TryAcquire(1, "tcp", 10, 1) {
			t.Fatalf("acquire %d refused inside the initial window", i)
		}
	}
	// Frame credit exhausted (4 of 4 used) even though bytes remain.
	if b.TryAcquire(1, "tcp", 10, 1) {
		t.Fatal("acquire admitted past the frame window")
	}
	bytes, frames := b.Available(1, "tcp")
	if bytes != 60 || frames != 0 {
		t.Fatalf("Available = (%d, %d), want (60, 0)", bytes, frames)
	}
}

func TestBankOvershootGuaranteesProgress(t *testing.T) {
	b := NewBank(Window{Bytes: 100, Frames: 10})
	// One message larger than the whole window: admitted (any credit remains),
	// overdrawing by one message.
	if !b.TryAcquire(1, "tcp", 350, 1) {
		t.Fatal("oversized message refused despite available credit")
	}
	if b.TryAcquire(1, "tcp", 1, 1) {
		t.Fatal("acquire admitted while overdrawn")
	}
	// A refill past the debt restores flow.
	b.Refill(1, "tcp", 450, 20)
	if !b.TryAcquire(1, "tcp", 50, 1) {
		t.Fatal("acquire refused after refill")
	}
}

func TestRefillMaxMergesStaleAndDuplicateGrants(t *testing.T) {
	b := NewBank(Window{Bytes: 100, Frames: 10})
	b.Refill(1, "udp", 300, 30)
	b.Refill(1, "udp", 200, 20) // reordered older grant: ignored
	b.Refill(1, "udp", 300, 30) // duplicate: ignored
	bytes, frames := b.Available(1, "udp")
	if bytes != 300 || frames != 30 {
		t.Fatalf("Available = (%d, %d), want (300, 30)", bytes, frames)
	}
}

func TestBankLinksAreIndependent(t *testing.T) {
	b := NewBank(Window{Bytes: 10, Frames: 1})
	if !b.TryAcquire(1, "tcp", 10, 1) {
		t.Fatal("first link refused")
	}
	if b.TryAcquire(1, "tcp", 10, 1) {
		t.Fatal("exhausted link admitted")
	}
	if !b.TryAcquire(2, "tcp", 10, 1) || !b.TryAcquire(1, "udp", 10, 1) {
		t.Fatal("other links refused: per-link isolation broken")
	}
}

func TestShouldProbeRateLimits(t *testing.T) {
	b := NewBank(Window{Bytes: 1, Frames: 1})
	t0 := time.Now()
	if !b.ShouldProbe(1, "tcp", t0, 10*time.Millisecond) {
		t.Fatal("first probe refused")
	}
	if b.ShouldProbe(1, "tcp", t0.Add(5*time.Millisecond), 10*time.Millisecond) {
		t.Fatal("probe admitted inside the interval")
	}
	if !b.ShouldProbe(1, "tcp", t0.Add(11*time.Millisecond), 10*time.Millisecond) {
		t.Fatal("probe refused after the interval")
	}
}

func TestGrantorHalfWindowCadence(t *testing.T) {
	g := NewGrantor(Window{Bytes: 100, Frames: 100})
	if g.Consume(1, "tcp", 30, 30) {
		t.Fatal("grant due below half a window")
	}
	if !g.Consume(1, "tcp", 25, 25) {
		t.Fatal("grant not due past half a window")
	}
	bytes, frames := g.Grant(1, "tcp")
	if bytes != 155 || frames != 155 {
		t.Fatalf("Grant = (%d, %d), want (155, 155)", bytes, frames)
	}
	// Freshly granted: not due again until another half window is consumed.
	if _, _, ok := g.GrantIfDue(1, "tcp"); ok {
		t.Fatal("GrantIfDue fired immediately after a grant")
	}
	if !g.Consume(1, "tcp", 50, 50) {
		t.Fatal("grant not due after another half window")
	}
}

func TestSyncHealsLostFrameLeak(t *testing.T) {
	win := Window{Bytes: 100, Frames: 100}
	b := NewBank(win)
	g := NewGrantor(win)
	// Sender debits a full window; the network loses everything, so the
	// receiver consumes nothing and no grant ever becomes due.
	if !b.TryAcquire(7, "udp", 60, 60) || !b.TryAcquire(7, "udp", 40, 40) {
		t.Fatal("initial window refused")
	}
	if b.TryAcquire(7, "udp", 1, 1) {
		t.Fatal("acquire admitted past the window")
	}
	if _, _, ok := g.GrantIfDue(7, "udp"); ok {
		t.Fatal("grant due with nothing consumed")
	}
	// Probe: sender's cumulative sent totals reach the receiver.
	sb, sf := b.Sent(7, "udp")
	g.Sync(7, "udp", sb, sf)
	bytes, frames := g.Grant(7, "udp")
	b.Refill(7, "udp", bytes, frames)
	if ab, af := b.Available(7, "udp"); ab != 100 || af != 100 {
		t.Fatalf("after probe/grant: Available = (%d, %d), want (100, 100)", ab, af)
	}
}

func TestSteadyStateNeverDeadlocks(t *testing.T) {
	// Simulated lossless link: every debit is consumed, every due grant is
	// delivered. The sender must never stall.
	win := Window{Bytes: 1000, Frames: 100}
	b := NewBank(win)
	g := NewGrantor(win)
	for i := 0; i < 10_000; i++ {
		if !b.TryAcquire(1, "tcp", 10, 1) {
			t.Fatalf("iteration %d: sender stalled in a lossless steady state", i)
		}
		if g.Consume(1, "tcp", 10, 1) {
			bytes, frames := g.Grant(1, "tcp")
			b.Refill(1, "tcp", bytes, frames)
		}
	}
}

func TestConcurrentAccountingConverges(t *testing.T) {
	win := Window{Bytes: 1 << 20, Frames: 1 << 20}
	b := NewBank(win)
	g := NewGrantor(win)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := uint64(0)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := uint64(0)
			for i := 0; i < 5000; i++ {
				if b.TryAcquire(1, "mpl", 16, 1) {
					n += 16
					if g.Consume(1, "mpl", 16, 1) {
						bytes, frames := g.Grant(1, "mpl")
						b.Refill(1, "mpl", bytes, frames)
					}
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	sb, _ := b.Sent(1, "mpl")
	if sb != total {
		t.Fatalf("Sent = %d, want %d: concurrent debits lost", sb, total)
	}
}
