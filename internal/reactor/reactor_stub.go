//go:build !linux

package reactor

// Reactor is unavailable on this platform; every module stays on the
// portable Poll fallback. The type exists so callers can hold a *Reactor
// field without build tags of their own.
type Reactor struct{}

// Supported reports whether this platform can run a reactor.
func Supported() bool { return false }

// New always fails on this platform.
func New() (*Reactor, error) { return nil, ErrUnsupported }

// Add always fails on this platform.
func (r *Reactor) Add(fd int, notify func()) error { return ErrUnsupported }

// Remove is a no-op on this platform.
func (r *Reactor) Remove(fd int) {}

// Watched reports 0 on this platform.
func (r *Reactor) Watched() int { return 0 }

// Close is a no-op on this platform.
func (r *Reactor) Close() {}
