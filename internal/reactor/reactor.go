// Package reactor provides event-driven readiness detection for the
// multimethod polling loop.
//
// The paper's unified poll function pays a per-module system call on every
// pass — a readiness probe per socket whether or not anything is pending —
// and mitigates the cost with skip_poll tuning. The reactor inverts the
// model: one OS readiness facility (epoll on Linux) owns the file
// descriptors of every socket-backed communication module, a single
// goroutine blocks in the kernel waiting for events, and readiness is
// published to the poll loop through callbacks that set bits in an atomic
// word. A poll pass then consumes readiness for free: one atomic load
// decides whether any reactor-backed module has work, and modules without
// work are never touched — zero system calls on the idle path, regardless
// of how many expensive methods are enabled.
//
// Edge-triggered registration is deliberate. The reactor goroutine never
// reads the sockets itself (delivery stays on the polling goroutine, where
// the paper's detection semantics live); with level-triggered events the
// waiting goroutine would spin on a socket it does not drain. Edge
// triggering makes the contract with modules explicit: after a readiness
// notification, the module's next Poll must consume everything pending —
// its final read must observe "would block" — or the remainder is
// announced only when the peer sends again.
//
// The reactor is a Linux fast path, not a portability layer: Supported()
// reports false elsewhere and New returns ErrUnsupported, leaving every
// module on the portable Poll fallback. Modules opt in through the
// transport.Reactive capability; inproc, simnet, and other memory-backed
// methods never register and keep their (cheap) polls.
package reactor

import "errors"

// ErrUnsupported reports that this platform has no readiness facility the
// reactor can use; callers fall back to pure polling.
var ErrUnsupported = errors.New("reactor: not supported on this platform")

// ErrClosed reports registration against a closed reactor.
var ErrClosed = errors.New("reactor: closed")
