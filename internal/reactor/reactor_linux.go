//go:build linux

package reactor

import (
	"sync"
	"syscall"
)

// epollET requests edge-triggered delivery. syscall.EPOLLET is declared as a
// negative untyped constant (-0x80000000); spelled positively it fits the
// uint32 Events field without a conversion dance.
const epollET = 1 << 31

// Reactor owns one epoll instance and the goroutine that waits on it.
// Registered file descriptors are watched edge-triggered for readability;
// when the kernel reports an event, the fd's notify callback runs on the
// reactor goroutine. Callbacks must be cheap and non-blocking — the intended
// implementation is a single atomic bit-set — because every registered fd
// shares the one waiter.
type Reactor struct {
	epfd  int
	wakeR int // pipe read end, registered with epoll to interrupt Wait
	wakeW int // pipe write end, written by Close

	mu     sync.Mutex
	notify map[int]func()
	closed bool
	exited chan struct{}
}

// Supported reports whether this platform can run a reactor.
func Supported() bool { return true }

// New creates a reactor and starts its waiter goroutine.
func New() (*Reactor, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	r := &Reactor{
		epfd:   epfd,
		wakeR:  p[0],
		wakeW:  p[1],
		notify: make(map[int]func()),
		exited: make(chan struct{}),
	}
	// The wake pipe is level-triggered on purpose: a Close racing the waiter
	// between epoll_wait calls must still be seen on the next call.
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(p[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(p[0])
		syscall.Close(p[1])
		return nil, err
	}
	go r.run()
	return r, nil
}

// Add registers fd for edge-triggered readability watching. notify runs on
// the reactor goroutine each time the kernel reports the fd readable; if the
// fd is already readable at registration time, an initial event is reported.
// The caller must Remove(fd) before closing the fd: closed descriptor
// numbers are reused by the OS, and a stale table entry would route a new
// socket's readiness to the old socket's callback.
func (r *Reactor) Add(fd int, notify func()) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.notify[fd] = notify
	r.mu.Unlock()
	ev := syscall.EpollEvent{
		Events: syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLERR | syscall.EPOLLHUP | epollET,
		Fd:     int32(fd),
	}
	if err := syscall.EpollCtl(r.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		r.mu.Lock()
		delete(r.notify, fd)
		r.mu.Unlock()
		return err
	}
	return nil
}

// Remove stops watching fd. Safe to call for fds never added.
func (r *Reactor) Remove(fd int) {
	r.mu.Lock()
	_, known := r.notify[fd]
	delete(r.notify, fd)
	closed := r.closed
	r.mu.Unlock()
	if known && !closed {
		_ = syscall.EpollCtl(r.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
	}
}

// Watched reports the number of registered fds (enquiry/testing).
func (r *Reactor) Watched() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.notify)
}

// Close stops the waiter goroutine and releases the epoll instance. It
// blocks until the waiter has exited, so no notify callback runs after
// Close returns.
func (r *Reactor) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.exited
		return
	}
	r.closed = true
	r.mu.Unlock()
	var one [1]byte
	_, _ = syscall.Write(r.wakeW, one[:])
	<-r.exited
	syscall.Close(r.epfd)
	syscall.Close(r.wakeR)
	syscall.Close(r.wakeW)
}

func (r *Reactor) run() {
	defer close(r.exited)
	events := make([]syscall.EpollEvent, 64)
	for {
		n, err := syscall.EpollWait(r.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			if fd == r.wakeR {
				r.mu.Lock()
				closed := r.closed
				r.mu.Unlock()
				if closed {
					return
				}
				continue
			}
			r.mu.Lock()
			fn := r.notify[fd]
			r.mu.Unlock()
			if fn != nil {
				fn()
			}
		}
	}
}
