package reactor

import (
	"net"
	"runtime"
	"testing"
	"time"
)

// udpFd returns a bound UDP socket and its fd.
func udpFd(t *testing.T) (*net.UDPConn, int) {
	t.Helper()
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	rc, err := pc.SyscallConn()
	if err != nil {
		t.Fatal(err)
	}
	fd := -1
	if err := rc.Control(func(f uintptr) { fd = int(f) }); err != nil {
		t.Fatal(err)
	}
	return pc, fd
}

func TestSupportedMatchesPlatform(t *testing.T) {
	if want := runtime.GOOS == "linux"; Supported() != want {
		t.Fatalf("Supported() = %v on %s", Supported(), runtime.GOOS)
	}
}

func TestUnsupportedPlatformStub(t *testing.T) {
	if Supported() {
		t.Skip("stub only exists off-Linux")
	}
	if _, err := New(); err != ErrUnsupported {
		t.Fatalf("New() error = %v, want ErrUnsupported", err)
	}
}

func TestNotifyOnReadable(t *testing.T) {
	if !Supported() {
		t.Skip("no reactor on this platform")
	}
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	pc, fd := udpFd(t)
	fired := make(chan struct{}, 16)
	if err := r.Add(fd, func() { fired <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	if got := r.Watched(); got != 1 {
		t.Fatalf("Watched() = %d, want 1", got)
	}

	// Nothing readable yet: no notification.
	select {
	case <-fired:
		t.Fatal("notified before any data arrived")
	case <-time.After(20 * time.Millisecond):
	}

	sender, err := net.DialUDP("udp", nil, pc.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if _, err := sender.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification for readable socket")
	}

	// Edge-triggered: with the data left unread, a second datagram still
	// produces a fresh edge (new data = new event).
	if _, err := sender.Write([]byte("ping2")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification for second datagram")
	}
}

func TestAddExistingReadableFiresImmediately(t *testing.T) {
	if !Supported() {
		t.Skip("no reactor on this platform")
	}
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	pc, fd := udpFd(t)
	sender, err := net.DialUDP("udp", nil, pc.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if _, err := sender.Write([]byte("early")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the datagram land before Add

	fired := make(chan struct{}, 1)
	if err := r.Add(fd, func() {
		select {
		case fired <- struct{}{}:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	// EPOLL_CTL_ADD reports an already-ready fd once even in edge-triggered
	// mode; modules rely on this to not lose data that raced registration.
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("no notification for fd that was readable at Add time")
	}
}

func TestRemoveStopsNotifications(t *testing.T) {
	if !Supported() {
		t.Skip("no reactor on this platform")
	}
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	pc, fd := udpFd(t)
	fired := make(chan struct{}, 16)
	if err := r.Add(fd, func() { fired <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	r.Remove(fd)
	if got := r.Watched(); got != 0 {
		t.Fatalf("Watched() after Remove = %d, want 0", got)
	}

	sender, err := net.DialUDP("udp", nil, pc.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if _, err := sender.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
		t.Fatal("notified after Remove")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestAddBadFd(t *testing.T) {
	if !Supported() {
		t.Skip("no reactor on this platform")
	}
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Add(-1, func() {}); err == nil {
		t.Fatal("Add(-1) succeeded")
	}
	if got := r.Watched(); got != 0 {
		t.Fatalf("Watched() after failed Add = %d, want 0", got)
	}
}

func TestCloseIsIdempotentAndStopsWaiter(t *testing.T) {
	if !Supported() {
		t.Skip("no reactor on this platform")
	}
	r, err := New()
	if err != nil {
		t.Fatal(err)
	}
	_, fd := udpFd(t)
	if err := r.Add(fd, func() {}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // second close must not panic or block

	// Post-close operations are inert.
	if err := r.Add(fd, func() {}); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	r.Remove(fd)
}
