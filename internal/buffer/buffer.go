// Package buffer implements the typed message buffers used by the Nexus
// communication core.
//
// A Buffer is the unit of data handed to a remote service request (RSR): the
// sender packs typed values into a Buffer, the buffer travels over whatever
// communication method the startpoint selects, and the handler unpacks the
// same sequence of values at the endpoint. The pack/unpack API mirrors the
// nexus_put_*/nexus_get_* functions of the original Nexus runtime.
//
// Buffers carry a one-byte format tag so that heterogeneous peers can
// exchange data: values are packed in the sender's native byte order and the
// receiver byte-swaps only when formats differ ("receiver makes right"),
// avoiding conversion cost on homogeneous links.
package buffer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Format identifies the byte order used for multi-byte values in a buffer.
type Format byte

const (
	// LittleEndian marks x86-style little-endian encoding.
	LittleEndian Format = 0
	// BigEndian marks network-order big-endian encoding.
	BigEndian Format = 1
)

// NativeFormat is the format used for newly created buffers. Go does not
// expose host endianness directly; we detect it once at init.
var NativeFormat = detectNative()

func detectNative() Format {
	var x uint16 = 1
	b := make([]byte, 2)
	binary.NativeEndian.PutUint16(b, x)
	if b[0] == 1 {
		return LittleEndian
	}
	return BigEndian
}

func (f Format) String() string {
	switch f {
	case LittleEndian:
		return "little-endian"
	case BigEndian:
		return "big-endian"
	default:
		return fmt.Sprintf("format(%d)", byte(f))
	}
}

func (f Format) order() binary.ByteOrder {
	if f == BigEndian {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

// Errors returned by unpack operations.
var (
	// ErrUnderflow reports an attempt to read past the end of a buffer.
	ErrUnderflow = errors.New("buffer: read past end of buffer")
	// ErrBadFormat reports an unknown format tag in an encoded buffer.
	ErrBadFormat = errors.New("buffer: unknown format tag")
	// ErrTooLarge reports a length prefix that exceeds the remaining data.
	ErrTooLarge = errors.New("buffer: length prefix exceeds remaining data")
)

// Buffer is a typed pack/unpack message buffer.
//
// The zero value is an empty buffer in the native format, ready to pack.
// Buffers are not safe for concurrent use.
type Buffer struct {
	format Format
	data   []byte
	pos    int // read cursor
	err    error
}

// New returns an empty buffer in the native format with the given capacity
// hint.
func New(capacity int) *Buffer {
	return &Buffer{format: NativeFormat, data: make([]byte, 0, capacity)}
}

// NewFormat returns an empty buffer that packs in the given format.
func NewFormat(f Format, capacity int) *Buffer {
	return &Buffer{format: f, data: make([]byte, 0, capacity)}
}

// FromBytes wraps an encoded payload (as produced by Encode) for unpacking.
func FromBytes(p []byte) (*Buffer, error) {
	if len(p) < 1 {
		return nil, ErrUnderflow
	}
	f := Format(p[0])
	if f != LittleEndian && f != BigEndian {
		return nil, ErrBadFormat
	}
	return &Buffer{format: f, data: p[1:]}, nil
}

// SetEncoded replaces b's contents with a copy of the encoded payload p (as
// produced by Encode) and rewinds the read cursor. The copy is owned by b,
// so p may be a borrowed frame. b's existing storage is reused when it fits.
func (b *Buffer) SetEncoded(p []byte) error {
	if len(p) < 1 {
		return ErrUnderflow
	}
	f := Format(p[0])
	if f != LittleEndian && f != BigEndian {
		return ErrBadFormat
	}
	b.format = f
	b.data = append(b.data[:0], p[1:]...)
	b.pos = 0
	b.err = nil
	return nil
}

// Decode is FromBytes returning a Buffer value instead of a pointer: a
// decoder that unpacks and discards in one frame's scope can keep the Buffer
// on its stack. The result aliases p.
func Decode(p []byte) (Buffer, error) {
	if len(p) < 1 {
		return Buffer{}, ErrUnderflow
	}
	f := Format(p[0])
	if f != LittleEndian && f != BigEndian {
		return Buffer{}, ErrBadFormat
	}
	return Buffer{format: f, data: p[1:]}, nil
}

// Encode returns the wire form of the buffer: a one-byte format tag followed
// by the packed bytes. The returned slice aliases the buffer's storage; the
// caller must not modify the buffer while the slice is in use.
func (b *Buffer) Encode() []byte {
	out := make([]byte, 1+len(b.data))
	out[0] = byte(b.format)
	copy(out[1:], b.data)
	return out
}

// EncodedLen reports the number of bytes Encode/EncodeTo produce: the format
// tag plus the packed payload.
func (b *Buffer) EncodedLen() int { return 1 + len(b.data) }

// EncodeTo writes the wire form of the buffer into dst, which must have
// length at least EncodedLen, and returns the number of bytes written. This
// is the fast-path alternative to Encode: the RSR sender lays the payload
// straight into its (pooled) frame scratch, so a send costs exactly one
// payload copy instead of an allocate-copy-copy chain.
func (b *Buffer) EncodeTo(dst []byte) int {
	dst[0] = byte(b.format)
	return 1 + copy(dst[1:], b.data)
}

// Format reports the byte order of values in the buffer.
func (b *Buffer) Format() Format { return b.format }

// Len reports the number of packed payload bytes (excluding the format tag).
func (b *Buffer) Len() int { return len(b.data) }

// Remaining reports the number of unread payload bytes.
func (b *Buffer) Remaining() int { return len(b.data) - b.pos }

// Err returns the first error encountered by an unpack operation, if any.
func (b *Buffer) Err() error { return b.err }

// Reset discards the contents and read cursor, keeping the allocation.
func (b *Buffer) Reset() {
	b.data = b.data[:0]
	b.pos = 0
	b.err = nil
}

// Rewind moves the read cursor back to the start without discarding data.
func (b *Buffer) Rewind() { b.pos = 0; b.err = nil }

// Bytes returns the raw packed payload (no format tag). The slice aliases
// internal storage.
func (b *Buffer) Bytes() []byte { return b.data }

// Clone returns a deep copy of the buffer, including the read cursor.
func (b *Buffer) Clone() *Buffer {
	c := &Buffer{format: b.format, pos: b.pos, err: b.err}
	c.data = append([]byte(nil), b.data...)
	return c
}

func (b *Buffer) grow(n int) []byte {
	l := len(b.data)
	b.data = append(b.data, make([]byte, n)...)
	return b.data[l : l+n]
}

func (b *Buffer) take(n int) ([]byte, bool) {
	if b.err != nil {
		return nil, false
	}
	if b.pos+n > len(b.data) {
		b.err = ErrUnderflow
		return nil, false
	}
	p := b.data[b.pos : b.pos+n]
	b.pos += n
	return p, true
}

// PutBool packs a boolean as a single byte.
func (b *Buffer) PutBool(v bool) {
	if v {
		b.grow(1)[0] = 1
	} else {
		b.grow(1)[0] = 0
	}
}

// Bool unpacks a boolean.
func (b *Buffer) Bool() bool {
	p, ok := b.take(1)
	return ok && p[0] != 0
}

// PutByte packs a single byte.
func (b *Buffer) PutByte(v byte) { b.grow(1)[0] = v }

// Byte unpacks a single byte.
func (b *Buffer) Byte() byte {
	p, ok := b.take(1)
	if !ok {
		return 0
	}
	return p[0]
}

// PutUint16 packs a uint16 in the buffer's format.
func (b *Buffer) PutUint16(v uint16) { b.format.order().PutUint16(b.grow(2), v) }

// Uint16 unpacks a uint16.
func (b *Buffer) Uint16() uint16 {
	p, ok := b.take(2)
	if !ok {
		return 0
	}
	return b.format.order().Uint16(p)
}

// PutUint32 packs a uint32 in the buffer's format.
func (b *Buffer) PutUint32(v uint32) { b.format.order().PutUint32(b.grow(4), v) }

// Uint32 unpacks a uint32.
func (b *Buffer) Uint32() uint32 {
	p, ok := b.take(4)
	if !ok {
		return 0
	}
	return b.format.order().Uint32(p)
}

// PutUint64 packs a uint64 in the buffer's format.
func (b *Buffer) PutUint64(v uint64) { b.format.order().PutUint64(b.grow(8), v) }

// Uint64 unpacks a uint64.
func (b *Buffer) Uint64() uint64 {
	p, ok := b.take(8)
	if !ok {
		return 0
	}
	return b.format.order().Uint64(p)
}

// PutInt32 packs an int32 in the buffer's format.
func (b *Buffer) PutInt32(v int32) { b.PutUint32(uint32(v)) }

// Int32 unpacks an int32.
func (b *Buffer) Int32() int32 { return int32(b.Uint32()) }

// PutInt64 packs an int64 in the buffer's format.
func (b *Buffer) PutInt64(v int64) { b.PutUint64(uint64(v)) }

// Int64 unpacks an int64.
func (b *Buffer) Int64() int64 { return int64(b.Uint64()) }

// PutInt packs an int as a 64-bit value.
func (b *Buffer) PutInt(v int) { b.PutInt64(int64(v)) }

// Int unpacks an int packed with PutInt.
func (b *Buffer) Int() int { return int(b.Int64()) }

// PutFloat32 packs a float32 in the buffer's format.
func (b *Buffer) PutFloat32(v float32) { b.PutUint32(math.Float32bits(v)) }

// Float32 unpacks a float32.
func (b *Buffer) Float32() float32 { return math.Float32frombits(b.Uint32()) }

// PutFloat64 packs a float64 in the buffer's format.
func (b *Buffer) PutFloat64(v float64) { b.PutUint64(math.Float64bits(v)) }

// Float64 unpacks a float64.
func (b *Buffer) Float64() float64 { return math.Float64frombits(b.Uint64()) }

// PutString packs a length-prefixed string.
func (b *Buffer) PutString(s string) {
	b.PutUint32(uint32(len(s)))
	copy(b.grow(len(s)), s)
}

// String unpacks a length-prefixed string.
func (b *Buffer) String() string {
	n := int(b.Uint32())
	if b.err != nil {
		return ""
	}
	if n > b.Remaining() {
		b.err = ErrTooLarge
		return ""
	}
	p, ok := b.take(n)
	if !ok {
		return ""
	}
	return string(p)
}

// PutBytes packs a length-prefixed byte slice.
func (b *Buffer) PutBytes(p []byte) {
	b.PutUint32(uint32(len(p)))
	copy(b.grow(len(p)), p)
}

// BytesValue unpacks a length-prefixed byte slice. The result is a copy.
func (b *Buffer) BytesValue() []byte {
	n := int(b.Uint32())
	if b.err != nil {
		return nil
	}
	if n > b.Remaining() {
		b.err = ErrTooLarge
		return nil
	}
	p, ok := b.take(n)
	if !ok {
		return nil
	}
	return append([]byte(nil), p...)
}

// BytesView unpacks a length-prefixed byte slice without copying. The result
// aliases the buffer's storage: it is valid only as long as the buffer's
// backing bytes are, which for a delivery-borrowed buffer means only until
// the handler returns.
func (b *Buffer) BytesView() []byte {
	n := int(b.Uint32())
	if b.err != nil {
		return nil
	}
	if n > b.Remaining() {
		b.err = ErrTooLarge
		return nil
	}
	p, ok := b.take(n)
	if !ok {
		return nil
	}
	return p
}

// PutEncoded packs another buffer's wire form (format tag plus payload) as a
// length-prefixed value — the same bytes as PutBytes(src.Encode()) without
// the intermediate allocation. A nil src packs an empty native-format buffer.
func (b *Buffer) PutEncoded(src *Buffer) {
	if src == nil {
		b.PutUint32(1)
		b.PutByte(byte(NativeFormat))
		return
	}
	b.PutUint32(uint32(src.EncodedLen()))
	b.PutByte(byte(src.format))
	copy(b.grow(len(src.data)), src.data)
}

// PutFloat64s packs a length-prefixed vector of float64 values.
func (b *Buffer) PutFloat64s(v []float64) {
	b.PutUint32(uint32(len(v)))
	p := b.grow(8 * len(v))
	ord := b.format.order()
	for i, x := range v {
		ord.PutUint64(p[8*i:], math.Float64bits(x))
	}
}

// Float64s unpacks a vector packed with PutFloat64s.
func (b *Buffer) Float64s() []float64 {
	n := int(b.Uint32())
	if b.err != nil {
		return nil
	}
	if 8*n > b.Remaining() {
		b.err = ErrTooLarge
		return nil
	}
	p, ok := b.take(8 * n)
	if !ok {
		return nil
	}
	ord := b.format.order()
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(ord.Uint64(p[8*i:]))
	}
	return out
}

// PutInt32s packs a length-prefixed vector of int32 values.
func (b *Buffer) PutInt32s(v []int32) {
	b.PutUint32(uint32(len(v)))
	p := b.grow(4 * len(v))
	ord := b.format.order()
	for i, x := range v {
		ord.PutUint32(p[4*i:], uint32(x))
	}
}

// Int32s unpacks a vector packed with PutInt32s.
func (b *Buffer) Int32s() []int32 {
	n := int(b.Uint32())
	if b.err != nil {
		return nil
	}
	if 4*n > b.Remaining() {
		b.err = ErrTooLarge
		return nil
	}
	p, ok := b.take(4 * n)
	if !ok {
		return nil
	}
	ord := b.format.order()
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(ord.Uint32(p[4*i:]))
	}
	return out
}

// PutRaw appends raw bytes with no length prefix. The receiver must know the
// length (e.g. fixed-size payloads in microbenchmarks).
func (b *Buffer) PutRaw(p []byte) { copy(b.grow(len(p)), p) }

// Raw unpacks n raw bytes without a length prefix. The result aliases the
// buffer's storage.
func (b *Buffer) Raw(n int) []byte {
	p, ok := b.take(n)
	if !ok {
		return nil
	}
	return p
}
