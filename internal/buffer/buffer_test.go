package buffer

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNativeFormatDetected(t *testing.T) {
	if NativeFormat != LittleEndian && NativeFormat != BigEndian {
		t.Fatalf("NativeFormat = %v, want little or big endian", NativeFormat)
	}
}

func TestEmptyBufferEncodeDecode(t *testing.T) {
	b := New(0)
	enc := b.Encode()
	if len(enc) != 1 {
		t.Fatalf("empty buffer encodes to %d bytes, want 1 (format tag)", len(enc))
	}
	d, err := FromBytes(enc)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if d.Len() != 0 || d.Remaining() != 0 {
		t.Fatalf("decoded empty buffer has Len=%d Remaining=%d", d.Len(), d.Remaining())
	}
}

func TestFromBytesErrors(t *testing.T) {
	if _, err := FromBytes(nil); err != ErrUnderflow {
		t.Errorf("FromBytes(nil) err = %v, want ErrUnderflow", err)
	}
	if _, err := FromBytes([]byte{99}); err != ErrBadFormat {
		t.Errorf("FromBytes(bad tag) err = %v, want ErrBadFormat", err)
	}
}

func TestScalarRoundTripBothFormats(t *testing.T) {
	for _, f := range []Format{LittleEndian, BigEndian} {
		b := NewFormat(f, 64)
		b.PutBool(true)
		b.PutByte(0xAB)
		b.PutUint16(0xBEEF)
		b.PutUint32(0xDEADBEEF)
		b.PutUint64(0x0123456789ABCDEF)
		b.PutInt32(-12345)
		b.PutInt64(-987654321)
		b.PutInt(42)
		b.PutFloat32(3.5)
		b.PutFloat64(-2.25)
		b.PutString("hello, nexus")

		d, err := FromBytes(b.Encode())
		if err != nil {
			t.Fatalf("format %v: FromBytes: %v", f, err)
		}
		if got := d.Bool(); got != true {
			t.Errorf("format %v: Bool = %v", f, got)
		}
		if got := d.Byte(); got != 0xAB {
			t.Errorf("format %v: Byte = %#x", f, got)
		}
		if got := d.Uint16(); got != 0xBEEF {
			t.Errorf("format %v: Uint16 = %#x", f, got)
		}
		if got := d.Uint32(); got != 0xDEADBEEF {
			t.Errorf("format %v: Uint32 = %#x", f, got)
		}
		if got := d.Uint64(); got != 0x0123456789ABCDEF {
			t.Errorf("format %v: Uint64 = %#x", f, got)
		}
		if got := d.Int32(); got != -12345 {
			t.Errorf("format %v: Int32 = %d", f, got)
		}
		if got := d.Int64(); got != -987654321 {
			t.Errorf("format %v: Int64 = %d", f, got)
		}
		if got := d.Int(); got != 42 {
			t.Errorf("format %v: Int = %d", f, got)
		}
		if got := d.Float32(); got != 3.5 {
			t.Errorf("format %v: Float32 = %v", f, got)
		}
		if got := d.Float64(); got != -2.25 {
			t.Errorf("format %v: Float64 = %v", f, got)
		}
		if got := d.String(); got != "hello, nexus" {
			t.Errorf("format %v: String = %q", f, got)
		}
		if err := d.Err(); err != nil {
			t.Errorf("format %v: Err = %v", f, err)
		}
		if d.Remaining() != 0 {
			t.Errorf("format %v: %d bytes left over", f, d.Remaining())
		}
	}
}

// TestCrossFormatDecode packs in one byte order and checks that a receiver
// that decodes the wire form (which carries the format tag) recovers the
// original values — the heterogeneity story of the paper's buffer layer.
func TestCrossFormatDecode(t *testing.T) {
	for _, packer := range []Format{LittleEndian, BigEndian} {
		b := NewFormat(packer, 16)
		b.PutUint32(0x01020304)
		b.PutFloat64(math.Pi)
		d, err := FromBytes(b.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Uint32(); got != 0x01020304 {
			t.Errorf("packer %v: Uint32 = %#x, want 0x01020304", packer, got)
		}
		if got := d.Float64(); got != math.Pi {
			t.Errorf("packer %v: Float64 = %v, want pi", packer, got)
		}
	}
}

func TestUnderflowSticky(t *testing.T) {
	b := New(0)
	b.PutUint16(7)
	d, err := FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Uint16()
	if got := d.Uint32(); got != 0 {
		t.Errorf("underflowing Uint32 = %d, want 0", got)
	}
	if d.Err() != ErrUnderflow {
		t.Errorf("Err = %v, want ErrUnderflow", d.Err())
	}
	// Error is sticky: subsequent reads keep failing even if bytes remain.
	if got := d.Byte(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
}

func TestStringTooLarge(t *testing.T) {
	b := New(0)
	b.PutUint32(1 << 30) // bogus huge length
	d, err := FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if d.Err() != ErrTooLarge {
		t.Errorf("Err = %v, want ErrTooLarge", d.Err())
	}
}

func TestBytesValueCopies(t *testing.T) {
	b := New(0)
	b.PutBytes([]byte{1, 2, 3})
	d, err := FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	v := d.BytesValue()
	if !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("BytesValue = %v", v)
	}
	v[0] = 99
	d.Rewind()
	v2 := d.BytesValue()
	if v2[0] != 1 {
		t.Errorf("BytesValue result aliases buffer storage")
	}
}

func TestResetAndRewind(t *testing.T) {
	b := New(0)
	b.PutInt(5)
	d, _ := FromBytes(b.Encode())
	if d.Int() != 5 {
		t.Fatal("first read failed")
	}
	d.Rewind()
	if d.Int() != 5 {
		t.Fatal("read after Rewind failed")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
}

func TestClone(t *testing.T) {
	b := New(0)
	b.PutString("abc")
	c := b.Clone()
	b.PutString("def") // must not affect the clone
	d, _ := FromBytes(c.Encode())
	if got := d.String(); got != "abc" {
		t.Errorf("clone decoded %q, want abc", got)
	}
	if d.Remaining() != 0 {
		t.Errorf("clone has %d trailing bytes", d.Remaining())
	}
}

func TestRawRoundTrip(t *testing.T) {
	payload := []byte{9, 8, 7, 6, 5}
	b := New(0)
	b.PutRaw(payload)
	d, _ := FromBytes(b.Encode())
	got := d.Raw(len(payload))
	if !bytes.Equal(got, payload) {
		t.Errorf("Raw = %v, want %v", got, payload)
	}
	if d.Raw(1) != nil {
		t.Error("Raw past end should return nil")
	}
	if d.Err() != ErrUnderflow {
		t.Errorf("Err = %v, want ErrUnderflow", d.Err())
	}
}

func TestPropertyStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		b := New(len(s) + 8)
		b.PutString(s)
		d, err := FromBytes(b.Encode())
		if err != nil {
			return false
		}
		return d.String() == s && d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyBytesRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		b := New(len(p) + 8)
		b.PutBytes(p)
		d, err := FromBytes(b.Encode())
		if err != nil {
			return false
		}
		return bytes.Equal(d.BytesValue(), p) && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyScalarSequenceRoundTrip(t *testing.T) {
	f := func(a uint16, b32 uint32, c uint64, s string, fl float64, big bool) bool {
		format := LittleEndian
		if big {
			format = BigEndian
		}
		b := NewFormat(format, 64)
		b.PutUint16(a)
		b.PutUint32(b32)
		b.PutUint64(c)
		b.PutString(s)
		b.PutFloat64(fl)
		d, err := FromBytes(b.Encode())
		if err != nil {
			return false
		}
		okF := d.Float64
		gotA, gotB, gotC, gotS := d.Uint16(), d.Uint32(), d.Uint64(), d.String()
		gotFl := okF()
		if d.Err() != nil || d.Remaining() != 0 {
			return false
		}
		floatOK := gotFl == fl || (math.IsNaN(gotFl) && math.IsNaN(fl))
		return gotA == a && gotB == b32 && gotC == c && gotS == s && floatOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFloat64sRoundTrip(t *testing.T) {
	f := func(v []float64, big bool) bool {
		format := LittleEndian
		if big {
			format = BigEndian
		}
		b := NewFormat(format, 8*len(v)+8)
		b.PutFloat64s(v)
		d, err := FromBytes(b.Encode())
		if err != nil {
			return false
		}
		got := d.Float64s()
		if d.Err() != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			same := got[i] == v[i] || (math.IsNaN(got[i]) && math.IsNaN(v[i]))
			if !same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyInt32sRoundTrip(t *testing.T) {
	f := func(v []int32) bool {
		b := New(4*len(v) + 8)
		b.PutInt32s(v)
		d, err := FromBytes(b.Encode())
		if err != nil {
			return false
		}
		got := d.Int32s()
		if d.Err() != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64sTruncatedFails(t *testing.T) {
	b := New(0)
	b.PutUint32(10) // claims 10 float64s, provides none
	d, _ := FromBytes(b.Encode())
	if got := d.Float64s(); got != nil {
		t.Errorf("Float64s on truncated buffer = %v, want nil", got)
	}
	if d.Err() != ErrTooLarge {
		t.Errorf("Err = %v, want ErrTooLarge", d.Err())
	}
}

func BenchmarkPutFloat64s(b *testing.B) {
	v := make([]float64, 1024)
	buf := New(8*len(v) + 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		buf.PutFloat64s(v)
	}
}

func BenchmarkFloat64sDecode(b *testing.B) {
	v := make([]float64, 1024)
	src := New(8*len(v) + 16)
	src.PutFloat64s(v)
	enc := src.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := FromBytes(enc)
		if err != nil {
			b.Fatal(err)
		}
		if got := d.Float64s(); len(got) != len(v) {
			b.Fatal("bad decode")
		}
	}
}
