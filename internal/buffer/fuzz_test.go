package buffer

import "testing"

// FuzzFromBytes checks that decoding arbitrary bytes never panics and that
// every typed read on the result fails cleanly or stays in bounds.
func FuzzFromBytes(f *testing.F) {
	seed := New(32)
	seed.PutString("seed")
	seed.PutFloat64s([]float64{1, 2})
	f.Add(seed.Encode())
	f.Add([]byte{})
	f.Add([]byte{byte(BigEndian), 0, 0, 0, 200}) // lying length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := FromBytes(data)
		if err != nil {
			return
		}
		// Exercise every reader; none may panic, and errors must be sticky.
		_ = b.Bool()
		_ = b.Uint16()
		_ = b.String()
		_ = b.Float64s()
		_ = b.Int32s()
		_ = b.BytesValue()
		_ = b.Raw(3)
		if b.Remaining() < 0 {
			t.Error("negative Remaining")
		}
		if b.Err() != nil {
			before := b.Remaining()
			_ = b.Uint64()
			if b.Remaining() != before {
				t.Error("read after error consumed bytes")
			}
		}
	})
}
