package buffer

import (
	"bytes"
	"testing"
)

// TestEncodeToMatchesEncode checks that the copy-free encode path fills a
// caller-provided slice with exactly the bytes Encode allocates.
func TestEncodeToMatchesEncode(t *testing.T) {
	b := New(64)
	b.PutInt64(-42)
	b.PutString("hello")
	b.PutBool(true)

	want := b.Encode()
	if got := b.EncodedLen(); got != len(want) {
		t.Fatalf("EncodedLen = %d, Encode produced %d bytes", got, len(want))
	}
	dst := make([]byte, b.EncodedLen())
	if n := b.EncodeTo(dst); n != len(want) {
		t.Fatalf("EncodeTo wrote %d bytes, want %d", n, len(want))
	}
	if !bytes.Equal(dst, want) {
		t.Fatalf("EncodeTo produced %x, Encode produced %x", dst, want)
	}

	// The encoded form round-trips through FromBytes.
	dec, err := FromBytes(dst)
	if err != nil {
		t.Fatal(err)
	}
	if v := dec.Int64(); v != -42 {
		t.Errorf("Int64 = %d", v)
	}
	if s := dec.String(); s != "hello" {
		t.Errorf("String = %q", s)
	}
	if !dec.Bool() {
		t.Error("Bool = false")
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeToEmpty covers the degenerate frame: a lone format tag.
func TestEncodeToEmpty(t *testing.T) {
	b := New(0)
	if b.EncodedLen() != 1 {
		t.Fatalf("empty EncodedLen = %d", b.EncodedLen())
	}
	dst := make([]byte, 1)
	if n := b.EncodeTo(dst); n != 1 {
		t.Fatalf("EncodeTo = %d", n)
	}
	if dst[0] != byte(b.format) {
		t.Errorf("format tag = %#x, want %#x", dst[0], byte(b.format))
	}
}

// TestEncodeToAllocs pins the payload move at zero allocations.
func TestEncodeToAllocs(t *testing.T) {
	b := New(512)
	b.PutBytes(make([]byte, 400))
	dst := make([]byte, b.EncodedLen())
	n := testing.AllocsPerRun(100, func() {
		b.EncodeTo(dst)
	})
	if n != 0 {
		t.Errorf("EncodeTo allocates %.1f per call, want 0", n)
	}
}
