package pipeline

import (
	"math"
	"testing"
	"time"

	"nexus/internal/cluster"
	"nexus/internal/core"
	"nexus/internal/transport"
)

func fastParams() transport.Params {
	return transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}
}

// boot builds a machine, installs workers on ranks 1..n-1, and starts their
// pollers.
func boot(t *testing.T, mcfg cluster.Config, pcfg Config) *cluster.Machine {
	t.Helper()
	m, err := cluster.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	for r := 1; r < m.Size(); r++ {
		InstallWorker(m.Context(r), pcfg)
		stop := m.Context(r).StartPoller(0)
		t.Cleanup(stop)
	}
	return m
}

func TestPipelineMatchesLocalGroundTruth(t *testing.T) {
	cfg := Config{Workers: 3, Tiles: 12, TileW: 16, TileH: 16, FilterIters: 3, Timeout: 30 * time.Second}
	m := boot(t, cluster.Uniform(4, "p", core.MethodConfig{Name: "inproc"}), cfg)
	st, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tiles != cfg.Tiles {
		t.Errorf("Tiles = %d", st.Tiles)
	}
	want := Expected(cfg)
	if math.Abs(st.Checksum-want) > 1e-9*math.Abs(want) {
		t.Errorf("checksum = %v, ground truth %v", st.Checksum, want)
	}
	if st.Retries != 0 {
		t.Errorf("unexpected retries: %d", st.Retries)
	}
	total := 0
	for _, n := range st.PerWorker {
		total += n
	}
	if total != cfg.Tiles {
		t.Errorf("PerWorker sums to %d", total)
	}
}

// TestChecksumIndependentOfWorkerCount is the pipeline's determinism
// invariant: more parallelism changes timing, never output.
func TestChecksumIndependentOfWorkerCount(t *testing.T) {
	base := Config{Tiles: 10, TileW: 12, TileH: 12, FilterIters: 2, Timeout: 30 * time.Second}
	var sums []float64
	for _, workers := range []int{1, 2, 4} {
		cfg := base
		cfg.Workers = workers
		m := boot(t, cluster.Uniform(workers+1, "p", core.MethodConfig{Name: "inproc"}), cfg)
		st, err := Run(m, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sums = append(sums, st.Checksum)
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] {
			t.Errorf("checksums differ across worker counts: %v", sums)
		}
	}
	if want := Expected(base.withDefaults()); sums[0] != want {
		// withDefaults fills Workers, which Expected ignores; compare value.
		if math.Abs(sums[0]-want) > 1e-9*math.Abs(want) {
			t.Errorf("checksum %v != ground truth %v", sums[0], want)
		}
	}
}

// TestPipelineAcrossPartitions runs the source in one partition and the farm
// in another: tiles travel over the wide-area method both ways.
func TestPipelineAcrossPartitions(t *testing.T) {
	cfg := Config{Workers: 2, Tiles: 8, TileW: 8, TileH: 8, Timeout: 30 * time.Second}
	mcfg := cluster.TwoPartition(1, "instrument", 2, "farm",
		core.MethodConfig{Name: "mpl", Params: fastParams()},
		core.MethodConfig{Name: "wan", Params: fastParams()},
	)
	m := boot(t, mcfg, cfg)
	st, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := Expected(cfg)
	if math.Abs(st.Checksum-want) > 1e-9*math.Abs(want) {
		t.Errorf("cross-partition checksum = %v, want %v", st.Checksum, want)
	}
	// The tiles really crossed the wide area.
	if m.Context(0).Stats().Get("frames.wan") == 0 {
		t.Error("no wan frames at the source")
	}
}

// TestWorkerCrashRecovered kills one worker mid-run; tile reassignment must
// still deliver every tile with the correct checksum.
func TestWorkerCrashRecovered(t *testing.T) {
	cfg := Config{
		Workers: 2, Tiles: 10, TileW: 8, TileH: 8,
		Window: 1, RetryAfter: 100 * time.Millisecond, Timeout: 30 * time.Second,
	}
	m, err := cluster.New(cluster.Uniform(3, "p", core.MethodConfig{Name: "inproc"}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	InstallWorker(m.Context(1), cfg)
	InstallWorker(m.Context(2), cfg)
	stop1 := m.Context(1).StartPoller(0)
	defer stop1()
	// Worker 2 never polls: every tile assigned to it times out and is
	// reassigned — the "crashed worker" case.
	st, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 {
		t.Error("expected retries with a dead worker")
	}
	want := Expected(cfg)
	if math.Abs(st.Checksum-want) > 1e-9*math.Abs(want) {
		t.Errorf("checksum after recovery = %v, want %v", st.Checksum, want)
	}
	if st.PerWorker[1] != cfg.Tiles {
		t.Errorf("live worker processed %d/%d tiles", st.PerWorker[1], cfg.Tiles)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Config{Workers: 5, Tiles: 1}
	m, err := cluster.New(cluster.Uniform(2, "p", core.MethodConfig{Name: "inproc"}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := Run(m, cfg); err == nil {
		t.Error("oversubscribed worker count accepted")
	}
}

func TestExpectedDeterministic(t *testing.T) {
	cfg := Config{Tiles: 5, TileW: 8, TileH: 8, FilterIters: 2}
	a, b := Expected(cfg), Expected(cfg)
	if a != b || a == 0 {
		t.Errorf("Expected not deterministic: %v vs %v", a, b)
	}
}
