// Package pipeline implements a near-real-time image-processing pipeline —
// the paper's second application family (§1, §2 and reference [20]:
// satellite image processing as a metacomputing application): a data source
// streams image tiles to a farm of processing contexts, and results flow to
// a collector, with the communication methods chosen per link by the usual
// table-driven selection.
//
// The pipeline is built directly on the one-sided RSR API (no MPI layer):
// the source fires tile RSRs at workers, workers fire result RSRs back, and
// flow control is a per-worker window of outstanding tiles. The source also
// implements tile-level recovery: a tile unacknowledged past a deadline is
// reassigned to the next worker, so a crashed worker delays but never loses
// output — the "switch in the event of error" behaviour of §2 at the
// application level, on top of the startpoint-level failover the core
// provides.
package pipeline

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/cluster"
	"nexus/internal/core"
)

// Handler names used by the pipeline protocol.
const (
	handlerTile   = "pipeline.tile"
	handlerResult = "pipeline.result"
)

// Config parameterises a pipeline run on a machine of 1 + Workers contexts:
// rank 0 is the source and collector; ranks 1..Workers process tiles.
type Config struct {
	// Workers is the number of processing contexts (machine size - 1).
	Workers int
	// Tiles is the number of image tiles to process.
	Tiles int
	// TileW and TileH are the tile dimensions.
	TileW, TileH int
	// FilterIters applies the smoothing filter this many times per tile.
	FilterIters int
	// Window bounds outstanding tiles per worker (default 2).
	Window int
	// RetryAfter reassigns a tile not acknowledged within this duration
	// (default 2s); tiles are deduplicated at the collector.
	RetryAfter time.Duration
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.TileW == 0 {
		c.TileW = 32
	}
	if c.TileH == 0 {
		c.TileH = 32
	}
	if c.Tiles == 0 {
		c.Tiles = 16
	}
	if c.FilterIters == 0 {
		c.FilterIters = 2
	}
	if c.Window == 0 {
		c.Window = 2
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// Stats summarises a pipeline run.
type Stats struct {
	// Tiles is the number of distinct tiles collected.
	Tiles int
	// Checksum is the order-independent sum of all processed pixels;
	// deterministic for a Config regardless of worker count, scheduling,
	// or communication methods.
	Checksum float64
	// PerWorker counts tiles processed by each worker (1-indexed rank).
	PerWorker []int
	// Retries counts tile reassignments (0 unless workers failed).
	Retries int
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
}

// sourceTile generates the synthetic instrument data for one tile.
func sourceTile(cfg Config, id int) []float64 {
	px := make([]float64, cfg.TileW*cfg.TileH)
	for y := 0; y < cfg.TileH; y++ {
		for x := 0; x < cfg.TileW; x++ {
			px[y*cfg.TileW+x] = float64((x*31+y*17+id*7)%64) / 64.0
		}
	}
	return px
}

// processTile applies the smoothing filter: the per-tile "science".
func processTile(cfg Config, px []float64) []float64 {
	w, h := cfg.TileW, cfg.TileH
	cur := px
	next := make([]float64, len(px))
	for it := 0; it < cfg.FilterIters; it++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				sum, n := 0.0, 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := x+dx, y+dy
						if nx < 0 || nx >= w || ny < 0 || ny >= h {
							continue
						}
						sum += cur[ny*w+nx]
						n++
					}
				}
				next[y*w+x] = sum / float64(n)
			}
		}
		cur, next = next, cur
	}
	out := make([]float64, len(cur))
	copy(out, cur)
	return out
}

// Expected computes the checksum Run must produce for a Config, by
// processing every tile locally — the ground truth for tests.
func Expected(cfg Config) float64 {
	cfg = cfg.withDefaults()
	sum := 0.0
	for id := 0; id < cfg.Tiles; id++ {
		for _, v := range processTile(cfg, sourceTile(cfg, id)) {
			sum += v
		}
	}
	return sum
}

// InstallWorker registers the processing handler in a worker context. The
// worker answers tile RSRs with result RSRs over the startpoint packed into
// each tile message, whenever its context polls.
func InstallWorker(ctx *core.Context, cfg Config) {
	cfg = cfg.withDefaults()
	ctx.RegisterHandler(handlerTile, func(ep *core.Endpoint, b *buffer.Buffer) {
		id := b.Int()
		workerRank := b.Int()
		px := b.Float64s()
		reply, err := ctx.DecodeStartpoint(b)
		if err != nil || b.Err() != nil {
			return
		}
		out := processTile(cfg, px)
		res := buffer.New(8*len(out) + 32)
		res.PutInt(id)
		res.PutInt(workerRank)
		res.PutFloat64s(out)
		_ = reply.RSR(handlerResult, res)
		reply.Close()
	})
}

// Run drives the pipeline from rank 0 of the machine: ranks 1..Workers must
// already have InstallWorker'd and be polling (their own loop or a machine
// poller).
func Run(m *cluster.Machine, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 1 || cfg.Workers > m.Size()-1 {
		return Stats{}, fmt.Errorf("pipeline: %d workers on a machine of %d", cfg.Workers, m.Size())
	}
	src := m.Context(0)
	start := time.Now()

	// Collector state.
	type doneTile struct {
		worker int
		sum    float64
	}
	collected := make(map[int]doneTile, cfg.Tiles)
	resultEP := src.NewEndpoint(core.WithHandler(func(ep *core.Endpoint, b *buffer.Buffer) {
		id := b.Int()
		worker := b.Int()
		px := b.Float64s()
		if b.Err() != nil {
			return
		}
		if _, dup := collected[id]; dup {
			return // a retried tile came back twice; keep the first
		}
		sum := 0.0
		for _, v := range px {
			sum += v
		}
		collected[id] = doneTile{worker: worker, sum: sum}
	}))
	defer resultEP.Close()

	// Startpoints to each worker's tile handler endpoint, via lightweight
	// encoding (peer tables were exchanged at machine boot).
	workerSP := make([]*core.Startpoint, cfg.Workers+1)
	for wr := 1; wr <= cfg.Workers; wr++ {
		ep := m.Context(wr).NewEndpoint() // tiles name the context handler
		sp, err := core.TransferStartpoint(ep.NewStartpoint(), src)
		if err != nil {
			return Stats{}, fmt.Errorf("pipeline: linking worker %d: %w", wr, err)
		}
		workerSP[wr] = sp
		defer sp.Close()
	}

	type assignment struct {
		worker int
		at     time.Time
	}
	outstanding := make(map[int]assignment)
	inFlight := make([]int, cfg.Workers+1) // per-worker outstanding count
	nextTile := 0
	retries := 0
	rr := 0 // round-robin cursor

	sendTile := func(id int) error {
		// Pick the next worker with window room.
		for try := 0; try < cfg.Workers; try++ {
			rr = rr%cfg.Workers + 1
			if inFlight[rr] < cfg.Window {
				b := buffer.New(8*cfg.TileW*cfg.TileH + 64)
				b.PutInt(id)
				b.PutInt(rr)
				b.PutFloat64s(sourceTile(cfg, id))
				resultEP.NewStartpoint().EncodeLite(b)
				if err := workerSP[rr].RSR(handlerTile, b); err != nil {
					return err
				}
				outstanding[id] = assignment{worker: rr, at: time.Now()}
				inFlight[rr]++
				return nil
			}
		}
		return nil // no window room anywhere; caller retries after polling
	}

	deadline := time.Now().Add(cfg.Timeout)
	for len(collected) < cfg.Tiles {
		if time.Now().After(deadline) {
			return Stats{}, fmt.Errorf("pipeline: timeout with %d/%d tiles", len(collected), cfg.Tiles)
		}
		// Feed new tiles while windows allow.
		for nextTile < cfg.Tiles {
			before := len(outstanding)
			if err := sendTile(nextTile); err != nil {
				return Stats{}, err
			}
			if len(outstanding) == before {
				break // all windows full
			}
			nextTile++
		}
		// Collect results.
		if src.Poll() == 0 {
			runtime.Gosched()
		}
		for id, d := range collected {
			if a, ok := outstanding[id]; ok {
				inFlight[a.worker]--
				delete(outstanding, id)
				_ = d
			}
		}
		// Reassign tiles stuck past the deadline (dead or slow worker).
		now := time.Now()
		for id, a := range outstanding {
			if now.Sub(a.at) < cfg.RetryAfter {
				continue
			}
			inFlight[a.worker]--
			delete(outstanding, id)
			retries++
			// Steer away from the timed-out worker if possible.
			if cfg.Workers > 1 {
				rr = a.worker % cfg.Workers // next rr increment skips it
			}
			if err := sendTile(id); err != nil {
				return Stats{}, err
			}
		}
	}

	st := Stats{
		Tiles:     len(collected),
		PerWorker: make([]int, cfg.Workers+1),
		Retries:   retries,
		Elapsed:   time.Since(start),
	}
	// Order-independent checksum: sum over tile ids.
	for id := 0; id < cfg.Tiles; id++ {
		d := collected[id]
		st.Checksum += d.sum
		if d.worker >= 1 && d.worker <= cfg.Workers {
			st.PerWorker[d.worker]++
		}
	}
	if math.IsNaN(st.Checksum) {
		return Stats{}, fmt.Errorf("pipeline: NaN checksum")
	}
	return st, nil
}
