package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"nexus/internal/buffer"
	"nexus/internal/transport"
)

// dispatchWork simulates a handler with real work attached (~a few hundred
// nanoseconds of xorshift), so the parallel benchmark measures how much
// handler execution the engine can overlap, not just queue overhead.
//
//go:noinline
func dispatchWork(seed uint64) uint64 {
	x := seed | 1
	for i := 0; i < 400; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// BenchmarkDispatchParallel drives Context.dispatch from GOMAXPROCS
// goroutines against 1/4/16 endpoints, comparing inline delivery (handlers on
// the dispatching goroutine, the old serial model) with the sharded worker
// pool (Threaded). Per-endpoint ordering is preserved in both modes.
func BenchmarkDispatchParallel(b *testing.B) {
	for _, mode := range []string{"inline", "sharded"} {
		for _, numEP := range []int{1, 4, 16} {
			mode := mode
			numEP := numEP
			b.Run(fmt.Sprintf("mode=%s/eps=%d", mode, numEP), func(b *testing.B) {
				opts := Options{}
				if mode == "sharded" {
					opts.Threaded = true
				}
				c, err := NewContext(opts)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				var done atomic.Int64
				frames := make([][]byte, numEP)
				for i := 0; i < numEP; i++ {
					ep := c.NewEndpoint(WithHandler(func(_ *Endpoint, pb *buffer.Buffer) {
						if dispatchWork(uint64(pb.Int64())) == 0 {
							panic("unreachable")
						}
						done.Add(1)
					}))
					frames[i] = encodeRSR(b, c.ID(), ep.ID(), "", int64(i))
				}
				var next atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := int(next.Add(1))
					for pb.Next() {
						c.dispatch(nil, frames[i%numEP])
						i++
					}
				})
				// Include the queue drain, so sharded mode is charged for all
				// b.N handler executions just like inline mode.
				for done.Load() < int64(b.N) {
					runtime.Gosched()
				}
			})
		}
	}
}

// nullModule is a do-nothing transport: Send succeeds without work or locks,
// so BenchmarkSendContention measures the startpoint send path itself.
type nullModule struct{}

func (nullModule) Name() string { return "null" }
func (nullModule) Init(env transport.Env) (*transport.Descriptor, error) {
	return &transport.Descriptor{Method: "null", Context: env.Context,
		Attrs: map[string]string{"addr": "0"}}, nil
}
func (nullModule) Applicable(r transport.Descriptor) bool            { return r.Method == "null" }
func (nullModule) Dial(transport.Descriptor) (transport.Conn, error) { return nullConn{}, nil }
func (nullModule) Poll() (int, error)                                { return 0, nil }
func (nullModule) Close() error                                      { return nil }

type nullConn struct{}

func (nullConn) Send([]byte) error { return nil }
func (nullConn) Method() string    { return "null" }
func (nullConn) Close() error      { return nil }

// BenchmarkSendContention hammers one startpoint with RSRs from GOMAXPROCS
// goroutines over a free transport: what remains is the send path's own
// synchronization (snapshot load + health-generation check vs. the old
// full-send mutex).
func BenchmarkSendContention(b *testing.B) {
	reg := transport.NewRegistry()
	reg.Register("null", func(transport.Params) transport.Module { return nullModule{} })
	reg.Register("local", func(p transport.Params) transport.Module {
		m, err := transport.Default.New("local", p)
		if err != nil {
			panic(err)
		}
		return m
	})
	mk := func() *Context {
		c, err := NewContext(Options{Registry: reg, Methods: []MethodConfig{{Name: "null"}}})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		return c
	}
	recv := mk()
	send := mk()
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	sp, err := TransferStartpoint(ep.NewStartpoint(), send)
	if err != nil {
		b.Fatal(err)
	}
	payload := buffer.New(64)
	payload.PutInt64(7)
	if err := sp.RSR("", payload); err != nil { // warm up selection
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := sp.RSR("", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
