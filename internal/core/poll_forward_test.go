package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/transport"
)

// fastMPL returns an mpl method config with all modelled delays zeroed, so
// polling semantics can be tested without timing effects.
func fastMPL(tag string) MethodConfig {
	return MethodConfig{Name: "mpl", Params: transport.Params{
		"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0",
	}}
}

func fastWAN(tag string) MethodConfig {
	return MethodConfig{Name: "wan", Params: transport.Params{
		"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0",
	}}
}

func TestSkipPollRatio(t *testing.T) {
	tag := "skip-ratio"
	c := newCtx(t, tag, "p0", fastMPL(tag), fastWAN(tag))
	if err := c.SetSkipPoll("wan", 10); err != nil {
		t.Fatal(err)
	}
	if got := c.SkipPoll("wan"); got != 10 {
		t.Fatalf("SkipPoll(wan) = %d", got)
	}
	const passes = 100
	for i := 0; i < passes; i++ {
		c.Poll()
	}
	mplPolls := c.Stats().Get("poll.mpl")
	wanPolls := c.Stats().Get("poll.wan")
	if mplPolls != passes {
		t.Errorf("mpl polled %d times in %d passes", mplPolls, passes)
	}
	if wanPolls != passes/10 {
		t.Errorf("wan polled %d times in %d passes with skip 10", wanPolls, passes)
	}
}

func TestSetSkipPollErrors(t *testing.T) {
	tag := "skip-err"
	c := newCtx(t, tag, "", inprocCfg())
	if err := c.SetSkipPoll("nope", 5); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("SetSkipPoll(nope) = %v", err)
	}
	// k<1 clamps to 1.
	if err := c.SetSkipPoll("inproc", 0); err != nil {
		t.Fatal(err)
	}
	if got := c.SkipPoll("inproc"); got != 1 {
		t.Errorf("clamped skip = %d", got)
	}
	if got := c.SkipPoll("nope"); got != 0 {
		t.Errorf("SkipPoll(nope) = %d", got)
	}
}

func TestSkipPollStillDelivers(t *testing.T) {
	tag := "skip-deliver"
	recv := newCtx(t, tag, "p0", fastWAN(tag))
	send := newCtx(t, tag, "p1", fastWAN(tag))
	if err := recv.SetSkipPoll("wan", 7); err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { hits.Add(1) }))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	// With skip 7 the frame arrives within at most 7 passes.
	for i := 0; i < 7 && hits.Load() == 0; i++ {
		recv.Poll()
	}
	if hits.Load() != 1 {
		t.Fatalf("frame not delivered within skip window (hits=%d)", hits.Load())
	}
}

func TestAutoSkipPoll(t *testing.T) {
	tag := "auto-skip"
	c := newCtx(t, tag, "p0",
		MethodConfig{Name: "mpl", Params: transport.Params{"fabric": tag, "poll_cost": "10us", "latency": "0", "bandwidth": "0"}},
		MethodConfig{Name: "wan", Params: transport.Params{"fabric": tag, "poll_cost": "100us", "latency": "0", "bandwidth": "0"}},
	)
	c.AutoSkipPoll()
	if got := c.SkipPoll("mpl"); got != 1 {
		t.Errorf("mpl skip = %d, want 1 (cheapest)", got)
	}
	if got := c.SkipPoll("wan"); got != 10 {
		t.Errorf("wan skip = %d, want 10 (10x cost ratio)", got)
	}
}

func TestBlockingMethodSkippedByPoller(t *testing.T) {
	// A method in blocking mode must not be polled.
	recv, err := NewContext(Options{
		Methods: []MethodConfig{{Name: "tcp", Blocking: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	for i := 0; i < 10; i++ {
		recv.Poll()
	}
	if got := recv.Stats().Get("poll.tcp"); got != 0 {
		t.Errorf("blocking tcp polled %d times", got)
	}
	// And delivery still works, with no polling at all.
	send, err := NewContext(Options{Methods: []MethodConfig{{Name: "tcp"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { hits.Add(1) }))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for hits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if hits.Load() != 1 {
		t.Fatal("blocking-mode tcp never delivered")
	}
}

func TestStartBlockingUpgrade(t *testing.T) {
	recv, err := NewContext(Options{Methods: []MethodConfig{{Name: "tcp"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if err := recv.StartBlocking("tcp"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		recv.Poll()
	}
	if got := recv.Stats().Get("poll.tcp"); got != 0 {
		t.Errorf("tcp polled %d times after StartBlocking", got)
	}
	if err := recv.StartBlocking("inprocX"); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("StartBlocking(unknown) = %v", err)
	}
	c2 := newCtx(t, "blk-up", "", inprocCfg())
	if err := c2.StartBlocking("inproc"); err == nil {
		t.Error("StartBlocking on non-Blocker module succeeded")
	}
}

func TestMethodsEnquiry(t *testing.T) {
	tag := "enquiry"
	c := newCtx(t, tag, "p0", fastMPL(tag))
	if err := c.SetSkipPoll("mpl", 4); err != nil {
		t.Fatal(err)
	}
	c.Poll()
	infos := c.Methods()
	if len(infos) != 2 { // local + mpl
		t.Fatalf("Methods len = %d: %+v", len(infos), infos)
	}
	if infos[0].Name != "local" || infos[1].Name != "mpl" {
		t.Errorf("order = %s,%s", infos[0].Name, infos[1].Name)
	}
	mpl := infos[1]
	if mpl.SkipPoll != 4 {
		t.Errorf("SkipPoll = %d", mpl.SkipPoll)
	}
	if mpl.Descriptor == nil || mpl.Descriptor.Method != "mpl" {
		t.Errorf("Descriptor = %v", mpl.Descriptor)
	}
	if mpl.Polls != 1 {
		t.Errorf("Polls = %d", mpl.Polls)
	}
}

func TestForwardingRelay(t *testing.T) {
	// Configuration mirroring the paper's §3.3: external traffic for member
	// M arrives at forwarder F over the expensive method; F relays it to M
	// over the cheap partition method. M itself never enables the expensive
	// method.
	tag := "fwd-relay"
	fwd := newCtx(t, tag, "sp2", fastMPL(tag), fastWAN(tag))
	member := newCtx(t, tag, "sp2", fastMPL(tag))
	external := newCtx(t, tag, "outside", fastWAN(tag))

	fwd.EnableForwarding()
	if !fwd.ForwardingEnabled() {
		t.Fatal("forwarding not enabled")
	}
	fwd.RegisterPeerTable(member.AdvertisedTable())

	var got atomic.Value
	ep := member.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {
		got.Store(b.String())
	}))

	// Build the member's outward-facing table: its own table with the wan
	// entry pointing at the forwarder.
	table := member.AdvertisedTable()
	fwdWan, ok := fwd.AdvertisedTable().Find("wan")
	if !ok {
		t.Fatal("forwarder has no wan descriptor")
	}
	table.Add(transport.Descriptor{Method: "wan", Context: member.ID(), Attrs: fwdWan.Attrs})

	sp := ep.NewStartpoint()
	spb := buffer.New(256)
	// Encode a startpoint that carries the rewritten table.
	spRewritten := &Startpoint{owner: member, targets: []*target{{
		context: member.ID(), endpoint: ep.ID(), table: table,
	}}}
	spRewritten.encode(spb, true)
	dec, err := buffer.FromBytes(spb.Encode())
	if err != nil {
		t.Fatal(err)
	}
	spExt, err := external.DecodeStartpoint(dec)
	if err != nil {
		t.Fatal(err)
	}
	_ = sp

	b := buffer.New(32)
	b.PutString("via forwarder")
	if err := spExt.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if m := spExt.Method(); m != "wan" {
		t.Errorf("external selected %q, want wan", m)
	}

	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == nil && time.Now().Before(deadline) {
		fwd.Poll()
		member.Poll()
	}
	if got.Load() != "via forwarder" {
		t.Fatalf("member got %v", got.Load())
	}
	if fwd.Stats().Get("forward.relayed") != 1 {
		t.Errorf("forward.relayed = %d", fwd.Stats().Get("forward.relayed"))
	}
	// The member's handler ran; the forwarder never delivered locally.
	if fwd.Stats().Get("rsr.recv") != 0 {
		t.Errorf("forwarder rsr.recv = %d", fwd.Stats().Get("rsr.recv"))
	}
}

func TestForwardingDisabledDrops(t *testing.T) {
	tag := "fwd-drop"
	var errCount atomic.Int64
	notFwd, err := NewContext(Options{
		Partition: "sp2",
		Methods: []MethodConfig{
			{Name: "wan", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0"}},
		},
		ErrorLog: func(error) { errCount.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer notFwd.Close()
	external := newCtx(t, tag, "outside", fastWAN(tag))

	// Hand-build a frame addressed to a context other than notFwd and send
	// it to notFwd's wan address.
	wanDesc, ok := notFwd.AdvertisedTable().Find("wan")
	if !ok {
		t.Fatal("no wan descriptor")
	}
	bogus := transport.Descriptor{Method: "wan", Context: 99999, Attrs: wanDesc.Attrs}
	tbl := transport.NewTable(bogus)
	spBogus := &Startpoint{owner: external, targets: []*target{{
		context: 99999, endpoint: 1, table: tbl,
	}}}
	if err := spBogus.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for errCount.Load() == 0 && time.Now().Before(deadline) {
		notFwd.Poll()
	}
	if errCount.Load() == 0 {
		t.Fatal("misaddressed frame not reported")
	}
	if notFwd.Stats().Get("forward.dropped") != 1 {
		t.Errorf("forward.dropped = %d", notFwd.Stats().Get("forward.dropped"))
	}
}

func TestForwarderWithoutRouteDrops(t *testing.T) {
	tag := "fwd-noroute"
	fwd := newCtx(t, tag, "sp2", fastMPL(tag), fastWAN(tag))
	fwd.EnableForwarding()
	external := newCtx(t, tag, "outside", fastWAN(tag))

	wanDesc, _ := fwd.AdvertisedTable().Find("wan")
	tbl := transport.NewTable(transport.Descriptor{Method: "wan", Context: 88888, Attrs: wanDesc.Attrs})
	sp := &Startpoint{owner: external, targets: []*target{{context: 88888, endpoint: 1, table: tbl}}}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fwd.Stats().Get("forward.dropped") == 0 && time.Now().Before(deadline) {
		fwd.Poll()
	}
	if fwd.Stats().Get("forward.dropped") != 1 {
		t.Errorf("forward.dropped = %d", fwd.Stats().Get("forward.dropped"))
	}
}

func TestRewriteForForwarder(t *testing.T) {
	tbl := transport.NewTable(
		transport.Descriptor{Method: "mpl", Context: 5, Attrs: map[string]string{"partition": "a"}},
		transport.Descriptor{Method: "tcp", Context: 5, Attrs: map[string]string{"addr": "member:1"}},
	)
	fwdDesc := transport.Descriptor{Method: "tcp", Context: 9, Attrs: map[string]string{"addr": "fwd:1"}}
	if !RewriteForForwarder(tbl, "tcp", fwdDesc) {
		t.Fatal("RewriteForForwarder found nothing")
	}
	d, ok := tbl.Find("tcp")
	if !ok {
		t.Fatal("tcp entry vanished")
	}
	if d.Context != 5 {
		t.Errorf("rewritten entry context = %d, want 5 (final destination)", d.Context)
	}
	if d.Attr("addr") != "fwd:1" {
		t.Errorf("rewritten addr = %q", d.Attr("addr"))
	}
	if RewriteForForwarder(tbl, "udp", fwdDesc) {
		t.Error("rewrite of absent method reported success")
	}
}

func TestCheapestPollSelector(t *testing.T) {
	tag := "cheapest"
	recv, err := NewContext(Options{
		Partition: "p0",
		Methods: []MethodConfig{
			{Name: "wan", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "100us", "bandwidth": "0"}},
			{Name: "mpl", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "10us", "bandwidth": "0"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := NewContext(Options{
		Partition: "p0",
		Selector:  CheapestPoll,
		Methods: []MethodConfig{
			{Name: "wan", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "100us", "bandwidth": "0"}},
			{Name: "mpl", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "10us", "bandwidth": "0"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	// Note the received table lists wan before mpl; FirstApplicable would
	// pick wan, CheapestPoll must pick mpl.
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	if _, err := sp.SelectMethod(); err != nil {
		t.Fatal(err)
	}
	if m := sp.Method(); m != "mpl" {
		t.Errorf("CheapestPoll selected %q, want mpl", m)
	}
}

func TestPreferOrderSelector(t *testing.T) {
	tag := "prefer"
	recv, err := NewContext(Options{
		Partition: "p0",
		Methods: []MethodConfig{
			{Name: "mpl", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0"}},
			{Name: "wan", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := NewContext(Options{
		Partition: "p0",
		Selector:  PreferOrder("wan"),
		Methods: []MethodConfig{
			{Name: "mpl", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0"}},
			{Name: "wan", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	if _, err := sp.SelectMethod(); err != nil {
		t.Fatal(err)
	}
	if m := sp.Method(); m != "wan" {
		t.Errorf("PreferOrder(wan) selected %q", m)
	}
	// PreferOrder falls back to table order when preferences do not apply.
	send2, err := NewContext(Options{
		Partition: "p0",
		Selector:  PreferOrder("atm"),
		Methods: []MethodConfig{
			{Name: "mpl", Params: transport.Params{"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send2.Close()
	sp2 := transferStartpoint(t, ep.NewStartpoint(), send2, false)
	if _, err := sp2.SelectMethod(); err != nil {
		t.Fatal(err)
	}
	if m := sp2.Method(); m != "mpl" {
		t.Errorf("PreferOrder fallback selected %q", m)
	}
}

func TestNoApplicableMethod(t *testing.T) {
	tagA, tagB := "island-a", "island-b"
	recv := newCtx(t, tagA, "", inprocCfg())
	send := newCtx(t, tagB, "", inprocCfg()) // different exchange: unreachable

	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	if _, err := sp.SelectMethod(); !errors.Is(err, ErrNoApplicableMethod) {
		t.Errorf("SelectMethod across islands: %v", err)
	}
	if err := sp.RSR("", nil); !errors.Is(err, ErrNoApplicableMethod) {
		t.Errorf("RSR across islands: %v", err)
	}
}

func TestPollOnRSRProgress(t *testing.T) {
	// With PollOnRSR (default), two contexts that only ever send still make
	// receive progress, because each RSR polls opportunistically.
	tag := "poll-on-rsr"
	a := newCtx(t, tag, "", inprocCfg())
	b := newCtx(t, tag, "", inprocCfg())

	var aGot, bGot atomic.Int64
	epA := a.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { aGot.Add(1) }))
	epB := b.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { bGot.Add(1) }))
	spToB := transferStartpoint(t, epB.NewStartpoint(), a, false)
	spToA := transferStartpoint(t, epA.NewStartpoint(), b, false)

	const n = 20
	for i := 0; i < n; i++ {
		if err := spToB.RSR("", nil); err != nil {
			t.Fatal(err)
		}
		if err := spToA.RSR("", nil); err != nil {
			t.Fatal(err)
		}
	}
	// No explicit polls: deliveries happened during RSR calls (all but
	// possibly the last round, which nothing followed).
	if aGot.Load() < n-1 || bGot.Load() < n-1 {
		t.Errorf("opportunistic polling delivered a=%d b=%d of %d", aGot.Load(), bGot.Load(), n)
	}
	if got := a.Stats().Get("poll.passes"); got == 0 {
		t.Error("no poll passes recorded despite PollOnRSR")
	}
}

func TestDisableMethodTriggersFailover(t *testing.T) {
	tag := "disable-failover"
	recv := newCtx(t, tag, "p0", fastMPL(tag), inprocCfg())
	send := newCtx(t, tag, "p0", fastMPL(tag), inprocCfg())

	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { hits.Add(1) }))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	sp.SetFailover(true)
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if m := sp.Method(); m != "mpl" {
		t.Fatalf("initial method = %q", m)
	}
	if !recv.PollUntil(func() bool { return hits.Load() == 1 }, 5*time.Second) {
		t.Fatal("first RSR not delivered")
	}

	// Simulate substrate failure: the receiver's mpl module dies.
	if err := recv.DisableMethod("mpl"); err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if m := sp.Method(); m != "inproc" {
		t.Errorf("after failure, method = %q, want inproc", m)
	}
	if !recv.PollUntil(func() bool { return hits.Load() == 2 }, 5*time.Second) {
		t.Fatal("failover RSR not delivered")
	}
	// Enquiry: mpl is gone from the receiver's method list.
	for _, mi := range recv.Methods() {
		if mi.Name == "mpl" {
			t.Error("mpl still listed after DisableMethod")
		}
	}
	if err := recv.DisableMethod("mpl"); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("second DisableMethod = %v", err)
	}
}

func TestDisablePollOnRSR(t *testing.T) {
	tag := "no-poll-on-rsr"
	a, err := NewContext(Options{
		Methods:          []MethodConfig{{Name: "inproc", Params: transport.Params{"exchange": tag}}},
		DisablePollOnRSR: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := newCtx(t, tag, "", inprocCfg())

	var aGot atomic.Int64
	epA := a.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { aGot.Add(1) }))
	spToA := transferStartpoint(t, epA.NewStartpoint(), b, false)
	epB := b.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	spToB := transferStartpoint(t, epB.NewStartpoint(), a, false)

	if err := spToA.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	// a sends without polling: the pending inbound frame must stay queued.
	if err := spToB.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if aGot.Load() != 0 {
		t.Error("frame delivered despite DisablePollOnRSR")
	}
	if got := a.Stats().Get("poll.passes"); got != 0 {
		t.Errorf("poll.passes = %d with DisablePollOnRSR", got)
	}
	a.Poll()
	if aGot.Load() != 1 {
		t.Error("explicit Poll did not deliver")
	}
}
