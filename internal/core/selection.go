package core

import (
	"fmt"
	"time"

	"nexus/internal/transport"
)

// Selector chooses a communication method for a link given the target's
// descriptor table. Selection policies see the table in its current order, so
// user reordering (Promote, Reorder, Remove) composes with any policy.
type Selector func(c *Context, table *transport.Table) (transport.Descriptor, error)

// FirstApplicable is the paper's automatic selection rule: scan the
// descriptor table in order and use the first method that is enabled locally
// and whose module reports the descriptor applicable. With tables ordered
// fastest-first, this is the "fastest first" policy.
func FirstApplicable(c *Context, table *transport.Table) (transport.Descriptor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, d := range table.Entries {
		ms, ok := c.byMethod[d.Method]
		if !ok {
			continue
		}
		if ms.module.Applicable(d) {
			return d.Clone(), nil
		}
	}
	return transport.Descriptor{}, fmt.Errorf("%w (table %v, local methods %v)",
		ErrNoApplicableMethod, table, methodNamesLocked(c))
}

// PreferOrder returns a selector that tries the named methods first, in the
// given order, before falling back to table order — a programmer-directed
// policy that coexists with automatic selection, as §2.1 requires.
func PreferOrder(methods ...string) Selector {
	return func(c *Context, table *transport.Table) (transport.Descriptor, error) {
		c.mu.RLock()
		for _, name := range methods {
			ms, ok := c.byMethod[name]
			if !ok {
				continue
			}
			if d, found := table.Find(name); found && ms.module.Applicable(d) {
				c.mu.RUnlock()
				return d.Clone(), nil
			}
		}
		c.mu.RUnlock()
		return FirstApplicable(c, table)
	}
}

// CheapestPoll selects, among applicable methods, the one whose module
// advertises the lowest poll cost, breaking ties by table order. It is the
// QoS-flavoured automatic policy the paper sketches as future work: selection
// driven by measured properties rather than static ordering.
func CheapestPoll(c *Context, table *transport.Table) (transport.Descriptor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	best := -1
	bestCost := time.Duration(1<<63 - 1)
	for i, d := range table.Entries {
		ms, ok := c.byMethod[d.Method]
		if !ok || !ms.module.Applicable(d) {
			continue
		}
		cost := time.Duration(0)
		if h, ok := ms.module.(transport.CostHinter); ok {
			cost = h.PollCostHint()
		}
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	if best < 0 {
		return transport.Descriptor{}, fmt.Errorf("%w (table %v, local methods %v)",
			ErrNoApplicableMethod, table, methodNamesLocked(c))
	}
	return table.Entries[best].Clone(), nil
}

func methodNamesLocked(c *Context) []string {
	names := make([]string, 0, len(c.modules))
	for _, ms := range c.modules {
		names = append(names, ms.name)
	}
	return names
}
