package core

import (
	"fmt"
	"time"

	"nexus/internal/transport"
)

// Selector chooses a communication method for a link given the target's
// descriptor table. Selection policies see the table in its current order, so
// user reordering (Promote, Reorder, Remove) composes with any policy.
type Selector func(c *Context, table *transport.Table) (transport.Descriptor, error)

// FirstApplicable is the paper's automatic selection rule: scan the
// descriptor table in order and use the first method that is enabled locally
// and whose module reports the descriptor applicable. With tables ordered
// fastest-first, this is the "fastest first" policy.
func FirstApplicable(c *Context, table *transport.Table) (transport.Descriptor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, d := range table.Entries {
		ms, ok := c.byMethod[d.Method]
		if !ok {
			continue
		}
		if ms.module.Applicable(d) {
			return d.Clone(), nil
		}
	}
	return transport.Descriptor{}, fmt.Errorf("%w (table %v, local methods %v)",
		ErrNoApplicableMethod, table, methodNamesLocked(c))
}

// PreferOrder returns a selector that tries the named methods first, in the
// given order, before falling back to table order — a programmer-directed
// policy that coexists with automatic selection, as §2.1 requires.
func PreferOrder(methods ...string) Selector {
	return func(c *Context, table *transport.Table) (transport.Descriptor, error) {
		c.mu.RLock()
		for _, name := range methods {
			ms, ok := c.byMethod[name]
			if !ok {
				continue
			}
			if d, found := table.Find(name); found && ms.module.Applicable(d) {
				c.mu.RUnlock()
				return d.Clone(), nil
			}
		}
		c.mu.RUnlock()
		return FirstApplicable(c, table)
	}
}

// CheapestPoll selects, among applicable methods, the one with the lowest
// poll cost, breaking ties by table order. It is the QoS-flavoured automatic
// policy the paper sketches as future work: selection driven by measured
// properties rather than static ordering. With the observability histograms
// enabled, a method's cost is its observed mean poll latency on this host
// (once it has enough samples); until then — and always with stats off — the
// module's static PollCostHint is used. A method that measures slower than
// its hint therefore loses its ranking as soon as the data says so.
func CheapestPoll(c *Context, table *transport.Table) (transport.Descriptor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	best := -1
	bestCost := time.Duration(1<<63 - 1)
	for i, d := range table.Entries {
		ms, ok := c.byMethod[d.Method]
		if !ok || !ms.module.Applicable(d) {
			continue
		}
		cost := c.pollCostEstimate(ms)
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	if best < 0 {
		return transport.Descriptor{}, fmt.Errorf("%w (table %v, local methods %v)",
			ErrNoApplicableMethod, table, methodNamesLocked(c))
	}
	return table.Entries[best].Clone(), nil
}

// FastestObserved selects, among applicable methods, the one with the lowest
// observed mean send latency. Only methods whose send-stage histogram has
// accumulated minObservedPolls samples are ranked; if none qualifies yet —
// including whenever stats are disabled — it falls back to FirstApplicable,
// so early traffic explores the table in preference order before the
// measurements take over.
func FastestObserved(c *Context, table *transport.Table) (transport.Descriptor, error) {
	c.mu.RLock()
	best := -1
	bestCost := time.Duration(1<<63 - 1)
	for i, d := range table.Entries {
		ms, ok := c.byMethod[d.Method]
		if !ok || !ms.module.Applicable(d) {
			continue
		}
		cost := c.sendCostEstimate(ms)
		if cost > 0 && cost < bestCost {
			best, bestCost = i, cost
		}
	}
	if best >= 0 {
		d := table.Entries[best].Clone()
		c.mu.RUnlock()
		return d, nil
	}
	c.mu.RUnlock()
	return FirstApplicable(c, table)
}

// SizeAware returns a selector that routes by message size: an RSR whose
// encoded payload is at most threshold bytes selects through small (where
// latency matters), a larger one through bulk (where bandwidth does). The
// size examined is the payload of the send that triggered selection — the
// context publishes it just before running the policy. For bulk messages the
// bulk selector first sees the table restricted to applicable methods whose
// frame limit carries the message in one frame; only when no method qualifies
// does it see the full table, where the fragmentation path covers any size.
// (The restriction compares payload bytes against the frame limit, ignoring
// the header's few dozen bytes, so a borderline message may still fragment —
// into two frames, harmlessly.) Nil selectors default to FirstApplicable.
// Manual pins (SetMethod) bypass selection entirely and are honored as usual.
func SizeAware(threshold int, small, bulk Selector) Selector {
	if small == nil {
		small = FirstApplicable
	}
	if bulk == nil {
		bulk = FirstApplicable
	}
	return func(c *Context, table *transport.Table) (transport.Descriptor, error) {
		size := int(c.selSize.Load())
		if size <= threshold {
			return small(c, table)
		}
		c.mu.RLock()
		var native []transport.Descriptor
		for _, d := range table.Entries {
			ms, ok := c.byMethod[d.Method]
			if !ok || !ms.module.Applicable(d) {
				continue
			}
			limit := ms.maxMsg
			if dm := d.MaxMessage(); dm > 0 && dm < limit {
				limit = dm
			}
			if limit >= size {
				native = append(native, d)
			}
		}
		c.mu.RUnlock()
		if len(native) > 0 {
			if d, err := bulk(c, &transport.Table{Entries: native}); err == nil {
				return d, nil
			}
		}
		return bulk(c, table)
	}
}

func methodNamesLocked(c *Context) []string {
	names := make([]string, 0, len(c.modules))
	for _, ms := range c.modules {
		names = append(names, ms.name)
	}
	return names
}
