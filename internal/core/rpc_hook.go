package core

import (
	"context"
	"fmt"
	"time"

	"nexus/internal/obsv"
	"nexus/internal/wire"
)

// This file is the core's side of the request/response layer (internal/rpc):
// the deadline error shared by every timeout surface, the Options.RPC
// configuration block, and the intake hook through which frames carrying
// wire.FlagRPC leave the ordinary endpoint/handler dispatch and reach the
// RPC runtime attached to the context. The hook keeps the layering one-way:
// core knows nothing about calls, futures, or streams — it hands over the
// decoded correlation extension and the borrowed payload and goes back to
// polling.

// deadlineError is the concrete type behind ErrDeadline: a sentinel that
// also matches context.DeadlineExceeded under errors.Is, so callers can test
// against either vocabulary.
type deadlineError struct{}

func (deadlineError) Error() string { return "core: deadline exceeded" }

func (deadlineError) Is(target error) bool { return target == context.DeadlineExceeded }

// ErrDeadline reports an operation abandoned at its deadline. It unifies the
// timeout errors across the stack: errors.Is(err, ErrDeadline) and
// errors.Is(err, context.DeadlineExceeded) both hold for any error wrapping
// it.
var ErrDeadline error = deadlineError{}

// RPCConfig configures the request/response layer (Options.RPC). The layer
// itself lives in internal/rpc and is attached by the facade (or by calling
// rpc.Enable directly); core only carries the knobs.
type RPCConfig struct {
	// Enabled attaches the RPC runtime to the context at construction.
	Enabled bool
	// BulkThreshold is the encoded request-payload size, in bytes, past
	// which an argument travels by bulk-handle pull: the caller sends a
	// compact handle and the callee pulls the payload over the fragmentation
	// path. 0 selects the default (256 KiB); negative disables the pull
	// model (arguments always travel eagerly).
	BulkThreshold int
	// DefaultTimeout bounds calls that specify no deadline of their own.
	// 0 selects the default (30s); negative means no implicit deadline.
	DefaultTimeout time.Duration
}

// RPCInbound is one delivered frame carrying the wire RPC extension, as
// handed to the intake hook. Payload (and Handler, which aliases the frame)
// are borrowed: they are valid only for the duration of the intake call, and
// the hook must copy whatever it retains.
type RPCInbound struct {
	// Method names the communication method the frame arrived on ("" when
	// unknown, e.g. frames injected by tests).
	Method string
	// SrcContext is the sending context.
	SrcContext uint64
	// DestEndpoint is the endpoint the frame was addressed to.
	DestEndpoint uint64
	// Handler is the wire handler name (the RPC method name on requests).
	Handler string
	// RPC is the decoded correlation extension.
	RPC wire.RPCExt
	// Class is the frame's priority class.
	Class Class
	// Trace is the frame's trace id (zero when untraced).
	Trace obsv.TraceID
	// Payload is the encoded argument buffer, borrowed from the frame.
	Payload []byte
}

// RPCIntakeFunc consumes inbound RPC frames. It runs on the delivery
// goroutine (the poller inline, or a dispatch lane in threaded mode), under
// the same constraints as a handler: it must not retain Payload.
type RPCIntakeFunc func(in RPCInbound)

// SetRPCIntake installs the hook that receives every delivered frame
// carrying wire.FlagRPC, displacing ordinary handler dispatch for those
// frames. Passing nil uninstalls it; RPC frames are then counted and
// dropped.
func (c *Context) SetRPCIntake(fn RPCIntakeFunc) {
	if fn == nil {
		c.rpcIntake.Store(nil)
		return
	}
	c.rpcIntake.Store(&fn)
}

// SetRPCState attaches the RPC runtime (an *rpc.RPC, but core does not know
// the type) to the context, and RPCState retrieves it. This is how
// package-level helpers like nexus.Call find the runtime from a startpoint's
// owning context.
func (c *Context) SetRPCState(v any) { c.rpcState.Store(v) }

// RPCState returns the value attached with SetRPCState (nil before any).
func (c *Context) RPCState() any { return c.rpcState.Load() }

// NewTraceID draws a fresh trace/span id from the context's generator, for
// subsystems (internal/rpc) that span several sends under one id.
func (c *Context) NewTraceID() obsv.TraceID { return c.newTraceID() }

// RecordEvent appends one event to the trace ring if tracing is enabled, and
// is a no-op otherwise. The recording context and timestamp are filled in.
func (c *Context) RecordEvent(e obsv.Event) {
	if c.obs.mode.Load()&obsTrace == 0 {
		return
	}
	c.recordEvent(e)
}

// RegisterLatencies publishes a stage set under the given name in the
// context's observability snapshot (Observe), alongside the per-method sets.
// Registering the same name again keeps the existing set.
func (c *Context) RegisterLatencies(name string, ss *obsv.StageSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerStageSet(name, ss)
}

// deliverRPC hands a frame carrying the RPC extension to the installed
// intake. Runs bracketed by the dispatch gate, like any delivery.
func (c *Context) deliverRPC(ms *moduleState, f *wire.Frame) {
	fn := c.rpcIntake.Load()
	if fn == nil {
		c.cDropNoRPC.Inc()
		c.errlog(fmt.Errorf("core: context %d: rpc frame (call %d kind %d) but no rpc layer attached",
			c.id, f.RPC.Call, f.RPC.Kind))
		return
	}
	(*fn)(RPCInbound{
		Method:       msName(ms),
		SrcContext:   f.SrcContext,
		DestEndpoint: f.DestEndpoint,
		Handler:      f.Handler,
		RPC:          f.RPC,
		Class:        f.Class(),
		Trace:        obsv.TraceID(f.Trace),
		Payload:      f.Payload,
	})
}
