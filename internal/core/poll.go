package core

import (
	"fmt"
	"runtime"
	"time"

	"nexus/internal/obsv"
	"nexus/internal/transport"
)

// Poll performs one pass of the unified polling function: it iterates over
// the context's communication modules in order and invokes each module's
// method-specific poll — except modules in blocking mode (detected by their
// own goroutines) and modules whose skip_poll countdown has not expired. It
// returns the number of frames delivered.
//
// skip_poll semantics follow the paper: with skip_poll k, the module is
// checked on every k-th pass, so an expensive, infrequently used method
// (TCP) taxes a cheap, frequently used one (MPL/inproc) only 1/k of the
// time.
func (c *Context) Poll() int {
	c.pollMu.Lock()
	defer c.pollMu.Unlock()
	return c.pollPassLocked()
}

// tryPoll performs a pass only if no other poll is in progress; used for the
// opportunistic poll on each RSR so sends never block behind a concurrent
// poller.
func (c *Context) tryPoll() int {
	if !c.pollMu.TryLock() {
		return 0
	}
	defer c.pollMu.Unlock()
	return c.pollPassLocked()
}

// reactiveHotPasses is the direct-probe grace window for reactive modules: a
// module that just saw a readiness edge or delivered frames is mid-transfer,
// so the next passes probe it without waiting for another edge. The window
// must outlast the passes a spinning caller burns during one round trip of
// the traffic pattern it is protecting — a ping-pong peer spins through
// hundreds of sub-microsecond passes while its 30 µs reply is in flight, and
// if the window closes first, every round pays the cross-thread epoll
// notification instead (milliseconds when pollers monopolize a busy CPU).
// The cost of oversizing is only a bounded tail of cheap empty probes after
// traffic stops.
const reactiveHotPasses = 4096

// reactiveColdProbe bounds notification latency for a cold module: even with
// no readiness edge it is probed directly on every reactiveColdProbe-th
// pass. The epoll waiter goroutine needs the scheduler's cooperation to turn
// a kernel event into a ready bit; when spinning pollers keep the CPU busy,
// that handoff can take milliseconds. The periodic probe caps the damage at
// reactiveColdProbe fast passes (microseconds) while costing an idle context
// only 1/reactiveColdProbe of a probe per pass — and when passes are slow
// (sleeping caller), the CPU is idle and the waiter's bit arrives first
// anyway.
const reactiveColdProbe = 256

func (c *Context) pollPassLocked() int {
	c.mu.RLock()
	mods := c.modules
	closed := c.closed
	c.mu.RUnlock()
	if closed {
		return 0
	}
	c.pollPass++
	c.cPollPasses.Inc()
	statsOn := c.obs.mode.Load()&obsStats != 0
	// Claim this pass's readiness edges in one atomic swap. Bits must be
	// cleared BEFORE the modules drain: data arriving during a drain re-sets
	// the bit and forces another pass, so no edge is ever consumed unseen.
	var ready uint64
	if c.rx != nil {
		ready = c.ready.Swap(0)
	}
	total := 0
	for _, ms := range mods {
		if ms.blocking {
			continue
		}
		edge := false
		if ms.reactive {
			// Readiness-driven: the kernel says whether this module has
			// inbound data. No bit, no syscall — skip_poll countdowns don't
			// apply (readiness is a strictly better version of the same
			// economy). A module with a recent edge stays "hot" and is
			// probed directly for a grace window: during a transfer the
			// direct probe finds data the instant it lands, where waiting for
			// the epoll waiter's cross-thread notification would add
			// scheduling latency to every window round trip.
			edge = ready&ms.readyBit != 0
			if !edge && ms.hot == 0 {
				if ms.cold++; ms.cold < reactiveColdProbe {
					continue
				}
				ms.cold = 0 // periodic safety probe: fall through
			}
			if ms.pollDisabled && !c.health.allowed(ms.name, receivePeer) {
				if edge {
					// Keep the claimed edge for whenever the probe is
					// granted: dropping it here would strand buffered data
					// forever.
					atomicOr(&c.ready, ms.readyBit)
				}
				continue
			}
		} else if ms.pollDisabled {
			// The module's receive path tripped its circuit. Poll it again
			// only when the health registry grants a half-open probe.
			if !c.health.allowed(ms.name, receivePeer) {
				continue
			}
		} else {
			if ms.countdown > 0 {
				ms.countdown--
				continue
			}
			ms.countdown = ms.skip - 1
		}
		ms.polls.Inc()
		var t0 time.Time
		if statsOn {
			// pollStart lets dispatch attribute detection latency to traced
			// frames this Poll call delivers (it runs synchronously inside
			// Poll via the module's sink).
			t0 = time.Now()
			ms.pollStart.Store(t0.UnixNano())
		}
		n, err := ms.module.Poll()
		if statsOn {
			ms.pollStart.Store(0)
			ms.lat.Stage(obsv.StagePoll).Record(time.Since(t0))
		}
		if err != nil {
			ms.pollErrs.Inc()
			if ms.reactive {
				// The edge was claimed but the drain failed; data may remain
				// buffered, so the module must be re-polled without waiting
				// for a fresh kernel event that will never come.
				atomicOr(&c.ready, ms.readyBit)
			}
			c.errlog(fmt.Errorf("core: context %d: polling %s: %w", c.id, ms.name, err))
			if ms.pollDisabled {
				// Failed probe: push the circuit back to open with a longer
				// backoff.
				c.health.reportFailure(ms.name, receivePeer, err)
				continue
			}
			ms.consecPollErrs++
			if ms.consecPollErrs >= c.health.cfg.PollFailureThreshold {
				ms.pollDisabled = true
				c.health.tripNow(ms.name, receivePeer, err)
				c.stats.Counter("poll.disabled").Inc()
				c.errlog(fmt.Errorf("core: context %d: method %s left polling rotation after %d consecutive errors", c.id, ms.name, ms.consecPollErrs))
			}
			continue
		}
		if ms.pollDisabled {
			// Successful probe: the receive path is back.
			ms.pollDisabled = false
			c.health.reportSuccess(ms.name, receivePeer)
		}
		ms.consecPollErrs = 0
		if ms.reactive {
			// An edge counts as activity even when no complete frame came
			// out of the drain: a large frame streaming in arrives as many
			// edges that each deliver nothing until the last one. Entering
			// the hot window suspends the module's kernel watch (the direct
			// probes replace it); the window decaying to zero restores it.
			if n > 0 || edge {
				if ms.hot == 0 {
					ms.rd.suspend()
				}
				ms.hot = reactiveHotPasses
				ms.cold = 0
			} else if ms.hot > 0 {
				ms.hot--
				if ms.hot == 0 {
					ms.rd.resume()
				}
			}
		}
		total += n
	}
	// Sweep abandoned partial bulk messages. With nothing buffered — the
	// steady state — this is one atomic load and, crucially, no time.Now():
	// the clock read costs more than the whole empty poll pass otherwise.
	if c.frags.Partials() > 0 {
		if n := c.frags.Expire(time.Now()); n > 0 {
			c.cFragExpired.Add(uint64(n))
		}
	}
	return total
}

// deadlineCheckInterval is how many PollUntil passes run between clock
// reads. Reading the monotonic clock on every pass is a measurable tax on
// the spin loop (a vDSO call per pass, comparable to an inproc poll itself);
// checking every 32nd pass cuts that tax to noise while bounding timeout
// overshoot to ~32 empty passes — microseconds on any real machine.
const deadlineCheckInterval = 32

// PollUntil polls until pred returns true or the timeout elapses, yielding
// the processor between empty passes. It reports whether pred held. The
// deadline is checked on the first pass and then every
// deadlineCheckInterval-th pass, so the timeout is a lower bound with slack
// of at most that many passes.
func (c *Context) PollUntil(pred func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for pass := 0; ; pass++ {
		if pred() {
			return true
		}
		if pass%deadlineCheckInterval == 0 && time.Now().After(deadline) {
			return false
		}
		if c.Poll() == 0 {
			runtime.Gosched()
		}
	}
}

// SetSkipPoll sets the skip_poll parameter for one method: the method is
// polled on every k-th pass. k < 1 is treated as 1. A value set this way is
// pinned: automatic tuners (AutoSkipPoll, StartAdaptiveSkipPoll) will not
// overwrite it until UnpinSkipPoll releases the method back to them.
func (c *Context) SetSkipPoll(method string, k int) error {
	return c.applySkipPoll(method, k, true)
}

// UnpinSkipPoll releases a method pinned by SetSkipPoll back to automatic
// skip_poll tuning. The current skip value is kept until a tuner moves it.
func (c *Context) UnpinSkipPoll(method string) error {
	ms := c.moduleFor(method)
	if ms == nil {
		return fmt.Errorf("core: %w: %q", ErrUnknownMethod, method)
	}
	c.pollMu.Lock()
	ms.pinned = false
	c.pollMu.Unlock()
	return nil
}

// applySkipPoll is the shared skip_poll writer. pin=true (SetSkipPoll) marks
// the module as manually controlled; pin=false (the automatic tuners) is a
// no-op on pinned modules, so a manual choice survives a running tuner.
func (c *Context) applySkipPoll(method string, k int, pin bool) error {
	if k < 1 {
		k = 1
	}
	ms := c.moduleFor(method)
	if ms == nil {
		return fmt.Errorf("core: %w: %q", ErrUnknownMethod, method)
	}
	c.pollMu.Lock()
	if pin {
		ms.pinned = true
	} else if ms.pinned {
		c.pollMu.Unlock()
		return nil
	}
	ms.skip = k
	if ms.countdown >= k {
		ms.countdown = k - 1
	}
	c.pollMu.Unlock()
	ms.skipAtomic.Store(int64(k))
	return nil
}

// SkipPoll reports the current skip_poll value for a method (0 if unknown).
func (c *Context) SkipPoll(method string) int {
	ms := c.moduleFor(method)
	if ms == nil {
		return 0
	}
	return int(ms.skipAtomic.Load())
}

// AutoSkipPoll derives skip_poll values from the modules' poll costs: the
// cheapest method keeps skip 1 and each other method is skipped in
// proportion to how much more its poll costs — the paper's "adaptive
// adjustment of skip_poll values" future-work refinement in its simplest
// static form. With stats enabled, a method's cost is its observed mean poll
// latency once enough samples exist (pollCostEstimate); otherwise the
// module's static PollCostHint is used.
func (c *Context) AutoSkipPoll() {
	c.mu.RLock()
	mods := c.modules
	c.mu.RUnlock()
	minCost := time.Duration(0)
	costs := make(map[*moduleState]time.Duration, len(mods))
	for _, ms := range mods {
		cost := c.pollCostEstimate(ms)
		if cost <= 0 {
			continue
		}
		costs[ms] = cost
		if minCost == 0 || cost < minCost {
			minCost = cost
		}
	}
	if minCost == 0 {
		return
	}
	for ms, cost := range costs {
		k := int(cost / minCost)
		if k < 1 {
			k = 1
		}
		_ = c.applySkipPoll(ms.name, k, false)
	}
}

// StartBlocking switches a method to blocking detection (a dedicated
// goroutine instead of polling), if its module supports it.
func (c *Context) StartBlocking(method string) error {
	ms := c.moduleFor(method)
	if ms == nil {
		return fmt.Errorf("core: %w: %q", ErrUnknownMethod, method)
	}
	b, ok := ms.module.(transport.Blocker)
	if !ok {
		return fmt.Errorf("core: method %q does not support blocking detection", method)
	}
	if err := b.StartBlocking(); err != nil {
		return err
	}
	c.pollMu.Lock()
	ms.blocking = true
	c.pollMu.Unlock()
	return nil
}

// StartPoller launches a background goroutine that polls continuously,
// sleeping idle for the given duration between empty passes (0 means yield
// only). It returns a stop function that blocks until the poller exits.
func (c *Context) StartPoller(idle time.Duration) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			default:
			}
			if c.Poll() == 0 {
				if idle > 0 {
					time.Sleep(idle)
				} else {
					runtime.Gosched()
				}
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// DisableMethod shuts one communication method down at runtime: its module
// is closed, its descriptor leaves the advertised table, and the polling
// loop skips it. Existing connections over the method fail on their next
// send, which is what triggers startpoint failover (SetFailover) — the
// paper's "switch among alternative communication substrates in the event of
// error".
func (c *Context) DisableMethod(method string) error {
	c.mu.Lock()
	ms := c.byMethod[method]
	if ms == nil {
		c.mu.Unlock()
		return fmt.Errorf("core: %w: %q", ErrUnknownMethod, method)
	}
	delete(c.byMethod, method)
	kept := c.modules[:0]
	for _, m := range c.modules {
		if m != ms {
			kept = append(kept, m)
		}
	}
	c.modules = kept
	c.advertised.Remove(method)
	// Drop shared connections over the method so subsequent sends reselect.
	var toClose []transport.Conn
	for key, sc := range c.conns {
		if key.method == method {
			toClose = append(toClose, sc.conn)
			delete(c.conns, key)
		}
	}
	c.mu.Unlock()
	for _, conn := range toClose {
		conn.Close()
	}
	return ms.module.Close()
}

// MethodInfo is the enquiry record for one enabled method.
type MethodInfo struct {
	// Name is the method name.
	Name string
	// Descriptor advertises this context's reachability by the method (nil
	// for send-only methods).
	Descriptor *transport.Descriptor
	// SkipPoll is the current skip_poll value.
	SkipPoll int
	// Pinned reports whether the skip_poll value was set manually
	// (SetSkipPoll) and is therefore off-limits to automatic tuners.
	Pinned bool
	// Blocking reports whether the method uses blocking detection.
	Blocking bool
	// Reactive reports whether the method is on readiness-driven detection:
	// its sockets are watched by the context's reactor and the polling loop
	// touches it only when the kernel reports inbound data.
	Reactive bool
	// Polls is the number of module polls performed so far.
	Polls uint64
	// Frames is the number of inbound frames the method has delivered.
	Frames uint64
	// PollCostHint is the module's advertised per-poll cost (0 if unknown).
	PollCostHint time.Duration
	// MaxMessage is the largest encoded frame the method accepts in one send
	// (transport.SizeLimiter; 0 means unlimited). RSRs whose frame exceeds
	// it still go through — as fragments, reassembled at the receiver.
	MaxMessage int
	// ObservedPollCost is the mean measured poll latency from the
	// observability histograms (0 until stats are enabled and the method
	// has enough samples). When non-zero it is what selection and the
	// skip_poll tuners actually use.
	ObservedPollCost time.Duration
}

// Methods returns enquiry records for every enabled method, in preference
// order. This is the paper's enquiry interface: programs inspect it to
// evaluate automatic selection or tune manual choices.
func (c *Context) Methods() []MethodInfo {
	c.mu.RLock()
	mods := make([]*moduleState, len(c.modules))
	copy(mods, c.modules)
	c.mu.RUnlock()
	out := make([]MethodInfo, 0, len(mods))
	c.pollMu.Lock()
	defer c.pollMu.Unlock()
	for _, ms := range mods {
		mi := MethodInfo{
			Name:     ms.name,
			SkipPoll: ms.skip,
			Pinned:   ms.pinned,
			Blocking: ms.blocking,
			Reactive: ms.reactive,
			Polls:    ms.polls.Load(),
			Frames:   ms.frames.Load(),
		}
		if ms.desc != nil {
			d := ms.desc.Clone()
			mi.Descriptor = &d
		}
		if h, ok := ms.module.(transport.CostHinter); ok {
			mi.PollCostHint = h.PollCostHint()
		}
		if sl, ok := ms.module.(transport.SizeLimiter); ok {
			mi.MaxMessage = sl.MaxMessage()
		}
		if c.obs.mode.Load()&obsStats != 0 {
			if h := ms.lat.Stage(obsv.StagePoll); h.Count() >= minObservedPolls {
				mi.ObservedPollCost = h.Mean()
			}
		}
		out = append(out, mi)
	}
	return out
}
