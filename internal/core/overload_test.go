package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/transport"
)

// These tests drive the overload-survival layer end to end: several sender
// contexts flood one threaded receiver over a shared simnet fabric at many
// times its service rate, with credit-based flow control bounding what each
// sender may have in flight and the per-sender fair lanes deciding who gets
// served. The properties pinned here are the PR's acceptance criteria:
// per-sender throughput stays within 2x of any other sender, control-class
// traffic is never shed while bulk is being dropped, and the flood is absorbed
// by refusing work (ErrNoCredit, rsr.shed.bulk) rather than by buffering it.

// spin busy-waits for roughly d, standing in for handler CPU work. Sleeping
// would free the lane worker's thread and hide queueing; spinning keeps the
// receiver genuinely saturated.
func spin(d time.Duration) {
	for start := time.Now(); time.Since(start) < d; {
	}
}

// rigSeq makes fabric tags unique across tests and -count=N repetitions in
// one process, so a rig never sees a previous run's fabric nodes.
var rigSeq atomic.Uint64

// overloadRig is one saturated receiver plus n sender contexts on a shared
// simnet fabric. Flow control is on everywhere with a deliberately small
// window; the receiver's "work" handler burns spinFor per delivery so the
// senders can outrun it at will.
type overloadRig struct {
	recv      *Context
	senders   []*Context
	ep        *Endpoint
	delivered []atomic.Uint64 // per-sender deliveries, counted in the handler
	stopPoll  func()
}

func newOverloadRig(tb testing.TB, tag string, nSenders int, spinFor time.Duration) *overloadRig {
	tb.Helper()
	tag = fmt.Sprintf("%s-%d", tag, rigSeq.Add(1))
	methods := func() []MethodConfig {
		return []MethodConfig{{Name: "mpl", Params: transport.Params{
			"fabric": tag, "poll_cost": "1us", "latency": "0", "bandwidth": "0"}}}
	}
	fc := FlowConfig{
		Enabled:       true,
		WindowBytes:   32 << 10,
		WindowFrames:  32,
		ProbeInterval: 2 * time.Millisecond,
	}
	recv, err := NewContext(Options{
		Partition: "p0",
		Methods:   methods(),
		Threaded:  true,
		Dispatch:  DispatchConfig{Lanes: 2, QueueDepth: 64},
		Flow:      fc,
		ErrorLog:  func(error) {}, // shed bulk frames are logged; expected here
	})
	if err != nil {
		tb.Fatal(err)
	}
	r := &overloadRig{recv: recv, delivered: make([]atomic.Uint64, nSenders)}
	r.ep = recv.NewEndpoint()
	recv.RegisterHandler("work", func(_ *Endpoint, b *buffer.Buffer) {
		i := b.Int64()
		spin(spinFor)
		r.delivered[i].Add(1)
	})
	for i := 0; i < nSenders; i++ {
		s, err := NewContext(Options{Partition: "p0", Methods: methods(), Flow: fc})
		if err != nil {
			tb.Fatal(err)
		}
		r.senders = append(r.senders, s)
		// Standalone credit grants travel receiver->sender and need the
		// sender's descriptor table for the reverse route.
		recv.RegisterPeerTable(s.AdvertisedTable())
	}
	r.stopPoll = recv.StartPoller(0)
	return r
}

func (r *overloadRig) close() {
	r.stopPoll()
	for _, s := range r.senders {
		s.Close()
	}
	r.recv.Close()
}

// bulkStartpoint builds sender i's ClassBulk startpoint to the rig endpoint.
// Must be called from the test goroutine (transferStartpoint can Fatal).
func (r *overloadRig) bulkStartpoint(tb testing.TB, i int) *Startpoint {
	tb.Helper()
	sp := transferStartpoint(tb, r.ep.NewStartpoint(), r.senders[i], false)
	sp.SetClass(ClassBulk)
	return sp
}

// floodBulk is one sender's saturation loop: offer ClassBulk RSRs as fast as
// credit refusal allows while keep() holds. A refusal polls the sender context
// so grants already sitting in the fabric are picked up before the next try,
// then yields: on a single-CPU host a refused sender that keeps spinning
// through its scheduler slice starves the very poller and grantor goroutines
// it is waiting on.
func (r *overloadRig) floodBulk(tb testing.TB, i int, sp *Startpoint, keep func(offered uint64) bool) (offered, refused uint64) {
	b := buffer.New(16)
	b.PutInt64(int64(i))
	for keep(offered) {
		offered++
		err := sp.RSR("work", b)
		switch {
		case err == nil:
		case errors.Is(err, ErrNoCredit):
			refused++
			r.senders[i].tryPoll()
			runtime.Gosched()
		default:
			tb.Errorf("sender %d: %v", i, err)
			return offered, refused
		}
	}
	return offered, refused
}

func (r *overloadRig) sumDelivered() uint64 {
	var n uint64
	for i := range r.delivered {
		n += r.delivered[i].Load()
	}
	return n
}

// drainReceiver waits until the receiver has worked off everything in flight:
// the dispatch lanes report empty and the delivery count stops moving.
func (r *overloadRig) drainReceiver(tb testing.TB) {
	tb.Helper()
	depth := r.recv.stats.Gauge("dispatch.lane.depth")
	deadline := time.Now().Add(10 * time.Second)
	last := r.sumDelivered()
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		cur := r.sumDelivered()
		if cur == last && depth.Load() == 0 {
			return
		}
		last = cur
	}
	tb.Fatalf("receiver never drained: %d delivered, lane depth %d",
		r.sumDelivered(), depth.Load())
}

// fairnessBounds returns the smallest and largest per-sender delivery count.
func (r *overloadRig) fairnessBounds() (lo, hi uint64) {
	lo = ^uint64(0)
	for i := range r.delivered {
		d := r.delivered[i].Load()
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return lo, hi
}

// TestOverloadChaos is the acceptance scenario: four bulk senders flood one
// receiver at far past its service rate while each sender also keeps a
// control-class ping stream going. The overload layer must (a) keep per-sender
// bulk throughput within 2x of any other sender, (b) deliver every control
// ping even while bulk is being shed, and (c) absorb the excess by shedding —
// never by unbounded buffering.
func TestOverloadChaos(t *testing.T) {
	const nSenders = 4
	r := newOverloadRig(t, "overload-chaos", nSenders, 20*time.Microsecond)
	defer r.close()

	var pingGot [nSenders]atomic.Uint64
	r.recv.RegisterHandler("ping", func(_ *Endpoint, b *buffer.Buffer) {
		pingGot[b.Int64()].Add(1)
	})
	bulkSPs := make([]*Startpoint, nSenders)
	pingSPs := make([]*Startpoint, nSenders)
	for i := 0; i < nSenders; i++ {
		bulkSPs[i] = r.bulkStartpoint(t, i)
		pingSPs[i] = transferStartpoint(t, r.ep.NewStartpoint(), r.senders[i], false)
		pingSPs[i].SetClass(ClassControl)
	}

	const dur = 300 * time.Millisecond
	start := time.Now()
	running := func(uint64) bool { return time.Since(start) < dur }
	offered := make([]uint64, nSenders)
	refused := make([]uint64, nSenders)
	pingSent := make([]uint64, nSenders)
	var wg sync.WaitGroup
	for i := 0; i < nSenders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			offered[i], refused[i] = r.floodBulk(t, i, bulkSPs[i], running)
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := buffer.New(16)
			b.PutInt64(int64(i))
			for time.Since(start) < dur {
				if err := pingSPs[i].RSR("ping", b); err != nil {
					t.Errorf("sender %d ping: %v", i, err)
					return
				}
				pingSent[i]++
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	r.drainReceiver(t)

	// (b) Control traffic survived intact: every ping sent was delivered, and
	// no context shed a single control-class frame.
	for i := 0; i < nSenders; i++ {
		if got := pingGot[i].Load(); got != pingSent[i] {
			t.Errorf("sender %d: %d/%d control pings delivered", i, got, pingSent[i])
		}
	}
	for _, c := range append([]*Context{r.recv}, r.senders...) {
		if n := c.stats.Counter("rsr.shed.control").Load(); n != 0 {
			t.Errorf("context %d shed %d control frames", c.ID(), n)
		}
	}

	// (a) Fairness: no sender got more than 2x another's deliveries.
	lo, hi := r.fairnessBounds()
	if lo == 0 {
		t.Fatalf("a sender was starved completely: deliveries %v", r.deliveredSnapshot())
	}
	if hi > 2*lo {
		t.Errorf("per-sender throughput spread %d..%d exceeds 2x: %v", lo, hi, r.deliveredSnapshot())
	}

	// (c) The flood was absorbed by refusing/shedding bulk, not by buffering:
	// offered far exceeds delivered, sheds were counted, and the grantor was
	// actively re-opening windows the whole time.
	var totOffered, totRefused, shedBulk uint64
	for i := 0; i < nSenders; i++ {
		totOffered += offered[i]
		totRefused += refused[i]
	}
	for _, c := range append([]*Context{r.recv}, r.senders...) {
		shedBulk += c.stats.Counter("rsr.shed.bulk").Load()
	}
	if totRefused == 0 || shedBulk == 0 {
		t.Errorf("overload never shed: %d refusals, rsr.shed.bulk total %d", totRefused, shedBulk)
	}
	if totDelivered := r.sumDelivered(); totOffered <= totDelivered {
		t.Errorf("offered %d vs delivered %d: receiver was never actually saturated",
			totOffered, totDelivered)
	}
	if n := r.recv.stats.Counter("flow.grants.sent").Load(); n == 0 {
		t.Error("receiver issued no credit grants under load")
	}
	t.Logf("offered %v refused %v delivered %v", offered, refused, r.deliveredSnapshot())
	t.Logf("recv: grants.sent=%d probes.recv=%d grants.unroutable=%d shed.bulk=%d rsr.recv=%d",
		r.recv.stats.Counter("flow.grants.sent").Load(),
		r.recv.stats.Counter("flow.probes.recv").Load(),
		r.recv.stats.Counter("flow.grants.unroutable").Load(),
		r.recv.stats.Counter("rsr.shed.bulk").Load(),
		r.recv.stats.Counter("rsr.recv").Load())
	for i, s := range r.senders {
		t.Logf("sender %d: grants.recv=%d probes.sent=%d shed.bulk=%d", i,
			s.stats.Counter("flow.grants.recv").Load(),
			s.stats.Counter("flow.probes.sent").Load(),
			s.stats.Counter("rsr.shed.bulk").Load())
	}
}

func (r *overloadRig) deliveredSnapshot() []uint64 {
	out := make([]uint64, len(r.delivered))
	for i := range r.delivered {
		out[i] = r.delivered[i].Load()
	}
	return out
}

// TestFairnessTwoSenders is the satellite's minimal fairness check: two
// saturating senders each end within 2x of the other.
func TestFairnessTwoSenders(t *testing.T) {
	r := newOverloadRig(t, "overload-fair2", 2, 20*time.Microsecond)
	defer r.close()
	sps := []*Startpoint{r.bulkStartpoint(t, 0), r.bulkStartpoint(t, 1)}

	const dur = 250 * time.Millisecond
	start := time.Now()
	running := func(uint64) bool { return time.Since(start) < dur }
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.floodBulk(t, i, sps[i], running)
		}()
	}
	wg.Wait()
	r.drainReceiver(t)

	lo, hi := r.fairnessBounds()
	if lo == 0 || hi > 2*lo {
		t.Errorf("two-sender throughput %v not within 2x", r.deliveredSnapshot())
	}
}

// BenchmarkOverloadFairness saturates one receiver from two bulk senders and
// reports the per-sender throughput spread as max/min (1.0 = perfectly fair)
// alongside the usual ns/op for the offered-RSR loop.
func BenchmarkOverloadFairness(b *testing.B) {
	r := newOverloadRig(b, "overload-bench", 2, 5*time.Microsecond)
	defer r.close()
	sps := []*Startpoint{r.bulkStartpoint(b, 0), r.bulkStartpoint(b, 1)}

	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.floodBulk(b, i, sps[i], func(offered uint64) bool { return offered < uint64(b.N) })
		}()
	}
	wg.Wait()
	r.drainReceiver(b)
	b.StopTimer()

	lo, hi := r.fairnessBounds()
	if lo > 0 {
		b.ReportMetric(float64(hi)/float64(lo), "max/min")
	}
}
