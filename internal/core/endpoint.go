package core

import "fmt"

// Endpoint is the receiving end of a communication link. Endpoints cannot be
// copied between contexts; they exist only in the context that created them.
// A "local address" — arbitrary user data — may be bound to an endpoint, in
// which case startpoints linked to it act as global pointers to that data.
type Endpoint struct {
	ctx     *Context
	id      uint64
	handler HandlerFunc
	data    any
}

// EndpointOption configures a new endpoint.
type EndpointOption func(*Endpoint)

// WithHandler sets the endpoint's default handler, invoked for RSRs that do
// not name a context-level handler.
func WithHandler(fn HandlerFunc) EndpointOption {
	return func(ep *Endpoint) { ep.handler = fn }
}

// WithData binds a local address (arbitrary data) to the endpoint.
func WithData(v any) EndpointOption {
	return func(ep *Endpoint) { ep.data = v }
}

// NewEndpoint creates an endpoint in the context. The endpoint table is
// copy-on-write (the dispatch fast path resolves it with one atomic load),
// so creation costs one map copy.
func (c *Context) NewEndpoint(opts ...EndpointOption) *Endpoint {
	ep := &Endpoint{ctx: c}
	for _, o := range opts {
		o(ep)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextEP++
	ep.id = c.nextEP
	old := *c.endpoints.Load()
	next := make(map[uint64]*Endpoint, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[ep.id] = ep
	c.endpoints.Store(&next)
	return ep
}

// ID reports the endpoint's identity within its context.
func (ep *Endpoint) ID() uint64 { return ep.id }

// Context returns the owning context.
func (ep *Endpoint) Context() *Context { return ep.ctx }

// Data returns the bound local address, if any.
func (ep *Endpoint) Data() any { return ep.data }

// SetData rebinds the endpoint's local address.
func (ep *Endpoint) SetData(v any) { ep.data = v }

// Close destroys the endpoint; subsequent RSRs addressed to it are dropped
// with ErrUnknownEndpoint (counted as rsr.dropped.unknown_endpoint).
// Deliveries already in flight when Close is called may still reach the
// endpoint's handler; Close does not wait for them, so it is safe to call
// from inside a handler.
func (ep *Endpoint) Close() {
	c := ep.ctx
	c.mu.Lock()
	defer c.mu.Unlock()
	old := *c.endpoints.Load()
	next := make(map[uint64]*Endpoint, len(old))
	for k, v := range old {
		if k != ep.id {
			next[k] = v
		}
	}
	c.endpoints.Store(&next)
}

// NewStartpoint creates a startpoint linked to this endpoint. The startpoint
// carries the context's current descriptor table and begins with the local
// method selected implicitly (selection is lazy; for a local target the
// local method is what FirstApplicable picks).
func (ep *Endpoint) NewStartpoint() *Startpoint {
	ep.ctx.mu.RLock()
	table := ep.ctx.advertised.Clone()
	ep.ctx.mu.RUnlock()
	return &Startpoint{
		owner: ep.ctx,
		targets: []*target{{
			context:  ep.ctx.id,
			endpoint: ep.id,
			table:    table,
		}},
	}
}

func (ep *Endpoint) String() string {
	return fmt.Sprintf("endpoint(ctx=%d, ep=%d)", ep.ctx.id, ep.id)
}
