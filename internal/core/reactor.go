package core

import (
	"sync"
	"sync/atomic"

	"nexus/internal/reactor"
	"nexus/internal/transport"
)

// This file wires the readiness reactor (internal/reactor) into the context's
// polling loop. Modules implementing transport.Reactive register their socket
// fds with one context-wide epoll instance; the reactor's waiter goroutine
// turns kernel readiness events into bits in a single atomic bitmap, and the
// polling loop consumes the bitmap with one load per pass. A reactive module
// is polled only when its bit is set — an idle pass over reactor-backed
// methods costs zero syscalls, which is what collapses the poll-cost share of
// TCP/UDP detection that motivated skip_poll in the first place. Modules that
// cannot (or on platforms that cannot) use the reactor keep the portable
// polling path unchanged.

// atomicOr sets bits in v. (atomic.Uint64.Or needs Go 1.23; go.mod pins 1.22.)
func atomicOr(v *atomic.Uint64, bits uint64) {
	for {
		old := v.Load()
		if old&bits == bits || v.CompareAndSwap(old, old|bits) {
			return
		}
	}
}

// newReactor builds the context's reactor when the platform supports one and
// the options do not disable it. Best-effort: a construction failure (fd
// limits, exotic kernels) leaves every module on the polling path rather than
// failing the context.
func newReactor(opts Options) *reactor.Reactor {
	if opts.DisableReactor || !reactor.Supported() {
		return nil
	}
	r, err := reactor.New()
	if err != nil {
		return nil
	}
	return r
}

// moduleReadiness adapts the context reactor to the transport.Readiness
// surface one module sees: every fd the module adds notifies by setting that
// module's bit in the context's readiness bitmap. The notify callback runs on
// the reactor's waiter goroutine and must stay this cheap.
//
// It also implements the NAPI-style suppression the hot-poll grace window
// needs: while the polling loop probes a module directly (mid-transfer), the
// module's fds leave the kernel watch set entirely, so a stream of arriving
// chunks does not wake the reactor's waiter thread once per chunk — on a
// busy single-core machine those wakeups preempt the very poller that is
// already draining the data. Registrations made while suspended are parked
// in the fd set and join the kernel watch set on resume; EPOLL_CTL_ADD
// reports an fd that is already readable, so an edge that fired during
// suspension is never lost.
type moduleReadiness struct {
	c  *Context
	ms *moduleState

	mu        sync.Mutex
	fds       map[int]struct{}
	suspended bool
}

func (r *moduleReadiness) notify() { atomicOr(&r.c.ready, r.ms.readyBit) }

func (r *moduleReadiness) Add(fd int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.suspended {
		if err := r.c.rx.Add(fd, r.notify); err != nil {
			return err
		}
	}
	r.fds[fd] = struct{}{}
	return nil
}

func (r *moduleReadiness) Remove(fd int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.fds, fd)
	if !r.suspended {
		r.c.rx.Remove(fd)
	}
}

// suspend takes the module's fds out of the kernel watch set for the
// duration of a hot-poll window. Called from the polling goroutine.
func (r *moduleReadiness) suspend() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.suspended {
		return
	}
	r.suspended = true
	for fd := range r.fds {
		r.c.rx.Remove(fd)
	}
}

// resume re-registers the module's fds when its hot-poll window decays. An
// fd that went bad while suspended is dropped (its connection is dying
// anyway and will be removed by the module).
func (r *moduleReadiness) resume() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.suspended {
		return
	}
	r.suspended = false
	for fd := range r.fds {
		if err := r.c.rx.Add(fd, r.notify); err != nil {
			delete(r.fds, fd)
		}
	}
}

// attachReactive offers the reactor to a freshly initialized module. On
// success the module's Polls become readiness-driven; on any refusal
// (ErrNotReactive, no fds, bitmap full) the module simply stays on the
// portable polling path. Called before the module joins c.modules, so the
// reactive flag is published by the same lock that publishes the module.
func (c *Context) attachReactive(ms *moduleState) {
	if c.rx == nil || ms.blocking {
		return
	}
	rm, ok := ms.module.(transport.Reactive)
	if !ok {
		return
	}
	c.mu.Lock()
	bit := c.nextReadyBit
	if bit >= 64 {
		c.mu.Unlock()
		return // bitmap full; the module stays poll-based
	}
	c.nextReadyBit++
	c.mu.Unlock()
	ms.readyBit = 1 << bit
	rd := &moduleReadiness{c: c, ms: ms, fds: make(map[int]struct{})}
	if err := rm.AttachReactor(rd); err != nil {
		ms.readyBit = 0
		return
	}
	ms.reactive = true
	ms.rd = rd
	// Seed one drain so anything that arrived before registration is picked
	// up on the first pass even if its edge predates the epoll add.
	atomicOr(&c.ready, ms.readyBit)
}

// ReactorActive reports whether this context runs a readiness reactor (Linux,
// not disabled via Options.DisableReactor, and construction succeeded).
func (c *Context) ReactorActive() bool { return c.rx != nil }

// ReactiveMethods reports the names of methods currently on readiness-driven
// detection, in preference order.
func (c *Context) ReactiveMethods() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, ms := range c.modules {
		if ms.reactive {
			out = append(out, ms.name)
		}
	}
	return out
}
