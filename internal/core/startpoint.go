package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/bufpool"
	"nexus/internal/obsv"
	"nexus/internal/transport"
	"nexus/internal/wire"
)

// Startpoint is the sending end of one or more communication links. A
// startpoint bound to several endpoints multicasts; several startpoints bound
// to one endpoint merge their traffic there. Startpoints are copyable: Encode
// packs a startpoint (with its descriptor tables) into a buffer so it can
// travel inside an RSR, and DecodeStartpoint rebuilds it in the receiving
// context, where method selection runs afresh against the local modules.
type Startpoint struct {
	owner *Context

	mu       sync.Mutex
	targets  []*target
	failover bool

	// snap is the published send snapshot: an immutable view of the link set
	// that concurrent senders read with one atomic load instead of queueing
	// on mu. Mutators rebuild it under mu (publishLocked); senders fall back
	// to the locked slow path only when the snapshot is missing, incomplete,
	// or stale against the health registry's generation.
	snap atomic.Pointer[sendSnapshot]

	// class is the wire.Class every RSR from this startpoint is tagged with
	// (atomic: SetClass may race with concurrent sends). ClassNormal frames
	// carry no class bits, keeping the default send byte-identical to v1.
	class atomic.Uint32
}

// SetClass tags all subsequent RSRs from this startpoint with a traffic
// class. ClassControl traffic bypasses credit windows and dispatch admission
// (and must be reserved for small protocol-critical messages); ClassBulk is
// the first traffic shed under overload; ClassNormal (the default) blocks
// briefly for credit and keeps the configured dispatch policy.
func (sp *Startpoint) SetClass(cls Class) { sp.class.Store(uint32(cls)) }

// Class reports the traffic class RSRs from this startpoint carry.
func (sp *Startpoint) Class() Class { return Class(sp.class.Load()) }

// sendSnapshot is an immutable publication of a startpoint's link set. The
// lock-free send path trusts it as long as its generation matches the health
// registry and no probe is due; everything else goes through prepare.
type sendSnapshot struct {
	// gen is the oldest health-registry generation any link was selected
	// under; the snapshot is stale once the registry moves past it.
	gen uint64
	// ready means every link is bound to a live communication object with no
	// deferred selection error, i.e. the snapshot can be sent on as-is.
	ready    bool
	failover bool
	links    []sendLink
}

// sendLink is one link's frozen binding inside a snapshot.
type sendLink struct {
	t        *target
	context  transport.ContextID
	endpoint uint64
	method   string
	conn     *sharedConn
	// lat caches the method's stage histograms so the instrumented send
	// path records without a map lookup (nil until the link is bound).
	lat *obsv.StageSet
	// maxMsg is the largest encoded frame the bound method accepts in one
	// Send; larger frames take the fragmentation path (bulk.go).
	maxMsg int
	// relay marks a link bound to a mesh-installed relay route: frames carry
	// the wire relay extension (hop budget + loop suppression).
	relay bool
	// selErr carries a selection failure deferred to send time (failover
	// mode): the link gets its frame via the failover loop instead.
	selErr error
}

// target is one communication link: a remote (or local) endpoint plus the
// method state used to reach it.
type target struct {
	context  transport.ContextID
	endpoint uint64
	table    *transport.Table // nil for lightweight startpoints
	method   string
	conn     *sharedConn
	lat      *obsv.StageSet // the bound method's stage histograms
	// maxMsg is the bound method's frame-size limit: the module's
	// SizeLimiter bound intersected with the descriptor's max_message
	// attribute (the remote side may accept less than the method could
	// carry). Frames above it are fragmented (bulk.go).
	maxMsg int

	// healthGen is the health-registry generation the current method was
	// selected under; when the registry moves (a circuit trips or heals)
	// the link re-runs selection on its next send.
	healthGen uint64
	// fromPeer marks a table resolved from the owning context's registered
	// peer tables (lightweight startpoint); peerGen is the peer-table
	// generation it was resolved under. When the context's peer tables move
	// (gossip refreshed or removed one) the cached resolution is dropped and
	// the link re-resolves — or fails with ErrNoTable if the peer left.
	fromPeer bool
	peerGen  uint64
	// relayVia is the next-hop relay context id when the bound descriptor is
	// a mesh-installed route (0 for a direct link).
	relayVia uint64
	// reportUp marks a freshly bound communication object whose first
	// successful send should be reported to the health registry (it may be
	// the probe that closes a half-open circuit). Atomic because lock-free
	// senders race to consume it (CompareAndSwap picks the one reporter).
	reportUp atomic.Bool
	// manual pins a method chosen via SetMethod: health transitions do not
	// re-select it (send failures with failover enabled still do).
	manual bool
	// selErr records a selection failure deferred to send time under
	// failover; cleared each prepare pass.
	selErr error
}

// Targets reports the (context, endpoint) pairs this startpoint is linked to.
func (sp *Startpoint) Targets() []struct {
	Context  transport.ContextID
	Endpoint uint64
} {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]struct {
		Context  transport.ContextID
		Endpoint uint64
	}, len(sp.targets))
	for i, t := range sp.targets {
		out[i].Context = t.context
		out[i].Endpoint = t.endpoint
	}
	return out
}

// Owner returns the context the startpoint currently lives in.
func (sp *Startpoint) Owner() *Context { return sp.owner }

// SetFailover enables automatic re-selection: if a send fails, the startpoint
// removes the failed method from its table and retries with the next
// applicable one (the paper's "switch among alternative communication
// substrates in the event of error").
func (sp *Startpoint) SetFailover(on bool) {
	sp.mu.Lock()
	sp.failover = on
	sp.publishLocked()
	sp.mu.Unlock()
}

// Merge adds the links of other startpoints to this one, turning it into a
// multicast startpoint. Duplicate links are ignored.
//
// Each other startpoint is snapshotted under its own lock before sp's lock
// is taken: holding both at once would order the locks sp→other here while a
// concurrent other.Merge(sp) orders them other→sp — the classic deadlock.
func (sp *Startpoint) Merge(others ...*Startpoint) {
	var snap []*target
	for _, o := range others {
		if o == sp {
			continue
		}
		o.mu.Lock()
		for _, t := range o.targets {
			nt := &target{context: t.context, endpoint: t.endpoint}
			if t.table != nil {
				nt.table = t.table.Clone() // clone under o.mu: tables are live
			}
			snap = append(snap, nt)
		}
		o.mu.Unlock()
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, nt := range snap {
		if sp.hasTargetLocked(nt.context, nt.endpoint) {
			continue
		}
		sp.targets = append(sp.targets, nt)
	}
	sp.publishLocked()
}

func (sp *Startpoint) hasTargetLocked(ctx transport.ContextID, ep uint64) bool {
	for _, t := range sp.targets {
		if t.context == ctx && t.endpoint == ep {
			return true
		}
	}
	return false
}

// Table returns the descriptor table for the startpoint's single target
// (panics on multicast startpoints — address those per target via TableFor).
// The returned table is live: reordering it changes subsequent automatic
// selection, which is the paper's manual-control mechanism.
func (sp *Startpoint) Table() *transport.Table {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.targets) != 1 {
		panic("core: Table on multi-target startpoint; use TableFor")
	}
	return sp.targets[0].table
}

// TableFor returns the live descriptor table for the link to the given
// context, or nil if no such link (or no table) exists.
func (sp *Startpoint) TableFor(ctx transport.ContextID) *transport.Table {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, t := range sp.targets {
		if t.context == ctx {
			return t.table
		}
	}
	return nil
}

// Method reports the currently selected method for the single-target
// startpoint ("" if selection has not happened yet).
func (sp *Startpoint) Method() string {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.targets) == 0 {
		return ""
	}
	return sp.targets[0].method
}

// MethodFor reports the currently selected method for the link to the given
// context ("" if no such link exists or selection has not happened yet). On
// a multicast startpoint each link degrades and heals independently, so
// different targets may be on different methods at the same time.
func (sp *Startpoint) MethodFor(ctx transport.ContextID) string {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, t := range sp.targets {
		if t.context == ctx {
			return t.method
		}
	}
	return ""
}

// SetMethod manually selects the communication method for every link of the
// startpoint, overriding automatic selection. The method must appear in each
// link's descriptor table and be applicable from the owning context.
func (sp *Startpoint) SetMethod(name string) error {
	sp.mu.Lock()
	defer func() {
		sp.publishLocked()
		sp.mu.Unlock()
	}()
	for _, t := range sp.targets {
		table, err := sp.tableFor(t)
		if err != nil {
			return err
		}
		desc, ok := table.Find(name)
		if !ok {
			return fmt.Errorf("core: method %q not in descriptor table for context %d", name, t.context)
		}
		ms := sp.owner.moduleFor(name)
		if ms == nil {
			return fmt.Errorf("core: %w: %q", ErrUnknownMethod, name)
		}
		if !ms.module.Applicable(desc) {
			return fmt.Errorf("core: method %q not applicable to context %d: %w", name, t.context, ErrNoApplicableMethod)
		}
		if err := sp.bindTarget(t, name, desc, obsv.TraceID{}); err != nil {
			return err
		}
		t.manual = true
	}
	return nil
}

// SelectMethod runs automatic selection now (it otherwise runs lazily on the
// first RSR), returning the method chosen for the first link.
func (sp *Startpoint) SelectMethod() (string, error) {
	sp.mu.Lock()
	defer func() {
		sp.publishLocked()
		sp.mu.Unlock()
	}()
	for _, t := range sp.targets {
		if t.conn != nil {
			continue
		}
		if err := sp.selectTarget(t, obsv.TraceID{}); err != nil {
			return "", err
		}
	}
	if len(sp.targets) == 0 {
		return "", fmt.Errorf("core: startpoint has no links")
	}
	return sp.targets[0].method, nil
}

// tableFor resolves a target's descriptor table, falling back to the owning
// context's registered peer tables for lightweight startpoints.
func (sp *Startpoint) tableFor(t *target) (*transport.Table, error) {
	if t.table != nil {
		return t.table, nil
	}
	pg := sp.owner.peerGen.Load()
	if pt := sp.owner.PeerTable(t.context); pt != nil {
		t.table = pt
		t.fromPeer = true
		t.peerGen = pg
		return pt, nil
	}
	return nil, fmt.Errorf("core: context %d: %w", t.context, ErrNoTable)
}

// selectTarget runs the context's (health-aware) selection policy for one
// link and binds the resulting communication object. tid attributes any dial
// to the RSR that triggered selection. Caller holds sp.mu.
func (sp *Startpoint) selectTarget(t *target, tid obsv.TraceID) error {
	table, err := sp.tableFor(t)
	if err != nil {
		return err
	}
	desc, err := sp.owner.healthSel(sp.owner, table)
	if err != nil {
		return err
	}
	if err := sp.bindTarget(t, desc.Method, desc, tid); err != nil {
		// A failed dial is as much a method failure as a failed send: feed
		// the registry so repeated refusals trip the circuit and selection
		// moves on to the next applicable method.
		sp.owner.health.reportFailure(desc.Method, t.context, err)
		return err
	}
	return nil
}

// bindTarget points the link at a (possibly new) communication object.
// Caller holds sp.mu.
func (sp *Startpoint) bindTarget(t *target, method string, desc transport.Descriptor, tid obsv.TraceID) error {
	if t.conn != nil && t.method == method {
		return nil
	}
	sc, err := sp.owner.acquireConn(desc, tid)
	if err != nil {
		return err
	}
	if t.conn != nil {
		sp.owner.releaseConn(t.conn)
	}
	t.conn = sc
	t.method = method
	t.lat = sp.owner.stageSetFor(method)
	limit := wire.MaxFrameLen
	if ms := sp.owner.moduleFor(method); ms != nil && ms.maxMsg < limit {
		limit = ms.maxMsg
	}
	if dm := desc.MaxMessage(); dm > 0 && dm < limit {
		limit = dm
	}
	t.maxMsg = limit
	t.relayVia = 0
	if rv := desc.Attr(transport.AttrRelay); rv != "" {
		if v, err := strconv.ParseUint(rv, 10, 64); err == nil {
			t.relayVia = v
		}
	}
	t.reportUp.Store(true)
	return nil
}

// RSR performs an asynchronous remote service request on every link of the
// startpoint: the buffer travels to each linked endpoint's context, where the
// named handler is invoked with (endpoint, buffer). RSR returns when the
// frames have been handed to the selected communication methods; it does not
// wait for remote execution.
func (sp *Startpoint) RSR(handler string, b *buffer.Buffer) error {
	err := sp.send(handler, b, nil)
	if err != nil {
		return err
	}
	if sp.owner.pollOnRSR {
		sp.owner.tryPoll()
	}
	return nil
}

// RPCSend describes the RPC header extension for one RSR. It is the
// request/response layer's (internal/rpc) hook into the send path: the frame
// carries wire.FlagRPC with the given extension values, is tagged with the
// given class instead of the startpoint's, and — when tracing is on — reuses
// the given trace id so every frame of one call belongs to one span family
// (a zero Trace draws a fresh id as usual).
type RPCSend struct {
	Ext   wire.RPCExt
	Class Class
	Trace obsv.TraceID
}

// RSRWithRPC is RSR for a frame carrying the RPC correlation extension. The
// extension survives failover resends byte-identically (retried requests keep
// their call id) and is carried on every fragment of an oversize frame.
func (sp *Startpoint) RSRWithRPC(handler string, b *buffer.Buffer, rs RPCSend) error {
	if err := sp.send(handler, b, &rs); err != nil {
		return err
	}
	if sp.owner.pollOnRSR {
		sp.owner.tryPoll()
	}
	return nil
}

// send encodes the RSR frame exactly once into a pooled scratch slice and
// re-addresses it in place per target (wire.PatchDest): header, handler, and
// payload bytes are laid down a single time regardless of fan-out, and the
// payload moves from the buffer into the frame with exactly one copy
// (buffer.EncodeTo). Transports must not retain the frame after Send
// returns (the transport.Conn contract), which is what makes both the
// in-place patching and the scratch recycling sound.
//
// Concurrent sends on one startpoint do not serialize on sp.mu: the link set
// is read from the published snapshot (one atomic load), validated against
// the health registry's generation, and senders synchronize only at the
// transport. The locked slow path (prepare, recoverSend) runs only when the
// snapshot is missing/stale, a probe is due, or a send fails.
func (sp *Startpoint) send(handler string, b *buffer.Buffer, rs *RPCSend) error {
	owner := sp.owner
	mode := owner.obs.mode.Load()
	var tid obsv.TraceID
	var flags byte
	if mode&obsTrace != 0 {
		if rs != nil && rs.Trace != (obsv.TraceID{}) {
			tid = rs.Trace
		} else {
			tid = owner.newTraceID()
		}
		flags = wire.FlagTrace
	}
	cls := wire.Class(sp.class.Load())
	var rext wire.RPCExt
	if rs != nil {
		cls = wire.Class(rs.Class)
		rext = rs.Ext
		flags |= wire.FlagRPC
	}
	flags |= wire.ClassFlags(cls) // ClassNormal adds no bits: default stays v1
	payloadLen := 1               // lone format tag for a nil buffer
	if b != nil {
		payloadLen = b.EncodedLen()
	}
	if payloadLen > owner.maxMsg {
		return fmt.Errorf("core: RSR payload of %d bytes exceeds the context's %d-byte message cap: %w",
			payloadLen, owner.maxMsg, transport.ErrTooLarge)
	}
	snap := sp.snap.Load()
	if snap == nil || !snap.ready ||
		snap.gen != owner.health.Gen() || owner.health.probeDue() {
		// Selection may run inside prepare: publish the payload size first so
		// size-aware policies see the message they are selecting for.
		owner.selSize.Store(int64(payloadLen))
		var err error
		if snap, err = sp.prepare(tid); err != nil {
			return err
		}
	}
	ext := wire.Ext{Trace: [16]byte(tid), RPC: rext}
	for i := range snap.links {
		if snap.links[i].relay {
			// At least one link rides a mesh-installed relay route: stamp the
			// hop budget so forwarders can decrement it and suppress loops.
			// Via is 0 at the originator; the first relay stamps itself.
			// Direct links in the same multicast harmlessly carry the
			// extension too (the frame is encoded once for all links).
			flags |= wire.FlagRelay
			ext.Relay = wire.RelayExt{TTL: owner.relayTTL, Via: 0}
			break
		}
	}
	if fl := owner.flow; fl != nil && len(snap.links) == 1 && cls != wire.ClassControl {
		// Piggyback a due credit grant for the reverse direction of this
		// link on the outbound frame — the no-extra-frame refill path for
		// request/reply traffic. Single-link only (the frame is encoded
		// once for all links), and only when the credited frame stays under
		// the link's limit: fragmentation strips the credit extension.
		l0 := &snap.links[0]
		if l0.method != "" && l0.method != "local" &&
			wire.HeaderLenExt(len(handler), flags|wire.FlagCredit)+payloadLen <= l0.maxMsg {
			if gb, gf, ok := fl.grantor.GrantIfDue(uint64(l0.context), l0.method); ok {
				flags |= wire.FlagCredit
				ext.CreditBytes, ext.CreditFrames = gb, gf
				fl.cGrantsSent.Inc()
			}
		}
	}
	off := wire.HeaderLenExt(len(handler), flags)
	enc := bufpool.Get(off + payloadLen)
	defer bufpool.Put(enc)
	wire.EncodeHeaderExt(enc, wire.TypeRSR, flags,
		uint64(snap.links[0].context), snap.links[0].endpoint, uint64(owner.id),
		ext, handler, payloadLen)
	if b != nil {
		b.EncodeTo(enc[off:])
	} else {
		enc[off] = byte(buffer.NativeFormat)
	}
	var errs []error
	for i := range snap.links {
		l := &snap.links[i]
		wire.PatchDest(enc, uint64(l.context), l.endpoint)
		if l.conn == nil {
			// Selection failed during prepare (failover mode, selErr) —
			// recover under the lock now that the frame exists.
			if l.selErr == nil {
				continue
			}
			if err, fatal := sp.recoverSend(l, enc, handler, flags, rext, off, l.selErr, tid); err != nil {
				if fatal {
					return err
				}
				errs = append(errs, err)
				continue
			}
			owner.cRSRSent.Inc()
			owner.cBytesSent.Add(uint64(len(enc)))
			continue
		}
		if fl := owner.flow; fl != nil && cls != wire.ClassControl && l.method != "local" {
			// Charge the message against this link's credit window before it
			// touches the transport. A fragmenting message debits one frame
			// per fragment; the byte debit is the whole encoding either way.
			nframes := uint64(1)
			if l.maxMsg > 0 && len(enc) > l.maxMsg {
				if chunk := l.maxMsg - wire.HeaderLenExt(len(handler), (flags&^wire.FlagCredit)|wire.FlagFrag); chunk > 0 {
					nframes = uint64((len(enc) - off + chunk - 1) / chunk)
				}
			}
			if !owner.flowAcquire(uint64(l.context), l.method, l.conn.conn, cls, uint64(len(enc)), nframes) {
				owner.shedCounter(cls).Inc()
				errs = append(errs, fmt.Errorf("core: RSR via %s to context %d: %w", l.method, l.context, ErrNoCredit))
				continue
			}
		}
		var t0 time.Time
		if mode&obsStats != 0 {
			t0 = time.Now()
		}
		var serr error
		if l.maxMsg > 0 && len(enc) > l.maxMsg {
			// The frame exceeds this link's method limit: it travels as
			// fragments, reassembled at the receiving context (bulk.go). The
			// split is per link, so the other links of a multicast startpoint
			// still get the single encoded frame if their method carries it.
			serr = sp.fragmentTo(l.conn.conn, l.maxMsg, l.context, l.endpoint, flags, rext, tid, handler, enc[off:])
		} else {
			serr = l.conn.conn.Send(enc)
		}
		if serr != nil {
			if rerr, fatal := sp.recoverSend(l, enc, handler, flags, rext, off, serr, tid); rerr != nil {
				if fatal {
					return rerr
				}
				// Degrade per target: the remaining links still get the
				// frame; the caller sees which targets failed.
				errs = append(errs, rerr)
				continue
			}
		} else {
			if mode&obsStats != 0 {
				d := time.Since(t0)
				if l.lat != nil {
					l.lat.Stage(obsv.StageSend).Record(d)
				}
				if mode&obsTrace != 0 {
					owner.recordEvent(obsv.Event{
						Trace:    tid,
						Stage:    obsv.StageSend,
						Method:   l.method,
						Peer:     uint64(l.context),
						Endpoint: l.endpoint,
						Handler:  handler,
						Dur:      d,
					})
				}
			}
			if l.t.reportUp.CompareAndSwap(true, false) {
				owner.health.reportSuccess(l.method, l.context)
			}
		}
		owner.cRSRSent.Inc()
		owner.cBytesSent.Add(uint64(len(enc)))
	}
	return errors.Join(errs...)
}

// prepare rebuilds the send snapshot under sp.mu: bind unbound links, refresh
// bound ones whose selection is stale — the health registry moved (a circuit
// tripped or healed) or an open circuit's backoff expired and a probe is due.
func (sp *Startpoint) prepare(tid obsv.TraceID) (*sendSnapshot, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.targets) == 0 {
		return nil, fmt.Errorf("core: RSR on unbound startpoint")
	}
	// Re-read the generation under the lock so the snapshot is stamped with
	// the freshest value selection can observe.
	gen := sp.owner.health.Gen()
	probeDue := sp.owner.health.probeDue()
	pg := sp.owner.peerGen.Load()
	for _, t := range sp.targets {
		t.selErr = nil
		if t.fromPeer && t.peerGen != pg && !t.manual {
			// The peer-table set this lightweight link resolved through has
			// moved (gossip refreshed or removed the table): drop the cached
			// table and binding so selection re-resolves against the current
			// set. A removed peer now fails with ErrNoTable instead of
			// sending on stale descriptors.
			t.table = nil
			t.fromPeer = false
			if t.conn != nil {
				sp.owner.releaseConn(t.conn)
				t.conn = nil
				t.method = ""
			}
		}
		if t.conn == nil {
			t.healthGen = gen
			if err := sp.selectTarget(t, tid); err != nil {
				if !sp.failover {
					sp.publishLocked()
					return nil, err
				}
				// With failover on, a failed selection still gets the frame:
				// the send loop retries against the remaining healthy methods
				// once the frame is encoded.
				t.selErr = err
			}
			continue
		}
		if t.healthGen != gen || probeDue {
			sp.refreshTarget(t, gen)
		}
	}
	return sp.publishLocked(), nil
}

// publishLocked rebuilds and stores the atomic send snapshot from the current
// link state. Caller holds sp.mu. Every mutator republishes before unlocking,
// so the lock-free fast path never reads a binding older than the last
// locked operation.
func (sp *Startpoint) publishLocked() *sendSnapshot {
	snap := &sendSnapshot{
		gen:      ^uint64(0),
		ready:    len(sp.targets) > 0,
		failover: sp.failover,
		links:    make([]sendLink, len(sp.targets)),
	}
	for i, t := range sp.targets {
		snap.links[i] = sendLink{
			t:        t,
			context:  t.context,
			endpoint: t.endpoint,
			method:   t.method,
			conn:     t.conn,
			lat:      t.lat,
			maxMsg:   t.maxMsg,
			relay:    t.relayVia != 0,
			selErr:   t.selErr,
		}
		if t.conn == nil || t.selErr != nil {
			snap.ready = false
		}
		if t.healthGen < snap.gen {
			snap.gen = t.healthGen
		}
	}
	sp.snap.Store(snap)
	return snap
}

// recoverSend handles one link's failed (or never-selected) send under sp.mu.
// If the link's binding changed since the snapshot was taken — another sender
// already recovered it — the frame is retried on the fresh communication
// object WITHOUT charging the health registry: the failure indicts the stale
// snapshot, not the current method. Otherwise the failure is reported, the
// poisoned shared conn invalidated, and with failover enabled the
// reselect/redial/resend loop runs. fatal=true keeps non-failover semantics:
// the first real send error aborts the whole RSR.
func (sp *Startpoint) recoverSend(l *sendLink, enc []byte, handler string, flags byte, rext wire.RPCExt, off int, cause error, tid obsv.TraceID) (err error, fatal bool) {
	owner := sp.owner
	sp.mu.Lock()
	defer func() {
		sp.publishLocked()
		sp.mu.Unlock()
	}()
	t := l.t
	if t.conn != nil && t.conn != l.conn {
		// Stale snapshot: retry once on the current binding (size-aware — the
		// fresh binding may have a different frame limit than the stale one).
		serr := sp.sendToTargetLocked(t, enc, handler, flags, rext, off, tid)
		if serr == nil {
			if t.reportUp.CompareAndSwap(true, false) {
				owner.health.reportSuccess(t.method, t.context)
			}
			return nil, false
		}
		// The current binding fails too — charge it below.
		cause = serr
	}
	if t.conn != nil {
		owner.health.reportFailure(t.method, t.context, cause)
		owner.invalidateConn(t.conn)
	}
	if !sp.failover {
		method := t.method
		if method == "" {
			method = l.method
		}
		return fmt.Errorf("core: RSR via %s to context %d: %w", method, t.context, cause), true
	}
	if ferr := sp.failoverTarget(t, enc, handler, flags, rext, off, cause, tid); ferr != nil {
		return fmt.Errorf("core: RSR to context %d: %w", t.context, ferr), false
	}
	return nil, false
}

// Close releases the startpoint's communication objects. The links
// themselves (the remote endpoints) are unaffected.
func (sp *Startpoint) Close() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, t := range sp.targets {
		if t.conn != nil {
			sp.owner.releaseConn(t.conn)
			t.conn = nil
			t.method = ""
		}
	}
	sp.publishLocked()
}

// Encode packs the startpoint — links and descriptor tables — into the
// buffer, so it can travel inside an RSR and name its endpoints globally.
func (sp *Startpoint) Encode(b *buffer.Buffer) { sp.encode(b, true) }

// EncodeLite packs the startpoint without descriptor tables. The receiving
// context must know the target contexts' tables already (RegisterPeerTable),
// the optimization the paper applies to links within a parallel computer,
// where a default table is used repeatedly and startpoints must stay small.
func (sp *Startpoint) EncodeLite(b *buffer.Buffer) { sp.encode(b, false) }

func (sp *Startpoint) encode(b *buffer.Buffer, withTables bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	b.PutUint16(uint16(len(sp.targets)))
	for _, t := range sp.targets {
		b.PutUint64(uint64(t.context))
		b.PutUint64(t.endpoint)
		if withTables && t.table != nil {
			b.PutBool(true)
			t.table.Encode(b)
		} else {
			b.PutBool(false)
		}
	}
}

// DecodeStartpoint rebuilds a startpoint from a buffer in this context.
// Copying a startpoint this way creates fresh communication links: method
// selection runs anew here, against this context's modules, when the
// startpoint is first used.
func (c *Context) DecodeStartpoint(b *buffer.Buffer) (*Startpoint, error) {
	n := int(b.Uint16())
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding startpoint: %w", err)
	}
	sp := &Startpoint{owner: c}
	for i := 0; i < n; i++ {
		t := &target{
			context:  transport.ContextID(b.Uint64()),
			endpoint: b.Uint64(),
		}
		if b.Bool() {
			table, err := transport.DecodeTable(b)
			if err != nil {
				return nil, fmt.Errorf("core: decoding startpoint target %d: %w", i, err)
			}
			t.table = table
		}
		if err := b.Err(); err != nil {
			return nil, fmt.Errorf("core: decoding startpoint target %d: %w", i, err)
		}
		sp.targets = append(sp.targets, t)
	}
	return sp, nil
}

// NewStartpointTo builds a startpoint addressing an explicit (context,
// endpoint) pair, with an optional descriptor table. With a nil table the
// startpoint is lightweight: it resolves through the context's registered
// peer tables on first use, exactly like a startpoint decoded from a
// table-less encoding. The gossip agent uses this to address a peer's
// agent endpoint straight from a registry record, without the peer ever
// shipping a startpoint out of band.
func (c *Context) NewStartpointTo(ctx transport.ContextID, ep uint64, table *transport.Table) *Startpoint {
	t := &target{context: ctx, endpoint: ep}
	if table != nil {
		t.table = table.Clone()
	}
	return &Startpoint{owner: c, targets: []*target{t}}
}

// TransferStartpoint copies a startpoint into another context through the
// standard encode/decode path, exactly as if it had been carried inside an
// RSR. It is a convenience for single-process machines, where the "transfer"
// needs no network hop.
func TransferStartpoint(sp *Startpoint, dst *Context) (*Startpoint, error) {
	b := buffer.New(256)
	sp.Encode(b)
	dec, err := buffer.FromBytes(b.Encode())
	if err != nil {
		return nil, err
	}
	return dst.DecodeStartpoint(dec)
}

func (sp *Startpoint) String() string {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.targets) == 1 {
		t := sp.targets[0]
		return fmt.Sprintf("startpoint(ctx=%d, ep=%d, method=%q)", t.context, t.endpoint, t.method)
	}
	return fmt.Sprintf("startpoint(%d links)", len(sp.targets))
}
