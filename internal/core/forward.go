package core

import (
	"fmt"
	"strconv"
	"time"

	"nexus/internal/obsv"
	"nexus/internal/transport"
	"nexus/internal/wire"
)

// EnableForwarding turns the context into a forwarding processor: frames that
// arrive addressed to other contexts are re-sent toward their destination
// using the first applicable method from the destination's registered peer
// table (RegisterPeerTable). This is the paper's alternative to multimethod
// polling: one node receives all traffic for an expensive method and relays
// it over the cheap one, so the other nodes never poll the expensive method
// at all.
func (c *Context) EnableForwarding() {
	c.mu.Lock()
	c.forwarder = true
	c.mu.Unlock()
}

// ForwardingEnabled reports whether this context relays misaddressed frames.
func (c *Context) ForwardingEnabled() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.forwarder
}

// forward relays a frame addressed to another context. The frame is re-sent
// byte-for-byte: the wire header already carries the ultimate destination
// (and, for traced frames, the originator's trace ID, which therefore
// crosses the relay untouched — a trace spans every hop of a forwarded
// path). Like dispatch, forward borrows raw — the relaying Send completes
// before it returns.
func (c *Context) forward(f *wire.Frame, raw []byte) {
	dest := transport.ContextID(f.DestContext)
	c.mu.RLock()
	enabled := c.forwarder
	c.mu.RUnlock()
	if !enabled {
		c.errlog(fmt.Errorf("core: context %d: frame for context %d dropped (forwarding disabled)",
			c.id, dest))
		c.stats.Counter("forward.dropped").Inc()
		return
	}
	table := c.PeerTable(dest)
	if table == nil {
		c.errlog(fmt.Errorf("core: forwarder %d: no route to context %d: %w", c.id, dest, ErrNoTable))
		c.stats.Counter("forward.dropped").Inc()
		return
	}
	// Multi-hop mesh frames carry the relay extension: spend one hop of the
	// budget and stamp this context as the via hop before relaying. The next
	// hop may itself be a relay (the route table entry for dest points at
	// it), so forwarding recurses across the mesh until the budget runs out.
	if f.HasRelay() {
		if f.Relay.TTL <= 1 {
			c.errlog(fmt.Errorf("core: forwarder %d: frame for context %d dropped (hop budget exhausted, via %d)",
				c.id, dest, f.Relay.Via))
			c.stats.Counter("forward.ttl_exhausted").Inc()
			c.stats.Counter("forward.dropped").Inc()
			return
		}
		via := f.Relay.Via
		wire.PatchRelay(raw, f.Relay.TTL-1, uint64(c.id))
		// Loop suppression: never hand the frame back to the relay it just
		// came from. Route entries name their next hop in the relay
		// attribute; direct entries (no attribute) are always kept.
		if via != 0 {
			kept := table.Entries[:0]
			for _, e := range table.Entries {
				if rv := e.Attr(transport.AttrRelay); rv != "" && rv == strconv.FormatUint(via, 10) {
					continue
				}
				kept = append(kept, e)
			}
			if len(kept) == 0 {
				c.errlog(fmt.Errorf("core: forwarder %d: frame for context %d dropped (only route points back at via %d)",
					c.id, dest, via))
				c.stats.Counter("forward.loop_dropped").Inc()
				c.stats.Counter("forward.dropped").Inc()
				return
			}
			table.Entries = kept
		}
	}
	var tid obsv.TraceID
	if f.HasTrace() {
		tid = obsv.TraceID(f.Trace)
	}
	// Relay with the same supervision an RSR link gets: a failed route feeds
	// the health registry, the route is reselected against the remaining
	// healthy descriptors, and the frame is resent — bounded by the same
	// per-frame attempt budget startpoint failover uses.
	budget := table.Len()*c.health.cfg.FailureThreshold + 1
	var lastErr error
	for attempt := 0; attempt < budget; attempt++ {
		desc, err := c.healthSel(c, table)
		if err != nil {
			c.errlog(fmt.Errorf("core: forwarder %d: selecting route to context %d: %w (last relay error: %v)", c.id, dest, err, lastErr))
			c.stats.Counter("forward.dropped").Inc()
			return
		}
		sc, err := c.acquireConn(desc, tid)
		if err != nil {
			lastErr = err
			c.health.reportFailure(desc.Method, dest, err)
			continue
		}
		if attempt > 0 {
			c.health.cRedials.Inc()
		}
		mode := c.obs.mode.Load()
		var t0 time.Time
		if mode&obsStats != 0 {
			t0 = time.Now()
		}
		// The forwarder keeps its route connections open: the acquired
		// reference is intentionally retained (released when the context
		// closes).
		if err := sc.conn.Send(raw); err != nil {
			lastErr = err
			c.errlog(fmt.Errorf("core: forwarder %d: relaying to context %d via %s: %w", c.id, dest, desc.Method, err))
			c.health.reportFailure(desc.Method, dest, err)
			c.invalidateConn(sc)
			c.releaseConn(sc)
			continue
		}
		if mode&obsStats != 0 {
			d := time.Since(t0)
			if ss := c.stageSetFor(desc.Method); ss != nil {
				ss.Stage(obsv.StageRelay).Record(d)
			}
			if mode&obsTrace != 0 && !tid.IsZero() {
				c.recordEvent(obsv.Event{
					Trace:    tid,
					Stage:    obsv.StageRelay,
					Method:   desc.Method,
					Peer:     f.DestContext,
					Endpoint: f.DestEndpoint,
					Handler:  f.Handler,
					Dur:      d,
				})
			}
		}
		if attempt > 0 {
			c.health.reportSuccess(desc.Method, dest)
			c.health.cResends.Inc()
		}
		c.stats.Counter("forward.relayed").Inc()
		return
	}
	c.errlog(fmt.Errorf("core: forwarder %d: relay to context %d exhausted %d attempts: %w", c.id, dest, budget, lastErr))
	c.stats.Counter("forward.dropped").Inc()
}

// NewRelayRoute builds the peer table that routes frames for dest through a
// relay context: every entry of the relay's own advertised table is cloned
// with Context rewritten to dest (the entry still names the final
// destination, as in RewriteForForwarder) and the relay attribute naming the
// next hop — which is what lets senders stamp the wire relay extension and
// lets forwarders suppress routing loops. The relay's own peer table for
// dest decides the following hop, so multi-hop routes compose out of
// single-hop installs. maxMsg, when positive, caps the route's advertised
// max_message (the narrowest link along the path).
func NewRelayRoute(dest, relay transport.ContextID, relayTable *transport.Table, maxMsg int) *transport.Table {
	out := transport.NewTable()
	rid := strconv.FormatUint(uint64(relay), 10)
	for _, e := range relayTable.Entries {
		ne := e.Clone()
		ne.Context = dest
		if ne.Attrs == nil {
			ne.Attrs = make(map[string]string, 2)
		}
		ne.Attrs[transport.AttrRelay] = rid
		if maxMsg > 0 {
			if cur := ne.MaxMessage(); cur == 0 || maxMsg < cur {
				ne.Attrs[transport.AttrMaxMessage] = strconv.Itoa(maxMsg)
			}
		}
		out.Add(ne)
	}
	return out
}

// RewriteForForwarder edits a descriptor table so that the given method's
// entry points at the forwarder's address instead of the context's own: any
// sender using that method then reaches the forwarder, which relays inward.
// The entry's Context field is preserved — it still names the final
// destination; only the reachability attributes change. Returns false if the
// table has no entry for the method.
func RewriteForForwarder(t *transport.Table, method string, forwarder transport.Descriptor) bool {
	found := false
	for i, e := range t.Entries {
		if e.Method != method {
			continue
		}
		ne := forwarder.Clone()
		ne.Method = method
		ne.Context = e.Context
		t.Entries[i] = ne
		found = true
	}
	return found
}
