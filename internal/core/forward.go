package core

import (
	"fmt"
	"time"

	"nexus/internal/obsv"
	"nexus/internal/transport"
	"nexus/internal/wire"
)

// EnableForwarding turns the context into a forwarding processor: frames that
// arrive addressed to other contexts are re-sent toward their destination
// using the first applicable method from the destination's registered peer
// table (RegisterPeerTable). This is the paper's alternative to multimethod
// polling: one node receives all traffic for an expensive method and relays
// it over the cheap one, so the other nodes never poll the expensive method
// at all.
func (c *Context) EnableForwarding() {
	c.mu.Lock()
	c.forwarder = true
	c.mu.Unlock()
}

// ForwardingEnabled reports whether this context relays misaddressed frames.
func (c *Context) ForwardingEnabled() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.forwarder
}

// forward relays a frame addressed to another context. The frame is re-sent
// byte-for-byte: the wire header already carries the ultimate destination
// (and, for traced frames, the originator's trace ID, which therefore
// crosses the relay untouched — a trace spans every hop of a forwarded
// path). Like dispatch, forward borrows raw — the relaying Send completes
// before it returns.
func (c *Context) forward(f *wire.Frame, raw []byte) {
	dest := transport.ContextID(f.DestContext)
	c.mu.RLock()
	enabled := c.forwarder
	c.mu.RUnlock()
	if !enabled {
		c.errlog(fmt.Errorf("core: context %d: frame for context %d dropped (forwarding disabled)",
			c.id, dest))
		c.stats.Counter("forward.dropped").Inc()
		return
	}
	table := c.PeerTable(dest)
	if table == nil {
		c.errlog(fmt.Errorf("core: forwarder %d: no route to context %d: %w", c.id, dest, ErrNoTable))
		c.stats.Counter("forward.dropped").Inc()
		return
	}
	var tid obsv.TraceID
	if f.HasTrace() {
		tid = obsv.TraceID(f.Trace)
	}
	// Relay with the same supervision an RSR link gets: a failed route feeds
	// the health registry, the route is reselected against the remaining
	// healthy descriptors, and the frame is resent — bounded by the same
	// per-frame attempt budget startpoint failover uses.
	budget := table.Len()*c.health.cfg.FailureThreshold + 1
	var lastErr error
	for attempt := 0; attempt < budget; attempt++ {
		desc, err := c.healthSel(c, table)
		if err != nil {
			c.errlog(fmt.Errorf("core: forwarder %d: selecting route to context %d: %w (last relay error: %v)", c.id, dest, err, lastErr))
			c.stats.Counter("forward.dropped").Inc()
			return
		}
		sc, err := c.acquireConn(desc, tid)
		if err != nil {
			lastErr = err
			c.health.reportFailure(desc.Method, dest, err)
			continue
		}
		if attempt > 0 {
			c.health.cRedials.Inc()
		}
		mode := c.obs.mode.Load()
		var t0 time.Time
		if mode&obsStats != 0 {
			t0 = time.Now()
		}
		// The forwarder keeps its route connections open: the acquired
		// reference is intentionally retained (released when the context
		// closes).
		if err := sc.conn.Send(raw); err != nil {
			lastErr = err
			c.errlog(fmt.Errorf("core: forwarder %d: relaying to context %d via %s: %w", c.id, dest, desc.Method, err))
			c.health.reportFailure(desc.Method, dest, err)
			c.invalidateConn(sc)
			c.releaseConn(sc)
			continue
		}
		if mode&obsStats != 0 {
			d := time.Since(t0)
			if ss := c.stageSetFor(desc.Method); ss != nil {
				ss.Stage(obsv.StageRelay).Record(d)
			}
			if mode&obsTrace != 0 && !tid.IsZero() {
				c.recordEvent(obsv.Event{
					Trace:    tid,
					Stage:    obsv.StageRelay,
					Method:   desc.Method,
					Peer:     f.DestContext,
					Endpoint: f.DestEndpoint,
					Handler:  f.Handler,
					Dur:      d,
				})
			}
		}
		if attempt > 0 {
			c.health.reportSuccess(desc.Method, dest)
			c.health.cResends.Inc()
		}
		c.stats.Counter("forward.relayed").Inc()
		return
	}
	c.errlog(fmt.Errorf("core: forwarder %d: relay to context %d exhausted %d attempts: %w", c.id, dest, budget, lastErr))
	c.stats.Counter("forward.dropped").Inc()
}

// RewriteForForwarder edits a descriptor table so that the given method's
// entry points at the forwarder's address instead of the context's own: any
// sender using that method then reaches the forwarder, which relays inward.
// The entry's Context field is preserved — it still names the final
// destination; only the reachability attributes change. Returns false if the
// table has no entry for the method.
func RewriteForForwarder(t *transport.Table, method string, forwarder transport.Descriptor) bool {
	found := false
	for i, e := range t.Entries {
		if e.Method != method {
			continue
		}
		ne := forwarder.Clone()
		ne.Method = method
		ne.Context = e.Context
		t.Entries[i] = ne
		found = true
	}
	return found
}
