// Package core implements the multimethod communication architecture of the
// paper: contexts, communication links (startpoint → endpoint), remote
// service requests, communication descriptor tables, automatic and manual
// method selection, multimethod polling with skip_poll, and forwarding.
//
// A Context is an address space (the paper's "virtual processor"). It hosts
// endpoints, a handler table, a set of communication modules in preference
// order, and the machinery that detects and dispatches incoming RSRs across
// all of those modules.
package core

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/flow"
	"nexus/internal/frag"
	"nexus/internal/metrics"
	"nexus/internal/obsv"
	"nexus/internal/reactor"
	"nexus/internal/transport"
	"nexus/internal/wire"
)

// Errors returned by core operations.
var (
	// ErrClosed reports use of a closed context.
	ErrClosed = errors.New("core: context closed")
	// ErrNoApplicableMethod reports that no method in a startpoint's
	// descriptor table is applicable from the sending context.
	ErrNoApplicableMethod = errors.New("core: no applicable communication method")
	// ErrNoTable reports a lightweight startpoint whose target context has
	// no registered peer table.
	ErrNoTable = errors.New("core: no descriptor table for target context")
	// ErrUnknownHandler reports an RSR naming a handler the destination
	// context has not registered.
	ErrUnknownHandler = errors.New("core: unknown handler")
	// ErrUnknownEndpoint reports an RSR addressed to a destroyed or unknown
	// endpoint.
	ErrUnknownEndpoint = errors.New("core: unknown endpoint")
	// ErrUnknownMethod reports a manual selection of a method the context
	// has not enabled.
	ErrUnknownMethod = errors.New("core: method not enabled in this context")
)

// HandlerFunc is the code invoked by an incoming remote service request. The
// endpoint is the link's receiving end (carrying any bound local data); the
// buffer holds the sender's packed arguments.
type HandlerFunc func(ep *Endpoint, b *buffer.Buffer)

// MethodConfig enables one communication method in a context.
type MethodConfig struct {
	// Name is the registered module name ("tcp", "inproc", "mpl", ...).
	Name string
	// Params configures the module instance.
	Params transport.Params
	// SkipPoll polls this method only every k-th pass (default 1: every
	// pass). This is the paper's skip_poll parameter.
	SkipPoll int
	// Blocking starts the module in blocking-detection mode if it supports
	// it (transport.Blocker); the polling loop then skips it.
	Blocking bool
}

// Options configures a new context.
type Options struct {
	// ID is the context identity; 0 assigns the next process-wide id.
	ID transport.ContextID
	// Process identifies the hosting OS process (defaults to "p<pid>").
	Process string
	// Partition names the context's partition, for partition-scoped methods.
	Partition string
	// Registry resolves method names (defaults to transport.Default).
	Registry *transport.Registry
	// Methods lists the enabled methods in descriptor-table preference
	// order. The "local" method is always enabled and listed first.
	Methods []MethodConfig
	// Threaded runs incoming RSR handlers on the context's dispatch engine —
	// a sharded pool of worker lanes — instead of inline on the goroutine
	// that detected the message (the Nexus threaded-handler model). Frames
	// are hashed to a lane by destination endpoint, so deliveries to one
	// endpoint stay FIFO while distinct endpoints execute in parallel.
	// Default: handlers run inline on the detecting goroutine.
	Threaded bool
	// Dispatch tunes the threaded dispatch engine (lane count, queue depth,
	// backpressure policy). Ignored unless Threaded is set.
	Dispatch DispatchConfig
	// Selector chooses among applicable methods (default FirstApplicable).
	Selector Selector
	// PollOnRSR performs an opportunistic poll pass on every RSR send,
	// mirroring "the polling function will be called at least every time a
	// Nexus operation is performed". Default true; set DisablePollOnRSR to
	// turn it off.
	DisablePollOnRSR bool
	// ErrorLog receives asynchronous delivery errors (unknown handler,
	// undeliverable forward). Defaults to counting them silently.
	ErrorLog func(error)
	// Health tunes the per-link health registry behind automatic method
	// failover (circuit-breaker thresholds, backoff). The zero value
	// selects defaults.
	Health HealthConfig
	// Observe configures the observability subsystem (latency histograms,
	// RSR tracing). The zero value leaves it off — the default, and the
	// configuration the hot-path overhead contract is written against.
	Observe ObserveConfig
	// MaxMessageSize caps one RSR's encoded payload in bytes (default 16 MiB,
	// clamped to the wire format's 64 MiB payload cap). Payloads up to this
	// size are accepted on every link: a payload too large for the selected
	// method's frame limit travels as wire fragments and is reassembled at
	// the receiving context. Larger payloads are rejected with an error
	// matching transport.ErrTooLarge.
	MaxMessageSize int
	// Frag tunes the receive-side fragment reassembler (buffering budgets,
	// stale-partial TTL). The zero value selects defaults.
	Frag FragConfig
	// Flow enables and tunes credit-based flow control (see FlowConfig). The
	// zero value leaves it off: sends are never charged against credit and
	// the context advertises no windows.
	Flow FlowConfig
	// DisableReactor keeps every module on the portable polling path even
	// where the platform offers a readiness reactor (Linux epoll). By
	// default, modules implementing transport.Reactive register their
	// sockets with a context-wide reactor and are polled only when the
	// kernel reports inbound data — an idle poll pass then costs zero
	// syscalls for those methods.
	DisableReactor bool
	// RPC configures the request/response layer built on top of RSR. Core
	// only carries the knobs; the layer itself (internal/rpc) is attached by
	// the facade when Enabled is set, or by calling rpc.Enable directly.
	RPC RPCConfig
	// Cluster configures dynamic cluster membership: gossip-driven
	// descriptor distribution and mesh relay routing. Core only carries the
	// knobs (see cluster_hook.go); the layer itself (internal/cluster) is
	// attached by the facade when Enabled is set, or by calling
	// cluster.Attach directly.
	Cluster ClusterConfig
	// DebugProfiling opts this context into runtime profiling endpoints:
	// the facade's DebugMux mounts net/http/pprof alongside /debug/nexusz
	// only for contexts built with this set. Off by default — profiling
	// handlers expose stacks and heap contents and belong behind an
	// explicit flag.
	DebugProfiling bool
}

var nextContextID atomic.Uint64

// Context is an address space participating in multimethod communication.
type Context struct {
	id        transport.ContextID
	process   string
	partition string
	selector  Selector // as configured
	healthSel Selector // selector wrapped with circuit filtering
	pollOnRSR bool
	profiling bool
	errlog    func(error)
	stats     *metrics.Set
	registry  *transport.Registry
	health    *healthRegistry

	// Hot-path counters, resolved once at construction. Set.Counter is a
	// lock plus a map lookup; the RSR send/receive and poll paths hit these
	// on every operation, so they keep direct pointers (the metrics package
	// documents that returned pointers may be cached).
	cRSRSent     *metrics.Counter
	cRSRRecv     *metrics.Counter
	cBytesSent   *metrics.Counter
	cBytesRecv   *metrics.Counter
	cPollPasses  *metrics.Counter
	cRSRFailover *metrics.Counter
	cDropUnkEP   *metrics.Counter // rsr.dropped.unknown_endpoint
	cDropUnkH    *metrics.Counter // rsr.dropped.unknown_handler
	cDropNoRPC   *metrics.Counter // rsr.dropped.no_rpc_layer

	// rpcIntake receives delivered frames carrying wire.FlagRPC (see
	// rpc_hook.go); rpcState holds the attached RPC runtime opaquely.
	rpcIntake atomic.Pointer[RPCIntakeFunc]
	rpcState  atomic.Value

	// Cluster-layer hooks (see cluster_hook.go): clusterState holds the
	// attached membership agent opaquely; clusterView supplies the
	// membership rows Observe folds into snapshots; peerGen counts peer-
	// table mutations made through Refresh/RemovePeerTable so lightweight
	// startpoint links can notice their cached resolution went stale;
	// relayTTL is the hop budget stamped on mesh-routed frames.
	clusterState atomic.Value
	clusterView  atomic.Value // func() []obsv.ClusterMember
	peerGen      atomic.Uint64
	relayTTL     byte

	// Bulk-data path state (see bulk.go): the payload cap, the receive-side
	// reassembler, the fragmented-message id generator, the size hint the
	// SizeAware selector reads, and the frag.* counters.
	maxMsg         int
	frags          *frag.Reassembler
	nextMsgID      atomic.Uint64
	selSize        atomic.Int64
	cFragMsgs      *metrics.Counter // frag.messages.sent
	cFragTx        *metrics.Counter // frag.fragments.sent
	cFragRx        *metrics.Counter // frag.fragments.recv
	cFragAssembled *metrics.Counter // frag.assembled
	cFragExpired   *metrics.Counter // frag.expired
	cFragDup       *metrics.Counter // frag.duplicates
	cFragDropped   *metrics.Counter // frag.dropped (invalid or over-budget)

	// flow is the credit-based flow-control state (nil unless Options.Flow
	// is enabled); the rsr.shed.* counters record messages dropped by class —
	// send side on credit exhaustion, receive side at dispatch admission.
	flow         *flowState
	cShedControl *metrics.Counter // rsr.shed.control (exists for symmetry; stays 0)
	cShedNormal  *metrics.Counter // rsr.shed.normal
	cShedBulk    *metrics.Counter // rsr.shed.bulk

	// The dispatch fast path resolves endpoints and handlers through
	// copy-on-write tables: readers load the current map with one atomic
	// pointer load and never lock; writers (RegisterHandler, NewEndpoint,
	// close paths) copy-mutate-swap under mu. The gate lets table writers
	// wait out in-flight deliveries (see dispatch.go).
	endpoints atomic.Pointer[map[uint64]*Endpoint]
	handlers  atomic.Pointer[map[string]HandlerFunc]
	gate      dispatchGate

	// dispatcher is the threaded-mode worker pool (nil when not threaded).
	// Set once at construction, before any frame can arrive.
	dispatcher *dispatcher

	// obs is the observability state (see observe.go). Hot paths gate on
	// one atomic load of obs.mode; with observability off that load-and-
	// branch is the entire cost.
	obs obsvState

	// rx is the readiness reactor (nil off-Linux, when DisableReactor is
	// set, or when construction failed); ready is the bitmap its waiter
	// goroutine sets — bit i belongs to the i-th reactive module — and the
	// polling loop consumes with one atomic swap per pass. nextReadyBit is
	// guarded by mu.
	rx           *reactor.Reactor
	ready        atomic.Uint64
	nextReadyBit int

	mu         sync.RWMutex
	modules    []*moduleState
	byMethod   map[string]*moduleState
	advertised *transport.Table
	nextEP     uint64
	conns      map[connKey]*sharedConn
	peerTables map[transport.ContextID]*transport.Table
	forwarder  bool
	closed     bool

	pollMu   sync.Mutex
	pollPass uint64 // guarded by pollMu
}

type moduleState struct {
	name     string
	module   transport.Module
	desc     *transport.Descriptor
	blocking bool

	// reactive marks a module on readiness-driven detection; readyBit is its
	// bit in the context's readiness bitmap. Both are set before the module
	// joins c.modules and never change afterwards.
	reactive bool
	readyBit uint64
	// hot is the remaining grace passes during which a reactive module is
	// probed directly instead of waiting for a kernel readiness edge. Reset
	// to reactiveHotPasses whenever a poll shows activity; decays by one on
	// each empty probe. While hot, rd suspends the module's kernel watch so
	// arriving data does not wake the reactor waiter the poller has already
	// replaced. Guarded by the context's pollMu.
	hot int
	// cold counts consecutive passes skipped while reactive with no edge;
	// every reactiveColdProbe-th pass probes the module anyway, bounding the
	// latency of a starved waiter-thread notification. Guarded by pollMu.
	cold int
	// rd is the module's readiness adapter (nil unless reactive).
	rd *moduleReadiness

	// skip and countdown implement skip_poll; both are guarded by the
	// context's pollMu except for reads through the atomic skipAtomic.
	// pinned (same guard) marks a value set manually via SetSkipPoll:
	// automatic tuners (AutoSkipPoll, StartAdaptiveSkipPoll) leave pinned
	// modules alone until UnpinSkipPoll.
	skip       int
	countdown  int
	pinned     bool
	skipAtomic atomic.Int64

	// consecPollErrs and pollDisabled implement receive-path supervision:
	// after HealthConfig.PollFailureThreshold consecutive Poll errors the
	// module leaves the polling rotation and re-probes on the health
	// registry's backoff schedule. Both guarded by the context's pollMu.
	consecPollErrs int
	pollDisabled   bool

	polls    *metrics.Counter
	frames   *metrics.Counter
	pollErrs *metrics.Counter

	// maxMsg is the largest frame the module's connections accept (from
	// transport.SizeLimiter; wire.MaxFrameLen when unlimited). Resolved once
	// at enableMethod so the send fast path compares against a plain int.
	maxMsg int

	// lat holds the method's per-stage latency histograms; allocated at
	// enableMethod so hot paths can record through a never-nil pointer.
	lat *obsv.StageSet
	// pollStart is the wall-clock nanosecond at which the in-progress Poll
	// call on this module began (0 when none), written by the polling loop
	// and read by dispatch to attribute detection latency to traced frames
	// the poll delivers.
	pollStart atomic.Int64
}

// NewContext creates a context and initializes its communication modules.
func NewContext(opts Options) (*Context, error) {
	id := opts.ID
	if id == 0 {
		id = transport.ContextID(nextContextID.Add(1))
	}
	proc := opts.Process
	if proc == "" {
		proc = fmt.Sprintf("p%d", os.Getpid())
	}
	reg := opts.Registry
	if reg == nil {
		reg = transport.Default
	}
	sel := opts.Selector
	if sel == nil {
		sel = FirstApplicable
	}
	c := &Context{
		id:         id,
		process:    proc,
		partition:  opts.Partition,
		selector:   sel,
		healthSel:  HealthAware(sel),
		pollOnRSR:  !opts.DisablePollOnRSR,
		profiling:  opts.DebugProfiling,
		stats:      metrics.NewSet(),
		registry:   reg,
		byMethod:   make(map[string]*moduleState),
		conns:      make(map[connKey]*sharedConn),
		peerTables: make(map[transport.ContextID]*transport.Table),
		advertised: transport.NewTable(),
	}
	eps := make(map[uint64]*Endpoint)
	c.endpoints.Store(&eps)
	hs := make(map[string]HandlerFunc)
	c.handlers.Store(&hs)
	c.health = newHealthRegistry(opts.Health, c.stats)
	c.cRSRSent = c.stats.Counter("rsr.sent")
	c.cRSRRecv = c.stats.Counter("rsr.recv")
	c.cBytesSent = c.stats.Counter("bytes.sent")
	c.cBytesRecv = c.stats.Counter("bytes.recv")
	c.cPollPasses = c.stats.Counter("poll.passes")
	c.cRSRFailover = c.stats.Counter("rsr.failover")
	c.cDropUnkEP = c.stats.Counter("rsr.dropped.unknown_endpoint")
	c.cDropUnkH = c.stats.Counter("rsr.dropped.unknown_handler")
	c.cDropNoRPC = c.stats.Counter("rsr.dropped.no_rpc_layer")
	c.relayTTL = DefaultRelayTTL
	if opts.Cluster.RelayTTL > 0 && opts.Cluster.RelayTTL < 256 {
		c.relayTTL = byte(opts.Cluster.RelayTTL)
	}
	c.maxMsg = opts.MaxMessageSize
	if c.maxMsg <= 0 {
		c.maxMsg = frag.DefaultMaxMessage
	}
	if c.maxMsg > wire.MaxPayload {
		c.maxMsg = wire.MaxPayload
	}
	c.frags = frag.New(opts.Frag.toFragConfig(c.maxMsg))
	c.cFragMsgs = c.stats.Counter("frag.messages.sent")
	c.cFragTx = c.stats.Counter("frag.fragments.sent")
	c.cFragRx = c.stats.Counter("frag.fragments.recv")
	c.cFragAssembled = c.stats.Counter("frag.assembled")
	c.cFragExpired = c.stats.Counter("frag.expired")
	c.cFragDup = c.stats.Counter("frag.duplicates")
	c.cFragDropped = c.stats.Counter("frag.dropped")
	c.cShedControl = c.stats.Counter("rsr.shed.control")
	c.cShedNormal = c.stats.Counter("rsr.shed.normal")
	c.cShedBulk = c.stats.Counter("rsr.shed.bulk")
	if opts.Flow.Enabled {
		c.flow = newFlowState(opts.Flow, c.stats)
	}
	if opts.Threaded {
		c.dispatcher = newDispatcher(c, opts.Dispatch)
	}
	c.obs.ids = obsv.NewIDGen(uint64(id)<<32 ^ uint64(time.Now().UnixNano()))
	if opts.Observe.Trace {
		c.EnableTracing(opts.Observe.TraceBuffer)
	} else if opts.Observe.Stats {
		c.EnableStats()
	}
	c.errlog = opts.ErrorLog
	if c.errlog == nil {
		dropped := c.stats.Counter("errors.dropped")
		c.errlog = func(error) { dropped.Inc() }
	}

	c.rx = newReactor(opts)

	configs := opts.Methods
	if !hasMethod(configs, "local") {
		configs = append([]MethodConfig{{Name: "local"}}, configs...)
	}
	for _, mc := range configs {
		if err := c.enableMethod(reg, mc); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

func hasMethod(configs []MethodConfig, name string) bool {
	for _, mc := range configs {
		if mc.Name == name {
			return true
		}
	}
	return false
}

func (c *Context) enableMethod(reg *transport.Registry, mc MethodConfig) error {
	if mc.SkipPoll < 1 {
		mc.SkipPoll = 1
	}
	mod, err := reg.New(mc.Name, mc.Params)
	if err != nil {
		return err
	}
	ms := &moduleState{
		name:     mc.Name,
		module:   mod,
		skip:     mc.SkipPoll,
		polls:    c.stats.Counter("poll." + mc.Name),
		frames:   c.stats.Counter("frames." + mc.Name),
		pollErrs: c.stats.Counter("poll.errors." + mc.Name),
		lat:      &obsv.StageSet{},
		maxMsg:   wire.MaxFrameLen,
	}
	if sl, ok := mod.(transport.SizeLimiter); ok {
		if n := sl.MaxMessage(); n > 0 && n < ms.maxMsg {
			ms.maxMsg = n
		}
	}
	ms.skipAtomic.Store(int64(mc.SkipPoll))
	desc, err := mod.Init(transport.Env{
		Context:   c.id,
		Process:   c.process,
		Partition: c.partition,
		Params:    mc.Params,
		Sink:      &methodSink{ctx: c, ms: ms},
	})
	if err != nil {
		return fmt.Errorf("core: enabling method %q: %w", mc.Name, err)
	}
	ms.desc = desc
	if mc.Blocking {
		b, ok := mod.(transport.Blocker)
		if !ok {
			mod.Close()
			return fmt.Errorf("core: method %q does not support blocking detection", mc.Name)
		}
		if err := b.StartBlocking(); err != nil {
			mod.Close()
			return fmt.Errorf("core: starting blocking detection for %q: %w", mc.Name, err)
		}
		ms.blocking = true
	}
	// Offer the reactor (no-op without one, or when the module declines);
	// before registration, so ms.reactive is published with the module.
	c.attachReactive(ms)

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byMethod[mc.Name]; dup {
		mod.Close()
		return fmt.Errorf("core: method %q enabled twice", mc.Name)
	}
	c.modules = append(c.modules, ms)
	c.byMethod[mc.Name] = ms
	c.registerStageSet(mc.Name, ms.lat)
	if desc != nil {
		c.advertised.Add(*desc)
	}
	return nil
}

// EnableMethod enables an additional communication method at runtime — the
// paper's "a new communication object can be constructed at any time" on the
// module level. Together with DisableMethod it lets a context drop a dead
// substrate and bring it (or a replacement) back later: the new descriptor
// joins the advertised table, and peers that refresh their tables can select
// the method again.
func (c *Context) EnableMethod(mc MethodConfig) error {
	c.mu.RLock()
	reg := c.registry
	closed := c.closed
	c.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return c.enableMethod(reg, mc)
}

// methodSink tags inbound frames with the module that delivered them, for
// per-method statistics, before handing them to the context dispatcher.
type methodSink struct {
	ctx *Context
	ms  *moduleState
}

func (s *methodSink) Deliver(frame []byte) {
	s.ms.frames.Inc()
	s.ctx.dispatch(s.ms, frame)
}

// ID reports the context identity.
func (c *Context) ID() transport.ContextID { return c.id }

// Process reports the hosting process identity.
func (c *Context) Process() string { return c.process }

// Partition reports the context's partition.
func (c *Context) Partition() string { return c.partition }

// DebugProfiling reports whether the context was built with
// Options.DebugProfiling — the facade's DebugMux mounts the pprof handlers
// only when some served context opted in.
func (c *Context) DebugProfiling() bool { return c.profiling }

// Stats exposes the context's enquiry counters.
func (c *Context) Stats() *metrics.Set { return c.stats }

// AdvertisedTable returns a copy of the context's communication descriptor
// table — the table every startpoint created here carries.
func (c *Context) AdvertisedTable() *transport.Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.advertised.Clone()
}

// SetAdvertisedTable replaces the context's descriptor table. Used by
// forwarding setups to advertise a forwarder's address in place of the
// context's own, and by users exercising manual method control.
func (c *Context) SetAdvertisedTable(t *transport.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advertised = t.Clone()
}

// RegisterHandler installs a handler under the given name. Incoming RSRs
// name the handler to invoke. The handler table is copy-on-write: the swap
// costs one map copy here so that every dispatch costs zero locks.
func (c *Context) RegisterHandler(name string, fn HandlerFunc) {
	c.mu.Lock()
	old := *c.handlers.Load()
	next := make(map[string]HandlerFunc, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = fn
	c.handlers.Store(&next)
	c.mu.Unlock()
}

// UnregisterHandler removes a named handler. When it returns, no frame will
// be delivered to the removed handler anymore: the new handler table is
// published and the dispatch gate is drained, waiting out every delivery
// that could have resolved the old table (including handlers still running
// on dispatch lanes). Because of that wait, UnregisterHandler must not be
// called synchronously from inside a handler of the same context — do it
// from outside, or from a separate goroutine.
func (c *Context) UnregisterHandler(name string) {
	c.mu.Lock()
	old := *c.handlers.Load()
	next := make(map[string]HandlerFunc, len(old))
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	c.handlers.Store(&next)
	c.mu.Unlock()
	c.gate.drain()
}

// RegisterPeerTable records another context's descriptor table, used to
// resolve lightweight startpoints (which travel without tables) and to route
// forwarded frames.
func (c *Context) RegisterPeerTable(t *transport.Table) {
	if t.Len() == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peerTables[t.Entries[0].Context] = t.Clone()
}

// RefreshPeerTable registers or replaces a peer's descriptor table at
// runtime and invalidates everything that cached the old one: the peer-table
// generation moves so lightweight startpoint links re-resolve, and the
// health generation moves so published send snapshots go stale and re-run
// selection. This is the hook gossip-driven descriptor distribution rides —
// a method added or removed on a live peer propagates into every local
// link's next send through the same mechanism a circuit trip uses.
func (c *Context) RefreshPeerTable(t *transport.Table) {
	if t.Len() == 0 {
		return
	}
	c.mu.Lock()
	c.peerTables[t.Entries[0].Context] = t.Clone()
	c.mu.Unlock()
	c.peerGen.Add(1)
	c.health.bump()
}

// RemovePeerTable forgets a peer's descriptor table (the peer left or was
// declared crashed). Lightweight links that resolved through it fail their
// next send with ErrNoTable instead of sending on stale descriptors.
func (c *Context) RemovePeerTable(id transport.ContextID) {
	c.mu.Lock()
	_, had := c.peerTables[id]
	delete(c.peerTables, id)
	c.mu.Unlock()
	if had {
		c.peerGen.Add(1)
		c.health.bump()
	}
}

// PeerTable returns the registered table for a context, or nil.
func (c *Context) PeerTable(id transport.ContextID) *transport.Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if t, ok := c.peerTables[id]; ok {
		return t.Clone()
	}
	return nil
}

// dispatch decodes an inbound frame and routes it to a handler (or onward,
// if this context is a forwarder). dispatch borrows the frame: the caller
// (the delivering module, or a local send) may recycle it as soon as
// dispatch returns, so nothing here retains frame-aliasing storage — the
// threaded engine moves the bytes into pooled storage before queueing, and
// inline handlers run to completion inside this call. The endpoint-handler
// fast path performs zero mutex acquisitions and zero payload copies: the
// frame decodes onto the stack, the tables resolve through atomic pointer
// loads, and the handler's buffer aliases the frame bytes.
func (c *Context) dispatch(ms *moduleState, frame []byte) {
	var f wire.Frame // stack-decoded: one frame arrives per delivery
	if err := wire.DecodeInto(&f, frame); err != nil {
		c.errlog(fmt.Errorf("core: context %d: bad frame: %w", c.id, err))
		return
	}
	if f.DestContext != uint64(c.id) {
		c.forward(&f, frame)
		return
	}
	if f.Type == wire.TypeControl && f.HasCredit() {
		// Standalone credit frame (grant or probe): protocol traffic, not an
		// RSR — consumed here, never queued, never shed.
		c.handleCreditFrame(&f)
		return
	}
	if c.flow != nil {
		if f.HasCredit() && ms != nil {
			// Grant piggybacked on reverse traffic: the credited method is the
			// one the frame arrived on (both ends name modules identically).
			c.flow.bank.Refill(f.SrcContext, ms.name, f.CreditBytes, f.CreditFrames)
		}
		c.flowConsume(ms, &f, len(frame))
	}
	c.cRSRRecv.Inc()
	c.cBytesRecv.Add(uint64(len(frame)))
	if c.obs.mode.Load()&obsTrace != 0 && f.HasTrace() && ms != nil {
		// Poll-stage trace event: detection latency, measured from the start
		// of the module Poll call that surfaced this frame. Blocking-mode
		// modules deliver outside a poll pass and report zero.
		now := time.Now()
		var det time.Duration
		if start := ms.pollStart.Load(); start != 0 {
			det = time.Duration(now.UnixNano() - start)
		}
		c.recordEvent(obsv.Event{
			Time:     now,
			Trace:    obsv.TraceID(f.Trace),
			Stage:    obsv.StagePoll,
			Method:   ms.name,
			Peer:     f.SrcContext,
			Endpoint: f.DestEndpoint,
			Handler:  f.Handler,
			Dur:      det,
		})
	}
	if f.HasFrag() {
		// A fragment of a bulk message: buffer it; the completing fragment
		// re-enters the delivery path with the reassembled payload. The
		// poll-stage trace event above already fired per fragment, so a
		// single trace ID spans the whole bulk transfer.
		c.handleFragment(ms, &f)
		return
	}
	if c.dispatcher != nil {
		c.dispatcher.enqueue(ms, &f, frame)
		return
	}
	c.deliver(ms, &f)
}

// deliver resolves a decoded frame against the copy-on-write tables and
// invokes the handler. It runs bracketed by the dispatch gate, which is what
// UnregisterHandler drains to guarantee no delivery resolves a stale table
// after it returns.
func (c *Context) deliver(ms *moduleState, f *wire.Frame) {
	parity := c.gate.enter()
	defer c.gate.exit(parity)
	if f.HasRPC() {
		// Request/response traffic routes by its correlation extension, not
		// by endpoint/handler lookup: the attached RPC runtime (rpc_hook.go)
		// resolves the call and invokes the registered handler itself.
		c.deliverRPC(ms, f)
		return
	}
	ep := (*c.endpoints.Load())[f.DestEndpoint]
	var fn HandlerFunc
	if f.Handler != "" {
		fn = (*c.handlers.Load())[f.Handler]
	}
	if ep == nil {
		c.cDropUnkEP.Inc()
		c.errlog(fmt.Errorf("core: context %d: endpoint %d: %w", c.id, f.DestEndpoint, ErrUnknownEndpoint))
		return
	}
	if fn == nil {
		fn = ep.handler
	}
	if fn == nil {
		c.cDropUnkH.Inc()
		c.errlog(fmt.Errorf("core: context %d: handler %q: %w", c.id, f.Handler, ErrUnknownHandler))
		return
	}
	b, err := buffer.FromBytes(f.Payload)
	if err != nil {
		c.errlog(fmt.Errorf("core: context %d: bad payload: %w", c.id, err))
		return
	}
	mode := c.obs.mode.Load()
	if mode&obsStats == 0 {
		fn(ep, b)
		return
	}
	t0 := time.Now()
	fn(ep, b)
	d := time.Since(t0)
	if ms != nil {
		ms.lat.Stage(obsv.StageHandler).Record(d)
	}
	if mode&obsTrace != 0 && f.HasTrace() {
		c.recordEvent(obsv.Event{
			Trace:    obsv.TraceID(f.Trace),
			Stage:    obsv.StageHandler,
			Method:   msName(ms),
			Peer:     f.SrcContext,
			Endpoint: f.DestEndpoint,
			Handler:  f.Handler,
			Dur:      d,
		})
	}
}

// msName reports a module state's method name, tolerating nil (frames can
// reach deliver without a known source module, e.g. in tests).
func msName(ms *moduleState) string {
	if ms == nil {
		return ""
	}
	return ms.name
}

// Closed reports whether the context has been closed.
func (c *Context) Closed() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.closed
}

// Close shuts down every module and connection. Endpoints become invalid.
func (c *Context) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	mods := c.modules
	conns := c.conns
	c.conns = make(map[connKey]*sharedConn)
	c.mu.Unlock()

	if c.flow != nil {
		// Cached grant routes reference conns in the map being closed below;
		// drop the references without a release so nothing double-closes.
		c.flow.mu.Lock()
		c.flow.routes = make(map[flow.Key]*sharedConn)
		c.flow.mu.Unlock()
	}

	var errs []string
	for _, sc := range conns {
		if err := sc.conn.Close(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	for _, ms := range mods {
		if err := ms.module.Close(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if c.rx != nil {
		// After module Close: each module removes its fds from the reactor
		// before closing its sockets, which requires the reactor alive.
		c.rx.Close()
	}
	if c.dispatcher != nil {
		// Lane workers exit on their next receive; frames still queued are
		// abandoned, handlers already running finish on their own.
		c.dispatcher.stop()
	}
	if len(errs) > 0 {
		return fmt.Errorf("core: closing context %d: %s", c.id, strings.Join(errs, "; "))
	}
	return nil
}

// connKey identifies a shareable communication object: same method, same
// remote context, same descriptor attributes.
type connKey struct {
	method string
	ctx    transport.ContextID
	attrs  string
}

func keyFor(d transport.Descriptor) connKey {
	if len(d.Attrs) == 0 {
		return connKey{method: d.Method, ctx: d.Context}
	}
	keys := make([]string, 0, len(d.Attrs))
	for k := range d.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(d.Attrs[k])
		sb.WriteByte(';')
	}
	return connKey{method: d.Method, ctx: d.Context, attrs: sb.String()}
}

// sharedConn is a reference-counted communication object shared among
// startpoints that reference the same context with the same method.
type sharedConn struct {
	key  connKey
	conn transport.Conn
	refs int // guarded by the owning context's mu
}

// acquireConn returns a shared communication object for the descriptor,
// dialing one if none exists. tid attributes the dial to the RSR that forced
// it (the first send over a link pays the dial; steady-state sends hit the
// cache above and never reach the instrumented section).
func (c *Context) acquireConn(d transport.Descriptor, tid obsv.TraceID) (*sharedConn, error) {
	key := keyFor(d)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if sc, ok := c.conns[key]; ok {
		sc.refs++
		c.mu.Unlock()
		return sc, nil
	}
	ms := c.byMethod[d.Method]
	c.mu.Unlock()
	if ms == nil {
		return nil, fmt.Errorf("core: %w: %q", ErrUnknownMethod, d.Method)
	}
	mode := c.obs.mode.Load()
	var t0 time.Time
	if mode&obsStats != 0 {
		t0 = time.Now()
	}
	conn, err := ms.module.Dial(d)
	if err != nil {
		return nil, err
	}
	if mode&obsStats != 0 {
		dur := time.Since(t0)
		ms.lat.Stage(obsv.StageDial).Record(dur)
		if mode&obsTrace != 0 && !tid.IsZero() {
			c.recordEvent(obsv.Event{
				Trace:  tid,
				Stage:  obsv.StageDial,
				Method: d.Method,
				Peer:   uint64(d.Context),
				Dur:    dur,
			})
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if sc, ok := c.conns[key]; ok { // lost the race; share the winner
		conn.Close()
		sc.refs++
		return sc, nil
	}
	sc := &sharedConn{key: key, conn: conn, refs: 1}
	c.conns[key] = sc
	return sc, nil
}

// releaseConn drops one reference, closing the connection when unused. The
// map delete is identity-guarded: an invalidated connection may already have
// been replaced under the same key by a fresh redial.
func (c *Context) releaseConn(sc *sharedConn) {
	if sc == nil {
		return
	}
	c.mu.Lock()
	sc.refs--
	var toClose transport.Conn
	if sc.refs <= 0 {
		if cur, ok := c.conns[sc.key]; ok && cur == sc {
			delete(c.conns, sc.key)
		}
		toClose = sc.conn
	}
	c.mu.Unlock()
	if toClose != nil {
		toClose.Close()
	}
}

// invalidateConn drops a communication object from the shared-connection
// cache after a send failure, so the next acquire dials a fresh connection
// instead of inheriting the poisoned one. Holders of outstanding references
// keep using (and eventually releasing) the old object; they learn of its
// death from their own send errors.
func (c *Context) invalidateConn(sc *sharedConn) {
	if sc == nil {
		return
	}
	c.mu.Lock()
	if cur, ok := c.conns[sc.key]; ok && cur == sc {
		delete(c.conns, sc.key)
	}
	c.mu.Unlock()
}

// moduleFor returns the module state for a method name.
func (c *Context) moduleFor(name string) *moduleState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byMethod[name]
}

// openConns reports the number of live shared communication objects
// (an enquiry hook used by tests and diagnostics).
func (c *Context) openConns() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.conns)
}
