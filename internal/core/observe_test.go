package core

import (
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/obsv"
	"nexus/internal/transport"
	_ "nexus/internal/transport/rudp"
)

// observeCtx builds a context with explicit observability options, registering
// the usual cleanup.
func observeCtx(t testing.TB, opts Options) *Context {
	t.Helper()
	c, err := NewContext(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// eventsFor filters a trace dump down to one trace ID.
func eventsFor(dump []obsv.Event, id obsv.TraceID) []obsv.Event {
	var out []obsv.Event
	for _, e := range dump {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}

func stagesOf(events []obsv.Event) map[obsv.Stage]bool {
	m := make(map[obsv.Stage]bool)
	for _, e := range events {
		m[e.Stage] = true
	}
	return m
}

func TestObservabilityDisabledByDefault(t *testing.T) {
	c := newCtx(t, "obs-default", "")
	if c.StatsEnabled() || c.TracingEnabled() {
		t.Fatal("observability on by default")
	}
	if d := c.TraceDump(); d != nil {
		t.Fatalf("TraceDump on a fresh context = %v", d)
	}
	s := c.Observe()
	if s.StatsEnabled || s.TraceEnabled || len(s.Latencies) != 0 {
		t.Fatalf("disabled snapshot = %+v", s)
	}
	if s.Context != uint64(c.ID()) {
		t.Errorf("snapshot context = %d, want %d", s.Context, c.ID())
	}
}

func TestObservabilityToggles(t *testing.T) {
	c := newCtx(t, "obs-toggle", "")
	c.EnableStats()
	if !c.StatsEnabled() || c.TracingEnabled() {
		t.Fatal("EnableStats state wrong")
	}
	c.EnableTracing(32)
	if !c.StatsEnabled() || !c.TracingEnabled() {
		t.Fatal("EnableTracing state wrong")
	}
	c.DisableObservability()
	if c.StatsEnabled() || c.TracingEnabled() {
		t.Fatal("DisableObservability state wrong")
	}
	// The ring survives disabling: post-mortem dumps still work.
	if c.TraceDump() == nil && c.obs.ring.Load() == nil {
		t.Error("ring discarded on disable")
	}
}

// TestHistogramStagesLocal checks that a stats-enabled context records send
// and handler latencies for ordinary RSR traffic, and that Observe surfaces
// them with non-zero counts.
func TestHistogramStagesLocal(t *testing.T) {
	c := observeCtx(t, Options{
		Methods: []MethodConfig{inprocCfg()},
		Observe: ObserveConfig{Stats: true},
	})
	var got atomic.Int64
	ep := c.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {
		got.Add(1)
	}))
	sp := ep.NewStartpoint()
	for i := 0; i < 5; i++ {
		if err := sp.RSR("", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got.Load() != 5 {
		t.Fatalf("handler ran %d times", got.Load())
	}
	method := sp.Method()
	ss := c.stageSetFor(method)
	if ss == nil {
		t.Fatalf("no StageSet for %q", method)
	}
	if n := ss.Stage(obsv.StageSend).Count(); n != 5 {
		t.Errorf("send-stage count = %d, want 5", n)
	}
	if n := ss.Stage(obsv.StageHandler).Count(); n != 5 {
		t.Errorf("handler-stage count = %d, want 5", n)
	}
	var sawSend, sawHandler bool
	for _, l := range c.Observe().Latencies {
		if l.Method == method && l.Stage == "send" && l.Count == 5 {
			sawSend = true
		}
		if l.Method == method && l.Stage == "handler" && l.Count == 5 {
			sawHandler = true
		}
	}
	if !sawSend || !sawHandler {
		t.Errorf("Observe missing stages: send=%v handler=%v\n%+v",
			sawSend, sawHandler, c.Observe().Latencies)
	}
}

// TestTraceCrossContextTCP is the acceptance scenario: a TCP ping between two
// contexts with tracing enabled must produce ONE trace ID visible in both
// contexts' dumps, with send+dial recorded at the sender and
// poll+queue+handler at the (threaded) receiver.
func TestTraceCrossContextTCP(t *testing.T) {
	recv := observeCtx(t, Options{
		Partition: "p0",
		Methods:   []MethodConfig{{Name: "tcp"}},
		Threaded:  true,
		Dispatch:  DispatchConfig{Lanes: 2, QueueDepth: 64},
		Observe:   ObserveConfig{Trace: true},
	})
	send := observeCtx(t, Options{
		Partition: "p0",
		Methods:   []MethodConfig{{Name: "tcp"}},
		Observe:   ObserveConfig{Trace: true},
	})

	var got atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {
		got.Add(1)
	}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)

	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if !recv.PollUntil(func() bool { return got.Load() > 0 }, 5*time.Second) {
		t.Fatal("RSR never delivered")
	}
	if m := sp.Method(); m != "tcp" {
		t.Fatalf("method = %q, want tcp", m)
	}

	// The sender's first send also dialed: find its trace ID.
	var tid obsv.TraceID
	for _, e := range send.TraceDump() {
		if e.Stage == obsv.StageSend && e.Method == "tcp" {
			tid = e.Trace
		}
	}
	if tid.IsZero() {
		t.Fatalf("no send event in sender dump: %v", send.TraceDump())
	}

	senderStages := stagesOf(eventsFor(send.TraceDump(), tid))
	if !senderStages[obsv.StageSend] || !senderStages[obsv.StageDial] {
		t.Errorf("sender stages for %s = %v, want send+dial", tid, senderStages)
	}

	// The receiver records its half asynchronously (lane worker): wait for
	// the handler event to land in the ring.
	deadline := time.Now().Add(5 * time.Second)
	var recvStages map[obsv.Stage]bool
	for {
		recvStages = stagesOf(eventsFor(recv.TraceDump(), tid))
		if recvStages[obsv.StageHandler] || time.Now().After(deadline) {
			break
		}
		recv.Poll()
		time.Sleep(time.Millisecond)
	}
	for _, st := range []obsv.Stage{obsv.StagePoll, obsv.StageQueueWait, obsv.StageHandler} {
		if !recvStages[st] {
			t.Errorf("receiver missing stage %s for trace %s (have %v)", st, tid, recvStages)
		}
	}

	// Same trace ID on both sides — that is the cross-context property.
	for _, e := range eventsFor(recv.TraceDump(), tid) {
		if e.Context != uint64(recv.ID()) {
			t.Errorf("receiver event recorded under context %d", e.Context)
		}
		if e.Peer != uint64(send.ID()) {
			t.Errorf("receiver event peer = %d, want sender %d", e.Peer, send.ID())
		}
	}
}

// TestTracePropagation checks the trace extension survives each transport:
// the receiver's handler event carries the sender's trace ID.
func TestTracePropagation(t *testing.T) {
	cases := []struct {
		name    string
		methods func(tag string) []MethodConfig
	}{
		{"inproc", func(tag string) []MethodConfig {
			return []MethodConfig{{Name: "inproc", Params: transport.Params{"exchange": tag}}}
		}},
		{"rudp", func(tag string) []MethodConfig {
			return []MethodConfig{{Name: "rudp"}}
		}},
		{"simnet", func(tag string) []MethodConfig {
			return []MethodConfig{{Name: "mpl", Params: transport.Params{
				"fabric": tag, "latency": "0s", "poll_cost": "0s"}}}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tag := "obs-trace-" + tc.name
			mk := func() *Context {
				return observeCtx(t, Options{
					Partition: "p0",
					Methods:   tc.methods(tag),
					Observe:   ObserveConfig{Trace: true, TraceBuffer: 128},
				})
			}
			recv, send := mk(), mk()
			var got atomic.Int64
			ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) { got.Add(1) }))
			sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
			if err := sp.RSR("", nil); err != nil {
				t.Fatal(err)
			}
			if !recv.PollUntil(func() bool { return got.Load() > 0 }, 5*time.Second) {
				t.Fatal("RSR never delivered")
			}
			var tid obsv.TraceID
			for _, e := range send.TraceDump() {
				if e.Stage == obsv.StageSend {
					tid = e.Trace
				}
			}
			if tid.IsZero() {
				t.Fatal("sender recorded no send event")
			}
			// The handler event lands synchronously inside the delivering
			// Poll, but give slow transports a grace loop.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if stagesOf(eventsFor(recv.TraceDump(), tid))[obsv.StageHandler] {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("receiver has no handler event for trace %s: %v", tid, recv.TraceDump())
				}
				recv.Poll()
			}
		})
	}
}

// TestTraceSpansForwarder checks one trace ID crosses a relay hop: sender
// records send, the forwarder records relay, the member records handler —
// three contexts, one ID, because the relayed frame travels byte-for-byte.
func TestTraceSpansForwarder(t *testing.T) {
	tag := "obs-fwd-trace"
	fwd := newCtx(t, tag, "sp2", fastMPL(tag), fastWAN(tag))
	member := newCtx(t, tag, "sp2", fastMPL(tag))
	external := newCtx(t, tag, "outside", fastWAN(tag))
	for _, c := range []*Context{fwd, member, external} {
		c.EnableTracing(256)
	}

	fwd.EnableForwarding()
	fwd.RegisterPeerTable(member.AdvertisedTable())

	var got atomic.Int64
	ep := member.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) { got.Add(1) }))

	table := member.AdvertisedTable()
	fwdWan, ok := fwd.AdvertisedTable().Find("wan")
	if !ok {
		t.Fatal("forwarder has no wan descriptor")
	}
	table.Add(transport.Descriptor{Method: "wan", Context: member.ID(), Attrs: fwdWan.Attrs})
	spb := buffer.New(256)
	(&Startpoint{owner: member, targets: []*target{{
		context: member.ID(), endpoint: ep.ID(), table: table,
	}}}).encode(spb, true)
	dec, err := buffer.FromBytes(spb.Encode())
	if err != nil {
		t.Fatal(err)
	}
	spExt, err := external.DecodeStartpoint(dec)
	if err != nil {
		t.Fatal(err)
	}
	if err := spExt.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == 0 && time.Now().Before(deadline) {
		fwd.Poll()
		member.Poll()
	}
	if got.Load() == 0 {
		t.Fatal("relayed RSR never delivered")
	}

	var tid obsv.TraceID
	for _, e := range external.TraceDump() {
		if e.Stage == obsv.StageSend {
			tid = e.Trace
		}
	}
	if tid.IsZero() {
		t.Fatal("external sender recorded no send event")
	}
	if !stagesOf(eventsFor(fwd.TraceDump(), tid))[obsv.StageRelay] {
		t.Errorf("forwarder has no relay event for trace %s: %v", tid, fwd.TraceDump())
	}
	if !stagesOf(eventsFor(member.TraceDump(), tid))[obsv.StageHandler] {
		t.Errorf("member has no handler event for trace %s: %v", tid, member.TraceDump())
	}
	// And the relay stage landed in the forwarder's histograms.
	if ss := fwd.stageSetFor("mpl"); ss == nil || ss.Stage(obsv.StageRelay).Count() == 0 {
		t.Error("forwarder relay-stage histogram empty")
	}
}

// TestTraceRingBounded checks the ring keeps only the newest events.
func TestTraceRingBounded(t *testing.T) {
	c := observeCtx(t, Options{
		Methods: []MethodConfig{inprocCfg()},
		Observe: ObserveConfig{Trace: true, TraceBuffer: 16},
	})
	ep := c.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {}))
	sp := ep.NewStartpoint()
	for i := 0; i < 50; i++ {
		if err := sp.RSR("", nil); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Observe()
	if s.TraceBuffered > 16 || s.TraceCapacity != 16 {
		t.Errorf("ring buffered=%d cap=%d, want ≤16/16", s.TraceBuffered, s.TraceCapacity)
	}
	if s.TraceTotal < 50 {
		t.Errorf("ring total = %d, want ≥50 (50 sends, ≥1 event each)", s.TraceTotal)
	}
	if len(c.TraceDump()) != s.TraceBuffered {
		t.Errorf("dump length %d != buffered %d", len(c.TraceDump()), s.TraceBuffered)
	}
}

// simPair builds two contexts sharing a simnet fabric with myri and wan
// configured at the given static poll-cost hints, and returns the sending
// context plus a startpoint whose table carries both methods.
func simPair(t *testing.T, tag, myriCost, wanCost string) (*Context, *Startpoint) {
	t.Helper()
	params := func(cost string) transport.Params {
		return transport.Params{"fabric": tag, "latency": "0s", "poll_cost": cost}
	}
	mk := func() *Context {
		return observeCtx(t, Options{
			Partition: "p0",
			Methods: []MethodConfig{
				{Name: "myri", Params: params(myriCost)},
				{Name: "wan", Params: params(wanCost)},
			},
		})
	}
	recv, send := mk(), mk()
	ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	return send, sp
}

// seedPoll fills a method's poll-stage histogram past the minObservedPolls
// threshold so measurement-driven selection trusts it.
func seedPoll(t *testing.T, c *Context, method string, d time.Duration) {
	t.Helper()
	ss := c.stageSetFor(method)
	if ss == nil {
		t.Fatalf("no StageSet for %q", method)
	}
	for i := 0; i < minObservedPolls; i++ {
		ss.Stage(obsv.StagePoll).Record(d)
	}
}

// TestCheapestPollUsesObservedCost is the selection acceptance test: with no
// measurements CheapestPoll ranks by static hints (myri, 10µs < wan, 100µs);
// once observed data says myri polls are actually expensive here, the same
// table selects wan instead — selection reordered by measurement alone.
func TestCheapestPollUsesObservedCost(t *testing.T) {
	send, sp := simPair(t, "obs-cheapest", "10us", "100us")
	table := sp.Table()

	d, err := CheapestPoll(send, table)
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "myri" {
		t.Fatalf("hint-ranked selection = %q, want myri", d.Method)
	}

	send.EnableStats()
	seedPoll(t, send, "myri", time.Millisecond)   // measured far above its hint
	seedPoll(t, send, "wan", 20*time.Microsecond) // measured far below its hint

	d, err = CheapestPoll(send, table)
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "wan" {
		t.Fatalf("measurement-ranked selection = %q, want wan", d.Method)
	}

	// Stats off again: the static hints rule once more.
	send.DisableObservability()
	d, err = CheapestPoll(send, table)
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "myri" {
		t.Fatalf("selection after disable = %q, want myri", d.Method)
	}
}

// TestCheapestPollIgnoresSparseData: below minObservedPolls samples the
// observed mean must not override the hint.
func TestCheapestPollIgnoresSparseData(t *testing.T) {
	send, sp := simPair(t, "obs-sparse", "10us", "100us")
	send.EnableStats()
	ss := send.stageSetFor("myri")
	for i := 0; i < minObservedPolls-1; i++ {
		ss.Stage(obsv.StagePoll).Record(time.Millisecond)
	}
	d, err := CheapestPoll(send, sp.Table())
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "myri" {
		t.Fatalf("sparse data flipped selection to %q", d.Method)
	}
}

// TestFastestObservedSelector: falls back to table order until send-stage
// measurements exist, then ranks by observed send latency.
func TestFastestObservedSelector(t *testing.T) {
	send, sp := simPair(t, "obs-fastest", "10us", "100us")
	table := sp.Table()

	d, err := FastestObserved(send, table)
	if err != nil {
		t.Fatal(err)
	}
	first, err := FirstApplicable(send, table)
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != first.Method {
		t.Fatalf("unmeasured FastestObserved = %q, FirstApplicable = %q", d.Method, first.Method)
	}

	send.EnableStats()
	for i := 0; i < minObservedPolls; i++ {
		send.stageSetFor("myri").Stage(obsv.StageSend).Record(500 * time.Microsecond)
		send.stageSetFor("wan").Stage(obsv.StageSend).Record(50 * time.Microsecond)
	}
	d, err = FastestObserved(send, table)
	if err != nil {
		t.Fatal(err)
	}
	if d.Method != "wan" {
		t.Fatalf("measured FastestObserved = %q, want wan", d.Method)
	}
}

// TestObservedPollCostInMethods: the enquiry API surfaces measured poll cost
// once the histogram has enough samples.
func TestObservedPollCostInMethods(t *testing.T) {
	c := observeCtx(t, Options{
		Methods: []MethodConfig{{Name: "mpl", Params: transport.Params{
			"fabric": "obs-enquiry", "latency": "0s", "poll_cost": "5us"}}},
		Observe: ObserveConfig{Stats: true},
	})
	find := func() MethodInfo {
		for _, mi := range c.Methods() {
			if mi.Name == "mpl" {
				return mi
			}
		}
		t.Fatal("mpl missing from Methods()")
		return MethodInfo{}
	}
	if got := find().ObservedPollCost; got != 0 {
		t.Fatalf("ObservedPollCost before sampling = %s", got)
	}
	seedPoll(t, c, "mpl", 25*time.Microsecond)
	got := find().ObservedPollCost
	if got < 16*time.Microsecond || got > 40*time.Microsecond {
		t.Errorf("ObservedPollCost = %s, want ≈25µs", got)
	}
}

// TestPollStageRecorded: driving Poll on a stats-enabled context populates
// the poll-stage histogram for each polled method.
func TestPollStageRecorded(t *testing.T) {
	c := observeCtx(t, Options{
		Methods: []MethodConfig{{Name: "mpl", Params: transport.Params{
			"fabric": "obs-pollstage", "latency": "0s", "poll_cost": "0s"}}},
		Observe: ObserveConfig{Stats: true},
	})
	for i := 0; i < 20; i++ {
		c.Poll()
	}
	ss := c.stageSetFor("mpl")
	if n := ss.Stage(obsv.StagePoll).Count(); n < 20 {
		t.Errorf("poll-stage count = %d, want ≥20", n)
	}
}
