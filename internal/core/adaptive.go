package core

import (
	"time"
)

// AdaptiveConfig tunes StartAdaptiveSkipPoll.
type AdaptiveConfig struct {
	// Interval is how often skip_poll values are re-evaluated (default
	// 10 ms).
	Interval time.Duration
	// MaxSkip caps how far an idle method is throttled (default 1024).
	MaxSkip int
	// Grow multiplies an idle method's skip each interval (default 2).
	Grow int
	// MinCostRatio exempts cheap methods: a method is only throttled if its
	// advertised poll cost is at least this multiple of the cheapest
	// enabled method's (default 4). Cheap methods stay at skip 1, where
	// they belong.
	MinCostRatio int
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.MaxSkip < 1 {
		c.MaxSkip = 1024
	}
	if c.Grow < 2 {
		c.Grow = 2
	}
	if c.MinCostRatio < 1 {
		c.MinCostRatio = 4
	}
	return c
}

// StartAdaptiveSkipPoll launches the paper's §6 future-work refinement:
// dynamic adjustment of skip_poll values from observed traffic. Every
// interval, each expensive method that delivered frames since the last check
// snaps back to skip 1 (traffic is flowing; detection latency matters);
// methods that stayed idle are throttled geometrically up to MaxSkip (their
// polls are pure overhead). Cheap methods are left alone.
//
// Methods whose skip_poll was set manually (SetSkipPoll) are pinned and left
// alone; UnpinSkipPoll hands them back to the tuner.
//
// It returns a stop function that blocks until the tuner exits. The tuner
// only adjusts skip values; it does not poll — pair it with StartPoller or
// an application polling loop.
func (c *Context) StartAdaptiveSkipPoll(cfg AdaptiveConfig) (stop func()) {
	cfg = cfg.withDefaults()
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		lastFrames := make(map[string]uint64)
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			c.adaptOnce(cfg, lastFrames)
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// adaptOnce performs one adaptation round (exposed for deterministic tests).
func (c *Context) adaptOnce(cfg AdaptiveConfig, lastFrames map[string]uint64) {
	cfg = cfg.withDefaults()
	c.mu.RLock()
	mods := make([]*moduleState, len(c.modules))
	copy(mods, c.modules)
	c.mu.RUnlock()

	// Find the cheapest poll cost to define "expensive". pollCostEstimate
	// prefers the observed mean from the poll-stage histograms (when stats
	// are on and the method has enough samples) over the module's static
	// hint, so the tuner's notion of cheap vs. expensive tracks what polls
	// actually cost on this host.
	var minCost time.Duration
	costs := make(map[*moduleState]time.Duration, len(mods))
	for _, ms := range mods {
		if cost := c.pollCostEstimate(ms); cost > 0 {
			costs[ms] = cost
			if minCost == 0 || cost < minCost {
				minCost = cost
			}
		}
	}
	for _, ms := range mods {
		if ms.blocking {
			continue
		}
		cost, hinted := costs[ms]
		if !hinted || minCost == 0 || cost < minCost*time.Duration(cfg.MinCostRatio) {
			continue // cheap method: always polled eagerly
		}
		frames := ms.frames.Load()
		prev := lastFrames[ms.name]
		lastFrames[ms.name] = frames
		cur := int(ms.skipAtomic.Load())
		switch {
		case frames > prev:
			// Traffic observed: poll eagerly again.
			if cur != 1 {
				_ = c.applySkipPoll(ms.name, 1, false)
			}
		default:
			// Idle: back off geometrically.
			next := cur * cfg.Grow
			if next > cfg.MaxSkip {
				next = cfg.MaxSkip
			}
			if next != cur {
				_ = c.applySkipPoll(ms.name, next, false)
			}
		}
	}
}
