package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/reactor"

	_ "nexus/internal/transport/rudp"
	_ "nexus/internal/transport/udp"
)

// TestReactorActivation checks the default-on/opt-out matrix: where the
// platform has a reactor, socket-backed methods come up reactive and
// DisableReactor forces them back to polling; off-Linux everything is
// poll-based and the same options still construct fine.
func TestReactorActivation(t *testing.T) {
	ctx, err := NewContext(Options{
		Methods: []MethodConfig{{Name: "tcp"}, {Name: "udp"}, {Name: "rudp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	if ctx.ReactorActive() != reactor.Supported() {
		t.Fatalf("ReactorActive() = %v, Supported() = %v", ctx.ReactorActive(), reactor.Supported())
	}
	for _, mi := range ctx.Methods() {
		switch mi.Name {
		case "tcp", "udp", "rudp":
			if mi.Reactive != reactor.Supported() {
				t.Errorf("method %s Reactive = %v, want %v", mi.Name, mi.Reactive, reactor.Supported())
			}
		case "local":
			if mi.Reactive {
				t.Errorf("memory-backed method %s reported reactive", mi.Name)
			}
		}
	}

	off, err := NewContext(Options{
		Methods:        []MethodConfig{{Name: "tcp"}, {Name: "udp"}},
		DisableReactor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if off.ReactorActive() {
		t.Fatal("ReactorActive() with DisableReactor set")
	}
	for _, mi := range off.Methods() {
		if mi.Reactive {
			t.Errorf("method %s reactive despite DisableReactor", mi.Name)
		}
	}
}

// TestReactorIdlePassesSkipReactiveModules is the economy the reactor exists
// for: once the seed drain has run, idle poll passes must not touch a
// reactive module at all (its poll counter stays put while the pass counter
// climbs).
func TestReactorIdlePassesSkipReactiveModules(t *testing.T) {
	ctx, err := NewContext(Options{
		Methods: []MethodConfig{{Name: "udp"}, {Name: "tcp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	if !ctx.ReactorActive() {
		t.Skip("no reactor on this platform")
	}
	// Consume the post-attach seed bit, then let the hot grace window the
	// seed edge armed decay to zero.
	for i := 0; i <= reactiveHotPasses; i++ {
		ctx.Poll()
	}
	before := map[string]uint64{}
	for _, mi := range ctx.Methods() {
		before[mi.Name] = mi.Polls
	}
	const passes = 200
	for i := 0; i < passes; i++ {
		ctx.Poll()
	}
	for _, mi := range ctx.Methods() {
		switch mi.Name {
		case "udp", "tcp":
			if got := mi.Polls - before[mi.Name]; got != 0 {
				t.Errorf("reactive %s polled %d times across %d idle passes, want 0", mi.Name, got, passes)
			}
		case "local":
			if got := mi.Polls - before[mi.Name]; got != passes {
				t.Errorf("poll-based %s polled %d times across %d passes, want %d", mi.Name, got, passes, passes)
			}
		}
	}
}

// reactorRoundTrip sends count RSRs from a fresh sender to a fresh receiver
// over the named method and waits for all of them to arrive.
func reactorRoundTrip(t *testing.T, method string, disable bool, count int) {
	t.Helper()
	recv, err := NewContext(Options{
		Methods:        []MethodConfig{{Name: method}},
		DisableReactor: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := NewContext(Options{
		Methods:        []MethodConfig{{Name: method}},
		DisableReactor: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	var got atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {
		got.Add(1)
	}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	// Blocking-window methods (rudp) need the receiver polling while the
	// sender sits inside RSR — the receiver's polls produce the ACKs.
	startPolling(t, recv)
	for i := 0; i < count; i++ {
		b := buffer.New(32)
		b.PutInt(i)
		if err := sp.RSR("", b); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < int64(count) {
		if time.Now().After(deadline) {
			t.Fatalf("%s (disable=%v): delivered %d of %d", method, disable, got.Load(), count)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReactorRoundTrip exercises delivery through the readiness path (and
// the portable fallback, as a control) for every reactor-capable method.
func TestReactorRoundTrip(t *testing.T) {
	for _, method := range []string{"tcp", "udp", "rudp"} {
		for _, disable := range []bool{false, true} {
			name := fmt.Sprintf("%s/disable=%v", method, disable)
			t.Run(name, func(t *testing.T) {
				reactorRoundTrip(t, method, disable, 50)
			})
		}
	}
}

// TestReactorRuntimeEnable checks that a method enabled after construction
// still joins the reactor.
func TestReactorRuntimeEnable(t *testing.T) {
	ctx, err := NewContext(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	if !ctx.ReactorActive() {
		t.Skip("no reactor on this platform")
	}
	if err := ctx.EnableMethod(MethodConfig{Name: "udp"}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mi := range ctx.Methods() {
		if mi.Name == "udp" {
			found = true
			if !mi.Reactive {
				t.Error("runtime-enabled udp not reactive")
			}
		}
	}
	if !found {
		t.Fatal("udp not listed after EnableMethod")
	}
}

// TestReactorDisableMethod checks that disabling a reactive method tears its
// registrations down cleanly (no panic, remaining methods keep working).
func TestReactorDisableMethod(t *testing.T) {
	ctx, err := NewContext(Options{
		Methods: []MethodConfig{{Name: "udp"}, {Name: "tcp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	if err := ctx.DisableMethod("udp"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ctx.Poll()
	}
}

// TestReactiveMethodsEnquiry checks the ReactiveMethods listing.
func TestReactiveMethodsEnquiry(t *testing.T) {
	ctx, err := NewContext(Options{
		Methods: []MethodConfig{{Name: "udp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	names := ctx.ReactiveMethods()
	if ctx.ReactorActive() {
		if len(names) != 1 || names[0] != "udp" {
			t.Fatalf("ReactiveMethods() = %v, want [udp]", names)
		}
	} else if len(names) != 0 {
		t.Fatalf("ReactiveMethods() = %v on platform without reactor", names)
	}
}

// TestReactorPollCostEstimate checks that selection sees reactor-backed
// methods as nearly free, per the collapsed detection cost.
func TestReactorPollCostEstimate(t *testing.T) {
	ctx, err := NewContext(Options{
		Methods: []MethodConfig{{Name: "tcp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	ms := ctx.moduleFor("tcp")
	if ms == nil {
		t.Fatal("no tcp module")
	}
	cost := ctx.pollCostEstimate(ms)
	if ctx.ReactorActive() {
		if cost != reactivePollCost {
			t.Fatalf("reactive tcp pollCostEstimate = %v, want %v", cost, reactivePollCost)
		}
	} else if cost != 100*time.Microsecond {
		t.Fatalf("poll-based tcp pollCostEstimate = %v, want its 100µs hint", cost)
	}
}

// idlePollContext builds a context whose socket methods have nothing queued,
// so every pass measures pure detection overhead.
func idlePollContext(b *testing.B, disable bool) *Context {
	b.Helper()
	ctx, err := NewContext(Options{
		Methods:        []MethodConfig{{Name: "tcp"}, {Name: "udp"}, {Name: "rudp"}},
		DisableReactor: disable,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ctx.Close() })
	// Consume the seed bits and decay the hot grace window so the loop
	// measures the steady idle state.
	for i := 0; i <= reactiveHotPasses; i++ {
		ctx.Poll()
	}
	return ctx
}

// BenchmarkPollIdle measures one poll pass over idle socket methods —
// the cost every spin-waiting context pays continuously. With the reactor,
// the pass should collapse to the bitmap check plus the memory-backed
// methods; legacy mode pays a syscall per socket method per pass.
func BenchmarkPollIdle(b *testing.B) {
	b.Run("reactor", func(b *testing.B) {
		if !reactor.Supported() {
			b.Skip("no reactor on this platform")
		}
		ctx := idlePollContext(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Poll()
		}
	})
	b.Run("legacy", func(b *testing.B) {
		ctx := idlePollContext(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Poll()
		}
	})
}

// BenchmarkPollIdleSocketOnly isolates the per-socket-method cost: local is
// present (always enabled) but inproc-style memory methods are not, so the
// delta between modes is the socket detection cost alone.
func BenchmarkPollIdleSocketOnly(b *testing.B) {
	for _, n := range []int{1, 3} {
		for _, mode := range []string{"reactor", "legacy"} {
			b.Run(fmt.Sprintf("%s/methods=%d", mode, n), func(b *testing.B) {
				if mode == "reactor" && !reactor.Supported() {
					b.Skip("no reactor on this platform")
				}
				all := []MethodConfig{{Name: "udp"}, {Name: "tcp"}, {Name: "rudp"}}
				ctx, err := NewContext(Options{
					Methods:        all[:n],
					DisableReactor: mode == "legacy",
				})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { ctx.Close() })
				for i := 0; i <= reactiveHotPasses; i++ {
					ctx.Poll()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx.Poll()
				}
			})
		}
	}
}

// BenchmarkBulkBandwidthModes is BenchmarkBulkBandwidth with the reactor
// toggled explicitly, for isolating readiness-path effects on goodput.
func BenchmarkBulkBandwidthModes(b *testing.B) {
	payload := bulkPayload(1 << 20)
	for _, method := range []string{"tcp", "rudp"} {
		for _, mode := range []string{"reactor", "legacy"} {
			b.Run(method+"/"+mode, func(b *testing.B) {
				opts := Options{Methods: []MethodConfig{{Name: method}}, DisableReactor: mode == "legacy"}
				recv, err := NewContext(opts)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { recv.Close() })
				send, err := NewContext(opts)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { send.Close() })
				sink := &bulkSink{want: payload}
				ep := recv.NewEndpoint(WithHandler(sink.handler))
				sp := transferStartpoint(b, ep.NewStartpoint(), send, false)
				startPolling(b, recv)
				b.SetBytes(1 << 20)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf := buffer.New(len(payload) + 8)
					buf.PutBytes(payload)
					if err := sp.RSR("", buf); err != nil {
						b.Fatal(err)
					}
					want := int64(i + 1)
					if !recv.PollUntil(func() bool { return sink.good.Load() >= want }, 30*time.Second) {
						b.Fatalf("delivery %d timed out", want)
					}
				}
			})
		}
	}
}
