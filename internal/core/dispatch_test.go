package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/transport"
	"nexus/internal/wire"
)

// encodeRSR hand-builds a wire frame addressed to (ctx, ep) carrying one
// int64, exactly as Startpoint.send would, so tests can drive Context.dispatch
// directly with a deterministic arrival order.
func encodeRSR(t testing.TB, ctx transport.ContextID, ep uint64, handler string, v int64) []byte {
	t.Helper()
	b := buffer.New(16)
	b.PutInt64(v)
	off := wire.HeaderLen(len(handler))
	enc := make([]byte, off+b.EncodedLen())
	wire.EncodeHeader(enc, wire.TypeRSR, uint64(ctx), ep, uint64(ctx), handler, b.EncodedLen())
	b.EncodeTo(enc[off:])
	return enc
}

// TestPerEndpointFIFO proves the dispatch engine's ordering contract: frames
// to one endpoint are delivered in arrival order even though distinct
// endpoints execute on parallel lanes — including endpoints that share a lane
// (3 lanes, 8 endpoints).
func TestPerEndpointFIFO(t *testing.T) {
	const (
		numEP     = 8
		perEP     = 500
		drivers   = 4 // goroutines feeding dispatch; each owns numEP/drivers endpoints
		epsPerDrv = numEP / drivers
	)
	c, err := NewContext(Options{Threaded: true, Dispatch: DispatchConfig{Lanes: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var done atomic.Int64
	seqs := make([][]int64, numEP)
	var mu sync.Mutex
	eps := make([]*Endpoint, numEP)
	for i := 0; i < numEP; i++ {
		i := i
		eps[i] = c.NewEndpoint(WithHandler(func(_ *Endpoint, b *buffer.Buffer) {
			v := b.Int64()
			mu.Lock()
			seqs[i] = append(seqs[i], v)
			mu.Unlock()
			done.Add(1)
		}))
	}
	frames := make([][][]byte, numEP)
	for i, ep := range eps {
		frames[i] = make([][]byte, perEP)
		for s := 0; s < perEP; s++ {
			frames[i][s] = encodeRSR(t, c.ID(), ep.ID(), "", int64(s))
		}
	}

	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each driver interleaves its endpoints per sequence step, so
			// every lane sees frames from multiple endpoints mixed together.
			for s := 0; s < perEP; s++ {
				for e := d * epsPerDrv; e < (d+1)*epsPerDrv; e++ {
					c.dispatch(nil, frames[e][s])
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for done.Load() != numEP*perEP && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if done.Load() != numEP*perEP {
		t.Fatalf("delivered %d frames, want %d", done.Load(), numEP*perEP)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, got := range seqs {
		if len(got) != perEP {
			t.Fatalf("endpoint %d: %d deliveries, want %d", i, len(got), perEP)
		}
		for s, v := range got {
			if v != int64(s) {
				t.Fatalf("endpoint %d: delivery %d carried seq %d: per-endpoint FIFO violated", i, s, v)
			}
		}
	}
}

// TestUnregisterHandlerDrains pins the UnregisterHandler guarantee: once it
// returns, the removed handler is not running and will never run again, even
// with frames already sitting in dispatch lane queues and deliveries racing
// in from other goroutines.
func TestUnregisterHandlerDrains(t *testing.T) {
	for _, threaded := range []bool{false, true} {
		threaded := threaded
		t.Run(fmt.Sprintf("threaded=%v", threaded), func(t *testing.T) {
			c, err := NewContext(Options{
				Threaded: threaded,
				Dispatch: DispatchConfig{Lanes: 4, QueueDepth: 64},
				ErrorLog: func(error) {}, // unknown-handler drops after removal are expected
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ep := c.NewEndpoint()
			frame := encodeRSR(t, c.ID(), ep.ID(), "hot", 1)

			var running, hits atomic.Int64
			var removed atomic.Bool
			var violation atomic.Bool
			c.RegisterHandler("hot", func(*Endpoint, *buffer.Buffer) {
				running.Add(1)
				if removed.Load() {
					violation.Store(true)
				}
				hits.Add(1)
				running.Add(-1)
			})

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
							c.dispatch(nil, frame)
						}
					}
				}()
			}
			// Let the flood build up queued frames, then pull the handler.
			for hits.Load() < 100 {
				time.Sleep(time.Millisecond)
			}
			c.UnregisterHandler("hot")
			if n := running.Load(); n != 0 {
				t.Errorf("handler still running after UnregisterHandler returned (%d instances)", n)
			}
			removed.Store(true)
			after := hits.Load()
			time.Sleep(20 * time.Millisecond) // flood continues; frames must drop
			if hits.Load() != after {
				t.Errorf("handler invoked %d more times after UnregisterHandler returned",
					hits.Load()-after)
			}
			if violation.Load() {
				t.Error("handler observed post-unregister state: stale delivery")
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestConcurrentRegistration hammers handler registration, endpoint
// creation/close, and skip_poll tuning concurrently with an inbound RSR flood
// over a real transport. Run under -race; assertions are the per-generation
// stale-handler check plus "nothing deadlocks or panics".
func TestConcurrentRegistration(t *testing.T) {
	cases := []struct {
		name    string
		methods func(tag string) []MethodConfig
	}{
		{"inproc", func(tag string) []MethodConfig {
			return []MethodConfig{{Name: "inproc", Params: transport.Params{"exchange": tag}}}
		}},
		{"simnet", func(tag string) []MethodConfig {
			return []MethodConfig{{Name: "mpl", Params: transport.Params{
				"fabric": tag, "poll_cost": "1us", "latency": "0", "bandwidth": "0"}}}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tag := "conc-reg-" + tc.name
			recv, err := NewContext(Options{
				Partition: "p0",
				Methods:   tc.methods(tag),
				Threaded:  true,
				Dispatch:  DispatchConfig{Lanes: 4, QueueDepth: 64},
				ErrorLog:  func(error) {}, // churn makes unknown drops routine
			})
			if err != nil {
				t.Fatal(err)
			}
			defer recv.Close()
			send, err := NewContext(Options{Partition: "p0", Methods: tc.methods(tag)})
			if err != nil {
				t.Fatal(err)
			}
			defer send.Close()

			ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
			sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
			stopPoll := recv.StartPoller(0)
			defer stopPoll()

			var liveGen atomic.Int64
			var violation atomic.Int64
			liveGen.Store(-1)
			stop := make(chan struct{})
			var wg sync.WaitGroup

			// Handler churn with the per-generation staleness check: handler
			// generation i may only ever observe liveGen == i.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := int64(0); i < 300; i++ {
					i := i
					liveGen.Store(i)
					recv.RegisterHandler("hot", func(*Endpoint, *buffer.Buffer) {
						if liveGen.Load() != i {
							violation.Add(1)
						}
					})
					recv.UnregisterHandler("hot")
					liveGen.Store(-1)
				}
				close(stop)
			}()
			// Endpoint churn.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						e := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
						e.Close()
					}
				}
			}()
			// RSR flood from two senders sharing one startpoint (exercises
			// the lock-free send snapshot too).
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					b := buffer.New(16)
					b.PutInt64(7)
					for {
						select {
						case <-stop:
							return
						default:
							if err := sp.RSR("hot", b); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			if n := violation.Load(); n != 0 {
				t.Errorf("%d deliveries reached a stale handler generation", n)
			}
		})
	}
}

// TestDispatchInlinePolicy exercises the DispatchInline overflow policy: with
// a single blocked lane of depth 1, the third frame runs inline on the
// dispatching goroutine — overtaking the queued second frame — and the
// overflow counters record it.
func TestDispatchInlinePolicy(t *testing.T) {
	c, err := NewContext(Options{
		Threaded: true,
		Dispatch: DispatchConfig{Lanes: 1, QueueDepth: 1, OnFull: DispatchInline},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	entered := make(chan int64, 8)
	release := make(chan struct{})
	var order []int64
	var mu sync.Mutex
	ep := c.NewEndpoint(WithHandler(func(_ *Endpoint, b *buffer.Buffer) {
		v := b.Int64()
		entered <- v
		if v == 1 {
			<-release
		}
		mu.Lock()
		order = append(order, v)
		mu.Unlock()
	}))
	f := func(v int64) []byte { return encodeRSR(t, c.ID(), ep.ID(), "", v) }

	c.dispatch(nil, f(1)) // lane worker takes it and blocks
	if got := <-entered; got != 1 {
		t.Fatalf("first handler saw %d", got)
	}
	c.dispatch(nil, f(2)) // fills the depth-1 queue
	c.dispatch(nil, f(3)) // queue full: runs inline, right here, before 2
	mu.Lock()
	gotInline := len(order) == 1 && order[0] == 3
	mu.Unlock()
	if !gotInline {
		t.Fatalf("frame 3 did not run inline; order so far = %v", order)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[1] != 1 || order[2] != 2 {
		t.Errorf("delivery order = %v, want [3 1 2]", order)
	}
	if got := c.stats.Counter("dispatch.queue_full").Load(); got != 1 {
		t.Errorf("dispatch.queue_full = %d, want 1", got)
	}
	if got := c.stats.Counter("dispatch.inline").Load(); got != 1 {
		t.Errorf("dispatch.inline = %d, want 1", got)
	}
}

// TestThreadedRSRAllocs pins the steady-state allocation count of a threaded
// (lane-dispatched) local RSR: pooled encode scratch, pooled queue hand-off,
// stack decode on the lane worker — the only per-RSR allocation left is the
// *Buffer wrapper handed to the handler. Budget 3 leaves room for sizing
// variance in the pools.
func TestThreadedRSRAllocs(t *testing.T) {
	c, err := NewContext(Options{Threaded: true, Dispatch: DispatchConfig{Lanes: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{}, 1)
	ep := c.NewEndpoint(WithHandler(func(_ *Endpoint, b *buffer.Buffer) {
		_ = b.Int64()
		done <- struct{}{}
	}))
	sp := ep.NewStartpoint()
	b := buffer.New(16)
	b.PutInt64(7)
	for i := 0; i < 10; i++ { // warm up selection, pools, and the lane
		if err := sp.RSR("", b); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	n := testing.AllocsPerRun(100, func() {
		if err := sp.RSR("", b); err != nil {
			t.Fatal(err)
		}
		<-done
	})
	if n > 3 {
		t.Errorf("threaded RSR allocates %.1f per op, budget is 3", n)
	}
}
