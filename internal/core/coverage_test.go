package core

import (
	"strings"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/transport"
)

func TestNewContextUnknownMethod(t *testing.T) {
	if _, err := NewContext(Options{Methods: []MethodConfig{{Name: "warp-drive"}}}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestNewContextDuplicateMethod(t *testing.T) {
	_, err := NewContext(Options{Methods: []MethodConfig{
		{Name: "tcp"}, {Name: "tcp"},
	}})
	if err == nil {
		t.Fatal("duplicate method accepted")
	}
}

func TestNewContextBlockingOnNonBlocker(t *testing.T) {
	_, err := NewContext(Options{Methods: []MethodConfig{
		{Name: "inproc", Blocking: true, Params: transport.Params{"exchange": "cov-blk"}},
	}})
	if err == nil || !strings.Contains(err.Error(), "blocking") {
		t.Fatalf("Blocking on non-Blocker: %v", err)
	}
}

func TestPollUntilTimesOut(t *testing.T) {
	c := newCtx(t, "cov-timeout", "", inprocCfg())
	start := time.Now()
	if c.PollUntil(func() bool { return false }, 30*time.Millisecond) {
		t.Fatal("PollUntil reported success")
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("PollUntil returned early")
	}
}

func TestContextAccessors(t *testing.T) {
	c, err := NewContext(Options{Partition: "px", Process: "procX"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Partition() != "px" || c.Process() != "procX" || c.ID() == 0 {
		t.Errorf("accessors: partition=%q process=%q id=%d", c.Partition(), c.Process(), c.ID())
	}
}

func TestStringers(t *testing.T) {
	c := newCtx(t, "cov-str", "", inprocCfg())
	ep := c.NewEndpoint()
	if s := ep.String(); !strings.Contains(s, "endpoint") {
		t.Errorf("Endpoint.String = %q", s)
	}
	sp := ep.NewStartpoint()
	if s := sp.String(); !strings.Contains(s, "startpoint") {
		t.Errorf("Startpoint.String = %q", s)
	}
	sp2 := ep.NewStartpoint()
	sp2.Merge(c.NewEndpoint().NewStartpoint())
	if s := sp2.String(); !strings.Contains(s, "2 links") {
		t.Errorf("multicast String = %q", s)
	}
}

func TestTableForAndTablePanics(t *testing.T) {
	c := newCtx(t, "cov-tablefor", "", inprocCfg())
	ep := c.NewEndpoint()
	sp := ep.NewStartpoint()
	if tab := sp.TableFor(c.ID()); tab == nil {
		t.Error("TableFor(own context) = nil")
	}
	if tab := sp.TableFor(99999); tab != nil {
		t.Error("TableFor(unknown) != nil")
	}
	sp.Merge(c.NewEndpoint().NewStartpoint())
	defer func() {
		if recover() == nil {
			t.Error("Table() on multicast startpoint did not panic")
		}
	}()
	_ = sp.Table()
}

func TestEndpointDataMutable(t *testing.T) {
	c := newCtx(t, "cov-data", "", inprocCfg())
	ep := c.NewEndpoint(WithData(1))
	if ep.Data() != 1 {
		t.Error("initial data lost")
	}
	ep.SetData("two")
	if ep.Data() != "two" {
		t.Error("SetData failed")
	}
	if ep.Context() != c {
		t.Error("Context() mismatch")
	}
}

func TestUnregisterHandler(t *testing.T) {
	c := newCtx(t, "cov-unreg", "", inprocCfg())
	ran := false
	c.RegisterHandler("h", func(*Endpoint, *buffer.Buffer) { ran = true })
	c.UnregisterHandler("h")
	ep := c.NewEndpoint()
	sp := ep.NewStartpoint()
	if err := sp.RSR("h", nil); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("unregistered handler ran")
	}
	if c.Stats().Get("errors.dropped") == 0 {
		t.Error("dropped delivery not counted")
	}
}

func TestRSRWithoutTargets(t *testing.T) {
	c := newCtx(t, "cov-notargets", "", inprocCfg())
	sp := &Startpoint{owner: c}
	if err := sp.RSR("", nil); err == nil {
		t.Error("RSR on unbound startpoint succeeded")
	}
	if _, err := sp.SelectMethod(); err == nil {
		t.Error("SelectMethod on unbound startpoint succeeded")
	}
	if sp.Method() != "" {
		t.Error("Method on unbound startpoint nonempty")
	}
}

func TestStartPollerDelivers(t *testing.T) {
	tag := "cov-poller"
	recv := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())
	hit := make(chan struct{}, 1)
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {
		select {
		case hit <- struct{}{}:
		default:
		}
	}))
	stop := recv.StartPoller(time.Millisecond)
	defer stop()
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-hit:
	case <-time.After(5 * time.Second):
		t.Fatal("background poller never delivered")
	}
}

func TestPeerTableAccessors(t *testing.T) {
	tag := "cov-peer"
	a := newCtx(t, tag, "", inprocCfg())
	b := newCtx(t, tag, "", inprocCfg())
	if a.PeerTable(b.ID()) != nil {
		t.Error("unregistered peer table non-nil")
	}
	a.RegisterPeerTable(b.AdvertisedTable())
	tab := a.PeerTable(b.ID())
	if tab == nil || tab.Len() == 0 {
		t.Fatal("registered peer table missing")
	}
	// The returned table is a copy.
	tab.Remove("inproc")
	if got := a.PeerTable(b.ID()); got == nil || got.Len() != b.AdvertisedTable().Len() {
		t.Error("PeerTable returned aliased storage")
	}
	// Registering an empty table is a no-op, not a panic.
	a.RegisterPeerTable(transport.NewTable())
}
