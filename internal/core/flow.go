package core

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"nexus/internal/bufpool"
	"nexus/internal/flow"
	"nexus/internal/metrics"
	"nexus/internal/obsv"
	"nexus/internal/transport"
	"nexus/internal/wire"
)

// This file wires the credit-based flow control of internal/flow into the
// context: every non-control RSR a startpoint sends debits a per-(peer,
// method) window the receiver advertised, and a sender that runs out either
// blocks briefly (ClassNormal) or sheds (ClassBulk) instead of burying a slow
// receiver. Credit moves in three vehicles: grants piggybacked on normal
// reverse traffic (wire.FlagCredit on an ordinary frame), standalone grant
// frames for one-way links, and probe frames a starved sender emits so a
// receiver whose grants were lost can reconcile and re-grant. Control-class
// traffic — health probes, the credit frames themselves — is exempt in both
// directions: it must survive exactly the overload flow control creates for
// everything else.

// ErrNoCredit reports a send refused (or timed out waiting) for link credit:
// the receiver's advertised window for this link is exhausted. ClassBulk
// sends fail immediately; ClassNormal sends fail after FlowConfig.BlockTimeout.
var ErrNoCredit = errors.New("core: link credit exhausted")

// Class re-exports the wire traffic classes so callers tag startpoints
// without importing internal/wire.
type Class = wire.Class

// Traffic classes, in shedding order. Under overload ClassBulk is dropped
// first (send side and receive side), ClassNormal blocks for credit, and
// ClassControl bypasses credit and admission entirely.
const (
	ClassNormal  = wire.ClassNormal
	ClassControl = wire.ClassControl
	ClassBulk    = wire.ClassBulk
)

// FlowConfig tunes credit-based flow control. The zero value leaves it off;
// zero fields otherwise select defaults.
type FlowConfig struct {
	// Enabled turns credit accounting on for every non-control link of the
	// context (both sending and granting sides).
	Enabled bool
	// WindowBytes is the per-(peer, method) byte window this context
	// advertises to senders (default 1 MiB). A peer can have at most this
	// many bytes (plus one in-flight message) outstanding toward us.
	WindowBytes int
	// WindowFrames is the matching frame-count window (default 512).
	WindowFrames int
	// BlockTimeout bounds how long a ClassNormal send waits for credit before
	// failing with ErrNoCredit (default 200ms; negative disables waiting).
	// ClassBulk never waits.
	BlockTimeout time.Duration
	// ProbeInterval rate-limits credit probes from a starved sender
	// (default 20ms per link).
	ProbeInterval time.Duration
}

func (fc FlowConfig) withDefaults() FlowConfig {
	if fc.WindowBytes <= 0 {
		fc.WindowBytes = 1 << 20
	}
	if fc.WindowFrames <= 0 {
		fc.WindowFrames = 512
	}
	if fc.BlockTimeout == 0 {
		fc.BlockTimeout = 200 * time.Millisecond
	}
	if fc.ProbeInterval <= 0 {
		fc.ProbeInterval = 20 * time.Millisecond
	}
	return fc
}

// Credit frames (wire.TypeControl + wire.FlagCredit) discriminate grant from
// probe by destination endpoint; the Handler field carries the method name
// the credit applies to.
const (
	creditEPGrant = 0
	creditEPProbe = 1
)

// flowState is the context's credit machinery: the sender-side bank, the
// receiver-side grantor, and cached reverse routes for standalone grants.
type flowState struct {
	cfg     FlowConfig
	bank    *flow.Bank
	grantor *flow.Grantor

	mu     sync.Mutex
	routes map[flow.Key]*sharedConn // grant routes, refs retained until Close

	cGrantsSent      *metrics.Counter // flow.grants.sent (standalone + piggybacked)
	cGrantsRecv      *metrics.Counter // flow.grants.recv
	cProbesSent      *metrics.Counter // flow.probes.sent
	cProbesRecv      *metrics.Counter // flow.probes.recv
	cGrantUnroutable *metrics.Counter // flow.grants.unroutable: no reverse route
}

func newFlowState(cfg FlowConfig, stats *metrics.Set) *flowState {
	cfg = cfg.withDefaults()
	win := flow.Window{Bytes: uint64(cfg.WindowBytes), Frames: uint64(cfg.WindowFrames)}
	return &flowState{
		cfg:              cfg,
		bank:             flow.NewBank(win),
		grantor:          flow.NewGrantor(win),
		routes:           make(map[flow.Key]*sharedConn),
		cGrantsSent:      stats.Counter("flow.grants.sent"),
		cGrantsRecv:      stats.Counter("flow.grants.recv"),
		cProbesSent:      stats.Counter("flow.probes.sent"),
		cProbesRecv:      stats.Counter("flow.probes.recv"),
		cGrantUnroutable: stats.Counter("flow.grants.unroutable"),
	}
}

// shedCounter maps a traffic class to its rsr.shed.* counter.
func (c *Context) shedCounter(cls wire.Class) *metrics.Counter {
	switch cls {
	case wire.ClassControl:
		return c.cShedControl
	case wire.ClassBulk:
		return c.cShedBulk
	}
	return c.cShedNormal
}

// flowAcquire charges one outbound message (bytes across frames wire frames)
// against the link's credit. On exhaustion it probes the receiver (rate
// limited), then either gives up (ClassBulk, or waiting disabled) or polls
// for a refill until BlockTimeout. The poll inside the wait loop matters: a
// single-threaded sender in a request/reply loop is often the only goroutine
// that can detect the very grant it is waiting for.
func (c *Context) flowAcquire(peer uint64, method string, conn transport.Conn, cls wire.Class, bytes, frames uint64) bool {
	fl := c.flow
	if fl.bank.TryAcquire(peer, method, bytes, frames) {
		return true
	}
	if fl.bank.ShouldProbe(peer, method, time.Now(), fl.cfg.ProbeInterval) {
		c.sendCreditProbe(peer, method, conn)
	}
	if cls == wire.ClassBulk || fl.cfg.BlockTimeout <= 0 {
		return false
	}
	deadline := time.Now().Add(fl.cfg.BlockTimeout)
	for {
		c.tryPoll()
		if fl.bank.TryAcquire(peer, method, bytes, frames) {
			return true
		}
		now := time.Now()
		if now.After(deadline) {
			return false
		}
		if fl.bank.ShouldProbe(peer, method, now, fl.cfg.ProbeInterval) {
			c.sendCreditProbe(peer, method, conn)
		}
		runtime.Gosched()
	}
}

// sendCreditFrame emits one standalone credit frame (grant or probe, by
// endpoint) on the given connection. The frame is control class: it bypasses
// credit accounting and admission control on both sides.
func (c *Context) sendCreditFrame(conn transport.Conn, peer uint64, method string, ep uint64, bytes, frames uint64) error {
	flags := wire.FlagCredit | wire.ClassFlags(wire.ClassControl)
	off := wire.HeaderLenExt(len(method), flags)
	buf := bufpool.Get(off)
	defer bufpool.Put(buf)
	wire.EncodeHeaderExt(buf, wire.TypeControl, flags, peer, ep, uint64(c.id),
		wire.Ext{CreditBytes: bytes, CreditFrames: frames}, method, 0)
	return conn.Send(buf[:off])
}

// sendCreditProbe tells the receiver our cumulative sent totals on the link,
// over the link's own connection. The receiver reconciles (healing credit
// leaked by dropped frames) and answers with a grant.
func (c *Context) sendCreditProbe(peer uint64, method string, conn transport.Conn) {
	fl := c.flow
	sb, sf := fl.bank.Sent(peer, method)
	if err := c.sendCreditFrame(conn, peer, method, creditEPProbe, sb, sf); err == nil {
		fl.cProbesSent.Inc()
	}
}

// sendCreditGrant advertises the link's refreshed window to the peer with a
// standalone grant frame. It needs a reverse route: the peer's registered
// descriptor table, preferring the same method the credited traffic arrives
// on. Routes are resolved once and cached; an unroutable grant is counted
// and dropped — the sender's probe retries will find us again once a table
// is registered.
func (c *Context) sendCreditGrant(peer uint64, method string) {
	fl := c.flow
	bytes, frames := fl.grantor.Grant(peer, method)
	k := flow.Key{Peer: peer, Method: method}
	sc := c.creditRoute(k)
	if sc == nil {
		fl.cGrantUnroutable.Inc()
		return
	}
	if err := c.sendCreditFrame(sc.conn, peer, method, creditEPGrant, bytes, frames); err != nil {
		c.dropCreditRoute(k, sc)
		return
	}
	fl.cGrantsSent.Inc()
}

// creditRoute resolves (and caches) the connection grants to a peer travel
// on. The cached sharedConn keeps a reference until the route is dropped or
// the context closes.
func (c *Context) creditRoute(k flow.Key) *sharedConn {
	fl := c.flow
	fl.mu.Lock()
	sc := fl.routes[k]
	fl.mu.Unlock()
	if sc != nil {
		return sc
	}
	table := c.PeerTable(transport.ContextID(k.Peer))
	if table == nil {
		return nil
	}
	desc, ok := table.Find(k.Method)
	if !ok {
		// The peer does not advertise the method its traffic reached us on
		// (asymmetric setup); any applicable method carries the grant — the
		// frame itself names the credited method.
		d, err := c.healthSel(c, table)
		if err != nil {
			return nil
		}
		desc = d
	}
	nsc, err := c.acquireConn(desc, obsv.TraceID{})
	if err != nil {
		return nil
	}
	fl.mu.Lock()
	if cur := fl.routes[k]; cur != nil {
		fl.mu.Unlock()
		c.releaseConn(nsc)
		return cur
	}
	fl.routes[k] = nsc
	fl.mu.Unlock()
	return nsc
}

// dropCreditRoute uncaches a grant route after a send failure so the next
// grant redials instead of inheriting the poisoned connection.
func (c *Context) dropCreditRoute(k flow.Key, sc *sharedConn) {
	fl := c.flow
	fl.mu.Lock()
	if fl.routes[k] == sc {
		delete(fl.routes, k)
	}
	fl.mu.Unlock()
	c.invalidateConn(sc)
	c.releaseConn(sc)
}

// handleCreditFrame consumes an inbound standalone credit frame. Runs on the
// delivering goroutine, before RSR accounting — credit frames are protocol
// traffic, not RSRs.
func (c *Context) handleCreditFrame(f *wire.Frame) {
	fl := c.flow
	if fl == nil {
		return
	}
	switch f.DestEndpoint {
	case creditEPProbe:
		fl.cProbesRecv.Inc()
		fl.grantor.Sync(f.SrcContext, f.Handler, f.CreditBytes, f.CreditFrames)
		c.sendCreditGrant(f.SrcContext, f.Handler)
	case creditEPGrant:
		fl.cGrantsRecv.Inc()
		fl.bank.Refill(f.SrcContext, f.Handler, f.CreditBytes, f.CreditFrames)
	}
}

// flowConsume records one delivered frame against the granting ledger and
// sends a refreshed grant when half the window has been consumed. Called on
// every non-control arrival from a remote module, including frames later
// shed at dispatch admission: the sender debited them, so they must be
// accounted or the window leaks.
func (c *Context) flowConsume(ms *moduleState, f *wire.Frame, n int) {
	if c.flow == nil || ms == nil || ms.name == "local" || f.Class() == wire.ClassControl {
		return
	}
	if c.flow.grantor.Consume(f.SrcContext, ms.name, uint64(n), 1) {
		c.sendCreditGrant(f.SrcContext, ms.name)
	}
}
