package core

import (
	"errors"
	"testing"
	"time"

	"nexus/internal/metrics"
	"nexus/internal/transport"
)

// fastHealth is a deterministic registry config for tests: low thresholds,
// short backoffs, no jitter.
func fastHealth() HealthConfig {
	return HealthConfig{
		FailureThreshold:     2,
		BackoffBase:          20 * time.Millisecond,
		BackoffMax:           100 * time.Millisecond,
		BackoffJitter:        -1, // disabled
		ProbeTimeout:         200 * time.Millisecond,
		PollFailureThreshold: 3,
	}
}

func TestHealthConfigDefaults(t *testing.T) {
	c := HealthConfig{}.withDefaults()
	if c.FailureThreshold != 2 || c.BackoffBase != 100*time.Millisecond ||
		c.BackoffMax != 5*time.Second || c.BackoffJitter != 0.2 ||
		c.ProbeTimeout != 2*time.Second || c.PollFailureThreshold != 8 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if j := (HealthConfig{BackoffJitter: -1}).withDefaults().BackoffJitter; j != 0 {
		t.Fatalf("negative jitter should disable, got %v", j)
	}
}

func TestHealthCircuitLifecycle(t *testing.T) {
	stats := metrics.NewSet()
	h := newHealthRegistry(fastHealth(), stats)
	peer := transport.ContextID(7)
	boom := errors.New("boom")

	// One failure: still closed, still allowed.
	h.reportFailure("tcp", peer, boom)
	if !h.allowed("tcp", peer) {
		t.Fatal("single failure must not trip the circuit")
	}
	gen0 := h.Gen()

	// Second failure: trips to open, generation moves, selection is denied.
	h.reportFailure("tcp", peer, boom)
	if h.allowed("tcp", peer) {
		t.Fatal("circuit must be open after threshold failures")
	}
	if h.Gen() == gen0 {
		t.Fatal("trip must bump the generation")
	}
	if stats.Get("failover.trips") != 1 || stats.Get("health.open") != 1 {
		t.Fatalf("trip counters: trips=%d open=%d", stats.Get("failover.trips"), stats.Get("health.open"))
	}
	snap := h.snapshot()
	if len(snap) != 1 || snap[0].State != CircuitOpen || snap[0].Trips != 1 || snap[0].LastError == "" {
		t.Fatalf("snapshot after trip: %+v", snap)
	}

	// After the backoff expires, exactly one caller gets a half-open probe.
	time.Sleep(25 * time.Millisecond)
	if !h.probeDue() {
		t.Fatal("probe must be due after backoff")
	}
	if !h.allowed("tcp", peer) {
		t.Fatal("expired open circuit must grant a probe")
	}
	if h.allowed("tcp", peer) {
		t.Fatal("second caller must not get a probe while one is in flight")
	}
	if stats.Get("health.halfopen.probes") != 1 {
		t.Fatalf("probes = %d", stats.Get("health.halfopen.probes"))
	}

	// Failed probe: back to open with doubled backoff.
	h.reportFailure("tcp", peer, boom)
	snap = h.snapshot()
	if snap[0].State != CircuitOpen || snap[0].Backoff != 40*time.Millisecond {
		t.Fatalf("after failed probe: %+v", snap[0])
	}
	if h.allowed("tcp", peer) {
		t.Fatal("circuit must deny during the doubled backoff")
	}

	// Successful probe heals: closed, generation moves, error cleared.
	time.Sleep(45 * time.Millisecond)
	if !h.allowed("tcp", peer) {
		t.Fatal("expired circuit must grant a second probe")
	}
	gen1 := h.Gen()
	h.reportSuccess("tcp", peer)
	if h.Gen() == gen1 {
		t.Fatal("heal must bump the generation")
	}
	snap = h.snapshot()
	if snap[0].State != CircuitClosed || snap[0].LastError != "" || snap[0].ConsecutiveFailures != 0 {
		t.Fatalf("after heal: %+v", snap[0])
	}
	if h.probeDue() {
		t.Fatal("no probe pending after heal")
	}
}

func TestHealthBackoffCap(t *testing.T) {
	h := newHealthRegistry(fastHealth(), metrics.NewSet())
	peer := transport.ContextID(1)
	h.tripNow("tcp", peer, errors.New("down"))
	for i := 0; i < 6; i++ {
		// Force the probe grant without sleeping by rewinding the schedule.
		h.mu.Lock()
		e := h.entries[healthKey{"tcp", peer}]
		e.state = CircuitHalfOpen
		h.mu.Unlock()
		h.reportFailure("tcp", peer, errors.New("still down"))
	}
	if b := h.snapshot()[0].Backoff; b != 100*time.Millisecond {
		t.Fatalf("backoff = %v, want capped at 100ms", b)
	}
}

func TestHealthFilterTable(t *testing.T) {
	h := newHealthRegistry(fastHealth(), metrics.NewSet())
	table := transport.NewTable(
		transport.Descriptor{Method: "mpl", Context: 3},
		transport.Descriptor{Method: "tcp", Context: 3},
	)
	if got := h.filterTable(table); got != table {
		t.Fatal("empty registry must return the table untouched")
	}
	h.tripNow("mpl", 3, errors.New("down"))
	got := h.filterTable(table)
	if got.Len() != 1 || got.Entries[0].Method != "tcp" {
		t.Fatalf("filtered table = %v", got)
	}
	// The circuit only covers peer 3; the same method toward another peer
	// stays selectable.
	other := transport.NewTable(transport.Descriptor{Method: "mpl", Context: 4})
	if got := h.filterTable(other); got.Len() != 1 {
		t.Fatal("circuit must be scoped per peer context")
	}
}

func TestHealthAwareFallsBackWhenAllOpen(t *testing.T) {
	c := newCtx(t, "health-fallback", "", inprocCfg())
	peer := newCtx(t, "health-fallback", "", inprocCfg())
	table := peer.AdvertisedTable()
	c.health.tripNow("inproc", peer.ID(), errors.New("down"))
	// Wait out the backoff so the fallback path (not a probe grant) is not
	// what we exercise: trip again to push retryAt forward, then select.
	desc, err := c.healthSel(c, table)
	if err != nil {
		t.Fatalf("HealthAware must fall back to the full table: %v", err)
	}
	if desc.Method != "inproc" {
		t.Fatalf("selected %q", desc.Method)
	}
}

// TestPollErrorsDisableModule drives the poll-supervision satellite: a module
// whose Poll always fails leaves the rotation after PollFailureThreshold
// consecutive errors, its receive circuit shows in the snapshot, and the
// poll.errors counter reflects every failure.
func TestPollErrorsDisableModule(t *testing.T) {
	tag := "poll-disable"
	reg := transport.NewRegistry()
	for _, name := range []string{"local", "inproc"} {
		name := name
		reg.Register(name, func(p transport.Params) transport.Module {
			m, err := transport.Default.New(name, p)
			if err != nil {
				panic(err)
			}
			return m
		})
	}
	pollFails := make(chan error, 64)
	reg.Register("badpoll", func(p transport.Params) transport.Module {
		inner, err := transport.Default.New("inproc", transport.Params{"exchange": tag + "-bad"})
		if err != nil {
			panic(err)
		}
		return &badPollModule{Module: inner, errs: pollFails}
	})
	c, err := NewContext(Options{
		Registry: reg,
		Methods: []MethodConfig{
			{Name: "badpoll"},
			{Name: "inproc", Params: transport.Params{"exchange": tag}},
		},
		Health: fastHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	for i := 0; i < 8; i++ {
		pollFails <- errors.New("socket gone")
	}
	threshold := c.health.cfg.PollFailureThreshold
	for i := 0; i < threshold; i++ {
		c.Poll()
	}
	if got := c.Stats().Get("poll.errors.badpoll"); got != uint64(threshold) {
		t.Fatalf("poll.errors.badpoll = %d, want %d", got, threshold)
	}
	if c.Stats().Get("poll.disabled") != 1 {
		t.Fatal("module was not disabled")
	}
	var rcv *HealthInfo
	for _, hi := range c.HealthSnapshot() {
		if hi.Method == "badpoll" && hi.Peer == receivePeer {
			rcv = &hi
			break
		}
	}
	if rcv == nil || rcv.State != CircuitOpen {
		t.Fatalf("receive-path circuit not open: %+v", rcv)
	}
	// While disabled, passes do not poll the module (errors stop growing).
	errsBefore := c.Stats().Get("poll.errors.badpoll")
	c.Poll()
	c.Poll()
	if got := c.Stats().Get("poll.errors.badpoll"); got != errsBefore {
		t.Fatalf("disabled module still polled: %d -> %d", errsBefore, got)
	}
	// After the backoff, the next pass probes; with the error stream dry the
	// probe succeeds and the module rejoins the rotation.
	time.Sleep(25 * time.Millisecond)
	if !c.PollUntil(func() bool {
		for _, hi := range c.HealthSnapshot() {
			if hi.Method == "badpoll" && hi.Peer == receivePeer {
				return hi.State == CircuitClosed
			}
		}
		return false
	}, 5*time.Second) {
		t.Fatal("receive path never healed")
	}
}

// badPollModule wraps a working module but fails Poll whenever an error is
// queued on errs.
type badPollModule struct {
	transport.Module
	errs chan error
}

func (m *badPollModule) Poll() (int, error) {
	select {
	case err := <-m.errs:
		return 0, err
	default:
	}
	return m.Module.Poll()
}
