package core

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/transport"
	_ "nexus/internal/transport/udp"
)

// TestCrossFormatRSR packs arguments in the non-native byte order and checks
// the handler reads them back correctly — the heterogeneity path of §3's
// buffer machinery driven through a full RSR.
func TestCrossFormatRSR(t *testing.T) {
	tag := "xformat"
	recv := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())

	foreign := buffer.BigEndian
	if buffer.NativeFormat == buffer.BigEndian {
		foreign = buffer.LittleEndian
	}

	type result struct {
		i int64
		f float64
		s string
	}
	var got atomic.Value
	ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {
		got.Store(result{i: b.Int64(), f: b.Float64(), s: b.String()})
	}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)

	b := buffer.NewFormat(foreign, 64)
	b.PutInt64(-123456789)
	b.PutFloat64(2.71828)
	b.PutString("byte-order independent")
	if err := sp.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if !recv.PollUntil(func() bool { return got.Load() != nil }, 5*time.Second) {
		t.Fatal("not delivered")
	}
	r := got.Load().(result)
	if r.i != -123456789 || r.f != 2.71828 || r.s != "byte-order independent" {
		t.Errorf("cross-format decode: %+v", r)
	}
}

// TestPropertyStartpointEncodeRoundTrip encodes startpoints with random
// multicast target sets and checks decode recovers the same links.
func TestPropertyStartpointEncodeRoundTrip(t *testing.T) {
	tag := "sp-prop"
	recv := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())

	// A pool of endpoints to build random target sets from.
	var pool []*Endpoint
	for i := 0; i < 6; i++ {
		pool = append(pool, recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {})))
	}
	f := func(picks []uint8, lite bool) bool {
		if len(picks) == 0 {
			return true
		}
		var sp *Startpoint
		for _, p := range picks {
			s := pool[int(p)%len(pool)].NewStartpoint()
			if sp == nil {
				sp = s
			} else {
				sp.Merge(s)
			}
		}
		b := buffer.New(512)
		if lite {
			sp.EncodeLite(b)
		} else {
			sp.Encode(b)
		}
		dec, err := buffer.FromBytes(b.Encode())
		if err != nil {
			return false
		}
		got, err := send.DecodeStartpoint(dec)
		if err != nil {
			return false
		}
		a, bTargets := sp.Targets(), got.Targets()
		if len(a) != len(bTargets) {
			return false
		}
		for i := range a {
			if a[i] != bTargets[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMulticastManualSelection applies SetMethod across every link of a
// multicast startpoint at once.
func TestMulticastManualSelection(t *testing.T) {
	tag := "mcast-manual"
	mplCfg := MethodConfig{Name: "mpl", Params: transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}}
	r1 := newCtx(t, tag, "pp", mplCfg, inprocCfg())
	r2 := newCtx(t, tag, "pp", mplCfg, inprocCfg())
	send := newCtx(t, tag, "pp", mplCfg, inprocCfg())

	var h1, h2 atomic.Int64
	ep1 := r1.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { h1.Add(1) }))
	ep2 := r2.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { h2.Add(1) }))
	sp := transferStartpoint(t, ep1.NewStartpoint(), send, false)
	sp.Merge(transferStartpoint(t, ep2.NewStartpoint(), send, false))

	if err := sp.SetMethod("inproc"); err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	ok1 := r1.PollUntil(func() bool { return h1.Load() == 1 }, 5*time.Second)
	ok2 := r2.PollUntil(func() bool { return h2.Load() == 1 }, 5*time.Second)
	if !ok1 || !ok2 {
		t.Fatalf("multicast manual delivery: %d %d", h1.Load(), h2.Load())
	}
	// SetMethod fails atomically if any link lacks the method.
	r3 := newCtx(t, tag+"-island", "", inprocCfg())
	ep3 := r3.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	sp.Merge(transferStartpoint(t, ep3.NewStartpoint(), send, false))
	if err := sp.SetMethod("mpl"); err == nil {
		t.Error("SetMethod succeeded with an unreachable link")
	}
}

// TestByteCountersTrackTraffic exercises the enquiry counters the paper
// requires for evaluating selections.
func TestByteCountersTrackTraffic(t *testing.T) {
	tag := "counters"
	recv := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)

	payload := buffer.New(100)
	payload.PutRaw(make([]byte, 100))
	const n = 7
	for i := 0; i < n; i++ {
		if err := sp.RSR("", payload); err != nil {
			t.Fatal(err)
		}
	}
	recv.PollUntil(func() bool { return recv.Stats().Get("rsr.recv") == n }, 5*time.Second)

	sentBytes := send.Stats().Get("bytes.sent")
	recvBytes := recv.Stats().Get("bytes.recv")
	if sentBytes != recvBytes {
		t.Errorf("bytes.sent %d != bytes.recv %d", sentBytes, recvBytes)
	}
	if sentBytes < n*100 {
		t.Errorf("bytes.sent %d < payload volume %d", sentBytes, n*100)
	}
	if send.Stats().Get("rsr.sent") != n {
		t.Errorf("rsr.sent = %d", send.Stats().Get("rsr.sent"))
	}
	// Per-method frame counters attribute the traffic to inproc.
	for _, mi := range recv.Methods() {
		if mi.Name == "inproc" && mi.Frames != n {
			t.Errorf("inproc frames = %d, want %d", mi.Frames, n)
		}
	}
}

func BenchmarkRSRLocal(b *testing.B) {
	c, err := NewContext(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ep := c.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	sp := ep.NewStartpoint()
	payload := buffer.New(64)
	payload.PutRaw(make([]byte, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sp.RSR("", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSRInproc(b *testing.B) {
	tag := "bench-rsr"
	mk := func(id int) *Context {
		c, err := NewContext(Options{Methods: []MethodConfig{
			{Name: "inproc", Params: transport.Params{"exchange": tag, "poll_batch": "1024"}},
		}})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	recv, send := mk(1), mk(2)
	defer recv.Close()
	defer send.Close()
	var got atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { got.Add(1) }))
	sp, err := TransferStartpoint(ep.NewStartpoint(), send)
	if err != nil {
		b.Fatal(err)
	}
	payload := buffer.New(64)
	payload.PutRaw(make([]byte, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sp.RSR("", payload); err != nil {
			b.Fatal(err)
		}
		for got.Load() < int64(i+1) {
			recv.Poll()
		}
	}
}

func BenchmarkStartpointTransfer(b *testing.B) {
	tag := "bench-transfer"
	recv, err := NewContext(Options{Methods: []MethodConfig{
		{Name: "inproc", Params: transport.Params{"exchange": tag}},
		{Name: "tcp"},
		{Name: "udp"},
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	send, err := NewContext(Options{Methods: []MethodConfig{
		{Name: "inproc", Params: transport.Params{"exchange": tag}},
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	sp := recv.NewEndpoint().NewStartpoint()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TransferStartpoint(sp, send); err != nil {
			b.Fatal(err)
		}
	}
}
