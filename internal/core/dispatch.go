package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/bufpool"
	"nexus/internal/metrics"
	"nexus/internal/obsv"
	"nexus/internal/wire"
)

// This file implements the concurrent dispatch engine: the receive-side twin
// of the zero-copy send path. The paper's threaded-handler model ("threads
// allow handlers to execute concurrently with polling") used to spawn one
// goroutine plus one payload clone per incoming RSR; here it is a fixed pool
// of worker lanes with bounded FIFO queues. Frames are hashed to a lane by
// destination endpoint, so deliveries to one endpoint stay in arrival order
// while distinct endpoints execute in parallel, and the hand-off reuses the
// bufpool storage contract instead of allocating.
//
// The hot-path tables (endpoints, handlers) live in copy-on-write maps behind
// atomic pointers (see context.go), so resolution costs zero lock
// acquisitions per frame. A small epoch gate brackets every delivery;
// UnregisterHandler drains it after swapping the table, which is what makes
// "no frame reaches a stale handler after UnregisterHandler returns" true
// under full concurrency.

// DispatchPolicy selects what the dispatch engine does with an inbound frame
// whose lane queue is full.
type DispatchPolicy int

const (
	// DispatchBlock applies backpressure: the delivering poller blocks until
	// the lane has room (or the context closes). Per-endpoint FIFO ordering
	// is preserved. This is the default.
	DispatchBlock DispatchPolicy = iota
	// DispatchInline runs the overflowing frame's handler inline on the
	// delivering goroutine instead of blocking it. Detection keeps running
	// at full speed under overload, at the cost of per-endpoint ordering:
	// the inline frame can overtake frames still queued in its lane.
	DispatchInline
)

// DispatchConfig tunes the threaded dispatch engine. The zero value selects
// defaults; it is ignored unless Options.Threaded is set.
type DispatchConfig struct {
	// Lanes is the number of worker lanes (default GOMAXPROCS). Frames are
	// hashed to a lane by destination endpoint id, so deliveries to one
	// endpoint are FIFO while different endpoints run in parallel.
	Lanes int
	// QueueDepth is each lane's bounded queue capacity (default 256).
	QueueDepth int
	// OnFull selects the backpressure policy when a lane queue is full.
	OnFull DispatchPolicy
}

func (c DispatchConfig) withDefaults() DispatchConfig {
	if c.Lanes < 1 {
		c.Lanes = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	return c
}

// laneItem is one queued frame plus the delivery metadata the lane worker
// needs: the source module (per-method histograms, trace attribution), the
// sending context (fair-queue key) and the enqueue timestamp for the
// queue-wait stage (0 when stats are off). It is a small value struct so the
// hand-off stays allocation-free.
type laneItem struct {
	buf []byte
	ms  *moduleState
	src uint64 // sending context id: the per-sender fair-queue key
	enq int64  // UnixNano at enqueue; 0 when stats disabled
}

// senderQueue is one sender's FIFO backlog inside a lane. items is a ring-less
// slice with a moving head: once drained it resets to items[:0], so in steady
// state the slice capacity is reused and enqueue allocates nothing.
type senderQueue struct {
	items []laneItem
	head  int
	inRR  bool // currently registered in the lane's round-robin ring
}

// laneShard is one dispatch lane: a bounded queue split into per-sender
// sub-queues serviced round-robin. A sender flooding the lane fills only its
// own sub-queue; the worker still takes one frame per sender per turn, so
// well-behaved senders are never starved by an aggressive one. FIFO order is
// per (sender, endpoint) — weaker than the old per-endpoint order only when
// two contexts race to the same endpoint, where arrival order was already a
// network accident.
type laneShard struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	subs     map[uint64]*senderQueue // by sending context; entries persist once created
	rr       []*senderQueue          // senders with pending frames, serviced in turn
	rrIdx    int
	size     int // total queued frames across sub-queues
	closed   bool
}

func newLaneShard() *laneShard {
	ln := &laneShard{subs: make(map[uint64]*senderQueue)}
	ln.notEmpty.L = &ln.mu
	ln.notFull.L = &ln.mu
	return ln
}

// overShare reports whether sender src already holds at least its fair share
// of a backlog budget: budget split evenly across the senders that currently
// have frames queued (plus src itself if it has none). A sender with an empty
// sub-queue is never over its share, so every sender can always get at least
// one frame admitted no matter how hard the others push. Caller holds ln.mu.
func (ln *laneShard) overShare(src uint64, budget int) bool {
	sq := ln.subs[src]
	if sq == nil || len(sq.items) == sq.head {
		return false
	}
	active := len(ln.rr)
	if !sq.inRR {
		active++
	}
	share := budget / active
	if share < 1 {
		share = 1
	}
	return len(sq.items)-sq.head >= share
}

// dispatcher is the sharded worker pool behind a threaded context.
type dispatcher struct {
	ctx      *Context
	lanes    []*laneShard
	ctl      *laneShard // dedicated control lane: never sheds, preempts data lanes
	queueCap int
	hiWater  int // bulk admission mark: at/above this depth, over-share senders' ClassBulk is shed
	stopOnce sync.Once
	onFull   DispatchPolicy

	cFull     *metrics.Counter // dispatch.queue_full: lane-full events
	cInline   *metrics.Counter // dispatch.inline: frames run inline under overload
	cShedBulk *metrics.Counter // rsr.shed.bulk: ClassBulk frames dropped at admission
	depth     *metrics.Gauge   // dispatch.lane.depth: frames queued across all lanes
}

func newDispatcher(c *Context, cfg DispatchConfig) *dispatcher {
	cfg = cfg.withDefaults()
	hi := cfg.QueueDepth * 3 / 4
	if hi < 1 {
		hi = 1
	}
	d := &dispatcher{
		ctx:       c,
		lanes:     make([]*laneShard, cfg.Lanes),
		ctl:       newLaneShard(),
		queueCap:  cfg.QueueDepth,
		hiWater:   hi,
		onFull:    cfg.OnFull,
		cFull:     c.stats.Counter("dispatch.queue_full"),
		cInline:   c.stats.Counter("dispatch.inline"),
		cShedBulk: c.stats.Counter("rsr.shed.bulk"),
		depth:     c.stats.Gauge("dispatch.lane.depth"),
	}
	for i := range d.lanes {
		d.lanes[i] = newLaneShard()
		go d.run(d.lanes[i])
	}
	go d.run(d.ctl)
	return d
}

// enqueue hands one inbound frame to the worker pool. The caller borrows the
// frame (the Sink.Deliver contract), so the bytes are moved into pooled
// storage that the lane worker returns to the pool after delivery — the
// hand-off costs one copy and zero allocations in steady state, where the
// old threaded mode paid a goroutine spawn plus a cloned payload.
func (d *dispatcher) enqueue(ms *moduleState, f *wire.Frame, frame []byte) {
	buf := bufpool.Get(len(frame))
	copy(buf, frame)
	d.enqueueOwned(ms, f, buf)
}

// enqueueOwned is enqueue for a frame already in pooled storage the caller
// gives up: ownership transfers to the dispatcher, which returns the buffer
// to the pool after delivery (or on shutdown). Reassembled bulk messages use
// it so a multi-megabyte payload is not copied a second time on the way to
// its lane.
//
// Admission is by class. ClassControl frames go to the dedicated control
// lane, which applies backpressure but never sheds — health probes and
// credit grants survive any data overload. ClassBulk frames are shed once
// their lane reaches the high-water mark AND their sender already holds its
// fair share of the backlog: under overload, cheap-to-regenerate bulk is the
// first and only traffic dropped, the drop falls on the senders responsible
// for the depth, and the sender learns about it through the credit window
// closing rather than through silence. A global mark alone would shed by
// arrival accident — whoever filled the lane first keeps it pinned at high
// water and every later sender is dropped on sight. ClassNormal frames keep
// the configured OnFull policy.
func (d *dispatcher) enqueueOwned(ms *moduleState, f *wire.Frame, buf []byte) {
	it := laneItem{buf: buf, ms: ms, src: f.SrcContext}
	if d.ctx.obs.mode.Load()&obsStats != 0 {
		it.enq = time.Now().UnixNano()
	}
	cls := f.Class()
	ln := d.ctl
	if cls != wire.ClassControl {
		ln = d.lanes[f.DestEndpoint%uint64(len(d.lanes))]
	}
	ln.mu.Lock()
	if cls == wire.ClassBulk && (ln.size >= d.queueCap || ln.size >= d.hiWater && ln.overShare(it.src, d.hiWater)) {
		ln.mu.Unlock()
		d.cShedBulk.Inc()
		bufpool.Put(buf)
		return
	}
	if ln.size >= d.queueCap && !ln.closed {
		if cls != wire.ClassControl {
			d.cFull.Inc()
			if d.onFull == DispatchInline {
				d.cInline.Inc()
				ln.mu.Unlock()
				d.ctx.deliverItem(it)
				bufpool.Put(buf)
				return
			}
		}
		for ln.size >= d.queueCap && !ln.closed {
			ln.notFull.Wait()
		}
	}
	if ln.closed {
		ln.mu.Unlock()
		bufpool.Put(buf)
		return
	}
	sq := ln.subs[it.src]
	if sq == nil {
		sq = &senderQueue{}
		ln.subs[it.src] = sq
	}
	sq.items = append(sq.items, it)
	if !sq.inRR {
		sq.inRR = true
		ln.rr = append(ln.rr, sq)
	}
	ln.size++
	d.depth.Inc()
	ln.notEmpty.Signal()
	ln.mu.Unlock()
}

// run is one lane worker. Each turn it takes one frame from the next sender
// in the lane's round-robin ring, so service is fair across senders while
// staying FIFO within each sender's backlog, and returns the frame's storage
// to the pool after the handler completes.
func (d *dispatcher) run(ln *laneShard) {
	for {
		ln.mu.Lock()
		for ln.size == 0 && !ln.closed {
			ln.notEmpty.Wait()
		}
		if ln.closed {
			// Context is closing: abandon the backlog, handlers already
			// running finish on their own.
			ln.mu.Unlock()
			return
		}
		if ln.rrIdx >= len(ln.rr) {
			ln.rrIdx = 0
		}
		sq := ln.rr[ln.rrIdx]
		it := sq.items[sq.head]
		sq.items[sq.head] = laneItem{}
		sq.head++
		if sq.head == len(sq.items) {
			// Drained: keep the slice capacity, leave the ring until the
			// sender queues again.
			sq.items = sq.items[:0]
			sq.head = 0
			sq.inRR = false
			ln.rr = append(ln.rr[:ln.rrIdx], ln.rr[ln.rrIdx+1:]...)
		} else {
			ln.rrIdx++
		}
		ln.size--
		d.depth.Dec()
		ln.notFull.Signal()
		ln.mu.Unlock()
		d.ctx.deliverItem(it)
		bufpool.Put(it.buf)
	}
}

// stop signals every lane worker to exit. Queued frames are abandoned (the
// context is closing); handlers already running finish on their own.
func (d *dispatcher) stop() {
	d.stopOnce.Do(func() {
		for _, ln := range append(d.lanes, d.ctl) {
			ln.mu.Lock()
			ln.closed = true
			ln.notEmpty.Broadcast()
			ln.notFull.Broadcast()
			ln.mu.Unlock()
		}
	})
}

// deliverItem re-decodes a pooled frame on a lane worker and delivers it.
// The decode is a handful of bounds checks against bytes already in cache —
// re-running it here keeps the queue item small and, more importantly,
// re-resolves the endpoint/handler tables at execution time, so a frame
// queued before an UnregisterHandler cannot reach the removed handler after
// it. The pickup timestamp, measured against it.enq, is the queue-wait
// stage: how long the frame sat behind its lane's backlog.
func (c *Context) deliverItem(it laneItem) {
	var f wire.Frame
	if err := wire.DecodeInto(&f, it.buf); err != nil {
		c.errlog(fmt.Errorf("core: context %d: bad frame: %w", c.id, err))
		return
	}
	if it.enq != 0 {
		wait := time.Duration(time.Now().UnixNano() - it.enq)
		if it.ms != nil {
			it.ms.lat.Stage(obsv.StageQueueWait).Record(wait)
		}
		if c.obs.mode.Load()&obsTrace != 0 && f.HasTrace() {
			c.recordEvent(obsv.Event{
				Trace:    obsv.TraceID(f.Trace),
				Stage:    obsv.StageQueueWait,
				Method:   msName(it.ms),
				Peer:     f.SrcContext,
				Endpoint: f.DestEndpoint,
				Handler:  f.Handler,
				Dur:      wait,
			})
		}
	}
	c.deliver(it.ms, &f)
}

// dispatchGate brackets every delivery so table writers can wait out
// in-flight readers without putting a lock on the per-frame path. It is an
// epoch pair: enter increments the counter of the current epoch's parity and
// validates that the epoch did not move mid-entry; drain flips the epoch and
// spins until the old parity's counter reaches zero. New deliveries land in
// the new parity (and resolve the new tables), so the wait is bounded even
// under a continuous frame flood.
type dispatchGate struct {
	epoch   atomic.Uint64
	active  [2]gateCounter
	drainMu sync.Mutex
}

// gateCounter is padded so the two parities do not share a cache line with
// each other or with the epoch word.
type gateCounter struct {
	n atomic.Int64
	_ [56]byte
}

// enter registers one in-flight delivery and returns the parity to exit with.
func (g *dispatchGate) enter() uint64 {
	for {
		e := g.epoch.Load()
		g.active[e&1].n.Add(1)
		if g.epoch.Load() == e {
			return e & 1
		}
		// A drain flipped the epoch between the load and the increment: the
		// drainer may already have observed our parity at zero, so our
		// registration there is void. Undo and re-enter under the new epoch.
		g.active[e&1].n.Add(-1)
	}
}

// exit deregisters a delivery entered under the given parity.
func (g *dispatchGate) exit(parity uint64) { g.active[parity].n.Add(-1) }

// drain waits until every delivery that may have observed the previous table
// snapshots has completed. Callers must not hold the context mutex (a
// running handler may be acquiring it) and must not be inside a delivery
// themselves: a handler that synchronously unregisters handlers on its own
// context would wait for its own gate entry. Do such maintenance from
// outside the handler, or from a fresh goroutine.
func (g *dispatchGate) drain() {
	g.drainMu.Lock()
	defer g.drainMu.Unlock()
	old := g.epoch.Load() & 1
	g.epoch.Add(1)
	for g.active[old].n.Load() != 0 {
		runtime.Gosched()
	}
}
