package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	_ "nexus/internal/simnet"
	"nexus/internal/transport"
	_ "nexus/internal/transport/inproc"
	_ "nexus/internal/transport/local"
	_ "nexus/internal/transport/tcp"
)

// newCtx builds a context with the given methods on an isolated inproc
// exchange shared by all contexts built with the same tag.
func newCtx(t testing.TB, tag, partition string, methods ...MethodConfig) *Context {
	t.Helper()
	for i := range methods {
		if methods[i].Name == "inproc" || methods[i].Name == "mpl" || methods[i].Name == "wan" {
			if methods[i].Params == nil {
				methods[i].Params = transport.Params{}
			}
			if _, ok := methods[i].Params["exchange"]; !ok {
				methods[i].Params["exchange"] = tag
			}
			if _, ok := methods[i].Params["fabric"]; !ok {
				methods[i].Params["fabric"] = tag
			}
		}
	}
	c, err := NewContext(Options{Partition: partition, Methods: methods})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func inprocCfg() MethodConfig { return MethodConfig{Name: "inproc"} }

func TestLocalRSRRoundTrip(t *testing.T) {
	c := newCtx(t, "local-rt", "")
	var got atomic.Int64
	ep := c.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {
		got.Store(b.Int64())
	}))
	sp := ep.NewStartpoint()
	b := buffer.New(16)
	b.PutInt64(42)
	if err := sp.RSR("", b); err != nil {
		t.Fatal(err)
	}
	// Local delivery is synchronous.
	if got.Load() != 42 {
		t.Fatalf("handler saw %d, want 42", got.Load())
	}
	if m := sp.Method(); m != "local" {
		t.Errorf("selected method %q, want local", m)
	}
}

func TestNamedHandlerPrecedence(t *testing.T) {
	c := newCtx(t, "named-h", "")
	var which atomic.Value
	c.RegisterHandler("named", func(ep *Endpoint, b *buffer.Buffer) { which.Store("named") })
	ep := c.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) { which.Store("default") }))
	sp := ep.NewStartpoint()

	if err := sp.RSR("named", nil); err != nil {
		t.Fatal(err)
	}
	if which.Load() != "named" {
		t.Errorf("named RSR ran %v", which.Load())
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if which.Load() != "default" {
		t.Errorf("unnamed RSR ran %v", which.Load())
	}
}

func TestEndpointDataGlobalPointer(t *testing.T) {
	c := newCtx(t, "ep-data", "")
	type cell struct{ v int }
	data := &cell{}
	ep := c.NewEndpoint(WithData(data), WithHandler(func(ep *Endpoint, b *buffer.Buffer) {
		ep.Data().(*cell).v = b.Int()
	}))
	sp := ep.NewStartpoint()
	b := buffer.New(8)
	b.PutInt(7)
	if err := sp.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if data.v != 7 {
		t.Errorf("bound data = %d, want 7", data.v)
	}
}

// transferStartpoint encodes sp and decodes it in dst, as if it had been
// carried inside an RSR.
func transferStartpoint(t testing.TB, sp *Startpoint, dst *Context, lite bool) *Startpoint {
	t.Helper()
	b := buffer.New(256)
	if lite {
		sp.EncodeLite(b)
	} else {
		sp.Encode(b)
	}
	dec, err := buffer.FromBytes(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.DecodeStartpoint(dec)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCrossContextRSRViaInproc(t *testing.T) {
	tag := "cross-inproc"
	recv := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())

	var got atomic.Value
	ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {
		got.Store(b.String())
	}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)

	b := buffer.New(32)
	b.PutString("over inproc")
	if err := sp.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if m := sp.Method(); m != "inproc" {
		t.Errorf("selected %q, want inproc", m)
	}
	ok := recv.PollUntil(func() bool { return got.Load() != nil }, 5*time.Second)
	if !ok {
		t.Fatal("RSR never delivered")
	}
	if got.Load() != "over inproc" {
		t.Errorf("got %v", got.Load())
	}
	if recv.Stats().Get("rsr.recv") != 1 {
		t.Errorf("rsr.recv = %d", recv.Stats().Get("rsr.recv"))
	}
	if send.Stats().Get("rsr.sent") != 1 {
		t.Errorf("rsr.sent = %d", send.Stats().Get("rsr.sent"))
	}
}

// TestFigure3SelectionScenario reproduces the paper's Figure 3: node 0
// supports only the universal method; nodes 1 and 2 are in one partition and
// additionally share a fast partition-scoped method. A startpoint for node
// 2's endpoint selects the universal method at node 0; after migrating to
// node 1, re-selection picks the fast method.
func TestFigure3SelectionScenario(t *testing.T) {
	tag := "fig3"
	mpl := func() MethodConfig {
		return MethodConfig{Name: "mpl", Params: transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}}
	}
	node2 := newCtx(t, tag, "sp2", mpl(), inprocCfg())
	node1 := newCtx(t, tag, "sp2", mpl(), inprocCfg())
	node0 := newCtx(t, tag, "workstation", inprocCfg())

	var hits atomic.Int64
	ep := node2.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) { hits.Add(1) }))
	orig := ep.NewStartpoint()

	// At node 0 only the universal (inproc here, Ethernet in the paper)
	// method is applicable: mpl requires same partition.
	sp0 := transferStartpoint(t, orig, node0, false)
	if err := sp0.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if m := sp0.Method(); m != "inproc" {
		t.Errorf("node0 selected %q, want inproc", m)
	}

	// Migrate the startpoint onward to node 1: mpl becomes applicable and,
	// being first in the table, wins.
	sp1 := transferStartpoint(t, sp0, node1, false)
	if err := sp1.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if m := sp1.Method(); m != "mpl" {
		t.Errorf("node1 selected %q, want mpl", m)
	}
	if !node2.PollUntil(func() bool { return hits.Load() == 2 }, 5*time.Second) {
		t.Fatalf("delivered %d RSRs, want 2", hits.Load())
	}
}

func TestManualSetMethodOverridesAuto(t *testing.T) {
	tag := "manual"
	recv := newCtx(t, tag, "pp", MethodConfig{Name: "mpl", Params: transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}}, inprocCfg())
	send := newCtx(t, tag, "pp", MethodConfig{Name: "mpl", Params: transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}}, inprocCfg())

	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) { hits.Add(1) }))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)

	if err := sp.SetMethod("inproc"); err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if m := sp.Method(); m != "inproc" {
		t.Errorf("method = %q after manual selection", m)
	}
	if !recv.PollUntil(func() bool { return hits.Load() == 1 }, 5*time.Second) {
		t.Fatal("not delivered")
	}
	// Dynamic change back to automatic choice (mpl) mid-stream.
	if err := sp.SetMethod("mpl"); err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if !recv.PollUntil(func() bool { return hits.Load() == 2 }, 5*time.Second) {
		t.Fatal("not delivered after method change")
	}
	if err := sp.SetMethod("atm"); err == nil {
		t.Error("SetMethod of absent method succeeded")
	}
}

func TestTableReorderingGuidesSelection(t *testing.T) {
	tag := "reorder"
	recv := newCtx(t, tag, "pp", MethodConfig{Name: "mpl", Params: transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}}, inprocCfg())
	send := newCtx(t, tag, "pp", MethodConfig{Name: "mpl", Params: transport.Params{"latency": "0", "poll_cost": "0", "bandwidth": "0"}}, inprocCfg())

	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)

	// User promotes inproc above mpl before first use: automatic selection
	// must honor the new order.
	sp.Table().Promote("inproc")
	if _, err := sp.SelectMethod(); err != nil {
		t.Fatal(err)
	}
	if m := sp.Method(); m != "inproc" {
		t.Errorf("after Promote, selected %q", m)
	}

	// Deleting a descriptor removes the method from consideration.
	sp2 := transferStartpoint(t, ep.NewStartpoint(), send, false)
	sp2.Table().Remove("mpl")
	if _, err := sp2.SelectMethod(); err != nil {
		t.Fatal(err)
	}
	if m := sp2.Method(); m != "inproc" {
		t.Errorf("after Remove(mpl), selected %q", m)
	}
}

func TestLightweightStartpoint(t *testing.T) {
	tag := "lite"
	recv := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())

	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { hits.Add(1) }))

	// Lite encoding is much smaller than the full table form.
	full, lite := buffer.New(256), buffer.New(256)
	sp := ep.NewStartpoint()
	sp.Encode(full)
	sp.EncodeLite(lite)
	if lite.Len() >= full.Len() {
		t.Errorf("lite %dB not smaller than full %dB", lite.Len(), full.Len())
	}

	spLite := transferStartpoint(t, sp, send, true)
	// Without a registered peer table, selection must fail with ErrNoTable.
	if _, err := spLite.SelectMethod(); !errors.Is(err, ErrNoTable) {
		t.Fatalf("SelectMethod without peer table: %v", err)
	}
	// After registering the default table, the lite startpoint works.
	send.RegisterPeerTable(recv.AdvertisedTable())
	if err := spLite.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if !recv.PollUntil(func() bool { return hits.Load() == 1 }, 5*time.Second) {
		t.Fatal("lite RSR not delivered")
	}
}

func TestMulticastStartpoint(t *testing.T) {
	tag := "mcast"
	r1 := newCtx(t, tag, "", inprocCfg())
	r2 := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())

	var h1, h2 atomic.Int64
	ep1 := r1.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { h1.Add(1) }))
	ep2 := r2.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { h2.Add(1) }))

	sp := transferStartpoint(t, ep1.NewStartpoint(), send, false)
	sp.Merge(transferStartpoint(t, ep2.NewStartpoint(), send, false))
	if n := len(sp.Targets()); n != 2 {
		t.Fatalf("targets = %d", n)
	}
	// Merging the same link twice is a no-op.
	sp.Merge(transferStartpoint(t, ep2.NewStartpoint(), send, false))
	if n := len(sp.Targets()); n != 2 {
		t.Fatalf("targets after duplicate merge = %d", n)
	}

	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	ok1 := r1.PollUntil(func() bool { return h1.Load() == 1 }, 5*time.Second)
	ok2 := r2.PollUntil(func() bool { return h2.Load() == 1 }, 5*time.Second)
	if !ok1 || !ok2 {
		t.Fatalf("multicast delivery: ep1=%d ep2=%d", h1.Load(), h2.Load())
	}
}

func TestMergedTrafficToOneEndpoint(t *testing.T) {
	tag := "merge-in"
	recv := newCtx(t, tag, "", inprocCfg())
	s1 := newCtx(t, tag, "", inprocCfg())
	s2 := newCtx(t, tag, "", inprocCfg())

	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { hits.Add(1) }))
	spA := transferStartpoint(t, ep.NewStartpoint(), s1, false)
	spB := transferStartpoint(t, ep.NewStartpoint(), s2, false)
	for i := 0; i < 3; i++ {
		if err := spA.RSR("", nil); err != nil {
			t.Fatal(err)
		}
		if err := spB.RSR("", nil); err != nil {
			t.Fatal(err)
		}
	}
	if !recv.PollUntil(func() bool { return hits.Load() == 6 }, 5*time.Second) {
		t.Fatalf("merged deliveries = %d, want 6", hits.Load())
	}
}

func TestStartpointCarriedInsideRSR(t *testing.T) {
	// The full paper pattern: context A creates a link and sends the
	// startpoint to B inside an RSR; B replies over the received startpoint.
	tag := "sp-in-rsr"
	a := newCtx(t, tag, "", inprocCfg())
	b := newCtx(t, tag, "", inprocCfg())

	var reply atomic.Value
	replyEP := a.NewEndpoint(WithHandler(func(ep *Endpoint, buf *buffer.Buffer) {
		reply.Store(buf.String())
	}))

	b.RegisterHandler("request", func(ep *Endpoint, buf *buffer.Buffer) {
		sp, err := ep.Context().DecodeStartpoint(buf)
		if err != nil {
			t.Error(err)
			return
		}
		out := buffer.New(32)
		out.PutString("pong")
		if err := sp.RSR("", out); err != nil {
			t.Error(err)
		}
	})
	reqEP := b.NewEndpoint()
	reqSP := transferStartpoint(t, reqEP.NewStartpoint(), a, false)

	req := buffer.New(128)
	replyEP.NewStartpoint().Encode(req)
	if err := reqSP.RSR("request", req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reply.Load() == nil && time.Now().Before(deadline) {
		b.Poll()
		a.Poll()
	}
	if reply.Load() != "pong" {
		t.Fatalf("reply = %v", reply.Load())
	}
}

func TestThreadedHandlers(t *testing.T) {
	tag := "threaded"
	// Dispatch lanes are keyed by destination endpoint: RSRs to one endpoint
	// stay FIFO, so the slow and fast handlers must live on DIFFERENT
	// endpoints to run concurrently. Endpoint ids count up from 1, so with 4
	// lanes ids 1 and 2 land on distinct lanes.
	recvOpts := Options{
		Methods:  []MethodConfig{{Name: "inproc", Params: transport.Params{"exchange": tag}}},
		Threaded: true,
		Dispatch: DispatchConfig{Lanes: 4},
	}
	recv, err := NewContext(recvOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send := newCtx(t, tag, "", inprocCfg())

	var wg sync.WaitGroup
	wg.Add(2)
	block := make(chan struct{})
	var order []string
	var mu sync.Mutex
	recv.RegisterHandler("slow", func(*Endpoint, *buffer.Buffer) {
		defer wg.Done()
		<-block
		mu.Lock()
		order = append(order, "slow")
		mu.Unlock()
	})
	recv.RegisterHandler("fast", func(*Endpoint, *buffer.Buffer) {
		defer wg.Done()
		mu.Lock()
		order = append(order, "fast")
		mu.Unlock()
		close(block)
	})
	epSlow := recv.NewEndpoint()
	epFast := recv.NewEndpoint()
	spSlow := transferStartpoint(t, epSlow.NewStartpoint(), send, false)
	spFast := transferStartpoint(t, epFast.NewStartpoint(), send, false)
	if err := spSlow.RSR("slow", nil); err != nil {
		t.Fatal(err)
	}
	if err := spFast.RSR("fast", nil); err != nil {
		t.Fatal(err)
	}
	// With threaded handlers, the blocked "slow" handler cannot wedge the
	// poller: "fast" runs concurrently and unblocks it.
	donePolling := make(chan struct{})
	go func() {
		defer close(donePolling)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			recv.Poll()
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n == 2 {
				return
			}
		}
	}()
	wg.Wait()
	<-donePolling
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "fast" {
		t.Errorf("handler order = %v, want fast first", order)
	}
}

func TestUnknownHandlerAndEndpointCounted(t *testing.T) {
	tag := "unknown"
	var errs []error
	var mu sync.Mutex
	recv, err := NewContext(Options{
		Methods:  []MethodConfig{{Name: "inproc", Params: transport.Params{"exchange": tag}}},
		ErrorLog: func(e error) { mu.Lock(); errs = append(errs, e); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send := newCtx(t, tag, "", inprocCfg())

	ep := recv.NewEndpoint() // no handler at all
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	if err := sp.RSR("nonexistent", nil); err != nil {
		t.Fatal(err)
	}
	recv.PollUntil(func() bool { mu.Lock(); defer mu.Unlock(); return len(errs) > 0 }, 5*time.Second)
	mu.Lock()
	if len(errs) != 1 || !errors.Is(errs[0], ErrUnknownHandler) {
		t.Fatalf("errors = %v", errs)
	}
	mu.Unlock()
	if got := recv.cDropUnkH.Load(); got != 1 {
		t.Errorf("rsr.dropped.unknown_handler = %d, want 1", got)
	}
	if got := recv.cDropUnkEP.Load(); got != 0 {
		t.Errorf("rsr.dropped.unknown_endpoint = %d, want 0", got)
	}

	// RSR to a closed endpoint reports ErrUnknownEndpoint.
	ep2 := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	sp2 := transferStartpoint(t, ep2.NewStartpoint(), send, false)
	ep2.Close()
	if err := sp2.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	recv.PollUntil(func() bool { mu.Lock(); defer mu.Unlock(); return len(errs) > 1 }, 5*time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 2 || !errors.Is(errs[1], ErrUnknownEndpoint) {
		t.Fatalf("errors = %v", errs)
	}
	if got := recv.cDropUnkEP.Load(); got != 1 {
		t.Errorf("rsr.dropped.unknown_endpoint = %d, want 1", got)
	}
}

func TestSharedCommunicationObjects(t *testing.T) {
	tag := "shared-conn"
	recv := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())

	ep1 := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	ep2 := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	spA := transferStartpoint(t, ep1.NewStartpoint(), send, false)
	spB := transferStartpoint(t, ep2.NewStartpoint(), send, false)
	if _, err := spA.SelectMethod(); err != nil {
		t.Fatal(err)
	}
	if _, err := spB.SelectMethod(); err != nil {
		t.Fatal(err)
	}
	// Two startpoints to the same context with the same method share one
	// communication object.
	if n := send.openConns(); n != 1 {
		t.Errorf("open conns = %d, want 1 (shared)", n)
	}
	spA.Close()
	if n := send.openConns(); n != 1 {
		t.Errorf("open conns after first Close = %d, want 1", n)
	}
	spB.Close()
	if n := send.openConns(); n != 0 {
		t.Errorf("open conns after both Close = %d, want 0", n)
	}
}

// flakyModule fails its first N sends, then works; used for failover tests.
type flakyModule struct {
	inner transport.Module
	fails *atomic.Int64
}

type flakyConn struct {
	inner transport.Conn
	fails *atomic.Int64
}

func (m *flakyModule) Name() string { return "flaky" }
func (m *flakyModule) Init(env transport.Env) (*transport.Descriptor, error) {
	d, err := m.inner.Init(env)
	if d != nil {
		d.Method = "flaky"
	}
	return d, err
}
func (m *flakyModule) Applicable(remote transport.Descriptor) bool {
	if remote.Method != "flaky" {
		return false
	}
	r := remote.Clone()
	r.Method = "inproc"
	return m.inner.Applicable(r)
}
func (m *flakyModule) Dial(remote transport.Descriptor) (transport.Conn, error) {
	r := remote.Clone()
	r.Method = "inproc"
	c, err := m.inner.Dial(r)
	if err != nil {
		return nil, err
	}
	return &flakyConn{inner: c, fails: m.fails}, nil
}
func (m *flakyModule) Poll() (int, error) { return m.inner.Poll() }
func (m *flakyModule) Close() error       { return m.inner.Close() }

func (c *flakyConn) Send(frame []byte) error {
	if c.fails.Add(-1) >= 0 {
		return fmt.Errorf("flaky: injected send failure")
	}
	return c.inner.Send(frame)
}
func (c *flakyConn) Method() string { return "flaky" }
func (c *flakyConn) Close() error   { return c.inner.Close() }

func TestFailoverToNextMethod(t *testing.T) {
	tag := "failover"
	fails := &atomic.Int64{}
	fails.Store(1 << 30) // flaky method always fails

	reg := transport.NewRegistry()
	for _, name := range []string{"local", "inproc"} {
		f := name
		base, err := transport.Default.New(f, transport.Params{"exchange": tag})
		if err != nil {
			t.Fatal(err)
		}
		_ = base
		reg.Register(f, func(p transport.Params) transport.Module {
			m, err := transport.Default.New(f, p)
			if err != nil {
				panic(err)
			}
			return m
		})
	}
	reg.Register("flaky", func(p transport.Params) transport.Module {
		inner, err := transport.Default.New("inproc", transport.Params{"exchange": tag + "-flaky"})
		if err != nil {
			panic(err)
		}
		return &flakyModule{inner: inner, fails: fails}
	})

	mk := func() *Context {
		c, err := NewContext(Options{
			Registry: reg,
			Methods: []MethodConfig{
				{Name: "flaky"},
				{Name: "inproc", Params: transport.Params{"exchange": tag}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	recv, send := mk(), mk()

	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { hits.Add(1) }))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)

	// Without failover, the RSR reports the send error.
	if err := sp.RSR("", nil); err == nil {
		t.Fatal("RSR over always-failing method succeeded")
	}
	// With failover, the startpoint switches to inproc and delivers.
	sp.SetFailover(true)
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	if m := sp.Method(); m != "inproc" {
		t.Errorf("after failover, method = %q", m)
	}
	if !recv.PollUntil(func() bool { return hits.Load() == 1 }, 5*time.Second) {
		t.Fatal("failover RSR not delivered")
	}
	if send.Stats().Get("rsr.failover") != 1 {
		t.Errorf("rsr.failover = %d", send.Stats().Get("rsr.failover"))
	}
}

func TestDecodeStartpointTruncated(t *testing.T) {
	c := newCtx(t, "dec-trunc", "", inprocCfg())
	ep := c.NewEndpoint()
	b := buffer.New(256)
	ep.NewStartpoint().Encode(b)
	enc := b.Encode()
	for cut := 1; cut < len(enc); cut++ {
		d, err := buffer.FromBytes(enc[:cut])
		if err != nil {
			continue
		}
		if _, err := c.DecodeStartpoint(d); err == nil && cut < len(enc) {
			// A short prefix may decode when the truncation happens to
			// leave a valid smaller structure; with one target and one
			// table it cannot.
			t.Errorf("decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func TestContextCloseRejectsUse(t *testing.T) {
	tag := "close-use"
	c := newCtx(t, tag, "", inprocCfg())
	ep := c.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	sp := ep.NewStartpoint()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !c.Closed() {
		t.Error("Closed() = false")
	}
	if _, err := sp.SelectMethod(); !errors.Is(err, ErrClosed) {
		t.Errorf("SelectMethod on closed context: %v", err)
	}
	if n := c.Poll(); n != 0 {
		t.Errorf("Poll on closed context = %d", n)
	}
}

func TestConcurrentBidirectionalTraffic(t *testing.T) {
	tag := "concurrent"
	a := newCtx(t, tag, "", inprocCfg())
	b := newCtx(t, tag, "", inprocCfg())

	var aGot, bGot atomic.Int64
	epA := a.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { aGot.Add(1) }))
	epB := b.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { bGot.Add(1) }))
	spToB := transferStartpoint(t, epB.NewStartpoint(), a, false)
	spToA := transferStartpoint(t, epA.NewStartpoint(), b, false)

	stopA := a.StartPoller(0)
	stopB := b.StartPoller(0)
	defer stopA()
	defer stopB()

	const senders, per = 4, 250
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := spToB.RSR("", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := spToA.RSR("", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for (aGot.Load() < senders*per || bGot.Load() < senders*per) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if aGot.Load() != senders*per || bGot.Load() != senders*per {
		t.Errorf("delivered a=%d b=%d, want %d each", aGot.Load(), bGot.Load(), senders*per)
	}
}
