package core

import (
	"time"

	"nexus/internal/obsv"
)

// This file is core's half of the cluster membership layer's attachment
// surface, mirroring rpc_hook.go: core knows nothing about gossip rounds or
// route computation — it only carries the configuration knobs, an opaque
// state slot for the attached agent, the membership view Observe folds into
// snapshots, and the hop budget stamped on mesh-routed frames. The layer
// itself lives in internal/cluster and is attached by the facade.

// DefaultRelayTTL is the hop budget stamped on mesh-routed frames when
// ClusterConfig.RelayTTL is unset: generous against any plausible route
// depth, small enough that a routing loop extinguishes within a handful of
// relays.
const DefaultRelayTTL = 8

// ClusterConfig configures the dynamic membership layer (internal/cluster).
// The zero value leaves it off.
type ClusterConfig struct {
	// Enabled turns the layer on: the facade attaches a gossip agent to the
	// context at construction.
	Enabled bool
	// Forwarder advertises this context as a relay in gossip and enables
	// frame forwarding, so mesh routes may pass through it.
	Forwarder bool
	// Mesh enables cost-aware multi-hop route computation: peers with no
	// directly applicable method are reached through advertised forwarders.
	Mesh bool
	// Fanout is how many peers each gossip round contacts (default 2).
	Fanout int
	// Interval is the background agent's round period (default 50ms).
	Interval time.Duration
	// MaxDigest bounds the digest entries per gossip message (default 512);
	// larger registries are swept across rounds by a rotating window.
	MaxDigest int
	// MaxDelta bounds the records shipped per gossip message (default 64).
	MaxDelta int
	// RelayTTL is the hop budget stamped on mesh-routed frames
	// (default DefaultRelayTTL).
	RelayTTL int
	// Seed fixes the agent's peer-sampling randomness for deterministic
	// tests (0 derives one from the context id).
	Seed int64
}

// SetClusterState attaches an opaque cluster-layer runtime to the context,
// retrievable with ClusterState. The cluster package stores its agent here
// so facade helpers can find it without core importing the layer.
func (c *Context) SetClusterState(v any) { c.clusterState.Store(v) }

// ClusterState returns the value stored by SetClusterState (nil if none).
func (c *Context) ClusterState() any { return c.clusterState.Load() }

// SetClusterView installs the membership-view provider Observe calls when
// building snapshots; /debug/nexusz renders the rows as the membership
// table. A nil provider detaches it.
func (c *Context) SetClusterView(fn func() []obsv.ClusterMember) {
	c.clusterView.Store(fn)
}

// MethodCostEstimate reports the observed per-message cost of a method from
// this context — mean send latency plus mean poll (detection) cost, falling
// back to the module's static hint when unobserved. Mesh route computation
// uses it to weight the edges it can see locally; 0 means "no estimate".
func (c *Context) MethodCostEstimate(method string) time.Duration {
	c.mu.RLock()
	ms := c.byMethod[method]
	c.mu.RUnlock()
	if ms == nil {
		return 0
	}
	return c.sendCostEstimate(ms) + c.pollCostEstimate(ms)
}
