package core

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/simnet"
	"nexus/internal/transport"
	_ "nexus/internal/transport/rudp"
	"nexus/internal/transport/shm"
	_ "nexus/internal/transport/udp"
)

// bulkPayload builds a deterministic pseudo-random payload whose corruption
// or truncation any bytes.Equal check will catch.
func bulkPayload(size int) []byte {
	p := make([]byte, size)
	x := uint32(2463534242)
	for i := range p {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		p[i] = byte(x)
	}
	return p
}

// bulkSink is a handler target that verifies every delivery against the
// expected payload: partial or corrupted deliveries are counted separately
// and fail the test, enforcing the all-or-nothing contract.
type bulkSink struct {
	want []byte
	good atomic.Int64
	bad  atomic.Int64
}

func (s *bulkSink) handler(ep *Endpoint, b *buffer.Buffer) {
	if got := b.BytesValue(); bytes.Equal(got, s.want) {
		s.good.Add(1)
	} else {
		s.bad.Add(1)
	}
}

// startPolling drives c.Poll from a background goroutine for the duration of
// the test, standing in for the receiving node's compute thread. Blocking-
// window transports (rudp) need the remote side polling — it produces the
// ACKs — while the sender sits inside RSR.
func startPolling(t testing.TB, c *Context) {
	t.Helper()
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			default:
			}
			if c.Poll() == 0 {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	t.Cleanup(func() { close(done); <-exited })
}

// TestBulkRoundTripFragmented sends a 1 MiB RSR across real sockets. Over
// udp and rudp the frame exceeds the datagram limit, so the startpoint must
// fragment and the receiver reassemble; over tcp the same payload rides in
// one frame and the fragmentation path must stay cold.
func TestBulkRoundTripFragmented(t *testing.T) {
	payload := bulkPayload(1 << 20)
	cases := []struct {
		method     string
		fragmented bool
		unreliable bool
	}{
		{"tcp", false, false},
		{"udp", true, true},
		{"rudp", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.method, func(t *testing.T) {
			recv := newCtx(t, "bulk-"+tc.method, "", MethodConfig{Name: tc.method})
			send := newCtx(t, "bulk-"+tc.method, "", MethodConfig{Name: tc.method})
			sink := &bulkSink{want: payload}
			ep := recv.NewEndpoint(WithHandler(sink.handler))
			sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
			startPolling(t, recv)

			sendOnce := func() {
				b := buffer.New(len(payload) + 8)
				b.PutBytes(payload)
				if err := sp.RSR("", b); err != nil {
					t.Fatalf("bulk RSR over %s: %v", tc.method, err)
				}
			}
			sendOnce()
			if tc.unreliable {
				// udp may drop fragments even on loopback; resend the whole
				// message (fresh fragment ids each time) until one lands.
				deadline := time.Now().Add(15 * time.Second)
				for sink.good.Load() == 0 {
					if time.Now().After(deadline) {
						t.Fatal("no complete delivery within deadline")
					}
					time.Sleep(200 * time.Millisecond)
					if sink.good.Load() == 0 {
						sendOnce()
					}
				}
			} else if !recv.PollUntil(func() bool { return sink.good.Load() >= 1 }, 15*time.Second) {
				t.Fatal("bulk RSR never delivered")
			}
			if n := sink.bad.Load(); n != 0 {
				t.Fatalf("%d corrupted/partial deliveries reached the handler", n)
			}
			if m := sp.Method(); m != tc.method {
				t.Errorf("selected %q, want %q", m, tc.method)
			}

			fragged := send.Stats().Get("frag.messages.sent")
			assembled := recv.Stats().Get("frag.assembled")
			if tc.fragmented {
				if fragged == 0 || assembled == 0 {
					t.Errorf("expected fragmentation: messages.sent=%d assembled=%d", fragged, assembled)
				}
				if tx := send.Stats().Get("frag.fragments.sent"); tx < 17 {
					t.Errorf("1 MiB over %s sent only %d fragments", tc.method, tx)
				}
			} else if fragged != 0 || assembled != 0 {
				t.Errorf("%s fragmented a frame it can carry whole: messages.sent=%d assembled=%d",
					tc.method, fragged, assembled)
			}
		})
	}
}

// TestBulkThreadedDelivery reassembles on a threaded context: the rebuilt
// logical frame must be dispatched through the lane engine, not inline.
func TestBulkThreadedDelivery(t *testing.T) {
	payload := bulkPayload(512 << 10)
	tag := "bulk-threaded"
	recvC, err := NewContext(Options{
		Threaded: true,
		Methods:  []MethodConfig{{Name: "rudp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recvC.Close() })
	send := newCtx(t, tag, "", MethodConfig{Name: "rudp"})

	sink := &bulkSink{want: payload}
	var lane atomic.Bool
	ep := recvC.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) {
		lane.Store(true)
		sink.handler(ep, b)
	}))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	startPolling(t, recvC)

	b := buffer.New(len(payload) + 8)
	b.PutBytes(payload)
	if err := sp.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if !recvC.PollUntil(func() bool { return sink.good.Load() == 1 }, 15*time.Second) {
		t.Fatalf("threaded bulk delivery missing (good=%d bad=%d)", sink.good.Load(), sink.bad.Load())
	}
	if recvC.Stats().Get("frag.assembled") != 1 {
		t.Errorf("frag.assembled = %d, want 1", recvC.Stats().Get("frag.assembled"))
	}
}

// TestSmallSendsSkipFragPath pins the steady-state property the zero-copy
// benchmarks rely on: ordinary small RSRs never touch the fragmentation
// counters or leave partial state behind.
func TestSmallSendsSkipFragPath(t *testing.T) {
	tag := "bulk-small"
	recv := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())
	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) { hits.Add(1) }))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	for i := 0; i < 32; i++ {
		b := buffer.New(64)
		b.PutInt(i)
		if err := sp.RSR("", b); err != nil {
			t.Fatal(err)
		}
	}
	if !recv.PollUntil(func() bool { return hits.Load() == 32 }, 5*time.Second) {
		t.Fatalf("delivered %d/32", hits.Load())
	}
	for _, name := range []string{"frag.messages.sent", "frag.fragments.sent"} {
		if v := send.Stats().Get(name); v != 0 {
			t.Errorf("sender %s = %d after small sends", name, v)
		}
	}
	for _, name := range []string{"frag.fragments.recv", "frag.assembled", "frag.expired"} {
		if v := recv.Stats().Get(name); v != 0 {
			t.Errorf("receiver %s = %d after small sends", name, v)
		}
	}
	if recv.frags.Partials() != 0 {
		t.Errorf("receiver holds %d partials after small sends", recv.frags.Partials())
	}
}

// TestContextMessageCap checks the context-level payload ceiling: an RSR
// larger than Options.MaxMessageSize is refused at the startpoint with the
// unified oversize error before any bytes move.
func TestContextMessageCap(t *testing.T) {
	c, err := NewContext(Options{MaxMessageSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	var hits atomic.Int64
	ep := c.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) { hits.Add(1) }))
	sp := ep.NewStartpoint()
	b := buffer.New(8 << 10)
	b.PutBytes(bulkPayload(8 << 10))
	if err := sp.RSR("", b); !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("oversize RSR err = %v, want errors.Is(..., transport.ErrTooLarge)", err)
	}
	if hits.Load() != 0 {
		t.Error("oversize RSR reached the handler")
	}
	small := buffer.New(64)
	small.PutInt(1)
	if err := sp.RSR("", small); err != nil {
		t.Fatalf("in-range RSR after rejection: %v", err)
	}
	if hits.Load() != 1 {
		t.Error("startpoint unusable after oversize rejection")
	}
}

// TestSizeAwareSelector routes by payload size: under the threshold the
// low-latency policy picks inproc; above it the bulk policy picks the
// simulated high-bandwidth fabric. A manual SetMethod pin bypasses the
// policy entirely.
func TestSizeAwareSelector(t *testing.T) {
	tag := "bulk-sizeaware"
	fast := func() MethodConfig {
		return MethodConfig{Name: "mpl", Params: transport.Params{
			"latency": "0", "poll_cost": "0", "bandwidth": "0"}}
	}
	recv := newCtx(t, tag, "part", inprocCfg(), fast())

	mkSender := func(threshold int) *Context {
		t.Helper()
		c, err := NewContext(Options{
			Partition: "part",
			Methods: []MethodConfig{
				{Name: "inproc", Params: transport.Params{"exchange": tag}},
				{Name: "mpl", Params: transport.Params{
					"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0"}},
			},
			Selector: SizeAware(threshold, PreferOrder("inproc"), PreferOrder("mpl")),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	send := mkSender(1 << 10)

	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) { hits.Add(1) }))

	// Selection is per-startpoint and sticky, so each probe gets its own
	// transferred startpoint and triggers selection with its own size.
	small := transferStartpoint(t, ep.NewStartpoint(), send, false)
	b := buffer.New(128)
	b.PutBytes(bulkPayload(100))
	if err := small.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if m := small.Method(); m != "inproc" {
		t.Errorf("small RSR selected %q, want inproc", m)
	}

	bulk := transferStartpoint(t, ep.NewStartpoint(), send, false)
	b = buffer.New(8 << 10)
	b.PutBytes(bulkPayload(8 << 10))
	if err := bulk.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if m := bulk.Method(); m != "mpl" {
		t.Errorf("bulk RSR selected %q, want mpl", m)
	}

	// A manual pin wins over the size policy regardless of payload size.
	pinned := transferStartpoint(t, ep.NewStartpoint(), send, false)
	if err := pinned.SetMethod("inproc"); err != nil {
		t.Fatal(err)
	}
	b = buffer.New(8 << 10)
	b.PutBytes(bulkPayload(8 << 10))
	if err := pinned.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if m := pinned.Method(); m != "inproc" {
		t.Errorf("pinned bulk RSR used %q, want inproc", m)
	}

	if !recv.PollUntil(func() bool { return hits.Load() == 3 }, 5*time.Second) {
		t.Fatalf("delivered %d/3", hits.Load())
	}
}

// TestSizeAwarePrefersNativeCapacity gives the bulk policy a method that
// cannot carry the message in one frame: the restricted table must exclude
// it, so the message rides the unlimited method whole instead of
// fragmenting over the preferred-but-small one.
func TestSizeAwarePrefersNativeCapacity(t *testing.T) {
	tag := "bulk-native"
	tiny := func() MethodConfig {
		return MethodConfig{Name: "mpl", Params: transport.Params{
			"latency": "0", "poll_cost": "0", "bandwidth": "0", "max_message": "4096"}}
	}
	recv := newCtx(t, tag, "part", inprocCfg(), tiny())
	send, err := NewContext(Options{
		Partition: "part",
		Methods: []MethodConfig{
			{Name: "inproc", Params: transport.Params{"exchange": tag}},
			{Name: "mpl", Params: transport.Params{
				"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0", "max_message": "4096"}},
		},
		// The bulk policy asks for mpl, but a 64 KiB message does not fit
		// its 4 KiB frames natively.
		Selector: SizeAware(1<<10, nil, PreferOrder("mpl")),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })

	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(ep *Endpoint, b *buffer.Buffer) { hits.Add(1) }))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	b := buffer.New(64 << 10)
	b.PutBytes(bulkPayload(64 << 10))
	if err := sp.RSR("", b); err != nil {
		t.Fatal(err)
	}
	if m := sp.Method(); m != "inproc" {
		t.Errorf("bulk RSR selected %q, want inproc (native capacity)", m)
	}
	if !recv.PollUntil(func() bool { return hits.Load() == 1 }, 5*time.Second) {
		t.Fatal("not delivered")
	}
	if send.Stats().Get("frag.messages.sent") != 0 {
		t.Error("message was fragmented despite a native-capacity method")
	}
}

// chaosPair builds sender and receiver contexts joined only by a simulated
// WAN with a small MTU, so every bulk message must fragment, and returns the
// fabric's fault controller.
func chaosPair(t *testing.T, tag string, ttl time.Duration) (send, recv *Context, faults *simnet.Faults) {
	t.Helper()
	params := func() transport.Params {
		return transport.Params{
			"fabric": tag, "latency": "0", "poll_cost": "0", "bandwidth": "0",
			"max_message": "32768"}
	}
	mk := func() *Context {
		c, err := NewContext(Options{
			Methods: []MethodConfig{{Name: "wan", Params: params()}},
			Frag:    FragConfig{TTL: ttl},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	recv, send = mk(), mk()
	// The registered simnet methods scope fabrics by "<fabric>/<method>".
	return send, recv, simnet.GetOrCreateFabric(tag + "/wan").Faults()
}

// TestChaosFragmentedBulk drives 1 MiB fragmented sends through simnet fault
// injection — silent loss, transient send failures, partition and heal — and
// checks the bulk path's core guarantee: the handler observes complete,
// intact messages or nothing, and abandoned partials are expired, never
// leaked.
func TestChaosFragmentedBulk(t *testing.T) {
	const ttl = 250 * time.Millisecond
	payload := bulkPayload(1 << 20)
	send, recv, faults := chaosPair(t, "bulk-chaos", ttl)
	t.Cleanup(faults.Reset)
	sink := &bulkSink{want: payload}
	ep := recv.NewEndpoint(WithHandler(sink.handler))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	sp.SetFailover(true)

	rsr := func() error {
		b := buffer.New(len(payload) + 8)
		b.PutBytes(payload)
		return sp.RSR("", b)
	}

	// Fault-free baseline: 32 fragments, one assembly.
	if err := rsr(); err != nil {
		t.Fatal(err)
	}
	if !recv.PollUntil(func() bool { return sink.good.Load() == 1 }, 10*time.Second) {
		t.Fatal("baseline bulk send not delivered")
	}
	// ~32 KiB chunks carry 1 MiB in 33 fragments (headers shave a little
	// off each chunk).
	if n := send.Stats().Get("frag.fragments.sent"); n < 32 || n > 34 {
		t.Fatalf("baseline sent %d fragments, want ~33", n)
	}

	// Silent loss: with half the fragments vanishing, a 32-fragment message
	// effectively never completes. The handler must see nothing at all from
	// these sends, and the receiver must eventually expire the partials.
	faults.Seed(7)
	faults.DropRate(send.ID(), recv.ID(), 0.5)
	for i := 0; i < 3; i++ {
		if err := rsr(); err != nil {
			t.Fatalf("lossy send %d: %v", i, err)
		}
	}
	recv.PollUntil(func() bool { return false }, 50*time.Millisecond) // drain surviving fragments
	faults.DropRate(send.ID(), recv.ID(), 0)
	if got := sink.good.Load(); got != 1 {
		t.Fatalf("lossy sends completed %d messages, want 0 (good=%d)", got-1, got)
	}
	time.Sleep(ttl + 50*time.Millisecond)
	if !recv.PollUntil(func() bool { return recv.Stats().Get("frag.expired") >= 1 }, 5*time.Second) {
		t.Fatalf("abandoned partials never expired (expired=%d, partials=%d)",
			recv.Stats().Get("frag.expired"), recv.frags.Partials())
	}
	if n := recv.frags.Partials(); n != 0 {
		t.Errorf("%d partials leaked past the TTL", n)
	}

	// Transient send failure mid-stream: the failover layer resends the
	// whole message under a fresh fragment id; the receiver assembles the
	// resend and expires whatever the aborted attempt left behind.
	faults.FailNextSends(send.ID(), recv.ID(), 1)
	if err := rsr(); err != nil {
		t.Fatalf("send across transient fault: %v", err)
	}
	if !recv.PollUntil(func() bool { return sink.good.Load() == 2 }, 10*time.Second) {
		t.Fatalf("message lost to a transient fault (good=%d)", sink.good.Load())
	}

	// Partition: the only method is cut, so the send must fail cleanly —
	// no partial delivery — and succeed again after healing.
	faults.Partition(
		[]transport.ContextID{send.ID()},
		[]transport.ContextID{recv.ID()},
	)
	if err := rsr(); err == nil {
		t.Fatal("send across a partition succeeded")
	}
	faults.Heal()
	if err := rsr(); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	if !recv.PollUntil(func() bool { return sink.good.Load() == 3 }, 10*time.Second) {
		t.Fatalf("post-heal send not delivered (good=%d)", sink.good.Load())
	}

	if n := sink.bad.Load(); n != 0 {
		t.Fatalf("handler observed %d partial/corrupt deliveries", n)
	}
}

// TestFailoverRefragments cuts the preferred method mid-conversation: the
// retry must re-fragment the same logical message over the fallback method
// under a fresh id, and exactly one copy reaches the handler.
func TestFailoverRefragments(t *testing.T) {
	tag := "bulk-failover"
	payload := bulkPayload(256 << 10)
	params := func(fab string) transport.Params {
		return transport.Params{
			"fabric": fab, "latency": "0", "poll_cost": "0", "bandwidth": "0",
			"max_message": "32768"}
	}
	mk := func() *Context {
		c, err := NewContext(Options{
			Methods: []MethodConfig{
				{Name: "wan", Params: params(tag)},
				{Name: "atm", Params: params(tag)},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	recv, send := mk(), mk()
	sink := &bulkSink{want: payload}
	ep := recv.NewEndpoint(WithHandler(sink.handler))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	sp.SetFailover(true)

	// Kill the wan link permanently; the startpoint should fail over to atm
	// and deliver the whole message there.
	wanFaults := simnet.GetOrCreateFabric(tag + "/wan").Faults()
	t.Cleanup(wanFaults.Reset)
	wanFaults.CutLink(send.ID(), recv.ID())
	b := buffer.New(len(payload) + 8)
	b.PutBytes(payload)
	if err := sp.RSR("", b); err != nil {
		t.Fatalf("RSR with dead preferred method: %v", err)
	}
	if !recv.PollUntil(func() bool { return sink.good.Load() == 1 }, 10*time.Second) {
		t.Fatalf("failover send not delivered (good=%d bad=%d)", sink.good.Load(), sink.bad.Load())
	}
	if m := sp.Method(); m != "atm" {
		t.Errorf("failover landed on %q, want atm", m)
	}
	if sink.bad.Load() != 0 {
		t.Error("handler saw a partial delivery during failover")
	}
}

// BenchmarkBulkBandwidth measures end-to-end RSR goodput for a 1 MiB
// payload: tcp carries it as one frame, rudp fragments it into ~18 datagrams
// and reassembles, shm carries it as one record through the mmap ring
// (EXPERIMENTS.md quotes these numbers).
func BenchmarkBulkBandwidth(b *testing.B) {
	payload := bulkPayload(1 << 20)
	for _, method := range []string{"tcp", "rudp", "shm"} {
		b.Run(method, func(b *testing.B) {
			mc := MethodConfig{Name: method}
			if method == "shm" {
				if !shm.Supported() {
					b.Skip("shm transport requires linux")
				}
				mc.Params = transport.Params{"dir": b.TempDir()}
			}
			recv := newCtx(b, "bench-bulk-"+method, "", mc)
			send := newCtx(b, "bench-bulk-"+method, "", mc)
			sink := &bulkSink{want: payload}
			ep := recv.NewEndpoint(WithHandler(sink.handler))
			sp := transferStartpoint(b, ep.NewStartpoint(), send, false)
			startPolling(b, recv)

			b.SetBytes(1 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf := buffer.New(len(payload) + 8)
				buf.PutBytes(payload)
				if err := sp.RSR("", buf); err != nil {
					b.Fatal(err)
				}
				want := int64(i + 1)
				// Drive the receiver from this goroutine: on small machines a
				// busy-wait here would starve the background poller instead
				// of measuring the data path.
				if !recv.PollUntil(func() bool { return sink.good.Load() >= want }, 30*time.Second) {
					b.Fatalf("delivery %d timed out", want)
				}
			}
			b.StopTimer()
			if sink.bad.Load() != 0 {
				b.Fatalf("%d corrupt deliveries", sink.bad.Load())
			}
		})
	}
}

// fragCountersRegistered pins the counter names the observability docs
// promise; a rename is an API break for dashboards.
func TestFragCounterNamesRegistered(t *testing.T) {
	c := newCtx(t, "bulk-counters", "")
	snap := c.Stats().Snapshot()
	for _, name := range []string{
		"frag.messages.sent", "frag.fragments.sent", "frag.fragments.recv",
		"frag.assembled", "frag.expired", "frag.duplicates", "frag.dropped",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("counter %q not registered", name)
		}
	}
}
