package core

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/metrics"
	"nexus/internal/transport"
)

// This file implements the per-context link-health registry behind automatic
// method failover. Every (method, peer-context) pair a context sends to has a
// circuit: Closed while the method works, Open after repeated send failures
// (selection then avoids it), and HalfOpen when the open circuit's backoff
// expires and exactly one send is let through as a probe. A probe success
// closes the circuit and bumps the registry generation, which makes every
// supervised link re-run selection — so links that degraded to a slower
// method land back on the fastest one after a heal, the paper's "a new
// communication object can be constructed at any time" made automatic.

// CircuitState is the health state of one (method, peer-context) pair.
type CircuitState int

const (
	// CircuitClosed: the method is healthy (or untried) toward the peer.
	CircuitClosed CircuitState = iota
	// CircuitOpen: repeated failures tripped the circuit; selection skips
	// the method until the backoff expires.
	CircuitOpen
	// CircuitHalfOpen: the backoff expired and one in-flight send is probing
	// the method; its outcome closes or re-opens the circuit.
	CircuitHalfOpen
)

func (s CircuitState) String() string {
	switch s {
	case CircuitClosed:
		return "closed"
	case CircuitOpen:
		return "open"
	case CircuitHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// HealthConfig tunes the health registry. The zero value selects defaults.
type HealthConfig struct {
	// FailureThreshold is how many consecutive send failures open a
	// (method, peer) circuit (default 2: one failure may just be a stale
	// cached connection; a redial that also fails is a dead method).
	FailureThreshold int
	// BackoffBase is the first open-circuit backoff (default 100ms). Each
	// failed half-open probe doubles it up to BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the backoff (default 5s).
	BackoffMax time.Duration
	// BackoffJitter randomizes each backoff by up to this fraction so a
	// fleet of links does not probe in lockstep. 0 selects the default
	// (0.2); a negative value disables jitter (deterministic tests).
	BackoffJitter float64
	// ProbeTimeout bounds a half-open probe: if its outcome has not been
	// reported after this long (the probing sender died), another probe is
	// allowed (default 2s).
	ProbeTimeout time.Duration
	// PollFailureThreshold is how many consecutive module Poll errors
	// disable a method's receive path (default 8). The path re-probes on
	// the circuit's backoff schedule instead of spinning forever.
	PollFailureThreshold int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.2
	}
	if c.BackoffJitter < 0 {
		c.BackoffJitter = 0
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.PollFailureThreshold < 1 {
		c.PollFailureThreshold = 8
	}
	return c
}

// receivePeer is the pseudo-peer key under which a method's local receive
// path (its Poll) is tracked. Real context ids start at 1.
const receivePeer = transport.ContextID(0)

type healthKey struct {
	method string
	peer   transport.ContextID
}

type healthEntry struct {
	state        CircuitState
	consecFails  int
	backoff      time.Duration
	retryAt      time.Time
	probeStarted time.Time
	openedAt     time.Time
	trips        uint64
	lastErr      string
}

// HealthInfo is one entry of a context's health snapshot. Peer 0 describes a
// method's local receive path (poll health) rather than a link.
type HealthInfo struct {
	Method              string
	Peer                transport.ContextID
	State               CircuitState
	ConsecutiveFailures int
	// Trips counts how many times this circuit has opened.
	Trips uint64
	// Backoff is the current open-circuit backoff (0 when closed).
	Backoff time.Duration
	// RetryAt is when an open circuit may next probe (zero when closed).
	RetryAt time.Time
	// LastError is the most recent failure, "" after a heal.
	LastError string
}

// healthRegistry tracks circuit state per (method, peer-context) pair.
type healthRegistry struct {
	cfg HealthConfig

	// gen increments on every state transition that should make supervised
	// links re-run selection (trip and heal). Targets stamp the generation
	// they selected under; a mismatch on the next send triggers
	// re-selection.
	gen atomic.Uint64
	// nextRetry is the earliest UnixNano at which any open circuit may be
	// probed (0 = nothing pending). Senders use it to know when a
	// re-selection is worth running even though gen has not moved.
	nextRetry atomic.Int64

	mu      sync.Mutex
	rng     *rand.Rand
	entries map[healthKey]*healthEntry

	// Counters exported through the context's stats set.
	cTrips   *metrics.Counter // failover.trips: circuits opened from closed
	cOpens   *metrics.Counter // health.open: all transitions into Open
	cProbes  *metrics.Counter // health.halfopen.probes: probe grants
	cRedials *metrics.Counter // failover.redials: reconnect attempts
	cResends *metrics.Counter // failover.resends: frames resent after failure
}

func newHealthRegistry(cfg HealthConfig, stats *metrics.Set) *healthRegistry {
	return &healthRegistry{
		cfg:      cfg.withDefaults(),
		rng:      rand.New(rand.NewSource(1)),
		entries:  make(map[healthKey]*healthEntry),
		cTrips:   stats.Counter("failover.trips"),
		cOpens:   stats.Counter("health.open"),
		cProbes:  stats.Counter("health.halfopen.probes"),
		cRedials: stats.Counter("failover.redials"),
		cResends: stats.Counter("failover.resends"),
	}
}

// Gen returns the current transition generation.
func (h *healthRegistry) Gen() uint64 { return h.gen.Load() }

// bump forces a generation move without a circuit transition, invalidating
// every published send snapshot so supervised links re-run selection. The
// peer-table refresh path uses it to push runtime descriptor changes into
// live links.
func (h *healthRegistry) bump() { h.gen.Add(1) }

// probeDue reports whether some open circuit's backoff has expired, i.e.
// whether a sender should re-run selection to volunteer a probe. One atomic
// load on the healthy path; the clock is read only while a retry is armed.
func (h *healthRegistry) probeDue() bool {
	nr := h.nextRetry.Load()
	return nr != 0 && time.Now().UnixNano() >= nr
}

func (h *healthRegistry) entryLocked(k healthKey) *healthEntry {
	e := h.entries[k]
	if e == nil {
		e = &healthEntry{}
		h.entries[k] = e
	}
	return e
}

// jitteredLocked returns d extended by up to cfg.BackoffJitter*d.
func (h *healthRegistry) jitteredLocked(d time.Duration) time.Duration {
	if h.cfg.BackoffJitter <= 0 {
		return d
	}
	return d + time.Duration(h.cfg.BackoffJitter*h.rng.Float64()*float64(d))
}

// recomputeNextRetryLocked re-derives the earliest pending probe time across
// all open and half-open entries.
func (h *healthRegistry) recomputeNextRetryLocked() {
	var min time.Time
	for _, e := range h.entries {
		var at time.Time
		switch e.state {
		case CircuitOpen:
			at = e.retryAt
		case CircuitHalfOpen:
			// A probe that never reports back re-arms after ProbeTimeout.
			at = e.probeStarted.Add(h.cfg.ProbeTimeout)
		default:
			continue
		}
		if min.IsZero() || at.Before(min) {
			min = at
		}
	}
	if min.IsZero() {
		h.nextRetry.Store(0)
	} else {
		h.nextRetry.Store(min.UnixNano())
	}
}

// allowedLocked reports whether the (method, peer) pair may be used for a
// send right now. Granting an expired open circuit transitions it to
// HalfOpen: the caller's send is the probe.
func (h *healthRegistry) allowedLocked(k healthKey, now time.Time) bool {
	e := h.entries[k]
	if e == nil || e.state == CircuitClosed {
		return true
	}
	switch e.state {
	case CircuitOpen:
		if now.Before(e.retryAt) {
			return false
		}
		e.state = CircuitHalfOpen
		e.probeStarted = now
		h.cProbes.Inc()
		h.recomputeNextRetryLocked()
		return true
	case CircuitHalfOpen:
		if now.Sub(e.probeStarted) > h.cfg.ProbeTimeout {
			e.probeStarted = now
			h.cProbes.Inc()
			h.recomputeNextRetryLocked()
			return true
		}
		return false
	}
	return true
}

// allowed is allowedLocked behind the registry lock (poll-path probes).
func (h *healthRegistry) allowed(method string, peer transport.ContextID) bool {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allowedLocked(healthKey{method, peer}, now)
}

// filterTable returns a view of table with entries whose circuits are open
// removed. Half-open grants happen here: at most one caller receives the
// probed method.
func (h *healthRegistry) filterTable(table *transport.Table) *transport.Table {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.entries) == 0 {
		return table
	}
	kept := make([]transport.Descriptor, 0, len(table.Entries))
	for _, d := range table.Entries {
		if h.allowedLocked(healthKey{d.Method, d.Context}, now) {
			kept = append(kept, d)
		}
	}
	if len(kept) == len(table.Entries) {
		return table
	}
	return &transport.Table{Entries: kept}
}

// reportFailure records a failed send on (method, peer). It trips the
// circuit after FailureThreshold consecutive failures and re-opens a
// half-open circuit with a doubled backoff.
func (h *healthRegistry) reportFailure(method string, peer transport.ContextID, err error) {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.entryLocked(healthKey{method, peer})
	e.consecFails++
	if err != nil {
		e.lastErr = err.Error()
	}
	switch e.state {
	case CircuitHalfOpen:
		// Failed probe: back to open, backoff doubled.
		e.backoff *= 2
		if e.backoff > h.cfg.BackoffMax {
			e.backoff = h.cfg.BackoffMax
		}
		e.state = CircuitOpen
		e.retryAt = now.Add(h.jitteredLocked(e.backoff))
		h.cOpens.Inc()
		h.recomputeNextRetryLocked()
	case CircuitClosed:
		if e.consecFails >= h.cfg.FailureThreshold {
			e.state = CircuitOpen
			e.backoff = h.cfg.BackoffBase
			e.retryAt = now.Add(h.jitteredLocked(e.backoff))
			e.openedAt = now
			e.trips++
			h.cTrips.Inc()
			h.cOpens.Inc()
			h.gen.Add(1) // siblings sharing the method move off it
			h.recomputeNextRetryLocked()
		}
	case CircuitOpen:
		// A last-gasp send (every method open) failed again; the existing
		// retry schedule stands.
	}
}

// tripNow opens the circuit immediately, bypassing the failure threshold
// (the poll path counts its own consecutive errors).
func (h *healthRegistry) tripNow(method string, peer transport.ContextID, err error) {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.entryLocked(healthKey{method, peer})
	if err != nil {
		e.lastErr = err.Error()
	}
	if e.consecFails < h.cfg.FailureThreshold {
		e.consecFails = h.cfg.FailureThreshold
	}
	if e.state == CircuitOpen {
		return
	}
	e.state = CircuitOpen
	if e.backoff == 0 {
		e.backoff = h.cfg.BackoffBase
	}
	e.retryAt = now.Add(h.jitteredLocked(e.backoff))
	e.openedAt = now
	e.trips++
	h.cTrips.Inc()
	h.cOpens.Inc()
	h.gen.Add(1)
	h.recomputeNextRetryLocked()
}

// reportSuccess records a working send on (method, peer), healing its
// circuit. Healing bumps the generation so every supervised link re-runs
// selection and lands back on the fastest applicable method.
func (h *healthRegistry) reportSuccess(method string, peer transport.ContextID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.entries[healthKey{method, peer}]
	if e == nil {
		return
	}
	if e.state != CircuitClosed {
		e.state = CircuitClosed
		h.gen.Add(1)
		h.recomputeNextRetryLocked()
	}
	e.consecFails = 0
	e.backoff = 0
	e.retryAt = time.Time{}
	e.lastErr = ""
}

// snapshot returns the registry's entries sorted by method then peer.
func (h *healthRegistry) snapshot() []HealthInfo {
	h.mu.Lock()
	out := make([]HealthInfo, 0, len(h.entries))
	for k, e := range h.entries {
		out = append(out, HealthInfo{
			Method:              k.method,
			Peer:                k.peer,
			State:               e.state,
			ConsecutiveFailures: e.consecFails,
			Trips:               e.trips,
			Backoff:             e.backoff,
			RetryAt:             e.retryAt,
			LastError:           e.lastErr,
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// HealthSnapshot returns the state of every (method, peer-context) circuit
// the context has tracked — the enquiry interface for the failover layer.
// Entries with Peer 0 describe a method's local receive path.
func (c *Context) HealthSnapshot() []HealthInfo { return c.health.snapshot() }

// HealthAware wraps a selection policy so that it ignores descriptor-table
// entries whose (method, peer-context) circuit is open. It composes with any
// policy: HealthAware(FirstApplicable), HealthAware(PreferOrder("mpl")),
// HealthAware(CheapestPoll). When every method's circuit is open (or nothing
// in the filtered table is applicable), it falls back to the full table: a
// last-gasp attempt beats a guaranteed failure, and its outcome feeds the
// registry either way. The context's configured selector is wrapped this way
// automatically.
func HealthAware(inner Selector) Selector {
	return func(c *Context, table *transport.Table) (transport.Descriptor, error) {
		filtered := c.health.filterTable(table)
		if filtered.Len() > 0 {
			if d, err := inner(c, filtered); err == nil {
				return d, nil
			}
		}
		return inner(c, table)
	}
}
