package core

import (
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/transport"
)

// adaptCtx builds a context with a cheap mpl and an expensive wan module.
func adaptCtx(t *testing.T, tag string) *Context {
	t.Helper()
	return newCtx(t, tag, "p0",
		MethodConfig{Name: "mpl", Params: transport.Params{"fabric": tag, "poll_cost": "10us", "latency": "0", "bandwidth": "0"}},
		MethodConfig{Name: "wan", Params: transport.Params{"fabric": tag, "poll_cost": "100us", "latency": "0", "bandwidth": "0"}},
	)
}

func TestAdaptiveBacksOffIdleMethod(t *testing.T) {
	c := adaptCtx(t, "adapt-idle")
	last := make(map[string]uint64)
	cfg := AdaptiveConfig{MaxSkip: 64}
	for i := 0; i < 10; i++ {
		c.adaptOnce(cfg, last)
	}
	if got := c.SkipPoll("wan"); got != 64 {
		t.Errorf("idle wan skip = %d, want capped at 64", got)
	}
	// The cheap method is never throttled.
	if got := c.SkipPoll("mpl"); got != 1 {
		t.Errorf("cheap mpl skip = %d, want 1", got)
	}
}

func TestAdaptiveSnapsBackOnTraffic(t *testing.T) {
	tag := "adapt-traffic"
	recv := adaptCtx(t, tag)
	send := adaptCtx(t, tag)

	last := make(map[string]uint64)
	cfg := AdaptiveConfig{MaxSkip: 64}
	for i := 0; i < 10; i++ {
		recv.adaptOnce(cfg, last)
	}
	if got := recv.SkipPoll("wan"); got != 64 {
		t.Fatalf("precondition: wan skip = %d", got)
	}

	// Traffic arrives over wan: the next adaptation round must restore
	// eager polling.
	var hits atomic.Int64
	ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) { hits.Add(1) }))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	if err := sp.SetMethod("wan"); err != nil {
		t.Fatal(err)
	}
	if err := sp.RSR("", nil); err != nil {
		t.Fatal(err)
	}
	// Deliver it (within the skip window).
	for i := 0; i < 70 && hits.Load() == 0; i++ {
		recv.Poll()
	}
	if hits.Load() != 1 {
		t.Fatal("wan RSR not delivered")
	}
	recv.adaptOnce(cfg, last)
	if got := recv.SkipPoll("wan"); got != 1 {
		t.Errorf("wan skip after traffic = %d, want 1", got)
	}
	// Idle again: backs off again.
	recv.adaptOnce(cfg, last)
	if got := recv.SkipPoll("wan"); got <= 1 {
		t.Errorf("wan skip after renewed idleness = %d, want > 1", got)
	}
}

// TestAdaptivePinning is the regression test for the tuner clobbering manual
// skip_poll choices: a value set via SetSkipPoll is pinned and survives both
// the adaptive tuner and AutoSkipPoll until UnpinSkipPoll releases it.
func TestAdaptivePinning(t *testing.T) {
	c := adaptCtx(t, "adapt-pin")
	if err := c.SetSkipPoll("wan", 7); err != nil {
		t.Fatal(err)
	}
	last := make(map[string]uint64)
	cfg := AdaptiveConfig{MaxSkip: 64}
	for i := 0; i < 10; i++ {
		c.adaptOnce(cfg, last)
	}
	if got := c.SkipPoll("wan"); got != 7 {
		t.Errorf("pinned wan skip after tuner rounds = %d, want 7", got)
	}
	c.AutoSkipPoll()
	if got := c.SkipPoll("wan"); got != 7 {
		t.Errorf("pinned wan skip after AutoSkipPoll = %d, want 7", got)
	}
	// The unpinned mpl module is still the tuner's to manage.
	var pinned, unpinned bool
	for _, mi := range c.Methods() {
		switch mi.Name {
		case "wan":
			pinned = mi.Pinned
		case "mpl":
			unpinned = mi.Pinned
		}
	}
	if !pinned || unpinned {
		t.Errorf("Pinned flags: wan=%v mpl=%v, want true/false", pinned, unpinned)
	}

	// Unpin: the next idle rounds back wan off geometrically from 7.
	if err := c.UnpinSkipPoll("wan"); err != nil {
		t.Fatal(err)
	}
	c.adaptOnce(cfg, last)
	if got := c.SkipPoll("wan"); got != 14 {
		t.Errorf("unpinned wan skip after one idle round = %d, want 14", got)
	}
	if err := c.UnpinSkipPoll("nope"); err == nil {
		t.Error("UnpinSkipPoll on unknown method: want error")
	}
}

func TestAdaptiveBackgroundTuner(t *testing.T) {
	c := adaptCtx(t, "adapt-bg")
	stop := c.StartAdaptiveSkipPoll(AdaptiveConfig{Interval: time.Millisecond, MaxSkip: 32})
	deadline := time.Now().Add(5 * time.Second)
	for c.SkipPoll("wan") != 32 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	if got := c.SkipPoll("wan"); got != 32 {
		t.Errorf("background tuner: wan skip = %d, want 32", got)
	}
}
