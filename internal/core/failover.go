package core

import (
	"errors"
	"fmt"

	"nexus/internal/obsv"
	"nexus/internal/wire"
)

// This file implements the supervised side of a communication link: what
// happens when a selected communication object's Send fails. The startpoint
// reports the failure to the context's health registry, drops the poisoned
// shared connection from the context cache (so nobody redials into it),
// re-runs the configured selection policy against the remaining healthy
// descriptors, redials, and transparently resends the failed frame. A
// multicast startpoint runs this machinery per target, so fan-out degrades
// link by link instead of failing the whole RSR.

// maxFailoverAttempts bounds one frame's failover loop for a link with the
// given descriptor table: every method may be retried up to the failure
// threshold (each failure feeds the registry, so a persistently dead method
// trips its circuit and stops being selected), plus one last-gasp attempt.
func (sp *Startpoint) maxFailoverAttempts(tableLen int) int {
	return tableLen*sp.owner.health.cfg.FailureThreshold + 1
}

// failoverTarget recovers one link after a failed send: reselect (the
// health-aware selector skips tripped methods), redial, resend, until the
// frame is delivered to a communication object or the attempt budget is
// spent. The failed send's failure has already been reported and its shared
// connection invalidated. tid attributes replacement dials to the RSR being
// recovered. Caller holds sp.mu.
func (sp *Startpoint) failoverTarget(t *target, enc []byte, handler string, flags byte, rext wire.RPCExt, off int, firstErr error, tid obsv.TraceID) error {
	owner := sp.owner
	table, err := sp.tableFor(t)
	if err != nil {
		return err
	}
	// Re-selection runs below: publish the recovering message's payload size
	// so size-aware policies pick a replacement method that suits it.
	owner.selSize.Store(int64(len(enc) - off))
	lastErr := firstErr
	budget := sp.maxFailoverAttempts(table.Len())
	for attempt := 0; attempt < budget; attempt++ {
		if t.conn != nil {
			owner.releaseConn(t.conn)
			t.conn = nil
		}
		t.method = ""
		t.healthGen = owner.health.Gen()
		if err := sp.selectTarget(t, tid); err != nil {
			// A dial refusal was already reported to the registry by
			// selectTarget; keep looping — the next selection skips the
			// method once its circuit trips. Give up only when no method is
			// selectable at all.
			if errors.Is(err, ErrNoApplicableMethod) || errors.Is(err, ErrNoTable) {
				return fmt.Errorf("core: failover exhausted: %w (last send error: %v)", err, lastErr)
			}
			lastErr = err
			continue
		}
		owner.health.cRedials.Inc()
		// Size-aware resend: the replacement method may have a smaller frame
		// limit than the one that failed, in which case the message
		// re-fragments here under a fresh message id (the receiver expires
		// the failed attempt's partial — see sendToTargetLocked).
		if err := sp.sendToTargetLocked(t, enc, handler, flags, rext, off, tid); err != nil {
			lastErr = err
			owner.health.reportFailure(t.method, t.context, err)
			owner.invalidateConn(t.conn)
			continue
		}
		t.reportUp.Store(false)
		owner.health.reportSuccess(t.method, t.context)
		owner.health.cResends.Inc()
		owner.cRSRFailover.Inc()
		return nil
	}
	return fmt.Errorf("core: failover attempts exhausted: %w", lastErr)
}

// refreshTarget re-runs selection for a bound link when the health registry
// has moved on (a circuit tripped or healed, or an open circuit's backoff
// expired and a probe is due). Re-selection may return the same method, in
// which case the existing communication object is kept. A link whose method
// was chosen manually (SetMethod) is left alone. Caller holds sp.mu.
func (sp *Startpoint) refreshTarget(t *target, gen uint64) {
	// Stamp the generation first: a manually pinned link is never
	// re-selected, but it must still be considered current, or the published
	// snapshot would read as stale forever and every send would take the
	// locked slow path.
	t.healthGen = gen
	if t.manual {
		return
	}
	table, err := sp.tableFor(t)
	if err != nil {
		return // keep the current binding; sends surface the real error
	}
	desc, err := sp.owner.healthSel(sp.owner, table)
	if err != nil || desc.Method == t.method {
		return
	}
	// The selector now prefers a different method (a faster one healed, or
	// the current one tripped elsewhere): rebind.
	if err := sp.bindTarget(t, desc.Method, desc, obsv.TraceID{}); err != nil {
		// Dial failed — report it so the registry learns, keep the old conn.
		sp.owner.health.reportFailure(desc.Method, t.context, err)
	}
}
