package core

import (
	"fmt"
	"time"

	"nexus/internal/bufpool"
	"nexus/internal/frag"
	"nexus/internal/obsv"
	"nexus/internal/transport"
	"nexus/internal/wire"
)

// This file implements the bulk-data path: what happens when one RSR's
// encoded frame is larger than the selected communication method can carry.
// The paper's methods differ not just in latency but in message-size limits —
// a datagram method tops out at the MTU-ish frame its socket accepts, while a
// stream method carries anything — and forcing applications to know each
// method's limit would leak the selection decision the architecture exists to
// hide. Instead the sender splits an oversized frame into wire fragments
// (wire.FlagFrag), each an ordinary frame the method accepts, and the
// receiving context reassembles them (internal/frag) before dispatch. The
// split is per link: one multicast RSR can go whole down a TCP link and
// fragmented down a UDP link from the same encode.

// FragConfig tunes the receive-side fragment reassembler. Zero fields select
// the package frag defaults; the per-message size cap is always the context's
// MaxMessageSize, so a context never buffers a partial message it would
// refuse to send.
type FragConfig struct {
	// TTL is how long a partial message may wait for missing fragments,
	// measured from its first fragment, before being dropped (frag.expired).
	TTL time.Duration
	// PerPeerBudget caps the bytes buffered across all partial messages from
	// one source context (default twice MaxMessageSize).
	PerPeerBudget int
	// MaxFragments caps one message's fragment count.
	MaxFragments int
	// MaxPartials caps concurrently open partial messages per peer; opening
	// one more evicts that peer's oldest.
	MaxPartials int
}

func (fc FragConfig) toFragConfig(maxMsg int) frag.Config {
	return frag.Config{
		MaxMessage:    maxMsg,
		PerPeerBudget: fc.PerPeerBudget,
		TTL:           fc.TTL,
		MaxFragments:  fc.MaxFragments,
		MaxPartials:   fc.MaxPartials,
	}
}

// fragmentTo sends one logical RSR as a sequence of fragment frames over a
// bound communication object, each at most maxMsg encoded bytes. payload is
// the already-encoded argument buffer (the tail of the whole-frame encoding,
// so fragmentation reuses the single payload copy the zero-copy path made).
// All fragments share a message id fresh from the owner's counter and the
// caller's trace id, so one traced bulk send is one span family at the
// receiver. An error from any fragment's Send aborts the remainder; the
// caller's recovery path re-fragments under a new message id and the receiver
// expires the abandoned partial.
func (sp *Startpoint) fragmentTo(conn transport.Conn, maxMsg int, destCtx transport.ContextID, destEP uint64,
	flags byte, rext wire.RPCExt, tid obsv.TraceID, handler string, payload []byte) error {
	owner := sp.owner
	// A piggybacked credit grant does not survive fragmentation (the
	// fragment headers carry no credit fields); dropping it only delays the
	// grant — cumulative totals make a later one supersede it.
	fragFlags := (flags &^ wire.FlagCredit) | wire.FlagFrag
	hdr := wire.HeaderLenExt(len(handler), fragFlags)
	chunk := maxMsg - hdr
	if chunk <= 0 {
		return fmt.Errorf("core: method frame limit of %d bytes cannot carry fragment headers: %w",
			maxMsg, transport.ErrTooLarge)
	}
	total := (len(payload) + chunk - 1) / chunk
	if total > frag.DefaultMaxFragments {
		return fmt.Errorf("core: payload of %d bytes needs %d fragments at frame limit %d (max %d): %w",
			len(payload), total, maxMsg, frag.DefaultMaxFragments, transport.ErrTooLarge)
	}
	msgID := owner.nextMsgID.Add(1)
	ext := wire.Ext{Trace: [16]byte(tid), FragID: msgID, FragTotal: uint32(total), RPC: rext}
	if flags&wire.FlagRelay != 0 {
		// Fragments of a mesh-routed message carry the same fresh hop budget
		// the whole frame would: the originator always stamps (relayTTL, 0),
		// so the values need not be threaded through from the caller.
		ext.Relay = wire.RelayExt{TTL: owner.relayTTL, Via: 0}
	}
	if bs, ok := conn.(transport.BatchSender); ok && total > 1 {
		return sp.fragmentBatch(bs, maxMsg, destCtx, destEP, fragFlags, ext,
			handler, payload, chunk, total)
	}
	buf := bufpool.Get(min(maxMsg, hdr+len(payload)))
	defer bufpool.Put(buf)
	for i := 0; i < total; i++ {
		lo := i * chunk
		hi := min(lo+chunk, len(payload))
		ext.FragIndex = uint32(i)
		n := wire.EncodeHeaderExt(buf, wire.TypeRSR, fragFlags,
			uint64(destCtx), destEP, uint64(owner.id), ext, handler, hi-lo)
		n += copy(buf[n:], payload[lo:hi])
		if err := conn.Send(buf[:n]); err != nil {
			return err
		}
		owner.cFragTx.Inc()
	}
	owner.cFragMsgs.Inc()
	return nil
}

// fragBatchSize is how many fragment frames are encoded and handed to a
// BatchSender connection at once. The gain saturates quickly (a 32-frame
// sendmmsg already amortizes the syscall to ~3% per frame) while the transient
// pooled-buffer footprint stays bounded at fragBatchSize × method frame limit.
const fragBatchSize = 32

// fragmentBatch is fragmentTo's trunk for connections with the BatchSender
// capability: fragments are encoded into separate pooled buffers —
// fragmentTo's single reused scratch cannot back a batch whose frames must
// coexist — and flushed fragBatchSize at a time, collapsing a fragment train
// into one or two syscalls on datagram methods. Frames are borrowed by
// SendBatch, so every buffer returns to the pool unconditionally.
func (sp *Startpoint) fragmentBatch(bs transport.BatchSender, maxMsg int,
	destCtx transport.ContextID, destEP uint64, fragFlags byte, ext wire.Ext,
	handler string, payload []byte, chunk, total int) error {
	owner := sp.owner
	frames := make([][]byte, 0, min(fragBatchSize, total))
	for i := 0; i < total; {
		k := min(fragBatchSize, total-i)
		frames = frames[:0]
		for j := 0; j < k; j++ {
			lo := (i + j) * chunk
			hi := min(lo+chunk, len(payload))
			ext.FragIndex = uint32(i + j)
			buf := bufpool.Get(min(maxMsg, wire.HeaderLenExt(len(handler), fragFlags)+(hi-lo)))
			n := wire.EncodeHeaderExt(buf, wire.TypeRSR, fragFlags,
				uint64(destCtx), destEP, uint64(owner.id), ext, handler, hi-lo)
			n += copy(buf[n:], payload[lo:hi])
			frames = append(frames, buf[:n])
		}
		sent, err := bs.SendBatch(frames)
		for _, f := range frames {
			bufpool.Put(f)
		}
		if sent > k {
			sent = k // defensive: a conn must not report more than offered
		}
		owner.cFragTx.Add(uint64(sent))
		if err != nil {
			return err
		}
		i += k
	}
	owner.cFragMsgs.Inc()
	return nil
}

// sendToTargetLocked sends an encoded frame on a bound target, re-addressing
// it for the target and fragmenting when it exceeds the target's frame limit.
// It is the size-aware twin of a bare conn.Send for the locked recovery paths
// (stale-snapshot retry, failover): after a mid-message failure the message
// re-fragments under a FRESH message id on whatever method selection now
// prefers — the receiver cannot stitch fragments from two attempts together,
// so the abandoned partial expires and delivery stays all-or-nothing. Caller
// holds sp.mu, and t.conn is non-nil.
func (sp *Startpoint) sendToTargetLocked(t *target, enc []byte, handler string, flags byte, rext wire.RPCExt, off int, tid obsv.TraceID) error {
	wire.PatchDest(enc, uint64(t.context), t.endpoint)
	if t.maxMsg > 0 && len(enc) > t.maxMsg {
		return sp.fragmentTo(t.conn.conn, t.maxMsg, t.context, t.endpoint, flags, rext, tid, handler, enc[off:])
	}
	return t.conn.conn.Send(enc)
}

// handleFragment buffers one inbound fragment; the fragment that completes
// its message re-enters the delivery path carrying the reassembled payload,
// so handlers only ever observe whole messages. Runs on the polling
// goroutine (via dispatch), like any other delivery.
func (c *Context) handleFragment(ms *moduleState, f *wire.Frame) {
	c.cFragRx.Inc()
	payload, res, evicted := c.frags.Add(f.SrcContext, f.FragID, f.FragIndex, f.FragTotal, f.Payload, time.Now())
	if evicted > 0 {
		c.cFragExpired.Add(uint64(evicted))
	}
	switch res {
	case frag.Stored:
		return
	case frag.Duplicate:
		c.cFragDup.Inc()
		return
	case frag.Invalid:
		c.cFragDropped.Inc()
		return
	case frag.OverBudget, frag.TooLarge:
		c.cFragDropped.Inc()
		// Reassembly refusing a message is receive-side load shedding: account
		// it under the frame's class so overload diagnosis sees one ledger.
		c.shedCounter(f.Class()).Inc()
		c.errlog(fmt.Errorf("core: context %d: dropped partial message %#x from context %d: %s",
			c.id, f.FragID, f.SrcContext, res))
		return
	}
	c.cFragAssembled.Inc()
	// Rebuild the logical frame: same addressing, trace, and handler; the
	// fragment extension gone and the whole payload in place.
	nf := *f
	nf.Flags &^= wire.FlagFrag
	nf.FragID, nf.FragIndex, nf.FragTotal = 0, 0, 0
	nf.Payload = payload
	if c.dispatcher != nil {
		// The dispatch lanes need the frame in one owned buffer; encode the
		// rebuilt frame into pooled storage and hand ownership over rather
		// than paying enqueue's copy on a multi-megabyte payload.
		buf := bufpool.Get(nf.EncodedLen())
		nf.EncodeTo(buf)
		bufpool.Put(payload)
		c.dispatcher.enqueueOwned(ms, &nf, buf)
		return
	}
	c.deliver(ms, &nf)
	bufpool.Put(payload)
}
