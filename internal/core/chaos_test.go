package core

import (
	"sync"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/simnet"
	"nexus/internal/transport"
)

// seqRecorder is a dedup-counting endpoint handler: chaos phases that inject
// silent drops recover via resend, so the receiver counts per-sequence
// deliveries and the test asserts on the observed set.
type seqRecorder struct {
	mu   sync.Mutex
	seen map[uint64]int
}

func newSeqRecorder() *seqRecorder { return &seqRecorder{seen: make(map[uint64]int)} }

func (r *seqRecorder) handler(_ *Endpoint, b *buffer.Buffer) {
	seq := b.Uint64()
	r.mu.Lock()
	r.seen[seq]++
	r.mu.Unlock()
}

func (r *seqRecorder) count(seq uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[seq]
}

func seqBuf(seq uint64) *buffer.Buffer {
	b := buffer.New(16)
	b.PutUint64(seq)
	return b
}

// chaosCtx builds a context with the simnet methods myri > atm > wan on
// fabrics named by tag, with modelled delays zeroed so the test is driven
// purely by injected faults.
func chaosCtx(t *testing.T, tag string) *Context {
	t.Helper()
	simParams := func() transport.Params {
		return transport.Params{"fabric": tag, "latency": "0s", "poll_cost": "0s"}
	}
	c, err := NewContext(Options{
		Partition: "p0",
		Methods: []MethodConfig{
			{Name: "myri", Params: simParams()},
			{Name: "atm", Params: simParams()},
			{Name: "wan", Params: simParams()},
		},
		Health: fastHealth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func circuitState(c *Context, method string, peer transport.ContextID) (CircuitState, bool) {
	for _, hi := range c.HealthSnapshot() {
		if hi.Method == method && hi.Peer == peer {
			return hi.State, true
		}
	}
	return CircuitClosed, false
}

// TestChaosFailoverSimnet drives one sender multicasting to two receivers
// over simnet while faults are injected: a one-shot send error (absorbed by a
// redial), a severed fast link (per-target degradation to the next method), a
// lossy link (recovered by app-level resend + receiver dedup), and a full
// partition/heal cycle after which both links land back on the fastest
// method. Run under -race by CI.
func TestChaosFailoverSimnet(t *testing.T) {
	tag := "chaos-simnet"
	sender := chaosCtx(t, tag)
	recvB := chaosCtx(t, tag)
	recvC := chaosCtx(t, tag)
	idA, idB, idC := sender.ID(), recvB.ID(), recvC.ID()

	myriFaults := simnet.GetOrCreateFabric(tag + "/myri").Faults()
	atmFaults := simnet.GetOrCreateFabric(tag + "/atm").Faults()
	wanFaults := simnet.GetOrCreateFabric(tag + "/wan").Faults()
	t.Cleanup(func() {
		myriFaults.Reset()
		atmFaults.Reset()
		wanFaults.Reset()
	})

	rb, rc := newSeqRecorder(), newSeqRecorder()
	epB := recvB.NewEndpoint(WithHandler(rb.handler))
	epC := recvC.NewEndpoint(WithHandler(rc.handler))
	sp := transferStartpoint(t, epB.NewStartpoint(), sender, false)
	sp.Merge(transferStartpoint(t, epC.NewStartpoint(), sender, false))
	sp.SetFailover(true)

	seq := uint64(0)
	// deliver multicasts one sequence number with app-level retry: resend
	// until both receivers have observed it (silent-drop phases need this;
	// the dedup recorder absorbs the duplicates retries cause).
	deliver := func(wantErrFree bool) {
		t.Helper()
		seq++
		deadline := time.Now().Add(10 * time.Second)
		for attempt := 0; ; attempt++ {
			err := sp.RSR("", seqBuf(seq))
			if err != nil && wantErrFree {
				t.Fatalf("seq %d attempt %d: %v", seq, attempt, err)
			}
			okB := recvB.PollUntil(func() bool { return rb.count(seq) > 0 }, 100*time.Millisecond)
			okC := recvC.PollUntil(func() bool { return rc.count(seq) > 0 }, 100*time.Millisecond)
			if okB && okC {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("seq %d not delivered to both receivers (B=%v C=%v lastErr=%v)",
					seq, okB, okC, err)
			}
		}
	}

	// Phase 1 — baseline: both links select the fastest method.
	deliver(true)
	if m := sp.MethodFor(idB); m != "myri" {
		t.Fatalf("baseline method to B = %q, want myri", m)
	}
	if m := sp.MethodFor(idC); m != "myri" {
		t.Fatalf("baseline method to C = %q, want myri", m)
	}

	// Phase 2 — a one-shot send error is absorbed by redial + resend without
	// tripping the circuit or changing methods.
	myriFaults.FailNextSends(idA, idB, 1)
	deliver(true)
	if m := sp.MethodFor(idB); m != "myri" {
		t.Fatalf("after one-shot error, method to B = %q, want myri", m)
	}
	if got := sender.Stats().Get("failover.resends"); got < 1 {
		t.Fatalf("failover.resends = %d, want >= 1", got)
	}
	if got := sender.Stats().Get("failover.trips"); got != 0 {
		t.Fatalf("failover.trips = %d after a one-shot error, want 0", got)
	}

	// Phase 3 — sever myri toward B: the B link degrades to atm while the C
	// link stays on myri (per-target degradation), with no lost frame.
	myriFaults.CutLink(idA, idB)
	deliver(true)
	if m := sp.MethodFor(idB); m != "atm" {
		t.Fatalf("after myri cut, method to B = %q, want atm", m)
	}
	deliver(true)
	if m := sp.MethodFor(idC); m != "myri" {
		t.Fatalf("after myri cut toward B, method to C = %q, want myri", m)
	}
	if st, ok := circuitState(sender, "myri", idB); !ok || st != CircuitOpen {
		t.Fatalf("(myri, B) circuit = %v (tracked=%v), want open", st, ok)
	}
	if got := sender.Stats().Get("failover.trips"); got < 1 {
		t.Fatalf("failover.trips = %d, want >= 1", got)
	}
	// The send-error phases so far lose nothing and duplicate nothing.
	for s := uint64(1); s <= seq; s++ {
		if n := rb.count(s); n != 1 {
			t.Fatalf("B saw seq %d %d times, want exactly 1", s, n)
		}
		if n := rc.count(s); n != 1 {
			t.Fatalf("C saw seq %d %d times, want exactly 1", s, n)
		}
	}

	// Phase 4 — lossy atm toward B: silent drops are invisible to the sender
	// (Send succeeds), so recovery is app-level resend + dedup.
	atmFaults.Seed(42)
	atmFaults.DropRate(idA, idB, 0.5)
	lossyStart := seq + 1
	for i := 0; i < 5; i++ {
		deliver(false)
	}
	atmFaults.DropRate(idA, idB, 0)
	if dropped := atmFaults.Dropped(idA, idB); dropped == 0 {
		t.Log("note: no frame was dropped in the lossy phase (seeded rng)")
	}
	for s := lossyStart; s <= seq; s++ {
		if rb.count(s) < 1 || rc.count(s) < 1 {
			t.Fatalf("lossy-phase seq %d missing (B=%d C=%d)", s, rb.count(s), rc.count(s))
		}
	}

	// Phase 5 — full partition: every fabric splits sender vs receivers, so
	// RSRs fail even after exhausting failover.
	groups := [][]transport.ContextID{{idA}, {idB, idC}}
	myriFaults.Partition(groups...)
	atmFaults.Partition(groups...)
	wanFaults.Partition(groups...)
	if err := sp.RSR("", seqBuf(9999)); err == nil {
		t.Fatal("RSR across a full partition succeeded")
	}

	// Heal everything. Open circuits re-probe on their backoff schedule and
	// both links land back on the fastest method.
	myriFaults.Reset()
	atmFaults.Reset()
	wanFaults.Reset()
	time.Sleep(150 * time.Millisecond) // let every backoff expire: reselection probes, not last-gasps
	deliver(false)
	deadline := time.Now().Add(10 * time.Second)
	for sp.MethodFor(idB) != "myri" || sp.MethodFor(idC) != "myri" {
		if time.Now().After(deadline) {
			t.Fatalf("links did not return to myri after heal (B=%q C=%q)",
				sp.MethodFor(idB), sp.MethodFor(idC))
		}
		deliver(false)
		time.Sleep(5 * time.Millisecond)
	}
	if st, ok := circuitState(sender, "myri", idB); !ok || st != CircuitClosed {
		t.Fatalf("(myri, B) circuit after heal = %v, want closed", st)
	}
	if got := sender.Stats().Get("health.halfopen.probes"); got < 1 {
		t.Fatalf("health.halfopen.probes = %d, want >= 1", got)
	}
	if got := sender.Stats().Get("failover.redials"); got < 1 {
		t.Fatalf("failover.redials = %d, want >= 1", got)
	}
	// Every sequence the test sent was delivered to both endpoints at least
	// once; send-error-only phases delivered exactly once (checked above).
	for s := uint64(1); s <= seq; s++ {
		if rb.count(s) < 1 || rc.count(s) < 1 {
			t.Fatalf("seq %d missing after heal (B=%d C=%d)", s, rb.count(s), rc.count(s))
		}
	}
}

// TestChaosTCPKillFailover kills a TCP peer mid-stream and asserts the link
// fails over to wan with no lost sequence, then re-enables TCP and asserts
// the circuit closes again via a half-open probe and the link returns to TCP.
// Run under -race by CI.
func TestChaosTCPKillFailover(t *testing.T) {
	tag := "chaos-tcpkill"
	mk := func() *Context {
		c, err := NewContext(Options{
			Partition: "p0",
			Methods: []MethodConfig{
				{Name: "tcp"},
				{Name: "wan", Params: transport.Params{"fabric": tag, "latency": "0s", "poll_cost": "0s"}},
			},
			Health: fastHealth(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	recv := mk()
	send := mk()
	rec := newSeqRecorder()
	ep := recv.NewEndpoint(WithHandler(rec.handler))
	sp := transferStartpoint(t, ep.NewStartpoint(), send, false)
	sp.SetFailover(true)

	seq := uint64(0)
	// deliver retries one sequence until the receiver observes it: a killed
	// TCP peer can lose frames that Send already accepted into the socket
	// buffer, so exactly-once needs sender retry + receiver dedup.
	deliver := func() {
		t.Helper()
		seq++
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := sp.RSR("", seqBuf(seq))
			if recv.PollUntil(func() bool { return rec.count(seq) > 0 }, 100*time.Millisecond) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("seq %d never delivered (last RSR err: %v)", seq, err)
			}
		}
	}

	for i := 0; i < 5; i++ {
		deliver()
	}
	if m := sp.Method(); m != "tcp" {
		t.Fatalf("baseline method = %q, want tcp", m)
	}

	// Kill the TCP peer mid-stream: the receiver's listener and inbound
	// connections close; the sender's next sends hit a dead socket.
	if err := recv.DisableMethod("tcp"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		deliver()
	}
	if m := sp.Method(); m != "wan" {
		t.Fatalf("after TCP kill, method = %q, want wan", m)
	}
	if st, ok := circuitState(send, "tcp", recv.ID()); !ok || st == CircuitClosed {
		t.Fatalf("(tcp, recv) circuit = %v (tracked=%v), want tripped", st, ok)
	}
	if got := send.Stats().Get("failover.trips"); got < 1 {
		t.Fatalf("failover.trips = %d, want >= 1", got)
	}

	// Heal: re-enable TCP in the receiver and teach the sender's live table
	// the new address (the enquiry + manual-control interfaces at work).
	if err := recv.EnableMethod(MethodConfig{Name: "tcp"}); err != nil {
		t.Fatal(err)
	}
	desc, ok := recv.AdvertisedTable().Find("tcp")
	if !ok {
		t.Fatal("re-enabled tcp not advertised")
	}
	table := sp.Table()
	table.Remove("tcp")
	table.Add(desc)
	table.Promote("tcp")

	// Keep traffic flowing; once the open circuit's backoff expires, a
	// half-open probe redials the new listener, the probe send closes the
	// circuit, and the link lands back on tcp.
	deadline := time.Now().Add(10 * time.Second)
	for sp.Method() != "tcp" {
		if time.Now().After(deadline) {
			t.Fatalf("link never returned to tcp (method=%q, snapshot=%+v)",
				sp.Method(), send.HealthSnapshot())
		}
		deliver()
		time.Sleep(5 * time.Millisecond)
	}
	if st, ok := circuitState(send, "tcp", recv.ID()); !ok || st != CircuitClosed {
		t.Fatalf("(tcp, recv) circuit after heal = %v, want closed", st)
	}
	if got := send.Stats().Get("health.halfopen.probes"); got < 1 {
		t.Fatalf("health.halfopen.probes = %d, want >= 1", got)
	}

	for i := 0; i < 5; i++ {
		deliver()
	}
	if m := sp.Method(); m != "tcp" {
		t.Fatalf("post-heal method = %q, want tcp", m)
	}
	// Zero lost frames across the kill: every sequence was observed.
	for s := uint64(1); s <= seq; s++ {
		if rec.count(s) < 1 {
			t.Fatalf("seq %d lost", s)
		}
	}
	// The pre-kill and post-heal sequences went over healthy links exactly
	// once.
	for _, s := range []uint64{1, 2, 3, 4, 5, seq - 1, seq} {
		if n := rec.count(s); n != 1 {
			t.Fatalf("seq %d seen %d times, want exactly 1", s, n)
		}
	}
}
