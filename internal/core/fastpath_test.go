package core

import (
	"sync"
	"testing"
	"time"

	"nexus/internal/buffer"
	"nexus/internal/transport"
	"nexus/internal/wire"
)

// TestCrossMergeNoDeadlock is the regression test for the Merge lock-order
// inversion: two goroutines merging a pair of startpoints into each other
// used to acquire the two startpoint locks in opposite orders and deadlock.
// Run under -race, which also checks the snapshot-then-append scheme for
// unsynchronized table access.
func TestCrossMergeNoDeadlock(t *testing.T) {
	tag := "cross-merge"
	r1 := newCtx(t, tag, "", inprocCfg())
	r2 := newCtx(t, tag, "", inprocCfg())
	send := newCtx(t, tag, "", inprocCfg())

	epA := r1.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	epB := r2.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
	spA := transferStartpoint(t, epA.NewStartpoint(), send, false)
	spB := transferStartpoint(t, epB.NewStartpoint(), send, false)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); spA.Merge(spB) }()
		go func() { defer wg.Done(); spB.Merge(spA) }()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cross-merge deadlocked")
	}
	if n := len(spA.Targets()); n != 2 {
		t.Errorf("spA targets = %d, want 2", n)
	}
	if n := len(spB.Targets()); n != 2 {
		t.Errorf("spB targets = %d, want 2", n)
	}
}

// TestLocalRSRAllocs pins the steady-state allocation count of a local
// (same-context) RSR dispatch. The budget is two allocations: the *Buffer
// wrapper handed to the handler, and nothing else — frame scratch comes from
// the pool, the Frame decodes onto the stack, and the hot counters are
// cached on the Context.
func TestLocalRSRAllocs(t *testing.T) {
	c := newCtx(t, "local-allocs", "")
	ep := c.NewEndpoint(WithHandler(func(_ *Endpoint, b *buffer.Buffer) {
		_ = b.Int64()
	}))
	sp := ep.NewStartpoint()
	b := buffer.New(16)
	b.PutInt64(7)
	if err := sp.RSR("", b); err != nil { // warm up: selection + pool
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(100, func() {
		if err := sp.RSR("", b); err != nil {
			t.Fatal(err)
		}
	})
	if n > 2 {
		t.Errorf("local RSR allocates %.1f per op, budget is 2", n)
	}
}

// recordModule captures outbound frames at Send time without delivering
// them, recording where each frame's storage lives so tests can prove the
// multicast path encodes once and re-addresses in place.
type recordModule struct {
	mu    sync.Mutex
	sends []recordedSend
}

type recordedSend struct {
	ptr   *byte  // &frame[0] at Send time — identifies the backing array
	frame []byte // copy, decoded later
}

func (m *recordModule) Name() string { return "rec" }
func (m *recordModule) Init(env transport.Env) (*transport.Descriptor, error) {
	return &transport.Descriptor{Method: "rec", Context: env.Context,
		Attrs: map[string]string{"addr": "x"}}, nil
}
func (m *recordModule) Applicable(remote transport.Descriptor) bool {
	return remote.Method == "rec"
}
func (m *recordModule) Dial(remote transport.Descriptor) (transport.Conn, error) {
	return &recordConn{m: m}, nil
}
func (m *recordModule) Poll() (int, error) { return 0, nil }
func (m *recordModule) Close() error       { return nil }

type recordConn struct{ m *recordModule }

func (c *recordConn) Send(frame []byte) error {
	c.m.mu.Lock()
	c.m.sends = append(c.m.sends, recordedSend{
		ptr:   &frame[0],
		frame: append([]byte(nil), frame...),
	})
	c.m.mu.Unlock()
	return nil
}
func (c *recordConn) Method() string { return "rec" }
func (c *recordConn) Close() error   { return nil }

// TestMulticastEncodesOnce proves the fan-out property: an RSR on a
// startpoint merged across 8 targets performs 8 Sends of the *same* backing
// array — the frame is encoded once and only its destination words are
// rewritten per target — and every target sees its own (context, endpoint)
// address with identical payload bytes.
func TestMulticastEncodesOnce(t *testing.T) {
	rec := &recordModule{}
	reg := transport.NewRegistry()
	reg.Register("rec", func(transport.Params) transport.Module { return rec })
	reg.Register("local", func(p transport.Params) transport.Module {
		m, err := transport.Default.New("local", p)
		if err != nil {
			panic(err)
		}
		return m
	})

	mk := func() *Context {
		c, err := NewContext(Options{Registry: reg, Methods: []MethodConfig{{Name: "rec"}}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	send := mk()

	const fanout = 8
	var want []struct{ ctx, ep uint64 }
	var sp *Startpoint
	for i := 0; i < fanout; i++ {
		recv := mk()
		ep := recv.NewEndpoint(WithHandler(func(*Endpoint, *buffer.Buffer) {}))
		s := transferStartpoint(t, ep.NewStartpoint(), send, false)
		want = append(want, struct{ ctx, ep uint64 }{uint64(recv.ID()), ep.ID()})
		if sp == nil {
			sp = s
		} else {
			sp.Merge(s)
		}
	}

	payload := buffer.New(64)
	payload.PutString("multicast-payload")
	if err := sp.RSR("", payload); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	sends := rec.sends
	rec.mu.Unlock()
	if len(sends) != fanout {
		t.Fatalf("recorded %d sends, want %d", len(sends), fanout)
	}
	for i, s := range sends {
		if s.ptr != sends[0].ptr {
			t.Errorf("send %d used a different backing array: payload was re-encoded", i)
		}
		var f wire.Frame
		if err := wire.DecodeInto(&f, s.frame); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if f.DestContext != want[i].ctx || f.DestEndpoint != want[i].ep {
			t.Errorf("send %d addressed to (%d,%d), want (%d,%d)",
				i, f.DestContext, f.DestEndpoint, want[i].ctx, want[i].ep)
		}
		if string(f.Payload) != string(sends[0].frame[len(sends[0].frame)-len(f.Payload):]) {
			t.Errorf("send %d payload differs", i)
		}
	}
}
